// Command serve runs the Contextual Shortcuts annotation service: it builds
// (or loads) the offline bundle, assembles the production runtime and
// serves the HTTP API from internal/serve.
//
// Usage:
//
//	serve -addr :8080                 # build a small world, train, serve
//	serve -bundle bundle.bin          # load a previously saved bundle
//	serve -save bundle.bin            # train, save the bundle, then serve
//
// Try it:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/annotate -d '{"text":"...","top":3}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"contextrank"
	"contextrank/internal/annotate"
	"contextrank/internal/searchsim"
	"contextrank/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 42, "world seed")
	bundlePath := flag.String("bundle", "", "load the offline bundle from this file instead of training")
	savePath := flag.String("save", "", "after training, save the bundle here")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "building world...")
	sys := contextrank.Build(contextrank.SmallConfig(*seed))

	var ranker *contextrank.Ranker
	var err error
	if *bundlePath != "" {
		f, err2 := os.Open(*bundlePath)
		if err2 != nil {
			fatal(err2)
		}
		ranker, err = sys.LoadBundle(f)
		f.Close()
	} else {
		fmt.Fprintln(os.Stderr, "training ranker...")
		ranker, err = sys.TrainRanker()
	}
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := ranker.SaveBundle(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "bundle written to %s\n", *savePath)
	}

	inner := sys.Internal()
	suggestor := searchsim.NewSuggestor(inner.Log)
	renderer := annotate.NewRenderer(&annotate.DefaultProvider{
		Snippets: inner.Engine.Snippets,
		Related: func(q string, max int) []string {
			var out []string
			for _, s := range suggestor.Suggest(q, max) {
				out = append(out, s.Text)
			}
			return out
		},
		ArticleWords: inner.Wiki.WordCount,
	})

	srv := serve.NewServer(ranker.Runtime(), renderer)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)
	if err := httpServer.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
