// Command serve runs the Contextual Shortcuts annotation service: it builds
// (or loads) the offline bundle, assembles the production runtime and
// serves the HTTP API from internal/serve behind the resilience layer —
// per-request deadlines, admission control, panic recovery, graceful
// degradation, and SIGTERM-driven draining.
//
// Usage:
//
//	serve -addr :8080                 # build a small world, train, serve
//	serve -bundle bundle.bin          # load a previously saved bundle
//	serve -save bundle.bin            # train, save the bundle, then serve
//	serve -selftest 200               # serve, probe itself under chaos, exit
//
// Try it:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/v1/annotate -d '{"text":"...","top":3}'
//
// Chaos flags (-chaos-*) enable deterministic fault injection: with a
// fixed -chaos-seed the exact same requests hit the exact same faults on
// every run, which is how the recovery counters in /statz are asserted in
// CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"contextrank"
	"contextrank/internal/annotate"
	"contextrank/internal/par"
	"contextrank/internal/resilience"
	"contextrank/internal/searchsim"
	"contextrank/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 42, "world seed")
	bundlePath := flag.String("bundle", "", "load the offline bundle from this file instead of training")
	savePath := flag.String("save", "", "after training, save the bundle here")

	requestTimeout := flag.Duration("request-timeout", 2*time.Second, "per-request annotation deadline (0 = none)")
	maxInflight := flag.Int("max-inflight", 64, "admission gate: max concurrent annotation requests")
	queueLen := flag.Int("queue", 32, "admission gate: wait-queue length beyond the in-flight bound")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "admission gate: max time a request waits for a slot")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline after SIGTERM")
	cacheSize := flag.Int("cache-size", 1024, "annotation response cache capacity in entries (0 = disabled)")
	fillTimeout := flag.Duration("fill-timeout", 0, "detached cache-fill bound (0 = 2x request-timeout, min 5s)")
	shardMode := flag.Bool("shard", false, "run as a cluster shard behind cmd/router: trust the router's X-Deadline-Ms budget")
	quotaBurst := flag.Int("quota-burst", 0, "per-tenant token-bucket burst (0 = quotas disabled)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant token refill rate per second (0 = pure burst budget)")
	pprofAddr := flag.String("pprof-addr", "", "if set, expose net/http/pprof on this separate listener (e.g. localhost:6060); never exposed on the serving address")

	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (used when any -chaos-*-p is > 0)")
	chaosLatencyP := flag.Float64("chaos-latency-p", 0, "probability of an injected latency spike per request")
	chaosSpike := flag.Duration("chaos-spike", 250*time.Millisecond, "injected latency spike duration")
	chaosPanicP := flag.Float64("chaos-panic-p", 0, "probability of an injected handler panic per request")
	chaosWriteP := flag.Float64("chaos-writefail-p", 0, "probability of an injected response-write failure per request")

	selftest := flag.Int("selftest", 0, "serve, fire this many probe requests at the service through the retrying client, report, and exit")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "building world...")
	sys := contextrank.Build(contextrank.SmallConfig(*seed))

	var ranker *contextrank.Ranker
	var err error
	if *bundlePath != "" {
		f, err2 := os.Open(*bundlePath)
		if err2 != nil {
			fatal(err2)
		}
		ranker, err = sys.LoadBundle(f)
		f.Close()
	} else {
		fmt.Fprintln(os.Stderr, "training ranker...")
		ranker, err = sys.TrainRanker()
	}
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := ranker.SaveBundle(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "bundle written to %s\n", *savePath)
	}

	inner := sys.Internal()
	suggestor := searchsim.NewSuggestor(inner.Log)
	renderer := annotate.NewRenderer(&annotate.DefaultProvider{
		Snippets: inner.Engine.Snippets,
		Related: func(q string, max int) []string {
			var out []string
			for _, s := range suggestor.Suggest(q, max) {
				out = append(out, s.Text)
			}
			return out
		},
		ArticleWords: inner.Wiki.WordCount,
	})

	srv := serve.NewServer(ranker.Runtime(), renderer)
	srv.Timeout = *requestTimeout
	srv.Gate = resilience.NewGate(*maxInflight, *queueLen, *queueWait)
	srv.Cache = serve.NewCache(*cacheSize)
	if srv.Cache != nil {
		srv.Cache.FillTimeout = cacheFillTimeout(*fillTimeout, *requestTimeout)
	}
	srv.IndexStats = inner.Engine.Stats
	srv.IndexEpoch = inner.Engine.Epoch
	srv.TrustForwardedDeadline = *shardMode
	srv.Quota = resilience.NewQuota(resilience.QuotaConfig{Burst: *quotaBurst, RatePerSec: *quotaRate})

	if *pprofAddr != "" {
		stop, err := startPprof(*pprofAddr, os.Stderr)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *chaosLatencyP > 0 || *chaosPanicP > 0 || *chaosWriteP > 0 {
		srv.Injector = resilience.NewInjector(resilience.InjectorConfig{
			Seed:         *chaosSeed,
			LatencyP:     *chaosLatencyP,
			LatencySpike: *chaosSpike,
			PanicP:       *chaosPanicP,
			WriteFailP:   *chaosWriteP,
		})
		fmt.Fprintf(os.Stderr, "chaos injection enabled (seed %d)\n", *chaosSeed)
	}

	httpServer := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		// WriteTimeout must exceed the worst admitted request: queue wait
		// + request deadline + degraded fallback + response write.
		WriteTimeout: writeTimeout(*requestTimeout, *queueWait),
		IdleTimeout:  120 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	if *selftest > 0 {
		if err := runSelfTest(httpServer, srv, ln, *selftest, *seed, os.Stderr); err != nil {
			fatal(err)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "serving on %s\n", ln.Addr())
	if err := serveUntilSignal(httpServer, srv, ln, sig, *drainTimeout, os.Stderr); err != nil {
		fatal(err)
	}
}

// startPprof serves net/http/pprof on its own listener and mux, so the
// profiling surface shares nothing with the public serving address (no
// resilience chain, no chaos injection, and crucially no public exposure —
// bind it to localhost). Returns a closer that tears the listener down.
func startPprof(addr string, logw io.Writer) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	server := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := server.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(logw, "pprof server: %v\n", err)
		}
	}()
	fmt.Fprintf(logw, "pprof on http://%s/debug/pprof/\n", ln.Addr())
	return func() { server.Close() }, nil
}

// cacheFillTimeout sizes the detached cache-fill bound: explicit flag
// wins; otherwise twice the request deadline (a fill that two full
// request budgets cannot finish is not worth keeping alive) with the
// package default as the floor.
func cacheFillTimeout(flagValue, requestTimeout time.Duration) time.Duration {
	if flagValue > 0 {
		return flagValue
	}
	if derived := 2 * requestTimeout; derived > serve.DefaultFillTimeout {
		return derived
	}
	return serve.DefaultFillTimeout
}

// writeTimeout sizes the http.Server write deadline around the request
// budget so the server-level timeout never fires before the application
// deadline has had a chance to degrade gracefully.
func writeTimeout(requestTimeout, queueWait time.Duration) time.Duration {
	const floor = 30 * time.Second
	if budget := 2*requestTimeout + queueWait + 5*time.Second; budget > floor {
		return budget
	}
	return floor
}

// serveUntilSignal serves until the listener fails or a shutdown signal
// arrives. On signal it flips readiness off (load balancers stop sending
// traffic), stops accepting, drains in-flight requests within the drain
// deadline, and returns nil for a clean exit-0. http.ErrServerClosed is
// the normal end of a drained server, never an error.
func serveUntilSignal(httpServer *http.Server, srv *serve.Server, ln net.Listener, sig <-chan os.Signal, drain time.Duration, logw io.Writer) error {
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		fmt.Fprintf(logw, "signal %v: draining (deadline %s)\n", s, drain)
		srv.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) && err != nil {
			return err
		}
		fmt.Fprintln(logw, "drained cleanly")
		return nil
	}
}

// selfTestDoc is the document the -selftest probe annotates: it exercises
// pattern detection plus whatever concepts the small world mined.
const selfTestDoc = "Contact press@example.com about the market report and the latest trade figures from https://example.com/news today."

// runSelfTest is the load probe: it serves on ln, fires n annotate
// requests through the retrying client (concurrently, with seeded backoff
// jitter), requires every probe to eventually produce a valid response,
// then drains the server. It validates the full resilience loop end to
// end — under -chaos-* flags the probes ride through injected panics and
// write failures on retries alone.
func runSelfTest(httpServer *http.Server, srv *serve.Server, ln net.Listener, n int, seed int64, logw io.Writer) error {
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(logw, "selftest: probing %s with %d requests\n", base, n)

	client := resilience.NewRetryClient(http.DefaultClient, seed)
	client.MaxAttempts = 6
	client.BaseDelay = 20 * time.Millisecond
	client.MaxDelay = 500 * time.Millisecond

	var failed, degraded atomic.Int64
	workers := 8
	if n < workers {
		workers = n
	}
	par.For(workers, n, func(i int) {
		if ok, deg := probeOnce(client, base); !ok {
			failed.Add(1)
		} else if deg {
			degraded.Add(1)
		}
	})

	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil {
		return fmt.Errorf("selftest drain: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) && err != nil {
		return err
	}

	snap := srv.ResilienceSnapshot()
	fmt.Fprintf(logw, "selftest: %d/%d ok (%d degraded) — recovered_panics=%d shed=%d deadline_expired=%d\n",
		int64(n)-failed.Load(), n, degraded.Load(), snap.PanicsRecovered, snap.Shed, snap.DeadlineExpired)
	if failed.Load() > 0 {
		return fmt.Errorf("selftest: %d/%d probes never succeeded", failed.Load(), n)
	}
	return nil
}

// probeOnce sends one annotate request and validates the response shape.
// Transport errors, retryable statuses, and truncated bodies are retried
// by the client; a handful of empty-body responses (injected write
// failures surface to the client as a 200 with no body) get app-level
// retries here.
func probeOnce(client *resilience.RetryClient, base string) (ok, degraded bool) {
	payload, err := json.Marshal(serve.AnnotateRequest{Text: selfTestDoc, Top: 3})
	if err != nil {
		return false, false
	}
	for attempt := 0; attempt < 5; attempt++ {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/annotate", bytes.NewReader(payload))
		if err != nil {
			return false, false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, body, err := client.DoRead(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var ar serve.AnnotateResponse
		if json.Unmarshal(body, &ar) != nil || ar.Text == "" {
			continue // truncated/empty body: injected write failure
		}
		return true, ar.Degraded
	}
	return false, false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
