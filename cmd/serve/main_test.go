package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"contextrank/internal/resilience"
	"contextrank/internal/serve"
)

// TestGracefulDrain proves the SIGTERM contract without building a world:
// a slow in-flight request must complete, new connections must be
// refused, readiness must flip, and serveUntilSignal must return nil (the
// process exits 0) within the drain deadline.
func TestGracefulDrain(t *testing.T) {
	srv := serve.NewServer(nil, nil) // only SetReady/Ready are used here
	inFlight := make(chan struct{})
	var completed atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			if !srv.Ready() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			w.WriteHeader(http.StatusOK)
			return
		}
		close(inFlight)
		time.Sleep(300 * time.Millisecond)
		completed.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	httpServer := &http.Server{Handler: handler}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(httpServer, srv, ln, sig, 5*time.Second, io.Discard) }()

	// Put a slow request in flight, then deliver SIGTERM mid-request.
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request status %d", resp.StatusCode)
			}
		}
		reqErr <- err
	}()
	<-inFlight
	sig <- syscall.SIGTERM

	start := time.Now()
	if err := <-done; err != nil {
		t.Fatalf("serveUntilSignal = %v, want nil (exit 0)", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain took %v, beyond the deadline", d)
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if completed.Load() != 1 {
		t.Fatal("in-flight handler did not run to completion")
	}
	if srv.Ready() {
		t.Fatal("readiness not flipped off during drain")
	}
	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeUntilSignalListenerError: a listener failure (port stolen,
// fd exhaustion) surfaces as an error instead of hanging.
func TestServeUntilSignalListenerError(t *testing.T) {
	srv := serve.NewServer(nil, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // Serve on a closed listener fails immediately
	httpServer := &http.Server{Handler: http.NotFoundHandler()}
	sig := make(chan os.Signal)
	if err := serveUntilSignal(httpServer, srv, ln, sig, time.Second, io.Discard); err == nil {
		t.Fatal("expected an error from the dead listener")
	}
}

// TestProbeOnceRidesThroughFaults: the selftest probe must succeed against
// a server that sheds, panics (500s), and truncates bodies before finally
// answering properly.
func TestProbeOnceRidesThroughFaults(t *testing.T) {
	var calls atomic.Int32
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
		case 2:
			http.Error(w, "internal server error", http.StatusInternalServerError)
		case 3:
			w.WriteHeader(http.StatusOK) // empty body = injected write failure
		default:
			_ = json.NewEncoder(w).Encode(serve.AnnotateResponse{Text: "doc", Degraded: true})
		}
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	client := resilience.NewRetryClient(ts.Client(), 3)
	client.BaseDelay = time.Millisecond
	client.MaxDelay = 5 * time.Millisecond
	ok, degraded := probeOnce(client, ts.URL)
	if !ok {
		t.Fatalf("probe failed after %d calls", calls.Load())
	}
	if !degraded {
		t.Fatal("probe lost the degraded flag")
	}
	if calls.Load() != 4 {
		t.Fatalf("server saw %d calls, want 4", calls.Load())
	}
}

func TestProbeOnceGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK) // forever-empty bodies never validate
	}))
	defer ts.Close()
	client := resilience.NewRetryClient(ts.Client(), 3)
	client.BaseDelay = time.Millisecond
	client.MaxDelay = 2 * time.Millisecond
	if ok, _ := probeOnce(client, ts.URL); ok {
		t.Fatal("probe validated an empty response")
	}
}

func TestWriteTimeoutSizing(t *testing.T) {
	if got := writeTimeout(0, 0); got != 30*time.Second {
		t.Fatalf("floor = %v", got)
	}
	if got := writeTimeout(time.Minute, time.Second); got != 2*time.Minute+6*time.Second {
		t.Fatalf("budget = %v", got)
	}
}
