// Command mine inspects the offline mining pipeline for a single concept:
// its interestingness features (Table I), the relevant keywords from each
// resource (§IV-B) with the Table II summation, and its senses when
// ambiguous (§IV-C). Useful for debugging why the ranker scores a concept
// the way it does.
//
// Usage:
//
//	mine -concept "global warming"           # named concept (must exist in the world)
//	mine -list 20                            # list the hottest concepts to pick from
//	mine -concept ... -resource prisma       # mine a specific resource
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"contextrank"
	"contextrank/internal/relevance"
)

func main() {
	concept := flag.String("concept", "", "concept to inspect")
	list := flag.Int("list", 0, "list the N most interesting concepts and exit")
	resource := flag.String("resource", "all", "mining resource: snippets|prisma|suggestions|all")
	seed := flag.Int64("seed", 42, "world seed")
	senses := flag.Bool("senses", false, "also cluster the concept's snippets into senses")
	flag.Parse()

	sys := contextrank.Build(contextrank.SmallConfig(*seed))
	inner := sys.Internal()

	if *list > 0 {
		concepts := append([]contextrank.Concept(nil), sys.Concepts()...)
		sort.Slice(concepts, func(i, j int) bool { return concepts[i].Interest > concepts[j].Interest })
		if *list < len(concepts) {
			concepts = concepts[:*list]
		}
		for _, c := range concepts {
			fmt.Printf("%-40q interest=%.2f spec=%.2f quality=%.2f type=%s\n",
				c.Name, c.Interest, c.Specificity, c.Quality, c.Type)
		}
		return
	}

	if *concept == "" {
		fmt.Fprintln(os.Stderr, "need -concept or -list; try -list 20")
		os.Exit(2)
	}
	c := inner.World.ConceptByName(*concept)
	if c == nil {
		fmt.Fprintf(os.Stderr, "concept %q not in this world (seed %d); use -list to browse\n", *concept, *seed)
		os.Exit(1)
	}

	fmt.Printf("concept %q\n", c.Name)
	fmt.Printf("  latent: interest=%.2f specificity=%.2f quality=%.2f topic=%d ambiguous=%v\n",
		c.Interest, c.Specificity, c.Quality, c.Topic, c.Ambiguous())

	f := inner.Fields(c.Name)
	fmt.Println("  interestingness features (Table I):")
	fmt.Printf("    freq_exact=%.2f freq_phrase_contained=%.2f unit_score=%.3f\n",
		f.FreqExact, f.FreqPhraseContained, f.UnitScore)
	fmt.Printf("    searchengine_phrase=%.2f concept_size=%.0f number_of_chars=%.0f\n",
		f.SearchEnginePhrase, f.ConceptSize, f.NumberOfChars)
	fmt.Printf("    subconcepts=%.0f high_level_type=%s wiki_word_count=%.2f\n",
		f.Subconcepts, f.HighLevelType, f.WikiWordCount)

	resources := map[string]relevance.Resource{
		"snippets": relevance.Snippets, "prisma": relevance.Prisma, "suggestions": relevance.Suggestions,
	}
	var names []string
	if *resource == "all" {
		names = []string{"snippets", "prisma", "suggestions"}
	} else if _, ok := resources[*resource]; ok {
		names = []string{*resource}
	} else {
		fmt.Fprintf(os.Stderr, "unknown resource %q\n", *resource)
		os.Exit(2)
	}
	for _, name := range names {
		kws := inner.Miner.Mine(c.Name, resources[name])
		fmt.Printf("  %s keywords: %d terms, summation %.1f (Table II)\n", name, len(kws), kws.Sum())
		for i, e := range kws {
			if i == 8 {
				break
			}
			fmt.Printf("    %-24s %8.2f\n", e.Term, e.Weight)
		}
	}

	if *senses {
		ss := inner.Miner.MineSenses(c.Name, 2, 0)
		fmt.Printf("  senses: %d\n", len(ss))
		for i, s := range ss {
			top := ""
			for j, e := range s.Keywords {
				if j == 5 {
					break
				}
				top += e.Term + " "
			}
			fmt.Printf("    sense %d share=%.2f top terms: %s\n", i, s.Share, top)
		}
	}
}
