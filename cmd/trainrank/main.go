// Command trainrank runs the offline training pipeline: generate the world
// and click data, cross-validate the ranking methods, print the metric
// table, and optionally save the trained model.
//
// Usage:
//
//	trainrank -scale small -folds 5 -o model.json
package main

import (
	"flag"
	"fmt"
	"os"

	"contextrank"
	"contextrank/internal/core"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

func main() {
	seed := flag.Int64("seed", 42, "master seed")
	scale := flag.String("scale", "small", "world scale: small|paper")
	folds := flag.Int("folds", 5, "cross-validation folds")
	out := flag.String("o", "", "write the trained model (JSON) to this file")
	kernel := flag.String("kernel", "linear", "ranking SVM kernel: linear|rbf")
	flag.Parse()

	var cfg contextrank.Config
	switch *scale {
	case "small":
		cfg = contextrank.SmallConfig(*seed)
	case "paper":
		cfg = contextrank.PaperConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	fmt.Println("building system...")
	sys := contextrank.Build(cfg)
	st := sys.DataStats()
	fmt.Printf("click data: %d stories, %d concepts, %d clicks, %d windows\n\n",
		st.CleanStories, st.Concepts, st.Clicks, st.Windows)

	opts := ranksvm.Options{Seed: *seed}
	if *kernel == "rbf" {
		opts.Kernel = ranksvm.RBF
		opts.MaxPairsPerGroup = 10
	}

	inner := sys.Internal()
	groups := inner.Dataset([]relevance.Resource{relevance.Snippets})
	methods := []core.Method{
		&core.RandomMethod{Seed: *seed},
		&core.ConceptVectorMethod{Scorer: inner.Baseline},
		&core.LearnedMethod{Options: opts},
		&core.RelevanceMethod{Resource: relevance.Snippets},
		&core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: opts},
	}
	for _, m := range methods {
		res, err := core.CrossValidate(groups, m, *folds, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(" ", res)
	}

	if *out != "" {
		ranker, err := sys.TrainRanker()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := ranker.SaveModel(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmodel written to %s\n", *out)
	}
}
