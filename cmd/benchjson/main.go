// Command benchjson converts `go test -bench` output on stdin into a JSON
// document mapping each benchmark name to its iteration count and metric
// values (ns/op, B/op, and every b.ReportMetric custom unit). make bench
// uses it to publish BENCH.json, the machine-readable record of the
// reproduction's measured numbers.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... > bench.out
//	benchjson -o BENCH.json < bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result line.
type Entry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines. The format is
//
//	BenchmarkName-8   <iterations>   <value> <unit>   <value> <unit> ...
//
// where the -8 GOMAXPROCS suffix is stripped so the key is stable across
// machines.
func parse(r *os.File) (map[string]Entry, error) {
	benches := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "Benchmark... FAIL" or a header line
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Iterations: iters, Metrics: map[string]float64{}}
		for j := 2; j+1 < len(fields); j += 2 {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[j+1]] = v
		}
		benches[name] = e
	}
	return benches, sc.Err()
}
