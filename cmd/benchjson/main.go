// Command benchjson converts `go test -bench` output on stdin into a JSON
// document mapping each benchmark name to its iteration count and metric
// values (ns/op, B/op, and every b.ReportMetric custom unit). make bench
// uses it to publish BENCH.json, the machine-readable record of the
// reproduction's measured numbers.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... > bench.out
//	benchjson -o BENCH.json < bench.out
//
// With -baseline and one or more -guard flags it also enforces the
// performance contract (DESIGN.md §10): each guard names a benchmark, a
// metric and a maximum ratio against the checked-in baseline, and a breach
// fails the run after BENCH.json is written:
//
//	benchjson -o BENCH.json -baseline BENCH.baseline.json \
//	    -guard 'BenchmarkAnnotate:allocs/op:1.20' < bench.out
//
// -floor enforces an absolute minimum on a metric with no baseline needed —
// the form for metrics that are already normalized, like the parallel
// efficiency parEff-8 (speedup divided by usable cores), where the
// contract is "at least this much" on any machine:
//
//	benchjson -floor 'BenchmarkParallelBuild:parEff-8:0.35' < bench.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result line.
type Entry struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// guardList collects repeated -guard flags.
type guardList []string

func (g *guardList) String() string     { return strings.Join(*g, ",") }
func (g *guardList) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baselinePath := flag.String("baseline", "", "checked-in baseline JSON for -guard checks")
	var guards, floors guardList
	flag.Var(&guards, "guard", "bench:metric:maxRatio — fail when current/baseline exceeds maxRatio (repeatable)")
	flag.Var(&floors, "floor", "bench:metric:min — fail when the metric falls below the absolute minimum (repeatable)")
	flag.Parse()

	benches, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if len(guards) > 0 {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -guard requires -baseline")
			os.Exit(1)
		}
		if err := checkGuards(benches, *baselinePath, guards); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	if err := checkFloors(benches, floors); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// checkFloors enforces absolute metric minimums. Like checkGuards, a
// missing benchmark or metric is a hard error, not a skip.
func checkFloors(benches map[string]Entry, floors []string) error {
	for _, f := range floors {
		parts := strings.Split(f, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -floor %q (want bench:metric:min)", f)
		}
		bench, metric := parts[0], parts[1]
		min, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return fmt.Errorf("bad -floor minimum %q", parts[2])
		}
		cur, ok := benches[bench].Metrics[metric]
		if !ok {
			return fmt.Errorf("floor %s: benchmark %q has no %q metric in this run", f, bench, metric)
		}
		if cur < min {
			return fmt.Errorf("floor FAILED: %s %s = %.4g below minimum %.4g", bench, metric, cur, min)
		}
		fmt.Fprintf(os.Stderr, "floor ok: %s %s = %.4g (minimum %.4g)\n", bench, metric, cur, min)
	}
	return nil
}

// checkGuards compares the parsed results against the baseline file. A
// missing benchmark, metric or baseline entry is a hard error: a silently
// skipped guard is indistinguishable from a passing one.
func checkGuards(benches map[string]Entry, baselinePath string, guards []string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	// Decode entries lazily so annotation keys (e.g. "_comment") and the
	// informational ".prePR" records don't have to be Entry-shaped.
	var baselineRaw map[string]json.RawMessage
	if err := json.Unmarshal(raw, &baselineRaw); err != nil {
		return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	baseline := map[string]Entry{}
	for name, msg := range baselineRaw {
		var e Entry
		if json.Unmarshal(msg, &e) == nil {
			baseline[name] = e
		}
	}
	for _, g := range guards {
		parts := strings.Split(g, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -guard %q (want bench:metric:maxRatio)", g)
		}
		bench, metric := parts[0], parts[1]
		maxRatio, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || maxRatio <= 0 {
			return fmt.Errorf("bad -guard ratio %q", parts[2])
		}
		cur, ok := benches[bench].Metrics[metric]
		if !ok {
			return fmt.Errorf("guard %s: benchmark %q has no %q metric in this run", g, bench, metric)
		}
		base, ok := baseline[bench].Metrics[metric]
		if !ok || base <= 0 {
			return fmt.Errorf("guard %s: baseline %s has no positive %q for %q", g, baselinePath, metric, bench)
		}
		ratio := cur / base
		if ratio > maxRatio {
			return fmt.Errorf("guard FAILED: %s %s = %.4g exceeds baseline %.4g by %.1f%% (limit +%.0f%%)",
				bench, metric, cur, base, 100*(ratio-1), 100*(maxRatio-1))
		}
		fmt.Fprintf(os.Stderr, "guard ok: %s %s = %.4g vs baseline %.4g (%.1f%% of limit +%.0f%%)\n",
			bench, metric, cur, base, 100*(ratio-1), 100*(maxRatio-1))
	}
	return nil
}

// parse extracts benchmark result lines. The format is
//
//	BenchmarkName-8   <iterations>   <value> <unit>   <value> <unit> ...
//
// where the -8 GOMAXPROCS suffix is stripped so the key is stable across
// machines.
func parse(r *os.File) (map[string]Entry, error) {
	benches := map[string]Entry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "Benchmark... FAIL" or a header line
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Iterations: iters, Metrics: map[string]float64{}}
		for j := 2; j+1 < len(fields); j += 2 {
			v, err := strconv.ParseFloat(fields[j], 64)
			if err != nil {
				continue
			}
			e.Metrics[fields[j+1]] = v
		}
		benches[name] = e
	}
	return benches, sc.Err()
}
