// Command experiments regenerates every table and figure of the paper's
// evaluation (§V, §VI) against the synthetic world and prints measured
// values next to the paper's published numbers.
//
// Usage:
//
//	experiments [-run all|table2|table3|table4|table5|table6|fig1|fig2|fig3|production|datastats|framework|featureselection|senses|online] [-seed N] [-scale small|paper] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"contextrank/internal/core"
	"contextrank/internal/editorial"
	"contextrank/internal/features"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

func main() {
	run := flag.String("run", "all", "which experiment to run")
	seed := flag.Int64("seed", 42, "master seed")
	scale := flag.String("scale", "paper", "world scale: small|paper")
	workers := flag.Int("workers", 0, "worker goroutines per parallel stage (1 = serial, 0 = all cores); results are identical for every value")
	flag.Parse()

	cfg := core.Config{Seed: *seed, Workers: *workers}
	switch *scale {
	case "small":
		cfg.World = world.Config{VocabSize: 2000, NumTopics: 10, NumConcepts: 300}
		cfg.Corpus = searchsim.CorpusConfig{MaxDocsPerConcept: 18}
		cfg.News = newsgen.Config{NumStories: 250}
	case "paper":
		cfg.World = world.Config{VocabSize: 6000, NumTopics: 24, NumConcepts: 1200}
		cfg.News = newsgen.Config{NumStories: 1100}
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	fmt.Printf("Building system (seed=%d, scale=%s)...\n", *seed, *scale)
	s := core.Build(cfg)
	st := s.DataStats()
	fmt.Printf("world: %d concepts, %d queries, %d corpus docs; click data: %d/%d stories kept, %d concepts, %d clicks, %d windows\n\n",
		len(s.World.Concepts), s.Log.NumDistinct(), s.Engine.NumDocs(),
		st.CleanStories, st.RawStories, st.Concepts, st.Clicks, st.Windows)

	want := func(name string) bool { return *run == "all" || *run == name }
	folds := 5

	if want("datastats") {
		fmt.Println("== §V-A.1 data statistics (paper: 870 stories, 6420 concepts, 16549 clicks, 947 windows)")
		fmt.Printf("measured: %d stories, %d concepts, %d clicks, %d windows\n\n",
			st.CleanStories, st.Concepts, st.Clicks, st.Windows)
	}

	if want("table2") {
		top, bottom := s.Table2(3)
		fmt.Println("== Table II: relevant-keyword score summations (paper: specific ≈ 9000-9500, low-quality ≈ 1500-2100)")
		for _, r := range top {
			fmt.Printf("  %-45s %10.1f\n", r.Concept, r.Summation)
		}
		fmt.Println("  ...")
		for _, r := range bottom {
			fmt.Printf("  %-45s %10.1f\n", r.Concept, r.Summation)
		}
		fmt.Println()
	}

	if want("table3") || want("fig1") {
		t3, err := s.Table3(folds, *seed)
		check(err)
		fmt.Println("== Table III: weighted error rates, interestingness features (paper: random 50.01, concept-vector 30.22, all 23.69;")
		fmt.Println("   ablations: -QueryLogs 24.50, -Taxonomy 24.47, -SearchResults 23.80, -Other 23.78, -TextBased 23.73)")
		fmt.Printf("  %v\n  %v\n  %v\n", t3.Random, t3.ConceptVector, t3.AllFeatures)
		for g := features.Group(0); g < features.NumGroups; g++ {
			fmt.Printf("  %v\n", t3.Ablations[g])
		}
		fmt.Println()
		if want("fig1") {
			fmt.Println("== Figure 1: NDCG@{1,2,3}, interestingness model vs baselines — see ndcg columns above")
			fmt.Println()
		}
	}

	if want("table4") || want("fig2") {
		t4, err := s.Table4(folds, *seed)
		check(err)
		fmt.Println("== Table IV: relevance-score-only ranking (paper: prisma 32.32, suggestions 31.23, snippets 24.86)")
		fmt.Printf("  %v\n  %v\n", t4.Random, t4.ConceptVector)
		for _, r := range []relevance.Resource{relevance.Prisma, relevance.Suggestions, relevance.Snippets} {
			fmt.Printf("  %v\n", t4.ByResource[r])
		}
		fmt.Println()
		if want("fig2") {
			fmt.Println("== Figure 2: NDCG@{1,2,3} for relevance-score ranking — see ndcg columns above")
			fmt.Println()
		}
	}

	if want("table5") || want("fig3") {
		t5, err := s.Table5(folds, *seed)
		check(err)
		fmt.Println("== Table V: all features (paper: random 50.01, concept-vector 30.22, interestingness 23.69, relevance 24.86, combined 18.66)")
		fmt.Printf("  %v\n  %v\n  %v\n  %v\n  %v\n  %v\n",
			t5.Random, t5.ConceptVector, t5.BestInterest, t5.BestRelevance, t5.Combined, t5.CombinedRBF)
		// Paired bootstrap: is the combined model's gain over the
		// interestingness-only model significant?
		groups := s.Dataset([]relevance.Resource{relevance.Snippets})
		sig, err := core.CompareMethods(groups,
			&core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: *seed}},
			&core.LearnedMethod{Options: ranksvm.Options{Seed: *seed}},
			folds, *seed)
		check(err)
		fmt.Printf("  combined vs interestingness-only: Δ weighted error %+.2f points, 95%% CI [%+.2f, %+.2f], p=%.3f\n\n",
			100*sig.DeltaObserved, 100*sig.CILow, 100*sig.CIHigh, sig.PValue)
		if want("fig3") {
			fmt.Println("== Figure 3: NDCG@{1,2,3} with all features — see ndcg columns above")
			fmt.Println()
		}
	}

	if want("table6") {
		t6, err := s.Table6(core.EditorialConfig{Seed: *seed})
		check(err)
		fmt.Println("== Table VI: editorial study (paper: ranked algorithm raises Very-Interesting 32.6→45.4 news / 35.9→41.6 answers,")
		fmt.Println("   Very-Relevant 53.0→66.3 news / 50.3→61.3 answers; overall bad terms 23.3% → 12.8%)")
		p := func(label string, t editorial.Tally) {
			fmt.Printf("  %-28s very-int=%5.1f%% some-int=%5.1f%% not-int=%5.1f%% | very-rel=%5.1f%% some-rel=%5.1f%% not-rel=%5.1f%%\n",
				label,
				t.InterestPct(editorial.Very), t.InterestPct(editorial.Somewhat), t.InterestPct(editorial.Not),
				t.RelevancePct(editorial.Very), t.RelevancePct(editorial.Somewhat), t.RelevancePct(editorial.Not))
		}
		p("News / Concept Vector", t6.NewsCV)
		p("News / Ranking Algorithm", t6.NewsRanked)
		p("Answers / Concept Vector", t6.AnswersCV)
		p("Answers / Ranking Algorithm", t6.AnswersRanked)
		badBefore := (t6.NewsCV.BadPct() + t6.AnswersCV.BadPct()) / 2
		badAfter := (t6.NewsRanked.BadPct() + t6.AnswersRanked.BadPct()) / 2
		fmt.Printf("  overall bad terms: %.1f%% -> %.1f%% (paper: 23.3%% -> 12.8%%)\n", badBefore, badAfter)
		fmt.Printf("  judge panel agreement (Cohen's kappa): interest %.2f, relevance %.2f\n\n",
			t6.InterestKappa, t6.RelevanceKappa)
	}

	if want("production") {
		p, err := s.ProductionExperiment(3, 400, *seed+500)
		check(err)
		fmt.Println("== §V-C production experiment (paper: views -52.5%, clicks -2.0%, CTR +100.1%)")
		fmt.Printf("  views %+.1f%%, clicks %+.1f%%, CTR %+.1f%%\n\n",
			p.ViewsChangePct(), p.ClicksChangePct(), p.CTRChangePct())
	}

	if want("framework") {
		runFramework(s, *seed)
	}

	if want("featureselection") {
		runFeatureSelection(s, *seed)
	}
	if want("senses") {
		runSenses(s)
	}
	if want("online") {
		runOnline(s, *seed)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
