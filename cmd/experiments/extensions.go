package main

import (
	"fmt"
	"math/rand"

	"contextrank/internal/core"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/online"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/world"
)

// runFeatureSelection reproduces the §IV-A negative result: the candidate
// features the paper evaluated and eliminated do not improve the model.
func runFeatureSelection(s *core.System, seed int64) {
	fmt.Println("== §IV-A feature selection (paper: eliminated candidates 'prove not to improve upon' the selected features)")
	selected, withEliminated, err := s.FeatureSelection(5, seed)
	check(err)
	fmt.Printf("  %v\n  %v\n", selected, withEliminated)
	delta := 100 * (selected.WeightedErrorRate - withEliminated.WeightedErrorRate)
	fmt.Printf("  adding the eliminated candidates changes the error by %+.2f points\n\n", -delta)
}

// runSenses reproduces the §IV-C ambiguity discussion: sense-clustered
// keyword packs recover contexts the diluted global pack misses.
func runSenses(s *core.System) {
	fmt.Println("== §IV-C ambiguous concepts (paper: 'there would be some good local clusters ... the scores can be boosted')")
	global, sense, n := s.SenseExperiment(2)
	if n == 0 {
		fmt.Println("  no ambiguous mentions in the click corpus")
		return
	}
	fmt.Printf("  %d ambiguous relevant mentions: global-pack coverage %.3f, best-sense coverage %.3f (%+.0f%%)\n\n",
		n, global, sense, 100*(sense-global)/global)
}

// runOnline reproduces the §VIII future-work scenario: live CTR spikes
// re-rank a breaking-news concept in real time.
func runOnline(s *core.System, seed int64) {
	fmt.Println("== §VIII online adaptation (paper future work: 'react intelligently to world events in real time')")
	learned := &core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: seed}}
	check(learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})))
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.Fields(n) })
	packs := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	rt := framework.NewRuntime(s.Pipeline, table, packs, learned.Model())

	var cold, hot *world.Concept
	for i := range s.World.Concepts {
		c := &s.World.Concepts[i]
		if c.LowQuality() || c.Topic < 0 || s.Units.Score(c.Name) < 0.35 {
			continue
		}
		if cold == nil || c.Interest < cold.Interest {
			cold = c
		}
		if hot == nil || c.Interest > hot.Interest {
			hot = c
		}
	}
	if cold == nil || hot == nil || cold == hot {
		fmt.Println("  no suitable concept pair")
		return
	}
	rng := rand.New(rand.NewSource(seed + 31))
	doc, _ := s.World.ComposeDoc(world.ComposeOptions{Topic: cold.Topic, Sentences: 12},
		[]world.Mention{
			{Concept: cold, Relevant: true, Repeat: 2},
			{Concept: hot, Relevant: hot.Topic == cold.Topic},
		}, rng)

	tracker := online.NewTracker(online.Config{HalfLifeTicks: 4, MinViews: 50, MaxBoost: 6})
	tracker.SetBaseline(cold.Name, 0.005)
	adj := online.NewAdjuster(rt, tracker, 3)
	result := core.RunBreakingNews(adj, tracker, cold.Name, doc, seed+32)
	fmt.Printf("  concept %q (interest %.2f): rank %d before the spike -> %d during -> %d after decay\n\n",
		result.Concept, cold.Interest, result.StaticRank, result.BoostedRank, result.DecayedRank)
}
