package main

import (
	"fmt"
	"math/rand"

	"contextrank/internal/core"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

// runFramework reproduces the §VI experiments: memory footprints of the
// packed tables (18 B/concept interestingness, 400 B/concept keywords,
// Golomb savings) and the stemmer/ranker throughput over randomly chosen
// documents (the paper used 1445 documents averaging 2.5 KB with 6.45
// detections; their 2007 Opteron measured 7.9 and 2.4 MB/s).
func runFramework(s *core.System, seed int64) {
	fmt.Println("== §VI framework: memory layout and throughput")

	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.Fields(n) })
	perConcept := float64(table.MemoryBytes()) / float64(table.Len())
	fmt.Printf("  interestingness table: %d concepts, %d bytes (%.0f B/concept; paper: 18 B -> 18 MB per 1M concepts)\n",
		table.Len(), table.MemoryBytes(), perConcept)

	packs := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	perPack := float64(packs.TotalBytes()) / float64(packs.Len())
	fmt.Printf("  keyword packs: %d concepts, %d bytes raw (%.0f B/concept; paper: 400 B -> 400 MB per 1M concepts), %d TIDs interned\n",
		packs.Len(), packs.TotalBytes(), perPack, packs.TIDs.Len())

	compressed := 0
	for _, n := range names {
		compressed += packs.Compress(n).Bytes()
	}
	fmt.Printf("  golomb-compressed packs: %d bytes (%.1f%% of raw; paper suggests Golomb coding as a further reduction)\n",
		compressed, 100*float64(compressed)/float64(packs.TotalBytes()))

	// Train the production model and measure throughput on fresh documents.
	learned := &core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: seed}}
	if err := learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		fmt.Println("  model training failed:", err)
		return
	}
	model := learned.Model()
	rt := framework.NewRuntime(s.Pipeline, table, packs, model)

	rng := rand.New(rand.NewSource(seed + 9))
	docs := newsgen.Generate(s.World, newsgen.Config{Seed: seed + 9, NumStories: 400, MinSentences: 12, MaxSentences: 24})
	totalBytes, totalDetections := 0, 0
	for i := range docs {
		anns := rt.Annotate(docs[i].Text, 0)
		totalBytes += len(docs[i].Text)
		totalDetections += len(anns)
	}
	_ = rng
	stemMBps, rankMBps := rt.Throughput()
	fmt.Printf("  %d docs, avg %.1f KB, avg %.2f detections/doc (paper: 1445 docs, 2.5 KB, 6.45 detections)\n",
		len(docs), float64(totalBytes)/float64(len(docs))/1024, float64(totalDetections)/float64(len(docs)))
	fmt.Printf("  throughput: stemmer %.1f MB/s, ranker %.1f MB/s (paper on 2007 hardware: 7.9 and 2.4 MB/s)\n\n",
		stemMBps, rankMBps)
}
