package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmall drives the tool end to end at a tiny scale: build, freeze,
// sweep and both query kinds must succeed and report sane stats.
func TestRunSmall(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-stories", "2000", "-concepts", "150", "-sweeps", "4",
		"-related", "c0", "-rewrite", "c0", "-k", "5",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"graph    150 concepts x 2000 stories",
		"frozen   ",
		"sweeps   4 in ",
		`related("c0"):`,
		`rewrite("c0"):`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunUnknownConcept: querying a concept outside the synthesized name
// space fails with a non-zero exit and a hint on stderr.
func TestRunUnknownConcept(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-stories", "500", "-concepts", "50", "-sweeps", "0",
		"-related", "no-such-concept",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown concept should exit non-zero")
	}
	if !strings.Contains(stderr.String(), "not in graph") {
		t.Fatalf("stderr missing hint: %s", stderr.String())
	}
}

// TestRunBadFlag: flag errors exit 2 without panicking.
func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag exit = %d, want 2", code)
	}
}
