// Command clickgraph builds, freezes and queries a click graph at
// configurable scale: it synthesizes an ORCAS-scale click log (or any
// smaller one), freezes the compressed CSR adjacency, runs a propagation
// sweep schedule, and answers Related/Rewrite queries — printing the
// timings and compression stats the 2-second/35% contracts are written
// against.
//
// Usage:
//
//	clickgraph                                   # default 250k stories, 4k concepts
//	clickgraph -stories 345000 -sweeps 10        # the benchmark shape
//	clickgraph -related c17 -rewrite c17 -k 10   # query after the sweeps
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"contextrank/internal/clickgraph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clickgraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	stories := fs.Int("stories", 250_000, "number of story nodes to synthesize")
	concepts := fs.Int("concepts", 4_000, "number of concept nodes to synthesize")
	seed := fs.Int64("seed", 42, "synthesis seed")
	workers := fs.Int("workers", 8, "worker count for build, freeze and sweeps")
	sweeps := fs.Int("sweeps", 10, "propagation sweeps to run after freezing")
	related := fs.String("related", "", "concept name to expand with Related")
	rewrite := fs.String("rewrite", "", "concept name to expand with Rewrite")
	k := fs.Int("k", 10, "result count for -related/-rewrite")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := clickgraph.SynthConfig{Seed: *seed, Stories: *stories, Concepts: *concepts}

	t0 := time.Now()
	g := clickgraph.Synthesize(cfg, *workers)
	build := time.Since(t0)

	t1 := time.Now()
	g.FreezeWorkers(*workers)
	freeze := time.Since(t1)

	st := g.Stats()
	fmt.Fprintf(stdout, "graph    %d concepts x %d stories, %d edges, %d clicks\n",
		st.Concepts, st.Stories, st.Edges, st.TotalClicks)
	fmt.Fprintf(stdout, "frozen   %d bytes (raw %d, ratio %.4f), %d bitmap rows, %d skip entries\n",
		st.FrozenBytes, st.RawBytes, float64(st.FrozenBytes)/float64(st.RawBytes), st.BitmapRows, st.SkipEntries)
	fmt.Fprintf(stdout, "build    %v\n", build.Round(time.Millisecond))
	fmt.Fprintf(stdout, "freeze   %v\n", freeze.Round(time.Millisecond))

	if *sweeps > 0 {
		p := clickgraph.NewPropagator(g)
		p.SeedUniform()
		t2 := time.Now()
		p.SweepN(*sweeps, *workers)
		sweep := time.Since(t2)
		fmt.Fprintf(stdout, "sweeps   %d in %v (%v/sweep, %d workers)\n",
			*sweeps, sweep.Round(time.Millisecond),
			(sweep / time.Duration(*sweeps)).Round(time.Millisecond), *workers)
	}
	fmt.Fprintf(stdout, "total    %v\n", time.Since(t0).Round(time.Millisecond))

	exit := 0
	if *related != "" {
		exit |= printQuery(stdout, stderr, "related", *related, g.Related(*related, *k))
	}
	if *rewrite != "" {
		exit |= printQuery(stdout, stderr, "rewrite", *rewrite, g.Rewrite(*rewrite, *k))
	}
	return exit
}

func printQuery(stdout, stderr io.Writer, kind, concept string, results []clickgraph.Scored) int {
	if results == nil {
		fmt.Fprintf(stderr, "%s: concept %q not in graph (names are c0..cN)\n", kind, concept)
		return 1
	}
	fmt.Fprintf(stdout, "%s(%q):\n", kind, concept)
	for i, r := range results {
		fmt.Fprintf(stdout, "  %2d. %-12s %.6f\n", i+1, r.Name, r.Score)
	}
	return 0
}
