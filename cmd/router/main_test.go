package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"contextrank"
	"contextrank/internal/cluster"
	"contextrank/internal/resilience"
	"contextrank/internal/serve"
)

func TestParseShards(t *testing.T) {
	shards, err := parseShards("a=http://h1:1, b=http://h2:2/ ,c=http://h3:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.Shard{
		{Name: "a", URL: "http://h1:1"},
		{Name: "b", URL: "http://h2:2"}, // trailing slash trimmed
		{Name: "c", URL: "http://h3:3"},
	}
	if len(shards) != len(want) {
		t.Fatalf("parsed %d shards, want %d", len(shards), len(want))
	}
	for i := range want {
		if shards[i] != want[i] {
			t.Fatalf("shard %d = %+v, want %+v", i, shards[i], want[i])
		}
	}
	for _, bad := range []string{"", "nourl", "=http://h:1", "a=", "a=http://h:1,,b=http://h:2"} {
		if _, err := parseShards(bad); err == nil {
			t.Fatalf("shard list %q parsed without error", bad)
		}
	}
}

func TestRouterWriteTimeoutSizing(t *testing.T) {
	if got := routerWriteTimeout(0); got != 30*time.Second {
		t.Fatalf("floor = %v", got)
	}
	if got := routerWriteTimeout(time.Minute); got != 70*time.Second {
		t.Fatalf("budget = %v", got)
	}
}

// TestRouterGracefulDrain proves the router's SIGTERM contract without any
// shards: an in-flight routed request completes, readiness flips off, and
// serveUntilSignal returns nil within the drain deadline.
func TestRouterGracefulDrain(t *testing.T) {
	rt, err := cluster.New(cluster.Config{Shards: []cluster.Shard{{Name: "s0", URL: "http://127.0.0.1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		time.Sleep(300 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})
	httpServer := &http.Server{Handler: handler}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	go func() { done <- serveUntilSignal(httpServer, rt, ln, sig, 5*time.Second, null) }()

	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request status %d", resp.StatusCode)
			}
		}
		reqErr <- err
	}()
	<-inFlight
	sig <- syscall.SIGTERM

	if err := <-done; err != nil {
		t.Fatalf("serveUntilSignal = %v, want nil", err)
	}
	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if rt.Ready() {
		t.Fatal("readiness not flipped off during drain")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

func TestStartProbeLoopDisabled(t *testing.T) {
	rt, err := cluster.New(cluster.Config{Shards: []cluster.Shard{{Name: "s0", URL: "http://127.0.0.1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	stop := startProbeLoop(rt, 0)
	stop() // must be a no-op, not a close of an unowned channel
}

// ---------------------------------------------------------------------------
// Multi-process differential test.
// ---------------------------------------------------------------------------

// clusterHarness is the spawned topology: three cmd/serve -shard processes,
// one plain cmd/serve reference process (the single-process engine routed
// responses are byte-compared against), and the two built binaries.
type clusterHarness struct {
	serveBin, routerBin string
	shardNames          []string
	shardAddrs          []string
	shardProcs          []*managedProc
	refAddr             string
	client              *http.Client
}

type managedProc struct {
	cmd  *exec.Cmd
	addr string
}

// startProc launches bin, waits for the "<readyPrefix><addr>" line on
// stderr, and returns the managed process. The process is killed at test
// cleanup unless it has already been killed explicitly.
func startProc(t *testing.T, bin, readyPrefix string, args ...string) *managedProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, readyPrefix); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &managedProc{cmd: cmd, addr: addr}
	case <-time.After(90 * time.Second):
		t.Fatalf("%s %v never reported ready", filepath.Base(bin), args)
		return nil
	}
}

var (
	harnessOnce sync.Once
	harnessBins struct {
		dir, serveBin, routerBin, bundle string
		err                              error
	}
)

// buildArtifacts compiles the serve and router binaries once per test run
// and writes the shared offline bundle all processes load.
func buildArtifacts(t *testing.T) (serveBin, routerBin, bundle string) {
	t.Helper()
	harnessOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cluster-harness-")
		if err != nil {
			harnessBins.err = err
			return
		}
		harnessBins.dir = dir
		harnessBins.serveBin = filepath.Join(dir, "serve")
		harnessBins.routerBin = filepath.Join(dir, "router")
		harnessBins.bundle = filepath.Join(dir, "bundle.bin")
		for _, build := range [][]string{
			{"build", "-o", harnessBins.serveBin, "contextrank/cmd/serve"},
			{"build", "-o", harnessBins.routerBin, "contextrank/cmd/router"},
		} {
			cmd := exec.Command("go", build...)
			cmd.Dir = "../.."
			if out, err := cmd.CombinedOutput(); err != nil {
				harnessBins.err = fmt.Errorf("go %v: %v\n%s", build, err, out)
				return
			}
		}
		sys := contextrank.Build(contextrank.SmallConfig(42))
		ranker, err := sys.TrainRanker()
		if err != nil {
			harnessBins.err = err
			return
		}
		f, err := os.Create(harnessBins.bundle)
		if err != nil {
			harnessBins.err = err
			return
		}
		if err := ranker.SaveBundle(f); err != nil {
			harnessBins.err = err
			return
		}
		harnessBins.err = f.Close()
	})
	if harnessBins.err != nil {
		t.Fatal(harnessBins.err)
	}
	return harnessBins.serveBin, harnessBins.routerBin, harnessBins.bundle
}

// startCluster spawns the shard fleet plus the single-process reference
// engine, all loading the same bundle.
func startCluster(t *testing.T) *clusterHarness {
	t.Helper()
	serveBin, routerBin, bundle := buildArtifacts(t)
	h := &clusterHarness{
		serveBin:   serveBin,
		routerBin:  routerBin,
		shardNames: []string{"shard0", "shard1", "shard2"},
		client:     &http.Client{Timeout: 15 * time.Second},
	}
	for i := 0; i < 4; i++ {
		args := []string{"-addr", "127.0.0.1:0", "-bundle", bundle, "-request-timeout", "5s"}
		if i < 3 {
			args = append(args, "-shard")
		}
		p := startProc(t, serveBin, "serving on ", args...)
		if i < 3 {
			h.shardProcs = append(h.shardProcs, p)
			h.shardAddrs = append(h.shardAddrs, p.addr)
		} else {
			h.refAddr = p.addr
		}
	}
	return h
}

func (h *clusterHarness) shardFlag() string {
	parts := make([]string, len(h.shardNames))
	for i, name := range h.shardNames {
		parts[i] = name + "=http://" + h.shardAddrs[i]
	}
	return strings.Join(parts, ",")
}

// startRouter spawns a fresh router process over the shared shard fleet.
// Each phase gets its own router so its counters start from zero.
func (h *clusterHarness) startRouter(t *testing.T, extra ...string) *managedProc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-shards", h.shardFlag(),
		"-replication", "2",
		"-probe-interval", "0", // tests drive probe rounds explicitly
		"-request-timeout", "8s",
	}, extra...)
	return startProc(t, h.routerBin, "routing on ", args...)
}

type httpReply struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

func (h *clusterHarness) post(t *testing.T, addr, text string, top int, tenant string) httpReply {
	t.Helper()
	body, err := json.Marshal(serve.AnnotateRequest{Text: text, Top: top})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/annotate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", addr, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return httpReply{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        data,
	}
}

// postBoth routes text through the router and directly through the
// reference engine and requires byte-identical responses.
func (h *clusterHarness) postBoth(t *testing.T, routerAddr, text string, top int) httpReply {
	t.Helper()
	got := h.post(t, routerAddr, text, top, "")
	want := h.post(t, h.refAddr, text, top, "")
	if got.status != want.status {
		t.Fatalf("%q: router status %d, single-process engine %d", text, got.status, want.status)
	}
	if got.contentType != want.contentType {
		t.Fatalf("%q: router Content-Type %q, engine %q", text, got.contentType, want.contentType)
	}
	if !bytes.Equal(got.body, want.body) {
		t.Fatalf("%q: routed response diverged from the single-process engine:\nrouter: %s\nengine: %s",
			text, got.body, want.body)
	}
	return got
}

func (h *clusterHarness) statz(t *testing.T, addr string) cluster.Statz {
	t.Helper()
	resp, err := h.client.Get("http://" + addr + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (h *clusterHarness) probe(t *testing.T, addr string) cluster.ProbeResult {
	t.Helper()
	resp, err := h.client.Post("http://"+addr+"/admin/probe", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr cluster.ProbeResult
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// phaseDoc is deliberately rich: e-mail + URL patterns annotate even when
// the small world's mined concepts miss.
func phaseDoc(phase string, i int) string {
	return fmt.Sprintf("Doc %s-%d: contact press@example.com about the market report and the latest trade figures from https://example.com/news today.", phase, i)
}

// TestClusterDifferential is the acceptance test for the sharded serving
// tier: a real cmd/router process in front of three cmd/serve -shard
// processes must return byte-identical /v1/annotate responses to a
// single-process engine loaded from the same bundle, under every planned
// fault — injected shard downs, injected slow replicas, flapping health
// probes, a real shard kill — with failover/hedge/breaker counters in
// /statz exactly matching the replayed chaos plan, bit-identical across
// runs.
func TestClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	// The CI matrix pins different seeds via CHAOS_SEED; every counter
	// assertion below derives its expectation from the seed, so any value
	// must pass.
	seed := int64(42)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
		}
		seed = parsed
	}
	seedFlag := fmt.Sprint(seed)
	h := startCluster(t)

	// Phase 1 — healthy cluster, run twice: byte-identical responses and
	// bit-identical counters across runs.
	var healthyRuns []cluster.CountersSnapshot
	for run := 0; run < 2; run++ {
		router := h.startRouter(t, "-seed", seedFlag, "-hedge-delay", "500ms", "-hedge-jitter", "0s")
		for i := 0; i < 6; i++ {
			rep := h.postBoth(t, router.addr, phaseDoc("healthy", i), 3)
			if rep.status != http.StatusOK {
				t.Fatalf("healthy run %d request %d: status %d", run, i, rep.status)
			}
		}
		st := h.statz(t, router.addr)
		want := cluster.CountersSnapshot{Requests: 6}
		if st.Router != want {
			t.Fatalf("healthy run %d counters = %+v, want %+v", run, st.Router, want)
		}
		healthyRuns = append(healthyRuns, st.Router)
		_ = router.cmd.Process.Kill()
	}
	if healthyRuns[0] != healthyRuns[1] {
		t.Fatalf("healthy counters differ across runs: %+v vs %+v", healthyRuns[0], healthyRuns[1])
	}

	// Phase 2 — injected shard crashes (p=0.5, seed 7): the planned downs
	// fail over and every response still matches the engine. Expected
	// counters come from replaying the pure plan, and two runs agree bit
	// for bit.
	const downN = 8
	// Derive the injector seed from CHAOS_SEED, skipping the rare seeds
	// whose 8-request plan is all-down or all-healthy (those would make
	// the failover assertion vacuous).
	downSeed := seed
	var plannedDowns int64
	for {
		planInj := resilience.NewInjector(resilience.InjectorConfig{Seed: downSeed, ShardDownP: 0.5})
		plannedDowns = 0
		for i := 0; i < downN; i++ {
			if planInj.ClusterPlanAt(i).DownPrimary {
				plannedDowns++
			}
		}
		if plannedDowns > 0 && plannedDowns < downN {
			break
		}
		downSeed++
	}
	var downRuns []cluster.CountersSnapshot
	for run := 0; run < 2; run++ {
		router := h.startRouter(t, "-seed", seedFlag, "-hedge-delay", "0s",
			"-chaos-seed", fmt.Sprint(downSeed), "-chaos-down-p", "0.5")
		for i := 0; i < downN; i++ {
			h.postBoth(t, router.addr, phaseDoc("down", i), 3)
		}
		st := h.statz(t, router.addr)
		want := cluster.CountersSnapshot{
			Requests:      downN,
			Failovers:     plannedDowns,
			InjectedDowns: plannedDowns,
		}
		if st.Router != want {
			t.Fatalf("down run %d counters = %+v, want %+v", run, st.Router, want)
		}
		downRuns = append(downRuns, st.Router)
		_ = router.cmd.Process.Kill()
	}
	if downRuns[0] != downRuns[1] {
		t.Fatalf("chaos counters differ across runs: %+v vs %+v", downRuns[0], downRuns[1])
	}

	// Phase 3 — injected slow replicas (p=1): every primary stalls for 3s,
	// the hedge fires at ~100ms and wins, and the hedged response is still
	// byte-identical to the engine.
	{
		const slowN = 4
		router := h.startRouter(t, "-seed", seedFlag,
			"-hedge-delay", "100ms", "-hedge-jitter", "40ms",
			"-chaos-seed", seedFlag, "-chaos-slow-p", "1", "-chaos-slow-delay", "3s")
		start := time.Now()
		for i := 0; i < slowN; i++ {
			h.postBoth(t, router.addr, phaseDoc("slow", i), 3)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("hedges did not mask the 3s stalls: %d requests took %v", slowN, elapsed)
		}
		st := h.statz(t, router.addr)
		want := cluster.CountersSnapshot{
			Requests:      slowN,
			Hedges:        slowN,
			HedgeWins:     slowN,
			InjectedSlows: slowN,
		}
		if st.Router != want {
			t.Fatalf("slow-phase counters = %+v, want %+v", st.Router, want)
		}
		_ = router.cmd.Process.Kill()
	}

	// Phase 4 — per-tenant quota at the router front door: burst 2, third
	// request refused with 429 + Retry-After before any routing work.
	{
		router := h.startRouter(t, "-seed", seedFlag, "-quota-burst", "2")
		for i := 0; i < 2; i++ {
			if rep := h.post(t, router.addr, phaseDoc("quota", i), 3, "acme"); rep.status != http.StatusOK {
				t.Fatalf("quota request %d: status %d", i, rep.status)
			}
		}
		rep := h.post(t, router.addr, phaseDoc("quota", 2), 3, "acme")
		if rep.status != http.StatusTooManyRequests {
			t.Fatalf("over-budget tenant: status %d, want 429", rep.status)
		}
		if rep.retryAfter == "" {
			t.Fatal("429 without Retry-After")
		}
		if rep := h.post(t, router.addr, phaseDoc("quota", 3), 3, "other"); rep.status != http.StatusOK {
			t.Fatalf("second tenant refused: status %d", rep.status)
		}
		st := h.statz(t, router.addr)
		if st.Router.Requests != 3 { // the 429 never became a routed request
			t.Fatalf("requests = %d, want 3", st.Router.Requests)
		}
		if st.Resilience.QuotaDenied != 1 {
			t.Fatalf("quota_denied = %d, want 1", st.Resilience.QuotaDenied)
		}
		if st.QuotaTenants != 2 {
			t.Fatalf("quota_tenants = %d, want 2", st.QuotaTenants)
		}
		_ = router.cmd.Process.Kill()
	}

	// Phase 5 — flapping health checks (p=1): one explicit probe round
	// marks every shard unhealthy, so the next request exhausts its
	// replica set — exactly 3 injected flaps, 2 health skips, one 503.
	{
		router := h.startRouter(t, "-seed", seedFlag, "-chaos-seed", seedFlag, "-chaos-flap-p", "1")
		pr := h.probe(t, router.addr)
		for i, healthy := range pr.Healthy {
			if healthy {
				t.Fatalf("flap round left shard %d healthy", i)
			}
		}
		rep := h.post(t, router.addr, phaseDoc("flap", 0), 3, "")
		if rep.status != http.StatusServiceUnavailable {
			t.Fatalf("all-flapped cluster: status %d, want 503", rep.status)
		}
		if rep.retryAfter == "" {
			t.Fatal("503 without Retry-After")
		}
		st := h.statz(t, router.addr)
		want := cluster.CountersSnapshot{
			Requests:          1,
			HealthSkips:       2,
			ReplicasExhausted: 1,
			InjectedFlaps:     3,
		}
		if st.Router != want {
			t.Fatalf("flap-phase counters = %+v, want %+v", st.Router, want)
		}
		_ = router.cmd.Process.Kill()
	}

	// Phase 6 (destructive, last) — a real shard crash: kill shard2 with
	// SIGKILL and walk the breaker state machine against its seeded
	// cooldown schedule, replayed from BreakerCooldownAt. Every routed
	// request still matches the single-process engine via failover.
	{
		deadShard := 2
		_ = h.shardProcs[deadShard].cmd.Process.Kill()
		_, _ = h.shardProcs[deadShard].cmd.Process.Wait()

		router := h.startRouter(t, "-seed", seedFlag, "-hedge-delay", "0s",
			"-breaker-threshold", "2", "-breaker-min-skip", "2", "-breaker-max-skip", "4")
		bcfg := resilience.BreakerConfig{Threshold: 2, MinSkip: 2, MaxSkip: 4, Seed: seed, Stream: deadShard}
		cool0 := resilience.BreakerCooldownAt(bcfg, 0)

		// Texts whose ring primary is the dead shard, replayed from the
		// same ring + cache key the router uses.
		ring := cluster.NewRing(h.shardNames, 0)
		var texts []string
		for i := 0; len(texts) < 2+cool0+1; i++ {
			text := phaseDoc("crash", i)
			if ring.Replicas(serve.CacheKey(text, 3), 1)[0] == deadShard {
				texts = append(texts, text)
			}
		}

		for i, text := range texts {
			rep := h.postBoth(t, router.addr, text, 3)
			if rep.status != http.StatusOK {
				t.Fatalf("crash-phase request %d: status %d", i, rep.status)
			}
		}
		st := h.statz(t, router.addr)
		want := cluster.CountersSnapshot{
			Requests:      int64(len(texts)),
			Failovers:     3, // 2 trip attempts + 1 failed half-open probe
			BreakerSkips:  int64(cool0),
			BreakerProbes: 1,
		}
		if st.Router != want {
			t.Fatalf("crash-phase counters = %+v, want %+v", st.Router, want)
		}
		var dead *cluster.StatzShard
		for i := range st.Shards {
			if st.Shards[i].Name == h.shardNames[deadShard] {
				dead = &st.Shards[i]
			}
		}
		if dead == nil {
			t.Fatal("dead shard missing from /statz")
		}
		if dead.BreakerState != "open" || dead.BreakerOpens != 2 {
			t.Fatalf("dead shard breaker %s opens=%d, want open opens=2", dead.BreakerState, dead.BreakerOpens)
		}
		_ = router.cmd.Process.Kill()
	}
}
