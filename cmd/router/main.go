// Command router runs the cluster routing tier in front of cmd/serve
// -shard processes: it consistent-hashes /v1/annotate requests across the
// shard set with replica failover, hedged reads, per-shard circuit
// breakers, per-tenant quotas, and request coalescing (internal/cluster,
// DESIGN.md §8).
//
// Usage:
//
//	router -addr :8090 \
//	  -shards shard0=http://127.0.0.1:8081,shard1=http://127.0.0.1:8082,shard2=http://127.0.0.1:8083 \
//	  -replication 2 -seed 42
//
// Try it:
//
//	curl -s localhost:8090/healthz
//	curl -s localhost:8090/statz
//	curl -s -X POST localhost:8090/v1/annotate -d '{"text":"...","top":3}'
//
// Chaos flags (-chaos-*) enable the deterministic cluster fault planes:
// with a fixed -chaos-seed the same routed requests hit the same
// simulated shard crashes and slow replicas on every run, which is how
// the failover/hedge/breaker counters in /statz are asserted in CI.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"contextrank/internal/cluster"
	"contextrank/internal/resilience"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated name=url shard list (required)")
	replication := flag.Int("replication", 2, "replicas per key range (failover depth)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the ring (0 = default)")
	seed := flag.Int64("seed", 42, "seed for breaker cooldowns and hedge jitter")

	requestTimeout := flag.Duration("request-timeout", 5*time.Second, "end-to-end budget per routed request, across all attempts (0 = none)")
	perTryTimeout := flag.Duration("per-try-timeout", 2*time.Second, "budget per shard attempt (0 = none)")
	hedgeDelay := flag.Duration("hedge-delay", 250*time.Millisecond, "base wait before hedging to the next replica (0 = hedging off)")
	hedgeJitter := flag.Duration("hedge-jitter", 100*time.Millisecond, "seeded jitter added to the hedge delay")

	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open a shard's breaker (0 = breakers off)")
	breakerMinSkip := flag.Int("breaker-min-skip", 4, "minimum requests shed per breaker cooldown")
	breakerMaxSkip := flag.Int("breaker-max-skip", 8, "maximum requests shed per breaker cooldown")

	quotaBurst := flag.Int("quota-burst", 0, "per-tenant token-bucket burst (0 = quotas disabled)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant token refill rate per second (0 = pure burst budget)")

	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health-probe round interval (0 = only POST /admin/probe drives rounds)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline after SIGTERM")

	chaosSeed := flag.Int64("chaos-seed", 1, "cluster fault-injection seed (used when any -chaos-*-p is > 0)")
	chaosDownP := flag.Float64("chaos-down-p", 0, "probability a routed request's primary attempt fails as a crashed shard")
	chaosSlowP := flag.Float64("chaos-slow-p", 0, "probability a routed request's primary attempt stalls for -chaos-slow-delay")
	chaosSlowDelay := flag.Duration("chaos-slow-delay", 5*time.Second, "injected slow-replica stall")
	chaosFlapP := flag.Float64("chaos-flap-p", 0, "probability one health probe of one shard is forced to fail")
	flag.Parse()

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fatal(err)
	}

	cfg := cluster.Config{
		Shards:           shards,
		Replication:      *replication,
		Vnodes:           *vnodes,
		RequestTimeout:   *requestTimeout,
		PerTryTimeout:    *perTryTimeout,
		Seed:             *seed,
		BreakerThreshold: *breakerThreshold,
		BreakerMinSkip:   *breakerMinSkip,
		BreakerMaxSkip:   *breakerMaxSkip,
		HedgeDelay:       *hedgeDelay,
		HedgeJitter:      *hedgeJitter,
		Quota:            resilience.NewQuota(resilience.QuotaConfig{Burst: *quotaBurst, RatePerSec: *quotaRate}),
	}
	if *chaosDownP > 0 || *chaosSlowP > 0 || *chaosFlapP > 0 {
		cfg.Injector = resilience.NewInjector(resilience.InjectorConfig{
			Seed:             *chaosSeed,
			ShardDownP:       *chaosDownP,
			SlowReplicaP:     *chaosSlowP,
			SlowReplicaDelay: *chaosSlowDelay,
			FlapP:            *chaosFlapP,
		})
		fmt.Fprintf(os.Stderr, "cluster chaos enabled (seed %d)\n", *chaosSeed)
	}
	rt, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}

	httpServer := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      routerWriteTimeout(*requestTimeout),
		IdleTimeout:       120 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	stopProbes := startProbeLoop(rt, *probeInterval)
	defer stopProbes()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "routing on %s (%d shards, replication %d)\n", ln.Addr(), len(shards), *replication)
	if err := serveUntilSignal(httpServer, rt, ln, sig, *drainTimeout, os.Stderr); err != nil {
		fatal(err)
	}
}

// parseShards turns "name=url,name=url" into the shard topology, keeping
// flag order (it defines each shard's breaker stream).
func parseShards(s string) ([]cluster.Shard, error) {
	if s == "" {
		return nil, errors.New("router: -shards is required (name=url,...)")
	}
	var out []cluster.Shard
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("router: malformed shard %q, want name=url", part)
		}
		out = append(out, cluster.Shard{Name: name, URL: strings.TrimRight(url, "/")})
	}
	return out, nil
}

// routerWriteTimeout sizes the http.Server write deadline around the
// routed-request budget (failover chains and hedges all fit inside
// RequestTimeout, so one budget plus margin is enough).
func routerWriteTimeout(requestTimeout time.Duration) time.Duration {
	const floor = 30 * time.Second
	if budget := requestTimeout + 10*time.Second; budget > floor {
		return budget
	}
	return floor
}

// startProbeLoop runs health-probe rounds on a ticker until the returned
// stop function is called. interval <= 0 disables the loop: probe rounds
// then only happen via POST /admin/probe, which is how the deterministic
// multi-process tests drive them.
func startProbeLoop(rt *cluster.Router, interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				// The probe loop is a process-lifetime root: there is no
				// request context to thread into a background health check.
				ctx, cancel := context.WithTimeout(context.Background(), interval) //kwlint:ignore ctxflow — background probe loop has no caller context; bounded per round
				rt.ProbeAll(ctx)
				cancel()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// serveUntilSignal mirrors cmd/serve's drain contract for the router:
// on signal, readiness flips off, the listener stops accepting, in-flight
// routed requests drain within the deadline, and a drained server exits 0.
func serveUntilSignal(httpServer *http.Server, rt *cluster.Router, ln net.Listener, sig <-chan os.Signal, drain time.Duration, logw *os.File) error {
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.Serve(ln) }()
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case s := <-sig:
		fmt.Fprintf(logw, "signal %v: draining (deadline %s)\n", s, drain)
		rt.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), drain) //kwlint:ignore ctxflow — drain root: the process, not a request, owns this deadline
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) && err != nil {
			return err
		}
		fmt.Fprintln(logw, "drained cleanly")
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
