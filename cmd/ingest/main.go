// Command ingest runs the live-index streaming pipeline: it builds and
// freezes a base corpus, then tails an endless world-generated news feed
// into the engine's mutable tier — batching appends, committing per batch,
// and folding segments back into compressed form with background size-tiered
// compaction — while serving concurrent read probes the whole time. This is
// the operational proof of the two-tier engine: the Freeze() wall is gone,
// readers never block, and /statz exposes the ingest and compaction
// counters live.
//
// Usage:
//
//	ingest -total 20000                  # ingest 20k docs, report, exit
//	ingest -addr :8091 -total 0          # endless; watch /statz, SIGTERM to stop
//
// Try it:
//
//	curl -s localhost:8091/statz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"contextrank/internal/newsgen"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address for /statz (empty = no HTTP)")
	seed := flag.Int64("seed", 42, "world and feed seed")
	vocab := flag.Int("vocab", 6000, "world vocabulary size")
	concepts := flag.Int("concepts", 1200, "world concept count")
	batch := flag.Int("batch", 64, "stories per feed batch (one Commit per batch)")
	total := flag.Int("total", 20000, "stop after this many ingested docs (0 = endless)")
	workers := flag.Int("workers", 0, "compaction worker count (0 = all cores)")
	probes := flag.Int("probes", 2, "concurrent read-probe goroutines (0 = none)")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "building base corpus...")
	p, err := newPipeline(pipelineConfig{
		Seed:     *seed,
		Vocab:    *vocab,
		Concepts: *concepts,
		Batch:    *batch,
		Workers:  *workers,
		Probes:   *probes,
	})
	if err != nil {
		fatal(err)
	}
	st := p.engine.Stats()
	fmt.Fprintf(os.Stderr, "base frozen: %d docs, %d terms, %d frozen bytes\n",
		st.Docs, st.Terms, st.FrozenBytes)

	var httpServer *http.Server
	if *addr != "" {
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		httpServer = &http.Server{Handler: p.handler(), ReadHeaderTimeout: 5 * time.Second}
		go httpServer.Serve(ln)
		fmt.Fprintf(os.Stderr, "statz on http://%s/statz\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "signal: stopping ingest")
		p.stop()
	}()

	p.run(*total)
	p.stop()
	p.wait()
	if httpServer != nil {
		httpServer.Close()
	}

	final := p.snapshot()
	fmt.Fprintf(os.Stderr,
		"ingested %d docs in %.1fs (%.0f docs/sec), %d commits, %d compactions, %d segments, %d probe reads\n",
		final.Ingested, final.Elapsed.Seconds(), final.DocsPerSec,
		final.Commits, final.Compactions, final.Segments, final.ProbeReads)
}

// pipelineConfig parameterizes the streaming pipeline (testable without flags).
type pipelineConfig struct {
	Seed     int64
	Vocab    int // world vocabulary size (0 = small test world)
	Concepts int
	Batch    int
	Workers  int
	Probes   int
}

// pipeline owns the engine, the feed tail, the background compactor, and the
// read probes. One writer goroutine (run); compactor and probes run until
// stop.
type pipeline struct {
	engine *searchsim.Engine
	feed   *newsgen.Feed
	w      *world.World
	cfg    pipelineConfig

	start      time.Time
	commits    atomic.Int64
	probeReads atomic.Int64
	stopped    atomic.Bool
	wg         sync.WaitGroup
}

func newPipeline(cfg pipelineConfig) (*pipeline, error) {
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	w := world.New(world.Config{
		Seed:        cfg.Seed,
		VocabSize:   cfg.Vocab,
		NumConcepts: cfg.Concepts,
	})
	// BuildCorpus freezes the base corpus into the frozen base segment; the
	// engine comes back already in live mode, ready for streamed appends.
	e := searchsim.BuildCorpus(w, searchsim.CorpusConfig{Seed: cfg.Seed + 1, Workers: cfg.Workers})
	p := &pipeline{
		engine: e,
		feed:   newsgen.NewFeed(w, newsgen.Config{Seed: cfg.Seed + 2}, cfg.Batch),
		w:      w,
		cfg:    cfg,
		start:  time.Now(),
	}

	// Background compactor: fold eligible segment runs whenever they appear.
	// Compact itself admits one compactor and never blocks readers; the
	// sleep just keeps the idle loop off the CPU.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for !p.stopped.Load() {
			if !p.engine.Compact(cfg.Workers) {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	// Read probes: steady concept-phrase queries against the live index —
	// the reads whose latency the two-tier design must protect. Paced like
	// request traffic (~1k reads/sec per probe) rather than spinning, so
	// the probes model a serving tier instead of a CPU saturation test.
	for i := 0; i < cfg.Probes; i++ {
		p.wg.Add(1)
		go func(i int) {
			defer p.wg.Done()
			for n := i; !p.stopped.Load(); n++ {
				name := w.Concepts[n%len(w.Concepts)].Name
				p.engine.ResultCount(name)
				if n%7 == 0 {
					p.engine.Search(name, 10)
				}
				p.probeReads.Add(1)
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	return p, nil
}

// run tails the feed until total docs have been ingested (0 = until stop).
// One Commit per batch publishes the appended docs to readers.
func (p *pipeline) run(total int) {
	ingested := 0
	for !p.stopped.Load() && (total <= 0 || ingested < total) {
		for _, story := range p.feed.NextBatch() {
			p.engine.Add(story.Text, story.Topic)
			ingested++
			if total > 0 && ingested >= total {
				break
			}
		}
		p.engine.Commit()
		p.commits.Add(1)
	}
}

func (p *pipeline) stop() { p.stopped.Store(true) }
func (p *pipeline) wait() { p.wg.Wait() }

// ingestStats is the /statz response: the engine's index accounting plus
// pipeline throughput.
type ingestStats struct {
	searchsim.IndexStats
	Elapsed    time.Duration `json:"-"`
	ElapsedSec float64       `json:"elapsed_sec"`
	DocsPerSec float64       `json:"ingest_docs_per_sec"`
	Commits    int64         `json:"commits"`
	ProbeReads int64         `json:"probe_reads"`
}

func (p *pipeline) snapshot() ingestStats {
	st := ingestStats{
		IndexStats: p.engine.Stats(),
		Elapsed:    time.Since(p.start),
		Commits:    p.commits.Load(),
		ProbeReads: p.probeReads.Load(),
	}
	st.ElapsedSec = st.Elapsed.Seconds()
	if st.ElapsedSec > 0 {
		st.DocsPerSec = float64(st.Ingested) / st.ElapsedSec
	}
	return st
}

func (p *pipeline) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p.snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	return mux
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
