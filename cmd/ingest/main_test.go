package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"contextrank/internal/newsgen"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

// testConfig is a small world so the smoke tests run in well under a second.
func testConfig() pipelineConfig {
	return pipelineConfig{Seed: 7, Vocab: 800, Concepts: 60, Batch: 16, Workers: 2, Probes: 2}
}

// The pipeline must ingest the requested doc count through the live tier
// while probes read concurrently, and surface the counters in /statz.
func TestPipelineIngestsAndReports(t *testing.T) {
	p, err := newPipeline(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := p.engine.Stats().Docs
	const total = 200
	p.run(total)
	p.stop()
	p.wait()

	st := p.snapshot()
	if st.Ingested != total {
		t.Fatalf("ingested = %d, want %d", st.Ingested, total)
	}
	if st.Docs != base+total {
		t.Fatalf("visible docs = %d, want %d", st.Docs, base+total)
	}
	if st.Commits == 0 || st.Epoch == 0 {
		t.Fatalf("pipeline counters missing: %+v", st)
	}
	if p.cfg.Probes > 0 && st.ProbeReads == 0 {
		t.Fatal("read probes never ran")
	}

	rec := httptest.NewRecorder()
	p.handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statz", nil))
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("statz not JSON: %v", err)
	}
	for _, key := range []string{"ingested_docs", "compactions", "segments", "mem_docs", "epoch", "ingest_docs_per_sec", "commits"} {
		if _, ok := got[key]; !ok {
			t.Fatalf("/statz missing %q: %v", key, got)
		}
	}
}

// The streamed index must answer exactly like a from-scratch build over the
// base corpus plus the same feed prefix — the cmd-level echo of the
// searchsim ingest differential, here with the real feed and background
// compaction racing the appends.
func TestPipelineMatchesFromScratch(t *testing.T) {
	cfg := testConfig()
	p, err := newPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const total = 150
	p.run(total)
	p.stop()
	p.wait()

	// Rebuild the identical doc stream: same base corpus, same feed prefix,
	// replayed serially with a single commit and no compaction racing it.
	w := world.New(world.Config{Seed: cfg.Seed, VocabSize: cfg.Vocab, NumConcepts: cfg.Concepts})
	want := searchsim.BuildCorpus(w, searchsim.CorpusConfig{Seed: cfg.Seed + 1, Workers: 1})
	feed := newsgen.NewFeed(w, newsgen.Config{Seed: cfg.Seed + 2}, cfg.Batch)
	added := 0
	for added < total {
		for _, story := range feed.NextBatch() {
			want.Add(story.Text, story.Topic)
			added++
			if added >= total {
				break
			}
		}
	}
	want.Commit()

	if g, w := p.engine.NumDocs(), want.NumDocs(); g != w {
		t.Fatalf("doc count %d, want %d", g, w)
	}
	for i := 0; i < len(w.Concepts); i += 5 {
		q := w.Concepts[i].Name
		if g, want1 := p.engine.ResultCount(q), want.ResultCount(q); g != want1 {
			t.Fatalf("ResultCount(%q) = %d, want %d", q, g, want1)
		}
	}
}
