// Command shortcuts annotates a document with ranked contextual shortcuts,
// the way the production Contextual Shortcuts pipeline does: it builds the
// synthetic world, trains the ranker, reads a document from stdin (or
// generates one with -demo), and prints the detected entities in rank order.
//
// Usage:
//
//	shortcuts -demo                 # annotate a generated news story
//	shortcuts -top 3 < story.txt    # annotate stdin, keep top 3 concepts
//	shortcuts -html < page.html     # strip HTML first
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"contextrank"
	"contextrank/internal/annotate"
	"contextrank/internal/detect"
	"contextrank/internal/newsgen"
	"contextrank/internal/textproc"
)

func main() {
	demo := flag.Bool("demo", false, "annotate a generated demo story instead of stdin")
	top := flag.Int("top", 5, "number of ranked concepts to annotate (0 = all)")
	html := flag.Bool("html", false, "treat input as HTML")
	render := flag.Bool("render", false, "emit annotated HTML on stdout instead of the annotation list")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()

	fmt.Fprintln(os.Stderr, "building world and training ranker...")
	sys := contextrank.Build(contextrank.SmallConfig(*seed))
	ranker, err := sys.TrainRanker()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	var text, raw string
	if *demo {
		stories := newsgen.Generate(sys.Internal().World, newsgen.Config{Seed: *seed + 99, NumStories: 1})
		text = stories[0].Text + " Questions? Write to newsdesk@example.com or call 408-555-0199."
		raw = text
	} else {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error reading stdin:", err)
			os.Exit(1)
		}
		raw = string(data)
		text = raw
		if *html {
			text = textproc.StripHTML(raw)
		}
	}

	if *render {
		renderer := annotate.NewRenderer(nil)
		if *html {
			// Annotate the original markup in place.
			res := textproc.StripHTMLMapped(raw)
			anns := ranker.Annotate(res.Text, *top)
			fmt.Println(renderer.RenderSource(raw, res, anns))
		} else {
			anns := ranker.Annotate(text, *top)
			fmt.Println(renderer.Render(text, anns))
		}
		return
	}

	anns := ranker.Annotate(text, *top)
	fmt.Printf("document: %d bytes, %d annotations\n\n", len(text), len(anns))
	for i, a := range anns {
		kind := a.Detection.Kind.String()
		if a.Detection.Kind == detect.KindPattern {
			kind = "pattern/" + a.Detection.PatternType
		} else if a.Detection.Entry != nil {
			kind = fmt.Sprintf("%s/%s", a.Detection.Entry.Type, a.Detection.Entry.Subtype)
		}
		fmt.Printf("%2d. %-32q %-22s score=%.3f relevance=%.1f at byte %d\n",
			i+1, a.Detection.Text, kind, a.Score, a.Relevance, a.Detection.Start)
	}
}
