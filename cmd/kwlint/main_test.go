package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// sampleVetStderr is a faithful miniature of what `go vet -json` writes
// on stderr: '#' progress comments from the go tool interleaved with
// one pretty-printed JSON tree per package, deliberately ordered so the
// raw stream is NOT sorted (second package's file sorts first).
const sampleVetStderr = `# contextrank/internal/zeta
# [contextrank/internal/zeta]
{
	"contextrank/internal/zeta": {
		"seededrand": [
			{
				"posn": "/repo/internal/zeta/z.go:6:31",
				"message": "hard-coded seed for rand.NewSource"
			}
		],
		"hotpath": [
			{
				"posn": "/repo/internal/zeta/z.go:6:31",
				"message": "fmt.Sprintf allocates on the hot path"
			},
			{
				"posn": "/repo/internal/zeta/z.go:2:1",
				"message": "make(map) allocates on the hot path",
				"suggested_fixes": [
					{
						"message": "preallocate with an explicit capacity",
						"edits": [
							{
								"filename": "/repo/internal/zeta/z.go",
								"start": 10,
								"end": 17,
								"new": "make([]int, 0, 16)"
							}
						]
					}
				]
			}
		]
	}
}
# contextrank/internal/alpha
{
	"contextrank/internal/alpha": {
		"determinism": [
			{
				"posn": "/repo/internal/alpha/a.go:40:2",
				"message": "map iteration feeds an ordered sink"
			}
		]
	}
}
`

func TestParseVetJSON(t *testing.T) {
	diags, err := parseVetJSON(strings.NewReader(sampleVetStderr))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %+v", len(diags), diags)
	}
	var withFix int
	for _, d := range diags {
		if len(d.fixes) > 0 {
			withFix++
			if d.Analyzer != "hotpath" || d.fixes[0].Edits[0].New != "make([]int, 0, 16)" {
				t.Errorf("fix attached to wrong diagnostic: %+v", d)
			}
		}
	}
	if withFix != 1 {
		t.Errorf("got %d diagnostics with fixes, want 1", withFix)
	}
}

func TestParseVetJSONEmpty(t *testing.T) {
	diags, err := parseVetJSON(strings.NewReader("# pkg one\n# pkg two\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics from comment-only stream, want 0", len(diags))
	}
}

func TestParseVetJSONAnalyzerError(t *testing.T) {
	const stream = `{"p": {"hotpath": {"error": "internal failure"}}}`
	if _, err := parseVetJSON(strings.NewReader(stream)); err == nil || !strings.Contains(err.Error(), "internal failure") {
		t.Fatalf("analyzer error not surfaced: %v", err)
	}
}

func TestSplitPosn(t *testing.T) {
	file, line, col, err := splitPosn("/a/b/c.go:12:7")
	if err != nil || file != "/a/b/c.go" || line != 12 || col != 7 {
		t.Fatalf("got (%q,%d,%d,%v)", file, line, col, err)
	}
	// Windows-style path: parse from the right.
	file, line, col, err = splitPosn(`C:\repo\a.go:3:4`)
	if err != nil || file != `C:\repo\a.go` || line != 3 || col != 4 {
		t.Fatalf("got (%q,%d,%d,%v)", file, line, col, err)
	}
	for _, bad := range []string{"", "nofile", "a.go:x:1", "a.go:1:y"} {
		if _, _, _, err := splitPosn(bad); err == nil {
			t.Errorf("splitPosn(%q): want error", bad)
		}
	}
}

// TestJSONOutputDeterministic is the -json contract: one compact JSON
// object per line with exactly file/line/col/analyzer/message, sorted
// by those keys, regardless of the order vet produced them.
func TestJSONOutputDeterministic(t *testing.T) {
	diags, err := parseVetJSON(strings.NewReader(sampleVetStderr))
	if err != nil {
		t.Fatal(err)
	}
	sortDiagnostics(diags)

	var buf bytes.Buffer
	if err := emitJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}

	want := []struct {
		file     string
		line     int
		analyzer string
	}{
		{"/repo/internal/alpha/a.go", 40, "determinism"},
		{"/repo/internal/zeta/z.go", 2, "hotpath"},
		{"/repo/internal/zeta/z.go", 6, "hotpath"}, // same posn: analyzer breaks the tie
		{"/repo/internal/zeta/z.go", 6, "seededrand"},
	}
	for i, ln := range lines {
		var d map[string]any
		if err := json.Unmarshal([]byte(ln), &d); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
		if len(d) != 5 {
			t.Errorf("line %d: got %d fields, want exactly file/line/col/analyzer/message: %s", i, len(d), ln)
		}
		if d["file"] != want[i].file || int(d["line"].(float64)) != want[i].line || d["analyzer"] != want[i].analyzer {
			t.Errorf("line %d: got %s, want %+v", i, ln, want[i])
		}
	}
}

func TestApplyEdits(t *testing.T) {
	src := []byte("aaa bbb ccc")
	out, err := applyEdits(src, []textEdit{
		{Start: 8, End: 11, New: "C"},
		{Start: 0, End: 3, New: "AAAAA"}, // unsorted on purpose
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(out); got != "AAAAA bbb C" {
		t.Fatalf("got %q", got)
	}
	if string(src) != "aaa bbb ccc" {
		t.Fatalf("source mutated: %q", src)
	}
}

func TestApplyEditsRejectsBadEdits(t *testing.T) {
	src := []byte("hello")
	if _, err := applyEdits(src, []textEdit{{Start: 2, End: 9, New: "x"}}); err == nil {
		t.Error("out-of-bounds edit accepted")
	}
	if _, err := applyEdits(src, []textEdit{
		{Start: 0, End: 3, New: "x"},
		{Start: 2, End: 4, New: "y"},
	}); err == nil {
		t.Error("overlapping edits accepted")
	}
}

// TestApplyFixesPartitions checks that -fix consumes exactly the
// diagnostics carrying a fix and returns the rest untouched.
func TestApplyFixesPartitions(t *testing.T) {
	dir := t.TempDir()
	target := dir + "/z.go"
	if err := os.WriteFile(target, []byte("x := []int{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := []diagnostic{
		{File: target, Line: 1, Col: 1, Analyzer: "hotpath", Message: "append growth", fixes: []suggestedFix{{
			Message: "preallocate",
			Edits:   []textEdit{{Filename: target, Start: 5, End: 12, New: "make([]int, 0, 8)"}},
		}}},
		{File: target, Line: 9, Col: 1, Analyzer: "determinism", Message: "no fix for this"},
	}
	var log bytes.Buffer
	remaining, err := applyFixes(diags, &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(remaining) != 1 || remaining[0].Analyzer != "determinism" {
		t.Fatalf("remaining = %+v, want the unfixable determinism diagnostic", remaining)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "x := make([]int, 0, 8)\n" {
		t.Fatalf("file after fix = %q", got)
	}
	if !strings.Contains(log.String(), "applied 1 fix(es) in 1 file(s)") {
		t.Errorf("log missing summary: %q", log.String())
	}
}
