// Command kwlint runs the project's static-analysis suite (see
// internal/analysis/...): determinism, seededrand, floatcompare, and
// errsink.
//
// Usage:
//
//	go run ./cmd/kwlint ./...
//
// The binary is a go/analysis unitchecker wearing a driver coat. When
// invoked with package patterns it re-executes itself through
//
//	go vet -vettool=<self> <patterns>
//
// so the go tool handles package loading, export data, and caching; go
// vet then calls the same binary back per package with a *.cfg file, the
// unitchecker protocol, which is dispatched to unitchecker.Main. This
// keeps the driver fully offline and dependency-light: no go/packages,
// no process-global state, and results are cached by the build cache
// like any other vet run.
//
// Exit status is non-zero when any analyzer reports a diagnostic.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"contextrank/internal/analysis/kwlint"
)

func main() {
	if unitcheckerInvocation(os.Args[1:]) {
		unitchecker.Main(kwlint.Analyzers()...) // exits
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwlint: cannot locate own executable:", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "kwlint: go vet:", err)
		os.Exit(1)
	}
}

// unitcheckerInvocation reports whether the arguments follow the
// unitchecker protocol used by go vet: a -V=full version query, a -flags
// flag enumeration, or a single JSON config file ending in .cfg.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
