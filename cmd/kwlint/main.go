// Command kwlint runs the project's static-analysis suite (see
// internal/analysis/...): determinism, orderedfanout, seededrand,
// floatcompare, errsink, hotpath, poolalias, lockguard, frozen, and
// ctxflow.
//
// Usage:
//
//	go run ./cmd/kwlint [-json] [-fix] ./...
//
// The binary is a go/analysis unitchecker wearing a driver coat. When
// invoked with package patterns it re-executes itself through
//
//	go vet -vettool=<self> <patterns>
//
// so the go tool handles package loading, export data, and caching; go
// vet then calls the same binary back per package with a *.cfg file, the
// unitchecker protocol, which is dispatched to unitchecker.Main. This
// keeps the driver fully offline and dependency-light: no go/packages,
// no process-global state, and results are cached by the build cache
// like any other vet run.
//
// -json switches the report format to machine output: one JSON object
// per line on stdout — {"file":..., "line":..., "analyzer":...,
// "message":...} — sorted by file, line, column, analyzer, message, so
// the stream is deterministic across runs and package-load order.
//
// -fix applies the analyzers' suggested fixes (currently the hotpath
// prealloc rewrite) to the source files in place, then reports the
// diagnostics that had no fix. Fixes may carry TODO markers (e.g. a
// placeholder capacity) that need right-sizing by hand, so re-run the
// plain lint afterwards.
//
// Both modes drive `go vet -json` under the hood: vet emits a JSON tree
// per package on stderr (interleaved with '#' progress comments) and
// exits zero even when diagnostics exist, so the driver parses the
// stream, owns the exit status, and — for -fix — applies the byte-offset
// edits itself; the vendored unitchecker has no fix support of its own.
//
// Exit status is non-zero when any analyzer reports a diagnostic (in
// -fix mode: any diagnostic that no fix repaired).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"contextrank/internal/analysis/kwlint"
)

func main() {
	if unitcheckerInvocation(os.Args[1:]) {
		unitchecker.Main(kwlint.Analyzers()...) // exits
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwlint: cannot locate own executable:", err)
		os.Exit(1)
	}

	var jsonOut, applyFix bool
	rest := make([]string, 0, len(os.Args)-1)
	for _, a := range os.Args[1:] {
		switch a {
		case "-json", "--json":
			jsonOut = true
		case "-fix", "--fix":
			applyFix = true
		default:
			rest = append(rest, a)
		}
	}

	if !jsonOut && !applyFix {
		// Plain mode: hand the terminal straight to go vet, which owns
		// both the human-readable report and the exit status.
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, rest...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Stdin = os.Stdin
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintln(os.Stderr, "kwlint: go vet:", err)
			os.Exit(1)
		}
		return
	}

	// Machine modes: run vet in JSON mode and take over reporting.
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe, "-json"}, rest...)...)
	var vetJSON bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &vetJSON
	if err := cmd.Run(); err != nil {
		// In -json mode vet exits zero even with diagnostics, so a
		// failure here is a build/driver error: surface it verbatim.
		os.Stderr.Write(vetJSON.Bytes())
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "kwlint: go vet:", err)
		os.Exit(1)
	}

	diags, err := parseVetJSON(&vetJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kwlint: parsing go vet -json output:", err)
		os.Exit(1)
	}
	sortDiagnostics(diags)

	if applyFix {
		diags, err = applyFixes(diags, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kwlint: applying fixes:", err)
			os.Exit(1)
		}
	}

	if jsonOut {
		if err := emitJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "kwlint:", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// unitcheckerInvocation reports whether the arguments follow the
// unitchecker protocol used by go vet: a -V=full version query, a -flags
// flag enumeration, or a single JSON config file ending in .cfg.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-V") || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

// diagnostic is one analyzer finding in the machine-readable report.
// The JSON field set is the stable -json contract: file, line, col,
// analyzer, message.
type diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`

	fixes []suggestedFix
}

type suggestedFix struct {
	Message string     `json:"message"`
	Edits   []textEdit `json:"edits"`
}

type textEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"` // byte offset
	End      int    `json:"end"`   // byte offset
	New      string `json:"new"`
}

// vetDiagnostic mirrors the unitchecker JSON diagnostic shape.
type vetDiagnostic struct {
	Posn           string         `json:"posn"` // "file:line:col"
	Message        string         `json:"message"`
	SuggestedFixes []suggestedFix `json:"suggested_fixes"`
}

// parseVetJSON decodes the stderr stream of `go vet -json`: lines
// starting with '#' are progress comments from the go tool; the rest is
// a sequence of pretty-printed JSON objects, one per package, each a
// map of package ID → analyzer name → either a diagnostic list or an
// {"error": ...} object.
func parseVetJSON(r io.Reader) ([]diagnostic, error) {
	var filtered bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") {
			continue
		}
		filtered.Write(sc.Bytes())
		filtered.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var diags []diagnostic
	dec := json.NewDecoder(&filtered)
	for {
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		for _, byAnalyzer := range tree {
			for analyzer, raw := range byAnalyzer {
				var list []vetDiagnostic
				if err := json.Unmarshal(raw, &list); err != nil {
					var ae struct {
						Err string `json:"error"`
					}
					if json.Unmarshal(raw, &ae) == nil && ae.Err != "" {
						return nil, fmt.Errorf("analyzer %s: %s", analyzer, ae.Err)
					}
					return nil, fmt.Errorf("analyzer %s: unexpected result shape: %v", analyzer, err)
				}
				for _, vd := range list {
					file, line, col, err := splitPosn(vd.Posn)
					if err != nil {
						return nil, err
					}
					diags = append(diags, diagnostic{
						File:     file,
						Line:     line,
						Col:      col,
						Analyzer: analyzer,
						Message:  vd.Message,
						fixes:    vd.SuggestedFixes,
					})
				}
			}
		}
	}
	return diags, nil
}

// splitPosn parses "file:line:col" from the right, so file paths
// containing colons survive.
func splitPosn(posn string) (file string, line, col int, err error) {
	c := strings.LastIndexByte(posn, ':')
	if c < 0 {
		return "", 0, 0, fmt.Errorf("malformed position %q", posn)
	}
	l := strings.LastIndexByte(posn[:c], ':')
	if l < 0 {
		return "", 0, 0, fmt.Errorf("malformed position %q", posn)
	}
	line, err = strconv.Atoi(posn[l+1 : c])
	if err != nil {
		return "", 0, 0, fmt.Errorf("malformed position %q: %v", posn, err)
	}
	col, err = strconv.Atoi(posn[c+1:])
	if err != nil {
		return "", 0, 0, fmt.Errorf("malformed position %q: %v", posn, err)
	}
	return posn[:l], line, col, nil
}

// sortDiagnostics orders the report deterministically: vet emits
// packages in load order and analyzers in map order, neither of which
// is stable across runs.
func sortDiagnostics(diags []diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// emitJSON writes one compact JSON object per diagnostic, one per line.
func emitJSON(w io.Writer, diags []diagnostic) error {
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, d := range diags {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return nil
}

// applyFixes applies the first suggested fix of every diagnostic that
// has one, splicing byte-offset edits into the source files, and
// returns the diagnostics that remain (those with no fix). Edits are
// grouped per file and applied back-to-front so earlier offsets stay
// valid; overlapping edits within a file are rejected rather than
// silently misapplied.
func applyFixes(diags []diagnostic, log io.Writer) ([]diagnostic, error) {
	byFile := map[string][]textEdit{}
	var remaining []diagnostic
	fixed := 0
	for _, d := range diags {
		if len(d.fixes) == 0 || len(d.fixes[0].Edits) == 0 {
			remaining = append(remaining, d)
			continue
		}
		for _, e := range d.fixes[0].Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
		fixed++
		fmt.Fprintf(log, "%s:%d:%d: %s: fixed: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.fixes[0].Message)
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		out, err := applyEdits(src, byFile[f])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", f, err)
		}
		if err := os.WriteFile(f, out, 0o644); err != nil {
			return nil, err
		}
	}
	if fixed > 0 {
		fmt.Fprintf(log, "kwlint: applied %d fix(es) in %d file(s)\n", fixed, len(files))
	}
	return remaining, nil
}

// applyEdits splices edits into src. Edits are sorted by start offset
// and applied last-first; out-of-bounds or overlapping edits are an
// error.
func applyEdits(src []byte, edits []textEdit) ([]byte, error) {
	sorted := make([]textEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of bounds (len %d)", e.Start, e.End, len(src))
		}
		if i > 0 && e.Start < sorted[i-1].End {
			return nil, fmt.Errorf("overlapping edits at offsets %d and %d", sorted[i-1].Start, e.Start)
		}
	}
	out := append([]byte(nil), src...)
	for i := len(sorted) - 1; i >= 0; i-- {
		e := sorted[i]
		out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
	}
	return out, nil
}
