package main

import (
	"fmt"

	"contextrank"
	"contextrank/internal/newsgen"
)

func main() {
	sys := contextrank.Build(contextrank.SmallConfig(42))
	r, _ := sys.TrainRanker()
	docs := newsgen.Generate(sys.Internal().World, newsgen.Config{Seed: 777, NumStories: 80})
	doc := &docs[3]
	fmt.Println(len(r.Keywords(doc.Text, 3)), r.Keywords(doc.Text, 3))
}
