package contextrank

// The determinism contract of the parallel pipeline (internal/par): every
// stage that fans out across workers must produce bit-identical results for
// every worker count. This test builds the same small world serially and
// with 8 workers and compares build statistics, mined-store output and a
// full cross-validated experiment with reflect.DeepEqual — any scheduling
// dependence (map iteration, channel-arrival ordering, FP reassociation)
// shows up as a diff.

import (
	"reflect"
	"testing"
)

func TestParallelEqualsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two systems; skipped in -short")
	}

	build := func(workers int) *System {
		cfg := SmallConfig(42)
		cfg.Workers = workers
		return Build(cfg)
	}
	serial := build(1)
	parallel := build(8)

	// Build outputs: click corpus statistics and the search corpus.
	if got, want := parallel.DataStats(), serial.DataStats(); got != want {
		t.Errorf("DataStats differ: workers=8 %+v, workers=1 %+v", got, want)
	}
	ss, ps := serial.Internal(), parallel.Internal()
	if got, want := ps.Engine.NumDocs(), ss.Engine.NumDocs(); got != want {
		t.Errorf("corpus size differs: workers=8 %d docs, workers=1 %d docs", got, want)
	}

	// Mined relevance stores (parallel BuildStore) via Table II.
	sTop, sBottom := ss.Table2(3)
	pTop, pBottom := ps.Table2(3)
	if !reflect.DeepEqual(pTop, sTop) || !reflect.DeepEqual(pBottom, sBottom) {
		t.Errorf("Table2 differs:\nworkers=8 top=%v bottom=%v\nworkers=1 top=%v bottom=%v",
			pTop, pBottom, sTop, sBottom)
	}

	// A full experiment: feature extraction, k-fold CV with fold fan-out,
	// SVM training, error rates and NDCG — every float must match.
	sT3, err := ss.Table3(5, 42)
	if err != nil {
		t.Fatalf("Table3 (workers=1): %v", err)
	}
	pT3, err := ps.Table3(5, 42)
	if err != nil {
		t.Fatalf("Table3 (workers=8): %v", err)
	}
	if !reflect.DeepEqual(pT3, sT3) {
		t.Errorf("Table3 differs:\nworkers=8 %+v\nworkers=1 %+v", pT3, sT3)
	}
}
