package contextrank_test

import (
	"fmt"

	"contextrank"
)

// Example demonstrates the full public life cycle: build the synthetic
// world, train the ranker on click data, and annotate a document.
func Example() {
	sys := contextrank.Build(contextrank.SmallConfig(42))
	ranker, err := sys.TrainRanker()
	if err != nil {
		panic(err)
	}
	doc := "Reach the desk at tips@example.net for follow-ups."
	anns := ranker.Annotate(doc, 3)
	fmt.Println(anns[0].Detection.Kind, anns[0].Detection.Text)
	// Output: pattern tips@example.net
}

// ExampleRanker_Keywords extracts ad-style key concepts from a document.
func ExampleRanker_Keywords() {
	sys := contextrank.Build(contextrank.SmallConfig(42))
	ranker, err := sys.TrainRanker()
	if err != nil {
		panic(err)
	}
	// Any text works; concepts outside the supported inventory are ignored.
	kws := ranker.Keywords("an unremarkable sentence with no known concepts", 3)
	fmt.Println(len(kws))
	// Output: 0
}
