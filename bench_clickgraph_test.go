package contextrank

// Click-graph engine benchmarks at ORCAS scale (DESIGN.md §10). The scale
// bench is the executable form of the offline contract: synthesizing,
// deduplicating, freezing, and running ten evidence-weighted propagation
// sweeps over a ≥2M-edge click graph must finish inside two seconds of
// wall-clock at 8 workers, with the frozen adjacency at most 35% of the
// raw 12-byte edge list. make bench guards total-ms and frozen-ratio
// against those contract values directly, and floors parEff-8 of the
// propagation sweep like the other parallel benchmarks.

import (
	"sync"
	"testing"
	"time"

	"contextrank/internal/clickgraph"
)

// clickBenchConfig is the ≥2M-edge ORCAS-shaped graph: ~2.02M deduplicated
// edges across 345k stories and 4k concepts.
var clickBenchConfig = clickgraph.SynthConfig{Seed: 42, Stories: 345_000, Concepts: 4_000}

var (
	clickBenchOnce  sync.Once
	clickBenchGraph *clickgraph.Graph
)

// clickBenchFrozen builds the shared frozen graph once per process.
func clickBenchFrozen() *clickgraph.Graph {
	clickBenchOnce.Do(func() {
		clickBenchGraph = clickgraph.Synthesize(clickBenchConfig, 8)
		clickBenchGraph.FreezeWorkers(8)
	})
	return clickBenchGraph
}

// BenchmarkClickGraphScale measures the full offline pass at 8 workers:
// click-log synthesis, CSR dedup + freeze, ten propagation sweeps.
func BenchmarkClickGraphScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		g := clickgraph.Synthesize(clickBenchConfig, 8)
		buildMS := time.Since(t0).Seconds() * 1000

		t1 := time.Now()
		g.FreezeWorkers(8)
		freezeMS := time.Since(t1).Seconds() * 1000

		p := clickgraph.NewPropagator(g)
		p.SeedUniform()
		t2 := time.Now()
		p.SweepN(10, 8)
		sweepMS := time.Since(t2).Seconds() * 1000

		st := g.Stats()
		if st.Edges < 2_000_000 {
			b.Fatalf("graph too small for the scale contract: %d edges", st.Edges)
		}
		b.ReportMetric(float64(st.Edges), "edges")
		b.ReportMetric(buildMS, "build-ms")
		b.ReportMetric(freezeMS, "freeze-ms")
		b.ReportMetric(sweepMS, "sweep10-ms")
		b.ReportMetric(buildMS+freezeMS+sweepMS, "total-ms")
		b.ReportMetric(float64(st.FrozenBytes), "frozen-bytes")
		b.ReportMetric(float64(st.FrozenBytes)/float64(st.RawBytes), "frozen-ratio")
	}
}

// BenchmarkClickGraphPropagate sweeps ten propagation rounds over the
// frozen 2M-edge graph at Workers ∈ {1, 4, 8} and reports the standard
// speedup metrics (parEff-8 floored by make bench).
func BenchmarkClickGraphPropagate(b *testing.B) {
	g := clickBenchFrozen()
	p := clickgraph.NewPropagator(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var elapsed [3]time.Duration
		for wi, w := range benchWorkerCounts {
			p.Reset()
			p.SeedUniform()
			t0 := time.Now()
			p.SweepN(10, w)
			elapsed[wi] = time.Since(t0)
		}
		reportSweep(b, elapsed)
	}
}
