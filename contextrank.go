// Package contextrank is a from-scratch reproduction of "Contextual Ranking
// of Keywords Using Click Data" (Irmak, von Brzeski, Kraft — ICDE 2009): the
// Contextual Shortcuts user-centric entity detection platform together with
// the click-trained ranker that orders detected concepts by interestingness
// and contextual relevance.
//
// Because the paper's resources (Yahoo! query logs, search index, news click
// instrumentation) are proprietary, the library ships a generative synthetic
// world (see internal/world) from which every resource is derived. The
// public API covers the full life cycle:
//
//	sys := contextrank.Build(contextrank.SmallConfig(42)) // world + resources + click data
//	ranker, err := sys.TrainRanker()                      // offline: mine features, train ranking SVM, pack tables
//	anns := ranker.Annotate(doc, 3)                       // online: detect + rank + annotate top-3
//
// Experiments from the paper's evaluation section are exposed as methods on
// System (Table2 ... Table6, ProductionExperiment); cmd/experiments prints
// them next to the published numbers.
package contextrank

import (
	"fmt"
	"io"

	"contextrank/internal/core"
	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

// Config parameterizes a full system build (world generation, resource
// mining, click simulation). The zero value with a Seed produces the
// paper-scale world; SmallConfig returns a fast laptop-scale variant.
type Config = core.Config

// Concept is a keyword phrase with its latent ground-truth attributes (the
// synthetic world's hidden variables; useful for inspection and tests).
type Concept = world.Concept

// EntityType is the taxonomy type of a named entity.
type EntityType = world.EntityType

// Annotation is one ranked shortcut produced by the production runtime.
type Annotation = framework.Annotation

// Detection is one detected entity occurrence.
type Detection = detect.Detection

// Result bundles the evaluation metrics of one ranking method (weighted and
// plain pairwise error rates, NDCG@k).
type Result = core.Result

// SmallConfig returns a fast configuration (~300 concepts) suitable for
// tests and the quickstart example; it finishes in seconds.
func SmallConfig(seed int64) Config {
	return Config{
		Seed:   seed,
		World:  world.Config{VocabSize: 2000, NumTopics: 10, NumConcepts: 300},
		Corpus: searchsim.CorpusConfig{MaxDocsPerConcept: 18},
		News:   newsgen.Config{NumStories: 250},
	}
}

// PaperConfig returns the configuration used to regenerate the paper's
// tables: a world with the approximate data volume of §V-A.1.
func PaperConfig(seed int64) Config {
	return Config{
		Seed:  seed,
		World: world.Config{VocabSize: 6000, NumTopics: 24, NumConcepts: 1200},
		News:  newsgen.Config{NumStories: 1100},
	}
}

// System is the built reproduction: the synthetic world, every mined
// resource, and the simulated click traffic.
type System struct {
	sys *core.System
}

// Build generates the world and all resources deterministically from the
// configuration.
func Build(cfg Config) *System {
	return &System{sys: core.Build(cfg)}
}

// Internal returns the underlying core system for advanced use (experiment
// drivers, direct resource access). The returned value is shared, not a
// copy.
func (s *System) Internal() *core.System { return s.sys }

// Concepts returns the world's concept inventory.
func (s *System) Concepts() []Concept { return s.sys.World.Concepts }

// DataStats summarizes the click corpus after the paper's cleaning rules.
func (s *System) DataStats() core.DataStats { return s.sys.DataStats() }

// TrainRanker mines the offline artifacts (interestingness table, relevant
// keyword packs), trains the combined interestingness+relevance ranking SVM
// on the click data, and assembles the production runtime of §VI.
func (s *System) TrainRanker() (*Ranker, error) {
	method := &core.LearnedMethod{
		UseRelevance: true,
		Resource:     relevance.Snippets,
		Options:      ranksvm.Options{Seed: s.sys.Config.Seed},
	}
	if err := method.Fit(s.sys.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		return nil, fmt.Errorf("contextrank: train: %w", err)
	}
	return s.assembleRanker(method.Model())
}

// assembleRanker packs the offline tables around a trained model.
func (s *System) assembleRanker(model *ranksvm.Model) (*Ranker, error) {
	names := make([]string, len(s.sys.World.Concepts))
	for i := range s.sys.World.Concepts {
		names[i] = s.sys.World.Concepts[i].Name
	}
	// Extract every concept's features across workers before the serial
	// table pack (the cached lookups below then hit the warm cache).
	s.sys.WarmFields(names)
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.sys.Fields(n) })
	packs := framework.BuildKeywordPacks(s.sys.RelevanceStore(relevance.Snippets))
	rt := framework.NewRuntime(s.sys.Pipeline, table, packs, model)
	return &Ranker{runtime: rt, model: model}, nil
}

// LoadRanker assembles the production runtime around a previously saved
// model (see Ranker.SaveModel). The packed tables are rebuilt from the
// system's resources; to restore everything from disk use LoadBundle.
func (s *System) LoadRanker(r io.Reader) (*Ranker, error) {
	model, err := ranksvm.Load(r)
	if err != nil {
		return nil, err
	}
	return s.assembleRanker(model)
}

// LoadBundle restores a complete offline artifact (interestingness table,
// keyword packs and model) saved with Ranker.SaveBundle, skipping all
// mining and training.
func (s *System) LoadBundle(r io.Reader) (*Ranker, error) {
	b, err := framework.LoadBundle(r)
	if err != nil {
		return nil, err
	}
	rt := framework.NewRuntime(s.sys.Pipeline, b.Interest, b.Packs, b.Model)
	return &Ranker{runtime: rt, model: b.Model}, nil
}

// Ranker is the online system: detection, feature lookup, relevance scoring
// and model ranking over in-memory packed tables.
type Ranker struct {
	runtime *framework.Runtime
	model   *ranksvm.Model
}

// Annotate detects entities in a document and returns them ranked by the
// learned model, keeping the top n concepts (n <= 0 keeps all). Pattern
// entities (emails, URLs, phones) are always annotated and lead the result.
func (r *Ranker) Annotate(text string, n int) []Annotation {
	return r.runtime.Annotate(text, n)
}

// Keywords returns the top-k ranked concept phrases of a document — the
// "key concepts" consumed by contextual advertising and summarization.
func (r *Ranker) Keywords(text string, k int) []string {
	anns := r.Annotate(text, k)
	out := make([]string, 0, k)
	seen := make(map[string]bool, k)
	for _, a := range anns {
		if a.Detection.Kind == detect.KindPattern || seen[a.Detection.Norm] {
			continue
		}
		seen[a.Detection.Norm] = true
		out = append(out, a.Detection.Norm)
		if len(out) == k {
			break
		}
	}
	return out
}

// SaveModel serializes the trained ranking model.
func (r *Ranker) SaveModel(w io.Writer) error { return r.model.Save(w) }

// SaveBundle serializes the complete offline artifact: quantized
// interestingness table, packed keyword store and model, with a checksum.
func (r *Ranker) SaveBundle(w io.Writer) error {
	b := &framework.Bundle{
		Interest: r.runtime.Interest,
		Packs:    r.runtime.Packs,
		Model:    r.model,
	}
	return b.Save(w)
}

// Runtime exposes the underlying production runtime (for the HTTP serving
// layer and the online adjuster).
func (r *Ranker) Runtime() *framework.Runtime { return r.runtime }

// Throughput reports the stemmer and ranker processing rates in MB/s
// accumulated since the ranker was built (the §VI measurement).
func (r *Ranker) Throughput() (stemMBps, rankMBps float64) {
	return r.runtime.Throughput()
}

// MemoryFootprint reports the packed table sizes in bytes: the quantized
// interestingness store (18 B/concept) and the keyword packs
// (≤400 B/concept).
func (r *Ranker) MemoryFootprint() (interestBytes, keywordBytes int) {
	return r.runtime.Interest.MemoryBytes(), r.runtime.Packs.TotalBytes()
}
