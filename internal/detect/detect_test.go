package detect

import (
	"strings"
	"testing"

	"contextrank/internal/querylog"
	"contextrank/internal/taxonomy"
	"contextrank/internal/units"
	"contextrank/internal/world"
)

func testResources(t testing.TB) (*world.World, *taxonomy.Dictionary, *units.Set) {
	t.Helper()
	w := world.New(world.Config{Seed: 61, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	dict := taxonomy.Build(w, 62)
	log := querylog.Generate(w, querylog.Config{Seed: 63})
	us := units.Extract(log, units.Config{})
	return w, dict, us
}

func TestDetectPatternsEmail(t *testing.T) {
	ds := detectPatterns("Contact uirmak@yahoo-inc.com or call 408-555-1234 now.")
	var types []string
	for _, d := range ds {
		types = append(types, d.PatternType)
	}
	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "email") || !strings.Contains(joined, "phone") {
		t.Fatalf("pattern types = %v", types)
	}
}

func TestDetectPatternsURL(t *testing.T) {
	ds := detectPatterns("See http://svmlight.joachims.org and www.example.com/page.")
	urls := 0
	for _, d := range ds {
		if d.PatternType == "url" {
			urls++
			if strings.HasSuffix(d.Text, ".") {
				t.Fatalf("url kept trailing period: %q", d.Text)
			}
		}
	}
	if urls != 2 {
		t.Fatalf("found %d urls", urls)
	}
}

func TestDetectPatternsOffsets(t *testing.T) {
	text := "Write to a@b.com today."
	for _, d := range detectPatterns(text) {
		if text[d.Start:d.End] != d.Text {
			t.Fatalf("offset mismatch: %q vs %q", text[d.Start:d.End], d.Text)
		}
	}
}

func TestDetectNamedEntities(t *testing.T) {
	w, dict, us := testResources(t)
	p := New(dict, us)
	var c *world.Concept
	for i := range w.Concepts {
		if w.Concepts[i].Type != world.TypeNone && len(w.Concepts[i].Terms) == 2 {
			c = &w.Concepts[i]
			break
		}
	}
	if c == nil {
		t.Skip("no 2-term named entity")
	}
	text := "Reports about " + world.TitleCase(c.Name) + " surfaced yesterday."
	ds := p.Detect(text)
	found := false
	for _, d := range ds {
		if d.Norm == c.Name && d.Kind == KindNamed {
			found = true
			if d.Entry == nil || d.Entry.Type != c.Type {
				t.Fatalf("named detection missing/incorrect entry: %+v", d)
			}
			if text[d.Start:d.End] != d.Text {
				t.Fatal("offset mismatch")
			}
		}
	}
	if !found {
		t.Fatalf("entity %q not detected in %q: %+v", c.Name, text, ds)
	}
}

func TestDetectConcepts(t *testing.T) {
	w, dict, us := testResources(t)
	p := New(dict, us)
	var c *world.Concept
	for i := range w.Concepts {
		cc := &w.Concepts[i]
		if cc.Type == world.TypeNone && len(cc.Terms) >= 2 && us.Lookup(cc.Name) != nil {
			c = cc
			break
		}
	}
	if c == nil {
		t.Skip("no abstract unit concept")
	}
	text := "There was discussion of " + c.Name + " at the meeting."
	found := false
	for _, d := range p.Detect(text) {
		if d.Norm == c.Name && d.Kind == KindConcept {
			found = true
			if d.Unit == nil {
				t.Fatal("concept detection missing unit")
			}
		}
	}
	if !found {
		t.Fatalf("concept %q not detected", c.Name)
	}
}

func TestCollisionResolutionNoOverlaps(t *testing.T) {
	w, dict, us := testResources(t)
	p := New(dict, us)
	var b strings.Builder
	for i := 0; i < 30 && i < len(w.Concepts); i++ {
		b.WriteString(w.Concepts[i].Name)
		b.WriteString(" and then ")
	}
	ds := p.Detect(b.String())
	for i := 1; i < len(ds); i++ {
		if ds[i].Start < ds[i-1].End {
			t.Fatalf("overlapping detections: %+v and %+v", ds[i-1], ds[i])
		}
	}
}

func TestPatternBeatsOverlappingConcept(t *testing.T) {
	ds := resolveCollisions([]Detection{
		{Norm: "example com", Kind: KindConcept, Start: 10, End: 21},
		{Norm: "www.example.com", Kind: KindPattern, PatternType: "url", Start: 6, End: 21},
	})
	if len(ds) != 1 || ds[0].Kind != KindPattern {
		t.Fatalf("pattern should win: %+v", ds)
	}
}

func TestLongerSpanBeatsShorter(t *testing.T) {
	ds := resolveCollisions([]Detection{
		{Norm: "york", Kind: KindNamed, Start: 4, End: 8},
		{Norm: "new york city", Kind: KindConcept, Start: 0, End: 13},
	})
	if len(ds) != 1 || ds[0].Norm != "new york city" {
		t.Fatalf("longer span should win: %+v", ds)
	}
}

func TestNamedBeatsConceptOnTie(t *testing.T) {
	ds := resolveCollisions([]Detection{
		{Norm: "jaguar", Kind: KindConcept, Start: 0, End: 6},
		{Norm: "jaguar", Kind: KindNamed, Start: 0, End: 6},
	})
	if len(ds) != 1 || ds[0].Kind != KindNamed {
		t.Fatalf("named should win tie: %+v", ds)
	}
}

func TestFilterDropsStopwordConcepts(t *testing.T) {
	ds := filter([]Detection{
		{Norm: "the other", Kind: KindConcept, Start: 0, End: 9},
		{Norm: "of the", Kind: KindConcept, Start: 10, End: 16},
		{Norm: "a", Kind: KindConcept, Start: 20, End: 21},
	})
	for _, d := range ds {
		if d.Norm == "of the" || d.Norm == "a" {
			t.Fatalf("filter kept %q", d.Norm)
		}
	}
	// "the other" contains only stopwords too -> dropped.
	for _, d := range ds {
		if d.Norm == "the other" {
			t.Fatalf("pure stopword phrase kept")
		}
	}
}

func TestDetectHTML(t *testing.T) {
	_, dict, us := testResources(t)
	p := New(dict, us)
	text, ds := p.DetectHTML(`<p>Email <a href="#">a@b.com</a> now</p>`)
	if !strings.Contains(text, "a@b.com") {
		t.Fatalf("stripped text lost email: %q", text)
	}
	found := false
	for _, d := range ds {
		if d.PatternType == "email" {
			found = true
			if text[d.Start:d.End] != d.Text {
				t.Fatal("offsets must refer to stripped text")
			}
		}
	}
	if !found {
		t.Fatal("email not detected in HTML")
	}
}

func TestDetectNilResources(t *testing.T) {
	p := New(nil, nil)
	ds := p.Detect("Only a@b.com here.")
	if len(ds) != 1 || ds[0].Kind != KindPattern {
		t.Fatalf("pattern-only pipeline = %+v", ds)
	}
}

func TestDetectDeterministic(t *testing.T) {
	w, dict, us := testResources(t)
	p := New(dict, us)
	text := "News about " + w.Concepts[10].Name + " and " + w.Concepts[20].Name + "."
	d1 := p.Detect(text)
	d2 := p.Detect(text)
	if len(d1) != len(d2) {
		t.Fatal("nondeterministic detection count")
	}
	for i := range d1 {
		if d1[i].Norm != d2[i].Norm || d1[i].Start != d2[i].Start {
			t.Fatal("nondeterministic detection")
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	w, dict, us := testResources(b)
	p := New(dict, us)
	var sb strings.Builder
	for i := 0; i < 40; i++ {
		sb.WriteString("The story discussed ")
		sb.WriteString(w.Concepts[i%len(w.Concepts)].Name)
		sb.WriteString(" in detail. ")
	}
	text := sb.String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer() // exclude resource building from ns/op and allocs/op
	for i := 0; i < b.N; i++ {
		p.Detect(text)
	}
}

func TestNewWithFloorZeroAnnotatesEverything(t *testing.T) {
	w, dict, us := testResources(t)
	all := NewWithFloor(dict, us, 0)
	floored := New(dict, us)
	// Ordinary topical vocabulary: every query term is formally a unit, so
	// a zero floor detects far more than the production floor.
	var b strings.Builder
	for i := 0; i < 25; i++ {
		b.WriteString(w.Vocab[i*7])
		b.WriteByte(' ')
	}
	text := b.String()
	got, want := len(all.Detect(text)), len(floored.Detect(text))
	if got <= want {
		t.Fatalf("floor 0 should detect more: %d vs %d", got, want)
	}
}
