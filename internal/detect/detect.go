// Package detect implements the Contextual Shortcuts entity-detection
// pipeline (paper §II): pre-processing (HTML parsing, tokenization, sentence
// and paragraph boundary detection), specialized detectors for the three
// entity classes — pattern-based entities, dictionary named entities and
// query-log concepts — followed by post-processing: collision detection
// between overlapping entities, disambiguation and filtering.
package detect

import (
	"sort"

	"contextrank/internal/taxonomy"
	"contextrank/internal/textproc"
	"contextrank/internal/units"
)

// Kind is the entity class of a detection.
type Kind int

const (
	// KindPattern covers regular-expression entities (emails, URLs,
	// phones). They are "not subject to any relevance calculations [and]
	// always annotated".
	KindPattern Kind = iota
	// KindNamed covers dictionary named entities.
	KindNamed
	// KindConcept covers abstract concepts from query-log units.
	KindConcept
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPattern:
		return "pattern"
	case KindNamed:
		return "named"
	default:
		return "concept"
	}
}

// Detection is one detected entity occurrence.
type Detection struct {
	// Text is the surface form as it appears in the document.
	Text string
	// Norm is the normalized (lower-case) phrase; for named entities and
	// concepts this is the dictionary/unit key.
	Norm string
	// Kind is the entity class.
	Kind Kind
	// PatternType is "email", "url" or "phone" for pattern entities.
	PatternType string
	// Entry is the disambiguated taxonomy entry for named entities.
	Entry *taxonomy.Entry
	// Unit is the matched query-log unit for concepts.
	Unit *units.Unit
	// Start and End are byte offsets into the *plain text* input.
	Start, End int
	// Sentence is the sentence index of the detection.
	Sentence int
}

// MinUnitScore is the default floor on a unit's normalized score for the
// concept detector to annotate it. Every term in the query log is formally
// a unit, but the production system works with "a large, but finite set of
// entities ... plus a large subset of all the concepts available to us from
// query logs" — the subset with enough query traffic to be worth
// annotating. Without a floor the detector would fire on nearly every word.
const MinUnitScore = 0.35

// Pipeline is a configured detector.
type Pipeline struct {
	dict         *taxonomy.Dictionary
	units        *units.Set
	minUnitScore float64
}

// New builds a pipeline with the default unit-score floor. Either resource
// may be nil, disabling that detector (useful in tests and for pattern-only
// deployments).
func New(dict *taxonomy.Dictionary, unitSet *units.Set) *Pipeline {
	return NewWithFloor(dict, unitSet, MinUnitScore)
}

// NewWithFloor builds a pipeline with an explicit unit-score floor for the
// concept detector (0 annotates every unit).
func NewWithFloor(dict *taxonomy.Dictionary, unitSet *units.Set, minUnitScore float64) *Pipeline {
	return &Pipeline{dict: dict, units: unitSet, minUnitScore: minUnitScore}
}

// DetectHTML strips HTML then runs detection; offsets refer to the stripped
// plain text, which is also returned.
func (p *Pipeline) DetectHTML(html string) (string, []Detection) {
	text := textproc.StripHTML(html)
	return text, p.Detect(text)
}

// Detect runs the full pipeline over plain text.
func (p *Pipeline) Detect(text string) []Detection {
	tokens := textproc.Tokenize(text)

	// Word-token view for the phrase scanners, with a mapping back to the
	// token slice so byte offsets survive.
	norm := make([]string, 0, len(tokens))
	tokIdx := make([]int, 0, len(tokens))
	for i, t := range tokens {
		if t.Kind != textproc.Punct && t.Norm != "" {
			norm = append(norm, t.Norm)
			tokIdx = append(tokIdx, i)
		}
	}

	var all []Detection
	all = append(all, detectPatterns(text)...)

	if p.dict != nil {
		for _, m := range p.dict.FindInTokens(norm) {
			entry := p.dict.Disambiguate(m, contextWindow(norm, m.Start, m.End, 25))
			first, last := tokens[tokIdx[m.Start]], tokens[tokIdx[m.End-1]]
			e := entry
			all = append(all, Detection{
				Text:     text[first.Start:last.End],
				Norm:     m.Phrase,
				Kind:     KindNamed,
				Entry:    &e,
				Start:    first.Start,
				End:      last.End,
				Sentence: first.Sentence,
			})
		}
	}

	if p.units != nil {
		for _, m := range p.units.FindInTokens(norm) {
			if m.Unit.Score < p.minUnitScore {
				continue
			}
			first, last := tokens[tokIdx[m.Start]], tokens[tokIdx[m.End-1]]
			all = append(all, Detection{
				Text:     text[first.Start:last.End],
				Norm:     m.Unit.Text,
				Kind:     KindConcept,
				Unit:     m.Unit,
				Start:    first.Start,
				End:      last.End,
				Sentence: first.Sentence,
			})
		}
	}

	all = filter(all)
	return resolveCollisions(all)
}

// contextWindow returns the normalized tokens within radius of [start,end).
func contextWindow(norm []string, start, end, radius int) []string {
	lo := start - radius
	if lo < 0 {
		lo = 0
	}
	hi := end + radius
	if hi > len(norm) {
		hi = len(norm)
	}
	return norm[lo:hi]
}

// filter applies the post-processing filters: single-character concepts,
// pure stop-word concepts and number-only concepts are dropped. Named and
// pattern entities pass through (editorial dictionaries are pre-vetted).
func filter(ds []Detection) []Detection {
	out := ds[:0]
	for _, d := range ds {
		if d.Kind == KindConcept {
			if len(d.Norm) <= 1 {
				continue
			}
			if allStopwords(d.Norm) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

func allStopwords(phrase string) bool {
	any := false
	for _, w := range textproc.Words(phrase) {
		any = true
		if !textproc.IsStopword(w) {
			return false
		}
	}
	return any
}

// resolveCollisions drops detections whose spans overlap a higher-priority
// detection. Priority: pattern entities first (always annotated), then
// longer spans, then named entities over concepts, then earlier start.
func resolveCollisions(ds []Detection) []Detection {
	if len(ds) <= 1 {
		return ds
	}
	order := make([]int, len(ds))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := ds[order[a]], ds[order[b]]
		if (x.Kind == KindPattern) != (y.Kind == KindPattern) {
			return x.Kind == KindPattern
		}
		if lx, ly := x.End-x.Start, y.End-y.Start; lx != ly {
			return lx > ly
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Start < y.Start
	})
	var kept []Detection
	for _, idx := range order {
		d := ds[idx]
		collides := false
		for _, k := range kept {
			if d.Start < k.End && k.Start < d.End {
				collides = true
				break
			}
		}
		if !collides {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	return kept
}
