// Package detect implements the Contextual Shortcuts entity-detection
// pipeline (paper §II): pre-processing (HTML parsing, tokenization, sentence
// and paragraph boundary detection), specialized detectors for the three
// entity classes — pattern-based entities, dictionary named entities and
// query-log concepts — followed by post-processing: collision detection
// between overlapping entities, disambiguation and filtering.
//
// The detection hot path is allocation-disciplined (DESIGN.md §10): a
// document is tokenized into pooled scratch buffers, interned once against
// each matcher's vocabulary, and scanned by the token-trie matchers of
// internal/match with zero per-probe allocations. Only the returned
// detection slice is freshly allocated — it never aliases pooled state.
package detect

import (
	"sort"
	"sync"

	"contextrank/internal/taxonomy"
	"contextrank/internal/textproc"
	"contextrank/internal/units"
)

// Kind is the entity class of a detection.
type Kind int

const (
	// KindPattern covers regular-expression entities (emails, URLs,
	// phones). They are "not subject to any relevance calculations [and]
	// always annotated".
	KindPattern Kind = iota
	// KindNamed covers dictionary named entities.
	KindNamed
	// KindConcept covers abstract concepts from query-log units.
	KindConcept
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPattern:
		return "pattern"
	case KindNamed:
		return "named"
	default:
		return "concept"
	}
}

// Detection is one detected entity occurrence.
type Detection struct {
	// Text is the surface form as it appears in the document.
	Text string
	// Norm is the normalized (lower-case) phrase; for named entities and
	// concepts this is the dictionary/unit key.
	Norm string
	// Kind is the entity class.
	Kind Kind
	// PatternType is "email", "url" or "phone" for pattern entities.
	PatternType string
	// Entry is the disambiguated taxonomy entry for named entities. It
	// points into the dictionary's immutable entry table; treat it as
	// read-only.
	Entry *taxonomy.Entry
	// Unit is the matched query-log unit for concepts.
	Unit *units.Unit
	// Start and End are byte offsets into the *plain text* input.
	Start, End int
	// Sentence is the sentence index of the detection.
	Sentence int
}

// MinUnitScore is the default floor on a unit's normalized score for the
// concept detector to annotate it. Every term in the query log is formally
// a unit, but the production system works with "a large, but finite set of
// entities ... plus a large subset of all the concepts available to us from
// query logs" — the subset with enough query traffic to be worth
// annotating. Without a floor the detector would fire on nearly every word.
const MinUnitScore = 0.35

// disambigRadius is the token radius of the context window handed to the
// dictionary disambiguator for each ambiguous named-entity match.
const disambigRadius = 25

// Pipeline is a configured detector. It is safe for concurrent use: all
// per-document state lives in pooled scratch buffers.
type Pipeline struct {
	dict         *taxonomy.Dictionary
	units        *units.Set
	minUnitScore float64
}

// New builds a pipeline with the default unit-score floor. Either resource
// may be nil, disabling that detector (useful in tests and for pattern-only
// deployments).
func New(dict *taxonomy.Dictionary, unitSet *units.Set) *Pipeline {
	return NewWithFloor(dict, unitSet, MinUnitScore)
}

// NewWithFloor builds a pipeline with an explicit unit-score floor for the
// concept detector (0 annotates every unit).
func NewWithFloor(dict *taxonomy.Dictionary, unitSet *units.Set, minUnitScore float64) *Pipeline {
	return &Pipeline{dict: dict, units: unitSet, minUnitScore: minUnitScore}
}

// DetectHTML strips HTML then runs detection; offsets refer to the stripped
// plain text, which is also returned.
func (p *Pipeline) DetectHTML(html string) (string, []Detection) {
	text := textproc.StripHTML(html)
	return text, p.Detect(text)
}

// scratch holds the per-document working set of Detect: the token slice,
// the word-token views (norm/tokIdx), one interned id buffer per matcher
// vocabulary, match buffers and the detection accumulator. Pooled so a
// steady-state serving process performs no per-document buffer allocations.
type scratch struct {
	tokens  []textproc.Token
	norm    []string
	tokIdx  []int
	dictIDs []uint32
	unitIDs []uint32
	dms     []taxonomy.Match
	ums     []units.Match
	all     []Detection
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Detect runs the full pipeline over plain text. The returned slice is
// freshly allocated and owned by the caller; it never aliases the pooled
// scratch buffers.
//
//kw:hotpath
func (p *Pipeline) Detect(text string) []Detection {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	sc.tokens = textproc.TokenizeInto(text, sc.tokens[:0]) //kwlint:ignore hotpath — token normalization (ToLower of mixed-case tokens) is the documented per-document budget

	// Word-token view for the phrase scanners, with a mapping back to the
	// token slice so byte offsets survive.
	sc.norm, sc.tokIdx = sc.norm[:0], sc.tokIdx[:0]
	for i := range sc.tokens {
		t := &sc.tokens[i]
		if t.Kind != textproc.Punct && t.Norm != "" {
			sc.norm = append(sc.norm, t.Norm)
			sc.tokIdx = append(sc.tokIdx, i)
		}
	}

	all := appendPatternDetections(sc.all[:0], text) //kwlint:ignore hotpath — regex pattern detection is budgeted in BenchmarkDetect; see DESIGN.md §10

	if p.dict != nil {
		sc.dictIDs = p.dict.Vocab().AppendIDs(sc.dictIDs[:0], sc.norm)
		sc.dms = p.dict.FindInIDs(sc.dictIDs, sc.dms[:0])
		for _, m := range sc.dms {
			entry := p.dict.DisambiguateIDs(m, idWindow(sc.dictIDs, m.Start, m.End, disambigRadius))
			first, last := sc.tokens[sc.tokIdx[m.Start]], sc.tokens[sc.tokIdx[m.End-1]]
			all = append(all, Detection{
				Text:     text[first.Start:last.End],
				Norm:     m.Phrase,
				Kind:     KindNamed,
				Entry:    entry,
				Start:    first.Start,
				End:      last.End,
				Sentence: first.Sentence,
			})
		}
	}

	if p.units != nil {
		sc.unitIDs = p.units.Vocab().AppendIDs(sc.unitIDs[:0], sc.norm)
		sc.ums = p.units.FindInIDs(sc.unitIDs, sc.ums[:0])
		for _, m := range sc.ums {
			if m.Unit.Score < p.minUnitScore {
				continue
			}
			first, last := sc.tokens[sc.tokIdx[m.Start]], sc.tokens[sc.tokIdx[m.End-1]]
			all = append(all, Detection{
				Text:     text[first.Start:last.End],
				Norm:     m.Unit.Text,
				Kind:     KindConcept,
				Unit:     m.Unit,
				Start:    first.Start,
				End:      last.End,
				Sentence: first.Sentence,
			})
		}
	}

	all = filter(all)
	sc.all = all[:0]              // return the (possibly grown) accumulator to the pool
	return resolveCollisions(all) //kwlint:ignore hotpath — the result slice is deliberately fresh so it never aliases pooled scratch
}

// idWindow returns the interned ids within radius tokens of [start,end).
func idWindow(ids []uint32, start, end, radius int) []uint32 {
	lo := start - radius
	if lo < 0 {
		lo = 0
	}
	hi := end + radius
	if hi > len(ids) {
		hi = len(ids)
	}
	return ids[lo:hi]
}

// filter applies the post-processing filters: single-character concepts,
// pure stop-word concepts and number-only concepts are dropped. Named and
// pattern entities pass through (editorial dictionaries are pre-vetted).
//
// Ownership contract: filter compacts ds in place (writing through ds[:0])
// and returns the shortened slice. The caller must exclusively own ds's
// backing array — passing a slice that shares its array with live data
// would clobber that data. Detect calls it on the pooled accumulator it
// owns; see TestFilterCompactsInPlace / TestDetectResultsDoNotAliasScratch.
func filter(ds []Detection) []Detection {
	out := ds[:0]
	for _, d := range ds {
		if d.Kind == KindConcept {
			if len(d.Norm) <= 1 {
				continue
			}
			if stopOnly(d) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// stopOnly reports whether a concept detection is made of stop-words only,
// using the unit's precomputed flag when present (the hot path) and
// re-tokenizing the phrase otherwise (detections built by hand in tests).
func stopOnly(d Detection) bool {
	if d.Unit != nil {
		return d.Unit.StopOnly
	}
	return allStopwords(d.Norm)
}

// allStopwords re-tokenizes a phrase; only the hand-built-detection test
// path reaches it (units carry a precomputed StopOnly flag).
//
//kw:coldpath
func allStopwords(phrase string) bool {
	any := false
	for _, w := range textproc.Words(phrase) {
		any = true
		if !textproc.IsStopword(w) {
			return false
		}
	}
	return any
}

// resolveCollisions drops detections whose spans overlap a higher-priority
// detection. Priority: pattern entities first (always annotated), then
// longer spans, then named entities over concepts, then earlier start.
//
// The kept set is maintained sorted by span start; because kept spans never
// overlap, one binary search decides each candidate — a sorted interval
// sweep replacing the quadratic kept-list scan. The returned slice is
// always freshly allocated (never an alias of ds), sorted by start.
//
//kw:fresh
func resolveCollisions(ds []Detection) []Detection {
	if len(ds) == 0 {
		return nil
	}
	if len(ds) == 1 {
		return []Detection{ds[0]}
	}
	order := make([]int, len(ds))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := ds[order[a]], ds[order[b]]
		if (x.Kind == KindPattern) != (y.Kind == KindPattern) {
			return x.Kind == KindPattern
		}
		if lx, ly := x.End-x.Start, y.End-y.Start; lx != ly {
			return lx > ly
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		return x.Start < y.Start
	})
	kept := make([]Detection, 0, len(ds))
	for _, idx := range order {
		d := ds[idx]
		// First kept span ending after d starts: the only possible overlap
		// candidate, since kept spans are disjoint and sorted.
		lo, hi := 0, len(kept)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if kept[mid].End > d.Start {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo < len(kept) && kept[lo].Start < d.End {
			continue // overlaps a higher-priority detection
		}
		kept = append(kept, Detection{})
		copy(kept[lo+1:], kept[lo:])
		kept[lo] = d
	}
	return kept
}
