package detect

import (
	"regexp"
	"strings"
)

// Pattern-based entity detectors (paper §II-A type 1): "primarily detected
// by regular expressions ... they typically achieve very high accuracy".
var (
	emailRe = regexp.MustCompile(`[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}`)
	urlRe   = regexp.MustCompile(`(?:https?://|www\.)[^\s<>"')\]]+`)
	phoneRe = regexp.MustCompile(`(?:\+?1[\-. ])?\(?\d{3}\)?[\-. ]\d{3}[\-. ]\d{4}`)
)

// detectPatterns finds pattern entities in text.
func detectPatterns(text string) []Detection {
	return appendPatternDetections(nil, text)
}

// appendPatternDetections appends pattern entities found in text to dst.
// Emails are detected before URLs so that "mailto"-like text is not double
// counted; overlapping pattern matches are resolved by the usual collision
// pass downstream.
func appendPatternDetections(dst []Detection, text string) []Detection {
	out := dst
	add := func(ptype string, locs [][]int) {
		for _, loc := range locs {
			raw := text[loc[0]:loc[1]]
			// Trim trailing sentence punctuation from URLs.
			if ptype == "url" {
				trimmed := strings.TrimRight(raw, ".,;:!?")
				loc[1] -= len(raw) - len(trimmed)
				raw = trimmed
			}
			if raw == "" {
				continue
			}
			out = append(out, Detection{
				Text:        raw,
				Norm:        strings.ToLower(raw),
				Kind:        KindPattern,
				PatternType: ptype,
				Start:       loc[0],
				End:         loc[1],
			})
		}
	}
	add("email", emailRe.FindAllStringIndex(text, -1))
	add("url", urlRe.FindAllStringIndex(text, -1))
	add("phone", phoneRe.FindAllStringIndex(text, -1))
	return out
}
