package detect

import (
	"math"
	"reflect"
	"testing"

	"contextrank/internal/querylog"
	"contextrank/internal/units"
)

// fillerCounts adds unrelated single-term traffic so phrase probabilities are
// small enough for mutual information to validate multi-term units, as in a
// real query log.
func fillerCounts(counts map[string]int) map[string]int {
	for i := 0; i < 50; i++ {
		counts["filler"+string(rune('a'+i%26))+string(rune('a'+i/26))] = 100
	}
	return counts
}

func smallUnitSet(t *testing.T) *units.Set {
	t.Helper()
	return units.Extract(querylog.FromCounts(fillerCounts(map[string]int{
		"global warming": 500,
		"global":         200,
		"warming":        50,
	})), units.Config{MinMI: 0.5})
}

// TestFilterCompactsInPlace pins filter's ownership contract: it compacts
// through ds[:0], so the returned slice shares the input's backing array and
// survivors are moved to the front. A caller that does not own the backing
// array would see its data clobbered — which is exactly why Detect hands
// filter the pooled accumulator it owns.
func TestFilterCompactsInPlace(t *testing.T) {
	in := []Detection{
		{Norm: "climate change", Kind: KindConcept, Start: 0, End: 14},
		{Norm: "of the", Kind: KindConcept, Start: 15, End: 21}, // stop-only: dropped
		{Norm: "a", Kind: KindConcept, Start: 22, End: 23},      // single char: dropped
		{Norm: "acme corp", Kind: KindNamed, Start: 24, End: 33},
	}
	out := filter(in)
	if len(out) != 2 {
		t.Fatalf("filter kept %d detections, want 2: %+v", len(out), out)
	}
	if &out[0] != &in[0] {
		t.Fatal("filter must reuse the input's backing array (in-place compaction)")
	}
	if in[0].Norm != "climate change" || in[1].Norm != "acme corp" {
		t.Fatalf("survivors not compacted to the front: %q, %q", in[0].Norm, in[1].Norm)
	}
}

// TestDetectResultsDoNotAliasScratch pins Detect's ownership contract: the
// returned slice is freshly allocated, so later Detect calls (which reuse
// pooled scratch buffers) must not mutate earlier results.
func TestDetectResultsDoNotAliasScratch(t *testing.T) {
	w, dict, us := testResources(t)
	p := New(dict, us)
	text := "News about " + w.Concepts[10].Name + ", mail a@b.com for details."
	first := p.Detect(text)
	if len(first) == 0 {
		t.Fatal("expected detections in seed document")
	}
	snapshot := make([]Detection, len(first))
	copy(snapshot, first)
	for i := 0; i < 8; i++ {
		p.Detect("Different text about " + w.Concepts[i].Name + " with c@d.com and extra words to regrow every scratch buffer.")
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Fatalf("earlier Detect result mutated by later calls:\n got %+v\nwant %+v", first, snapshot)
	}
}

// TestDetectEmptyAndPunctOnlyDocs: degenerate documents produce no
// detections and no panics (the token-view and matcher paths all see
// zero-length inputs).
func TestDetectEmptyAndPunctOnlyDocs(t *testing.T) {
	_, dict, us := testResources(t)
	p := New(dict, us)
	for _, tc := range []struct{ name, text string }{
		{"empty", ""},
		{"punct only", "?! ... --- ,,, ;; ()"},
		{"whitespace only", "  \n\t  \n"},
	} {
		if ds := p.Detect(tc.text); len(ds) != 0 {
			t.Fatalf("%s doc produced detections: %+v", tc.name, ds)
		}
	}
}

// TestDetectUnknownTokens: a document whose words appear in no vocabulary
// yields nothing — unknown tokens intern to match.NoID and break every trie
// walk instead of producing spurious matches.
func TestDetectUnknownTokens(t *testing.T) {
	_, dict, us := testResources(t)
	p := New(dict, us)
	if ds := p.Detect("zzqx wvblorp klaatu barada nikto"); len(ds) != 0 {
		t.Fatalf("unknown-token doc produced detections: %+v", ds)
	}
}

// TestDetectPhraseLongerThanDoc: a document shorter than the longest indexed
// phrase must not match that phrase or produce out-of-range spans.
func TestDetectPhraseLongerThanDoc(t *testing.T) {
	s := smallUnitSet(t)
	p := NewWithFloor(nil, s, 0)
	text := "global"
	for _, d := range p.Detect(text) {
		if d.Norm == "global warming" {
			t.Fatal("matched a phrase longer than the document")
		}
		if d.Start < 0 || d.End > len(text) || d.End <= d.Start {
			t.Fatalf("out-of-range span: %+v", d)
		}
	}
}

// TestUnitFloorBoundary pins the floor comparison: a unit whose score equals
// the floor is annotated (the check is Score < floor, not <=); a floor just
// above the score drops it.
func TestUnitFloorBoundary(t *testing.T) {
	s := smallUnitSet(t)
	u := s.Lookup("global warming")
	if u == nil {
		t.Fatal("'global warming' should be a unit")
	}
	text := "the global warming debate"

	keep := NewWithFloor(nil, s, u.Score)
	found := false
	for _, d := range keep.Detect(text) {
		if d.Norm == "global warming" {
			found = true
		}
	}
	if !found {
		t.Fatal("unit with Score == floor must be annotated")
	}

	drop := NewWithFloor(nil, s, math.Nextafter(u.Score, 2))
	for _, d := range drop.Detect(text) {
		if d.Norm == "global warming" {
			t.Fatal("unit below the floor must not be annotated")
		}
	}
}
