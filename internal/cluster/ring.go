// Package cluster is the fault-tolerant sharded serving tier: a stateless
// router that consistent-hashes annotation requests across N shard
// processes (cmd/serve -shard), fails over deterministically between R
// replicas, hedges slow reads, trips per-shard circuit breakers, and
// enforces per-tenant quotas — all on seeded schedules so a multi-process
// chaos run reproduces the exact same failover/hedge/breaker counters on
// every run (DESIGN.md §8).
//
// The router is stateless by construction: shard placement is a pure
// function of (shard names, vnodes, request key), breaker cooldowns and
// hedge delays are pure functions of a seed, and the chaos injector's
// cluster plans are pure functions of (seed, request index). Any router
// replica given the same configuration makes the same decisions.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard. 64 vnodes keep the
// keyspace imbalance across a handful of shards in the few-percent range
// while the ring stays small enough to rebuild on every topology change.
const DefaultVnodes = 64

// Ring is a consistent-hash ring over shard *names*. Hashing names rather
// than addresses keeps placement stable across restarts and lets tests
// replicate the key→shard mapping independent of which ports the shard
// processes bound.
type Ring struct {
	points []ringPoint // sorted by (hash, shard)
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int // index into the name list NewRing was built from
}

// NewRing places vnodes points per shard on the ring. vnodes <= 0 uses
// DefaultVnodes. The shard order of the input slice defines the indexes
// Replicas returns.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(names)*vnodes), shards: len(names)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(name, v), shard: i})
		}
	}
	// Ties broken by shard index so the walk order is total — two vnodes
	// hashing identically (astronomically unlikely, but the contract must
	// not depend on luck) still yield one deterministic ring.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// hashPoint is the vnode hash: FNV-64a over "name#vnode", finished with a
// splitmix64-style mix. Shard names are near-identical short strings, and
// raw FNV clusters them badly enough to skew arc lengths several-fold; the
// finalizer restores the spread vnode placement needs. Part of the
// determinism contract — tests re-derive placement with the same function.
func hashPoint(name string, vnode int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name)) // fnv never errors
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(strconv.Itoa(vnode)))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.): a bijective avalanche
// over uint64.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// Shards returns the number of distinct shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Replicas returns the indexes of up to n distinct shards responsible for
// key, in failover order: the shard owning the first ring point at or
// clockwise of key, then the next distinct shard clockwise, and so on.
// Every replica choice every router makes flows from this walk.
func (r *Ring) Replicas(key uint64, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > r.shards {
		n = r.shards
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}
