package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"contextrank/internal/resilience"
	"contextrank/internal/serve"
)

// fakeShard is an httptest-backed stand-in for a cmd/serve -shard process.
type fakeShard struct {
	name string
	srv  *httptest.Server

	mu sync.Mutex
	//kw:guardedby(mu)
	hits int
	//kw:guardedby(mu)
	lastDeadline string
}

func (f *fakeShard) Hits() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

// newFakeShards builds n shards whose /v1/annotate responds via reply
// (given the shard index) and whose /healthz always succeeds.
func newFakeShards(t *testing.T, n int, reply func(i int, w http.ResponseWriter, r *http.Request)) []*fakeShard {
	t.Helper()
	shards := make([]*fakeShard, n)
	for i := 0; i < n; i++ {
		i := i
		f := &fakeShard{name: fmt.Sprintf("shard%d", i)}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
		mux.HandleFunc("POST /v1/annotate", func(w http.ResponseWriter, r *http.Request) {
			f.mu.Lock()
			f.hits++
			f.lastDeadline = r.Header.Get(serve.DeadlineHeader)
			f.mu.Unlock()
			reply(i, w, r)
		})
		f.srv = httptest.NewServer(mux)
		t.Cleanup(f.srv.Close)
		shards[i] = f
	}
	return shards
}

func shardConfigs(shards []*fakeShard) []Shard {
	out := make([]Shard, len(shards))
	for i, f := range shards {
		out[i] = Shard{Name: f.name, URL: f.srv.URL}
	}
	return out
}

// annotateBody builds the request body for text/top.
func annotateBody(t *testing.T, text string, top int) []byte {
	t.Helper()
	b, err := json.Marshal(serve.AnnotateRequest{Text: text, Top: top})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// textWithPrimary finds a document text whose primary replica is the
// given shard index — the same pure derivation the router uses, so tests
// can aim requests at a chosen shard.
func textWithPrimary(t *testing.T, names []string, vnodes, want, top int) string {
	t.Helper()
	ring := NewRing(names, vnodes)
	for i := 0; i < 10_000; i++ {
		text := fmt.Sprintf("probe document %d", i)
		if ring.Replicas(serve.CacheKey(text, top), 1)[0] == want {
			return text
		}
	}
	t.Fatal("no text found with the wanted primary")
	return ""
}

func postAnnotate(t *testing.T, h http.Handler, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/annotate", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRouterRoutesToPrimary: a healthy cluster routes each request to its
// ring primary and relays the shard's bytes verbatim.
func TestRouterRoutesToPrimary(t *testing.T) {
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	names := []string{"shard0", "shard1", "shard2"}
	for want := 0; want < 3; want++ {
		text := textWithPrimary(t, names, 0, want, 3)
		rec := postAnnotate(t, h, annotateBody(t, text, 3), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		if got := rec.Body.String(); got != fmt.Sprintf(`{"from":%d}`, want) {
			t.Fatalf("primary %d: body %q", want, got)
		}
	}
	snap := rt.CountersSnapshot()
	if snap.Requests != 3 || snap.Failovers != 0 || snap.Hedges != 0 {
		t.Fatalf("healthy routing bumped fault counters: %+v", snap)
	}
}

// TestRouterFailover: the primary answers 500, so the router must fail
// over to the second replica and count exactly one failover.
func TestRouterFailover(t *testing.T) {
	names := []string{"shard0", "shard1", "shard2"}
	text := textWithPrimary(t, names, 0, 0, 3)
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, _ *http.Request) {
		if i == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rec := postAnnotate(t, rt.Handler(), annotateBody(t, text, 3), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	second := NewRing(names, 0).Replicas(serve.CacheKey(text, 3), 2)[1]
	if got := rec.Body.String(); got != fmt.Sprintf(`{"from":%d}`, second) {
		t.Fatalf("failover body %q, want replica %d", got, second)
	}
	if snap := rt.CountersSnapshot(); snap.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1: %+v", snap.Failovers, snap)
	}
}

// TestRouterAllReplicasFail: every replica 500s; the router exhausts the
// set and answers 503 with Retry-After.
func TestRouterAllReplicasFail(t *testing.T) {
	shards := newFakeShards(t, 3, func(_ int, w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rec := postAnnotate(t, rt.Handler(), annotateBody(t, "doc", 3), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	snap := rt.CountersSnapshot()
	if snap.ReplicasExhausted != 1 || snap.Failovers != 2 {
		t.Fatalf("exhausted=%d failovers=%d, want 1/2: %+v", snap.ReplicasExhausted, snap.Failovers, snap)
	}
}

// TestRouterInjectedDownFailover: chaos ShardDownP=1 downs every primary
// attempt; every request must fail over and still return the replica's
// bytes, with injected_downs == failovers == requests.
func TestRouterInjectedDownFailover(t *testing.T) {
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	inj := resilience.NewInjector(resilience.InjectorConfig{Seed: 42, ShardDownP: 1})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	const n = 8
	names := []string{"shard0", "shard1", "shard2"}
	ring := NewRing(names, 0)
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("chaos doc %d", i)
		rec := postAnnotate(t, h, annotateBody(t, text, 3), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("req %d: status %d: %s", i, rec.Code, rec.Body)
		}
		second := ring.Replicas(serve.CacheKey(text, 3), 2)[1]
		if got := rec.Body.String(); got != fmt.Sprintf(`{"from":%d}`, second) {
			t.Fatalf("req %d: body %q, want second replica %d", i, got, second)
		}
	}
	snap := rt.CountersSnapshot()
	if snap.InjectedDowns != n || snap.Failovers != n {
		t.Fatalf("injected_downs=%d failovers=%d, want %d/%d", snap.InjectedDowns, snap.Failovers, n, n)
	}
}

// TestRouterHedgeWins: the primary is slow (far beyond the hedge delay),
// so the hedge fires, the second replica answers, and the duplicate is
// cancelled — hedges == hedge_wins == 1.
func TestRouterHedgeWins(t *testing.T) {
	names := []string{"shard0", "shard1", "shard2"}
	text := textWithPrimary(t, names, 0, 0, 3)
	release := make(chan struct{})
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, r *http.Request) {
		if i == 0 {
			// Drain the body so the server's background read can notice
			// the router cancelling the duplicate, then park: a stuck shard.
			_, _ = io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-release:
			}
			return
		}
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	t.Cleanup(func() { close(release) }) // runs before the servers' Close
	rt, err := New(Config{
		Shards: shardConfigs(shards), Replication: 2, Seed: 42,
		HedgeDelay: 20 * time.Millisecond, HedgeJitter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := postAnnotate(t, rt.Handler(), annotateBody(t, text, 3), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	second := NewRing(names, 0).Replicas(serve.CacheKey(text, 3), 2)[1]
	if got := rec.Body.String(); got != fmt.Sprintf(`{"from":%d}`, second) {
		t.Fatalf("hedge body %q, want replica %d", got, second)
	}
	snap := rt.CountersSnapshot()
	if snap.Hedges != 1 || snap.HedgeWins != 1 || snap.Failovers != 0 {
		t.Fatalf("hedges=%d wins=%d failovers=%d, want 1/1/0", snap.Hedges, snap.HedgeWins, snap.Failovers)
	}
}

// TestRouterBreakerSchedule drives a replication-1 router against a shard
// that always 500s and asserts the exact closed→open→half-open→open walk
// the seeded cooldown schedule predicts.
func TestRouterBreakerSchedule(t *testing.T) {
	shards := newFakeShards(t, 1, func(_ int, w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	cfg := Config{
		Shards: shardConfigs(shards), Replication: 1,
		Seed: 42, BreakerThreshold: 2, BreakerMinSkip: 2, BreakerMaxSkip: 4,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	bcfg := resilience.BreakerConfig{Threshold: 2, MinSkip: 2, MaxSkip: 4, Seed: 42, Stream: 0}

	// Replay the schedule: threshold failures trip the breaker, then
	// cooldown(0) requests are shed, then one probe fails and re-opens
	// with cooldown(1).
	do := func() { postAnnotate(t, h, annotateBody(t, "doc", 3), nil) }
	for i := 0; i < 2; i++ { // trip
		do()
	}
	if st := rt.shards[0].breaker.State(); st != resilience.BreakerOpen {
		t.Fatalf("after threshold failures breaker is %v", st)
	}
	cool0 := resilience.BreakerCooldownAt(bcfg, 0)
	for i := 0; i < cool0; i++ {
		do()
	}
	snap := rt.CountersSnapshot()
	if snap.BreakerSkips != int64(cool0) {
		t.Fatalf("breaker_skips=%d, want cooldown(0)=%d", snap.BreakerSkips, cool0)
	}
	do() // the probe: fails, re-opens with cooldown(1)
	snap = rt.CountersSnapshot()
	if snap.BreakerProbes != 1 {
		t.Fatalf("breaker_probes=%d, want 1", snap.BreakerProbes)
	}
	if st := rt.shards[0].breaker.State(); st != resilience.BreakerOpen {
		t.Fatalf("failed probe left breaker %v", st)
	}
	if opens := rt.shards[0].breaker.Opens(); opens != 2 {
		t.Fatalf("opens=%d, want 2", opens)
	}
	// Shed requests (skips + exhausted short-circuits) never hit the shard.
	if hits := shards[0].Hits(); hits != 3 { // 2 trips + 1 probe
		t.Fatalf("shard saw %d requests, want 3", hits)
	}
}

// TestRouterProbeMarksDeadShardUnhealthy: a dead shard fails the probe
// round, gets skipped with health_skips, and traffic lands on a replica.
func TestRouterProbeMarksDeadShardUnhealthy(t *testing.T) {
	names := []string{"shard0", "shard1", "shard2"}
	text := textWithPrimary(t, names, 0, 0, 3)
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	shards[0].srv.Close() // crash the primary before the probe round
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	probeRec := httptest.NewRecorder()
	h.ServeHTTP(probeRec, httptest.NewRequest(http.MethodPost, "/admin/probe", nil))
	var pr ProbeResult
	if err := json.Unmarshal(probeRec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Healthy[0] || !pr.Healthy[1] || !pr.Healthy[2] {
		t.Fatalf("probe health %v, want [false true true]", pr.Healthy)
	}
	rec := postAnnotate(t, h, annotateBody(t, text, 3), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	second := NewRing(names, 0).Replicas(serve.CacheKey(text, 3), 2)[1]
	if got := rec.Body.String(); got != fmt.Sprintf(`{"from":%d}`, second) {
		t.Fatalf("body %q, want healthy replica %d", got, second)
	}
	snap := rt.CountersSnapshot()
	if snap.HealthSkips != 1 || snap.Failovers != 0 {
		t.Fatalf("health_skips=%d failovers=%d, want 1/0", snap.HealthSkips, snap.Failovers)
	}
}

// TestRouterInjectedFlap: FlapP=1 forces every probe of every shard to
// fail even though the shards are alive; with no healthy replicas the
// router answers 503 and counts the planned flaps exactly.
func TestRouterInjectedFlap(t *testing.T) {
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	inj := resilience.NewInjector(resilience.InjectorConfig{Seed: 42, FlapP: 1})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	probeRec := httptest.NewRecorder()
	h.ServeHTTP(probeRec, httptest.NewRequest(http.MethodPost, "/admin/probe", nil))
	rec := postAnnotate(t, h, annotateBody(t, "doc", 3), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 with all shards flapped", rec.Code)
	}
	snap := rt.CountersSnapshot()
	if snap.InjectedFlaps != 3 || snap.HealthSkips != 2 || snap.ReplicasExhausted != 1 {
		t.Fatalf("flaps=%d health_skips=%d exhausted=%d, want 3/2/1", snap.InjectedFlaps, snap.HealthSkips, snap.ReplicasExhausted)
	}
}

// TestRouterCoalescesIdenticalRequests: concurrent identical requests
// forward once; followers replay the leader's bytes and are counted.
func TestRouterCoalescesIdenticalRequests(t *testing.T) {
	started := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	shards := newFakeShards(t, 3, func(i int, w http.ResponseWriter, _ *http.Request) {
		once.Do(func() { close(started) })
		<-proceed
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	body := annotateBody(t, "same doc", 3)

	const followers = 4
	var wg sync.WaitGroup
	bodies := make([]string, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		bodies[0] = postAnnotate(t, h, body, nil).Body.String()
	}()
	<-started
	for i := 1; i <= followers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			bodies[i] = postAnnotate(t, h, body, nil).Body.String()
		}()
	}
	// Wait for every follower to park on the leader's flight, then release.
	for rt.CountersSnapshot().Coalesced < followers {
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	wg.Wait()

	for i, b := range bodies {
		if b != bodies[0] {
			t.Fatalf("caller %d body %q differs from leader %q", i, b, bodies[0])
		}
	}
	total := 0
	for _, f := range shards {
		total += f.Hits()
	}
	if total != 1 {
		t.Fatalf("coalesced requests hit shards %d times, want 1", total)
	}
	if snap := rt.CountersSnapshot(); snap.Coalesced != followers {
		t.Fatalf("coalesced=%d, want %d", snap.Coalesced, followers)
	}
}

// TestRouterQuota: a burst-2 rate-0 quota admits two requests for a
// tenant, 429s the third with Retry-After, and leaves other tenants
// untouched.
func TestRouterQuota(t *testing.T) {
	shards := newFakeShards(t, 2, func(i int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	rt, err := New(Config{
		Shards: shardConfigs(shards), Replication: 1, Seed: 42,
		Quota: resilience.NewQuota(resilience.QuotaConfig{Burst: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	hdr := map[string]string{serve.TenantHeader: "acme"}
	for i := 0; i < 2; i++ {
		if rec := postAnnotate(t, h, annotateBody(t, "doc", 3), hdr); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := postAnnotate(t, h, annotateBody(t, "doc", 3), hdr)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q", rec.Header().Get("Retry-After"))
	}
	if rec := postAnnotate(t, h, annotateBody(t, "doc", 3), map[string]string{serve.TenantHeader: "other"}); rec.Code != http.StatusOK {
		t.Fatalf("other tenant: status %d", rec.Code)
	}
	var st Statz
	statRec := httptest.NewRecorder()
	h.ServeHTTP(statRec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if err := json.Unmarshal(statRec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Resilience.QuotaDenied != 1 || st.QuotaTenants != 2 {
		t.Fatalf("quota_denied=%d tenants=%d, want 1/2", st.Resilience.QuotaDenied, st.QuotaTenants)
	}
	// A quota refusal never consumes routing work.
	if st.Router.Requests != 3 {
		t.Fatalf("requests=%d, want 3 (the denied one is not routed)", st.Router.Requests)
	}
}

// TestRouterForwardsDeadline: the router must hand the shard its
// remaining budget via X-Deadline-Ms, bounded by the request timeout.
func TestRouterForwardsDeadline(t *testing.T) {
	shards := newFakeShards(t, 1, func(_ int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 1, Seed: 42, RequestTimeout: 700 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rec := postAnnotate(t, rt.Handler(), annotateBody(t, "doc", 3), nil); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	shards[0].mu.Lock()
	dl := shards[0].lastDeadline
	shards[0].mu.Unlock()
	ms, err := strconv.Atoi(dl)
	if err != nil || ms <= 0 || ms > 700 {
		t.Fatalf("forwarded deadline %q, want integer in (0, 700]", dl)
	}
}

// TestRouterPassesThroughShardErrors: a 400 from the shard (bad request
// semantics) is final — no failover, body relayed verbatim.
func TestRouterPassesThroughShardErrors(t *testing.T) {
	shards := newFakeShards(t, 2, func(i int, w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "bad request: empty text", http.StatusBadRequest)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rec := postAnnotate(t, rt.Handler(), []byte(`{"text":""}`), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 passthrough", rec.Code)
	}
	if rec.Body.String() != "bad request: empty text\n" {
		t.Fatalf("400 body %q not relayed verbatim", rec.Body)
	}
	if snap := rt.CountersSnapshot(); snap.Failovers != 0 {
		t.Fatalf("4xx triggered failover: %+v", snap)
	}
	total := shards[0].Hits() + shards[1].Hits()
	if total != 1 {
		t.Fatalf("4xx hit %d shards, want 1", total)
	}
}

// TestRouterStatzShape pins the /statz document: the router block with
// every counter, the per-shard health/breaker block, and the resilience
// snapshot — the shape the ops runbook and the differential test rely on.
func TestRouterStatzShape(t *testing.T) {
	shards := newFakeShards(t, 2, func(i int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"from":%d}`, i)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 2, Seed: 42, BreakerThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	postAnnotate(t, h, annotateBody(t, "doc", 3), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statz status %d", rec.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"router", "shards", "resilience"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("statz missing %q: %s", key, rec.Body)
		}
	}
	var router map[string]int64
	if err := json.Unmarshal(doc["router"], &router); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "coalesced", "failovers", "hedges", "hedge_wins",
		"breaker_skips", "breaker_probes", "health_skips",
		"replicas_exhausted", "timeouts", "injected_downs", "injected_slows", "injected_flaps",
	} {
		if _, ok := router[key]; !ok {
			t.Fatalf("router block missing %q: %s", key, doc["router"])
		}
	}
	var sh []StatzShard
	if err := json.Unmarshal(doc["shards"], &sh); err != nil {
		t.Fatal(err)
	}
	if len(sh) != 2 || sh[0].Name != "shard0" || sh[0].BreakerState != "closed" || !sh[0].Healthy {
		t.Fatalf("shard block %+v", sh)
	}
	if router["requests"] != 1 {
		t.Fatalf("requests=%d, want 1", router["requests"])
	}
}

// TestRouterReadyzDrain: flipping readiness off turns /readyz into a 503
// while /healthz stays 200 — the drain window load balancers watch.
func TestRouterReadyzDrain(t *testing.T) {
	shards := newFakeShards(t, 1, func(_ int, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	rt, err := New(Config{Shards: shardConfigs(shards), Replication: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	get := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if get("/readyz") != http.StatusOK || get("/healthz") != http.StatusOK {
		t.Fatal("fresh router not ready/healthy")
	}
	rt.SetReady(false)
	if get("/readyz") != http.StatusServiceUnavailable {
		t.Fatal("draining router still ready")
	}
	if get("/healthz") != http.StatusOK {
		t.Fatal("draining router reported dead")
	}
}

// TestRouterBadShardConfig: construction must reject empty topologies and
// unnamed shards.
func TestRouterBadShardConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := New(Config{Shards: []Shard{{Name: "", URL: "http://x"}}}); err == nil {
		t.Fatal("unnamed shard accepted")
	}
	if _, err := New(Config{Shards: []Shard{{Name: "a", URL: ""}}}); err == nil {
		t.Fatal("shard without url accepted")
	}
}
