package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministicPlacement: two rings built from the same names must
// agree on every replica set — the property that lets any router (and any
// test) re-derive shard placement independently.
func TestRingDeterministicPlacement(t *testing.T) {
	names := []string{"shard0", "shard1", "shard2"}
	a := NewRing(names, 0)
	b := NewRing(names, 0)
	for key := uint64(0); key < 10_000; key += 97 {
		ra, rb := a.Replicas(key, 2), b.Replicas(key, 2)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("key %d: placement diverged: %v vs %v", key, ra, rb)
		}
	}
}

// TestRingReplicasDistinct: the replica set never repeats a shard and is
// clamped to the shard count.
func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 16)
	for key := uint64(0); key < 1000; key++ {
		reps := r.Replicas(key, 5) // asks for more than exist
		if len(reps) != 3 {
			t.Fatalf("key %d: got %d replicas, want 3", key, len(reps))
		}
		seen := map[int]bool{}
		for _, s := range reps {
			if seen[s] {
				t.Fatalf("key %d: duplicate shard in %v", key, reps)
			}
			seen[s] = true
		}
	}
	if got := r.Replicas(1, 0); got != nil {
		t.Fatalf("n=0 returned %v", got)
	}
}

// TestRingBalance: with default vnodes, primary ownership across shards
// should be within a loose band of uniform — consistent hashing's point.
func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20_000
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
	}
	r := NewRing(names, 0)
	counts := make([]int, shards)
	for key := uint64(0); key < keys; key++ {
		counts[r.Replicas(key*0x9e3779b97f4a7c15, 1)[0]]++ // golden-ratio spread over the full 64-bit ring
	}
	for i, c := range counts {
		if c < keys/shards/3 || c > keys*3/shards {
			t.Fatalf("shard %d owns %d of %d keys: imbalance beyond 3x band (%v)", i, c, keys, counts)
		}
	}
}

// TestRingStablePlacementOnShardLoss: removing one shard must not remap
// keys whose replica set did not involve it — the reshuffle-minimality
// property that makes consistent hashing worth its complexity.
func TestRingStablePlacementOnShardLoss(t *testing.T) {
	full := NewRing([]string{"a", "b", "c", "d"}, 0)
	reduced := NewRing([]string{"a", "b", "c"}, 0) // "d" removed
	moved := 0
	const keys = 5000
	for key := uint64(0); key < keys; key++ {
		before := full.Replicas(key*0x9e3779b97f4a7c15, 1)[0]
		after := reduced.Replicas(key*0x9e3779b97f4a7c15, 1)[0]
		if before == 3 {
			continue // owned by the removed shard: must move
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed shard were remapped", moved)
	}
}
