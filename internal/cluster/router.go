package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"contextrank/internal/resilience"
	"contextrank/internal/serve"
)

// Shard is one serving replica the router can route to: a name (the
// ring identity — stable across restarts) and the base URL of a
// cmd/serve -shard process.
type Shard struct {
	Name string
	URL  string
}

// Config parameterizes a Router.
type Config struct {
	// Shards is the topology, in ring-stream order: shard i draws its
	// breaker cooldowns from stream i.
	Shards []Shard
	// Replication is how many distinct replicas own each key range
	// (failover depth). Clamped to [1, len(Shards)].
	Replication int
	// Vnodes per shard on the ring (0 = DefaultVnodes).
	Vnodes int

	// RequestTimeout bounds one routed request end to end, across all
	// failover and hedge attempts (0 = none).
	RequestTimeout time.Duration
	// PerTryTimeout bounds each individual shard attempt (0 = none). A
	// per-try expiry is a genuine attempt failure: it trips failover and
	// feeds the shard's breaker.
	PerTryTimeout time.Duration

	// Seed fixes every router-side schedule: breaker cooldowns (per-shard
	// streams) and hedge jitter.
	Seed int64
	// BreakerThreshold opens a shard's breaker after that many consecutive
	// failures (0 = breakers disabled). Min/MaxSkip bound the seeded
	// request-count cooldowns (defaults 4 and 8).
	BreakerThreshold int
	BreakerMinSkip   int
	BreakerMaxSkip   int
	// HedgeDelay is the base wait before duplicating a read to the next
	// replica (0 = hedging disabled); HedgeJitter is the seeded spread
	// added on top.
	HedgeDelay  time.Duration
	HedgeJitter time.Duration

	// Quota is the per-tenant token bucket applied before any routing
	// work (nil = disabled).
	Quota *resilience.Quota
	// Injector plans router-side chaos — simulated shard crashes, slow
	// replicas, flapping health probes (nil = no injection).
	Injector *resilience.Injector

	// Client performs shard attempts. Defaults to http.DefaultClient.
	Client resilience.Doer
}

// Counters aggregates the router's resilience events. All fields are
// atomics: they are bumped from concurrent request goroutines. Each
// counter's value after a seeded chaos run is exactly predictable from
// the injector's plan (see cmd/router's differential test).
type Counters struct {
	// Requests counts routed requests admitted past the quota.
	Requests atomic.Int64
	// Coalesced counts requests that waited on another in-flight routed
	// request with the same cache key instead of forwarding.
	Coalesced atomic.Int64
	// Failovers counts failed attempts that launched the next replica.
	Failovers atomic.Int64
	// Hedges counts hedge attempts launched; HedgeWins counts routed
	// requests answered by a hedge rather than the primary.
	Hedges    atomic.Int64
	HedgeWins atomic.Int64
	// BreakerSkips counts replica candidates shed by an open breaker;
	// BreakerProbes counts half-open probe attempts launched.
	BreakerSkips  atomic.Int64
	BreakerProbes atomic.Int64
	// HealthSkips counts replica candidates skipped because the last
	// probe round marked them unhealthy.
	HealthSkips atomic.Int64
	// ReplicasExhausted counts requests that ran out of replicas (503).
	ReplicasExhausted atomic.Int64
	// Timeouts counts requests whose overall budget expired (504).
	Timeouts atomic.Int64
	// InjectedDowns / InjectedSlows / InjectedFlaps count the cluster
	// faults the injector planned and the router applied.
	InjectedDowns atomic.Int64
	InjectedSlows atomic.Int64
	InjectedFlaps atomic.Int64
}

// CountersSnapshot is the JSON view of Counters, embedded in /statz.
type CountersSnapshot struct {
	Requests          int64 `json:"requests"`
	Coalesced         int64 `json:"coalesced"`
	Failovers         int64 `json:"failovers"`
	Hedges            int64 `json:"hedges"`
	HedgeWins         int64 `json:"hedge_wins"`
	BreakerSkips      int64 `json:"breaker_skips"`
	BreakerProbes     int64 `json:"breaker_probes"`
	HealthSkips       int64 `json:"health_skips"`
	ReplicasExhausted int64 `json:"replicas_exhausted"`
	Timeouts          int64 `json:"timeouts"`
	InjectedDowns     int64 `json:"injected_downs"`
	InjectedSlows     int64 `json:"injected_slows"`
	InjectedFlaps     int64 `json:"injected_flaps"`
}

// Snapshot reads every counter once (a monitoring view, not a ledger).
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		Requests:          c.Requests.Load(),
		Coalesced:         c.Coalesced.Load(),
		Failovers:         c.Failovers.Load(),
		Hedges:            c.Hedges.Load(),
		HedgeWins:         c.HedgeWins.Load(),
		BreakerSkips:      c.BreakerSkips.Load(),
		BreakerProbes:     c.BreakerProbes.Load(),
		HealthSkips:       c.HealthSkips.Load(),
		ReplicasExhausted: c.ReplicasExhausted.Load(),
		Timeouts:          c.Timeouts.Load(),
		InjectedDowns:     c.InjectedDowns.Load(),
		InjectedSlows:     c.InjectedSlows.Load(),
		InjectedFlaps:     c.InjectedFlaps.Load(),
	}
}

// shardState is the router's per-shard runtime state.
type shardState struct {
	shard   Shard
	breaker *resilience.Breaker
	healthy atomic.Bool
}

// routedResponse is the final outcome of one routed request, shared
// verbatim with every coalesced follower.
type routedResponse struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// flight is one in-progress routed request; coalesced followers block on
// done and then replay res.
type flight struct {
	text string // full key text: collision check, like the serve cache
	top  int
	done chan struct{}
	res  routedResponse
}

// attemptResult is one shard attempt's outcome.
type attemptResult struct {
	res    routedResponse
	err    error
	hedged bool // launched by the hedge timer, not by failover
}

// Router consistent-hashes /v1/annotate requests across shard processes
// with replica failover, hedged reads, per-shard circuit breakers, and
// request coalescing. It holds no request state beyond in-flight
// bookkeeping — see the package comment for the determinism contract.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shardState
	hs     *resilience.HedgeSchedule // nil = hedging disabled

	fmu sync.Mutex
	//kw:guardedby(fmu)
	flights map[uint64]*flight

	probeRound atomic.Int64
	ready      atomic.Bool
	counters   Counters
	rz         resilience.Counters // panic recovery accounting
}

// New builds a router over cfg.Shards. At start every shard is healthy;
// the first probe round (ProbeAll, or POST /admin/probe) refreshes that.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(cfg.Shards) {
		cfg.Replication = len(cfg.Shards)
	}
	names := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		if s.Name == "" || s.URL == "" {
			return nil, fmt.Errorf("cluster: shard %d needs both name and url", i)
		}
		names[i] = s.Name
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(names, cfg.Vnodes),
		flights: make(map[uint64]*flight),
		hs:      resilience.NewHedgeSchedule(cfg.HedgeDelay, cfg.HedgeJitter, cfg.Seed),
	}
	for i, s := range cfg.Shards {
		st := &shardState{shard: s}
		st.healthy.Store(true)
		st.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: cfg.BreakerThreshold,
			MinSkip:   cfg.BreakerMinSkip,
			MaxSkip:   cfg.BreakerMaxSkip,
			Seed:      cfg.Seed,
			Stream:    i,
		})
		rt.shards = append(rt.shards, st)
	}
	rt.ready.Store(true)
	return rt, nil
}

func (rt *Router) client() resilience.Doer {
	if rt.cfg.Client != nil {
		return rt.cfg.Client
	}
	return http.DefaultClient
}

// SetReady flips the /readyz state (drain signalling, like serve.Server).
func (rt *Router) SetReady(ready bool) { rt.ready.Store(ready) }

// Ready reports the current readiness state.
func (rt *Router) Ready() bool { return rt.ready.Load() }

// Counters exposes the router counters (also in /statz).
func (rt *Router) CountersSnapshot() CountersSnapshot { return rt.counters.Snapshot() }

// Handler returns the routed handler wrapped in panic recovery.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/annotate", rt.handleAnnotate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", rt.handleReady)
	mux.HandleFunc("GET /statz", rt.handleStats)
	mux.HandleFunc("POST /admin/probe", rt.handleProbe)
	return resilience.Recover(&rt.rz, mux)
}

func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !rt.ready.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, "ready\n")
}

// StatzShard is the per-shard block of the router's /statz.
type StatzShard struct {
	Name         string `json:"name"`
	Healthy      bool   `json:"healthy"`
	BreakerState string `json:"breaker_state"`
	BreakerOpens int64  `json:"breaker_opens"`
}

// Statz is the router's /statz document.
type Statz struct {
	Router       CountersSnapshot    `json:"router"`
	Shards       []StatzShard        `json:"shards"`
	QuotaTenants int                 `json:"quota_tenants,omitempty"`
	Resilience   resilience.Snapshot `json:"resilience"`
}

func (rt *Router) statz() Statz {
	st := Statz{Router: rt.counters.Snapshot(), Resilience: rt.rz.Snapshot()}
	for _, s := range rt.shards {
		st.Shards = append(st.Shards, StatzShard{
			Name:         s.shard.Name,
			Healthy:      s.healthy.Load(),
			BreakerState: s.breaker.State().String(),
			BreakerOpens: s.breaker.Opens(),
		})
	}
	if rt.cfg.Quota != nil {
		st.QuotaTenants = rt.cfg.Quota.Tenants()
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rt.statz()) // client gone mid-write: nothing to do
}

// ProbeResult is one probe round's outcome, returned by /admin/probe.
type ProbeResult struct {
	Round   int64  `json:"round"`
	Healthy []bool `json:"healthy"`
}

// ProbeAll runs one health-probe round: GET /healthz on every shard,
// flipping each shard's healthy bit. Rounds are numbered in call order;
// the chaos injector's FlapAt(round, shard) can force individual probes
// to fail, and tests replay that pure function to predict exact
// health-skip behaviour. cmd/router drives rounds from a ticker; tests
// drive them explicitly over POST /admin/probe.
func (rt *Router) ProbeAll(ctx context.Context) ProbeResult {
	round := rt.probeRound.Add(1) - 1
	res := ProbeResult{Round: round, Healthy: make([]bool, len(rt.shards))}
	for i, s := range rt.shards {
		ok := rt.probeOne(ctx, s)
		if ok && rt.cfg.Injector != nil && rt.cfg.Injector.FlapAt(int(round), i) {
			rt.counters.InjectedFlaps.Add(1)
			ok = false
		}
		s.healthy.Store(ok)
		res.Healthy[i] = ok
	}
	return res
}

// probeTimeout bounds one health probe: long enough for a loaded shard
// to answer /healthz, short enough that a dead one fails the round.
const probeTimeout = 2 * time.Second

func (rt *Router) probeOne(ctx context.Context, s *shardState) bool {
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, s.shard.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client().Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) handleProbe(w http.ResponseWriter, r *http.Request) {
	res := rt.ProbeAll(r.Context())
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res) // client gone mid-write: nothing to do
}

func (rt *Router) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.Quota != nil {
		ok, retryAfter := rt.cfg.Quota.Allow(r.Header.Get(serve.TenantHeader))
		if !ok {
			rt.rz.QuotaDenied.Add(1)
			secs := int((retryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprint(secs))
			http.Error(w, "tenant quota exceeded", http.StatusTooManyRequests)
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxDocumentBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "request body exceeds document limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	rt.counters.Requests.Add(1)

	ctx := r.Context()
	if rt.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.RequestTimeout)
		defer cancel()
	}

	// Coalesce on the same key the shard-side cache uses; requests whose
	// body does not decode still route (the shard owns the 400), keyed by
	// the raw bytes so identical malformed requests coalesce too.
	text, top, decodable := requestKeyFields(body)
	key := requestKey(text, top, decodable, body)

	res, coalesced := rt.coalesce(ctx, key, text, top)
	if coalesced {
		if res == nil { // waiter's own budget expired
			rt.counters.Timeouts.Add(1)
			http.Error(w, "router budget exhausted", http.StatusGatewayTimeout)
			return
		}
		writeRouted(w, *res)
		return
	}

	out := rt.forward(ctx, key, body, r.Header.Get(serve.TenantHeader))
	rt.finishFlight(key, out)
	writeRouted(w, out)
}

// requestKeyFields decodes just enough of the body to key coalescing the
// way the shard's cache will: the (possibly HTML) text and the raw top.
func requestKeyFields(body []byte) (text string, top int, ok bool) {
	var req serve.AnnotateRequest
	if err := json.Unmarshal(body, &req); err != nil || req.Text == "" {
		return "", 0, false
	}
	// The HTML flag changes what the shard strips, so fold it into the
	// text identity rather than modelling the strip here.
	if req.HTML {
		return "html\x00" + req.Text, req.Top, true
	}
	return req.Text, req.Top, true
}

// requestKey is the coalescing key: the shard cache's key function over
// the decoded fields, or a hash of the raw bytes for undecodable bodies.
func requestKey(text string, top int, decodable bool, raw []byte) uint64 {
	if decodable {
		return serve.CacheKey(text, top)
	}
	return serve.CacheKey(string(raw), -1)
}

// coalesce joins an existing flight for key, or registers a new one.
// Returns (result, true) for a follower — res is nil if the follower's
// ctx expired first — and (nil, false) for the leader, which must route
// and then call finishFlight.
func (rt *Router) coalesce(ctx context.Context, key uint64, text string, top int) (*routedResponse, bool) {
	rt.fmu.Lock()
	if fl, ok := rt.flights[key]; ok && fl.text == text && fl.top == top {
		rt.fmu.Unlock()
		rt.counters.Coalesced.Add(1)
		select {
		case <-fl.done:
			return &fl.res, true
		case <-ctx.Done():
			return nil, true
		}
	} else if ok {
		// Hash collision with a different request: route independently
		// without registering (the colliding flight keeps the slot).
		rt.fmu.Unlock()
		return nil, false
	}
	rt.flights[key] = &flight{text: text, top: top, done: make(chan struct{})}
	rt.fmu.Unlock()
	return nil, false
}

// finishFlight publishes the leader's result to followers, if a flight
// was registered for key (collision bypasses register a nil flight).
func (rt *Router) finishFlight(key uint64, res routedResponse) {
	rt.fmu.Lock()
	fl, ok := rt.flights[key]
	if ok {
		delete(rt.flights, key)
	}
	rt.fmu.Unlock()
	if ok {
		fl.res = res
		close(fl.done)
	}
}

// candidates returns the replica set for key in failover order, dropping
// shards the last probe round marked unhealthy.
func (rt *Router) candidates(key uint64) []*shardState {
	idxs := rt.ring.Replicas(key, rt.cfg.Replication)
	out := make([]*shardState, 0, len(idxs))
	for _, i := range idxs {
		s := rt.shards[i]
		if !s.healthy.Load() {
			rt.counters.HealthSkips.Add(1)
			continue
		}
		out = append(out, s)
	}
	return out
}

// forward routes one request: primary attempt (with any planned chaos),
// hedge on the seeded delay, failover on failure, breaker consultation at
// every launch. Exactly one response is returned; losing attempts are
// cancelled via the shared attempt context.
func (rt *Router) forward(ctx context.Context, key uint64, body []byte, tenant string) routedResponse {
	cands := rt.candidates(key)
	if len(cands) == 0 {
		rt.counters.ReplicasExhausted.Add(1)
		return errorResponse(http.StatusServiceUnavailable, "no healthy replicas")
	}

	var plan resilience.ClusterFaultPlan
	if rt.cfg.Injector != nil {
		plan = rt.cfg.Injector.ClusterPlan()
		if plan.DownPrimary {
			rt.counters.InjectedDowns.Add(1)
		}
		if plan.SlowPrimary {
			rt.counters.InjectedSlows.Add(1)
		}
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps the losing duplicate after a hedge win

	results := make(chan attemptResult, len(cands))
	nextCand := 0
	first := true
	inFlight := 0
	// launch starts the next candidate that its breaker admits. Chaos
	// applies only to the very first launched attempt (the "primary").
	launch := func(hedged bool) bool {
		for nextCand < len(cands) {
			c := cands[nextCand]
			nextCand++
			probe := false
			switch c.breaker.Allow() {
			case resilience.BreakerSkip:
				rt.counters.BreakerSkips.Add(1)
				continue
			case resilience.BreakerProbe:
				rt.counters.BreakerProbes.Add(1)
				probe = true
			}
			var p resilience.ClusterFaultPlan
			if first {
				p = plan
				first = false
			}
			inFlight++
			go rt.attempt(actx, c, p, probe, hedged, body, tenant, results)
			return true
		}
		return false
	}

	if !launch(false) {
		rt.counters.ReplicasExhausted.Add(1)
		return errorResponse(http.StatusServiceUnavailable, "all replicas shed by breakers")
	}

	var hedgeC <-chan time.Time
	if hs := rt.hs; hs != nil && len(cands) > 1 {
		timer := time.NewTimer(hs.Next())
		defer timer.Stop()
		hedgeC = timer.C
	}

	for {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil && !retryableStatus(res.res.status) {
				if res.hedged {
					rt.counters.HedgeWins.Add(1)
				}
				return res.res
			}
			// Genuine attempt failure: fail over to the next replica.
			if launch(false) {
				rt.counters.Failovers.Add(1)
				continue
			}
			if inFlight > 0 {
				continue // a hedge is still running; let it finish
			}
			rt.counters.ReplicasExhausted.Add(1)
			return errorResponse(http.StatusServiceUnavailable, "all replicas failed")
		case <-hedgeC:
			hedgeC = nil
			if launch(true) {
				rt.counters.Hedges.Add(1)
			}
		case <-ctx.Done():
			rt.counters.Timeouts.Add(1)
			return errorResponse(http.StatusGatewayTimeout, "router budget exhausted")
		}
	}
}

// retryableStatus mirrors the RetryClient policy: overload shedding and
// server-side failures fail over; everything else is a final answer the
// client must see (including the shard's own 4xx semantics).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// attempt performs one shard try: apply the chaos plan (primary only),
// forward the raw body with the remaining deadline budget, read the
// response, and feed the shard's breaker. Breaker feedback happens here —
// in the attempt goroutine, not the select loop — so a late result whose
// request already returned still updates breaker state instead of
// wedging it.
func (rt *Router) attempt(ctx context.Context, s *shardState, plan resilience.ClusterFaultPlan, probe, hedged bool, body []byte, tenant string, results chan<- attemptResult) {
	fail := func(err error) {
		// Cancellation is not evidence about the shard: the hedge won or
		// the request's budget expired. A cancelled probe re-arms the
		// breaker instead of counting as success or failure.
		if ctx.Err() != nil {
			if probe {
				s.breaker.OnCanceledProbe()
			}
		} else {
			s.breaker.OnFailure()
		}
		results <- attemptResult{err: err, hedged: hedged}
	}

	if plan.DownPrimary {
		// Simulated crashed shard: indistinguishable from a refused
		// connection, so it takes the exact failure path a real crash does.
		fail(errors.New("cluster: injected shard down"))
		return
	}
	if plan.SlowPrimary {
		delay := rt.cfg.Injector.Config().SlowReplicaDelay
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			fail(ctx.Err())
			return
		}
		timer.Stop()
	}

	tryCtx := ctx
	if rt.cfg.PerTryTimeout > 0 {
		var cancel context.CancelFunc
		tryCtx, cancel = context.WithTimeout(ctx, rt.cfg.PerTryTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(tryCtx, http.MethodPost, s.shard.URL+"/v1/annotate", bytes.NewReader(body))
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(serve.TenantHeader, tenant)
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(serve.DeadlineHeader, fmt.Sprint(ms))
		}
	}
	resp, err := rt.client().Do(req)
	if err != nil {
		fail(err)
		return
	}
	respBody, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		fail(err)
		return
	}
	out := routedResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        respBody,
	}
	if retryableStatus(out.status) {
		if ctx.Err() != nil && probe {
			s.breaker.OnCanceledProbe()
		} else {
			s.breaker.OnFailure()
		}
	} else {
		s.breaker.OnSuccess()
	}
	results <- attemptResult{res: out, hedged: hedged}
}

func errorResponse(status int, msg string) routedResponse {
	return routedResponse{
		status:      status,
		contentType: "text/plain; charset=utf-8",
		retryAfter:  "1",
		body:        []byte(msg + "\n"),
	}
}

// writeRouted relays a routed response: status, the headers the serving
// contract defines (Content-Type, Retry-After), and the body verbatim —
// the byte-identity guarantee of the differential tests rides on the body
// passing through untouched.
func writeRouted(w http.ResponseWriter, res routedResponse) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" && (res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable || res.status == http.StatusGatewayTimeout) {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body) // client gone mid-relay: nothing to do
}
