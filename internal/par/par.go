// Package par is the deterministic-parallelism substrate: a bounded worker
// pool that maps a function over an index range and collects results in
// input order, so the output is bit-identical regardless of GOMAXPROCS,
// worker count, or goroutine scheduling.
//
// The contract every caller relies on (and the kwlint orderedfanout
// analyzer enforces elsewhere):
//
//   - work unit i depends only on i and on state that is read-only for the
//     duration of the call;
//   - results are written to index-addressed slots, never collected in
//     channel-arrival order;
//   - any randomness inside a work unit draws from a source derived with
//     Seed(seed, i), never from a stream shared across units.
//
// Under those rules Map(1, n, f) and Map(k, n, f) return identical bytes,
// which is what lets the pipeline default to all cores while the
// determinism tests pin Workers to 1.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: n >= 1 is used as-is; any other
// value (0 is the conventional "auto") selects runtime.NumCPU().
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}

// For runs fn(i) for every i in [0, n) across at most workers goroutines
// (resolved via Workers). fn must only write to state owned by index i.
// A panic in any work unit is re-raised on the calling goroutine after all
// workers have stopped, matching the serial failure mode.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					// Starve the remaining workers so the pool drains fast.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Map applies fn to every index in [0, n) and returns the results in input
// order. fn must be safe for concurrent invocation on distinct indexes.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible work units. All units run to completion (an
// error in one does not cancel the others — results stay index-complete);
// the returned error is the lowest-index one, so the failure reported is
// scheduling-independent too.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	For(workers, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Seed derives the random seed for work unit index from a base seed, with
// a splitmix64 finalizer so neighbouring indexes get statistically
// independent streams. Sharded generators must use one derived seed per
// index instead of sharing a sequential stream — that is what makes the
// shard outputs independent of execution order.
func Seed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
