package par

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-5); got != runtime.NumCPU() {
		t.Fatalf("Workers(-5) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the substrate's core promise:
// sharded random generation gives identical bytes at any pool size.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	gen := func(workers int) []string {
		return Map(workers, 50, func(i int) string {
			rng := rand.New(rand.NewSource(Seed(99, i)))
			return fmt.Sprintf("%d:%d:%d", i, rng.Intn(1000), rng.Intn(1000))
		})
	}
	serial := gen(1)
	for _, workers := range []int{2, 5, 16} {
		got := gen(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: out[%d] = %q, serial %q", workers, i, got[i], serial[i])
			}
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	counts := make([]atomic.Int32, 1000)
	For(8, len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	ran := false
	For(4, 0, func(int) { ran = true })
	For(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	out, err := MapErr(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errB
		case 7:
			return 0, errA
		}
		return i, nil
	})
	if err != errB {
		t.Fatalf("err = %v, want lowest-index error %v", err, errB)
	}
	if out[9] != 9 || out[0] != 0 {
		t.Fatalf("results incomplete despite error: %v", out)
	}
	if _, err := MapErr(4, 10, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic not propagated")
		}
	}()
	For(4, 100, func(i int) {
		if i == 42 {
			panic("boom")
		}
	})
}

func TestSeedSpreadsIndexes(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		s := Seed(7, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed collision between indexes %d and %d", prev, i)
		}
		seen[s] = i
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("Seed ignores the base seed")
	}
	if Seed(1, 0) != Seed(1, 0) {
		t.Fatal("Seed not pure")
	}
}
