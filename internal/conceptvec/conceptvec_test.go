package conceptvec

import (
	"strings"
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/querylog"
	"contextrank/internal/units"
)

// fixture builds a dictionary over a small corpus and a unit set where
// "global warming" is a validated unit.
func fixture() (*corpus.Dictionary, *units.Set) {
	dict := corpus.NewDictionary()
	docs := []string{
		"global warming threatens polar climate patterns",
		"the economy grew despite policy concerns",
		"warming oceans alter weather and climate",
		"the debate about policy continued in congress",
		"sports results and scores from the weekend",
		"polar bears depend on sea ice",
	}
	for _, d := range docs {
		dict.AddDocumentText(d)
	}
	counts := map[string]int{
		"global warming":         500,
		"global warming effects": 120,
		"global":                 200,
		"warming":                50,
		"climate":                90,
		"policy":                 60,
		"economy":                40,
	}
	for i := 0; i < 60; i++ {
		counts["filler"+string(rune('a'+i%26))+string(rune('0'+i/26))] = 100
	}
	return dict, units.Extract(querylog.FromCounts(counts), units.Config{MinMI: 0.5})
}

func TestConceptVectorContainsUnitsAndTerms(t *testing.T) {
	dict, us := fixture()
	s := New(dict, us, Options{})
	v := s.ConceptVector("Scientists say global warming is accelerating and climate policy lags.")
	m := v.Map()
	if _, ok := m["global warming"]; !ok {
		t.Fatalf("merged vector missing unit phrase: %v", v)
	}
	if _, ok := m["climate"]; !ok {
		t.Fatalf("merged vector missing term: %v", v)
	}
	if _, ok := m["the"]; ok {
		t.Fatal("stopword in concept vector")
	}
}

func TestMultiTermBubbleUp(t *testing.T) {
	dict, us := fixture()
	text := "Scientists say global warming is accelerating; warming trends and global patterns persist."
	with := New(dict, us, Options{}).ConceptVector(text).Map()
	without := New(dict, us, Options{DisableBubbleUp: true}).ConceptVector(text).Map()
	if with["global warming"] <= without["global warming"] {
		t.Fatalf("bubble-up should raise multi-term score: with=%v without=%v",
			with["global warming"], without["global warming"])
	}
	// Bubble-up puts the specific multi-term concept at or near the top.
	v := New(dict, us, Options{}).ConceptVector(text)
	if v[0].Term != "global warming" {
		t.Logf("top concept is %q (global warming at %.3f)", v[0].Term, with["global warming"])
	}
}

func TestMaxWeightBound(t *testing.T) {
	dict, us := fixture()
	s := New(dict, us, Options{})
	v := s.ConceptVector("global warming global warming climate warming global")
	for _, e := range v {
		bound := 2.0 * float64(1+strings.Count(e.Term, " ")+1)
		// Paper: max final concept weight = 2 × number of terms (merge gives
		// ≤2, bubble-up adds ≤2 per contained term).
		if e.Weight > bound {
			t.Fatalf("weight %v of %q exceeds bound %v", e.Weight, e.Term, bound)
		}
	}
}

func TestScoreSinglePhrase(t *testing.T) {
	dict, us := fixture()
	s := New(dict, us, Options{})
	text := "The global warming debate continued."
	if got := s.Score(text, "Global Warming"); got <= 0 {
		t.Fatalf("Score = %v", got)
	}
	if got := s.Score(text, "unrelated"); got != 0 {
		t.Fatalf("unrelated phrase score = %v", got)
	}
}

func TestNilUnits(t *testing.T) {
	dict, _ := fixture()
	s := New(dict, nil, Options{})
	v := s.ConceptVector("climate policy debate")
	if len(v) == 0 {
		t.Fatal("term-only vector empty")
	}
	for _, e := range v {
		if strings.Contains(e.Term, " ") {
			t.Fatal("multi-term entry without unit set")
		}
	}
}

func TestVectorSorted(t *testing.T) {
	dict, us := fixture()
	s := New(dict, us, Options{})
	v := s.ConceptVector("global warming and climate and policy and economy debates")
	for i := 1; i < len(v); i++ {
		if v[i-1].Weight < v[i].Weight {
			t.Fatal("vector not sorted")
		}
	}
}

func TestEmptyDocument(t *testing.T) {
	dict, us := fixture()
	s := New(dict, us, Options{})
	if v := s.ConceptVector(""); len(v) != 0 {
		t.Fatalf("empty doc vector = %v", v)
	}
	if v := s.ConceptVector("the of and"); len(v) != 0 {
		t.Fatalf("stopword-only doc vector = %v", v)
	}
}

func BenchmarkConceptVector(b *testing.B) {
	dict, us := fixture()
	s := New(dict, us, Options{})
	text := strings.Repeat("Scientists say global warming is accelerating and climate policy lags behind economic debates. ", 25)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ConceptVector(text)
	}
}

func TestTermOnlyPunishOption(t *testing.T) {
	dict, us := fixture()
	text := "polar bears depend on sea ice patterns"
	strict := New(dict, us, Options{TermOnlyPunish: 0.1}).ConceptVector(text).Map()
	lax := New(dict, us, Options{TermOnlyPunish: 0.99}).ConceptVector(text).Map()
	// "polar" is a term-only entry (no unit); stricter punishment must
	// lower its weight.
	if strict["polar"] >= lax["polar"] {
		t.Fatalf("TermOnlyPunish had no effect: strict=%v lax=%v", strict["polar"], lax["polar"])
	}
}

func TestThresholdOptions(t *testing.T) {
	dict, us := fixture()
	text := "global warming and climate policy economy debates in congress"
	// An aggressive removal threshold must shrink the vector.
	loose := New(dict, us, Options{RemoveThreshold: 0.01}).ConceptVector(text)
	tight := New(dict, us, Options{RemoveThreshold: 0.95}).ConceptVector(text)
	if len(tight) >= len(loose) {
		t.Fatalf("RemoveThreshold had no effect: %d vs %d entries", len(tight), len(loose))
	}
}
