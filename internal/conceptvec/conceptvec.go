// Package conceptvec implements concept-vector generation (paper §II-B),
// the production baseline that the learned ranker is evaluated against:
//
//  1. a term vector with tf·idf scores against the web-corpus dictionary,
//     stop-words removed, weights normalized to [0,1], sub-threshold weights
//     punished and low scores removed;
//  2. a unit vector of all query-log units found in the document, scores
//     normalized to [0,1], punished and pruned the same way;
//  3. a merge of the two: term-only entries are added with punished term
//     weight, unit-only entries with their unit weight, and entries in both
//     with the sum;
//  4. the multi-term bubble-up step: to each multi-term concept's weight is
//     added the unit- and term-vector scores of every individual term it
//     contains, "so more specific concepts eventually bubble up".
package conceptvec

import (
	"strings"

	"contextrank/internal/corpus"
	"contextrank/internal/textproc"
	"contextrank/internal/units"
)

// Options are the threshold knobs of §II-B. Zero values select defaults.
type Options struct {
	// PunishThreshold: weights below this are multiplied by PunishFactor.
	PunishThreshold float64 // default 0.2
	// PunishFactor multiplies punished weights.
	PunishFactor float64 // default 0.5
	// RemoveThreshold: weights below this after punishment are dropped.
	RemoveThreshold float64 // default 0.05
	// TermOnlyPunish multiplies the weight of terms that appear in the term
	// vector but not the unit vector ("we add it to the concept vector, but
	// punish its term vector weight").
	TermOnlyPunish float64 // default 0.6
	// DisableBubbleUp turns off merge step 4 (for the ablation bench).
	DisableBubbleUp bool
}

func (o Options) withDefaults() Options {
	if o.PunishThreshold == 0 {
		o.PunishThreshold = 0.2
	}
	if o.PunishFactor == 0 {
		o.PunishFactor = 0.5
	}
	if o.RemoveThreshold == 0 {
		o.RemoveThreshold = 0.05
	}
	if o.TermOnlyPunish == 0 {
		o.TermOnlyPunish = 0.6
	}
	return o
}

// Scorer computes concept vectors for documents.
type Scorer struct {
	dict  *corpus.Dictionary
	units *units.Set
	opts  Options
}

// New builds a scorer over the web-corpus dictionary and the unit set.
func New(dict *corpus.Dictionary, unitSet *units.Set, opts Options) *Scorer {
	return &Scorer{dict: dict, units: unitSet, opts: opts.withDefaults()}
}

// ConceptVector computes the merged concept vector of a document. Entries
// are single terms and multi-term unit phrases, sorted by decreasing weight.
func (s *Scorer) ConceptVector(text string) corpus.Vector {
	words := textproc.Words(text)
	content := make([]string, 0, len(words))
	for _, w := range words {
		if !textproc.IsStopword(w) {
			content = append(content, w)
		}
	}

	// Step 1: term vector.
	termVec := corpus.NormalizeMax(corpus.TFIDF(s.dict, content))
	termVec = corpus.PunishBelow(termVec, s.opts.PunishThreshold, s.opts.PunishFactor, s.opts.RemoveThreshold)
	termW := termVec.Map()

	// Step 2: unit vector over all units found in the document (counting a
	// phrase once).
	unitW := make(map[string]float64)
	if s.units != nil {
		for _, m := range s.units.FindInTokens(words) {
			if _, ok := unitW[m.Unit.Text]; !ok {
				unitW[m.Unit.Text] = m.Unit.Score
			}
		}
		uv := make(corpus.Vector, 0, len(unitW))
		for t, w := range unitW {
			uv = append(uv, corpus.Entry{Term: t, Weight: w})
		}
		uv = corpus.NormalizeMax(uv)
		uv = corpus.PunishBelow(uv, s.opts.PunishThreshold, s.opts.PunishFactor, s.opts.RemoveThreshold)
		unitW = uv.Map()
	}

	// Step 3: merge.
	merged := make(map[string]float64, len(termW)+len(unitW))
	for t, w := range termW {
		if uw, ok := unitW[t]; ok {
			merged[t] = w + uw // case 3: in both
		} else {
			merged[t] = w * s.opts.TermOnlyPunish // case 1: term only
		}
	}
	for u, w := range unitW {
		if _, ok := merged[u]; !ok {
			merged[u] = w // case 2: unit only
		}
	}

	// Step 4: multi-term bubble-up — add each contained term's unit-vector
	// and term-vector scores. Max possible weight = 2 × number of terms.
	if !s.opts.DisableBubbleUp {
		for phrase := range merged {
			if !strings.Contains(phrase, " ") {
				continue
			}
			for _, t := range strings.Fields(phrase) {
				merged[phrase] += termW[t] + unitW[t]
			}
		}
	}

	out := make(corpus.Vector, 0, len(merged))
	for t, w := range merged {
		out = append(out, corpus.Entry{Term: t, Weight: w})
	}
	corpus.SortVector(out)
	return out
}

// Score returns the concept-vector score of one phrase within the document's
// merged vector (0 if absent). For multi-phrase workflows compute
// ConceptVector once and use Vector.Map.
func (s *Scorer) Score(text, phrase string) float64 {
	return s.ConceptVector(text).Map()[strings.ToLower(phrase)]
}
