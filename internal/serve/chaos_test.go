package serve

import (
	"net/http"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"contextrank/internal/resilience"
)

// chaosSeed lets the CI matrix pin different injector seeds (CHAOS_SEED);
// every assertion below derives its expectations from the seed, so any
// value must pass.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 42
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", v, err)
	}
	return seed
}

func chaosConfig(seed int64) resilience.InjectorConfig {
	return resilience.InjectorConfig{
		Seed:         seed,
		LatencyP:     0.2,
		LatencySpike: time.Millisecond,
		PanicP:       0.3,
		WriteFailP:   0.25,
	}
}

// expectedFaults replays the pure planning function to derive the exact
// counters a run of n requests must produce.
func expectedFaults(cfg resilience.InjectorConfig, n int) (panics, writeFails, latencies, cleanWriteFails int) {
	ref := resilience.NewInjector(cfg)
	for i := 0; i < n; i++ {
		p := ref.PlanAt(i)
		if p.Panic {
			panics++
		}
		if p.FailWrite {
			writeFails++
		}
		if p.Latency > 0 {
			latencies++
		}
		// A write failure on a non-panicking annotate request surfaces as
		// exactly one counted write error (one JSON encode per response).
		if p.FailWrite && !p.Panic {
			cleanWriteFails++
		}
	}
	return
}

// chaosRun drives n sequential annotate requests through a chaos-injected
// server and returns the status-code sequence plus the counters.
func chaosRun(t *testing.T, cfg resilience.InjectorConfig, n int) ([]int, resilience.Snapshot, int64) {
	t.Helper()
	s := testServer(t)
	s.Injector = resilience.NewInjector(cfg)
	h := s.Handler()
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
		codes[i] = rec.Code
	}
	return codes, s.ResilienceSnapshot(), s.writeErrors.Load()
}

// TestChaosCountersReproducible is the acceptance criterion: a fixed
// injector seed reproduces bit-identical recovery counters — panics
// recovered, write errors, fault tallies — and the identical status-code
// sequence, across independent server instances.
func TestChaosCountersReproducible(t *testing.T) {
	const n = 60
	cfg := chaosConfig(chaosSeed(t))

	codesA, snapA, weA := chaosRun(t, cfg, n)
	codesB, snapB, weB := chaosRun(t, cfg, n)
	if !reflect.DeepEqual(codesA, codesB) {
		t.Fatalf("status sequences diverged:\n%v\n%v", codesA, codesB)
	}
	if snapA != snapB || weA != weB {
		t.Fatalf("counters diverged:\n%+v we=%d\n%+v we=%d", snapA, weA, snapB, weB)
	}

	wantPanics, wantWF, wantLat, wantCleanWF := expectedFaults(cfg, n)
	if wantPanics == 0 || wantWF == 0 {
		t.Fatalf("degenerate fault mix for seed %d: panics=%d writefails=%d", cfg.Seed, wantPanics, wantWF)
	}
	if snapA.PanicsRecovered != int64(wantPanics) || snapA.InjectedPanics != int64(wantPanics) {
		t.Fatalf("PanicsRecovered=%d InjectedPanics=%d, want %d", snapA.PanicsRecovered, snapA.InjectedPanics, wantPanics)
	}
	if snapA.InjectedWriteFailures != int64(wantWF) {
		t.Fatalf("InjectedWriteFailures=%d, want %d", snapA.InjectedWriteFailures, wantWF)
	}
	if snapA.InjectedLatencies != int64(wantLat) {
		t.Fatalf("InjectedLatencies=%d, want %d", snapA.InjectedLatencies, wantLat)
	}
	if weA != int64(wantCleanWF) {
		t.Fatalf("writeErrors=%d, want %d (one per non-panicking write-failed response)", weA, wantCleanWF)
	}
	var got500 int
	for _, c := range codesA {
		if c == http.StatusInternalServerError {
			got500++
		}
	}
	if got500 != wantPanics {
		t.Fatalf("%d 500s, want %d (every injected panic, nothing else)", got500, wantPanics)
	}
}

// TestChaosCountersConcurrent: under concurrency the index→request
// assignment is scheduling-dependent, but the fault multiset — and so
// every total — is not. Runs under -race in CI.
func TestChaosCountersConcurrent(t *testing.T) {
	const n = 60
	cfg := chaosConfig(chaosSeed(t))
	s := testServer(t)
	s.Injector = resilience.NewInjector(cfg)
	h := s.Handler()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var got500, got200 int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
			mu.Lock()
			defer mu.Unlock()
			switch rec.Code {
			case http.StatusInternalServerError:
				got500++
			case http.StatusOK:
				got200++
			}
		}()
	}
	wg.Wait()

	wantPanics, wantWF, wantLat, wantCleanWF := expectedFaults(cfg, n)
	snap := s.ResilienceSnapshot()
	if snap.PanicsRecovered != int64(wantPanics) {
		t.Fatalf("PanicsRecovered=%d, want %d", snap.PanicsRecovered, wantPanics)
	}
	if snap.InjectedWriteFailures != int64(wantWF) || snap.InjectedLatencies != int64(wantLat) {
		t.Fatalf("injected totals (%d,%d), want (%d,%d)", snap.InjectedWriteFailures, snap.InjectedLatencies, wantWF, wantLat)
	}
	if s.writeErrors.Load() != int64(wantCleanWF) {
		t.Fatalf("writeErrors=%d, want %d", s.writeErrors.Load(), wantCleanWF)
	}
	if got500 != wantPanics || got200 != n-wantPanics {
		t.Fatalf("codes 500=%d 200=%d, want %d/%d", got500, got200, wantPanics, n-wantPanics)
	}
}
