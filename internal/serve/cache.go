package serve

import (
	"container/list"
	"context"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Cache is the annotation response cache: a sharded LRU over serialized
// /v1/annotate bodies with single-flight coalescing of concurrent misses.
//
// Contract (DESIGN.md §10):
//
//   - Keyed by the FNV-64a hash of the stripped document text plus topN. A
//     hit returns the exact bytes the cold path produced, so cached and
//     fresh responses are byte-identical. Hash collisions are detected by
//     comparing the stored text and demoted to misses — a collision can
//     waste a slot, never serve the wrong document's annotations.
//   - Degraded responses (shed or deadline-expired requests) are never
//     stored: they reflect transient pressure, not the document.
//   - Hits bypass the admission gate — serving memory must stay cheap under
//     exactly the load spikes that make the gate shed.
//   - Concurrent misses on one key coalesce: a single leader starts the
//     pipeline while followers wait for its bytes (or their own deadline).
//     The fill itself is detached from the leader's cancellation and
//     bounded by FillTimeout, so a cancelled leader can never poison the
//     coalesced waiters with its context error.
//
// Sharding keeps the lock a per-shard mutex held only for map/list pokes;
// the pipeline itself always runs outside any cache lock.
type Cache struct {
	shards   []cacheShard
	perShard int

	// FillTimeout bounds a detached cache fill (see Do). Zero uses
	// DefaultFillTimeout. cmd/serve sizes it from the request deadline.
	FillTimeout time.Duration

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64
}

// DefaultFillTimeout is the fill bound when FillTimeout is unset: long
// enough for any admitted pipeline run, short enough that an abandoned
// fill cannot pin a gate slot indefinitely.
const DefaultFillTimeout = 5 * time.Second

// numCacheShards is the shard count (power of two, so shard selection is a
// mask). 16 shards keep lock contention negligible at serving parallelism.
const numCacheShards = 16

type cacheKey struct {
	hash  uint64
	top   int
	epoch uint64 // index visibility epoch: live ingest invalidates by key rotation
}

type cacheEntry struct {
	key  cacheKey
	text string // full key text: collision check on hit
	body []byte
}

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	body []byte
	ok   bool // false: leader produced an uncacheable (degraded) response
}

type cacheShard struct {
	mu sync.Mutex
	//kw:guardedby(mu)
	entries map[cacheKey]*list.Element // of *cacheEntry
	//kw:guardedby(mu)
	lru *list.List // front = most recent
	//kw:guardedby(mu)
	flights map[cacheKey]*flight
}

// NewCache builds a cache holding up to capacity responses (rounded up to a
// multiple of the shard count). capacity <= 0 returns nil — a nil *Cache is
// a valid "caching disabled" value everywhere.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + numCacheShards - 1) / numCacheShards
	c := &Cache{shards: make([]cacheShard, numCacheShards), perShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].flights = make(map[cacheKey]*flight)
	}
	return c
}

func cacheHash(text string, top int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(text)) // fnv never errors
	_, _ = h.Write([]byte(strconv.Itoa(top)))
	return h.Sum64()
}

func (c *Cache) shard(k cacheKey) *cacheShard {
	return &c.shards[k.hash&(numCacheShards-1)]
}

// get returns the cached body for (text, top) and bumps its recency.
func (c *Cache) get(k cacheKey, text string) ([]byte, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[k]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.text != text {
		return nil, false // hash collision: treat as miss
	}
	sh.lru.MoveToFront(el)
	return ent.body, true
}

// put stores body under (text, top), evicting the shard's LRU tail on
// overflow.
func (c *Cache) put(k cacheKey, text string, body []byte) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[k]; ok {
		el.Value.(*cacheEntry).text = text
		el.Value.(*cacheEntry).body = body
		sh.lru.MoveToFront(el)
		return
	}
	sh.entries[k] = sh.lru.PushFront(&cacheEntry{key: k, text: text, body: body})
	if sh.lru.Len() > c.perShard {
		tail := sh.lru.Back()
		sh.lru.Remove(tail)
		delete(sh.entries, tail.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Do returns the cached response for (text, top, epoch) or computes it via
// fn, coalescing concurrent misses on the same key. fn reports whether its
// result is cacheable (degraded responses are not). The returned bytes
// must be treated as read-only.
//
// epoch is the index visibility epoch (Server.IndexEpoch; 0 when no live
// index is wired). It is a key component, not a validity check: entries
// cached under an older epoch are never served once the epoch moves — they
// age out of the LRU — and responses for different epochs never coalesce,
// so a reader can't be handed annotations computed against a stale index.
//
// The fill is *detached* from the leader's cancellation: fn runs on a
// context that inherits the leader's values (chaos plan, tracing) but not
// its cancellation, bounded by FillTimeout. A leader whose own request is
// cancelled mid-fill can therefore never poison the coalesced waiters
// with its context error — the fill runs to completion (or its own
// bounded deadline, which fn surfaces as an uncacheable degraded result,
// i.e. a clean miss) and every waiter still holding a live context gets
// the result. An error is returned only to a caller — leader or follower
// alike — whose ctx expires while waiting.
func (c *Cache) Do(ctx context.Context, text string, top int, epoch uint64, fn func(context.Context) ([]byte, bool)) ([]byte, error) {
	k := cacheKey{hash: cacheHash(text, top), top: top, epoch: epoch}
	if body, ok := c.get(k, text); ok {
		c.hits.Add(1)
		return body, nil
	}
	c.misses.Add(1)

	sh := c.shard(k)
	sh.mu.Lock()
	if fl, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.body, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	sh.flights[k] = fl
	sh.mu.Unlock()

	fillTimeout := c.FillTimeout
	if fillTimeout <= 0 {
		fillTimeout = DefaultFillTimeout
	}
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), fillTimeout)
	go func() {
		defer cancel()
		fl.body, fl.ok = fn(fctx)
		sh.mu.Lock()
		delete(sh.flights, k)
		sh.mu.Unlock()
		close(fl.done)
		if fl.ok {
			c.put(k, text, fl.body)
		}
	}()
	select {
	case <-fl.done:
		return fl.body, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// CacheKey is the singleflight/cache key of an annotate request: the
// FNV-64a hash over the document text and top-N. Exported so the cluster
// router coalesces identical requests across the router→shard hop on the
// same key the shard-side cache uses (DESIGN.md §8).
func CacheKey(text string, top int) uint64 { return cacheHash(text, top) }

// CacheStats is the /statz view of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Coalesced int64 `json:"coalesced"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// Stats snapshots the counters and current occupancy.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Coalesced: c.coalesced.Load(),
		Capacity:  c.perShard * numCacheShards,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += sh.lru.Len()
		sh.mu.Unlock()
	}
	return st
}
