package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"contextrank/internal/resilience"
)

func postJSONTenant(t *testing.T, h http.Handler, path string, body any, tenant string) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestQuotaDeniesOverBudgetTenant: a burst-exhausted tenant gets 429 +
// Retry-After on both document endpoints — a quota refusal is policy, not
// pressure, so it is never the degraded ranking — while other tenants
// proceed, and /statz accounts the denials.
func TestQuotaDeniesOverBudgetTenant(t *testing.T) {
	srv := testServer(t)
	srv.Quota = resilience.NewQuota(resilience.QuotaConfig{Burst: 2})
	h := srv.Handler()
	req := AnnotateRequest{Text: "the alphaword story", Top: 1}

	for i := 0; i < 2; i++ {
		if rec := postJSONTenant(t, h, "/v1/annotate", req, "acme"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	rec := postJSONTenant(t, h, "/v1/annotate", req, "acme")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget annotate: status %d, want 429", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q", rec.Header().Get("Retry-After"))
	}
	if rec := postJSONTenant(t, h, "/v1/render", req, "acme"); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget render: status %d, want 429", rec.Code)
	}
	// The anonymous tenant has its own bucket.
	if rec := postJSONTenant(t, h, "/v1/annotate", req, ""); rec.Code != http.StatusOK {
		t.Fatalf("anonymous tenant: status %d", rec.Code)
	}

	statRec := httptest.NewRecorder()
	h.ServeHTTP(statRec, httptest.NewRequest(http.MethodGet, "/statz", nil))
	var st Stats
	if err := json.Unmarshal(statRec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Resilience.QuotaDenied != 2 {
		t.Fatalf("quota_denied = %d, want 2", st.Resilience.QuotaDenied)
	}
	if st.QuotaTenants != 2 {
		t.Fatalf("quota_tenants = %d, want 2 (acme + anonymous)", st.QuotaTenants)
	}
}

// TestForwardedDeadlineClamp: in shard mode (TrustForwardedDeadline) the
// router's X-Deadline-Ms clamps the request context; an internet-facing
// server (the default) must ignore the header entirely.
func TestForwardedDeadlineClamp(t *testing.T) {
	srv := testServer(t)
	srv.Timeout = time.Minute
	newReq := func(ms string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/annotate", nil)
		if ms != "" {
			r.Header.Set(DeadlineHeader, ms)
		}
		return r
	}

	// Default: the forwarded header is ignored.
	ctx, cancel := srv.requestCtx(newReq("50"))
	dl, ok := ctx.Deadline()
	cancel()
	if !ok || time.Until(dl) < 30*time.Second {
		t.Fatalf("untrusted forwarded deadline shrank the budget to %v", time.Until(dl))
	}

	srv.TrustForwardedDeadline = true
	ctx, cancel = srv.requestCtx(newReq("50"))
	dl, ok = ctx.Deadline()
	cancel()
	if !ok {
		t.Fatal("shard mode dropped the deadline")
	}
	if remain := time.Until(dl); remain > 60*time.Millisecond || remain <= 0 {
		t.Fatalf("shard-mode budget %v, want clamped to ~50ms", remain)
	}

	// The forwarded value can only shrink the budget, never extend it.
	srv.Timeout = 20 * time.Millisecond
	ctx, cancel = srv.requestCtx(newReq("5000"))
	dl, _ = ctx.Deadline()
	cancel()
	if remain := time.Until(dl); remain > 30*time.Millisecond {
		t.Fatalf("forwarded header extended the budget to %v", remain)
	}

	// Garbage and non-positive values fall back to the configured timeout.
	for _, bad := range []string{"", "abc", "-5", "0"} {
		ctx, cancel = srv.requestCtx(newReq(bad))
		dl, ok = ctx.Deadline()
		cancel()
		if !ok || time.Until(dl) > 25*time.Millisecond {
			t.Fatalf("header %q: budget %v, want the configured 20ms", bad, time.Until(dl))
		}
	}

	// With no configured timeout, shard mode still honors the router's
	// budget (the only deadline the request has).
	srv.Timeout = 0
	ctx, cancel = srv.requestCtx(newReq("40"))
	dl, ok = ctx.Deadline()
	cancel()
	if !ok || time.Until(dl) > 50*time.Millisecond {
		t.Fatal("shard mode without local timeout ignored the forwarded budget")
	}
	ctx, cancel = srv.requestCtx(newReq(""))
	if _, ok = ctx.Deadline(); ok {
		t.Fatal("no timeout and no header still produced a deadline")
	}
	cancel()
}
