package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"contextrank/internal/resilience"
)

// TestShedDeterministic pins the shedding policy without timing: hold the
// gate's only slot, then observe both endpoints' shed behavior.
func TestShedDeterministic(t *testing.T) {
	s := testServer(t)
	s.Gate = resilience.NewGate(1, 0, 0)
	h := s.Handler()

	release, err := s.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// /v1/annotate degrades: 200, degraded flag set, relevance zeroed.
	rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
	if rec.Code != http.StatusOK {
		t.Fatalf("shed annotate status = %d, want 200 degraded", rec.Code)
	}
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("shed annotate response not flagged degraded")
	}
	if len(resp.Annotations) == 0 {
		t.Fatal("degraded response carries no annotations")
	}
	for _, a := range resp.Annotations {
		if a.Relevance != 0 {
			t.Fatalf("degraded annotation has relevance: %+v", a)
		}
	}

	// /v1/render sheds hard: 429 + Retry-After.
	rec2 := postJSON(t, h, "/v1/render", AnnotateRequest{Text: "the alphaword appeared"})
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("shed render status = %d, want 429", rec2.Code)
	}
	if rec2.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}

	snap := s.ResilienceSnapshot()
	if snap.Shed != 2 || snap.Degraded != 1 {
		t.Fatalf("counters = %+v, want Shed=2 Degraded=1", snap)
	}

	// Slot freed: full pipeline resumes.
	release()
	rec3 := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
	var resp3 AnnotateResponse
	if err := json.Unmarshal(rec3.Body.Bytes(), &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.Degraded {
		t.Fatal("request after release still degraded")
	}
}

// TestOverloadStress is the httptest-driven overload proof: with gate
// capacity 2 and 12 requests in flight at once (in-slot latency holds the
// slots), the excess is answered degraded, nothing errors, and the shed
// counter matches the degraded responses. Runs under -race in CI.
func TestOverloadStress(t *testing.T) {
	s := testServer(t)
	const capacity = 2
	s.Gate = resilience.NewGate(capacity, 0, 0)
	s.Timeout = 5 * time.Second
	// LatencyP=1: every admitted request sleeps 300ms inside its slot.
	s.Injector = resilience.NewInjector(resilience.InjectorConfig{
		Seed: 1, LatencyP: 1, LatencySpike: 300 * time.Millisecond,
	})
	h := s.Handler()

	const n = 12
	start := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var degraded, full int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
			if rec.Code != http.StatusOK {
				t.Errorf("status = %d", rec.Code)
				return
			}
			var resp AnnotateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if resp.Degraded {
				degraded++
			} else {
				full++
			}
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if degraded+full != n {
		t.Fatalf("degraded=%d full=%d, want %d total", degraded, full, n)
	}
	if full < capacity {
		t.Fatalf("full=%d, at least the %d slot holders must complete normally", full, capacity)
	}
	// All n requests arrive within the 300ms spike window, so at most the
	// slot holders (and stragglers that caught a freed slot) run the full
	// pipeline; the bulk must have been shed into the degraded path.
	if degraded < n-2*capacity {
		t.Fatalf("degraded=%d, want ≥ %d under saturation", degraded, n-2*capacity)
	}
	snap := s.ResilienceSnapshot()
	if snap.Shed != int64(degraded) {
		t.Fatalf("Shed counter %d != degraded responses %d", snap.Shed, degraded)
	}
	if s.Gate.InFlight() != 0 || s.Gate.QueueDepth() != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", s.Gate.InFlight(), s.Gate.QueueDepth())
	}
}

// TestDeadlineDegradesWithinGrace: a 2s injected spike against a 50ms
// request deadline must produce a degraded 200 well before the spike
// would have elapsed — the sleep is cut at the deadline and the fallback
// is bounded. The 1s grace window absorbs CI scheduler noise.
func TestDeadlineDegradesWithinGrace(t *testing.T) {
	s := testServer(t)
	s.Timeout = 50 * time.Millisecond
	s.Injector = resilience.NewInjector(resilience.InjectorConfig{
		Seed: 1, LatencyP: 1, LatencySpike: 2 * time.Second,
	})
	h := s.Handler()

	start := time.Now()
	rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("deadline-expired request not degraded")
	}
	if elapsed > s.Timeout+time.Second {
		t.Fatalf("response took %v, deadline %v + 1s grace exceeded", elapsed, s.Timeout)
	}
	snap := s.ResilienceSnapshot()
	if snap.DeadlineExpired != 1 || snap.Degraded != 1 {
		t.Fatalf("counters = %+v, want DeadlineExpired=1 Degraded=1", snap)
	}

	// Render cannot degrade: same spike → 503 with Retry-After.
	rec2 := postJSON(t, h, "/v1/render", AnnotateRequest{Text: "the alphaword appeared"})
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("render deadline status = %d, want 503", rec2.Code)
	}
	if rec2.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
}

// TestQueuedRequestAdmittedAfterRelease: the short wait queue actually
// waits — a queued request is admitted (not shed) once a slot frees
// within maxWait.
func TestQueuedRequestAdmittedAfterRelease(t *testing.T) {
	s := testServer(t)
	s.Gate = resilience.NewGate(1, 1, 2*time.Second)
	h := s.Handler()

	release, err := s.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *AnnotateResponse, 1)
	go func() {
		rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword appeared"})
		var resp AnnotateResponse
		if rec.Code == http.StatusOK && json.Unmarshal(rec.Body.Bytes(), &resp) == nil {
			done <- &resp
			return
		}
		done <- nil
	}()
	for i := 0; i < 2000 && s.Gate.QueueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.Gate.QueueDepth() != 1 {
		t.Fatal("request never queued")
	}
	release()
	resp := <-done
	if resp == nil {
		t.Fatal("queued request failed")
	}
	if resp.Degraded {
		t.Fatal("queued request degraded despite a slot freeing within maxWait")
	}
}
