// Package serve exposes the annotation runtime over HTTP — the content
// syndication surface of Contextual Shortcuts ("a framework for entity
// detection and content syndication ... successfully deployed on various
// Yahoo! network properties"). Publishers POST documents and receive
// ranked annotations as JSON, or the fully annotated HTML with shortcut
// overlays.
//
// Endpoints:
//
//	POST /v1/annotate     {"text": "...", "html": false, "top": 3}
//	POST /v1/render       same body; responds with annotated HTML
//	GET  /v1/concepts?q=  concept inventory lookup (features + keywords)
//	GET  /healthz         liveness
//	GET  /readyz          readiness (503 while draining)
//	GET  /statz           processing counters, resilience counters, throughput
//
// The serving path is production-hardened by internal/resilience (see
// DESIGN.md §8 for the full contract): per-request deadlines with
// cooperative cancellation, bounded-concurrency admission control, panic
// recovery, deterministic chaos injection, and graceful degradation —
// when /v1/annotate is shed or runs out of deadline it answers with the
// cheap dictionary-prior ranking flagged "degraded": true instead of an
// error, while /v1/render (whose output cannot be meaningfully degraded)
// sheds with 429 + Retry-After.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"contextrank/internal/annotate"
	"contextrank/internal/detect"
	"contextrank/internal/framework"
	"contextrank/internal/resilience"
	"contextrank/internal/searchsim"
	"contextrank/internal/textproc"
)

// MaxDocumentBytes bounds request bodies: the production system processes
// web pages, not bulk corpora, per request.
const MaxDocumentBytes = 1 << 20

// retryAfterSeconds is the backoff hint sent with every 429/503: shed
// load should come back after the short wait queue has had a chance to
// drain, not immediately and not never.
const retryAfterSeconds = "1"

// TenantHeader names the header identifying the calling tenant for
// per-tenant quota accounting. Requests without it share the anonymous
// tenant's bucket.
const TenantHeader = "X-Tenant"

// DeadlineHeader carries the router's remaining per-request budget, in
// integer milliseconds. A shard-mode server (TrustForwardedDeadline)
// clamps its own deadline to it so a request that already burned most of
// its budget at the router does not get a fresh full deadline at the
// shard.
const DeadlineHeader = "X-Deadline-Ms"

// Server wires the runtime and renderer behind an http.Handler.
type Server struct {
	Runtime  *framework.Runtime
	Renderer *annotate.Renderer
	// DefaultTop is used when a request omits "top". Default 5.
	DefaultTop int

	// Timeout is the per-request deadline for the annotation pipeline
	// (0 = none). On expiry /v1/annotate degrades and /v1/render 503s.
	Timeout time.Duration
	// Gate is the admission controller (nil = unbounded admission).
	Gate *resilience.Gate
	// Quota is the per-tenant token-bucket check applied in front of the
	// gate (nil = no quotas). Exhausted tenants get 429 + Retry-After on
	// every endpoint — a quota refusal is policy, not pressure, so it is
	// never answered with the degraded ranking.
	Quota *resilience.Quota
	// TrustForwardedDeadline makes the server honor DeadlineHeader from
	// the router (shard mode, cmd/serve -shard). Off by default: an
	// internet-facing server must not let clients shrink or extend its
	// deadline policy.
	TrustForwardedDeadline bool
	// Injector enables deterministic fault injection (nil = off).
	Injector *resilience.Injector
	// Cache is the /v1/annotate response cache (nil = disabled). Hits
	// serve the exact bytes of the original cold response and bypass the
	// admission gate; see Cache for the full contract.
	Cache *Cache
	// IndexStats, when set, reports the search index's build-time size
	// accounting (raw vs Golomb-frozen bytes) and ResultCount memo-cache
	// counters in /statz. Wired to searchsim.Engine.Stats by cmd/serve.
	IndexStats func() searchsim.IndexStats
	// IndexEpoch, when set, reports the index visibility epoch
	// (searchsim.Engine.Epoch). Cached annotate responses are keyed by it,
	// so live ingest invalidates the annotation cache exactly when new
	// documents become visible — never on a pure compaction. Nil (no live
	// index) pins epoch 0: the cache behaves as before.
	IndexEpoch func() uint64

	ready       atomic.Bool
	requests    atomic.Int64
	docBytes    atomic.Int64
	writeErrors atomic.Int64
	rz          resilience.Counters
}

// NewServer builds a server around a runtime. renderer may be nil, which
// disables /v1/render. The server starts ready; cmd/serve flips readiness
// off when a drain begins.
func NewServer(rt *framework.Runtime, renderer *annotate.Renderer) *Server {
	s := &Server{Runtime: rt, Renderer: renderer, DefaultTop: 5}
	s.ready.Store(true)
	return s
}

// SetReady flips the /readyz state. Liveness (/healthz) is unaffected:
// a draining process is still alive.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the current readiness state.
func (s *Server) Ready() bool { return s.ready.Load() }

// ResilienceSnapshot exposes the resilience counters (also in /statz).
func (s *Server) ResilienceSnapshot() resilience.Snapshot { return s.rz.Snapshot() }

// Handler returns the routed handler wrapped in the resilience chain:
// Recover outermost (a panic anywhere — injected or real — becomes a 500
// and a counter), Chaos inside it (so injected panics are recovered like
// real ones), then the mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/annotate", s.handleAnnotate)
	mux.HandleFunc("POST /v1/render", s.handleRender)
	mux.HandleFunc("GET /v1/concepts", s.handleConcepts)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		s.writeBody(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statz", s.handleStats)

	var h http.Handler = mux
	h = resilience.Chaos(s.Injector, &s.rz, h)
	return resilience.Recover(&s.rz, h)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	s.writeBody(w, "ready\n")
}

// AnnotateRequest is the JSON request body of /v1/annotate and /v1/render.
type AnnotateRequest struct {
	// Text is the document (plain text, or HTML when HTML is true).
	Text string `json:"text"`
	// HTML strips markup before detection.
	HTML bool `json:"html,omitempty"`
	// Top keeps the top-N distinct concepts (0 = server default, -1 = all).
	Top int `json:"top,omitempty"`
}

// AnnotationJSON is one annotation in the response.
type AnnotationJSON struct {
	Text      string  `json:"text"`
	Concept   string  `json:"concept"`
	Kind      string  `json:"kind"`
	Type      string  `json:"type,omitempty"`
	Subtype   string  `json:"subtype,omitempty"`
	Score     float64 `json:"score"`
	Relevance float64 `json:"relevance"`
	Start     int     `json:"start"`
	End       int     `json:"end"`
}

// AnnotateResponse is the JSON response of /v1/annotate.
type AnnotateResponse struct {
	// Text is the plain text the offsets refer to (differs from the input
	// when HTML was stripped).
	Text        string           `json:"text"`
	Annotations []AnnotationJSON `json:"annotations"`
	// Degraded marks a response produced by the cheap dictionary-prior
	// ranking because the full pipeline was shed or ran out of deadline.
	// Scores are static priors and Relevance is always 0 in this mode.
	Degraded bool `json:"degraded,omitempty"`
}

// decode parses and validates the request body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (AnnotateRequest, string, bool) {
	var req AnnotateRequest
	body := http.MaxBytesReader(w, r.Body, MaxDocumentBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "request body exceeds document limit", http.StatusRequestEntityTooLarge)
			return req, "", false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return req, "", false
	}
	if req.Text == "" {
		http.Error(w, "bad request: empty text", http.StatusBadRequest)
		return req, "", false
	}
	text := req.Text
	if req.HTML {
		text = textproc.StripHTML(text)
	}
	return req, text, true
}

func (s *Server) top(req AnnotateRequest) int {
	switch {
	case req.Top < 0:
		return 0 // all
	case req.Top == 0:
		return s.DefaultTop
	default:
		return req.Top
	}
}

// account records one admitted document in the request counters.
func (s *Server) account(text string) {
	s.requests.Add(1)
	s.docBytes.Add(int64(len(text)))
}

// requestCtx derives the per-request deadline context: the configured
// Timeout, clamped to the router's forwarded budget in shard mode.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.Timeout
	if s.TrustForwardedDeadline {
		if ms, err := strconv.Atoi(r.Header.Get(DeadlineHeader)); err == nil && ms > 0 {
			if fwd := time.Duration(ms) * time.Millisecond; timeout <= 0 || fwd < timeout {
				timeout = fwd
			}
		}
	}
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

// checkQuota enforces the per-tenant token bucket. It reports whether the
// request may proceed; on refusal the 429 has already been written.
func (s *Server) checkQuota(w http.ResponseWriter, r *http.Request) bool {
	if s.Quota == nil {
		return true
	}
	ok, retryAfter := s.Quota.Allow(r.Header.Get(TenantHeader))
	if ok {
		return true
	}
	s.rz.QuotaDenied.Add(1)
	w.Header().Set("Retry-After", retryAfterHint(retryAfter))
	http.Error(w, "tenant quota exceeded", http.StatusTooManyRequests)
	return false
}

// retryAfterHint renders a Retry-After duration as whole seconds, rounded
// up with a floor of one — the only form RetryClient parses.
func retryAfterHint(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// admit asks the gate for a slot. With no gate every request is admitted.
func (s *Server) admit(ctx context.Context) (func(), error) {
	if s.Gate == nil {
		return func() {}, nil
	}
	return s.Gate.Acquire(ctx)
}

// annotate runs the full pipeline for the render path (no ctx support in
// the renderer flow yet — deadline failures surface as 503 there).
func (s *Server) annotate(ctx context.Context, text string, top int) ([]framework.Annotation, error) {
	return s.Runtime.AnnotateCtx(ctx, text, top)
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	if !s.checkQuota(w, r) {
		return
	}
	req, text, ok := s.decode(w, r)
	if !ok {
		return
	}
	s.account(text)
	top := s.top(req)
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	if s.Cache == nil {
		body, _ := s.annotateBody(ctx, text, top)
		s.writeRawJSON(w, body)
		return
	}
	body, err := s.Cache.Do(ctx, text, top, s.epoch(), func(fctx context.Context) ([]byte, bool) {
		// fctx is the detached fill context: the leader's values without
		// its cancellation, bounded by the fill deadline — a cancelled
		// leader cannot poison the coalesced waiters (DESIGN.md §8).
		return s.annotateBody(fctx, text, top)
	})
	if err != nil {
		// Waiter (leader or follower) whose own deadline expired before
		// the fill finished: answer degraded like any other deadline
		// exhaustion; the detached fill still completes and caches.
		s.rz.DeadlineExpired.Add(1)
		s.writeRawJSON(w, s.marshalAnnotations(text, s.degraded(text, top), true))
		return
	}
	s.writeRawJSON(w, body)
}

// annotateBody runs the gated annotate pipeline and serializes the response,
// reporting whether the bytes are cacheable (degraded responses are not).
func (s *Server) annotateBody(ctx context.Context, text string, top int) (body []byte, cacheable bool) {
	release, err := s.admit(ctx)
	if err != nil {
		// Shed: answer degraded instead of erroring. The cheap ranking
		// deliberately runs outside the gate — it is the pressure-relief
		// valve, and admitting it through the gate would defeat shedding.
		s.rz.Shed.Add(1)
		return s.marshalAnnotations(text, s.degraded(text, top), true), false
	}
	defer release()
	resilience.ChaosDelay(ctx)

	anns, err := s.annotate(ctx, text, top)
	if err != nil {
		// Deadline exhausted mid-pipeline: fall back to the cheap ranking
		// (still holding the slot; the fallback is fast and bounded).
		s.rz.DeadlineExpired.Add(1)
		return s.marshalAnnotations(text, s.degraded(text, top), true), false
	}
	return s.marshalAnnotations(text, anns, false), true
}

// epoch returns the current index visibility epoch for cache keying.
func (s *Server) epoch() uint64 {
	if s.IndexEpoch != nil {
		return s.IndexEpoch()
	}
	return 0
}

// degraded runs the dictionary-prior fallback and counts it.
func (s *Server) degraded(text string, top int) []framework.Annotation {
	s.rz.Degraded.Add(1)
	return s.Runtime.AnnotateDegraded(text, top)
}

// marshalAnnotations serializes the annotation list as an AnnotateResponse
// body. The bytes match json.Encoder output (trailing newline included), so
// cached and freshly encoded responses are byte-identical.
func (s *Server) marshalAnnotations(text string, anns []framework.Annotation, degraded bool) []byte {
	resp := AnnotateResponse{Text: text, Annotations: make([]AnnotationJSON, 0, len(anns)), Degraded: degraded}
	for _, a := range anns {
		aj := AnnotationJSON{
			Text:      a.Detection.Text,
			Concept:   a.Detection.Norm,
			Kind:      a.Detection.Kind.String(),
			Score:     a.Score,
			Relevance: a.Relevance,
			Start:     a.Detection.Start,
			End:       a.Detection.End,
		}
		if a.Detection.Kind == detect.KindPattern {
			aj.Type = a.Detection.PatternType
		} else if a.Detection.Entry != nil {
			aj.Type = a.Detection.Entry.Type.String()
			aj.Subtype = a.Detection.Entry.Subtype
		}
		resp.Annotations = append(resp.Annotations, aj)
	}
	body, err := json.Marshal(resp)
	if err != nil {
		// AnnotateResponse contains only marshalable fields; unreachable.
		panic("serve: marshal annotate response: " + err.Error())
	}
	return append(body, '\n')
}

// writeRawJSON writes a pre-serialized JSON body.
func (s *Server) writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		s.writeErrors.Add(1)
	}
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	if s.Renderer == nil {
		http.Error(w, "rendering not configured", http.StatusNotImplemented)
		return
	}
	if !s.checkQuota(w, r) {
		return
	}
	req, text, ok := s.decode(w, r)
	if !ok {
		return
	}
	s.account(text)
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	release, err := s.admit(ctx)
	if err != nil {
		// Rendered HTML has no meaningful degraded form: shed with 429
		// and a backoff hint.
		s.rz.Shed.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds)
		http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
		return
	}
	defer release()
	resilience.ChaosDelay(ctx)

	if req.HTML {
		// Annotate the original markup in place: strip with an offset map,
		// detect on the plain text, splice shortcut spans back into the
		// publisher's HTML.
		res := textproc.StripHTMLMapped(req.Text)
		anns, err := s.annotate(ctx, res.Text, s.top(req))
		if err != nil {
			s.renderDeadline(w)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		s.writeBody(w, s.Renderer.RenderSource(req.Text, res, anns))
		return
	}
	anns, err := s.annotate(ctx, text, s.top(req))
	if err != nil {
		s.renderDeadline(w)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	s.writeBody(w, s.Renderer.Render(text, anns))
}

// renderDeadline reports a render request that ran out of its deadline.
func (s *Server) renderDeadline(w http.ResponseWriter) {
	s.rz.DeadlineExpired.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds)
	http.Error(w, "deadline exceeded", http.StatusServiceUnavailable)
}

// ConceptInfo is the /v1/concepts response.
type ConceptInfo struct {
	Concept   string   `json:"concept"`
	Known     bool     `json:"known"`
	Keywords  []string `json:"keywords,omitempty"`
	PackBytes int      `json:"pack_bytes"`
}

func (s *Server) handleConcepts(w http.ResponseWriter, r *http.Request) {
	q := textproc.Normalize(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	info := ConceptInfo{Concept: q}
	if _, ok := s.Runtime.Interest.Fields(q); ok {
		info.Known = true
		info.PackBytes = s.Runtime.Packs.BytesFor(q)
		for i, e := range s.Runtime.Packs.Keywords(q) {
			if i == 10 {
				break
			}
			info.Keywords = append(info.Keywords, e.Term)
		}
	}
	s.writeJSON(w, info)
}

// Stats is the /statz response.
type Stats struct {
	Requests      int64   `json:"requests"`
	DocumentBytes int64   `json:"document_bytes"`
	WriteErrors   int64   `json:"write_errors"`
	StemMBps      float64 `json:"stem_mbps"`
	RankMBps      float64 `json:"rank_mbps"`

	// Admission-control gauges (zero when no gate is configured).
	InFlight     int `json:"in_flight"`
	QueueDepth   int `json:"queue_depth"`
	GateCapacity int `json:"gate_capacity"`

	// QuotaTenants is the number of tenant buckets currently tracked
	// (zero when quotas are disabled; refusals are counted in
	// resilience.quota_denied).
	QuotaTenants int `json:"quota_tenants,omitempty"`

	Resilience resilience.Snapshot `json:"resilience"`

	// Cache reports the annotation-cache counters (absent when disabled).
	Cache *CacheStats `json:"cache,omitempty"`

	// Index reports the frozen search-index size and the ResultCount
	// memo-cache counters (absent when the server has no index wired).
	Index *searchsim.IndexStats `json:"index,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stem, rank := s.Runtime.Throughput()
	st := Stats{
		Requests:      s.requests.Load(),
		DocumentBytes: s.docBytes.Load(),
		WriteErrors:   s.writeErrors.Load(),
		StemMBps:      stem,
		RankMBps:      rank,
		Resilience:    s.rz.Snapshot(),
	}
	if s.Gate != nil {
		st.InFlight = s.Gate.InFlight()
		st.QueueDepth = s.Gate.QueueDepth()
		st.GateCapacity = s.Gate.Capacity()
	}
	if s.Quota != nil {
		st.QuotaTenants = s.Quota.Tenants()
	}
	if s.Cache != nil {
		cs := s.Cache.Stats()
		st.Cache = &cs
	}
	if s.IndexStats != nil {
		is := s.IndexStats()
		st.Index = &is
	}
	s.writeJSON(w, st)
}

// writeBody writes a pre-rendered body and accounts failures: a client
// that disconnects mid-write would otherwise look like a success in
// /statz while receiving a truncated document.
func (s *Server) writeBody(w http.ResponseWriter, body string) {
	if _, err := io.WriteString(w, body); err != nil {
		s.writeErrors.Add(1)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Encode errors after the header is sent usually mean the client
		// went away; count them rather than pretend the write succeeded.
		s.writeErrors.Add(1)
	}
}
