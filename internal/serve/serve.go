// Package serve exposes the annotation runtime over HTTP — the content
// syndication surface of Contextual Shortcuts ("a framework for entity
// detection and content syndication ... successfully deployed on various
// Yahoo! network properties"). Publishers POST documents and receive
// ranked annotations as JSON, or the fully annotated HTML with shortcut
// overlays.
//
// Endpoints:
//
//	POST /v1/annotate     {"text": "...", "html": false, "top": 3}
//	POST /v1/render       same body; responds with annotated HTML
//	GET  /v1/concepts?q=  concept inventory lookup (features + keywords)
//	GET  /healthz         liveness
//	GET  /statz           processing counters and throughput
package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"

	"contextrank/internal/annotate"
	"contextrank/internal/detect"
	"contextrank/internal/framework"
	"contextrank/internal/textproc"
)

// MaxDocumentBytes bounds request bodies: the production system processes
// web pages, not bulk corpora, per request.
const MaxDocumentBytes = 1 << 20

// Server wires the runtime and renderer behind an http.Handler.
type Server struct {
	Runtime  *framework.Runtime
	Renderer *annotate.Renderer
	// DefaultTop is used when a request omits "top". Default 5.
	DefaultTop int

	requests    atomic.Int64
	docBytes    atomic.Int64
	writeErrors atomic.Int64
}

// NewServer builds a server around a runtime. renderer may be nil, which
// disables /v1/render.
func NewServer(rt *framework.Runtime, renderer *annotate.Renderer) *Server {
	return &Server{Runtime: rt, Renderer: renderer, DefaultTop: 5}
}

// Handler returns the routed handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/annotate", s.handleAnnotate)
	mux.HandleFunc("POST /v1/render", s.handleRender)
	mux.HandleFunc("GET /v1/concepts", s.handleConcepts)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		s.writeBody(w, "ok\n")
	})
	mux.HandleFunc("GET /statz", s.handleStats)
	return mux
}

// AnnotateRequest is the JSON request body of /v1/annotate and /v1/render.
type AnnotateRequest struct {
	// Text is the document (plain text, or HTML when HTML is true).
	Text string `json:"text"`
	// HTML strips markup before detection.
	HTML bool `json:"html,omitempty"`
	// Top keeps the top-N distinct concepts (0 = server default, -1 = all).
	Top int `json:"top,omitempty"`
}

// AnnotationJSON is one annotation in the response.
type AnnotationJSON struct {
	Text      string  `json:"text"`
	Concept   string  `json:"concept"`
	Kind      string  `json:"kind"`
	Type      string  `json:"type,omitempty"`
	Subtype   string  `json:"subtype,omitempty"`
	Score     float64 `json:"score"`
	Relevance float64 `json:"relevance"`
	Start     int     `json:"start"`
	End       int     `json:"end"`
}

// AnnotateResponse is the JSON response of /v1/annotate.
type AnnotateResponse struct {
	// Text is the plain text the offsets refer to (differs from the input
	// when HTML was stripped).
	Text        string           `json:"text"`
	Annotations []AnnotationJSON `json:"annotations"`
}

// decode parses and validates the request body.
func (s *Server) decode(w http.ResponseWriter, r *http.Request) (AnnotateRequest, string, bool) {
	var req AnnotateRequest
	body := http.MaxBytesReader(w, r.Body, MaxDocumentBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return req, "", false
	}
	if req.Text == "" {
		http.Error(w, "bad request: empty text", http.StatusBadRequest)
		return req, "", false
	}
	text := req.Text
	if req.HTML {
		text = textproc.StripHTML(text)
	}
	return req, text, true
}

func (s *Server) top(req AnnotateRequest) int {
	switch {
	case req.Top < 0:
		return 0 // all
	case req.Top == 0:
		return s.DefaultTop
	default:
		return req.Top
	}
}

func (s *Server) annotate(text string, top int) []framework.Annotation {
	s.requests.Add(1)
	s.docBytes.Add(int64(len(text)))
	return s.Runtime.Annotate(text, top)
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	req, text, ok := s.decode(w, r)
	if !ok {
		return
	}
	anns := s.annotate(text, s.top(req))
	resp := AnnotateResponse{Text: text, Annotations: make([]AnnotationJSON, 0, len(anns))}
	for _, a := range anns {
		aj := AnnotationJSON{
			Text:      a.Detection.Text,
			Concept:   a.Detection.Norm,
			Kind:      a.Detection.Kind.String(),
			Score:     a.Score,
			Relevance: a.Relevance,
			Start:     a.Detection.Start,
			End:       a.Detection.End,
		}
		if a.Detection.Kind == detect.KindPattern {
			aj.Type = a.Detection.PatternType
		} else if a.Detection.Entry != nil {
			aj.Type = a.Detection.Entry.Type.String()
			aj.Subtype = a.Detection.Entry.Subtype
		}
		resp.Annotations = append(resp.Annotations, aj)
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	if s.Renderer == nil {
		http.Error(w, "rendering not configured", http.StatusNotImplemented)
		return
	}
	req, text, ok := s.decode(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if req.HTML {
		// Annotate the original markup in place: strip with an offset map,
		// detect on the plain text, splice shortcut spans back into the
		// publisher's HTML.
		res := textproc.StripHTMLMapped(req.Text)
		anns := s.annotate(res.Text, s.top(req))
		s.writeBody(w, s.Renderer.RenderSource(req.Text, res, anns))
		return
	}
	anns := s.annotate(text, s.top(req))
	s.writeBody(w, s.Renderer.Render(text, anns))
}

// ConceptInfo is the /v1/concepts response.
type ConceptInfo struct {
	Concept   string   `json:"concept"`
	Known     bool     `json:"known"`
	Keywords  []string `json:"keywords,omitempty"`
	PackBytes int      `json:"pack_bytes"`
}

func (s *Server) handleConcepts(w http.ResponseWriter, r *http.Request) {
	q := textproc.Normalize(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	info := ConceptInfo{Concept: q}
	if _, ok := s.Runtime.Interest.Fields(q); ok {
		info.Known = true
		info.PackBytes = s.Runtime.Packs.BytesFor(q)
		for i, e := range s.Runtime.Packs.Keywords(q) {
			if i == 10 {
				break
			}
			info.Keywords = append(info.Keywords, e.Term)
		}
	}
	s.writeJSON(w, info)
}

// Stats is the /statz response.
type Stats struct {
	Requests      int64   `json:"requests"`
	DocumentBytes int64   `json:"document_bytes"`
	WriteErrors   int64   `json:"write_errors"`
	StemMBps      float64 `json:"stem_mbps"`
	RankMBps      float64 `json:"rank_mbps"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stem, rank := s.Runtime.Throughput()
	s.writeJSON(w, Stats{
		Requests:      s.requests.Load(),
		DocumentBytes: s.docBytes.Load(),
		WriteErrors:   s.writeErrors.Load(),
		StemMBps:      stem,
		RankMBps:      rank,
	})
}

// writeBody writes a pre-rendered body and accounts failures: a client
// that disconnects mid-write would otherwise look like a success in
// /statz while receiving a truncated document.
func (s *Server) writeBody(w http.ResponseWriter, body string) {
	if _, err := io.WriteString(w, body); err != nil {
		s.writeErrors.Add(1)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Encode errors after the header is sent usually mean the client
		// went away; count them rather than pretend the write succeeded.
		s.writeErrors.Add(1)
	}
}
