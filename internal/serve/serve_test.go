package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"contextrank/internal/annotate"
	"contextrank/internal/corpus"
	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/querylog"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/units"
)

// testServer builds a tiny self-contained server: two supported concepts,
// a pattern detector, and a trained model.
func testServer(t *testing.T) *Server {
	t.Helper()
	store := relevance.NewStore(relevance.Snippets, map[string]corpus.Vector{
		"alphaword": {{Term: "ctx", Weight: 5}},
		"betaword":  {{Term: "ctx", Weight: 4}},
	})
	packs := framework.BuildKeywordPacks(store)
	hot := features.Fields{FreqExact: 9, FreqPhraseContained: 10, NumberOfChars: 9, ConceptSize: 1}
	cold := features.Fields{FreqExact: 1, FreqPhraseContained: 1, NumberOfChars: 8, ConceptSize: 1}
	table := framework.BuildInterestTable([]string{"alphaword", "betaword"}, func(n string) features.Fields {
		if n == "alphaword" {
			return hot
		}
		return cold
	})
	var instances []ranksvm.Instance
	for g := 0; g < 6; g++ {
		instances = append(instances,
			ranksvm.Instance{Features: append(hot.Expand(features.AllGroups()), 1), Label: 0.1, Group: g},
			ranksvm.Instance{Features: append(cold.Expand(features.AllGroups()), 0), Label: 0.01, Group: g},
		)
	}
	model, err := ranksvm.Train(instances, ranksvm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	log := querylog.FromCounts(map[string]int{"alphaword": 5000, "betaword": 4000, "ctx": 100})
	us := units.Extract(log, units.Config{})
	rt := framework.NewRuntime(detect.New(nil, us), table, packs, model)
	renderer := annotate.NewRenderer(&annotate.DefaultProvider{})
	return NewServer(rt, renderer)
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestAnnotateEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{
		Text: "the alphaword met the betaword near ctx; email a@b.com",
		Top:  1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	concepts := map[string]bool{}
	for _, a := range resp.Annotations {
		kinds = append(kinds, a.Kind)
		if a.Kind == "concept" {
			concepts[a.Concept] = true
		}
		if resp.Text[a.Start:a.End] != a.Text {
			t.Fatalf("offsets do not slice to text: %+v", a)
		}
	}
	if len(concepts) != 1 || !concepts["alphaword"] {
		t.Fatalf("top-1 should keep only alphaword: %v (%v)", concepts, kinds)
	}
	found := false
	for _, a := range resp.Annotations {
		if a.Kind == "pattern" && a.Type == "email" {
			found = true
		}
	}
	if !found {
		t.Fatalf("email pattern missing: %+v", resp.Annotations)
	}
}

func TestAnnotateHTMLStripping(t *testing.T) {
	h := testServer(t).Handler()
	rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{
		Text: "<p>the <b>alphaword</b> story</p>",
		HTML: true,
	})
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp.Text, "<b>") {
		t.Fatalf("HTML not stripped: %q", resp.Text)
	}
	if len(resp.Annotations) == 0 {
		t.Fatal("no annotations after stripping")
	}
}

func TestAnnotateValidation(t *testing.T) {
	h := testServer(t).Handler()
	// Empty text.
	rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty text status = %d", rec.Code)
	}
	// Malformed JSON.
	req := httptest.NewRequest(http.MethodPost, "/v1/annotate", strings.NewReader("{nope"))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON status = %d", rec2.Code)
	}
	// Wrong method.
	req3 := httptest.NewRequest(http.MethodGet, "/v1/annotate", nil)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	if rec3.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", rec3.Code)
	}
}

func TestRenderEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	rec := postJSON(t, h, "/v1/render", AnnotateRequest{Text: "the alphaword appeared"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `data-concept="alphaword"`) {
		t.Fatalf("render output missing shortcut: %s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestRenderWithoutRenderer(t *testing.T) {
	s := testServer(t)
	s.Renderer = nil
	rec := postJSON(t, s.Handler(), "/v1/render", AnnotateRequest{Text: "x"})
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestConceptsEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/concepts?q=AlphaWord", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var info ConceptInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Known || info.Concept != "alphaword" {
		t.Fatalf("concept info = %+v", info)
	}
	if len(info.Keywords) == 0 || info.PackBytes == 0 {
		t.Fatalf("keywords missing: %+v", info)
	}
	// Unknown concept.
	req2 := httptest.NewRequest(http.MethodGet, "/v1/concepts?q=nonexistent", nil)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	var info2 ConceptInfo
	if err := json.Unmarshal(rec2.Body.Bytes(), &info2); err != nil {
		t.Fatal(err)
	}
	if info2.Known {
		t.Fatal("unknown concept reported as known")
	}
	// Missing q.
	req3 := httptest.NewRequest(http.MethodGet, "/v1/concepts", nil)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	if rec3.Code != http.StatusBadRequest {
		t.Fatalf("missing q status = %d", rec3.Code)
	}
}

func TestHealthAndStats(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword appeared"})
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/statz", nil))
	var stats Stats
	if err := json.Unmarshal(rec2.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 || stats.DocumentBytes == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestConcurrentAnnotate(t *testing.T) {
	h := testServer(t).Handler()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: "the alphaword and betaword with ctx"})
				if rec.Code != http.StatusOK {
					t.Errorf("status %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRequestSizeLimit(t *testing.T) {
	h := testServer(t).Handler()
	huge := strings.Repeat("x", MaxDocumentBytes+100)
	rec := postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: huge})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized request status = %d, want 413", rec.Code)
	}
}

func TestReadyz(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz while ready = %d", rec.Code)
	}
	s.SetReady(false)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rec2.Code)
	}
	if rec2.Header().Get("Retry-After") == "" {
		t.Fatal("draining readyz missing Retry-After")
	}
	// Liveness is unaffected by draining.
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec3.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d", rec3.Code)
	}
}

func TestRenderEndpointOriginalHTML(t *testing.T) {
	h := testServer(t).Handler()
	rec := postJSON(t, h, "/v1/render", AnnotateRequest{
		Text: `<p>the <em>story</em> of the alphaword began</p>`,
		HTML: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	// Original markup preserved, shortcut span spliced in.
	if !strings.Contains(body, "<em>story</em>") {
		t.Fatalf("original markup lost: %s", body)
	}
	if !strings.Contains(body, `data-concept="alphaword"`) {
		t.Fatalf("shortcut missing from original HTML: %s", body)
	}
}
