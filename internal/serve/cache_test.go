package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"contextrank/internal/resilience"
)

// TestCacheHitBytesIdenticalToCold is the cache differential: the same
// request served cold, served from cache, and served by a cache-less server
// must produce byte-identical bodies.
func TestCacheHitBytesIdenticalToCold(t *testing.T) {
	srv := testServer(t)
	srv.Cache = NewCache(64)
	h := srv.Handler()
	plain := testServer(t).Handler() // no cache

	req := AnnotateRequest{Text: "the alphaword met the betaword near ctx; email a@b.com", Top: 2}
	cold := postJSON(t, h, "/v1/annotate", req)
	hit := postJSON(t, h, "/v1/annotate", req)
	uncached := postJSON(t, plain, "/v1/annotate", req)
	if cold.Code != http.StatusOK || hit.Code != http.StatusOK {
		t.Fatalf("status cold=%d hit=%d", cold.Code, hit.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatalf("cache hit bytes differ from cold bytes:\ncold %s\nhit  %s", cold.Body, hit.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), uncached.Body.Bytes()) {
		t.Fatalf("cached server bytes differ from cache-less server:\ncached   %s\nuncached %s", cold.Body, uncached.Body)
	}
	st := srv.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters after cold+hit: %+v", st)
	}

	// Different topN is a different key.
	postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: req.Text, Top: 1})
	if st := srv.Cache.Stats(); st.Misses != 2 {
		t.Fatalf("topN must be part of the key: %+v", st)
	}
}

// TestCacheNeverStoresDegraded: responses produced under shedding (a gate
// with zero capacity sheds everything) must not be cached — a later
// uncontended request has to run the full pipeline.
func TestCacheNeverStoresDegraded(t *testing.T) {
	srv := testServer(t)
	srv.Cache = NewCache(64)
	srv.Gate = resilience.NewGate(1, 0, 0)
	h := srv.Handler()

	// Hold the only slot so the request below is shed.
	release, err := srv.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := AnnotateRequest{Text: "the alphaword story", Top: 1}
	rec := postJSON(t, h, "/v1/annotate", req)
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("request with a full gate should degrade")
	}
	release()

	rec = postJSON(t, h, "/v1/annotate", req)
	var resp2 AnnotateResponse // fresh: degraded is omitempty
	if err := json.Unmarshal(rec.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Degraded {
		t.Fatal("degraded response was served from cache")
	}
	if st := srv.Cache.Stats(); st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("expected 0 hits and only the full response stored: %+v", st)
	}
}

// TestCacheHitBypassesGate: a zero-capacity gate sheds every cold request,
// but a warmed key must still serve the full (cached) response.
func TestCacheHitBypassesGate(t *testing.T) {
	srv := testServer(t)
	srv.Cache = NewCache(64)
	h := srv.Handler()

	req := AnnotateRequest{Text: "the alphaword story", Top: 1}
	postJSON(t, h, "/v1/annotate", req) // warm while unbounded

	srv.Gate = resilience.NewGate(1, 0, 0)
	release, err := srv.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := postJSON(t, h, "/v1/annotate", req)
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("cache hit went through the (full) admission gate")
	}
	if st := srv.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("expected a cache hit: %+v", st)
	}
}

// TestCacheEviction fills the cache past capacity and checks the eviction
// counter and occupancy bound.
func TestCacheEviction(t *testing.T) {
	c := NewCache(numCacheShards) // one entry per shard
	for i := 0; i < 10*numCacheShards; i++ {
		text := fmt.Sprintf("doc %d", i)
		if _, err := c.Do(context.Background(), text, 3, 0, func(context.Context) ([]byte, bool) {
			return []byte(text), true
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("overfilling the cache evicted nothing")
	}
}

// TestCacheCoalescesConcurrentMisses: concurrent misses on one key run the
// pipeline once; followers receive the leader's bytes.
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	c := NewCache(64)
	computed := 0
	var mu sync.Mutex
	started := make(chan struct{})
	proceed := make(chan struct{})

	const followers = 4
	results := make([][]byte, followers+1)
	var wg sync.WaitGroup
	wg.Add(followers + 1)
	go func() {
		defer wg.Done()
		body, _ := c.Do(context.Background(), "doc", 3, 0, func(context.Context) ([]byte, bool) {
			mu.Lock()
			computed++
			mu.Unlock()
			close(started)
			<-proceed
			return []byte("payload"), true
		})
		results[0] = body
	}()
	<-started
	for i := 1; i <= followers; i++ {
		go func(i int) {
			defer wg.Done()
			body, err := c.Do(context.Background(), "doc", 3, 0, func(context.Context) ([]byte, bool) {
				mu.Lock()
				computed++
				mu.Unlock()
				return []byte("payload"), true
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = body
		}(i)
	}
	// Give followers a moment to park on the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(proceed)
	wg.Wait()

	for i, r := range results {
		if string(r) != "payload" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// The leader computes once; a follower may legitimately recompute only
	// if it raced ahead of the flight registration, which the started/park
	// choreography prevents for the leader's window.
	if computed != 1 {
		t.Fatalf("pipeline ran %d times for one key", computed)
	}
	if st := c.Stats(); st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
}

// TestCacheCancelledLeaderDoesNotPoisonWaiters is the satellite-2
// regression: the leader's request is cancelled mid-fill, but the fill is
// detached onto its own bounded context, so a coalesced follower with a
// live context must still receive the real payload (not the leader's
// context error), and the entry must land in the cache.
func TestCacheCancelledLeaderDoesNotPoisonWaiters(t *testing.T) {
	c := NewCache(64)
	started := make(chan struct{})
	proceed := make(chan struct{})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Do(leaderCtx, "doc", 3, 0, func(fctx context.Context) ([]byte, bool) {
			close(started)
			select {
			case <-proceed:
			case <-fctx.Done():
				return nil, false // fill bound expired: uncacheable
			}
			return []byte("payload"), true
		})
		leaderErr <- err
	}()
	<-started

	// A follower parks on the leader's flight.
	followerBody := make(chan []byte, 1)
	go func() {
		body, err := c.Do(context.Background(), "doc", 3, 0, func(context.Context) ([]byte, bool) {
			t.Error("follower recomputed a coalesced fill")
			return nil, false
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		followerBody <- body
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}

	// Cancel the leader while the fill is in flight: the leader errors out,
	// the fill keeps running.
	cancelLeader()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	close(proceed)
	if body := <-followerBody; string(body) != "payload" {
		t.Fatalf("follower got %q after leader cancellation", body)
	}
	if _, ok := c.get(cacheKey{hash: cacheHash("doc", 3), top: 3}, "doc"); !ok {
		t.Fatal("detached fill did not populate the cache")
	}
}

// TestCacheEpochRotatesKeys: moving the index visibility epoch must turn a
// warmed key into a miss (annotations may now differ), while requests under
// the unchanged epoch keep hitting — and a pure epoch echo (same value
// again) stays a hit.
func TestCacheEpochRotatesKeys(t *testing.T) {
	c := NewCache(64)
	fill := func(tag string) func(context.Context) ([]byte, bool) {
		return func(context.Context) ([]byte, bool) { return []byte(tag), true }
	}
	if body, _ := c.Do(context.Background(), "doc", 3, 1, fill("epoch1")); string(body) != "epoch1" {
		t.Fatalf("cold fill got %q", body)
	}
	if body, _ := c.Do(context.Background(), "doc", 3, 1, fill("recompute")); string(body) != "epoch1" {
		t.Fatalf("same-epoch request missed: %q", body)
	}
	if body, _ := c.Do(context.Background(), "doc", 3, 2, fill("epoch2")); string(body) != "epoch2" {
		t.Fatalf("epoch move served stale bytes: %q", body)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("counters after epoch rotation: %+v", st)
	}
}

// TestCacheFillTimeoutBoundsDetachedFill: a fill that outlives FillTimeout
// sees its fill context expire even when the caller's context is still
// live — the bound that keeps an abandoned fill from pinning a gate slot
// forever.
func TestCacheFillTimeoutBoundsDetachedFill(t *testing.T) {
	c := NewCache(64)
	c.FillTimeout = 10 * time.Millisecond
	body, err := c.Do(context.Background(), "doc", 3, 0, func(fctx context.Context) ([]byte, bool) {
		select {
		case <-fctx.Done():
			return nil, false
		case <-time.After(5 * time.Second):
			t.Error("fill context never expired")
			return nil, false
		}
	})
	if err != nil {
		t.Fatalf("caller with live context got error %v", err)
	}
	if body != nil {
		t.Fatalf("timed-out fill produced body %q", body)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("uncacheable timed-out fill was stored: %+v", st)
	}
}
