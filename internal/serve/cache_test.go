package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"contextrank/internal/resilience"
)

// TestCacheHitBytesIdenticalToCold is the cache differential: the same
// request served cold, served from cache, and served by a cache-less server
// must produce byte-identical bodies.
func TestCacheHitBytesIdenticalToCold(t *testing.T) {
	srv := testServer(t)
	srv.Cache = NewCache(64)
	h := srv.Handler()
	plain := testServer(t).Handler() // no cache

	req := AnnotateRequest{Text: "the alphaword met the betaword near ctx; email a@b.com", Top: 2}
	cold := postJSON(t, h, "/v1/annotate", req)
	hit := postJSON(t, h, "/v1/annotate", req)
	uncached := postJSON(t, plain, "/v1/annotate", req)
	if cold.Code != http.StatusOK || hit.Code != http.StatusOK {
		t.Fatalf("status cold=%d hit=%d", cold.Code, hit.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatalf("cache hit bytes differ from cold bytes:\ncold %s\nhit  %s", cold.Body, hit.Body)
	}
	if !bytes.Equal(cold.Body.Bytes(), uncached.Body.Bytes()) {
		t.Fatalf("cached server bytes differ from cache-less server:\ncached   %s\nuncached %s", cold.Body, uncached.Body)
	}
	st := srv.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters after cold+hit: %+v", st)
	}

	// Different topN is a different key.
	postJSON(t, h, "/v1/annotate", AnnotateRequest{Text: req.Text, Top: 1})
	if st := srv.Cache.Stats(); st.Misses != 2 {
		t.Fatalf("topN must be part of the key: %+v", st)
	}
}

// TestCacheNeverStoresDegraded: responses produced under shedding (a gate
// with zero capacity sheds everything) must not be cached — a later
// uncontended request has to run the full pipeline.
func TestCacheNeverStoresDegraded(t *testing.T) {
	srv := testServer(t)
	srv.Cache = NewCache(64)
	srv.Gate = resilience.NewGate(1, 0, 0)
	h := srv.Handler()

	// Hold the only slot so the request below is shed.
	release, err := srv.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := AnnotateRequest{Text: "the alphaword story", Top: 1}
	rec := postJSON(t, h, "/v1/annotate", req)
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("request with a full gate should degrade")
	}
	release()

	rec = postJSON(t, h, "/v1/annotate", req)
	var resp2 AnnotateResponse // fresh: degraded is omitempty
	if err := json.Unmarshal(rec.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Degraded {
		t.Fatal("degraded response was served from cache")
	}
	if st := srv.Cache.Stats(); st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("expected 0 hits and only the full response stored: %+v", st)
	}
}

// TestCacheHitBypassesGate: a zero-capacity gate sheds every cold request,
// but a warmed key must still serve the full (cached) response.
func TestCacheHitBypassesGate(t *testing.T) {
	srv := testServer(t)
	srv.Cache = NewCache(64)
	h := srv.Handler()

	req := AnnotateRequest{Text: "the alphaword story", Top: 1}
	postJSON(t, h, "/v1/annotate", req) // warm while unbounded

	srv.Gate = resilience.NewGate(1, 0, 0)
	release, err := srv.Gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := postJSON(t, h, "/v1/annotate", req)
	var resp AnnotateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatal("cache hit went through the (full) admission gate")
	}
	if st := srv.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("expected a cache hit: %+v", st)
	}
}

// TestCacheEviction fills the cache past capacity and checks the eviction
// counter and occupancy bound.
func TestCacheEviction(t *testing.T) {
	c := NewCache(numCacheShards) // one entry per shard
	for i := 0; i < 10*numCacheShards; i++ {
		text := fmt.Sprintf("doc %d", i)
		if _, err := c.Do(context.Background(), text, 3, func() ([]byte, bool) {
			return []byte(text), true
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries > st.Capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", st.Entries, st.Capacity)
	}
	if st.Evictions == 0 {
		t.Fatal("overfilling the cache evicted nothing")
	}
}

// TestCacheCoalescesConcurrentMisses: concurrent misses on one key run the
// pipeline once; followers receive the leader's bytes.
func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	c := NewCache(64)
	computed := 0
	var mu sync.Mutex
	started := make(chan struct{})
	proceed := make(chan struct{})

	const followers = 4
	results := make([][]byte, followers+1)
	var wg sync.WaitGroup
	wg.Add(followers + 1)
	go func() {
		defer wg.Done()
		body, _ := c.Do(context.Background(), "doc", 3, func() ([]byte, bool) {
			mu.Lock()
			computed++
			mu.Unlock()
			close(started)
			<-proceed
			return []byte("payload"), true
		})
		results[0] = body
	}()
	<-started
	for i := 1; i <= followers; i++ {
		go func(i int) {
			defer wg.Done()
			body, err := c.Do(context.Background(), "doc", 3, func() ([]byte, bool) {
				mu.Lock()
				computed++
				mu.Unlock()
				return []byte("payload"), true
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = body
		}(i)
	}
	// Give followers a moment to park on the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(proceed)
	wg.Wait()

	for i, r := range results {
		if string(r) != "payload" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// The leader computes once; a follower may legitimately recompute only
	// if it raced ahead of the flight registration, which the started/park
	// choreography prevents for the leader's window.
	if computed != 1 {
		t.Fatalf("pipeline ran %d times for one key", computed)
	}
	if st := c.Stats(); st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
}
