// Package wiki models the encyclopedia substrate behind the paper's
// interestingness feature (9) wiki_word_count: "number of words in the
// Wikipedia article returned for the concept, and 0 is used if no article
// exists". The paper cites Hu et al. (CIKM 2007) for article length being a
// useful quality proxy.
//
// The synthetic encyclopedia assigns articles preferentially to popular,
// non-low-quality concepts, with word counts that grow with popularity —
// the correlation the learned model exploits.
package wiki

import (
	"math"
	"math/rand"

	"contextrank/internal/world"
)

// Encyclopedia maps concept names to article word counts.
type Encyclopedia struct {
	wordCount map[string]int
}

// Config parameterizes encyclopedia generation.
type Config struct {
	Seed int64
	// MaxWords is the length of the longest article. Default 9000.
	MaxWords int
}

// Build generates the synthetic encyclopedia for the world. A concept gets
// an article with probability rising in Interest (low-quality phrases almost
// never have one); article length is MaxWords·Interest with log-normal
// noise.
func Build(w *world.World, cfg Config) *Encyclopedia {
	if cfg.MaxWords == 0 {
		cfg.MaxWords = 9000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	enc := &Encyclopedia{wordCount: make(map[string]int, len(w.Concepts))}
	for i := range w.Concepts {
		c := &w.Concepts[i]
		pArticle := 0.15 + 0.8*c.Interest
		if c.LowQuality() {
			pArticle = 0.02
		}
		if rng.Float64() >= pArticle {
			continue
		}
		noise := math.Exp(0.4 * rng.NormFloat64())
		words := int(float64(cfg.MaxWords) * (0.1 + 0.9*c.Interest) * noise)
		if words < 30 {
			words = 30
		}
		enc.wordCount[c.Name] = words
	}
	return enc
}

// WordCount returns the article length for the concept, or 0 if no article
// exists — exactly the paper's feature semantics.
func (e *Encyclopedia) WordCount(concept string) int { return e.wordCount[concept] }

// NumArticles returns how many concepts have articles.
func (e *Encyclopedia) NumArticles() int { return len(e.wordCount) }
