package wiki

import (
	"testing"

	"contextrank/internal/world"
)

func testWorld() *world.World {
	return world.New(world.Config{Seed: 41, VocabSize: 1200, NumTopics: 8, NumConcepts: 300})
}

func TestBuildDeterministic(t *testing.T) {
	w := testWorld()
	e1 := Build(w, Config{Seed: 1})
	e2 := Build(w, Config{Seed: 1})
	if e1.NumArticles() != e2.NumArticles() {
		t.Fatal("not deterministic")
	}
	for i := range w.Concepts {
		name := w.Concepts[i].Name
		if e1.WordCount(name) != e2.WordCount(name) {
			t.Fatalf("word counts differ for %q", name)
		}
	}
}

func TestMissingArticleIsZero(t *testing.T) {
	e := Build(testWorld(), Config{Seed: 2})
	if got := e.WordCount("definitely not a concept"); got != 0 {
		t.Fatalf("missing article count = %d", got)
	}
}

func TestPopularConceptsGetLongerArticles(t *testing.T) {
	w := testWorld()
	e := Build(w, Config{Seed: 3})
	var hotSum, hotN, coldSum, coldN float64
	for i := range w.Concepts {
		c := &w.Concepts[i]
		wc := float64(e.WordCount(c.Name))
		if c.Interest > 0.7 {
			hotSum += wc
			hotN++
		} else if c.Interest < 0.1 && !c.LowQuality() {
			coldSum += wc
			coldN++
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Skip("world lacks extremes")
	}
	if hotSum/hotN <= coldSum/coldN {
		t.Fatalf("hot avg %.0f should exceed cold avg %.0f", hotSum/hotN, coldSum/coldN)
	}
}

func TestLowQualityRarelyHasArticles(t *testing.T) {
	w := testWorld()
	e := Build(w, Config{Seed: 4})
	withArticle := 0
	total := 0
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.LowQuality() {
			total++
			if e.WordCount(c.Name) > 0 {
				withArticle++
			}
		}
	}
	if total > 0 && withArticle > total/2 {
		t.Fatalf("%d/%d low-quality concepts have articles", withArticle, total)
	}
}

func TestMinimumArticleLength(t *testing.T) {
	w := testWorld()
	e := Build(w, Config{Seed: 5})
	for i := range w.Concepts {
		if wc := e.WordCount(w.Concepts[i].Name); wc != 0 && wc < 30 {
			t.Fatalf("article with %d words (< 30 floor)", wc)
		}
	}
}
