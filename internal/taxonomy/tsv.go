package taxonomy

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"contextrank/internal/world"
)

// The paper's named-entity detection runs off "editorially reviewed
// dictionaries" shipped as data-packs. This file gives the dictionary a
// human-editable interchange format so editorial teams can maintain it
// outside the binary: one entry per line,
//
//	phrase<TAB>type<TAB>subtype[<TAB>lon,lat]
//
// with '#' comments and blank lines ignored. Ambiguous phrases simply
// appear on multiple lines.

// typeByName reverses world.EntityType.String().
var typeByName = map[string]world.EntityType{
	"person":       world.TypePerson,
	"place":        world.TypePlace,
	"organization": world.TypeOrganization,
	"product":      world.TypeProduct,
	"event":        world.TypeEvent,
	"animal":       world.TypeAnimal,
}

// WriteTSV serializes the dictionary, entries sorted by phrase then type,
// so the output is diff-friendly for editorial review.
func (d *Dictionary) WriteTSV(w io.Writer) error {
	phrases := make([]string, 0, len(d.entries))
	for p := range d.entries {
		phrases = append(phrases, p)
	}
	sort.Strings(phrases)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# phrase\ttype\tsubtype\t[lon,lat]")
	for _, phrase := range phrases {
		entries := append([]Entry(nil), d.entries[phrase]...)
		sort.Slice(entries, func(i, j int) bool { return entries[i].Type < entries[j].Type })
		for _, e := range entries {
			if e.Geo != nil {
				fmt.Fprintf(bw, "%s\t%s\t%s\t%g,%g\n", e.Phrase, e.Type, e.Subtype, e.Geo.Lon, e.Geo.Lat)
			} else {
				fmt.Fprintf(bw, "%s\t%s\t%s\n", e.Phrase, e.Type, e.Subtype)
			}
		}
	}
	return bw.Flush()
}

// ReadTSV parses a dictionary data-pack written by WriteTSV (or by hand).
// Malformed lines fail with their line number so editorial errors are easy
// to locate.
func ReadTSV(r io.Reader) (*Dictionary, error) {
	d := &Dictionary{entries: make(map[string][]Entry)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 3 {
			return nil, fmt.Errorf("taxonomy: line %d: want at least 3 tab-separated fields, got %d", lineNo, len(fields))
		}
		phrase := strings.ToLower(strings.TrimSpace(fields[0]))
		if phrase == "" {
			return nil, fmt.Errorf("taxonomy: line %d: empty phrase", lineNo)
		}
		typ, ok := typeByName[strings.TrimSpace(fields[1])]
		if !ok {
			return nil, fmt.Errorf("taxonomy: line %d: unknown type %q", lineNo, fields[1])
		}
		e := Entry{Phrase: phrase, Type: typ, Subtype: strings.TrimSpace(fields[2])}
		if len(fields) >= 4 && strings.TrimSpace(fields[3]) != "" {
			geo, err := parseGeo(fields[3])
			if err != nil {
				return nil, fmt.Errorf("taxonomy: line %d: %v", lineNo, err)
			}
			e.Geo = geo
		}
		// Reject exact duplicates (same phrase+type), which would make
		// disambiguation votes double-count.
		for _, prev := range d.entries[phrase] {
			if prev.Type == e.Type {
				return nil, fmt.Errorf("taxonomy: line %d: duplicate entry %q/%s", lineNo, phrase, e.Type)
			}
		}
		d.add(e)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("taxonomy: read: %w", err)
	}
	d.buildIndex()
	return d, nil
}

func parseGeo(s string) (*GeoPoint, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad geo %q", s)
	}
	lon, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad longitude %q", parts[0])
	}
	lat, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad latitude %q", parts[1])
	}
	if lon < -180 || lon > 180 || lat < -90 || lat > 90 {
		return nil, fmt.Errorf("geo out of range: %g,%g", lon, lat)
	}
	return &GeoPoint{Lon: lon, Lat: lat}, nil
}
