package taxonomy

import (
	"strings"
	"testing"

	"contextrank/internal/world"
)

func testDict(t testing.TB) (*world.World, *Dictionary) {
	t.Helper()
	w := world.New(world.Config{Seed: 51, VocabSize: 1200, NumTopics: 8, NumConcepts: 300, AmbiguousFraction: 0.2})
	return w, Build(w, 52)
}

func TestBuildCoversTypedConcepts(t *testing.T) {
	w, d := testDict(t)
	typed := 0
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Type == world.TypeNone {
			if d.Lookup(c.Name) != nil && !c.Ambiguous() {
				t.Errorf("abstract concept %q in dictionary", c.Name)
			}
			continue
		}
		typed++
		es := d.Lookup(c.Name)
		if len(es) == 0 {
			t.Errorf("typed concept %q missing from dictionary", c.Name)
			continue
		}
		if es[0].Type != c.Type {
			t.Errorf("type mismatch for %q: %v vs %v", c.Name, es[0].Type, c.Type)
		}
		if es[0].Subtype == "" {
			t.Errorf("empty subtype for %q", c.Name)
		}
	}
	if typed == 0 {
		t.Fatal("no typed concepts in world")
	}
	if d.NumPhrases() == 0 {
		t.Fatal("empty dictionary")
	}
}

func TestPlacesHaveGeo(t *testing.T) {
	w, d := testDict(t)
	checked := 0
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Type != world.TypePlace {
			continue
		}
		es := d.Lookup(c.Name)
		if len(es) == 0 {
			continue
		}
		if es[0].Geo == nil {
			t.Fatalf("place %q has no geo metadata", c.Name)
		}
		g := es[0].Geo
		if g.Lon < -180 || g.Lon > 180 || g.Lat < -90 || g.Lat > 90 {
			t.Fatalf("place %q geo out of range: %+v", c.Name, g)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no places in test world")
	}
}

func TestAmbiguousEntries(t *testing.T) {
	w, d := testDict(t)
	found := false
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Type != world.TypeNone && c.Ambiguous() {
			es := d.Lookup(c.Name)
			if len(es) < 2 {
				t.Fatalf("ambiguous %q has %d entries", c.Name, len(es))
			}
			if es[0].Type == es[1].Type {
				t.Fatalf("ambiguous %q entries share type", c.Name)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("no ambiguous typed concept")
	}
}

func TestHighLevelType(t *testing.T) {
	_, d := testDict(t)
	if got := d.HighLevelType("not in dictionary"); got != world.TypeNone {
		t.Fatalf("missing phrase type = %v", got)
	}
}

func TestFindInTokens(t *testing.T) {
	w, d := testDict(t)
	var c *world.Concept
	for i := range w.Concepts {
		if w.Concepts[i].Type != world.TypeNone && len(w.Concepts[i].Terms) == 2 {
			c = &w.Concepts[i]
			break
		}
	}
	if c == nil {
		t.Skip("no two-term entity")
	}
	tokens := append([]string{"intro", "words"}, c.Terms...)
	tokens = append(tokens, "trailing")
	ms := d.FindInTokens(tokens)
	found := false
	for _, m := range ms {
		if m.Phrase == c.Name && m.Start == 2 && m.End == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("entity %q not found in tokens: %v", c.Name, ms)
	}
}

func TestFindInTokensGreedyLongest(t *testing.T) {
	d := &Dictionary{entries: map[string][]Entry{}}
	d.add(Entry{Phrase: "new york", Type: world.TypePlace})
	d.add(Entry{Phrase: "new york city", Type: world.TypePlace})
	d.buildIndex()
	ms := d.FindInTokens([]string{"new", "york", "city"})
	if len(ms) == 0 || ms[0].Phrase != "new york city" {
		t.Fatalf("expected longest match first: %v", ms)
	}
}

func TestDisambiguateByContext(t *testing.T) {
	d := &Dictionary{entries: map[string][]Entry{}}
	d.add(Entry{Phrase: "jaguar", Type: world.TypeAnimal, Subtype: "mammal"})
	d.add(Entry{Phrase: "jaguar", Type: world.TypeProduct, Subtype: "vehicle"})
	d.add(Entry{Phrase: "rainforest", Type: world.TypeAnimal, Subtype: "mammal"})
	d.add(Entry{Phrase: "sedan", Type: world.TypeProduct, Subtype: "vehicle"})
	d.buildIndex()

	m := d.FindInTokens([]string{"jaguar"})[0]
	animalCtx := []string{"the", "jaguar", "prowled", "the", "rainforest"}
	if got := d.Disambiguate(m, animalCtx); got.Type != world.TypeAnimal {
		t.Fatalf("animal context chose %v", got.Type)
	}
	carCtx := []string{"the", "jaguar", "sedan", "accelerated"}
	if got := d.Disambiguate(m, carCtx); got.Type != world.TypeProduct {
		t.Fatalf("car context chose %v", got.Type)
	}
	// No signal: first entry wins.
	if got := d.Disambiguate(m, []string{"nothing", "useful"}); got.Type != m.Entries[0].Type {
		t.Fatalf("tie should keep primary entry, got %v", got.Type)
	}
}

func TestDisambiguateUnambiguous(t *testing.T) {
	_, d := testDict(t)
	for phrase, es := range map[string][]Entry{} {
		_ = phrase
		_ = es
	}
	m := Match{Phrase: "x", Entries: []Entry{{Phrase: "x", Type: world.TypePerson}}}
	if got := d.Disambiguate(m, nil); got.Type != world.TypePerson {
		t.Fatal("single entry must pass through")
	}
}

func TestMatchSpans(t *testing.T) {
	w, d := testDict(t)
	tokens := strings.Fields("alpha beta gamma delta")
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Type != world.TypeNone {
			tokens = append(tokens, c.Terms...)
		}
		if len(tokens) > 200 {
			break
		}
	}
	for _, m := range d.FindInTokens(tokens) {
		if m.Start < 0 || m.End > len(tokens) || m.End <= m.Start {
			t.Fatalf("bad span %+v", m)
		}
		got := strings.Join(tokens[m.Start:m.End], " ")
		if got != m.Phrase {
			t.Fatalf("span %q != phrase %q", got, m.Phrase)
		}
	}
}

// TestFindInIDsZeroAlloc guards the DESIGN.md §10 contract: phrase terms
// are split once at buildIndex time, and the match path (interning, trie
// walk, disambiguation) never re-splits a phrase or allocates per probe.
func TestFindInIDsZeroAlloc(t *testing.T) {
	d := &Dictionary{entries: map[string][]Entry{}}
	d.add(Entry{Phrase: "new york city", Type: world.TypePlace})
	d.add(Entry{Phrase: "new york", Type: world.TypePlace})
	d.add(Entry{Phrase: "jaguar", Type: world.TypeAnimal})
	d.add(Entry{Phrase: "jaguar", Type: world.TypeProduct})
	d.buildIndex()

	tokens := strings.Fields("the jaguar left new york city for new york again")
	ids := make([]uint32, 0, len(tokens))
	dst := make([]Match, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		ids = d.Vocab().AppendIDs(ids[:0], tokens)
		dst = d.FindInIDs(ids, dst[:0])
		for _, m := range dst {
			d.DisambiguateIDs(m, ids)
		}
	})
	if allocs != 0 {
		t.Fatalf("id match path allocated %.1f objects per run", allocs)
	}
	if len(dst) == 0 {
		t.Fatal("expected matches")
	}
}
