// Package taxonomy implements the editorially-reviewed entity dictionaries
// of Contextual Shortcuts: "categorized terms and phrases according to a
// pre-defined taxonomy ... a handful major types, such as people,
// organizations, places, events, animals, products, and each of these major
// types contains a large number of subtypes". Named entities are detected by
// dictionary lookup; ambiguous terms ("jaguar") carry multiple entries and
// are disambiguated downstream. Location entries carry geo metadata in their
// data-packs.
package taxonomy

import (
	"math/rand"
	"sort"
	"strings"

	"contextrank/internal/match"
	"contextrank/internal/world"
)

// Entry is one dictionary record for a phrase under one type.
type Entry struct {
	// Phrase is the lower-case dictionary phrase.
	Phrase string
	// Type is the major taxonomy type.
	Type world.EntityType
	// Subtype refines the type ("actor", "city", ...).
	Subtype string
	// Geo carries longitude/latitude metadata for places ("In the case of
	// locations, the meta-data contained geo-location information").
	Geo *GeoPoint
}

// GeoPoint is a longitude/latitude pair.
type GeoPoint struct {
	Lon, Lat float64
}

// Dictionary is the in-memory data-pack of editorial entries, pre-loaded
// "to allow for high-performance entity detection". buildIndex compiles the
// phrases into a token-trie matcher over an interned vocabulary so the
// serving path scans a document in one pass with zero per-probe
// allocations (DESIGN.md §10).
type Dictionary struct {
	entries map[string][]Entry // phrase -> entries (multiple when ambiguous)
	vocab   *match.Vocab
	matcher *match.Matcher
	pats    []dictPattern // pattern id -> payload
}

// dictPattern is the per-phrase payload resolved by a trie match. Terms are
// split once at buildIndex time; nothing on the match path re-splits a
// phrase (guarded by TestFindInIDsZeroAlloc).
type dictPattern struct {
	phrase  string
	terms   []string
	entries []Entry
}

// Build constructs the dictionary from the world's typed concepts. An
// ambiguous concept (two senses) receives a second entry under a different
// type, mirroring "it is possible that a named entity can be a member of
// multiple types, such as the term jaguar".
func Build(w *world.World, seed int64) *Dictionary {
	rng := rand.New(rand.NewSource(seed))
	d := &Dictionary{entries: make(map[string][]Entry)}
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Type == world.TypeNone {
			continue
		}
		e := Entry{Phrase: c.Name, Type: c.Type, Subtype: c.Subtype}
		if c.Type == world.TypePlace {
			e.Geo = &GeoPoint{
				Lon: -180 + 360*rng.Float64(),
				Lat: -90 + 180*rng.Float64(),
			}
		}
		d.add(e)
		if c.Ambiguous() {
			alt := altType(c.Type)
			d.add(Entry{Phrase: c.Name, Type: alt, Subtype: firstSubtype(alt)})
		}
	}
	d.buildIndex()
	return d
}

// altType picks a deterministic different type for an ambiguous entry.
func altType(t world.EntityType) world.EntityType {
	if t == world.TypeAnimal {
		return world.TypeProduct // the jaguar case
	}
	return world.TypeAnimal
}

func firstSubtype(t world.EntityType) string {
	switch t {
	case world.TypePerson:
		return "actor"
	case world.TypePlace:
		return "city"
	case world.TypeOrganization:
		return "company"
	case world.TypeProduct:
		return "gadget"
	case world.TypeEvent:
		return "festival"
	case world.TypeAnimal:
		return "mammal"
	}
	return ""
}

func (d *Dictionary) add(e Entry) {
	d.entries[e.Phrase] = append(d.entries[e.Phrase], e)
}

// buildIndex compiles the loaded phrases into the trie matcher. Phrases are
// split into terms exactly once, here; pattern ids are assigned in sorted
// phrase order so two dictionaries with the same entries compile identical
// matchers regardless of map iteration order.
func (d *Dictionary) buildIndex() {
	phrases := make([]string, 0, len(d.entries))
	for phrase := range d.entries {
		phrases = append(phrases, phrase)
	}
	sort.Strings(phrases)
	b := match.NewBuilder(nil)
	d.pats = make([]dictPattern, 0, len(phrases))
	for _, phrase := range phrases {
		terms := strings.Fields(phrase)
		if len(terms) == 0 {
			continue
		}
		if id := b.Add(terms); id != len(d.pats) {
			// Phrases are unique map keys, so ids are dense and in order.
			panic("taxonomy: non-dense pattern id")
		}
		d.pats = append(d.pats, dictPattern{phrase: phrase, terms: terms, entries: d.entries[phrase]})
	}
	d.matcher = b.Build()
	d.vocab = b.Vocab()
}

// Vocab exposes the interned phrase vocabulary so the detection pipeline
// can map a document's tokens to ids once per document.
func (d *Dictionary) Vocab() *match.Vocab { return d.vocab }

// NumPhrases returns the number of distinct dictionary phrases.
func (d *Dictionary) NumPhrases() int { return len(d.entries) }

// Lookup returns the entries for the exact phrase (nil if absent). Multiple
// entries signal an ambiguous phrase.
func (d *Dictionary) Lookup(phrase string) []Entry { return d.entries[phrase] }

// HighLevelType returns the major type of the phrase's first entry, or
// TypeNone — this backs the paper's interestingness feature (8)
// high_level_type.
func (d *Dictionary) HighLevelType(phrase string) world.EntityType {
	es := d.entries[phrase]
	if len(es) == 0 {
		return world.TypeNone
	}
	return es[0].Type
}

// Match is one dictionary phrase occurrence in a token sequence.
type Match struct {
	// Phrase is the matched dictionary phrase.
	Phrase string
	// Entries are the dictionary entries for the phrase.
	Entries []Entry
	// Start and End are token indexes ([Start,End)).
	Start, End int
}

// FindInTokens scans normalized tokens for dictionary phrases,
// greedy-longest at each position. Compatibility wrapper around the id
// path: it interns the tokens per call, so hot callers should intern once
// with Vocab().AppendIDs and use FindInIDs instead.
func (d *Dictionary) FindInTokens(tokens []string) []Match {
	if len(tokens) == 0 {
		return nil
	}
	ids := d.vocab.AppendIDs(make([]uint32, 0, len(tokens)), tokens)
	return d.FindInIDs(ids, nil)
}

// FindInIDs scans interned token ids (from Vocab().AppendIDs) and appends
// the matches to dst, returning it. With a pre-sized dst the scan performs
// zero allocations.
//
//kw:hotpath
func (d *Dictionary) FindInIDs(ids []uint32, dst []Match) []Match {
	for i := 0; i < len(ids); i++ {
		if p, end, ok := d.matcher.LongestAt(ids, i); ok {
			pat := &d.pats[p]
			dst = append(dst, Match{Phrase: pat.phrase, Entries: pat.entries, Start: i, End: end})
		}
	}
	return dst
}

// entityTypeRange bounds the per-type vote arrays used by disambiguation
// (EntityType values are a small closed enum; see world.EntityType).
const entityTypeRange = int(world.TypeAnimal) + 1

// Disambiguate selects the best entry for a match given the surrounding
// normalized context tokens. The heuristic scores each entry's type by
// co-occurrence of type-indicative dictionary neighbours: entries whose type
// appears more among unambiguous dictionary matches in the context win; on a
// tie the first (editorially primary) entry is kept.
func (d *Dictionary) Disambiguate(m Match, context []string) Entry {
	if len(m.Entries) == 1 {
		return m.Entries[0]
	}
	ids := d.vocab.AppendIDs(make([]uint32, 0, len(context)), context)
	return *d.DisambiguateIDs(m, ids)
}

// DisambiguateIDs is Disambiguate over pre-interned context ids. It
// allocates nothing and returns a pointer into the dictionary's entry
// table, which is immutable after load — callers must treat it as
// read-only.
func (d *Dictionary) DisambiguateIDs(m Match, ctx []uint32) *Entry {
	if len(m.Entries) == 1 {
		return &m.Entries[0]
	}
	var votes [entityTypeRange]int
	for i := 0; i < len(ctx); i++ {
		if p, _, ok := d.matcher.LongestAt(ctx, i); ok {
			// Only unambiguous neighbours vote; the ambiguous phrase under
			// disambiguation has ≥ 2 entries and so can never vote for
			// itself.
			if es := d.pats[p].entries; len(es) == 1 {
				votes[es[0].Type]++
			}
		}
	}
	best := 0
	bestVotes := votes[m.Entries[0].Type]
	for i := 1; i < len(m.Entries); i++ {
		if v := votes[m.Entries[i].Type]; v > bestVotes {
			best, bestVotes = i, v
		}
	}
	return &m.Entries[best]
}
