// Package taxonomy implements the editorially-reviewed entity dictionaries
// of Contextual Shortcuts: "categorized terms and phrases according to a
// pre-defined taxonomy ... a handful major types, such as people,
// organizations, places, events, animals, products, and each of these major
// types contains a large number of subtypes". Named entities are detected by
// dictionary lookup; ambiguous terms ("jaguar") carry multiple entries and
// are disambiguated downstream. Location entries carry geo metadata in their
// data-packs.
package taxonomy

import (
	"math/rand"
	"sort"
	"strings"

	"contextrank/internal/world"
)

// Entry is one dictionary record for a phrase under one type.
type Entry struct {
	// Phrase is the lower-case dictionary phrase.
	Phrase string
	// Type is the major taxonomy type.
	Type world.EntityType
	// Subtype refines the type ("actor", "city", ...).
	Subtype string
	// Geo carries longitude/latitude metadata for places ("In the case of
	// locations, the meta-data contained geo-location information").
	Geo *GeoPoint
}

// GeoPoint is a longitude/latitude pair.
type GeoPoint struct {
	Lon, Lat float64
}

// Dictionary is the in-memory data-pack of editorial entries, pre-loaded
// "to allow for high-performance entity detection".
type Dictionary struct {
	entries map[string][]Entry // phrase -> entries (multiple when ambiguous)
	byFirst map[string][]string
	maxLen  int
}

// Build constructs the dictionary from the world's typed concepts. An
// ambiguous concept (two senses) receives a second entry under a different
// type, mirroring "it is possible that a named entity can be a member of
// multiple types, such as the term jaguar".
func Build(w *world.World, seed int64) *Dictionary {
	rng := rand.New(rand.NewSource(seed))
	d := &Dictionary{
		entries: make(map[string][]Entry),
		byFirst: make(map[string][]string),
	}
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Type == world.TypeNone {
			continue
		}
		e := Entry{Phrase: c.Name, Type: c.Type, Subtype: c.Subtype}
		if c.Type == world.TypePlace {
			e.Geo = &GeoPoint{
				Lon: -180 + 360*rng.Float64(),
				Lat: -90 + 180*rng.Float64(),
			}
		}
		d.add(e)
		if c.Ambiguous() {
			alt := altType(c.Type)
			d.add(Entry{Phrase: c.Name, Type: alt, Subtype: firstSubtype(alt)})
		}
	}
	d.buildIndex()
	return d
}

// altType picks a deterministic different type for an ambiguous entry.
func altType(t world.EntityType) world.EntityType {
	if t == world.TypeAnimal {
		return world.TypeProduct // the jaguar case
	}
	return world.TypeAnimal
}

func firstSubtype(t world.EntityType) string {
	switch t {
	case world.TypePerson:
		return "actor"
	case world.TypePlace:
		return "city"
	case world.TypeOrganization:
		return "company"
	case world.TypeProduct:
		return "gadget"
	case world.TypeEvent:
		return "festival"
	case world.TypeAnimal:
		return "mammal"
	}
	return ""
}

func (d *Dictionary) add(e Entry) {
	d.entries[e.Phrase] = append(d.entries[e.Phrase], e)
}

func (d *Dictionary) buildIndex() {
	for phrase := range d.entries {
		terms := strings.Fields(phrase)
		if len(terms) == 0 {
			continue
		}
		d.byFirst[terms[0]] = append(d.byFirst[terms[0]], phrase)
		if len(terms) > d.maxLen {
			d.maxLen = len(terms)
		}
	}
	for first := range d.byFirst {
		ps := d.byFirst[first]
		sort.Slice(ps, func(i, j int) bool {
			li, lj := strings.Count(ps[i], " "), strings.Count(ps[j], " ")
			if li != lj {
				return li > lj
			}
			return ps[i] < ps[j]
		})
	}
}

// NumPhrases returns the number of distinct dictionary phrases.
func (d *Dictionary) NumPhrases() int { return len(d.entries) }

// Lookup returns the entries for the exact phrase (nil if absent). Multiple
// entries signal an ambiguous phrase.
func (d *Dictionary) Lookup(phrase string) []Entry { return d.entries[phrase] }

// HighLevelType returns the major type of the phrase's first entry, or
// TypeNone — this backs the paper's interestingness feature (8)
// high_level_type.
func (d *Dictionary) HighLevelType(phrase string) world.EntityType {
	es := d.entries[phrase]
	if len(es) == 0 {
		return world.TypeNone
	}
	return es[0].Type
}

// Match is one dictionary phrase occurrence in a token sequence.
type Match struct {
	// Phrase is the matched dictionary phrase.
	Phrase string
	// Entries are the dictionary entries for the phrase.
	Entries []Entry
	// Start and End are token indexes ([Start,End)).
	Start, End int
}

// FindInTokens scans normalized tokens for dictionary phrases,
// greedy-longest at each position.
func (d *Dictionary) FindInTokens(tokens []string) []Match {
	var out []Match
	for i := 0; i < len(tokens); i++ {
		for _, phrase := range d.byFirst[tokens[i]] {
			terms := strings.Fields(phrase)
			if i+len(terms) > len(tokens) {
				continue
			}
			ok := true
			for j, term := range terms {
				if tokens[i+j] != term {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, Match{
					Phrase:  phrase,
					Entries: d.entries[phrase],
					Start:   i,
					End:     i + len(terms),
				})
				break
			}
		}
	}
	return out
}

// Disambiguate selects the best entry for a match given the surrounding
// normalized context tokens. The heuristic scores each entry's type by
// co-occurrence of type-indicative dictionary neighbours: entries whose type
// appears more among unambiguous dictionary matches in the context win; on a
// tie the first (editorially primary) entry is kept.
func (d *Dictionary) Disambiguate(m Match, context []string) Entry {
	if len(m.Entries) == 1 {
		return m.Entries[0]
	}
	typeVotes := make(map[world.EntityType]int)
	for _, cm := range d.FindInTokens(context) {
		if cm.Phrase == m.Phrase || len(cm.Entries) != 1 {
			continue
		}
		typeVotes[cm.Entries[0].Type]++
	}
	best := m.Entries[0]
	bestVotes := typeVotes[best.Type]
	for _, e := range m.Entries[1:] {
		if v := typeVotes[e.Type]; v > bestVotes {
			best, bestVotes = e, v
		}
	}
	return best
}
