package taxonomy

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"contextrank/internal/world"
)

func TestTSVRoundtrip(t *testing.T) {
	w := world.New(world.Config{Seed: 221, VocabSize: 1200, NumTopics: 8, NumConcepts: 200, AmbiguousFraction: 0.2})
	d := Build(w, 222)

	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPhrases() != d.NumPhrases() {
		t.Fatalf("phrases %d != %d", got.NumPhrases(), d.NumPhrases())
	}
	for phrase, want := range d.entries {
		ge := got.Lookup(phrase)
		if len(ge) != len(want) {
			t.Fatalf("%q: %d entries != %d", phrase, len(ge), len(want))
		}
		// Compare as sets over (type, subtype, geo).
		for _, we := range want {
			found := false
			for _, g := range ge {
				if g.Type == we.Type && g.Subtype == we.Subtype && reflect.DeepEqual(g.Geo, we.Geo) {
					found = true
				}
			}
			if !found {
				t.Fatalf("%q: entry %+v lost in roundtrip", phrase, we)
			}
		}
	}
}

func TestTSVDeterministicOutput(t *testing.T) {
	w := world.New(world.Config{Seed: 223, VocabSize: 800, NumTopics: 6, NumConcepts: 80})
	d := Build(w, 224)
	var b1, b2 bytes.Buffer
	if err := d.WriteTSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteTSV(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("WriteTSV not deterministic")
	}
}

func TestReadTSVHandEdited(t *testing.T) {
	src := `# editorial data-pack
jaguar	animal	mammal
jaguar	product	vehicle

springfield	place	city	-89.65,39.78
new york city	place	city	-74.0,40.7
`
	d, err := ReadTSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Lookup("jaguar"); len(got) != 2 {
		t.Fatalf("jaguar entries = %d", len(got))
	}
	sp := d.Lookup("springfield")
	if len(sp) != 1 || sp[0].Geo == nil || sp[0].Geo.Lat != 39.78 {
		t.Fatalf("springfield = %+v", sp)
	}
	// Detection works off the loaded pack.
	ms := d.FindInTokens([]string{"visit", "new", "york", "city", "zoo"})
	if len(ms) == 0 || ms[0].Phrase != "new york city" {
		t.Fatalf("FindInTokens = %+v", ms)
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "onlyphrase\tperson\n",
		"unknown type":    "x\twizard\tmage\n",
		"empty phrase":    "\tperson\tactor\n",
		"bad geo":         "x\tplace\tcity\tnotageo\n",
		"geo range":       "x\tplace\tcity\t500,10\n",
		"duplicate entry": "x\tperson\tactor\nx\tperson\tmusician\n",
	}
	for name, src := range cases {
		if _, err := ReadTSV(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadTSVLineNumbersInErrors(t *testing.T) {
	src := "ok\tperson\tactor\nbroken line here\n"
	_, err := ReadTSV(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name line 2: %v", err)
	}
}
