package taxonomy

import (
	"reflect"
	"strings"
	"testing"

	"contextrank/internal/newsgen"
	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

// referenceFind is the pre-trie scanner semantics, kept as executable
// specification: at every position try phrases greedy-longest by re-joining
// token windows against the entries map, and always advance one token.
// FindInTokens (now a trie walk over interned ids) must stay bit-identical
// to it.
func referenceFind(d *Dictionary, tokens []string) []Match {
	maxLen := 0
	for phrase := range d.entries {
		if n := len(strings.Fields(phrase)); n > maxLen {
			maxLen = n
		}
	}
	var out []Match
	for i := 0; i < len(tokens); i++ {
		for n := maxLen; n >= 1; n-- {
			if i+n > len(tokens) {
				continue
			}
			phrase := strings.Join(tokens[i:i+n], " ")
			if entries, ok := d.entries[phrase]; ok {
				out = append(out, Match{Phrase: phrase, Entries: entries, Start: i, End: i + n})
				break
			}
		}
	}
	return out
}

// TestDifferentialTrieVsReference scans a generated news corpus with both
// the trie matcher and the reference scanner and requires bit-identical
// match streams — the core equivalence claim of the detection rewrite.
func TestDifferentialTrieVsReference(t *testing.T) {
	w := world.New(world.Config{Seed: 71, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	d := Build(w, 72)
	docs := newsgen.Generate(w, newsgen.Config{Seed: 73, NumStories: 30, MinSentences: 5, MaxSentences: 15})
	matched := 0
	for _, doc := range docs {
		tokens := textproc.Words(doc.Text)
		got := d.FindInTokens(tokens)
		want := referenceFind(d, tokens)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trie and reference scanner disagree on story %d:\n got %+v\nwant %+v", doc.ID, got, want)
		}
		matched += len(got)
	}
	if matched == 0 {
		t.Fatal("differential corpus produced no matches — test is vacuous")
	}
}

// TestDifferentialDisambiguation checks DisambiguateIDs against the
// string-based Disambiguate on every ambiguous match of the corpus.
func TestDifferentialDisambiguation(t *testing.T) {
	w := world.New(world.Config{Seed: 71, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	d := Build(w, 72)
	docs := newsgen.Generate(w, newsgen.Config{Seed: 74, NumStories: 30, MinSentences: 5, MaxSentences: 15})
	checked := 0
	for _, doc := range docs {
		tokens := textproc.Words(doc.Text)
		ids := d.Vocab().AppendIDs(nil, tokens)
		for _, m := range d.FindInIDs(ids, nil) {
			lo, hi := m.Start-25, m.End+25
			if lo < 0 {
				lo = 0
			}
			if hi > len(tokens) {
				hi = len(tokens)
			}
			want := d.Disambiguate(m, tokens[lo:hi])
			got := d.DisambiguateIDs(m, ids[lo:hi])
			if got == nil || !reflect.DeepEqual(*got, want) {
				t.Fatalf("disambiguation disagrees for %q: got %+v want %+v", m.Phrase, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no matches disambiguated — test is vacuous")
	}
}
