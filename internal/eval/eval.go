// Package eval implements the paper's evaluation metrics: the pairwise
// error rate, the CTR-weighted error rate (paper Eq. 5), the NDCG measure
// with CTR-bucket judgements (paper Eq. 6), and the k-fold cross-validation
// split used in §V-A.
package eval

import (
	"math"
	"math/rand"
	"sort"
)

// Accumulator aggregates pairwise ranking mistakes over many documents, as
// the paper reports a single error rate over all preference pairs in the
// test set. Predicted ties count as half a mistake — the expectation of the
// paper's "in the case of ties, we assume a random ordering of concepts".
type Accumulator struct {
	mistakes, pairs   float64
	wMistakes, wTotal float64
}

// Add registers one document's predicted scores and true CTRs (parallel
// slices). Every ordered pair with truth[i] > truth[j] is a preference pair;
// it is a mistake if pred[i] < pred[j], and half a mistake if pred[i] ==
// pred[j].
func (a *Accumulator) Add(pred, truth []float64) {
	for i := range truth {
		for j := range truth {
			diff := truth[i] - truth[j]
			if diff <= 0 {
				continue
			}
			a.pairs++
			a.wTotal += diff
			switch {
			case pred[i] < pred[j]:
				a.mistakes++
				a.wMistakes += diff
			case pred[i] <= pred[j]: // not < and not >: a predicted tie
				a.mistakes += 0.5
				a.wMistakes += 0.5 * diff
			}
		}
	}
}

// Merge folds another accumulator's tallies into a. Merging per-fold
// accumulators in fold order reproduces, bit for bit, what serial
// accumulation over the same fold/document order would produce — the
// property the parallel cross-validation driver relies on.
func (a *Accumulator) Merge(b Accumulator) {
	a.mistakes += b.mistakes
	a.pairs += b.pairs
	a.wMistakes += b.wMistakes
	a.wTotal += b.wTotal
}

// Pairs returns the number of preference pairs seen.
func (a *Accumulator) Pairs() float64 { return a.pairs }

// ErrorRate returns |mistaken pairs| / |all pairs| (the unweighted metric
// of references [22,23,24]).
func (a *Accumulator) ErrorRate() float64 {
	if a.pairs == 0 {
		return 0
	}
	return a.mistakes / a.pairs
}

// WeightedErrorRate returns Σ_mistakes ΔCTR / Σ_allpairs ΔCTR — paper Eq. 5,
// which "punish[es] mistakes according to their CTR differences".
func (a *Accumulator) WeightedErrorRate() float64 {
	if a.wTotal == 0 {
		return 0
	}
	return a.wMistakes / a.wTotal
}

// ErrorRate is a convenience for a single document.
func ErrorRate(pred, truth []float64) float64 {
	var a Accumulator
	a.Add(pred, truth)
	return a.ErrorRate()
}

// WeightedErrorRate is a convenience for a single document.
func WeightedErrorRate(pred, truth []float64) float64 {
	var a Accumulator
	a.Add(pred, truth)
	return a.WeightedErrorRate()
}

// NumBuckets is the CTR bucket resolution of the paper's gain function:
// "bucketNo() simply returns a bucket number between 0 and 1000 considering
// all the CTR values observed in the system in increasing order. By dividing
// the bucket number by 100, we basically obtain a judgement score between
// 0.00 and 10.00."
const NumBuckets = 1000

// Bucketizer maps CTR values to judgement scores via rank quantiles over
// all CTRs observed in the system.
type Bucketizer struct {
	sorted []float64
}

// NewBucketizer builds a bucketizer from every CTR observed.
func NewBucketizer(allCTRs []float64) *Bucketizer {
	s := make([]float64, len(allCTRs))
	copy(s, allCTRs)
	sort.Float64s(s)
	return &Bucketizer{sorted: s}
}

// Bucket returns the bucket number of ctr in [0, NumBuckets].
func (b *Bucketizer) Bucket(ctr float64) int {
	if len(b.sorted) == 0 {
		return 0
	}
	// Rank of ctr among observed values (first index > ctr).
	rank := sort.SearchFloat64s(b.sorted, ctr)
	// Extend to count equal values as included.
	for rank < len(b.sorted) && b.sorted[rank] <= ctr {
		rank++
	}
	return rank * NumBuckets / len(b.sorted)
}

// Judgement returns bucket/100, a score in [0,10].
func (b *Bucketizer) Judgement(ctr float64) float64 {
	return float64(b.Bucket(ctr)) / 100.0
}

// NDCG computes the normalized discounted cumulative gain at k for one
// document: pred are the model scores, truth the CTRs, and judge maps a CTR
// to the gain-function score (paper: judge = Bucketizer.Judgement). Gain is
// 2^score − 1 and the discount is ln(j+1) per Eq. 6; the result is
// normalized by the ideal ordering's DCG so a perfect ranking scores 1.0.
// Documents with zero ideal DCG return 1.0 (nothing to get wrong).
func NDCG(pred, truth []float64, k int, judge func(float64) float64) float64 {
	n := len(truth)
	if n == 0 {
		return 1
	}
	if k <= 0 || k > n {
		k = n
	}
	order := argsortDesc(pred)
	ideal := argsortDesc(truth)
	dcg, idcg := 0.0, 0.0
	for j := 0; j < k; j++ {
		discount := math.Log(float64(j) + 2) // ln(j+1) with 1-based j
		dcg += (math.Pow(2, judge(truth[order[j]])) - 1) / discount
		idcg += (math.Pow(2, judge(truth[ideal[j]])) - 1) / discount
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}

// argsortDesc returns indexes sorted by decreasing value, stable.
func argsortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}

// MeanNDCG averages NDCG@k over documents; docs is a list of (pred, truth)
// pairs sharing one bucketizer.
func MeanNDCG(docs [][2][]float64, k int, judge func(float64) float64) float64 {
	if len(docs) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range docs {
		sum += NDCG(d[0], d[1], k, judge)
	}
	return sum / float64(len(docs))
}

// KFold assigns n items to k folds uniformly at random (deterministic in
// seed) and returns the folds as index slices. Used for the paper's
// "five-fold cross-validation process: We randomly partitioned our document
// set into five subsets".
func KFold(n, k int, seed int64) [][]int {
	if k <= 0 {
		k = 5
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	folds := make([][]int, k)
	for i, p := range perm {
		folds[i%k] = append(folds[i%k], p)
	}
	for _, f := range folds {
		sort.Ints(f)
	}
	return folds
}
