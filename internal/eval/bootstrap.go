package eval

import (
	"math/rand"
	"sort"
)

// This file adds the statistical rigor the paper's comparisons imply: a
// paired bootstrap test over documents for the difference in weighted error
// rate between two rankings. "System A beats system B" is only meaningful
// if the improvement survives resampling of the evaluation documents.

// DocPair is one document's predictions under two systems plus the truth.
type DocPair struct {
	// PredA and PredB are the two systems' scores for the document's items.
	PredA, PredB []float64
	// Truth is the CTR labels.
	Truth []float64
}

// BootstrapResult summarizes the paired bootstrap.
type BootstrapResult struct {
	// DeltaObserved is weightedErr(A) − weightedErr(B) on the full set
	// (negative = A better).
	DeltaObserved float64
	// CILow and CIHigh bound the 95% percentile confidence interval of the
	// delta.
	CILow, CIHigh float64
	// PValue is the two-sided bootstrap p-value for delta = 0.
	PValue float64
	// Samples is the number of bootstrap resamples drawn.
	Samples int
}

// Significant reports whether the observed difference is significant at
// the 5% level.
func (r BootstrapResult) Significant() bool { return r.PValue < 0.05 }

// weightedDelta computes weightedErr(A) − weightedErr(B) over a multiset of
// document indexes.
func weightedDelta(docs []DocPair, idxs []int) float64 {
	var a, b Accumulator
	for _, i := range idxs {
		a.Add(docs[i].PredA, docs[i].Truth)
		b.Add(docs[i].PredB, docs[i].Truth)
	}
	return a.WeightedErrorRate() - b.WeightedErrorRate()
}

// PairedBootstrap resamples documents with replacement and estimates the
// sampling distribution of the weighted-error difference between systems A
// and B. samples <= 0 selects 1000.
func PairedBootstrap(docs []DocPair, samples int, seed int64) BootstrapResult {
	if samples <= 0 {
		samples = 1000
	}
	n := len(docs)
	res := BootstrapResult{Samples: samples, PValue: 1}
	if n == 0 {
		return res
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	res.DeltaObserved = weightedDelta(docs, all)

	rng := rand.New(rand.NewSource(seed))
	deltas := make([]float64, samples)
	idxs := make([]int, n)
	signFlips := 0
	for s := 0; s < samples; s++ {
		for i := range idxs {
			idxs[i] = rng.Intn(n)
		}
		deltas[s] = weightedDelta(docs, idxs)
		// Count resamples where the delta crosses zero relative to the
		// observed direction.
		if (res.DeltaObserved < 0 && deltas[s] >= 0) ||
			(res.DeltaObserved > 0 && deltas[s] <= 0) ||
			res.DeltaObserved == 0 {
			signFlips++
		}
	}
	sort.Float64s(deltas)
	lo := int(0.025 * float64(samples))
	hi := int(0.975 * float64(samples))
	if hi >= samples {
		hi = samples - 1
	}
	res.CILow, res.CIHigh = deltas[lo], deltas[hi]
	// Two-sided bootstrap p-value.
	res.PValue = 2 * float64(signFlips) / float64(samples)
	if res.PValue > 1 {
		res.PValue = 1
	}
	return res
}
