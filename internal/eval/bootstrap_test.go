package eval

import (
	"math/rand"
	"testing"
)

// genDocs builds documents where system A has accuracy accA of ordering
// each pair correctly and B accuracy accB.
func genDocs(rng *rand.Rand, n int, accA, accB float64) []DocPair {
	docs := make([]DocPair, n)
	for d := range docs {
		items := 4 + rng.Intn(4)
		truth := make([]float64, items)
		for i := range truth {
			truth[i] = rng.Float64() * 0.2
		}
		mk := func(acc float64) []float64 {
			pred := make([]float64, items)
			for i := range pred {
				if rng.Float64() < acc {
					pred[i] = truth[i]
				} else {
					pred[i] = rng.Float64() * 0.2
				}
			}
			return pred
		}
		docs[d] = DocPair{PredA: mk(accA), PredB: mk(accB), Truth: truth}
	}
	return docs
}

func TestBootstrapDetectsRealDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	docs := genDocs(rng, 300, 0.95, 0.3)
	res := PairedBootstrap(docs, 500, 2)
	if res.DeltaObserved >= 0 {
		t.Fatalf("A should have lower error: delta = %v", res.DeltaObserved)
	}
	if !res.Significant() {
		t.Fatalf("large real difference not significant: %+v", res)
	}
	if res.CIHigh >= 0 {
		t.Fatalf("CI should exclude zero: [%v, %v]", res.CILow, res.CIHigh)
	}
}

func TestBootstrapNullDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs := genDocs(rng, 200, 0.6, 0.6)
	res := PairedBootstrap(docs, 500, 4)
	if res.Significant() {
		t.Fatalf("identical systems reported significant: %+v", res)
	}
	if res.CILow > 0 || res.CIHigh < 0 {
		t.Fatalf("CI should cover zero: [%v, %v]", res.CILow, res.CIHigh)
	}
}

func TestBootstrapCIOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	docs := genDocs(rng, 100, 0.8, 0.5)
	res := PairedBootstrap(docs, 300, 6)
	if res.CILow > res.CIHigh {
		t.Fatalf("CI bounds inverted: [%v, %v]", res.CILow, res.CIHigh)
	}
	if res.DeltaObserved < res.CILow-0.1 || res.DeltaObserved > res.CIHigh+0.1 {
		t.Fatalf("observed delta far outside CI: %v vs [%v, %v]", res.DeltaObserved, res.CILow, res.CIHigh)
	}
}

func TestBootstrapEmpty(t *testing.T) {
	res := PairedBootstrap(nil, 100, 1)
	if res.DeltaObserved != 0 || res.Significant() {
		t.Fatalf("empty input: %+v", res)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := genDocs(rng, 50, 0.9, 0.4)
	r1 := PairedBootstrap(docs, 200, 8)
	r2 := PairedBootstrap(docs, 200, 8)
	if r1 != r2 {
		t.Fatal("bootstrap not deterministic for fixed seed")
	}
}
