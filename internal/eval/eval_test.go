package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The paper's worked example (§V-A.2): perfect ranking [A,B,C,D] with CTRs
// [0.15, 0.05, 0.02, 0.01]; prediction R1=[A,B,D,C] and R2=[B,A,C,D] both
// have plain error rate 16.67%, but weighted error rates 2.22% and 22.22%.
func paperExample() (truth []float64, r1, r2 []float64) {
	truth = []float64{0.15, 0.05, 0.02, 0.01} // A, B, C, D
	// Encode predicted rankings as descending scores by position.
	// R1 = [A,B,D,C]: A=4, B=3, D=2, C=1.
	r1 = []float64{4, 3, 1, 2}
	// R2 = [B,A,C,D]: B=4, A=3, C=2, D=1.
	r2 = []float64{3, 4, 2, 1}
	return
}

func TestErrorRatePaperExample(t *testing.T) {
	truth, r1, r2 := paperExample()
	if got := ErrorRate(r1, truth); math.Abs(got-1.0/6) > 1e-9 {
		t.Fatalf("R1 error rate = %v, want 1/6", got)
	}
	if got := ErrorRate(r2, truth); math.Abs(got-1.0/6) > 1e-9 {
		t.Fatalf("R2 error rate = %v, want 1/6", got)
	}
}

func TestWeightedErrorRatePaperExample(t *testing.T) {
	truth, r1, r2 := paperExample()
	// Total ΔCTR over the 6 pairs: (A,B).10+(A,C).13+(A,D).14+(B,C).03+(B,D).04+(C,D).01 = 0.45.
	// R1's only mistake is (C,D): 0.01/0.45 = 2.22%.
	if got := WeightedErrorRate(r1, truth); math.Abs(got-0.01/0.45) > 1e-9 {
		t.Fatalf("R1 weighted = %v, want %.4f", got, 0.01/0.45)
	}
	// R2's only mistake is (A,B): 0.10/0.45 = 22.22%.
	if got := WeightedErrorRate(r2, truth); math.Abs(got-0.10/0.45) > 1e-9 {
		t.Fatalf("R2 weighted = %v, want %.4f", got, 0.10/0.45)
	}
}

func TestPerfectAndReversedRankings(t *testing.T) {
	truth := []float64{0.4, 0.3, 0.2, 0.1}
	perfect := []float64{4, 3, 2, 1}
	reversed := []float64{1, 2, 3, 4}
	if got := WeightedErrorRate(perfect, truth); got != 0 {
		t.Fatalf("perfect ranking error = %v", got)
	}
	if got := WeightedErrorRate(reversed, truth); got != 1 {
		t.Fatalf("reversed ranking error = %v", got)
	}
}

func TestTiesCountHalf(t *testing.T) {
	truth := []float64{0.2, 0.1}
	tied := []float64{1, 1}
	if got := ErrorRate(tied, truth); got != 0.5 {
		t.Fatalf("tied error = %v, want 0.5", got)
	}
	if got := WeightedErrorRate(tied, truth); got != 0.5 {
		t.Fatalf("tied weighted = %v, want 0.5", got)
	}
}

// Random rankings must converge to ~50% error — the paper's random baseline
// observes 50.01%.
func TestRandomBaselineNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a Accumulator
	for doc := 0; doc < 2000; doc++ {
		n := 2 + rng.Intn(8)
		truth := make([]float64, n)
		pred := make([]float64, n)
		for i := range truth {
			truth[i] = rng.Float64() * 0.2
			pred[i] = rng.Float64()
		}
		a.Add(pred, truth)
	}
	if got := a.WeightedErrorRate(); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("random weighted error = %v, want ~0.5", got)
	}
	if got := a.ErrorRate(); math.Abs(got-0.5) > 0.02 {
		t.Fatalf("random error = %v, want ~0.5", got)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.ErrorRate() != 0 || a.WeightedErrorRate() != 0 || a.Pairs() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestNDCGPaperStyleExample(t *testing.T) {
	// With judge = CTR*10 (the paper's simplified intuition): R1 ndcg@1 = 1,
	// R2 ndcg@1 = (2^0.5-1)/(2^1.5-1) ≈ 0.2266.
	truth, r1, r2 := paperExample()
	judge := func(ctr float64) float64 { return ctr * 10 }
	if got := NDCG(r1, truth, 1, judge); math.Abs(got-1) > 1e-9 {
		t.Fatalf("R1 ndcg@1 = %v", got)
	}
	want := (math.Pow(2, 0.5) - 1) / (math.Pow(2, 1.5) - 1)
	if got := NDCG(r2, truth, 1, judge); math.Abs(got-want) > 1e-9 {
		t.Fatalf("R2 ndcg@1 = %v, want %v", got, want)
	}
}

func TestNDCGBounds(t *testing.T) {
	judge := func(ctr float64) float64 { return ctr * 10 }
	truth := []float64{0.3, 0.2, 0.1}
	for _, pred := range [][]float64{{3, 2, 1}, {1, 2, 3}, {2, 2, 2}} {
		for k := 1; k <= 3; k++ {
			got := NDCG(pred, truth, k, judge)
			if got < 0 || got > 1+1e-12 {
				t.Fatalf("NDCG out of [0,1]: %v", got)
			}
		}
	}
	// Perfect prediction is always 1.
	if got := NDCG([]float64{3, 2, 1}, truth, 2, judge); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", got)
	}
}

func TestNDCGEdgeCases(t *testing.T) {
	judge := func(ctr float64) float64 { return ctr }
	if got := NDCG(nil, nil, 1, judge); got != 1 {
		t.Fatalf("empty NDCG = %v", got)
	}
	// All-zero CTRs: ideal DCG 0 -> 1.0 by convention.
	if got := NDCG([]float64{1, 2}, []float64{0, 0}, 2, judge); got != 1 {
		t.Fatalf("zero-gain NDCG = %v", got)
	}
	// k beyond n clamps.
	if got := NDCG([]float64{2, 1}, []float64{0.2, 0.1}, 99, judge); math.Abs(got-1) > 1e-12 {
		t.Fatalf("k>n NDCG = %v", got)
	}
}

func TestBucketizer(t *testing.T) {
	ctrs := make([]float64, 100)
	for i := range ctrs {
		ctrs[i] = float64(i) / 100.0
	}
	b := NewBucketizer(ctrs)
	if got := b.Bucket(-1); got != 0 {
		t.Fatalf("below-min bucket = %d", got)
	}
	if got := b.Bucket(2.0); got != NumBuckets {
		t.Fatalf("above-max bucket = %d", got)
	}
	if lo, hi := b.Bucket(0.10), b.Bucket(0.90); lo >= hi {
		t.Fatalf("buckets not monotone: %d >= %d", lo, hi)
	}
	if j := b.Judgement(0.99); j < 9.0 || j > 10.0 {
		t.Fatalf("top judgement = %v", j)
	}
}

func TestBucketizerEmpty(t *testing.T) {
	b := NewBucketizer(nil)
	if b.Bucket(0.5) != 0 || b.Judgement(0.5) != 0 {
		t.Fatal("empty bucketizer should return 0")
	}
}

// Property: bucket numbers are monotone in CTR.
func TestBucketMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctrs := make([]float64, 500)
	for i := range ctrs {
		ctrs[i] = rng.Float64() * 0.3
	}
	b := NewBucketizer(ctrs)
	f := func(x, y float64) bool {
		x, y = math.Abs(x), math.Abs(y)
		if x > y {
			x, y = y, x
		}
		return b.Bucket(x) <= b.Bucket(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(23, 5, 7)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make(map[int]int)
	for _, f := range folds {
		for _, i := range f {
			seen[i]++
		}
	}
	if len(seen) != 23 {
		t.Fatalf("folds cover %d items, want 23", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d in %d folds", i, c)
		}
	}
	// Balanced within 1.
	for _, f := range folds {
		if len(f) < 4 || len(f) > 5 {
			t.Fatalf("unbalanced fold size %d", len(f))
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(50, 5, 3)
	b := KFold(50, 5, 3)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("not deterministic")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
	c := KFold(50, 5, 4)
	same := true
	for i := range a {
		if len(a[i]) != len(c[i]) {
			same = false
			break
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds gave identical folds")
	}
}

func TestKFoldEdge(t *testing.T) {
	if got := KFold(3, 5, 1); len(got) != 3 {
		t.Fatalf("k>n should clamp: %d folds", len(got))
	}
	if got := KFold(10, 0, 1); len(got) != 5 {
		t.Fatalf("k=0 default: %d folds", len(got))
	}
}

func TestMeanNDCG(t *testing.T) {
	judge := func(ctr float64) float64 { return ctr * 10 }
	docs := [][2][]float64{
		{{3, 2, 1}, {0.3, 0.2, 0.1}}, // perfect
		{{1, 2, 3}, {0.3, 0.2, 0.1}}, // reversed
	}
	got := MeanNDCG(docs, 3, judge)
	if got <= 0.5 || got >= 1 {
		t.Fatalf("MeanNDCG = %v", got)
	}
	if MeanNDCG(nil, 1, judge) != 0 {
		t.Fatal("empty MeanNDCG should be 0")
	}
}
