package personal

import (
	"math"
	"math/rand"
	"testing"

	"contextrank/internal/world"
)

func testWorldConcepts(t testing.TB) *world.World {
	t.Helper()
	return world.New(world.Config{Seed: 211, VocabSize: 1500, NumTopics: 8, NumConcepts: 200})
}

func TestGenerateUsersShape(t *testing.T) {
	users := GenerateUsers(20, 8, 1)
	if len(users) != 20 {
		t.Fatalf("users = %d", len(users))
	}
	var loved, ignored int
	for _, u := range users {
		if len(u.TopicAffinity) != 8 {
			t.Fatalf("affinity width = %d", len(u.TopicAffinity))
		}
		for _, a := range u.TopicAffinity {
			if a > 2 {
				loved++
			}
			if a < 0.5 {
				ignored++
			}
		}
	}
	if loved == 0 || ignored == 0 {
		t.Fatal("users lack strong preferences")
	}
	// Deterministic.
	again := GenerateUsers(20, 8, 1)
	for i := range users {
		for t2 := range users[i].TopicAffinity {
			if users[i].TopicAffinity[t2] != again[i].TopicAffinity[t2] {
				t.Fatal("not deterministic")
			}
		}
	}
}

// simulateHistory feeds a user's clicks on random concepts into a profile.
func simulateHistory(w *world.World, u *User, p *Profile, impressions int, rng *rand.Rand) {
	baseCTR := 0.04
	for i := 0; i < impressions; i++ {
		c := &w.Concepts[rng.Intn(len(w.Concepts))]
		ctr := baseCTR * u.CTRFactor(c)
		if ctr > 0.9 {
			ctr = 0.9
		}
		p.Observe(c, rng.Float64() < ctr)
	}
}

func TestProfileRecoversAffinities(t *testing.T) {
	w := testWorldConcepts(t)
	users := GenerateUsers(1, w.Config.NumTopics, 2)
	u := &users[0]
	p := NewProfile(w.Config.NumTopics)
	rng := rand.New(rand.NewSource(3))
	simulateHistory(w, u, p, 20000, rng)

	// The learned affinity must be substantially higher for the user's
	// loved topics than the ignored ones.
	lovedTopic, ignoredTopic := -1, -1
	for topic, a := range u.TopicAffinity {
		if a > 2 {
			lovedTopic = topic
		}
		if a < 0.5 {
			ignoredTopic = topic
		}
	}
	if lovedTopic < 0 || ignoredTopic < 0 {
		t.Skip("user lacks extremes")
	}
	var lovedAff, ignoredAff float64
	var lovedN, ignoredN int
	for i := range w.Concepts {
		c := &w.Concepts[i]
		switch c.Topic {
		case lovedTopic:
			lovedAff += p.Affinity(c)
			lovedN++
		case ignoredTopic:
			ignoredAff += p.Affinity(c)
			ignoredN++
		}
	}
	if lovedN == 0 || ignoredN == 0 {
		t.Skip("no concepts in extreme topics")
	}
	if lovedAff/float64(lovedN) <= 1.3*(ignoredAff/float64(ignoredN)) {
		t.Fatalf("profile failed to separate: loved=%.2f ignored=%.2f",
			lovedAff/float64(lovedN), ignoredAff/float64(ignoredN))
	}
}

func TestProfileColdStart(t *testing.T) {
	w := testWorldConcepts(t)
	p := NewProfile(w.Config.NumTopics)
	if got := p.Affinity(&w.Concepts[0]); got != 1 {
		t.Fatalf("empty profile affinity = %v", got)
	}
	if p.Views() != 0 {
		t.Fatal("empty profile has views")
	}
}

// The headline personalization property: re-ranking with the learned
// profile orders a user's held-out impressions better than the global
// score alone.
func TestPersonalizerImprovesRanking(t *testing.T) {
	w := testWorldConcepts(t)
	users := GenerateUsers(1, w.Config.NumTopics, 5)
	u := &users[0]
	p := NewProfile(w.Config.NumTopics)
	rng := rand.New(rand.NewSource(6))
	simulateHistory(w, u, p, 20000, rng)
	pz := &Personalizer{Profile: p, Weight: 1}

	// Held-out evaluation: groups of concepts; truth = user-specific CTR.
	// The "global score" knows the concept's global appeal (interest) but
	// not the user.
	correctGlobal, correctPersonal, total := 0, 0, 0
	for g := 0; g < 400; g++ {
		a := &w.Concepts[rng.Intn(len(w.Concepts))]
		b := &w.Concepts[rng.Intn(len(w.Concepts))]
		if a == b {
			continue
		}
		truthA := a.Interest * u.CTRFactor(a)
		truthB := b.Interest * u.CTRFactor(b)
		if truthA == truthB {
			continue
		}
		globalA, globalB := a.Interest, b.Interest
		// Log-scale the global term so it is commensurate with ln(affinity):
		// the true log-CTR is ln(interest) + ln(user factor).
		persA := pz.Rescore(math.Log(globalA+0.01), a)
		persB := pz.Rescore(math.Log(globalB+0.01), b)
		total++
		if (globalA > globalB) == (truthA > truthB) {
			correctGlobal++
		}
		if (persA > persB) == (truthA > truthB) {
			correctPersonal++
		}
	}
	if total == 0 {
		t.Fatal("no evaluation pairs")
	}
	gAcc := float64(correctGlobal) / float64(total)
	pAcc := float64(correctPersonal) / float64(total)
	t.Logf("global pair accuracy %.3f, personalized %.3f (n=%d)", gAcc, pAcc, total)
	if pAcc <= gAcc {
		t.Fatalf("personalization did not improve: %.3f vs %.3f", pAcc, gAcc)
	}
}

func TestCommunityNeighborsFindSimilarUsers(t *testing.T) {
	w := testWorldConcepts(t)
	users := GenerateUsers(6, w.Config.NumTopics, 7)
	// Make users 0 and 1 identical twins.
	users[1].TopicAffinity = append([]float64(nil), users[0].TopicAffinity...)
	users[1].TypeAffinity = users[0].TypeAffinity

	cm := &Community{}
	rng := rand.New(rand.NewSource(8))
	for i := range users {
		p := NewProfile(w.Config.NumTopics)
		simulateHistory(w, &users[i], p, 12000, rng)
		cm.Profiles = append(cm.Profiles, p)
	}
	neighbors := cm.Neighbors(0, 1)
	if len(neighbors) != 1 || neighbors[0] != 1 {
		t.Fatalf("twin not identified as nearest neighbor: %v", neighbors)
	}
}

func TestBlendedAffinityColdUser(t *testing.T) {
	w := testWorldConcepts(t)
	users := GenerateUsers(4, w.Config.NumTopics, 9)
	cm := &Community{}
	rng := rand.New(rand.NewSource(10))
	for i := range users {
		p := NewProfile(w.Config.NumTopics)
		n := 15000
		if i == 0 {
			n = 0 // cold user
		}
		simulateHistory(w, &users[i], p, n, rng)
		cm.Profiles = append(cm.Profiles, p)
	}
	c := &w.Concepts[10]
	blended := cm.BlendedAffinity(0, 2, c)
	// The cold user's own affinity is exactly 1; the blend must move toward
	// the neighbors unless they are also exactly 1.
	nbMean := (cm.Profiles[1].Affinity(c) + cm.Profiles[2].Affinity(c)) / 2
	_ = nbMean
	if cm.Profiles[0].Views() != 0 {
		t.Fatal("user 0 should be cold")
	}
	if blended == 1 && math.Abs(nbMean-1) > 0.05 {
		t.Fatalf("cold user ignored the community: blended=%v neighbors=%v", blended, nbMean)
	}
}

func TestCommunityNoNeighbors(t *testing.T) {
	cm := &Community{Profiles: []*Profile{NewProfile(4)}}
	c := &world.Concept{Topic: 1}
	if got := cm.BlendedAffinity(0, 3, c); got != 1 {
		t.Fatalf("lone cold profile affinity = %v", got)
	}
}
