// Package personal implements the paper's §IV-C personalization direction:
// "In cases where the application supports a user login, we believe that
// personalization and collaborative filtering techniques can greatly
// improve this prediction for individuals by analyzing the history of
// actions taken."
//
// A simulated user has latent per-topic and per-type click affinities that
// multiply the global CTR. A Profile estimates those affinities from the
// user's click history with additive smoothing, and a Personalizer blends
// the profile's affinity into the global model score. For cold users, a
// Community borrows affinity from the most similar profiles (user-user
// collaborative filtering with cosine similarity over topic CTR vectors).
package personal

import (
	"math"
	"math/rand"
	"sort"

	"contextrank/internal/world"
)

// NumTypes mirrors the taxonomy width for per-type affinities.
const NumTypes = 7

// User is a simulated reader with latent preferences.
type User struct {
	// ID identifies the user.
	ID int
	// TopicAffinity multiplies the global CTR for concepts of each topic
	// (1 = indifferent). A few topics are loved (~3x) or ignored (~0.3x).
	TopicAffinity []float64
	// TypeAffinity multiplies the CTR per entity type.
	TypeAffinity [NumTypes]float64
}

// GenerateUsers creates a population with sparse strong preferences,
// deterministic in seed.
func GenerateUsers(numUsers, numTopics int, seed int64) []User {
	rng := rand.New(rand.NewSource(seed))
	users := make([]User, numUsers)
	for i := range users {
		u := User{ID: i, TopicAffinity: make([]float64, numTopics)}
		for t := range u.TopicAffinity {
			u.TopicAffinity[t] = 1
		}
		// Two loved topics, two ignored ones.
		for k := 0; k < 2 && numTopics > 0; k++ {
			u.TopicAffinity[rng.Intn(numTopics)] = 2.5 + rng.Float64()
			u.TopicAffinity[rng.Intn(numTopics)] = 0.2 + 0.2*rng.Float64()
		}
		for t := range u.TypeAffinity {
			u.TypeAffinity[t] = math.Exp(0.25 * rng.NormFloat64())
		}
		users[i] = u
	}
	return users
}

// CTRFactor returns the user's multiplicative CTR adjustment for a concept.
func (u *User) CTRFactor(c *world.Concept) float64 {
	f := u.TypeAffinity[int(c.Type)%NumTypes]
	if c.Topic >= 0 && c.Topic < len(u.TopicAffinity) {
		f *= u.TopicAffinity[c.Topic]
	}
	return f
}

// Profile is the learned counterpart of a user's latent affinities: decayed
// per-topic and per-type view/click counters.
type Profile struct {
	topicViews, topicClicks []float64
	typeViews, typeClicks   [NumTypes]float64
	totalViews, totalClicks float64
}

// NewProfile creates an empty profile for a world with numTopics topics.
func NewProfile(numTopics int) *Profile {
	return &Profile{
		topicViews:  make([]float64, numTopics),
		topicClicks: make([]float64, numTopics),
	}
}

// Observe records one impression of a concept and whether the user clicked.
func (p *Profile) Observe(c *world.Concept, clicked bool) {
	click := 0.0
	if clicked {
		click = 1
	}
	p.totalViews++
	p.totalClicks += click
	p.typeViews[int(c.Type)%NumTypes]++
	p.typeClicks[int(c.Type)%NumTypes] += click
	if c.Topic >= 0 && c.Topic < len(p.topicViews) {
		p.topicViews[c.Topic]++
		p.topicClicks[c.Topic] += click
	}
}

// Views returns the number of impressions observed.
func (p *Profile) Views() float64 { return p.totalViews }

// smoothing mass pulls thin estimates toward the user's base rate.
const smoothing = 25

// Affinity estimates the user's CTR multiplier for a concept: the ratio of
// the user's smoothed topic/type CTR to their base CTR. 1 for unknown or
// thin history.
func (p *Profile) Affinity(c *world.Concept) float64 {
	if p.totalViews == 0 {
		return 1
	}
	base := p.totalClicks / p.totalViews
	if base == 0 {
		return 1
	}
	f := 1.0
	if c.Topic >= 0 && c.Topic < len(p.topicViews) {
		v, k := p.topicViews[c.Topic], p.topicClicks[c.Topic]
		rate := (k + smoothing*base) / (v + smoothing)
		f *= rate / base
	}
	tv, tk := p.typeViews[int(c.Type)%NumTypes], p.typeClicks[int(c.Type)%NumTypes]
	rate := (tk + smoothing*base) / (tv + smoothing)
	f *= rate / base
	return f
}

// topicCTRVector is the profile's smoothed per-topic CTR, the similarity
// space for collaborative filtering.
func (p *Profile) topicCTRVector() []float64 {
	out := make([]float64, len(p.topicViews))
	base := 0.0
	if p.totalViews > 0 {
		base = p.totalClicks / p.totalViews
	}
	for t := range out {
		out[t] = (p.topicClicks[t] + smoothing*base) / (p.topicViews[t] + smoothing)
	}
	return out
}

// Personalizer layers a profile over global ranking scores.
type Personalizer struct {
	Profile *Profile
	// Weight scales ln(affinity) against the global score. Default 1.
	Weight float64
}

// Rescore returns the personalized score for a concept.
func (pz *Personalizer) Rescore(globalScore float64, c *world.Concept) float64 {
	w := pz.Weight
	if w == 0 {
		w = 1
	}
	return globalScore + w*math.Log(pz.Profile.Affinity(c))
}

// Community holds many users' profiles for collaborative filtering.
type Community struct {
	Profiles []*Profile
}

// cosine over two vectors.
func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Neighbors returns the indexes of the k profiles most similar to profile
// idx (excluding itself), ties broken by index.
func (cm *Community) Neighbors(idx, k int) []int {
	self := cm.Profiles[idx].topicCTRVector()
	type scored struct {
		i   int
		sim float64
	}
	var all []scored
	for i, p := range cm.Profiles {
		if i == idx {
			continue
		}
		all = append(all, scored{i, cosine(self, p.topicCTRVector())})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].sim != all[b].sim {
			return all[a].sim > all[b].sim
		}
		return all[a].i < all[b].i
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].i
	}
	return out
}

// BorrowMass controls how much topic-local history a user needs before
// their own estimate outweighs the community's: at BorrowMass impressions
// in the concept's topic the blend is 50/50.
const BorrowMass = 400

// BlendedAffinity mixes the user's own affinity with the mean affinity of
// their k nearest neighbors, weighted by how much history the user has *in
// this concept's topic* — a reader with years of sports clicks still
// borrows the community's taste the first time a medical entity comes up.
func (cm *Community) BlendedAffinity(idx, k int, c *world.Concept) float64 {
	own := cm.Profiles[idx]
	ownAff := own.Affinity(c)
	neighbors := cm.Neighbors(idx, k)
	if len(neighbors) == 0 {
		return ownAff
	}
	nb := 0.0
	for _, ni := range neighbors {
		nb += cm.Profiles[ni].Affinity(c)
	}
	nb /= float64(len(neighbors))
	// Confidence grows with topic-local evidence.
	local := own.totalViews
	if c.Topic >= 0 && c.Topic < len(own.topicViews) {
		local = own.topicViews[c.Topic]
	}
	conf := local / (local + BorrowMass)
	return conf*ownAff + (1-conf)*nb
}
