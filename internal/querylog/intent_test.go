package querylog

import (
	"reflect"
	"testing"

	"contextrank/internal/world"
)

func TestClassifyIntents(t *testing.T) {
	w := world.New(world.Config{Seed: 241, VocabSize: 1200, NumTopics: 8, NumConcepts: 150})
	cl := NewClassifier(w)

	var named *world.Concept
	for i := range w.Concepts {
		if w.Concepts[i].Topic >= 0 {
			named = &w.Concepts[i]
			break
		}
	}
	// Bare concept name = navigational.
	if got := cl.Classify(Query{Text: named.Name, Terms: named.Terms}); got != Navigational {
		t.Fatalf("bare concept = %v", got)
	}
	// Concept + intent word = transactional.
	iw := w.IntentVocab[0]
	q := Query{Text: named.Name + " " + iw, Terms: append(append([]string{}, named.Terms...), iw)}
	if got := cl.Classify(q); got != Transactional {
		t.Fatalf("intent-word query = %v", got)
	}
	// Random words = informational.
	if got := cl.Classify(Query{Text: "zzz qqq", Terms: []string{"zzz", "qqq"}}); got != Informational {
		t.Fatalf("random query = %v", got)
	}
}

func TestConceptIntentsBreakdown(t *testing.T) {
	w := world.New(world.Config{Seed: 242, VocabSize: 1200, NumTopics: 8, NumConcepts: 150})
	cl := NewClassifier(w)
	l := Generate(w, Config{Seed: 243})

	// Over the generated log, a popular concept's traffic must include all
	// three intents: exact queries (navigational), intent-word refinements
	// (transactional), and context refinements (informational).
	checked := 0
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Interest < 0.5 || c.LowQuality() {
			continue
		}
		b := cl.ConceptIntents(l, c.Name)
		if b.Total == 0 {
			continue
		}
		checked++
		sum := b.Share(Informational) + b.Share(Navigational) + b.Share(Transactional)
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("shares sum to %v", sum)
		}
		if b.Share(Navigational) == 0 {
			t.Errorf("%q: no navigational traffic despite exact queries", c.Name)
		}
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no popular concepts checked")
	}
}

func TestConceptIntentsUnknown(t *testing.T) {
	w := world.New(world.Config{Seed: 244, VocabSize: 800, NumTopics: 6, NumConcepts: 60})
	cl := NewClassifier(w)
	l := Generate(w, Config{Seed: 245})
	b := cl.ConceptIntents(l, "definitely not queried")
	if b.Total != 0 {
		t.Fatalf("unknown concept traffic = %+v", b)
	}
	if b.Share(Informational) != 0 {
		t.Fatal("empty breakdown share should be 0")
	}
	if got := cl.ConceptIntents(l, ""); got.Total != 0 {
		t.Fatal("empty concept should have no traffic")
	}
}

func TestIntentString(t *testing.T) {
	if Informational.String() != "informational" || Navigational.String() != "navigational" || Transactional.String() != "transactional" {
		t.Fatal("Intent.String broken")
	}
}

func TestSplitTerms(t *testing.T) {
	cases := map[string][]string{
		"":             nil,
		"one":          {"one"},
		"a b":          {"a", "b"},
		"  padded  x ": {"padded", "x"},
	}
	for in, want := range cases {
		if got := splitTerms(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitTerms(%q) = %v, want %v", in, got, want)
		}
	}
}
