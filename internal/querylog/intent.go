package querylog

import (
	"contextrank/internal/match"
	"contextrank/internal/world"
)

// The paper's §IV-A notes: "we essentially focus on the frequencies; we do
// not perform any categorization to understand their intentions such as
// navigational, transactional or informational (see [11] — Broder's "A
// taxonomy of web search"), although there might be potential benefits in
// doing so." This file implements that categorization so the benefit can be
// measured: queries are classified against Broder's taxonomy, and the
// per-intent frequency breakdown becomes available as candidate features.

// Intent is Broder's query-intent class.
type Intent int

const (
	// Informational queries seek content about the topic.
	Informational Intent = iota
	// Navigational queries name a single entity the user wants to reach.
	Navigational
	// Transactional queries carry an action word ("buy", "review", ...).
	Transactional
)

// String names the intent.
func (i Intent) String() string {
	switch i {
	case Navigational:
		return "navigational"
	case Transactional:
		return "transactional"
	default:
		return "informational"
	}
}

// Classifier assigns intents using the world's ground structures: the
// intent vocabulary marks transactional refiners, and a bare concept name
// is navigational.
type Classifier struct {
	intentWords map[string]bool
	isConcept   func(string) bool
}

// NewClassifier builds a classifier from the world.
func NewClassifier(w *world.World) *Classifier {
	iw := make(map[string]bool, len(w.IntentVocab))
	for _, t := range w.IntentVocab {
		iw[t] = true
	}
	return &Classifier{
		intentWords: iw,
		isConcept:   func(name string) bool { return w.ConceptByName(name) != nil },
	}
}

// Classify assigns the intent of one query.
func (c *Classifier) Classify(q Query) Intent {
	for _, t := range q.Terms {
		if c.intentWords[t] {
			return Transactional
		}
	}
	if c.isConcept(q.Text) {
		return Navigational
	}
	return Informational
}

// IntentBreakdown is the frequency-weighted share of each intent among the
// queries mentioning a concept.
type IntentBreakdown struct {
	Informational, Navigational, Transactional float64
	Total                                      int64
}

// Share returns the fraction of traffic with the given intent.
func (b IntentBreakdown) Share(i Intent) float64 {
	if b.Total == 0 {
		return 0
	}
	switch i {
	case Navigational:
		return b.Navigational / float64(b.Total)
	case Transactional:
		return b.Transactional / float64(b.Total)
	default:
		return b.Informational / float64(b.Total)
	}
}

// ConceptIntents computes the intent breakdown of every query containing
// the concept as a phrase.
func (c *Classifier) ConceptIntents(l *Log, concept string) IntentBreakdown {
	var b IntentBreakdown
	terms := splitTerms(concept)
	if len(terms) == 0 {
		return b
	}
	// Intern once; terms outside the log vocabulary occur in no query.
	ids := make([]uint32, len(terms))
	for i, t := range terms {
		if ids[i] = l.vocab.ID(t); ids[i] == match.NoID {
			return b
		}
	}
	for _, idx := range l.byTerm[ids[0]] {
		q := l.Query(int(idx))
		if !containsPhraseIDs(l.termIDs[idx], ids) {
			continue
		}
		b.Total += int64(q.Freq)
		switch c.Classify(q) {
		case Navigational:
			b.Navigational += float64(q.Freq)
		case Transactional:
			b.Transactional += float64(q.Freq)
		default:
			b.Informational += float64(q.Freq)
		}
	}
	return b
}

func splitTerms(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
