package querylog

import (
	"math"
	"math/rand"

	"contextrank/internal/world"
)

// The paper's §IV-C notes that "the interestingness of a concept can change
// in time depending on the world's state as news breaks, trends change,
// etc. To identify this case, new features can be included to the space
// that can identify spikes or changes in news articles and/or query logs."
// This file provides the substrate: a multi-week query-log series in which
// concept popularity drifts and occasionally spikes, plus the trend
// features mined from it.

// Series is a sequence of weekly logs, most recent last.
type Series struct {
	Weeks []*Log
}

// SeriesConfig parameterizes multi-week generation.
type SeriesConfig struct {
	Seed  int64
	Weeks int // default 6
	// DriftSigma is the weekly log-normal drift of every concept's
	// popularity. Default 0.15.
	DriftSigma float64
	// SpikeProb is the chance per concept per week of a news spike.
	// Default 0.01.
	SpikeProb float64
	// SpikeFactor multiplies a spiking concept's query volume. Default 8.
	SpikeFactor float64
	// Log configures each week's base generation.
	Log Config
}

func (c SeriesConfig) withDefaults() SeriesConfig {
	if c.Weeks == 0 {
		c.Weeks = 6
	}
	if c.DriftSigma == 0 {
		c.DriftSigma = 0.15
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.01
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 8
	}
	return c
}

// GenerateSeries produces Weeks weekly logs. Week-to-week popularity
// multipliers follow a per-concept random walk with occasional spikes; the
// spiking concepts of the final week are returned so tests and experiments
// know the ground truth.
func GenerateSeries(w *world.World, cfg SeriesConfig) (*Series, []string) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	mult := make([]float64, len(w.Concepts))
	for i := range mult {
		mult[i] = 1
	}
	s := &Series{}
	var lastSpikes []string
	for week := 0; week < cfg.Weeks; week++ {
		var spikes []string
		for i := range mult {
			mult[i] *= math.Exp(cfg.DriftSigma * rng.NormFloat64())
			// Spikes decay next week via the drift clamp below.
			if rng.Float64() < cfg.SpikeProb {
				mult[i] *= cfg.SpikeFactor
				spikes = append(spikes, w.Concepts[i].Name)
			}
			// Clamp the walk so popularity stays within two orders.
			if mult[i] > 20 {
				mult[i] = 20
			} else if mult[i] < 0.05 {
				mult[i] = 0.05
			}
		}
		logCfg := cfg.Log
		logCfg.Seed = cfg.Seed + int64(week)*101 + 1
		base := Generate(w, logCfg)
		weekLog := scaleLog(base, w, mult)
		if len(spikes) > 0 {
			// Breaking news *creates* query volume: even a previously
			// unsearched concept gets a burst when it hits the headlines.
			counts := make(map[string]int, weekLog.NumDistinct())
			for _, q := range weekLog.Queries {
				counts[q.Text] = q.Freq
			}
			for _, name := range spikes {
				counts[name] += 150 + int(50*cfg.SpikeFactor*rng.Float64())
			}
			weekLog = FromCounts(counts)
		}
		s.Weeks = append(s.Weeks, weekLog)
		lastSpikes = spikes
		// Spikes are transient: pull the multiplier back down.
		for i := range mult {
			if mult[i] > 3 {
				mult[i] = math.Sqrt(mult[i])
			}
		}
	}
	return s, lastSpikes
}

// scaleLog rescales the frequencies of a week's queries according to each
// concept's popularity multiplier (queries not tied to a concept keep their
// frequency).
func scaleLog(base *Log, w *world.World, mult []float64) *Log {
	counts := make(map[string]int, base.NumDistinct())
	for _, q := range base.Queries {
		f := q.Freq
		// A query is attributed to the concept it contains, if any.
		if c := conceptOf(w, q.Terms); c != nil {
			f = int(float64(f) * mult[c.ID])
			if f < 1 {
				f = 1
			}
		}
		counts[q.Text] += f
	}
	return FromCounts(counts)
}

// conceptOf returns the world concept contained in the query's terms, if
// exactly identifiable (longest match wins).
func conceptOf(w *world.World, terms []string) *world.Concept {
	var best *world.Concept
	for n := len(terms); n >= 1; n-- {
		for i := 0; i+n <= len(terms); i++ {
			name := join(terms[i : i+n])
			if c := w.ConceptByName(name); c != nil {
				if best == nil || len(c.Terms) > len(best.Terms) {
					best = c
				}
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

func join(terms []string) string {
	out := terms[0]
	for _, t := range terms[1:] {
		out += " " + t
	}
	return out
}

// Current returns the most recent week's log.
func (s *Series) Current() *Log { return s.Weeks[len(s.Weeks)-1] }

// TrendFeature returns the spike signal for a concept: the log-ratio of the
// current week's exact-query frequency to the trailing mean of the previous
// weeks (0 when there is no history or no traffic). Positive values mean
// the concept is hotter than usual — the §IV-C feature candidate.
func (s *Series) TrendFeature(concept string) float64 {
	n := len(s.Weeks)
	if n < 2 {
		return 0
	}
	current := float64(s.Current().FreqExact(concept))
	past := 0.0
	for _, week := range s.Weeks[:n-1] {
		past += float64(week.FreqExact(concept))
	}
	past /= float64(n - 1)
	return math.Log((current + 1) / (past + 1))
}

// Spiking returns the k concepts with the largest trend feature among the
// given names.
func (s *Series) Spiking(names []string, k int) []string {
	type scored struct {
		name  string
		trend float64
	}
	all := make([]scored, 0, len(names))
	for _, n := range names {
		all = append(all, scored{n, s.TrendFeature(n)})
	}
	// Insertion-sort the top k (names lists are small).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].trend > all[j-1].trend ||
			(all[j].trend == all[j-1].trend && all[j].name < all[j-1].name)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].name
	}
	return out
}
