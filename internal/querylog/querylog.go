// Package querylog models the search-engine query log the paper mines for
// interestingness features and concept (unit) extraction. The paper used
// "the most popular 20 million queries submitted to the engine in the week
// of November 17th–23rd, 2007"; we generate a log of the same statistical
// shape from the synthetic world: per-concept exact and phrase-containing
// queries whose frequencies follow the concept's latent interestingness,
// plus a Zipfian long tail of random queries.
package querylog

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"contextrank/internal/match"
	"contextrank/internal/world"
)

// Query is one distinct query string with its weekly frequency.
type Query struct {
	// Text is the raw query (lower-case, space-separated terms).
	Text string
	// Terms is Text split into terms.
	Terms []string
	// Freq is the number of times the query was submitted.
	Freq int
}

// Log is a weekly query log with frequency-weighted lookups. Terms are
// interned to dense uint32 ids at construction (the same idiom as the
// searchsim index): per-term postings and frequency tables are flat slices
// indexed by term id, and phrase containment compares ids, not strings. A
// Log is immutable after FromCounts.
type Log struct {
	Queries []Query

	totalFreq int64
	byText    map[string]int // query text -> index
	vocab     *match.Vocab   // term string <-> dense id
	termIDs   [][]uint32     // query index -> interned Terms
	byTerm    [][]int32      // term id -> indexes of queries containing it
	termFreq  []int64        // term id -> sum of freqs of queries containing it
}

// Config parameterizes log generation.
type Config struct {
	Seed int64
	// MaxExactFreq is the frequency of the hottest concept's exact query.
	// Default 20000.
	MaxExactFreq int
	// PhraseVariants is how many distinct phrase-containing query variants
	// are generated per concept. Default 12.
	PhraseVariants int
	// LongTail is the number of random tail queries. Default 4 * number of
	// concepts.
	LongTail int
}

func (c Config) withDefaults(w *world.World) Config {
	if c.MaxExactFreq == 0 {
		c.MaxExactFreq = 20000
	}
	if c.PhraseVariants == 0 {
		c.PhraseVariants = 12
	}
	if c.LongTail == 0 {
		c.LongTail = 4 * len(w.Concepts)
	}
	return c
}

// Generate builds a query log from the world. Frequencies are driven by
// concept interestingness: freq_exact ≈ MaxExactFreq · Interest² with
// log-normal noise, so the feature the ranker mines is a noisy monotone
// observation of the latent variable.
func Generate(w *world.World, cfg Config) *Log {
	cfg = cfg.withDefaults(w)
	rng := rand.New(rand.NewSource(cfg.Seed))
	agg := make(map[string]int)

	for i := range w.Concepts {
		c := &w.Concepts[i]
		noise := math.Exp(0.5 * rng.NormFloat64())
		exact := int(float64(cfg.MaxExactFreq) * math.Pow(c.Interest, 2) * noise)
		// Low-quality phrases still get queried a lot (that is exactly why
		// they sneak into the candidate set via unit scores): give them a
		// floor driven by generality rather than interest.
		if c.LowQuality() {
			exact += int(1500 * (1 - c.Specificity) * (0.5 + rng.Float64()))
		}
		if exact > 0 {
			agg[c.Name] += exact
		}
		// Phrase-containing variants: concept plus one or two of its
		// context terms (or generic refiners for topicless phrases).
		for v := 0; v < cfg.PhraseVariants; v++ {
			extra := pickRefiner(w, c, rng)
			if extra == "" {
				continue
			}
			var text string
			if rng.Intn(2) == 0 {
				text = c.Name + " " + extra
			} else {
				text = extra + " " + c.Name
			}
			// Even tail concepts receive some refinement traffic: the
			// suggestion service has coverage for almost everything, just
			// at low frequency.
			f := 2 + rng.Intn(4) + int(float64(exact)*(0.05+0.2*rng.Float64()))
			agg[text] += f
		}
	}

	// Long tail: 1-3 distinct random topical terms.
	for i := 0; i < cfg.LongTail; i++ {
		topic := &w.Topics[rng.Intn(len(w.Topics))]
		n := 1 + rng.Intn(3)
		terms := make([]string, 0, n)
		for len(terms) < n {
			term := w.SampleTerm(topic, rng)
			dup := false
			for _, prev := range terms {
				if prev == term {
					dup = true
					break
				}
			}
			if !dup {
				terms = append(terms, term)
			}
		}
		text := strings.Join(terms, " ")
		agg[text] += 1 + rng.Intn(40)
	}

	return FromCounts(agg)
}

// pickRefiner selects an extra query term for a phrase-containing variant.
// Refiners come from the concept's query vocabulary, which overlaps its
// document context only partially (see world.Config.RefinerOverlap).
func pickRefiner(w *world.World, c *world.Concept, rng *rand.Rand) string {
	if c.Topic >= 0 && len(c.QueryRefiners) > 0 {
		return c.QueryRefiners[rng.Intn(len(c.QueryRefiners))]
	}
	// Topicless (low-quality) concepts are refined with random vocabulary.
	return w.Vocab[rng.Intn(len(w.Vocab))]
}

// FromCounts builds a Log from a query→frequency map (exported so tests and
// the units extractor can build small hand-crafted logs).
func FromCounts(counts map[string]int) *Log {
	l := &Log{
		byText: make(map[string]int, len(counts)),
		vocab:  match.NewVocab(),
	}
	texts := make([]string, 0, len(counts))
	for t := range counts {
		texts = append(texts, t)
	}
	sort.Strings(texts) // determinism: ids and postings follow text order
	for _, text := range texts {
		f := counts[text]
		if f <= 0 {
			continue
		}
		q := Query{Text: text, Terms: strings.Fields(text), Freq: f}
		idx := len(l.Queries)
		l.Queries = append(l.Queries, q)
		l.byText[text] = idx
		l.totalFreq += int64(f)
		ids := make([]uint32, len(q.Terms))
		for i, term := range q.Terms {
			id := l.vocab.Intern(term)
			ids[i] = id
			if int(id) >= len(l.byTerm) {
				l.byTerm = append(l.byTerm, nil)
				l.termFreq = append(l.termFreq, 0)
			}
			// Dedup within the query: a term contributes one posting and one
			// frequency increment no matter how often it repeats.
			if n := len(l.byTerm[id]); n > 0 && l.byTerm[id][n-1] == int32(idx) {
				continue
			}
			l.byTerm[id] = append(l.byTerm[id], int32(idx))
			l.termFreq[id] += int64(f)
		}
		l.termIDs = append(l.termIDs, ids)
	}
	return l
}

// NumDistinct returns the number of distinct queries.
func (l *Log) NumDistinct() int { return len(l.Queries) }

// TotalFreq returns the total number of query submissions (sum of
// frequencies).
func (l *Log) TotalFreq() int64 { return l.totalFreq }

// FreqExact returns the frequency of queries exactly equal to phrase — the
// paper's feature (1) freq_exact.
func (l *Log) FreqExact(phrase string) int {
	if i, ok := l.byText[phrase]; ok {
		return l.Queries[i].Freq
	}
	return 0
}

// FreqPhraseContained returns the summed frequency of queries that contain
// phrase as a contiguous sub-phrase (including exact matches) — the paper's
// feature (2) freq_phrase_contained.
func (l *Log) FreqPhraseContained(phrase string) int {
	return l.FreqPhraseContainedTerms(strings.Fields(phrase))
}

// FreqPhraseContainedTerms is FreqPhraseContained over a pre-split phrase —
// the batch feature extractor splits each concept once and reuses the terms
// across every per-term feature.
func (l *Log) FreqPhraseContainedTerms(terms []string) int {
	if len(terms) == 0 {
		return 0
	}
	// Intern the phrase; a term outside the log vocabulary cannot occur in
	// any query, so the containment sum is zero. Stack buffer keeps the
	// common short phrase allocation-free.
	var buf [8]uint32
	ids := buf[:0]
	for _, t := range terms {
		id := l.vocab.ID(t)
		if id == match.NoID {
			return 0
		}
		ids = append(ids, id)
	}
	total := 0
	for _, idx := range l.byTerm[ids[0]] {
		if containsPhraseIDs(l.termIDs[idx], ids) {
			total += l.Queries[idx].Freq
		}
	}
	return total
}

// containsPhraseIDs reports whether hay contains needle as a contiguous
// subsequence of term ids.
func containsPhraseIDs(hay, needle []uint32) bool {
	if len(needle) > len(hay) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TermFreq returns the frequency-weighted number of query submissions
// containing term.
func (l *Log) TermFreq(term string) int64 {
	id := l.vocab.ID(term)
	if id == match.NoID {
		return 0
	}
	return l.termFreq[id]
}

// QueriesContaining returns the indexes of queries whose term set includes
// term, in deterministic (query-index) order. The returned slice aliases
// internal storage and must not be modified.
func (l *Log) QueriesContaining(term string) []int32 {
	id := l.vocab.ID(term)
	if id == match.NoID {
		return nil
	}
	return l.byTerm[id]
}

// Query returns the i'th query.
func (l *Log) Query(i int) Query { return l.Queries[i] }

// Vocab returns the log's term vocabulary (term string ↔ dense id). The log
// is immutable after FromCounts, so the vocabulary is safe for concurrent
// reads; the interned relevance miner keys its scratch by these ids.
func (l *Log) Vocab() *match.Vocab { return l.vocab }

// TermIDs returns the interned terms of the i'th query, in query order
// (repeats preserved). The slice aliases internal storage and must not be
// modified.
func (l *Log) TermIDs(i int) []uint32 { return l.termIDs[i] }

// TopQueries returns the n most frequent queries (ties broken by text).
func (l *Log) TopQueries(n int) []Query {
	qs := make([]Query, len(l.Queries))
	copy(qs, l.Queries)
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].Freq != qs[j].Freq {
			return qs[i].Freq > qs[j].Freq
		}
		return qs[i].Text < qs[j].Text
	})
	if n > len(qs) {
		n = len(qs)
	}
	return qs[:n]
}
