package querylog

import (
	"math"
	"sort"
	"testing"

	"contextrank/internal/world"
)

func testLog(t testing.TB) (*world.World, *Log) {
	t.Helper()
	w := world.New(world.Config{Seed: 11, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	return w, Generate(w, Config{Seed: 12})
}

func TestFromCounts(t *testing.T) {
	l := FromCounts(map[string]int{
		"global warming":        100,
		"global warming causes": 40,
		"warming":               10,
		"zero freq":             0,
		"negative":              -3,
	})
	if l.NumDistinct() != 3 {
		t.Fatalf("NumDistinct = %d", l.NumDistinct())
	}
	if l.TotalFreq() != 150 {
		t.Fatalf("TotalFreq = %d", l.TotalFreq())
	}
	if got := l.FreqExact("global warming"); got != 100 {
		t.Fatalf("FreqExact = %d", got)
	}
	if got := l.FreqExact("missing"); got != 0 {
		t.Fatalf("FreqExact missing = %d", got)
	}
}

func TestFreqPhraseContained(t *testing.T) {
	l := FromCounts(map[string]int{
		"global warming":           100,
		"global warming causes":    40,
		"causes of global warming": 20,
		"warming global":           5,  // reversed, not a phrase match
		"global cooling warming":   7,  // not contiguous
		"warming":                  10, // single term, no phrase
	})
	if got := l.FreqPhraseContained("global warming"); got != 160 {
		t.Fatalf("FreqPhraseContained = %d, want 160", got)
	}
	if got := l.FreqPhraseContained("warming"); got != 182 {
		// All queries containing the single term "warming".
		t.Fatalf("FreqPhraseContained(warming) = %d, want 182", got)
	}
	if got := l.FreqPhraseContained(""); got != 0 {
		t.Fatalf("empty phrase = %d", got)
	}
}

func TestTermFreq(t *testing.T) {
	l := FromCounts(map[string]int{
		"a b": 10,
		"a c": 5,
		"a a": 3, // duplicate term counted once per query
	})
	if got := l.TermFreq("a"); got != 18 {
		t.Fatalf("TermFreq(a) = %d", got)
	}
	if got := l.TermFreq("b"); got != 10 {
		t.Fatalf("TermFreq(b) = %d", got)
	}
	if got := l.TermFreq("zzz"); got != 0 {
		t.Fatalf("TermFreq(zzz) = %d", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := world.New(world.Config{Seed: 11, VocabSize: 800, NumTopics: 6, NumConcepts: 80})
	l1 := Generate(w, Config{Seed: 5})
	l2 := Generate(w, Config{Seed: 5})
	if l1.NumDistinct() != l2.NumDistinct() || l1.TotalFreq() != l2.TotalFreq() {
		t.Fatal("Generate not deterministic")
	}
}

// The central statistical property: exact-query frequency must correlate
// positively with latent interestingness, because the ranker learns
// interestingness through this feature.
func TestExactFreqTracksInterest(t *testing.T) {
	w, l := testLog(t)
	var xs, ys []float64
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.LowQuality() {
			continue
		}
		xs = append(xs, c.Interest)
		ys = append(ys, math.Log1p(float64(l.FreqExact(c.Name))))
	}
	if r := pearson(xs, ys); r < 0.5 {
		t.Fatalf("corr(interest, log freq_exact) = %.3f, want >= 0.5", r)
	}
}

// Low-quality phrases must still receive substantial query traffic — that
// is the paper's stated reason they pollute the candidate set.
func TestLowQualityPhrasesGetQueries(t *testing.T) {
	w, l := testLog(t)
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.LowQuality() {
			if l.FreqExact(c.Name) == 0 {
				t.Errorf("low-quality %q has no queries", c.Name)
			}
		}
	}
}

func TestPhraseContainedAtLeastExact(t *testing.T) {
	w, l := testLog(t)
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if l.FreqPhraseContained(c.Name) < l.FreqExact(c.Name) {
			t.Fatalf("phrase-contained < exact for %q", c.Name)
		}
	}
}

func TestTopQueries(t *testing.T) {
	l := FromCounts(map[string]int{"a": 1, "b": 5, "c": 3})
	top := l.TopQueries(2)
	if len(top) != 2 || top[0].Text != "b" || top[1].Text != "c" {
		t.Fatalf("TopQueries = %v", top)
	}
	if got := l.TopQueries(10); len(got) != 3 {
		t.Fatalf("TopQueries(10) = %v", got)
	}
	// Sorted stability on ties.
	l2 := FromCounts(map[string]int{"x": 2, "y": 2})
	top2 := l2.TopQueries(2)
	if top2[0].Text != "x" {
		t.Fatalf("tie break should be lexicographic: %v", top2)
	}
}

func TestQueriesContainingSorted(t *testing.T) {
	_, l := testLog(t)
	for term, idxs := range map[string][]int{"": nil} {
		_ = term
		_ = idxs
	}
	// Spot-check a few terms: indexes must be ascending (append order over
	// sorted texts).
	checked := 0
	for _, q := range l.Queries[:min(50, len(l.Queries))] {
		for _, term := range q.Terms {
			idxs := l.QueriesContaining(term)
			if !sort.SliceIsSorted(idxs, func(i, j int) bool { return idxs[i] < idxs[j] }) {
				t.Fatalf("QueriesContaining(%q) not sorted", term)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no terms checked")
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
