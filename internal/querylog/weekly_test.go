package querylog

import (
	"testing"

	"contextrank/internal/world"
)

func seriesFixture(t testing.TB) (*world.World, *Series, []string) {
	t.Helper()
	w := world.New(world.Config{Seed: 231, VocabSize: 1200, NumTopics: 8, NumConcepts: 150})
	s, spikes := GenerateSeries(w, SeriesConfig{Seed: 232, Weeks: 5, SpikeProb: 0.03})
	return w, s, spikes
}

func TestGenerateSeriesShape(t *testing.T) {
	_, s, _ := seriesFixture(t)
	if len(s.Weeks) != 5 {
		t.Fatalf("weeks = %d", len(s.Weeks))
	}
	for i, week := range s.Weeks {
		if week.NumDistinct() == 0 {
			t.Fatalf("week %d empty", i)
		}
	}
	if s.Current() != s.Weeks[4] {
		t.Fatal("Current should be the last week")
	}
}

func TestSpikingConceptsHaveHighTrend(t *testing.T) {
	w, s, spikes := seriesFixture(t)
	if len(spikes) == 0 {
		t.Skip("no spikes this seed")
	}
	names := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		names[i] = w.Concepts[i].Name
	}
	// Every ground-truth spiker should rank inside the top slice of trend
	// scores.
	top := s.Spiking(names, len(spikes)*4+5)
	topSet := map[string]bool{}
	for _, n := range top {
		topSet[n] = true
	}
	hits := 0
	for _, sp := range spikes {
		if topSet[sp] {
			hits++
		}
	}
	if hits*2 < len(spikes) {
		t.Fatalf("only %d/%d spikers in the trend top", hits, len(spikes))
	}
	// And their trend feature is positive.
	for _, sp := range spikes {
		if tr := s.TrendFeature(sp); tr <= 0 {
			t.Errorf("spiker %q trend = %.2f, want positive", sp, tr)
		}
	}
}

func TestTrendFeatureStableConcept(t *testing.T) {
	w, s, spikes := seriesFixture(t)
	spiked := map[string]bool{}
	for _, sp := range spikes {
		spiked[sp] = true
	}
	// Non-spiking concepts should mostly have |trend| well below the spike
	// scale.
	big := 0
	total := 0
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if spiked[c.Name] || c.Interest < 0.2 {
			continue
		}
		total++
		if tr := s.TrendFeature(c.Name); tr > 1.2 {
			big++
		}
	}
	if total > 0 && big*5 > total {
		t.Fatalf("%d/%d stable concepts look like spikes", big, total)
	}
}

func TestTrendFeatureDegenerate(t *testing.T) {
	s := &Series{Weeks: []*Log{FromCounts(map[string]int{"x": 5})}}
	if got := s.TrendFeature("x"); got != 0 {
		t.Fatalf("single-week trend = %v", got)
	}
	_, s2, _ := seriesFixture(t)
	if got := s2.TrendFeature("never queried concept"); got != 0 {
		t.Fatalf("unknown concept trend = %v", got)
	}
}

func TestGenerateSeriesDeterministic(t *testing.T) {
	w := world.New(world.Config{Seed: 233, VocabSize: 800, NumTopics: 6, NumConcepts: 60})
	s1, sp1 := GenerateSeries(w, SeriesConfig{Seed: 7, Weeks: 3})
	s2, sp2 := GenerateSeries(w, SeriesConfig{Seed: 7, Weeks: 3})
	if len(sp1) != len(sp2) {
		t.Fatal("spikes not deterministic")
	}
	for i := range s1.Weeks {
		if s1.Weeks[i].TotalFreq() != s2.Weeks[i].TotalFreq() {
			t.Fatal("weeks not deterministic")
		}
	}
}

func TestConceptOfLongestMatch(t *testing.T) {
	w := world.New(world.Config{Seed: 234, VocabSize: 800, NumTopics: 6, NumConcepts: 80})
	var multi *world.Concept
	for i := range w.Concepts {
		if len(w.Concepts[i].Terms) >= 2 {
			multi = &w.Concepts[i]
			break
		}
	}
	if multi == nil {
		t.Skip("no multi-term concept")
	}
	terms := append([]string{"prefix"}, multi.Terms...)
	got := conceptOf(w, terms)
	if got == nil || got.Name != multi.Name {
		t.Fatalf("conceptOf = %v, want %q", got, multi.Name)
	}
	if got := conceptOf(w, []string{"zzzz", "qqqq"}); got != nil {
		t.Fatalf("conceptOf random terms = %v", got)
	}
}
