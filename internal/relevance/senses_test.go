package relevance

import (
	"math/rand"
	"testing"

	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

func TestSphericalKMeansSeparatesObviousClusters(t *testing.T) {
	// Two obvious groups: {a,b} vectors vs {x,y} vectors.
	vecs := []map[string]float64{
		{"a": 1, "b": 0.5}, {"a": 0.9, "b": 0.6}, {"a": 1.1, "b": 0.4},
		{"x": 1, "y": 0.5}, {"x": 0.8, "y": 0.7}, {"x": 1.2, "y": 0.3},
	}
	for _, v := range vecs {
		normalize(v)
	}
	assign := sphericalKMeans(vecs, 2)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("first group split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("second group split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("groups merged: %v", assign)
	}
}

func TestSphericalKMeansDegenerate(t *testing.T) {
	if got := sphericalKMeans(nil, 2); len(got) != 0 {
		t.Fatal("empty input")
	}
	one := []map[string]float64{{"a": 1}}
	if got := sphericalKMeans(one, 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single vector: %v", got)
	}
}

func TestMineSensesAmbiguousConcept(t *testing.T) {
	// A world with a high ambiguity rate so we reliably find a two-sense
	// concept.
	w := world.New(world.Config{Seed: 171, VocabSize: 2000, NumTopics: 8, NumConcepts: 200, AmbiguousFraction: 0.3})
	f := fixtureFromWorld(t, w)

	var amb *world.Concept
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Ambiguous() && c.Specificity > 0.5 && c.Quality > 0.5 {
			amb = c
			break
		}
	}
	if amb == nil {
		t.Skip("no ambiguous concept")
	}
	senses := f.miner.MineSenses(amb.Name, 2, 0.1)
	if len(senses) == 0 {
		t.Fatal("no senses mined")
	}
	totalShare := 0.0
	for _, s := range senses {
		if len(s.Keywords) == 0 {
			t.Fatal("sense with no keywords")
		}
		totalShare += s.Share
	}
	if totalShare < 0.99 || totalShare > 1.01 {
		t.Fatalf("shares must sum to 1, got %v", totalShare)
	}
}

// The §IV-C boost: for an ambiguous concept, max-over-senses scoring must
// beat the diluted global pack in a secondary-sense context.
func TestSenseScoreBoostsSecondarySense(t *testing.T) {
	w := world.New(world.Config{Seed: 173, VocabSize: 2000, NumTopics: 8, NumConcepts: 200, AmbiguousFraction: 0.35})
	f := fixtureFromWorld(t, w)

	var amb *world.Concept
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Ambiguous() && c.Specificity > 0.6 && c.Quality > 0.6 {
			amb = c
			break
		}
	}
	if amb == nil {
		t.Skip("no ambiguous concept")
	}
	senseStore := BuildSenseStore(f.miner, []string{amb.Name}, 2)
	globalStore := BuildStore(f.miner, []string{amb.Name}, Snippets)

	rng := rand.New(rand.NewSource(9))
	// Compose documents in the secondary sense's topic.
	better := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		doc, _ := w.ComposeDoc(world.ComposeOptions{Topic: amb.SecondaryTopic, Sentences: 12},
			[]world.Mention{{Concept: amb, Relevant: true, Repeat: 2}}, rng)
		stems := ContextStems(doc)
		senseScore := senseStore.Score(amb.Name, stems)
		globalScore := globalStore.Score(amb.Name, stems)
		// Normalize by each pack's own total to compare coverage fairly.
		senseTotal, globalTotal := 0.0, 0.0
		for _, s := range senseStore.Senses(amb.Name) {
			if t := s.Keywords.Sum(); t > senseTotal {
				senseTotal = t
			}
		}
		globalTotal = globalStore.RelevantTerms(amb.Name).Sum()
		if senseTotal > 0 && globalTotal > 0 &&
			senseScore/senseTotal >= globalScore/globalTotal {
			better++
		}
	}
	if better < trials/2 {
		t.Fatalf("sense-aware coverage better in only %d/%d secondary-sense contexts", better, trials)
	}
}

func TestSenseStoreUnknown(t *testing.T) {
	s := &SenseStore{senses: map[string][]Sense{}}
	if got := s.Score("missing", map[string]bool{"a": true}); got != 0 {
		t.Fatalf("unknown concept sense score = %v", got)
	}
	if got := s.Senses("missing"); got != nil {
		t.Fatalf("unknown senses = %v", got)
	}
}

// fixtureFromWorld builds a miner over an existing world.
func fixtureFromWorld(t testing.TB, w *world.World) *fixture {
	t.Helper()
	eng := searchsim.BuildCorpus(w, searchsim.CorpusConfig{Seed: w.Config.Seed + 1, MaxDocsPerConcept: 25})
	return &fixture{w: w, eng: eng, miner: NewMiner(eng, nil, nil)}
}
