// Package relevance implements the paper's §IV-B: mining, for every concept
// c_i, its top m=100 relevant context keywords with confidence scores
//
//	relevantTerms_i = {(t_i1, s_i1), ..., (t_im, s_im)}
//
// from three resources — search-engine result snippets, the Prisma
// query-refinement tool, and related query suggestions — and then estimating
// the relevance of a concept in a *new* context from co-occurrences of the
// pre-mined keywords with the concept in that context.
//
// All mined terms are stemmed, lower-cased and stripped of surrounding
// punctuation, exactly as the paper notes.
package relevance

import (
	"math"
	"sort"
	"sync"

	"contextrank/internal/corpus"
	"contextrank/internal/match"
	"contextrank/internal/par"
	"contextrank/internal/searchsim"
	"contextrank/internal/stem"
	"contextrank/internal/textproc"
)

// Resource selects the mining source.
type Resource int

const (
	// Snippets mines the snippets of the first hundred search results —
	// the paper's best resource (Table IV).
	Snippets Resource = iota
	// Prisma mines the ≤20 feedback terms of the Prisma tool.
	Prisma
	// Suggestions mines up to 300 related query suggestions with their
	// frequencies, scored Σ ln(query_freq) · idf(term).
	Suggestions
	// NumResources is the number of Resource values (for dense per-resource
	// tables).
	NumResources
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case Snippets:
		return "snippets"
	case Prisma:
		return "prisma"
	default:
		return "suggestions"
	}
}

// TopM is the paper's keyword budget per concept ("top m (100 used in
// practice) relevant context keywords").
const TopM = 100

// SnippetDepth is how many result snippets are mined ("the snippets
// retrieved for the first hundred results").
const SnippetDepth = 100

// Miner mines relevant keywords for concepts. On a frozen engine, mining
// runs on the interned-ID fast path (interned.go): term facts and stems are
// precomputed per vocabulary id once, and per-concept mining accumulates
// into pooled id-keyed scratch instead of per-concept string maps. The
// string path below is retained both as the unfrozen fallback and as the
// reference the differential tests pin the interned path to, bit for bit.
type Miner struct {
	engine    *searchsim.Engine
	prisma    *searchsim.Prisma
	suggestor *searchsim.Suggestor
	m         int

	tableOnce sync.Once
	tbl       *termTable
	scratch   sync.Pool // *mineScratch
}

// NewMiner builds a miner over the three resources. Any resource may be nil
// if only specific Resource values will be mined.
func NewMiner(e *searchsim.Engine, p *searchsim.Prisma, s *searchsim.Suggestor) *Miner {
	return &Miner{engine: e, prisma: p, suggestor: s, m: TopM}
}

// Mine returns the concept's relevant keywords from the chosen resource:
// up to TopM stemmed terms with confidence scores, sorted decreasing.
// The concept's own terms are excluded (they trivially co-occur).
func (mn *Miner) Mine(concept string, r Resource) corpus.Vector {
	if mn.engine != nil && mn.engine.Frozen() {
		switch r {
		case Snippets:
			return mn.mineSnippetsIDs(concept)
		case Prisma:
			return mn.minePrismaIDs(concept)
		default:
			return mn.mineSuggestionsIDs(concept)
		}
	}
	switch r {
	case Snippets:
		return mn.mineSnippets(concept)
	case Prisma:
		return mn.minePrisma(concept)
	default:
		return mn.mineSuggestions(concept)
	}
}

// ownStems returns the stemmed terms of the concept itself.
func ownStems(concept string) map[string]bool {
	out := make(map[string]bool)
	for _, t := range textproc.Words(concept) {
		out[stem.Stem(t)] = true
	}
	return out
}

// MaxDocFrac drops candidate keywords that occur in more than this fraction
// of the corpus: such terms co-occur with everything and carry no
// concept-specific relevance signal (they behave like corpus-level
// stop-words).
const MaxDocFrac = 0.15

// finalize stems raw term scores (accumulating same-stem scores), drops the
// concept's own terms, stop-words and corpus-wide common terms, sorts, and
// truncates to m.
//
// Same-stem scores accumulate in canonical order — ascending rank(term),
// where rank is the term's vocabulary id — never map-iteration order, so
// float sums are reproducible and bit-identical to the interned path's
// finalizeIDs (which walks touched ids ascending).
func (mn *Miner) finalize(concept string, scores map[string]float64, rank func(string) uint32) corpus.Vector {
	own := ownStems(concept)
	dict := mn.engine.Dictionary()
	maxDF := int(MaxDocFrac * float64(dict.NumDocs()))
	terms := make([]string, 0, len(scores))
	for term := range scores {
		terms = append(terms, term)
	}
	sort.Slice(terms, func(i, j int) bool {
		ri, rj := rank(terms[i]), rank(terms[j])
		if ri != rj {
			return ri < rj
		}
		return terms[i] < terms[j] // NoID terms: stable fallback on text
	})
	agg := make(map[string]float64, len(scores))
	for _, term := range terms {
		s := scores[term]
		if textproc.IsStopword(term) {
			continue
		}
		if dict.DocFreq(term) > maxDF {
			continue
		}
		st := stem.Stem(term)
		if st == "" || own[st] {
			continue
		}
		agg[st] += s
	}
	v := make(corpus.Vector, 0, len(agg))
	for t, s := range agg {
		v = append(v, corpus.Entry{Term: t, Weight: s})
	}
	corpus.SortVector(v)
	if len(v) > mn.m {
		v = v[:mn.m]
	}
	return v
}

// engineRank orders terms by engine-vocabulary id (snippet and Prisma terms
// always come from indexed documents, so they are always in-vocabulary).
func (mn *Miner) engineRank(t string) uint32 { return mn.engine.Vocab().ID(t) }

// logRank orders terms by query-log-vocabulary id (suggestion terms come
// from log queries).
func (mn *Miner) logRank(t string) uint32 { return mn.suggestor.Log().Vocab().ID(t) }

// mineSnippets: "we pretend that the returned snippets constitute a single
// document and then use a bag-of-words model. For each unique term that
// appears in this document, we compute its tf·idf score."
func (mn *Miner) mineSnippets(concept string) corpus.Vector {
	snippets := mn.engine.Snippets(concept, SnippetDepth)
	counts := make(map[string]int)
	for _, s := range snippets {
		for _, t := range textproc.Words(s) {
			counts[t]++
		}
	}
	dict := mn.engine.Dictionary()
	scores := make(map[string]float64, len(counts))
	for t, c := range counts {
		scores[t] = float64(c) * dict.IDF(t)
	}
	return mn.finalize(concept, scores, mn.engineRank)
}

// minePrisma: "We construct a single document from the concepts returned by
// Prisma for concept c_i, and compute scores s_ij based on the tf·idf
// values."
func (mn *Miner) minePrisma(concept string) corpus.Vector {
	feedback := mn.prisma.Feedback(concept)
	counts := make(map[string]float64)
	for _, e := range feedback {
		// The feedback entry weight acts as the term's count mass in the
		// pseudo-document.
		counts[e.Term] += e.Weight
	}
	dict := mn.engine.Dictionary()
	scores := make(map[string]float64, len(counts))
	for t, c := range counts {
		scores[t] = c * dict.IDF(t)
	}
	return mn.finalize(concept, scores, mn.engineRank)
}

// mineSuggestions: each unique term across the suggestions is scored
// Σ_{i=1..k} ln(query_freq_i) · idf(term), over the k suggestions
// containing it.
func (mn *Miner) mineSuggestions(concept string) corpus.Vector {
	suggestions := mn.suggestor.Suggest(concept, searchsim.SuggestionLimit)
	lnSum := make(map[string]float64)
	for _, s := range suggestions {
		seen := make(map[string]bool)
		for _, t := range textproc.Words(s.Text) {
			if !seen[t] {
				seen[t] = true
				lnSum[t] += math.Log(float64(s.Freq) + 1)
			}
		}
	}
	dict := mn.engine.Dictionary()
	scores := make(map[string]float64, len(lnSum))
	for t, ls := range lnSum {
		scores[t] = ls * dict.IDF(t)
	}
	return mn.finalize(concept, scores, mn.logRank)
}

// Store holds pre-mined relevant keywords for a concept inventory — the
// offline product that the production framework packs into memory (§VI).
// Alongside the term vectors it keeps a store-local stem vocabulary and the
// interned stem ids of every vector (built once at construction), so
// context scoring can run over a pooled id-keyed context (Ctx, context.go)
// instead of a per-context string map.
type Store struct {
	resource Resource
	terms    map[string]corpus.Vector
	stemVoc  *match.Vocab        // store-local stem string <-> dense id
	ids      map[string][]uint32 // concept -> stem ids aligned with terms[concept]
	ctxPool  sync.Pool           // *Ctx (see AcquireCtx)
}

// BuildStore mines all concepts with the given resource on all cores; see
// BuildStoreWorkers for the knob.
func BuildStore(mn *Miner, concepts []string, r Resource) *Store {
	return BuildStoreWorkers(mn, concepts, r, 0)
}

// BuildStoreWorkers mines all concepts with the given resource, fanning the
// per-concept mining across workers (par.Workers semantics: 1 = serial,
// 0 = all cores): it is the slowest offline step (one search + snippet pass
// per concept) and each concept is independent. Results are collected in
// concept order, so the store is bit-identical regardless of worker count
// or scheduling.
func BuildStoreWorkers(mn *Miner, concepts []string, r Resource, workers int) *Store {
	vecs := par.Map(workers, len(concepts), func(i int) corpus.Vector {
		return mn.Mine(concepts[i], r)
	})
	terms := make(map[string]corpus.Vector, len(concepts))
	for i, c := range concepts {
		terms[c] = vecs[i]
	}
	s := &Store{resource: r, terms: terms}
	s.buildIndex()
	return s
}

// NewStore wraps pre-computed vectors (used by the framework's packed
// representation and by tests).
func NewStore(r Resource, terms map[string]corpus.Vector) *Store {
	s := &Store{resource: r, terms: terms}
	s.buildIndex()
	return s
}

// Resource returns the resource the store was mined from.
func (s *Store) Resource() Resource { return s.resource }

// RelevantTerms returns the mined keywords of a concept (nil if unknown).
func (s *Store) RelevantTerms(concept string) corpus.Vector { return s.terms[concept] }

// Concepts returns the stored concept names, sorted.
func (s *Store) Concepts() []string {
	out := make([]string, 0, len(s.terms))
	for c := range s.terms {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Summation returns the sum of a concept's relevant-keyword scores — the
// Table II statistic that separates specific concepts (large summations)
// from low-quality ones (small summations).
func (s *Store) Summation(concept string) float64 {
	return s.terms[concept].Sum()
}

// ContextStems computes the stemmed content-word set of a context, the form
// Score expects. Documents are stemmed once and scored against many
// concepts.
func ContextStems(text string) map[string]bool {
	out := make(map[string]bool)
	for _, t := range textproc.ContentWords(text) {
		out[stem.Stem(t)] = true
	}
	return out
}

// LocalRadius is the default byte radius of the local context used to score
// a specific mention: the paper estimates relevance from "co-occurrences of
// the pre-mined keywords and the given concept in the context", i.e. the
// text surrounding the occurrence, not the whole document.
const LocalRadius = 300

// ContextStemsAround computes the stemmed content-word set of the text
// within radius bytes of position (clamped to the text bounds). radius <= 0
// selects LocalRadius.
func ContextStemsAround(text string, position, radius int) map[string]bool {
	lo, hi := contextBounds(text, position, radius)
	return ContextStems(text[lo:hi])
}

// contextBounds computes the byte window [lo, hi) of radius around position,
// clamped to the text and expanded to whitespace so words are not cut.
// radius <= 0 selects LocalRadius. Shared by ContextStemsAround and
// Ctx.SetAround so both paths see the identical window.
func contextBounds(text string, position, radius int) (int, int) {
	if radius <= 0 {
		radius = LocalRadius
	}
	lo := position - radius
	if lo < 0 {
		lo = 0
	}
	hi := position + radius
	if hi > len(text) {
		hi = len(text)
	}
	for lo > 0 && text[lo-1] != ' ' && text[lo-1] != '\n' {
		lo--
	}
	for hi < len(text) && text[hi] != ' ' && text[hi] != '\n' {
		hi++
	}
	return lo, hi
}

// Score estimates the relevance of concept in the context: the summed
// confidence of the concept's pre-mined keywords that co-occur with it in
// the context ("a reasonable approximation for the relevance of that
// concept can be computed based on the co-occurrences of the pre-mined
// keywords and the given concept in the context"). Raw scores are used, so
// low-quality concepts — whose mined keywords carry small confidences —
// "almost never get a high relevance score in any context" (the safety
// net).
func (s *Store) Score(concept string, contextStems map[string]bool) float64 {
	score := 0.0
	for _, e := range s.terms[concept] {
		if contextStems[e.Term] {
			score += e.Weight
		}
	}
	return score
}

// NormalizedScore is Score divided by the concept's keyword summation: the
// *fraction* of the concept's keyword confidence present in the context,
// in [0,1]. The raw score carries the concept's pack scale (Table II), which
// is a quality signal; the normalized score isolates the contextual-coverage
// signal. The combined ranker uses both.
func (s *Store) NormalizedScore(concept string, contextStems map[string]bool) float64 {
	sum := s.terms[concept].Sum()
	if sum <= 0 {
		return 0
	}
	return s.Score(concept, contextStems) / sum
}
