package relevance

import (
	"math/rand"
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/querylog"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

type fixture struct {
	w     *world.World
	eng   *searchsim.Engine
	miner *Miner
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	w := world.New(world.Config{Seed: 71, VocabSize: 1500, NumTopics: 8, NumConcepts: 150})
	eng := searchsim.BuildCorpus(w, searchsim.CorpusConfig{Seed: 72, MaxDocsPerConcept: 25})
	log := querylog.Generate(w, querylog.Config{Seed: 73})
	miner := NewMiner(eng, searchsim.NewPrisma(eng), searchsim.NewSuggestor(log))
	return &fixture{w: w, eng: eng, miner: miner}
}

func pick(w *world.World, pred func(*world.Concept) bool) *world.Concept {
	for i := range w.Concepts {
		if pred(&w.Concepts[i]) {
			return &w.Concepts[i]
		}
	}
	return nil
}

func TestMineSnippetsBasics(t *testing.T) {
	f := newFixture(t)
	c := pick(f.w, func(c *world.Concept) bool { return c.Specificity > 0.6 && c.Quality > 0.6 })
	if c == nil {
		t.Skip("no specific concept")
	}
	v := f.miner.Mine(c.Name, Snippets)
	if len(v) == 0 {
		t.Fatal("no keywords mined")
	}
	if len(v) > TopM {
		t.Fatalf("more than %d keywords: %d", TopM, len(v))
	}
	for i := 1; i < len(v); i++ {
		if v[i-1].Weight < v[i].Weight {
			t.Fatal("keywords not sorted")
		}
	}
	for _, e := range v {
		if e.Weight <= 0 {
			t.Fatalf("non-positive keyword score: %+v", e)
		}
	}
}

func TestMineExcludesOwnTerms(t *testing.T) {
	f := newFixture(t)
	c := pick(f.w, func(c *world.Concept) bool { return len(c.Terms) >= 2 && c.Quality > 0.5 })
	if c == nil {
		t.Skip("no multi-term concept")
	}
	own := ownStems(c.Name)
	for _, r := range []Resource{Snippets, Prisma, Suggestions} {
		for _, e := range f.miner.Mine(c.Name, r) {
			if own[e.Term] {
				t.Fatalf("%v keywords contain own term %q", r, e.Term)
			}
		}
	}
}

// The Table II effect: specific, good concepts must have much larger
// keyword-score summations than low-quality general phrases.
func TestSummationSeparatesQuality(t *testing.T) {
	f := newFixture(t)
	store := BuildStore(f.miner, conceptNames(f.w), Snippets)
	var specSum, specN, lowSum, lowN float64
	for i := range f.w.Concepts {
		c := &f.w.Concepts[i]
		s := store.Summation(c.Name)
		if c.LowQuality() {
			lowSum += s
			lowN++
		} else if c.Specificity > 0.7 && c.Quality > 0.6 {
			specSum += s
			specN++
		}
	}
	if specN == 0 || lowN == 0 {
		t.Skip("world lacks extremes")
	}
	specAvg, lowAvg := specSum/specN, lowSum/lowN
	// The paper's Table II shows a ~5x spread; the synthetic world
	// reproduces the direction with a smaller factor (see EXPERIMENTS.md).
	if specAvg <= 1.3*lowAvg {
		t.Fatalf("specific avg summation %.1f not well above low-quality %.1f", specAvg, lowAvg)
	}
}

// Relevance scoring must separate relevant from irrelevant contexts for the
// same concept — the core property the ranker relies on.
func TestScoreRelevantVsIrrelevantContext(t *testing.T) {
	f := newFixture(t)
	c := pick(f.w, func(c *world.Concept) bool {
		return c.Specificity > 0.7 && c.Quality > 0.6 && c.Topic >= 0
	})
	if c == nil {
		t.Skip("no specific concept")
	}
	store := BuildStore(f.miner, []string{c.Name}, Snippets)
	rng := rand.New(rand.NewSource(99))

	relevantDoc, _ := f.w.ComposeDoc(world.ComposeOptions{Topic: c.Topic},
		[]world.Mention{{Concept: c, Relevant: true, Repeat: 2}}, rng)
	otherTopic := (c.Topic + 3) % len(f.w.Topics)
	irrelevantDoc, _ := f.w.ComposeDoc(world.ComposeOptions{Topic: otherTopic},
		[]world.Mention{{Concept: c, Relevant: false}}, rng)

	relScore := store.Score(c.Name, ContextStems(relevantDoc))
	irrScore := store.Score(c.Name, ContextStems(irrelevantDoc))
	if relScore <= irrScore {
		t.Fatalf("relevant context score %.2f not above irrelevant %.2f", relScore, irrScore)
	}
}

func TestScoreUnknownConcept(t *testing.T) {
	store := NewStore(Snippets, map[string]corpus.Vector{})
	if got := store.Score("unknown", map[string]bool{"x": true}); got != 0 {
		t.Fatalf("unknown concept score = %v", got)
	}
	if got := store.Summation("unknown"); got != 0 {
		t.Fatalf("unknown summation = %v", got)
	}
}

func TestScoreHandStore(t *testing.T) {
	store := NewStore(Snippets, map[string]corpus.Vector{
		"iraq war": {{Term: "troop", Weight: 5}, {Term: "baghdad", Weight: 3}, {Term: "soldier", Weight: 1}},
	})
	ctx := map[string]bool{"troop": true, "soldier": true, "banana": true}
	if got := store.Score("iraq war", ctx); got != 6 {
		t.Fatalf("Score = %v, want 6", got)
	}
	if got := store.Score("iraq war", map[string]bool{}); got != 0 {
		t.Fatalf("empty context score = %v", got)
	}
}

func TestContextStemsStemmedAndFiltered(t *testing.T) {
	stems := ContextStems("The troops were advancing through Baghdad quickly.")
	if !stems["troop"] {
		t.Fatalf("expected stemmed 'troop' in %v", stems)
	}
	if stems["the"] || stems["were"] {
		t.Fatal("stopwords must be removed")
	}
}

func TestMinePrismaRespectsCap(t *testing.T) {
	f := newFixture(t)
	c := pick(f.w, func(c *world.Concept) bool { return c.Quality > 0.5 })
	v := f.miner.Mine(c.Name, Prisma)
	// Prisma feeds at most 20 raw terms; stemming can only merge them.
	if len(v) > searchsim.PrismaFeedbackLimit {
		t.Fatalf("prisma mined %d terms, cap is %d", len(v), searchsim.PrismaFeedbackLimit)
	}
}

// Snippets must provide keyword coverage at least as large as Prisma's
// (the paper's explanation for Table IV: "snippets provide much better
// coverage of keywords compared to Prisma and query suggestions").
func TestSnippetCoverageExceedsPrisma(t *testing.T) {
	f := newFixture(t)
	var snippetTotal, prismaTotal int
	n := 0
	for i := range f.w.Concepts {
		c := &f.w.Concepts[i]
		if c.Quality < 0.5 || n >= 20 {
			continue
		}
		n++
		snippetTotal += len(f.miner.Mine(c.Name, Snippets))
		prismaTotal += len(f.miner.Mine(c.Name, Prisma))
	}
	if n == 0 {
		t.Skip("no concepts")
	}
	if snippetTotal <= prismaTotal {
		t.Fatalf("snippet coverage %d not above prisma %d", snippetTotal, prismaTotal)
	}
}

func TestStoreConceptsSorted(t *testing.T) {
	store := NewStore(Snippets, map[string]corpus.Vector{"b": nil, "a": nil, "c": nil})
	got := store.Concepts()
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Concepts = %v", got)
	}
	if store.Resource() != Snippets {
		t.Fatal("Resource getter broken")
	}
}

func TestResourceString(t *testing.T) {
	if Snippets.String() != "snippets" || Prisma.String() != "prisma" || Suggestions.String() != "suggestions" {
		t.Fatal("Resource.String broken")
	}
}

func conceptNames(w *world.World) []string {
	out := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		out[i] = w.Concepts[i].Name
	}
	return out
}

func BenchmarkMineSnippets(b *testing.B) {
	f := newFixture(b)
	name := f.w.Concepts[30].Name
	f.miner.Mine(name, Snippets) // warm the term table and pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.miner.Mine(name, Snippets)
	}
}

func BenchmarkRelevanceScore(b *testing.B) {
	f := newFixture(b)
	names := conceptNames(f.w)[:50]
	store := BuildStore(f.miner, names, Snippets)
	rng := rand.New(rand.NewSource(5))
	doc, _ := f.w.ComposeDoc(world.ComposeOptions{Topic: 0, Sentences: 20}, nil, rng)
	stems := ContextStems(doc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Score(names[i%len(names)], stems)
	}
}

// BuildStore mines concurrently; the result must be identical to the
// sequential path and race-free.
func TestBuildStoreParallelDeterministic(t *testing.T) {
	f := newFixture(t)
	names := conceptNames(f.w)[:40]
	s1 := BuildStore(f.miner, names, Snippets)
	s2 := BuildStore(f.miner, names, Snippets)
	for _, n := range names {
		a, b := s1.RelevantTerms(n), s2.RelevantTerms(n)
		if len(a) != len(b) {
			t.Fatalf("%q: %d terms vs %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: term %d differs: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
}
