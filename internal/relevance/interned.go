package relevance

import (
	"math"
	"slices"

	"contextrank/internal/corpus"
	"contextrank/internal/match"
	"contextrank/internal/searchsim"
	"contextrank/internal/stem"
	"contextrank/internal/textproc"
)

// This file is the miner's interned-ID fast path, active whenever the engine
// is frozen. The string path in relevance.go rebuilds a string-keyed map per
// concept and re-derives idf, document frequency, stopword status and stem
// for every term sighting; here those per-term facts are computed once per
// vocabulary id (termTable) and each concept accumulates raw scores into
// pooled id-keyed scratch (mineScratch). The outputs are bit-identical to
// the string path — both accumulate floats in ascending-vocabulary-id order
// — which the differential tests pin.

// termFacts caches, per vocabulary id, everything finalize needs to know
// about a term: its stem (as an id in termTable.stems), its engine-corpus
// idf and document frequency, and whether it is a stopword.
type termFacts struct {
	stemOf []uint32  // term id -> stem id in termTable.stems; match.NoID if the stem is empty
	idf    []float64 // engine-dictionary smoothed IDF
	df     []int32   // engine-dictionary document frequency
	stop   []bool    // textproc.IsStopword
}

// termTable holds the miner's per-id fact tables: one for the engine
// vocabulary (snippets and Prisma terms) and one for the query-log
// vocabulary (suggestion terms), plus the shared stem vocabulary both
// fact tables intern into. Built once per miner, on first frozen Mine.
type termTable struct {
	stems *match.Vocab
	eng   termFacts
	sug   termFacts
}

// tokenSource is the read side of a vocabulary — satisfied by both
// match.Vocab (query log) and searchsim.Vocab (the live engine's
// concurrent-read vocabulary).
type tokenSource interface {
	Len() int
	Token(id uint32) string
}

// buildFacts derives the fact table for one vocabulary. Idf and document
// frequency always come from the engine dictionary — the string path scores
// suggestion terms with engine idf too.
func buildFacts(voc tokenSource, dict *corpus.Dictionary, stems *match.Vocab) termFacts {
	n := voc.Len()
	f := termFacts{
		stemOf: make([]uint32, n),
		idf:    make([]float64, n),
		df:     make([]int32, n),
		stop:   make([]bool, n),
	}
	for id := 0; id < n; id++ {
		t := voc.Token(uint32(id))
		f.idf[id] = dict.IDF(t)
		f.df[id] = int32(dict.DocFreq(t))
		f.stop[id] = textproc.IsStopword(t)
		f.stemOf[id] = match.NoID
		if st := stem.Stem(t); st != "" {
			f.stemOf[id] = stems.Intern(st)
		}
	}
	return f
}

// table lazily builds the termTable. Callers have already checked that the
// engine is frozen, so both vocabularies are final.
func (mn *Miner) table() *termTable {
	mn.tableOnce.Do(func() {
		tab := &termTable{stems: match.NewVocab()}
		tab.eng = buildFacts(mn.engine.Vocab(), mn.engine.Dictionary(), tab.stems)
		if mn.suggestor != nil {
			tab.sug = buildFacts(mn.suggestor.Log().Vocab(), mn.engine.Dictionary(), tab.stems)
		}
		mn.tbl = tab
	})
	return mn.tbl
}

// mineScratch is one worker's pooled working set. Scores are id-indexed
// dense arrays zeroed selectively through the touched lists, so releasing a
// scratch is O(touched), not O(vocabulary). All accumulated scores are
// strictly positive (counts, ln(freq+1) with freq >= 1, Prisma weights), so
// score == 0 is a valid "untouched" test.
type mineScratch struct {
	score   []float64 // engine term id -> raw score
	touched []uint32  // engine ids with score != 0
	sscore  []float64 // log term id -> raw score
	stouch  []uint32  // log ids with sscore != 0
	smark   []uint32  // log term id -> generation of last sighting
	sgen    uint32    // current per-suggestion dedupe generation
	agg     []float64 // stem id -> aggregated score
	aggT    []uint32  // stem ids with agg != 0
	own     []uint32  // the concept's own stem ids
}

// getScratch takes a scratch from the pool and sizes its arrays to the
// (frozen, hence fixed) vocabularies.
func (mn *Miner) getScratch(tab *termTable) *mineScratch {
	sc, _ := mn.scratch.Get().(*mineScratch)
	if sc == nil {
		sc = new(mineScratch)
	}
	if n := len(tab.eng.idf); len(sc.score) < n {
		sc.score = make([]float64, n)
	}
	if n := len(tab.sug.idf); len(sc.sscore) < n {
		sc.sscore = make([]float64, n)
		sc.smark = make([]uint32, n)
		sc.sgen = 0
	}
	if n := tab.stems.Len(); len(sc.agg) < n {
		sc.agg = make([]float64, n)
	}
	return sc
}

// finalizeIDs is finalize over id-keyed scratch: multiply raw scores by idf,
// drop stopwords, corpus-wide common terms and the concept's own stems, and
// aggregate same-stem scores — walking touched ids in ascending order, the
// same canonical order the string finalize sorts its terms into, so the
// float sums are bit-identical. Consumed score entries are zeroed; the
// returned Vector is freshly allocated and shares nothing with the scratch.
//
//kw:fresh
func (mn *Miner) finalizeIDs(sc *mineScratch, f *termFacts, concept string, score []float64, touched []uint32) corpus.Vector {
	own := sc.own[:0]
	for _, t := range textproc.Words(concept) {
		if st := stem.Stem(t); st != "" {
			if sid := mn.tbl.stems.ID(st); sid != match.NoID {
				own = append(own, sid)
			}
		}
	}
	sc.own = own
	dict := mn.engine.Dictionary()
	maxDF := int(MaxDocFrac * float64(dict.NumDocs()))

	slices.Sort(touched)
	aggT := sc.aggT[:0]
	for _, id := range touched {
		s := score[id] * f.idf[id]
		score[id] = 0
		if f.stop[id] || int(f.df[id]) > maxDF {
			continue
		}
		sid := f.stemOf[id]
		if sid == match.NoID || containsID(own, sid) {
			continue
		}
		if sc.agg[sid] == 0 {
			aggT = append(aggT, sid)
		}
		sc.agg[sid] += s
	}
	v := make(corpus.Vector, 0, len(aggT))
	for _, sid := range aggT {
		v = append(v, corpus.Entry{Term: mn.tbl.stems.Token(sid), Weight: sc.agg[sid]})
		sc.agg[sid] = 0
	}
	sc.aggT = aggT[:0]
	corpus.SortVector(v)
	if len(v) > mn.m {
		v = v[:mn.m]
	}
	return v
}

// containsID reports whether ids (a concept's handful of own stems) contains x.
func containsID(ids []uint32, x uint32) bool {
	for _, v := range ids {
		if v == x {
			return true
		}
	}
	return false
}

// mineSnippetsIDs is mineSnippets without strings: snippet tokens arrive as
// engine vocabulary ids and are counted straight into the dense score array.
func (mn *Miner) mineSnippetsIDs(concept string) corpus.Vector {
	tab := mn.table()
	sc := mn.getScratch(tab)
	score := sc.score
	touched := sc.touched[:0]
	mn.engine.VisitSnippetTokens(concept, SnippetDepth, func(tokens []uint32, lo, hi int) {
		for _, id := range tokens[lo:hi] {
			if int(id) >= len(score) {
				// A term interned after this miner's fact table was built
				// (live ingest ran since): no idf/stem facts exist for it,
				// so it cannot contribute — skip instead of faulting.
				continue
			}
			if score[id] == 0 {
				touched = append(touched, id)
			}
			score[id]++
		}
	})
	v := mn.finalizeIDs(sc, &tab.eng, concept, score, touched)
	sc.touched = touched[:0]
	mn.scratch.Put(sc)
	return v
}

// minePrismaIDs is minePrisma without strings: feedback entries arrive as
// engine vocabulary ids with their weights.
func (mn *Miner) minePrismaIDs(concept string) corpus.Vector {
	tab := mn.table()
	sc := mn.getScratch(tab)
	score := sc.score
	touched := sc.touched[:0]
	mn.prisma.VisitFeedback(concept, func(term uint32, weight float64) {
		if int(term) >= len(score) {
			return // interned after the fact table was built; see mineSnippetsIDs
		}
		if score[term] == 0 {
			touched = append(touched, term)
		}
		score[term] += weight
	})
	v := mn.finalizeIDs(sc, &tab.eng, concept, score, touched)
	sc.touched = touched[:0]
	mn.scratch.Put(sc)
	return v
}

// mineSuggestionsIDs is mineSuggestions without strings: suggestions arrive
// as query-log indexes, their terms as log vocabulary ids. The per-suggestion
// unique-term rule ("each unique term across the suggestions is scored over
// the k suggestions containing it") uses a generation-marked table instead of
// a per-suggestion map.
func (mn *Miner) mineSuggestionsIDs(concept string) corpus.Vector {
	tab := mn.table()
	sc := mn.getScratch(tab)
	log := mn.suggestor.Log()
	stouch := sc.stouch[:0]
	mn.suggestor.VisitSuggestions(concept, searchsim.SuggestionLimit, func(qi int32, freq int) {
		sc.sgen++
		if sc.sgen == 0 { // generation wrapped: reset the mark table
			clear(sc.smark)
			sc.sgen = 1
		}
		ln := math.Log(float64(freq) + 1)
		for _, tid := range log.TermIDs(int(qi)) {
			if sc.smark[tid] == sc.sgen {
				continue
			}
			sc.smark[tid] = sc.sgen
			if sc.sscore[tid] == 0 {
				stouch = append(stouch, tid)
			}
			sc.sscore[tid] += ln
		}
	})
	v := mn.finalizeIDs(sc, &tab.sug, concept, sc.sscore, stouch)
	sc.stouch = stouch[:0]
	mn.scratch.Put(sc)
	return v
}
