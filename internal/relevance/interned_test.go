package relevance

import (
	"reflect"
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/world"
)

// refMine is the string reference path, bypassing the frozen-engine dispatch
// in Mine. The interned path must reproduce it bit for bit.
func refMine(mn *Miner, concept string, r Resource) corpus.Vector {
	switch r {
	case Snippets:
		return mn.mineSnippets(concept)
	case Prisma:
		return mn.minePrisma(concept)
	default:
		return mn.mineSuggestions(concept)
	}
}

// TestDifferentialInternedMine pins the interned-ID mining path to the
// string reference, bit-identical (same terms, same float weights, same
// order), for every resource over a spread of concepts — including repeated
// mining of the same concept, which exercises pooled-scratch reuse.
func TestDifferentialInternedMine(t *testing.T) {
	f := newFixture(t)
	if !f.eng.Frozen() {
		t.Fatal("fixture engine must be frozen for the interned path")
	}
	concepts := []string{}
	for i := range f.w.Concepts {
		if i%11 == 0 {
			concepts = append(concepts, f.w.Concepts[i].Name)
		}
	}
	concepts = append(concepts, concepts[0], "unknownterm zzz", "")
	for _, r := range []Resource{Snippets, Prisma, Suggestions} {
		for _, c := range concepts {
			want := refMine(f.miner, c, r)
			got := f.miner.Mine(c, r)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s(%q): interned path diverged\n got %v\nwant %v", r, c, got, want)
			}
		}
	}
}

// TestDifferentialInternedMineParallel pins the interned path under
// BuildStoreWorkers at several worker counts against a serial string-path
// store: pooled scratch must not leak state across workers or concepts.
func TestDifferentialInternedMineParallel(t *testing.T) {
	f := newFixture(t)
	concepts := []string{}
	for i := 0; i < len(f.w.Concepts); i += 7 {
		concepts = append(concepts, f.w.Concepts[i].Name)
	}
	for _, r := range []Resource{Snippets, Prisma, Suggestions} {
		want := make(map[string]corpus.Vector, len(concepts))
		for _, c := range concepts {
			want[c] = refMine(f.miner, c, r)
		}
		for _, workers := range []int{1, 4, 0} {
			st := BuildStoreWorkers(f.miner, concepts, r, workers)
			for _, c := range concepts {
				if !reflect.DeepEqual(st.RelevantTerms(c), want[c]) {
					t.Fatalf("%s workers=%d %q: parallel interned store diverged", r, workers, c)
				}
			}
		}
	}
}

// TestDifferentialCtxScore pins the id-keyed context scorer to the map path:
// identical float scores for full-document and windowed contexts, across
// reuse of one Ctx.
func TestDifferentialCtxScore(t *testing.T) {
	f := newFixture(t)
	concepts := []string{}
	for i := 0; i < len(f.w.Concepts); i += 13 {
		concepts = append(concepts, f.w.Concepts[i].Name)
	}
	st := BuildStore(f.miner, concepts, Snippets)
	ctx := st.NewCtx()

	docs := []string{}
	for d := 0; d < f.eng.NumDocs() && len(docs) < 12; d += 97 {
		docs = append(docs, f.eng.Doc(d).Text)
	}
	for _, text := range docs {
		stems := ContextStems(text)
		ctx.SetText(text)
		for _, c := range concepts {
			if got, want := st.ScoreCtx(c, ctx), st.Score(c, stems); got != want { //kwlint:ignore floatcompare — differential test: both paths must be bit-identical
				t.Fatalf("ScoreCtx(%q) = %v, map path = %v", c, got, want)
			}
			if got, want := st.NormalizedScoreCtx(c, ctx), st.NormalizedScore(c, stems); got != want { //kwlint:ignore floatcompare — differential test: both paths must be bit-identical
				t.Fatalf("NormalizedScoreCtx(%q) = %v, map path = %v", c, got, want)
			}
		}
		// Windowed local context at a few positions.
		for _, pos := range []int{0, len(text) / 2, len(text)} {
			stems := ContextStemsAround(text, pos, 0)
			ctx.SetAround(text, pos, 0)
			for _, c := range concepts {
				if got, want := st.ScoreCtx(c, ctx), st.Score(c, stems); got != want { //kwlint:ignore floatcompare — differential test: both paths must be bit-identical
					t.Fatalf("windowed ScoreCtx(%q, pos=%d) = %v, map path = %v", c, pos, got, want)
				}
			}
		}
	}
}

// TestCtxFreshMatchesNothing: a Ctx that has never been loaded scores zero.
func TestCtxFreshMatchesNothing(t *testing.T) {
	f := newFixture(t)
	c := pick(f.w, func(c *world.Concept) bool { return c.Specificity > 0.6 })
	st := BuildStore(f.miner, []string{c.Name}, Snippets)
	if got := st.ScoreCtx(c.Name, st.NewCtx()); got != 0 {
		t.Fatalf("fresh Ctx scored %v, want 0", got)
	}
}
