package relevance

import (
	"contextrank/internal/match"
	"contextrank/internal/stem"
	"contextrank/internal/textproc"
)

// This file is the id-keyed context-scoring path. The map API
// (ContextStems + Store.Score) builds a fresh map[string]bool per context
// and stems every context word from scratch; the dataset join in
// internal/core scores thousands of example windows that way. Ctx replaces
// the map with a generation-marked dense array over the store's stem
// vocabulary, reused across contexts, with a token->stem-id memo so each
// distinct surface form is stemmed once per Ctx lifetime. Scores are
// bit-identical to the map path: ScoreCtx walks the stored vector in the
// same order Score does.

// buildIndex interns every stored vector's terms into a store-local stem
// vocabulary and records each concept's term ids, aligned with its vector.
// Called once at construction (concepts visited in sorted order, so the
// vocabulary is deterministic); the store is immutable afterwards.
func (s *Store) buildIndex() {
	s.stemVoc = match.NewVocab()
	s.ids = make(map[string][]uint32, len(s.terms))
	for _, c := range s.Concepts() {
		v := s.terms[c]
		ids := make([]uint32, len(v))
		for i, e := range v {
			ids[i] = s.stemVoc.Intern(e.Term)
		}
		s.ids[c] = ids
	}
}

// Ctx is a reusable id-keyed context bound to one store: the stem set of the
// current context, marked in a dense array indexed by the store's stem ids.
// Generation counters make loading a new context O(context), with no
// clearing and no per-context allocation. A Ctx is not safe for concurrent
// use; give each worker its own.
type Ctx struct {
	store *Store
	mark  []uint32          // stem id -> generation of last sighting
	gen   uint32            // current context's generation
	memo  map[string]uint32 // surface token -> stem id (match.NoID if unknown to the store)
	toks  []textproc.Token  // pooled tokenizer buffer
}

// NewCtx creates a context scorer for the store.
func (s *Store) NewCtx() *Ctx {
	return &Ctx{
		store: s,
		mark:  make([]uint32, s.stemVoc.Len()),
		gen:   1, // mark zeros mean "never seen": an unset Ctx matches nothing
		memo:  make(map[string]uint32),
	}
}

// AcquireCtx returns a pooled Ctx for this store; pair with ReleaseCtx. The
// pool keeps each Ctx's stem memo warm across users, so repeated surface
// forms are stemmed once per pool lifetime rather than once per context.
func (s *Store) AcquireCtx() *Ctx {
	if c, ok := s.ctxPool.Get().(*Ctx); ok {
		return c
	}
	return s.NewCtx()
}

// ReleaseCtx returns a Ctx obtained from AcquireCtx to the pool.
func (s *Store) ReleaseCtx(c *Ctx) { s.ctxPool.Put(c) }

// SetText loads text as the current context: every stemmed content word the
// store knows is marked. Equivalent to ContextStems(text) for scoring
// purposes (stems the store does not know cannot contribute to any score).
func (c *Ctx) SetText(text string) {
	c.gen++
	if c.gen == 0 { // generation wrapped: reset the mark table
		clear(c.mark)
		c.gen = 1
	}
	c.toks = textproc.TokenizeInto(text, c.toks[:0])
	for _, t := range c.toks {
		if t.Kind == textproc.Punct || t.Norm == "" || textproc.IsStopword(t.Norm) {
			continue
		}
		id, ok := c.memo[t.Norm]
		if !ok {
			id = match.NoID
			if st := stem.Stem(t.Norm); st != "" {
				id = c.store.stemVoc.ID(st)
			}
			c.memo[t.Norm] = id
		}
		if id != match.NoID {
			c.mark[id] = c.gen
		}
	}
}

// SetAround loads the local context around position as SetText of the
// ContextStemsAround window.
func (c *Ctx) SetAround(text string, position, radius int) {
	lo, hi := contextBounds(text, position, radius)
	c.SetText(text[lo:hi])
}

// ScoreCtx is Score over an id-keyed context: the summed confidence of the
// concept's pre-mined keywords marked in the current context. The vector is
// walked in the same order as Score, so sums are bit-identical to the map
// path. The Ctx must have been created by this store.
func (s *Store) ScoreCtx(concept string, c *Ctx) float64 {
	score := 0.0
	v := s.terms[concept]
	for i, id := range s.ids[concept] {
		if c.mark[id] == c.gen {
			score += v[i].Weight
		}
	}
	return score
}

// NormalizedScoreCtx is NormalizedScore over an id-keyed context.
func (s *Store) NormalizedScoreCtx(concept string, c *Ctx) float64 {
	sum := s.terms[concept].Sum()
	if sum <= 0 {
		return 0
	}
	return s.ScoreCtx(concept, c) / sum
}
