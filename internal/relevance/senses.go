package relevance

import (
	"math"
	"sort"

	"contextrank/internal/corpus"
	"contextrank/internal/textproc"
)

// This file implements the paper's §IV-C extension for ambiguous concepts
// ("such as Madonna or Jaguar"): "If a concept is ambiguous, then the
// relevant keywords mined might have low final scores, as they would not
// cluster well globally. However, there would be some good local clusters,
// depending on the number of senses, and if such clusters can be identified
// then the scores can be boosted."
//
// Senses are identified by clustering the concept's result snippets with
// deterministic spherical k-means over tf·idf snippet vectors; the relevant
// keywords are then mined per cluster, and a context is scored against the
// best-matching sense instead of the diluted global pack.

// Sense is one sense of an ambiguous concept: its mined keywords plus the
// share of snippets that belong to it.
type Sense struct {
	// Keywords are the sense's relevant context keywords (stemmed, scored).
	Keywords corpus.Vector
	// Share is the fraction of the concept's snippets in this sense.
	Share float64
}

// MineSenses clusters the concept's snippets into up to maxSenses senses and
// mines relevant keywords per sense. Clusters smaller than minShare of the
// snippets are merged into the largest cluster (they are retrieval noise,
// not senses). Returns at least one sense whenever any snippet exists.
func (mn *Miner) MineSenses(concept string, maxSenses int, minShare float64) []Sense {
	if maxSenses < 1 {
		maxSenses = 2
	}
	if minShare == 0 {
		minShare = 0.15
	}
	snippets := mn.engine.Snippets(concept, SnippetDepth)
	if len(snippets) == 0 {
		return nil
	}
	dict := mn.engine.Dictionary()

	// tf·idf unit vectors per snippet.
	vecs := make([]map[string]float64, len(snippets))
	for i, s := range snippets {
		counts := make(map[string]float64)
		for _, t := range textproc.Words(s) {
			if !textproc.IsStopword(t) {
				counts[t] += dict.IDF(t)
			}
		}
		normalize(counts)
		vecs[i] = counts
	}

	k := maxSenses
	if k > len(snippets) {
		k = len(snippets)
	}
	assign := sphericalKMeans(vecs, k)

	// Merge sub-threshold clusters into the largest one.
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	largest := 0
	for c := 1; c < k; c++ {
		if sizes[c] > sizes[largest] {
			largest = c
		}
	}
	min := int(minShare * float64(len(snippets)))
	for i, c := range assign {
		if sizes[c] < min || sizes[c] < 2 {
			assign[i] = largest
		}
	}

	// Mine keywords per surviving cluster.
	byCluster := make(map[int][]string)
	for i, c := range assign {
		byCluster[c] = append(byCluster[c], snippets[i])
	}
	clusterIDs := make([]int, 0, len(byCluster))
	for c := range byCluster {
		clusterIDs = append(clusterIDs, c)
	}
	sort.Ints(clusterIDs)

	senses := make([]Sense, 0, len(byCluster))
	for _, c := range clusterIDs {
		group := byCluster[c]
		counts := make(map[string]int)
		for _, s := range group {
			for _, t := range textproc.Words(s) {
				counts[t]++
			}
		}
		scores := make(map[string]float64, len(counts))
		for t, n := range counts {
			scores[t] = float64(n) * dict.IDF(t)
		}
		senses = append(senses, Sense{
			Keywords: mn.finalize(concept, scores, mn.engineRank),
			Share:    float64(len(group)) / float64(len(snippets)),
		})
	}
	sort.Slice(senses, func(i, j int) bool { return senses[i].Share > senses[j].Share })
	return senses
}

// normalize scales a sparse vector to unit length.
func normalize(v map[string]float64) {
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for t := range v {
		v[t] /= n
	}
}

func dot(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	s := 0.0
	for t, x := range a {
		s += x * b[t]
	}
	return s
}

// sphericalKMeans clusters unit vectors by cosine similarity with
// deterministic farthest-point initialization. Returns the assignment.
func sphericalKMeans(vecs []map[string]float64, k int) []int {
	n := len(vecs)
	assign := make([]int, n)
	if k <= 1 || n <= 1 {
		return assign
	}
	// Deterministic init: centroid 0 = vector 0; each next centroid is the
	// vector least similar to all chosen so far.
	centroidIdx := []int{0}
	for len(centroidIdx) < k {
		best, bestSim := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			maxSim := math.Inf(-1)
			for _, c := range centroidIdx {
				if s := dot(vecs[i], vecs[c]); s > maxSim {
					maxSim = s
				}
			}
			if maxSim < bestSim {
				best, bestSim = i, maxSim
			}
		}
		centroidIdx = append(centroidIdx, best)
	}
	centroids := make([]map[string]float64, k)
	for c, idx := range centroidIdx {
		centroids[c] = copyVec(vecs[idx])
	}

	for iter := 0; iter < 20; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestSim := 0, math.Inf(-1)
			for c := 0; c < k; c++ {
				if s := dot(vecs[i], centroids[c]); s > bestSim {
					best, bestSim = c, s
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids as normalized means.
		for c := 0; c < k; c++ {
			sum := make(map[string]float64)
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				for t, x := range vecs[i] {
					sum[t] += x
				}
			}
			if len(sum) > 0 {
				normalize(sum)
				centroids[c] = sum
			}
		}
	}
	return assign
}

func copyVec(v map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(v))
	for t, x := range v {
		out[t] = x
	}
	return out
}

// SenseStore holds per-sense keyword packs for ambiguity-aware relevance
// scoring.
type SenseStore struct {
	senses map[string][]Sense
}

// BuildSenseStore mines senses for every concept.
func BuildSenseStore(mn *Miner, concepts []string, maxSenses int) *SenseStore {
	s := &SenseStore{senses: make(map[string][]Sense, len(concepts))}
	for _, c := range concepts {
		s.senses[c] = mn.MineSenses(c, maxSenses, 0)
	}
	return s
}

// Senses returns a concept's senses (nil if unknown).
func (s *SenseStore) Senses(concept string) []Sense { return s.senses[concept] }

// Score returns the relevance of concept in the context as the *maximum*
// over its senses — the paper's suggested boost: a context matching any one
// sense strongly counts, instead of being diluted by the other senses'
// keywords.
func (s *SenseStore) Score(concept string, contextStems map[string]bool) float64 {
	best := 0.0
	for _, sense := range s.senses[concept] {
		score := 0.0
		for _, e := range sense.Keywords {
			if contextStems[e.Term] {
				score += e.Weight
			}
		}
		if score > best {
			best = score
		}
	}
	return best
}
