package golomb

import (
	"math/rand"
	"testing"
)

// TestCodecRoundtripExhaustiveSmall round-trips every value in [0, 600)
// through every parameter in [1, 70], crossing the truncated-binary cutoff
// and both the fused single-word fast paths and the slow paths (the buffer
// is kept short so late values hit the byte-wise tail).
func TestCodecRoundtripExhaustiveSmall(t *testing.T) {
	for m := uint32(1); m <= 70; m++ {
		c := NewCodec(m)
		var w BitWriter
		for v := uint32(0); v < 600; v++ {
			c.Write(&w, v)
		}
		r := BitReaderAt(w.Bytes(), 0)
		for v := uint32(0); v < 600; v++ {
			got, err := c.Read(&r)
			if err != nil {
				t.Fatalf("m=%d v=%d: %v", m, v, err)
			}
			if got != v {
				t.Fatalf("m=%d: decoded %d, want %d", m, got, v)
			}
		}
	}
}

// TestCodecCostMatchesWrite: Cost must predict the exact bit growth of
// Write for a sweep of (m, v) pairs — the frozen CSR's representation
// choice depends on this being exact, not an estimate.
func TestCodecCostMatchesWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		m := uint32(1 + rng.Intn(5000))
		v := uint32(rng.Intn(100_000))
		c := NewCodec(m)
		var w BitWriter
		before := w.BitLen()
		c.Write(&w, v)
		if got := w.BitLen() - before; got != c.Cost(v) {
			t.Fatalf("m=%d v=%d: wrote %d bits, Cost says %d", m, v, got, c.Cost(v))
		}
	}
}

// TestCodecInterleavedStreams is the click-graph shape: two codecs with
// different parameters alternating over one bit stream (neighbor gaps and
// click weights), decoded in lockstep.
func TestCodecInterleavedStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		gapC := NewCodec(uint32(1 + rng.Intn(1000)))
		wC := NewCodec(uint32(1 + rng.Intn(20)))
		n := 1 + rng.Intn(400)
		gaps := make([]uint32, n)
		wts := make([]uint32, n)
		var w BitWriter
		for i := 0; i < n; i++ {
			gaps[i] = uint32(rng.Intn(5000))
			wts[i] = uint32(rng.Intn(60))
			gapC.Write(&w, gaps[i])
			wC.Write(&w, wts[i])
		}
		r := BitReaderAt(w.Bytes(), 0)
		for i := 0; i < n; i++ {
			g, err := gapC.Read(&r)
			if err != nil {
				t.Fatal(err)
			}
			wt, err := wC.Read(&r)
			if err != nil {
				t.Fatal(err)
			}
			if g != gaps[i] || wt != wts[i] {
				t.Fatalf("trial %d i=%d: got (%d,%d) want (%d,%d)", trial, i, g, wt, gaps[i], wts[i])
			}
		}
	}
}

// TestCodecRandomDegreeRows is the property test over random degree
// distributions: rows of random length (empty, degree-1, long) written as
// sorted ascending ids with a per-row parameter, framed by a degree
// header — the frozen adjacency row format in miniature.
func TestCodecRandomDegreeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		universe := uint32(1 + rng.Intn(10_000))
		degC := NewCodec(uint32(1 + rng.Intn(8)))
		nRows := 1 + rng.Intn(60)
		rows := make([][]uint32, nRows)
		for i := range rows {
			switch rng.Intn(4) {
			case 0: // empty row
			case 1: // degree-1 row
				rows[i] = []uint32{uint32(rng.Intn(int(universe)))}
			default:
				deg := 1 + rng.Intn(50)
				seen := map[uint32]bool{}
				for len(seen) < deg {
					seen[uint32(rng.Intn(int(universe)))] = true
				}
				for v := range seen {
					rows[i] = append(rows[i], v)
				}
				sortU32(rows[i])
			}
		}
		var w BitWriter
		for _, row := range rows {
			degC.Write(&w, uint32(len(row)))
			if len(row) == 0 {
				continue
			}
			gapC := NewCodec(OptimalM(float64(universe) / float64(len(row)+1)))
			prev := uint32(0)
			for j, v := range row {
				if j == 0 {
					gapC.Write(&w, v)
				} else {
					gapC.Write(&w, v-prev-1)
				}
				prev = v
			}
		}
		r := BitReaderAt(w.Bytes(), 0)
		for i, row := range rows {
			deg, err := degC.Read(&r)
			if err != nil {
				t.Fatalf("trial %d row %d header: %v", trial, i, err)
			}
			if int(deg) != len(row) {
				t.Fatalf("trial %d row %d: deg %d, want %d", trial, i, deg, len(row))
			}
			if deg == 0 {
				continue
			}
			gapC := NewCodec(OptimalM(float64(universe) / float64(deg+1)))
			prev := uint32(0)
			for j := uint32(0); j < deg; j++ {
				g, err := gapC.Read(&r)
				if err != nil {
					t.Fatalf("trial %d row %d gap %d: %v", trial, i, j, err)
				}
				v := g
				if j > 0 {
					v = prev + g + 1
				}
				if v != row[j] {
					t.Fatalf("trial %d row %d: id %d, want %d", trial, i, v, row[j])
				}
				prev = v
			}
		}
	}
}

// TestCodecZeroValue: the zero Codec behaves as M=1 (pure unary) rather
// than dividing by zero.
func TestCodecZeroValue(t *testing.T) {
	var c Codec
	if c.M() != 1 {
		t.Fatalf("zero Codec M = %d", c.M())
	}
	var w BitWriter
	c.Write(&w, 5)
	r := BitReaderAt(w.Bytes(), 0)
	v, err := c.Read(&r)
	if err != nil || v != 5 {
		t.Fatalf("zero Codec roundtrip = %d, %v", v, err)
	}
}

// TestCodecReadCorrupt: truncated streams surface ErrOutOfBits instead of
// fabricating values, on both the fused and byte-wise paths.
func TestCodecReadCorrupt(t *testing.T) {
	c := NewCodec(37)
	var w BitWriter
	c.Write(&w, 12345)
	data := w.Bytes()
	for cut := 0; cut < len(data); cut++ {
		r := BitReaderAt(data[:cut], 0)
		if v, err := c.Read(&r); err == nil && v != 12345 {
			// A short prefix may still decode a smaller valid value; it
			// must never decode the full value.
			t.Fatalf("cut=%d decoded %d from truncated data", cut, v)
		}
	}
	// All-ones data: the unary run exceeds any sane quotient.
	ones := make([]byte, 1<<17)
	for i := range ones {
		ones[i] = 0xFF
	}
	r := BitReaderAt(ones, 0)
	if _, err := c.Read(&r); err == nil {
		t.Fatal("unbounded unary run did not error")
	}
}

// TestWriteBitsWideValues: WriteBits must handle widths 1..64 with
// arbitrary alignment (the bitmap rows of the click graph write raw
// 64-bit words at odd bit offsets).
func TestWriteBitsWideValues(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		var w BitWriter
		// Random pre-padding forces odd alignment.
		pad := uint(rng.Intn(17))
		w.WriteBits(uint64(rng.Int63())&(1<<pad-1), pad)
		n := uint(1 + rng.Intn(64))
		v := rng.Uint64()
		if n < 64 {
			v &= 1<<n - 1
		}
		w.WriteBits(v, n)
		r := BitReaderAt(w.Bytes(), int(pad))
		got, err := r.ReadBits(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("pad=%d n=%d: got %x want %x", pad, n, got, v)
		}
	}
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
