package golomb

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundtrip(t *testing.T) {
	var w BitWriter
	w.WriteBits(0b1011, 4)
	w.WriteUnary(3)
	w.WriteBit(1)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("ReadBits = %b", v)
	}
	if v, _ := r.ReadUnary(); v != 3 {
		t.Fatalf("ReadUnary = %d", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Fatalf("ReadBit = %d", v)
	}
}

func TestBitLen(t *testing.T) {
	var w BitWriter
	if w.BitLen() != 0 {
		t.Fatal("empty BitLen")
	}
	w.WriteBits(0b111, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	w.WriteBits(0, 13)
	if w.BitLen() != 16 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err != ErrOutOfBits {
		t.Fatalf("expected ErrOutOfBits, got %v", err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, m := range []uint32{1, 2, 3, 4, 5, 7, 8, 10, 64, 100} {
		values := []uint32{0, 1, 2, 3, 5, 10, 63, 64, 65, 100, 1000, 1 << 20}
		data := Encode(values, m)
		got, err := Decode(data, len(values), m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if !reflect.DeepEqual(got, values) {
			t.Fatalf("m=%d: roundtrip %v != %v", m, got, values)
		}
	}
}

func TestEncodeDecodeRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, mRaw uint32) bool {
		r := rand.New(rand.NewSource(seed))
		m := mRaw%200 + 1
		n := r.Intn(50)
		values := make([]uint32, n)
		for i := range values {
			values[i] = uint32(r.Intn(100000))
		}
		data := Encode(values, m)
		got, err := Decode(data, n, m)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, values)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSortedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[uint32]bool{}
	var values []uint32
	for len(values) < 300 {
		v := uint32(rng.Intn(1 << 22))
		if !seen[v] {
			seen[v] = true
			values = append(values, v)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	data, m := EncodeSorted(values)
	got, err := DecodeSorted(data, len(values), m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, values) {
		t.Fatal("sorted roundtrip failed")
	}
}

func TestEncodeSortedCompresses(t *testing.T) {
	// Dense sorted IDs compress far below 4 bytes each.
	values := make([]uint32, 1000)
	for i := range values {
		values[i] = uint32(i * 7)
	}
	data, _ := EncodeSorted(values)
	if len(data) >= 4*len(values)/2 {
		t.Fatalf("Golomb coding did not compress: %d bytes for %d values", len(data), len(values))
	}
}

func TestEncodeSortedEmpty(t *testing.T) {
	data, m := EncodeSorted(nil)
	if data != nil {
		t.Fatal("empty encode should be nil")
	}
	got, err := DecodeSorted(data, 0, m)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty decode = %v, %v", got, err)
	}
}

func TestOptimalM(t *testing.T) {
	if OptimalM(0) != 1 {
		t.Fatal("OptimalM floor")
	}
	if OptimalM(100) < OptimalM(10) {
		t.Fatal("OptimalM must grow with mean")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// All-ones data: unary run exceeds data length.
	if _, err := Decode([]byte{0xFF, 0xFF}, 1, 3); err == nil {
		t.Fatal("expected error on truncated unary")
	}
}

func BenchmarkEncodeSorted(b *testing.B) {
	values := make([]uint32, 100)
	for i := range values {
		values[i] = uint32(i * 37)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeSorted(values)
	}
}

func BenchmarkDecodeSorted(b *testing.B) {
	values := make([]uint32, 100)
	for i := range values {
		values[i] = uint32(i * 37)
	}
	data, m := EncodeSorted(values)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSorted(data, len(values), m); err != nil {
			b.Fatal(err)
		}
	}
}
