// Package golomb implements Golomb coding (Witten, Moffat & Bell, "Managing
// Gigabytes" — the paper's reference [26]) with a bit-level writer/reader.
// The production framework (paper §VI) cites Golomb coding as the way to
// shrink the 400 MB of per-concept relevant-keyword packs; we use it to
// compress sorted term-ID lists via delta coding.
package golomb

import (
	"errors"
	"math"
)

// BitWriter accumulates bits most-significant-first.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte (0..7; 0 means last byte full/absent)
}

// WriteBit appends one bit (0 or 1).
func (w *BitWriter) WriteBit(b uint32) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (w.nbit - 1)
	}
	w.nbit--
}

// WriteBits appends the low n bits of v, most significant first.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint32(v>>uint(i)) & 1)
	}
}

// WriteUnary appends v as unary: v ones followed by a zero.
func (w *BitWriter) WriteUnary(v uint32) {
	for i := uint32(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// Bytes returns the encoded bytes (the final byte is zero-padded).
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitLen returns the number of bits written.
func (w *BitWriter) BitLen() int {
	if len(w.buf) == 0 {
		return 0
	}
	return len(w.buf)*8 - int(w.nbit)
}

// BitReader consumes bits most-significant-first.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// ErrOutOfBits is returned when a read runs past the end of the data.
var ErrOutOfBits = errors.New("golomb: out of bits")

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint32, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	bit := (r.buf[byteIdx] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint32(bit), nil
}

// ReadBits reads n bits as an unsigned integer.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUnary reads a unary-coded value.
func (r *BitReader) ReadUnary() (uint32, error) {
	var v uint32
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
		if v > 1<<30 {
			return 0, errors.New("golomb: unary run too long (corrupt data)")
		}
	}
}

// OptimalM returns the Golomb parameter for geometrically-distributed values
// with the given mean: M ≈ ⌈0.69·mean⌉, minimum 1.
func OptimalM(mean float64) uint32 {
	m := uint32(math.Ceil(0.69 * mean))
	if m < 1 {
		m = 1
	}
	return m
}

// encodeValue writes one value with parameter m: quotient in unary,
// remainder in truncated binary.
func encodeValue(w *BitWriter, v, m uint32) {
	q := v / m
	rem := v % m
	w.WriteUnary(q)
	if m == 1 {
		return
	}
	b := uint(bits(m))
	cutoff := uint32(1<<b) - m
	if rem < cutoff {
		w.WriteBits(uint64(rem), b-1)
	} else {
		w.WriteBits(uint64(rem+cutoff), b)
	}
}

// decodeValue reads one value with parameter m.
func decodeValue(r *BitReader, m uint32) (uint32, error) {
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if m == 1 {
		return q, nil
	}
	b := uint(bits(m))
	cutoff := uint32(1<<b) - m
	rem, err := r.ReadBits(b - 1)
	if err != nil {
		return 0, err
	}
	if uint32(rem) >= cutoff {
		extra, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		rem = rem<<1 | uint64(extra)
		rem -= uint64(cutoff)
	}
	return q*m + uint32(rem), nil
}

// bits returns ⌈log2(m)⌉ for m ≥ 2.
func bits(m uint32) int {
	n := 0
	for v := m - 1; v > 0; v >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Encode compresses values with parameter m.
func Encode(values []uint32, m uint32) []byte {
	if m < 1 {
		m = 1
	}
	var w BitWriter
	for _, v := range values {
		encodeValue(&w, v, m)
	}
	return w.Bytes()
}

// Decode decompresses n values with parameter m.
func Decode(data []byte, n int, m uint32) ([]uint32, error) {
	if m < 1 {
		m = 1
	}
	r := NewBitReader(data)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		v, err := decodeValue(r, m)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// EncodeSorted delta-codes a strictly-increasing sequence then Golomb-codes
// the gaps (gap−1, since gaps are ≥1) with a parameter derived from the mean
// gap. The chosen m is returned for decoding.
func EncodeSorted(values []uint32) (data []byte, m uint32) {
	if len(values) == 0 {
		return nil, 1
	}
	gaps := make([]uint32, len(values))
	prev := uint32(0)
	first := true
	for i, v := range values {
		if first {
			gaps[i] = v
			first = false
		} else {
			gaps[i] = v - prev - 1
		}
		prev = v
	}
	mean := float64(values[len(values)-1]) / float64(len(values))
	m = OptimalM(mean)
	return Encode(gaps, m), m
}

// DecodeSorted reverses EncodeSorted.
func DecodeSorted(data []byte, n int, m uint32) ([]uint32, error) {
	gaps, err := Decode(data, n, m)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	var prev uint32
	for i, g := range gaps {
		if i == 0 {
			out[i] = g
		} else {
			out[i] = prev + g + 1
		}
		prev = out[i]
	}
	return out, nil
}
