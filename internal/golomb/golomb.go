// Package golomb implements Golomb coding (Witten, Moffat & Bell, "Managing
// Gigabytes" — the paper's reference [26]) with a bit-level writer/reader.
// The production framework (paper §VI) cites Golomb coding as the way to
// shrink the 400 MB of per-concept relevant-keyword packs; we use it to
// compress sorted term-ID lists via delta coding.
package golomb

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// BitWriter accumulates bits most-significant-first.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the last byte (0..7; 0 means last byte full/absent)
}

// WriteBit appends one bit (0 or 1).
func (w *BitWriter) WriteBit(b uint32) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << (w.nbit - 1)
	}
	w.nbit--
}

// WriteBits appends the low n bits of v, most significant first, a byte at
// a time rather than a bit at a time.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for n > 0 {
		if w.nbit == 0 {
			w.buf = append(w.buf, 0)
			w.nbit = 8
		}
		take := uint(w.nbit)
		if take > n {
			take = n
		}
		chunk := byte(v>>(n-take)) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= chunk << (uint(w.nbit) - take)
		w.nbit -= uint8(take)
		n -= take
	}
}

// WriteUnary appends v as unary: v ones followed by a zero, emitted as
// packed bit runs.
func (w *BitWriter) WriteUnary(v uint32) {
	for v >= 32 {
		w.WriteBits(1<<32-1, 32)
		v -= 32
	}
	// v ones then the terminating zero, as one (v+1)-bit value.
	w.WriteBits(uint64(1)<<(v+1)-2, uint(v)+1)
}

// Bytes returns the encoded bytes (the final byte is zero-padded).
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitLen returns the number of bits written.
func (w *BitWriter) BitLen() int {
	if len(w.buf) == 0 {
		return 0
	}
	return len(w.buf)*8 - int(w.nbit)
}

// BitReader consumes bits most-significant-first.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// NewBitReaderAt wraps data positioned at an arbitrary bit offset. Offsets
// come from BitWriter.BitLen() snapshots taken while encoding — the skip
// pointers of the compressed positional index.
func NewBitReaderAt(data []byte, bitOffset int) *BitReader {
	return &BitReader{buf: data, pos: bitOffset}
}

// BitReaderAt is the value form of NewBitReaderAt for embedding in reused
// scratch (the click graph's row iterators): no heap allocation on the
// decode hot path.
func BitReaderAt(data []byte, bitOffset int) BitReader {
	return BitReader{buf: data, pos: bitOffset}
}

// BitPos returns the current bit position.
func (r *BitReader) BitPos() int { return r.pos }

// ErrOutOfBits is returned when a read runs past the end of the data.
var ErrOutOfBits = errors.New("golomb: out of bits")

// errUnaryTooLong reports a unary run long enough that the input must be
// corrupt. A package-level sentinel so the decode hot path never
// constructs an error value.
var errUnaryTooLong = errors.New("golomb: unary run too long (corrupt data)")

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint32, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= len(r.buf) {
		return 0, ErrOutOfBits
	}
	bit := (r.buf[byteIdx] >> (7 - uint(r.pos&7))) & 1
	r.pos++
	return uint32(bit), nil
}

// ReadBits reads n bits as an unsigned integer. When a full 8-byte load
// fits, the bits come out of a single big-endian word (this is the decode
// hot path of the compressed positional index and the click graph);
// otherwise it falls back to byte-at-a-time consumption.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if r.pos+int(n) > len(r.buf)*8 {
		return 0, ErrOutOfBits
	}
	if n == 0 {
		return 0, nil
	}
	byteIdx := r.pos >> 3
	if off := uint(r.pos & 7); off+n <= 64 && byteIdx+8 <= len(r.buf) {
		v := binary.BigEndian.Uint64(r.buf[byteIdx:]) << off >> (64 - n)
		r.pos += int(n)
		return v, nil
	}
	var v uint64
	for n > 0 {
		off := uint(r.pos & 7)
		avail := 8 - off
		take := avail
		if take > n {
			take = n
		}
		chunk := uint64(r.buf[r.pos>>3]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += int(take)
		n -= take
	}
	return v, nil
}

// ReadUnary reads a unary-coded value, counting run words (or, near the
// end of the buffer, run bytes) with leading-zeros rather than bit by bit.
func (r *BitReader) ReadUnary() (uint32, error) {
	var v uint32
	for {
		byteIdx := r.pos >> 3
		if byteIdx+8 <= len(r.buf) {
			// Invert and left-align 64 unread bits: leading zeros count the
			// run of ones; a nonzero word contains the terminator.
			w := ^binary.BigEndian.Uint64(r.buf[byteIdx:]) << (r.pos & 7)
			if w != 0 {
				n := uint32(bits.LeadingZeros64(w))
				r.pos += int(n) + 1
				return v + n, nil
			}
			v += uint32(64 - r.pos&7)
			r.pos = (byteIdx + 8) * 8
			if v > 1<<30 {
				return 0, errUnaryTooLong
			}
			continue
		}
		if byteIdx >= len(r.buf) {
			return 0, ErrOutOfBits
		}
		// Invert and left-align the unread bits: leading zeros of the
		// result count the leading ones of the run. Shift padding is zero,
		// so a nonzero value means the terminating 0-bit is in this byte.
		b := ^r.buf[byteIdx] << (r.pos & 7)
		if b != 0 {
			n := uint32(bits.LeadingZeros8(b))
			r.pos += int(n) + 1 // run bits plus the terminator
			return v + n, nil
		}
		v += uint32(8 - r.pos&7)
		r.pos = (byteIdx + 1) * 8
		if v > 1<<30 {
			return 0, errUnaryTooLong
		}
	}
}

// OptimalM returns the Golomb parameter for geometrically-distributed values
// with the given mean: M ≈ ⌈0.69·mean⌉, minimum 1.
func OptimalM(mean float64) uint32 {
	m := uint32(math.Ceil(0.69 * mean))
	if m < 1 {
		m = 1
	}
	return m
}

// encodeValue writes one value with parameter m: quotient in unary,
// remainder in truncated binary.
func encodeValue(w *BitWriter, v, m uint32) {
	q := v / m
	rem := v % m
	w.WriteUnary(q)
	if m == 1 {
		return
	}
	b := uint(bitlen(m))
	cutoff := uint32(1<<b) - m
	if rem < cutoff {
		w.WriteBits(uint64(rem), b-1)
	} else {
		w.WriteBits(uint64(rem+cutoff), b)
	}
}

// decodeValue reads one value with parameter m.
func decodeValue(r *BitReader, m uint32) (uint32, error) {
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if m == 1 {
		return q, nil
	}
	b := uint(bitlen(m))
	cutoff := uint32(1<<b) - m
	rem, err := r.ReadBits(b - 1)
	if err != nil {
		return 0, err
	}
	if uint32(rem) >= cutoff {
		extra, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		rem = rem<<1 | uint64(extra)
		rem -= uint64(cutoff)
	}
	return q*m + uint32(rem), nil
}

// bitlen returns ⌈log2(m)⌉ for m ≥ 2.
func bitlen(m uint32) int {
	n := 0
	for v := m - 1; v > 0; v >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Decoder streams Golomb-coded values one at a time without allocating a
// slice per read — the query-time decode path of the compressed positional
// index. The zero value is not usable; construct with NewDecoderAt. Decoder
// is a value type so callers can embed it in pooled scratch state.
type Decoder struct {
	r      BitReader
	m      uint32
	b      uint   // ⌈log2(m)⌉, cached so Next skips the per-value loop
	cutoff uint32 // 1<<b − m, the truncated-binary threshold
}

// NewDecoderAt returns a Decoder over data with parameter m, starting at
// bitOffset (0 reads from the beginning).
func NewDecoderAt(data []byte, m uint32, bitOffset int) Decoder {
	if m < 1 {
		m = 1
	}
	d := Decoder{r: BitReader{buf: data, pos: bitOffset}, m: m}
	if m > 1 {
		d.b = uint(bitlen(m))
		d.cutoff = uint32(1<<d.b) - m
	}
	return d
}

// Next decodes and returns the next value.
func (d *Decoder) Next() (uint32, error) {
	q, err := d.r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if d.m == 1 {
		return q, nil
	}
	rem, err := d.r.ReadBits(d.b - 1)
	if err != nil {
		return 0, err
	}
	if uint32(rem) >= d.cutoff {
		extra, err := d.r.ReadBit()
		if err != nil {
			return 0, err
		}
		rem = (rem<<1 | uint64(extra)) - uint64(d.cutoff)
	}
	return q*d.m + uint32(rem), nil
}

// BitPos returns the current bit position (useful when interleaving skip
// pointers with sequential decoding).
func (d *Decoder) BitPos() int { return d.r.pos }

// EncodeValueTo writes a single value with parameter m to w — the streaming
// counterpart of Encode, for callers that interleave several logical streams
// while recording skip offsets via BitLen.
func EncodeValueTo(w *BitWriter, v, m uint32) {
	if m < 1 {
		m = 1
	}
	encodeValue(w, v, m)
}

// Codec caches the derived constants of one Golomb parameter for use
// against a caller-owned BitReader/BitWriter. Decoder owns its reader and
// suits one homogeneous stream; Codec is for interleaved streams where
// several parameters alternate over the same bit sequence (the click
// graph's neighbor-gap/weight interleave). The zero value behaves as M=1.
type Codec struct {
	m      uint32
	b      uint   // ⌈log2(m)⌉, 0 when m <= 1
	cutoff uint32 // 1<<b − m, the truncated-binary threshold
}

// NewCodec returns a Codec for parameter m (m < 1 is clamped to 1).
func NewCodec(m uint32) Codec {
	if m < 1 {
		m = 1
	}
	c := Codec{m: m}
	if m > 1 {
		c.b = uint(bitlen(m))
		c.cutoff = uint32(1<<c.b) - m
	}
	return c
}

// M returns the codec's parameter.
func (c Codec) M() uint32 {
	if c.m < 1 {
		return 1
	}
	return c.m
}

// Write encodes one value to w. The common case — quotient, terminator,
// and remainder fitting 64 bits — goes out as a single WriteBits call.
func (c Codec) Write(w *BitWriter, v uint32) {
	m := c.M()
	q := v / m
	rem := v % m
	nRem := c.b // remainder width; adjusted below for the truncated range
	if m > 1 && rem < c.cutoff {
		nRem--
	} else if m > 1 {
		rem += c.cutoff
	} else {
		nRem = 0
		rem = 0
	}
	if total := uint(q) + 1 + nRem; total <= 64 {
		// q ones, a zero, then the remainder bits.
		bits := (uint64(1)<<q - 1) << (nRem + 1)
		w.WriteBits(bits|uint64(rem), total)
		return
	}
	encodeValue(w, v, m)
}

// Read decodes one value from r. When 8 bytes can be loaded at the cursor
// and the whole value fits the loaded window, the unary quotient and the
// truncated-binary remainder come out of a single big-endian word — the
// interleaved-stream decode hot path of the click graph.
func (c Codec) Read(r *BitReader) (uint32, error) {
	if byteIdx := r.pos >> 3; byteIdx+8 <= len(r.buf) {
		off := uint(r.pos & 7)
		w := binary.BigEndian.Uint64(r.buf[byteIdx:]) << off
		q := uint(bits.LeadingZeros64(^w))
		if q+1+c.b <= 64-off {
			if c.m <= 1 {
				r.pos += int(q) + 1
				return uint32(q), nil
			}
			w <<= q + 1
			var rem uint32
			if c.b > 1 {
				rem = uint32(w >> (64 - (c.b - 1)))
			}
			nBits := q + c.b // q + 1 + (b−1)
			if rem >= c.cutoff {
				rem = uint32(w>>(64-c.b)) - c.cutoff
				nBits++
			}
			r.pos += int(nBits)
			return uint32(q)*c.m + rem, nil
		}
	}
	q, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if c.m <= 1 {
		return q, nil
	}
	rem, err := r.ReadBits(c.b - 1)
	if err != nil {
		return 0, err
	}
	if uint32(rem) >= c.cutoff {
		extra, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		rem = (rem<<1 | uint64(extra)) - uint64(c.cutoff)
	}
	return q*c.m + uint32(rem), nil
}

// Cost returns the exact number of bits Write would emit for v — the size
// estimator the click graph's per-row bitmap/Golomb representation choice
// runs before committing bits to a stream.
func (c Codec) Cost(v uint32) int {
	m := c.M()
	q := int(v/m) + 1 // unary quotient plus terminator
	if m == 1 {
		return q
	}
	if v%m < c.cutoff {
		return q + int(c.b) - 1
	}
	return q + int(c.b)
}

// Encode compresses values with parameter m.
func Encode(values []uint32, m uint32) []byte {
	if m < 1 {
		m = 1
	}
	var w BitWriter
	for _, v := range values {
		encodeValue(&w, v, m)
	}
	return w.Bytes()
}

// Decode decompresses n values with parameter m.
func Decode(data []byte, n int, m uint32) ([]uint32, error) {
	if m < 1 {
		m = 1
	}
	r := NewBitReader(data)
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		v, err := decodeValue(r, m)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// EncodeSorted delta-codes a strictly-increasing sequence then Golomb-codes
// the gaps (gap−1, since gaps are ≥1) with a parameter derived from the mean
// gap. The chosen m is returned for decoding.
func EncodeSorted(values []uint32) (data []byte, m uint32) {
	if len(values) == 0 {
		return nil, 1
	}
	gaps := make([]uint32, len(values))
	prev := uint32(0)
	first := true
	for i, v := range values {
		if first {
			gaps[i] = v
			first = false
		} else {
			gaps[i] = v - prev - 1
		}
		prev = v
	}
	mean := float64(values[len(values)-1]) / float64(len(values))
	m = OptimalM(mean)
	return Encode(gaps, m), m
}

// DecodeSorted reverses EncodeSorted.
func DecodeSorted(data []byte, n int, m uint32) ([]uint32, error) {
	gaps, err := Decode(data, n, m)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	var prev uint32
	for i, g := range gaps {
		if i == 0 {
			out[i] = g
		} else {
			out[i] = prev + g + 1
		}
		prev = out[i]
	}
	return out, nil
}
