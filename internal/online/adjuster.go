package online

import (
	"sort"

	"contextrank/internal/detect"
	"contextrank/internal/framework"
)

// Adjuster layers online CTR boosts over the static production runtime: the
// §VIII scenario where the offline-trained model stays fixed but concepts
// "experiencing high CTRs" get boosted in real time.
type Adjuster struct {
	Runtime *framework.Runtime
	Tracker *Tracker
	// Weight scales the tracker boost against the model score. Default 1.
	Weight float64
}

// NewAdjuster wires a tracker over a runtime.
func NewAdjuster(rt *framework.Runtime, tr *Tracker, weight float64) *Adjuster {
	if weight == 0 {
		weight = 1
	}
	return &Adjuster{Runtime: rt, Tracker: tr, Weight: weight}
}

// Annotate runs the static runtime, re-scores the ranked concepts with the
// online boost, re-sorts, and keeps the top-N distinct concepts. Pattern
// entities pass through unchanged.
func (a *Adjuster) Annotate(text string, topN int) []framework.Annotation {
	anns := a.Runtime.Annotate(text, 0)
	var patterns, ranked []framework.Annotation
	for _, an := range anns {
		if an.Detection.Kind == detect.KindPattern {
			patterns = append(patterns, an)
			continue
		}
		an.Score += a.Weight * a.Tracker.Boost(an.Detection.Norm)
		ranked = append(ranked, an)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		switch {
		case ranked[i].Score > ranked[j].Score:
			return true
		case ranked[i].Score < ranked[j].Score:
			return false
		}
		return ranked[i].Relevance > ranked[j].Relevance
	})
	if topN > 0 {
		kept := make(map[string]bool, topN)
		out := ranked[:0]
		for _, an := range ranked {
			if !kept[an.Detection.Norm] {
				if len(kept) == topN {
					continue
				}
				kept[an.Detection.Norm] = true
			}
			out = append(out, an)
		}
		ranked = out
	}
	return append(patterns, ranked...)
}
