package online

import (
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/querylog"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/units"
)

// miniRuntime builds a tiny runtime with two single-term concepts whose
// static model scores favor "alpha" over "beta".
func miniRuntime(t *testing.T) *framework.Runtime {
	t.Helper()
	store := relevance.NewStore(relevance.Snippets, map[string]corpus.Vector{
		"alphaword": {{Term: "ctx", Weight: 5}},
		"betaword":  {{Term: "ctx", Weight: 5}},
	})
	packs := framework.BuildKeywordPacks(store)
	hot := features.Fields{FreqExact: 10, FreqPhraseContained: 12, NumberOfChars: 9, ConceptSize: 1}
	cold := features.Fields{FreqExact: 1, FreqPhraseContained: 2, NumberOfChars: 8, ConceptSize: 1}
	table := framework.BuildInterestTable([]string{"alphaword", "betaword"}, func(n string) features.Fields {
		if n == "alphaword" {
			return hot
		}
		return cold
	})
	dim := features.Dim(features.AllGroups()) + 1
	var instances []ranksvm.Instance
	for g := 0; g < 8; g++ {
		hv := append(hot.Expand(features.AllGroups()), 0)
		cv := append(cold.Expand(features.AllGroups()), 0)
		instances = append(instances,
			ranksvm.Instance{Features: hv, Label: 0.1, Group: g},
			ranksvm.Instance{Features: cv, Label: 0.01, Group: g},
		)
	}
	model, err := ranksvm.Train(instances, ranksvm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = dim
	// A unit set the detector can find the two concepts with: both names
	// are top queries, so their unit scores clear the detection floor.
	log := querylog.FromCounts(map[string]int{
		"alphaword": 5000, "betaword": 4000, "ctx": 300, "today": 200,
	})
	us := units.Extract(log, units.Config{})
	return framework.NewRuntime(detect.New(nil, us), table, packs, model)
}

func TestAdjusterFlipsRanking(t *testing.T) {
	rt := miniRuntime(t)
	doc := "the alphaword and the betaword appeared together in ctx today"

	tr := NewTracker(Config{HalfLifeTicks: 3, MinViews: 10, MaxBoost: 5})
	tr.SetBaseline("alphaword", 0.05)
	tr.SetBaseline("betaword", 0.01)
	adj := NewAdjuster(rt, tr, 5)

	// Static order: alphaword first.
	before := adj.Annotate(doc, 2)
	if len(before) < 2 || before[0].Detection.Norm != "alphaword" {
		t.Fatalf("static order unexpected: %+v", names(before))
	}

	// betaword goes viral: its live CTR dwarfs its baseline.
	for i := 0; i < 20; i++ {
		tr.Tick([]Event{
			{Concept: "betaword", Views: 500, Clicks: 100},
			{Concept: "alphaword", Views: 500, Clicks: 25},
		})
	}
	after := adj.Annotate(doc, 2)
	if after[0].Detection.Norm != "betaword" {
		t.Fatalf("viral concept should rank first, got %v", names(after))
	}
}

func names(anns []framework.Annotation) []string {
	out := make([]string, len(anns))
	for i, a := range anns {
		out[i] = a.Detection.Norm
	}
	return out
}
