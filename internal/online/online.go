// Package online implements the paper's future-work extension (§VIII): "an
// online version of this technique. In this scenario, the system would be
// able to respond to sudden fluctuations in click data, either boosting
// scores of low scoring concepts that are experiencing high CTRs, or
// punishing the scores of those experiencing low CTRs. This may allow the
// system to potentially react intelligently to world events in real time."
//
// The Tracker ingests a click stream (view/click events per concept),
// maintains exponentially-decayed CTR estimates, and compares them with
// each concept's long-run baseline CTR. The Adjuster converts the ratio
// into a bounded score boost that the runtime adds to the model score, so a
// breaking-news entity floats to the top within a configurable half-life
// and sinks back as its spike decays.
package online

import (
	"math"
	"sort"
	"sync"
)

// Event is one observation from the click instrumentation: a concept was
// shown views times and clicked clicks times during the tick.
type Event struct {
	Concept string
	Views   int
	Clicks  int
}

// Config tunes the tracker.
type Config struct {
	// HalfLifeTicks is the decay half-life of the moving CTR estimate in
	// ticks (a tick is whatever cadence the caller feeds events at, e.g.
	// 5 minutes of production traffic). Default 12.
	HalfLifeTicks float64
	// MinViews is the decayed-view mass required before the tracker trusts
	// a concept's moving CTR. Default 50.
	MinViews float64
	// MaxBoost bounds the score adjustment in either direction. Default 1.
	MaxBoost float64
	// Smoothing is the additive (Laplace) smoothing applied to both the
	// moving and baseline CTR when forming the ratio. Default 0.002.
	Smoothing float64
}

func (c Config) withDefaults() Config {
	if c.HalfLifeTicks == 0 {
		c.HalfLifeTicks = 12
	}
	if c.MinViews == 0 {
		c.MinViews = 50
	}
	if c.MaxBoost == 0 {
		c.MaxBoost = 1
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.002
	}
	return c
}

// state is one concept's decayed counters.
type state struct {
	views, clicks float64
	baseline      float64 // long-run CTR; 0 = unknown
}

// Tracker maintains decayed per-concept CTR estimates. It is safe for
// concurrent use: production frontends report clicks from many servers.
type Tracker struct {
	cfg   Config
	decay float64

	mu     sync.RWMutex
	states map[string]*state
	tick   int64
}

// NewTracker creates a tracker.
func NewTracker(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	return &Tracker{
		cfg:    cfg,
		decay:  math.Exp(-math.Ln2 / cfg.HalfLifeTicks),
		states: make(map[string]*state),
	}
}

// SetBaseline records a concept's long-run CTR (mined from the weekly click
// reports the ranker was trained on). Concepts without a baseline use the
// global smoothing prior.
func (t *Tracker) SetBaseline(concept string, ctr float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.states[concept]
	if s == nil {
		s = &state{}
		t.states[concept] = s
	}
	s.baseline = ctr
}

// Tick applies one decay step and ingests the tick's events.
func (t *Tracker) Tick(events []Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tick++
	for _, s := range t.states {
		s.views *= t.decay
		s.clicks *= t.decay
	}
	for _, e := range events {
		s := t.states[e.Concept]
		if s == nil {
			s = &state{}
			t.states[e.Concept] = s
		}
		s.views += float64(e.Views)
		s.clicks += float64(e.Clicks)
	}
}

// Ticks returns the number of Tick calls so far.
func (t *Tracker) Ticks() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tick
}

// MovingCTR returns the decayed CTR estimate and the decayed view mass.
func (t *Tracker) MovingCTR(concept string) (ctr, viewMass float64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.states[concept]
	if s == nil || s.views == 0 {
		return 0, 0
	}
	return s.clicks / s.views, s.views
}

// Boost returns the bounded log-ratio adjustment for a concept:
//
//	boost = clamp( ln( (moving+ε) / (baseline+ε) ), ±MaxBoost )
//
// scaled by how much view mass backs the estimate (concepts below MinViews
// get proportionally damped, so thin evidence cannot swing rankings).
func (t *Tracker) Boost(concept string) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.states[concept]
	if s == nil || s.views == 0 {
		return 0
	}
	eps := t.cfg.Smoothing
	moving := s.clicks / s.views
	base := s.baseline
	raw := math.Log((moving + eps) / (base + eps))
	if raw > t.cfg.MaxBoost {
		raw = t.cfg.MaxBoost
	} else if raw < -t.cfg.MaxBoost {
		raw = -t.cfg.MaxBoost
	}
	confidence := s.views / (s.views + t.cfg.MinViews)
	return raw * confidence
}

// Hot returns the k concepts with the largest positive boosts — the
// "world events" view a newsroom dashboard would show.
func (t *Tracker) Hot(k int) []string {
	t.mu.RLock()
	names := make([]string, 0, len(t.states))
	for name := range t.states {
		names = append(names, name)
	}
	t.mu.RUnlock()
	sort.Slice(names, func(i, j int) bool {
		bi, bj := t.Boost(names[i]), t.Boost(names[j])
		switch {
		case bi > bj:
			return true
		case bi < bj:
			return false
		}
		return names[i] < names[j]
	})
	if k < len(names) {
		names = names[:k]
	}
	return names
}
