package online

import (
	"math"
	"sync"
	"testing"
)

func TestBoostRespondsToSpike(t *testing.T) {
	tr := NewTracker(Config{HalfLifeTicks: 4, MinViews: 20})
	tr.SetBaseline("quiet concept", 0.01)

	// Warm up at baseline CTR.
	for i := 0; i < 20; i++ {
		tr.Tick([]Event{{Concept: "quiet concept", Views: 100, Clicks: 1}})
	}
	if b := tr.Boost("quiet concept"); math.Abs(b) > 0.1 {
		t.Fatalf("baseline-rate traffic should give ~0 boost, got %v", b)
	}

	// Breaking news: CTR jumps 10x.
	for i := 0; i < 10; i++ {
		tr.Tick([]Event{{Concept: "quiet concept", Views: 100, Clicks: 10}})
	}
	if b := tr.Boost("quiet concept"); b < 0.5 {
		t.Fatalf("spike should produce a strong positive boost, got %v", b)
	}

	// The spike ends; the boost must decay back toward zero.
	for i := 0; i < 40; i++ {
		tr.Tick([]Event{{Concept: "quiet concept", Views: 100, Clicks: 1}})
	}
	if b := tr.Boost("quiet concept"); b > 0.15 {
		t.Fatalf("boost should decay after the spike, got %v", b)
	}
}

func TestBoostPunishesUnderperformers(t *testing.T) {
	tr := NewTracker(Config{HalfLifeTicks: 4, MinViews: 20})
	tr.SetBaseline("overrated", 0.08)
	for i := 0; i < 20; i++ {
		tr.Tick([]Event{{Concept: "overrated", Views: 200, Clicks: 1}})
	}
	if b := tr.Boost("overrated"); b > -0.5 {
		t.Fatalf("low CTR vs baseline should punish, got %v", b)
	}
}

func TestBoostBounded(t *testing.T) {
	tr := NewTracker(Config{MaxBoost: 0.7, MinViews: 1})
	tr.SetBaseline("x", 0.0001)
	for i := 0; i < 30; i++ {
		tr.Tick([]Event{{Concept: "x", Views: 1000, Clicks: 900}})
	}
	if b := tr.Boost("x"); b > 0.7+1e-9 {
		t.Fatalf("boost exceeds MaxBoost: %v", b)
	}
}

func TestThinEvidenceDamped(t *testing.T) {
	tr := NewTracker(Config{MinViews: 1000})
	tr.SetBaseline("thin", 0.01)
	tr.Tick([]Event{{Concept: "thin", Views: 5, Clicks: 5}})
	if b := tr.Boost("thin"); b > 0.01 {
		t.Fatalf("5 views should not move rankings, got boost %v", b)
	}
}

func TestUnknownConceptZeroBoost(t *testing.T) {
	tr := NewTracker(Config{})
	if b := tr.Boost("never seen"); b != 0 {
		t.Fatalf("unknown concept boost = %v", b)
	}
	if ctr, mass := tr.MovingCTR("never seen"); ctr != 0 || mass != 0 {
		t.Fatalf("unknown concept CTR = %v/%v", ctr, mass)
	}
}

func TestMovingCTRDecaysTowardRecent(t *testing.T) {
	tr := NewTracker(Config{HalfLifeTicks: 2})
	for i := 0; i < 10; i++ {
		tr.Tick([]Event{{Concept: "c", Views: 100, Clicks: 0}})
	}
	for i := 0; i < 10; i++ {
		tr.Tick([]Event{{Concept: "c", Views: 100, Clicks: 20}})
	}
	ctr, _ := tr.MovingCTR("c")
	if ctr < 0.15 {
		t.Fatalf("moving CTR should approach the recent rate 0.2, got %v", ctr)
	}
}

func TestHotOrdering(t *testing.T) {
	tr := NewTracker(Config{HalfLifeTicks: 4, MinViews: 10})
	tr.SetBaseline("hot", 0.01)
	tr.SetBaseline("warm", 0.01)
	tr.SetBaseline("cold", 0.05)
	for i := 0; i < 15; i++ {
		tr.Tick([]Event{
			{Concept: "hot", Views: 100, Clicks: 15},
			{Concept: "warm", Views: 100, Clicks: 4},
			{Concept: "cold", Views: 100, Clicks: 1},
		})
	}
	hot := tr.Hot(2)
	if len(hot) != 2 || hot[0] != "hot" || hot[1] != "warm" {
		t.Fatalf("Hot = %v", hot)
	}
}

func TestTrackerConcurrency(t *testing.T) {
	tr := NewTracker(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			for i := 0; i < 200; i++ {
				tr.Tick([]Event{{Concept: name, Views: 10, Clicks: 1}})
				tr.Boost(name)
				tr.MovingCTR(name)
				tr.Hot(3)
			}
		}(g)
	}
	wg.Wait()
	if tr.Ticks() != 8*200 {
		t.Fatalf("ticks = %d", tr.Ticks())
	}
}
