// Package ranksvm is a from-scratch implementation of the ranking SVM the
// paper trains (paper §III, references [9] SVM-light's ranking mode and [10]
// liblinear): a pairwise learning-to-rank formulation where each training
// instance is an entity with its feature vector, the label is its CTR, and
// the model learns w such that w·x_i > w·x_j whenever CTR_i > CTR_j within
// the same document.
//
// Preference pairs (x_i, x_j) with label_i > label_j become classification
// examples z = x_i − x_j with target +1, and the L1-hinge-loss SVM
//
//	min_w  ½‖w‖² + C Σ max(0, 1 − w·z_p)
//
// is solved in the dual by coordinate descent (the liblinear algorithm).
// Both kernels the paper evaluated are provided: linear and RBF ("we test
// with both linear and the radial basis function kernels").
package ranksvm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Instance is one ranking example.
type Instance struct {
	// Features is the feature vector.
	Features []float64
	// Label is the target (CTR in the paper); only within-group order and
	// magnitude differences matter.
	Label float64
	// Group identifies the query/document: preference pairs are formed only
	// within a group.
	Group int
}

// Kernel selects the SVM kernel.
type Kernel int

const (
	// Linear kernel: K(a,b) = a·b.
	Linear Kernel = iota
	// RBF kernel: K(a,b) = exp(−γ‖a−b‖²).
	RBF
)

// Options configures training. Zero values select defaults.
type Options struct {
	// C is the soft-margin cost. Default 1.
	C float64
	// Kernel selects linear (default) or RBF.
	Kernel Kernel
	// Gamma is the RBF width. Default 1/numFeatures.
	Gamma float64
	// MaxIter is the maximum number of dual-coordinate-descent passes.
	// Default 200 (linear), 60 (RBF).
	MaxIter int
	// Eps is the stopping tolerance on the maximal projected-gradient
	// violation. Default 1e-3.
	Eps float64
	// MinLabelDiff: pairs whose label difference is below this are skipped.
	// Default 1e-9 (strict inequality only).
	MinLabelDiff float64
	// MaxPairsPerGroup caps the number of preference pairs sampled per
	// group (0 = all pairs).
	MaxPairsPerGroup int
	// Seed drives pair sampling and coordinate shuffling.
	Seed int64
}

func (o Options) withDefaults(kernel Kernel) Options {
	if o.C == 0 {
		o.C = 1
	}
	if o.MaxIter == 0 {
		if kernel == RBF {
			o.MaxIter = 60
		} else {
			o.MaxIter = 200
		}
	}
	if o.Eps == 0 {
		o.Eps = 1e-3
	}
	if o.MinLabelDiff == 0 {
		o.MinLabelDiff = 1e-9
	}
	return o
}

// Model is a trained ranking function.
type Model struct {
	// Kernel is the kernel the model was trained with.
	Kernel Kernel
	// Weights is the primal weight vector (linear kernel only).
	Weights []float64
	// Gamma is the RBF width (RBF only).
	Gamma float64
	// SupportPairs are the support preference pairs with their dual
	// coefficients (RBF only).
	SupportPairs []SupportPair
	// Mean and Scale are the feature standardization parameters applied
	// before scoring.
	Mean, Scale []float64
}

// SupportPair is one support vector pair of the kernelized ranker.
type SupportPair struct {
	Alpha    float64
	Pos, Neg []float64 // standardized feature vectors of the preferred and non-preferred instance
}

// pair is an internal preference pair over standardized features.
type pair struct{ pos, neg int }

// ErrNoPairs is returned when no valid preference pairs can be formed.
var ErrNoPairs = errors.New("ranksvm: no preference pairs in training data")

// Train learns a ranking model from instances.
func Train(instances []Instance, opts Options) (*Model, error) {
	opts = opts.withDefaults(opts.Kernel)
	if len(instances) == 0 {
		return nil, ErrNoPairs
	}
	dim := len(instances[0].Features)
	for i := range instances {
		if len(instances[i].Features) != dim {
			return nil, fmt.Errorf("ranksvm: instance %d has %d features, want %d", i, len(instances[i].Features), dim)
		}
	}
	if opts.Kernel == RBF && opts.Gamma == 0 {
		opts.Gamma = 1 / float64(dim)
	}

	mean, scale := standardizer(instances, dim)
	std := make([][]float64, len(instances))
	for i := range instances {
		std[i] = applyStandardize(instances[i].Features, mean, scale)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	pairs := buildPairs(instances, opts, rng)
	if len(pairs) == 0 {
		return nil, ErrNoPairs
	}

	m := &Model{Kernel: opts.Kernel, Gamma: opts.Gamma, Mean: mean, Scale: scale}
	switch opts.Kernel {
	case Linear:
		m.Weights = trainLinear(std, pairs, opts, rng)
	case RBF:
		m.SupportPairs = trainRBF(std, pairs, opts, rng)
	default:
		return nil, fmt.Errorf("ranksvm: unknown kernel %d", opts.Kernel)
	}
	return m, nil
}

// standardizer computes per-feature mean and standard deviation (unit scale
// for constant features).
func standardizer(instances []Instance, dim int) (mean, scale []float64) {
	mean = make([]float64, dim)
	scale = make([]float64, dim)
	n := float64(len(instances))
	for _, inst := range instances {
		for d, v := range inst.Features {
			mean[d] += v
		}
	}
	for d := range mean {
		mean[d] /= n
	}
	for _, inst := range instances {
		for d, v := range inst.Features {
			diff := v - mean[d]
			scale[d] += diff * diff
		}
	}
	for d := range scale {
		scale[d] = math.Sqrt(scale[d] / n)
		if scale[d] < 1e-12 {
			scale[d] = 1
		}
	}
	return mean, scale
}

func applyStandardize(x, mean, scale []float64) []float64 {
	out := make([]float64, len(x))
	for d := range x {
		out[d] = (x[d] - mean[d]) / scale[d]
	}
	return out
}

// buildPairs forms preference pairs within each group: (i,j) with
// label_i − label_j > MinLabelDiff.
func buildPairs(instances []Instance, opts Options, rng *rand.Rand) []pair {
	groups := make(map[int][]int)
	for i := range instances {
		groups[instances[i].Group] = append(groups[instances[i].Group], i)
	}
	gids := make([]int, 0, len(groups))
	for g := range groups {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	var pairs []pair
	for _, g := range gids {
		idxs := groups[g]
		var groupPairs []pair
		for a := 0; a < len(idxs); a++ {
			for b := 0; b < len(idxs); b++ {
				if a == b {
					continue
				}
				i, j := idxs[a], idxs[b]
				if instances[i].Label-instances[j].Label > opts.MinLabelDiff {
					groupPairs = append(groupPairs, pair{pos: i, neg: j})
				}
			}
		}
		if opts.MaxPairsPerGroup > 0 && len(groupPairs) > opts.MaxPairsPerGroup {
			rng.Shuffle(len(groupPairs), func(x, y int) {
				groupPairs[x], groupPairs[y] = groupPairs[y], groupPairs[x]
			})
			groupPairs = groupPairs[:opts.MaxPairsPerGroup]
		}
		pairs = append(pairs, groupPairs...)
	}
	return pairs
}

// trainLinear runs dual coordinate descent on the pair difference vectors,
// maintaining the primal w.
func trainLinear(std [][]float64, pairs []pair, opts Options, rng *rand.Rand) []float64 {
	dim := len(std[0])
	w := make([]float64, dim)
	alpha := make([]float64, len(pairs))
	// Difference vectors and their squared norms.
	diffs := make([][]float64, len(pairs))
	qii := make([]float64, len(pairs))
	for p, pr := range pairs {
		z := make([]float64, dim)
		q := 0.0
		for d := range z {
			z[d] = std[pr.pos][d] - std[pr.neg][d]
			q += z[d] * z[d]
		}
		if q < 1e-12 {
			q = 1e-12
		}
		diffs[p] = z
		qii[p] = q
	}
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		rng.Shuffle(len(order), func(x, y int) { order[x], order[y] = order[y], order[x] })
		maxViolation := 0.0
		for _, p := range order {
			z := diffs[p]
			score := 0.0
			for d := range z {
				score += w[d] * z[d]
			}
			g := score - 1 // gradient of dual objective wrt alpha_p
			// Projected gradient.
			pg := g
			if alpha[p] <= 0 && g > 0 {
				pg = 0
			} else if alpha[p] >= opts.C && g < 0 {
				pg = 0
			}
			if math.Abs(pg) > maxViolation {
				maxViolation = math.Abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[p]
			na := old - g/qii[p]
			if na < 0 {
				na = 0
			} else if na > opts.C {
				na = opts.C
			}
			alpha[p] = na
			delta := na - old
			if delta != 0 {
				for d := range z {
					w[d] += delta * z[d]
				}
			}
		}
		if maxViolation < opts.Eps {
			break
		}
	}
	return w
}

// Score returns the ranking score of a raw (unstandardized) feature vector.
// Higher is better.
func (m *Model) Score(features []float64) float64 {
	return m.ScoreBuf(features, nil)
}

// ScoreBuf is Score using buf as the standardization scratch, so a serving
// loop can reuse one buffer across calls instead of allocating per vector.
// features is not modified; buf's contents are overwritten.
//
//kw:hotpath
func (m *Model) ScoreBuf(features, buf []float64) float64 {
	x := append(buf[:0], features...)
	for d := range x {
		x[d] = (x[d] - m.Mean[d]) / m.Scale[d]
	}
	switch m.Kernel {
	case Linear:
		s := 0.0
		for d := range x {
			s += m.Weights[d] * x[d]
		}
		return s
	case RBF:
		s := 0.0
		for _, sp := range m.SupportPairs {
			s += sp.Alpha * (rbf(sp.Pos, x, m.Gamma) - rbf(sp.Neg, x, m.Gamma))
		}
		return s
	}
	return 0
}

// Rank returns the indexes of featureRows sorted by decreasing model score
// (stable: ties keep input order).
func (m *Model) Rank(featureRows [][]float64) []int {
	scores := make([]float64, len(featureRows))
	for i, f := range featureRows {
		scores[i] = m.Score(f)
	}
	idx := make([]int, len(featureRows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
