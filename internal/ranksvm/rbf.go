package ranksvm

import (
	"math"
	"math/rand"
)

// rbf computes the RBF kernel exp(−γ‖a−b‖²).
func rbf(a, b []float64, gamma float64) float64 {
	d := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return expNeg(gamma * d)
}

// expNeg computes e^{-x} for x ≥ 0 with a fast cutoff for large arguments.
func expNeg(x float64) float64 {
	if x > 40 {
		return 0
	}
	// math.Exp is fine; this wrapper only short-circuits the tail.
	return math.Exp(-x)
}

// trainRBF runs kernelized dual coordinate descent over preference pairs.
// The Gram entry between pairs p=(p+,p−) and q=(q+,q−) in feature space is
//
//	K(p+,q+) − K(p+,q−) − K(p−,q+) + K(p−,q−)
//
// Alphas are optimized one at a time against the current functional scores,
// which are maintained incrementally.
func trainRBF(std [][]float64, pairs []pair, opts Options, rng *rand.Rand) []SupportPair {
	n := len(pairs)
	alpha := make([]float64, n)
	// score[p] = Σ_q alpha_q Q(p,q); maintained incrementally.
	score := make([]float64, n)

	// Cache the diagonal Q(p,p).
	qpp := make([]float64, n)
	for p, pr := range pairs {
		qpp[p] = 2 - 2*rbf(std[pr.pos], std[pr.neg], opts.Gamma)
		if qpp[p] < 1e-12 {
			qpp[p] = 1e-12
		}
	}

	pairK := func(p, q int) float64 {
		pp, qq := pairs[p], pairs[q]
		return rbf(std[pp.pos], std[qq.pos], opts.Gamma) -
			rbf(std[pp.pos], std[qq.neg], opts.Gamma) -
			rbf(std[pp.neg], std[qq.pos], opts.Gamma) +
			rbf(std[pp.neg], std[qq.neg], opts.Gamma)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for iter := 0; iter < opts.MaxIter; iter++ {
		rng.Shuffle(n, func(x, y int) { order[x], order[y] = order[y], order[x] })
		maxViolation := 0.0
		for _, p := range order {
			g := score[p] - 1
			pg := g
			if alpha[p] <= 0 && g > 0 {
				pg = 0
			} else if alpha[p] >= opts.C && g < 0 {
				pg = 0
			}
			if abs(pg) > maxViolation {
				maxViolation = abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[p]
			na := old - g/qpp[p]
			if na < 0 {
				na = 0
			} else if na > opts.C {
				na = opts.C
			}
			delta := na - old
			if delta == 0 {
				continue
			}
			alpha[p] = na
			for q := 0; q < n; q++ {
				score[q] += delta * pairK(q, p)
			}
		}
		if maxViolation < opts.Eps {
			break
		}
	}

	var sps []SupportPair
	for p, a := range alpha {
		if a > 1e-9 {
			sps = append(sps, SupportPair{Alpha: a, Pos: std[pairs[p].pos], Neg: std[pairs[p].neg]})
		}
	}
	return sps
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
