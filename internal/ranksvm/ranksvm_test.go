package ranksvm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// linearWorld generates groups whose true ranking is w*·x with noise.
func linearWorld(rng *rand.Rand, groups, perGroup int, noise float64) ([]Instance, []float64) {
	wTrue := []float64{2.0, -1.0, 0.5, 0.0}
	var out []Instance
	for g := 0; g < groups; g++ {
		for i := 0; i < perGroup; i++ {
			x := make([]float64, len(wTrue))
			for d := range x {
				x[d] = rng.NormFloat64()
			}
			label := 0.0
			for d := range x {
				label += wTrue[d] * x[d]
			}
			label += noise * rng.NormFloat64()
			out = append(out, Instance{Features: x, Label: label, Group: g})
		}
	}
	return out, wTrue
}

// pairAccuracy measures the fraction of within-group preference pairs the
// model orders correctly.
func pairAccuracy(m *Model, instances []Instance) float64 {
	correct, total := 0, 0
	for i := range instances {
		for j := range instances {
			if instances[i].Group != instances[j].Group || instances[i].Label <= instances[j].Label {
				continue
			}
			total++
			if m.Score(instances[i].Features) > m.Score(instances[j].Features) {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestTrainLinearRecoversRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, _ := linearWorld(rng, 40, 8, 0.01)
	test, _ := linearWorld(rng, 10, 8, 0.0)
	m, err := Train(train, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := pairAccuracy(m, test); acc < 0.95 {
		t.Fatalf("linear pair accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestTrainLinearWeightDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train, wTrue := linearWorld(rng, 60, 8, 0.01)
	m, err := Train(train, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Signs of learned weights must match the generator for the non-zero
	// dimensions.
	for d, wt := range wTrue {
		if wt == 0 {
			continue
		}
		if m.Weights[d]*wt <= 0 {
			t.Fatalf("weight %d has wrong sign: learned %.3f, true %.3f", d, m.Weights[d], wt)
		}
	}
}

func TestTrainRBFOnNonlinear(t *testing.T) {
	// Ranking by |x|: linearly unlearnable in 1-D, easy for RBF.
	rng := rand.New(rand.NewSource(5))
	gen := func(groups int) []Instance {
		var out []Instance
		for g := 0; g < groups; g++ {
			for i := 0; i < 6; i++ {
				x := rng.NormFloat64() * 2
				out = append(out, Instance{Features: []float64{x}, Label: math.Abs(x), Group: g})
			}
		}
		return out
	}
	train, test := gen(30), gen(10)
	linModel, err := Train(train, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	rbfModel, err := Train(train, Options{Kernel: RBF, Gamma: 0.5, C: 5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	linAcc, rbfAcc := pairAccuracy(linModel, test), pairAccuracy(rbfModel, test)
	if rbfAcc < 0.8 {
		t.Fatalf("RBF accuracy = %.3f, want >= 0.8", rbfAcc)
	}
	if rbfAcc <= linAcc {
		t.Fatalf("RBF (%.3f) should beat linear (%.3f) on |x| ranking", rbfAcc, linAcc)
	}
}

func TestTrainErrorCases(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("empty training set should fail")
	}
	// Mismatched feature lengths.
	_, err := Train([]Instance{
		{Features: []float64{1, 2}, Label: 1, Group: 0},
		{Features: []float64{1}, Label: 0, Group: 0},
	}, Options{})
	if err == nil {
		t.Fatal("mismatched dims should fail")
	}
	// All labels equal -> no pairs.
	_, err = Train([]Instance{
		{Features: []float64{1}, Label: 1, Group: 0},
		{Features: []float64{2}, Label: 1, Group: 0},
	}, Options{})
	if err != ErrNoPairs {
		t.Fatalf("expected ErrNoPairs, got %v", err)
	}
	// Pairs never cross groups.
	_, err = Train([]Instance{
		{Features: []float64{1}, Label: 1, Group: 0},
		{Features: []float64{2}, Label: 0, Group: 1},
	}, Options{})
	if err != ErrNoPairs {
		t.Fatalf("cross-group pair formed: %v", err)
	}
}

func TestMaxPairsPerGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train, _ := linearWorld(rng, 10, 10, 0.01)
	m, err := Train(train, Options{MaxPairsPerGroup: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := pairAccuracy(m, train); acc < 0.8 {
		t.Fatalf("capped-pairs accuracy = %.3f", acc)
	}
}

func TestRankStableOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train, _ := linearWorld(rng, 20, 6, 0.01)
	m, err := Train(train, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{
		{1, 0, 0, 0},
		{1, 0, 0, 0}, // identical: stable order preserved
		{5, 0, 0, 0},
	}
	idx := m.Rank(rows)
	if idx[0] != 2 {
		t.Fatalf("Rank = %v, best row should be 2", idx)
	}
	if !(idx[1] == 0 && idx[2] == 1) {
		t.Fatalf("ties must preserve input order: %v", idx)
	}
}

func TestStandardizationInvariance(t *testing.T) {
	// Scaling a feature by 1000 must not change the learned ranking.
	rng := rand.New(rand.NewSource(11))
	train, _ := linearWorld(rng, 40, 8, 0.01)
	scaled := make([]Instance, len(train))
	for i, inst := range train {
		f := make([]float64, len(inst.Features))
		copy(f, inst.Features)
		f[0] *= 1000
		scaled[i] = Instance{Features: f, Label: inst.Label, Group: inst.Group}
	}
	m, err := Train(scaled, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	test := make([]Instance, 0)
	for g := 0; g < 10; g++ {
		for i := 0; i < 6; i++ {
			x := []float64{rng.NormFloat64() * 1000, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			label := 2*x[0]/1000 - x[1] + 0.5*x[2]
			test = append(test, Instance{Features: x, Label: label, Group: g})
		}
	}
	if acc := pairAccuracy(m, test); acc < 0.95 {
		t.Fatalf("scaled-feature accuracy = %.3f", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	train, _ := linearWorld(rng, 20, 6, 0.05)
	m1, _ := Train(train, Options{Seed: 14})
	m2, _ := Train(train, Options{Seed: 14})
	for d := range m1.Weights {
		if m1.Weights[d] != m2.Weights[d] { //kwlint:ignore floatcompare — determinism test asserts bit-exact weights for a fixed seed
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

func TestSaveLoadRoundtripLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	train, _ := linearWorld(rng, 20, 6, 0.05)
	m, _ := Train(train, Options{Seed: 16})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.2, 0.7, 0.1}
	if math.Abs(m.Score(x)-m2.Score(x)) > 1e-12 {
		t.Fatal("roundtrip changed scores")
	}
}

func TestSaveLoadRoundtripRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var train []Instance
	for g := 0; g < 10; g++ {
		for i := 0; i < 5; i++ {
			x := rng.NormFloat64()
			train = append(train, Instance{Features: []float64{x}, Label: math.Abs(x), Group: g})
		}
	}
	m, err := Train(train, Options{Kernel: RBF, C: 5, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1.5, -0.2, 0.4, 2.2} {
		if math.Abs(m.Score([]float64{x})-m2.Score([]float64{x})) > 1e-12 {
			t.Fatal("RBF roundtrip changed scores")
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Fatal("truncated JSON should fail")
	}
	if _, err := Load(bytes.NewBufferString(`{"kernel":0,"weights":[1],"mean":[0,0],"scale":[1,1]}`)); err == nil {
		t.Fatal("weight/mean mismatch should fail")
	}
	if _, err := Load(bytes.NewBufferString(`{"kernel":9,"mean":[0],"scale":[1]}`)); err == nil {
		t.Fatal("unknown kernel should fail")
	}
}

func BenchmarkTrainLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	train, _ := linearWorld(rng, 50, 8, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(train, Options{Seed: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	train, _ := linearWorld(rng, 20, 8, 0.05)
	m, _ := Train(train, Options{Seed: 22})
	x := []float64{0.1, 0.2, 0.3, 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Score(x)
	}
}
