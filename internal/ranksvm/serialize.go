package ranksvm

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the serialized wire form of a Model.
type modelJSON struct {
	Kernel       Kernel        `json:"kernel"`
	Weights      []float64     `json:"weights,omitempty"`
	Gamma        float64       `json:"gamma,omitempty"`
	SupportPairs []SupportPair `json:"support_pairs,omitempty"`
	Mean         []float64     `json:"mean"`
	Scale        []float64     `json:"scale"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{
		Kernel:       m.Kernel,
		Weights:      m.Weights,
		Gamma:        m.Gamma,
		SupportPairs: m.SupportPairs,
		Mean:         m.Mean,
		Scale:        m.Scale,
	})
}

// Load reads a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("ranksvm: decode model: %w", err)
	}
	if len(mj.Mean) == 0 || len(mj.Mean) != len(mj.Scale) {
		return nil, fmt.Errorf("ranksvm: corrupt model: mean/scale length %d/%d", len(mj.Mean), len(mj.Scale))
	}
	switch mj.Kernel {
	case Linear:
		if len(mj.Weights) != len(mj.Mean) {
			return nil, fmt.Errorf("ranksvm: corrupt linear model: %d weights for %d features", len(mj.Weights), len(mj.Mean))
		}
	case RBF:
		for i, sp := range mj.SupportPairs {
			if len(sp.Pos) != len(mj.Mean) || len(sp.Neg) != len(mj.Mean) {
				return nil, fmt.Errorf("ranksvm: corrupt support pair %d", i)
			}
		}
	default:
		return nil, fmt.Errorf("ranksvm: unknown kernel %d", mj.Kernel)
	}
	return &Model{
		Kernel:       mj.Kernel,
		Weights:      mj.Weights,
		Gamma:        mj.Gamma,
		SupportPairs: mj.SupportPairs,
		Mean:         mj.Mean,
		Scale:        mj.Scale,
	}, nil
}
