// Package clicksim simulates the click instrumentation of Contextual
// Shortcuts (paper §III): randomly sampled stories carry tracking, and a
// weekly report per story records the story text, the annotated entities
// with metadata, the number of views, and the number of clicks per entity.
//
// Clicks are sampled from a latent CTR model — the ground truth the ranker
// must recover:
//
//	CTR ∝ (w_i·Interest + w_r·relevance)² · quality-penalty · position-bias
//
// with Binomial sampling over the story's views, so low-traffic stories are
// noisy exactly the way real sampled click data is. The paper's data
// cleaning rules (≥30 views, ≥2 concepts, at least one concept with >3
// clicks) and the 2500/500 character windowing are implemented here too.
package clicksim

import (
	"math"
	"math/rand"

	"contextrank/internal/newsgen"
	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

// EntityStat is one annotated entity's click record in a report.
type EntityStat struct {
	// Concept is the annotated concept.
	Concept *world.Concept
	// Relevant is the ground-truth relevance of the mention (hidden from
	// the ranker; used by the editorial simulator and tests).
	Relevant bool
	// Degree is the graded relevance in [0,1] (hidden from the ranker).
	Degree float64
	// Position is the byte offset of the entity in the story text.
	Position int
	// Clicks is the sampled click count.
	Clicks int
	// TrueCTR is the latent click probability (hidden from the ranker).
	TrueCTR float64
}

// CTR returns the observed click-through rate given views.
func (e EntityStat) CTR(views int) float64 {
	if views == 0 {
		return 0
	}
	return float64(e.Clicks) / float64(views)
}

// Report is one story's weekly click report.
type Report struct {
	// Story is the reported story.
	Story *newsgen.Story
	// Views is the sampled view count; "the number of times each entity was
	// viewed on that page is the same for all entities on that page".
	Views int
	// Entities are the annotated entities with click counts, in position
	// order.
	Entities []EntityStat
}

// Config parameterizes the click model.
type Config struct {
	Seed int64
	// MaxViews bounds story traffic; views follow a power law in
	// [MinViews/4, MaxViews]. Default 1500.
	MaxViews int
	// BaseCTR is the floor click probability. Default 0.002.
	BaseCTR float64
	// MaxCTR scales the latent CTR. Default 0.12.
	MaxCTR float64
	// InterestWeight and RelevanceWeight mix the latent factors.
	// Defaults 0.45 and 0.55: contextual relevance is the stronger click
	// driver, which is what makes the relevance score such a useful
	// feature in the paper.
	InterestWeight, RelevanceWeight float64
	// IrrelevantFactor is the relevance credit of an off-topic mention.
	// Default 0.2.
	IrrelevantFactor float64
	// PositionBias controls the mild decay of CTR with byte position:
	// bias = 1/(1+PositionBias·pos/2500). Default 0.35.
	PositionBias float64
	// CTRNoiseSigma is the σ of the per-mention log-normal CTR noise —
	// the irreducible variance no feature explains, which floors the
	// error rate the way real click data does. Default 0.3.
	CTRNoiseSigma float64
}

// WithDefaults fills zero fields with the documented defaults. Exported so
// callers that evaluate TrueCTR directly (e.g. the production A/B
// experiment) share the simulation's parameters.
func (c Config) WithDefaults() Config {
	if c.MaxViews == 0 {
		c.MaxViews = 1500
	}
	if c.BaseCTR == 0 {
		c.BaseCTR = 0.002
	}
	if c.MaxCTR == 0 {
		c.MaxCTR = 0.12
	}
	if c.InterestWeight == 0 {
		c.InterestWeight = 0.45
	}
	if c.RelevanceWeight == 0 {
		c.RelevanceWeight = 0.55
	}
	if c.IrrelevantFactor == 0 {
		c.IrrelevantFactor = 0.2
	}
	if c.PositionBias == 0 {
		c.PositionBias = 0.35
	}
	if c.CTRNoiseSigma == 0 {
		c.CTRNoiseSigma = 0.3
	}
	return c
}

// TrueCTR computes the latent click probability for one mention. degree is
// the graded contextual relevance in [0,1].
func (c Config) TrueCTR(concept *world.Concept, degree float64, position int) float64 {
	rel := c.IrrelevantFactor + (1-c.IrrelevantFactor)*degree
	appeal := c.InterestWeight*concept.Interest + c.RelevanceWeight*rel
	// Quadratic response concentrates clicks on the best few entities
	// ("Few concepts on a document actually get most of the clicks").
	ctr := c.BaseCTR + c.MaxCTR*appeal*appeal
	// Low-quality phrases rarely earn clicks regardless of placement.
	ctr *= 0.3 + 0.7*concept.Quality
	// Mild position bias; the evaluation fights it with windowing.
	ctr /= 1 + c.PositionBias*float64(position)/2500.0
	return ctr
}

// Simulate produces one weekly report per story.
func Simulate(stories []newsgen.Story, cfg Config) []Report {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	reports := make([]Report, 0, len(stories))
	for i := range stories {
		story := &stories[i]
		views := 8 + int(float64(cfg.MaxViews)*math.Pow(rng.Float64(), 2.5))
		r := Report{Story: story, Views: views}
		for _, m := range story.Mentions {
			ctr := cfg.TrueCTR(m.Concept, m.Degree, m.Position)
			// Per-mention unexplained variance (headline placement, photo
			// adjacency, time of day, ...).
			ctr *= math.Exp(cfg.CTRNoiseSigma * rng.NormFloat64())
			if ctr > 0.95 {
				ctr = 0.95
			}
			clicks := binomial(rng, views, ctr)
			r.Entities = append(r.Entities, EntityStat{
				Concept:  m.Concept,
				Relevant: m.Relevant,
				Degree:   m.Degree,
				Position: m.Position,
				Clicks:   clicks,
				TrueCTR:  ctr,
			})
		}
		reports = append(reports, r)
	}
	return reports
}

// binomial samples Binomial(n, p). For the small n·p of click data a direct
// Bernoulli loop is fine and exact.
func binomial(rng *rand.Rand, n int, p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}

// Cleaning thresholds from §V-A.1.
const (
	// MinViews: "if the number of sampled views is less than 30".
	MinViews = 30
	// MinConcepts: "if the story contained only one concept".
	MinConcepts = 2
	// MinTopClicks: "if no concept has more than three sampled clicks".
	MinTopClicks = 3
)

// Clean drops noisy reports per the paper's three rules and returns the
// retained reports.
func Clean(reports []Report) []Report {
	// First pass: find the first dropped report. If nothing is dropped —
	// the common case on simulated logs — the input slice is returned
	// as-is, sharing its backing array. The aliasing contract: Clean's
	// result must be treated as read-only alongside the input; neither
	// slice's elements may be mutated while both are in use.
	keep := func(r *Report) bool {
		if r.Views < MinViews || len(r.Entities) < MinConcepts {
			return false
		}
		maxClicks := 0
		for _, e := range r.Entities {
			if e.Clicks > maxClicks {
				maxClicks = e.Clicks
			}
		}
		return maxClicks > MinTopClicks
	}
	firstDrop := -1
	for i := range reports {
		if !keep(&reports[i]) {
			firstDrop = i
			break
		}
	}
	if firstDrop == -1 {
		return reports
	}
	out := make([]Report, 0, len(reports)-1)
	out = append(out, reports[:firstDrop]...)
	for i := firstDrop + 1; i < len(reports); i++ {
		if keep(&reports[i]) {
			out = append(out, reports[i])
		}
	}
	return out
}

// WindowGroup is one evaluation group: the entities falling in one
// 2500-character window of a story, sharing the story's views. Windowing
// counters position bias ("we partitioned large documents into windows of
// size 2500 characters ... consecutive windows overlap (with 500
// characters)"). An entity in the overlap region appears in both windows.
type WindowGroup struct {
	// StoryID is the source story.
	StoryID int
	// WindowIndex is the window's index within the story.
	WindowIndex int
	// Text is the window content.
	Text string
	// Views is the story's view count.
	Views int
	// Entities are the stats of entities positioned inside this window.
	Entities []EntityStat
}

// Windows splits cleaned reports into window groups, dropping windows with
// fewer than MinConcepts entities.
//
// For the first window of a story (Start 0) whose in-window entities form a
// leading run of r.Entities, the group's Entities slice aliases that prefix
// of the report's slice instead of copying it — positions need no shifting
// there, and most short stories fit their first window entirely. The
// shared prefix is capped (three-index slice), so appends to either slice
// cannot clobber the other; the aliasing contract is that callers treat
// EntityStat elements as read-only, which every consumer (grouping,
// feature building, evaluation) already does.
func Windows(reports []Report, size, overlap int) []WindowGroup {
	var out []WindowGroup
	for _, r := range reports {
		wins := textproc.Partition(r.Story.Text, size, overlap)
		for _, win := range wins {
			g := WindowGroup{
				StoryID:     r.Story.ID,
				WindowIndex: win.Index,
				Text:        win.Text,
				Views:       r.Views,
			}
			if win.Start == 0 {
				k := 0
				for k < len(r.Entities) && r.Entities[k].Position < win.End {
					k++
				}
				shareable := true
				for _, e := range r.Entities[k:] {
					if e.Position < win.End {
						shareable = false
						break
					}
				}
				if shareable {
					if k >= MinConcepts {
						g.Entities = r.Entities[:k:k]
						out = append(out, g)
					}
					continue
				}
			}
			for _, e := range r.Entities {
				if e.Position >= win.Start && e.Position < win.End {
					out2 := e
					out2.Position = e.Position - win.Start
					g.Entities = append(g.Entities, out2)
				}
			}
			if len(g.Entities) >= MinConcepts {
				out = append(out, g)
			}
		}
	}
	return out
}

// Stats summarizes a report set the way §V-A.1 does: stories, detected
// concepts and total sampled clicks.
type Stats struct {
	Stories, Concepts, Clicks int
}

// Summarize computes Stats.
func Summarize(reports []Report) Stats {
	var s Stats
	s.Stories = len(reports)
	for _, r := range reports {
		s.Concepts += len(r.Entities)
		for _, e := range r.Entities {
			s.Clicks += e.Clicks
		}
	}
	return s
}
