package clicksim

import (
	"math"
	"testing"

	"contextrank/internal/newsgen"
	"contextrank/internal/world"
)

func testReports(t testing.TB) (*world.World, []Report) {
	t.Helper()
	w := world.New(world.Config{Seed: 101, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	stories := newsgen.Generate(w, newsgen.Config{Seed: 102, NumStories: 120})
	return w, Simulate(stories, Config{Seed: 103})
}

func TestSimulateBasics(t *testing.T) {
	_, reports := testReports(t)
	if len(reports) != 120 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.Views <= 0 {
			t.Fatal("non-positive views")
		}
		for _, e := range r.Entities {
			if e.Clicks < 0 || e.Clicks > r.Views {
				t.Fatalf("clicks %d out of [0, views=%d]", e.Clicks, r.Views)
			}
			if e.TrueCTR <= 0 || e.TrueCTR >= 1 {
				t.Fatalf("TrueCTR %v out of (0,1)", e.TrueCTR)
			}
		}
	}
}

func TestTrueCTRProperties(t *testing.T) {
	cfg := Config{}.WithDefaults()
	hot := &world.Concept{Interest: 0.9, Quality: 0.9}
	cold := &world.Concept{Interest: 0.05, Quality: 0.9}
	lowq := &world.Concept{Interest: 0.9, Quality: 0.05}

	if cfg.TrueCTR(hot, 1, 0) <= cfg.TrueCTR(cold, 1, 0) {
		t.Fatal("interest must raise CTR")
	}
	if cfg.TrueCTR(hot, 1, 0) <= cfg.TrueCTR(hot, 0.05, 0) {
		t.Fatal("relevance must raise CTR")
	}
	if cfg.TrueCTR(hot, 1, 0) <= cfg.TrueCTR(hot, 0.5, 0) {
		t.Fatal("graded relevance must be monotone")
	}
	if cfg.TrueCTR(hot, 1, 0) <= cfg.TrueCTR(lowq, 1, 0) {
		t.Fatal("quality must raise CTR")
	}
	if cfg.TrueCTR(hot, 1, 0) <= cfg.TrueCTR(hot, 1, 5000) {
		t.Fatal("position bias must lower CTR for later mentions")
	}
}

func TestBinomialMean(t *testing.T) {
	_, reports := testReports(t)
	// Aggregate: observed clicks should track views*TrueCTR.
	var expected, observed float64
	for _, r := range reports {
		for _, e := range r.Entities {
			expected += float64(r.Views) * e.TrueCTR
			observed += float64(e.Clicks)
		}
	}
	if expected == 0 {
		t.Fatal("zero expected clicks")
	}
	if ratio := observed / expected; math.Abs(ratio-1) > 0.1 {
		t.Fatalf("observed/expected clicks = %.3f, want ~1", ratio)
	}
}

func TestClean(t *testing.T) {
	_, reports := testReports(t)
	cleaned := Clean(reports)
	if len(cleaned) == 0 {
		t.Fatal("cleaning removed everything")
	}
	if len(cleaned) >= len(reports) {
		t.Fatal("cleaning removed nothing; simulation lacks noise")
	}
	for _, r := range cleaned {
		if r.Views < MinViews {
			t.Fatal("cleaned report with too few views")
		}
		if len(r.Entities) < MinConcepts {
			t.Fatal("cleaned report with too few concepts")
		}
		maxClicks := 0
		for _, e := range r.Entities {
			if e.Clicks > maxClicks {
				maxClicks = e.Clicks
			}
		}
		if maxClicks <= MinTopClicks {
			t.Fatal("cleaned report with no clicked concept")
		}
	}
}

// TestCleanAliasing pins the zero-copy contract: when no report is
// dropped, Clean returns the input slice itself; when some are, the result
// is a fresh slice sized to the survivors.
func TestCleanAliasing(t *testing.T) {
	_, reports := testReports(t)
	cleaned := Clean(reports)
	// The simulated log always has some noise, so this run drops reports.
	if len(cleaned) == len(reports) {
		t.Fatal("test premise broken: nothing dropped")
	}
	if &cleaned[0] == &reports[0] {
		t.Fatal("dropping run must not alias the input backing array")
	}
	// Cleaning an already-clean slice must return it unchanged, same array.
	again := Clean(cleaned)
	if len(again) != len(cleaned) {
		t.Fatalf("re-clean dropped %d reports", len(cleaned)-len(again))
	}
	if &again[0] != &cleaned[0] {
		t.Fatal("no-drop Clean must return the input slice (shared backing array)")
	}
	// A drop in the middle keeps everything before and after it.
	mixed := append([]Report(nil), cleaned...)
	mixed[1].Views = 0
	got := Clean(mixed)
	if len(got) != len(mixed)-1 {
		t.Fatalf("got %d reports, want %d", len(got), len(mixed)-1)
	}
	if got[0].Story != mixed[0].Story || got[1].Story != mixed[2].Story {
		t.Fatal("mid-slice drop reordered the survivors")
	}
	if &got[0] == &mixed[0] {
		t.Fatal("dropping run must copy, not alias")
	}
}

// TestWindowsAliasing pins the prefix-sharing contract: a story whose
// entities all sit in the first window hands out a capped view of the
// report's own Entities slice (no copy, no position shift), and appending
// to the shared slice cannot clobber the report.
func TestWindowsAliasing(t *testing.T) {
	text := make([]byte, 600)
	for i := range text {
		text[i] = 'x'
	}
	c1 := &world.Concept{Name: "one"}
	c2 := &world.Concept{Name: "two"}
	r := Report{
		Story: &newsgen.Story{ID: 7, Text: string(text)},
		Views: 100,
		Entities: []EntityStat{
			{Concept: c1, Position: 10, Clicks: 5},
			{Concept: c2, Position: 400, Clicks: 4},
		},
	}
	groups := Windows([]Report{r}, 2500, 500)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	g := groups[0]
	if len(g.Entities) != 2 {
		t.Fatalf("group has %d entities, want 2", len(g.Entities))
	}
	if &g.Entities[0] != &r.Entities[0] {
		t.Fatal("first-window group must alias the report's Entities prefix")
	}
	// The shared prefix is capped: growing the group slice must reallocate
	// rather than write into the report's array.
	grown := append(g.Entities, EntityStat{Concept: c1, Position: 500})
	if &grown[0] == &r.Entities[0] && cap(g.Entities) != len(g.Entities) {
		t.Fatal("append grew into the report's backing array")
	}

	// A story spilling past the first window still copies and re-bases.
	long := make([]byte, 4000)
	for i := range long {
		long[i] = 'y'
	}
	r2 := Report{
		Story: &newsgen.Story{ID: 8, Text: string(long)},
		Views: 100,
		Entities: []EntityStat{
			{Concept: c1, Position: 10, Clicks: 5},
			{Concept: c2, Position: 100, Clicks: 4},
			{Concept: c2, Position: 3000, Clicks: 4},
		},
	}
	groups = Windows([]Report{r2}, 2500, 500)
	for _, g := range groups {
		if g.WindowIndex == 0 {
			continue
		}
		for i := range g.Entities {
			if &g.Entities[i] == &r2.Entities[2] {
				t.Fatal("later window aliased the report's entities")
			}
			if g.Entities[i].Position >= 2500 {
				t.Fatal("later window kept an unshifted position")
			}
		}
	}
}

func TestWindows(t *testing.T) {
	_, reports := testReports(t)
	cleaned := Clean(reports)
	groups := Windows(cleaned, 2500, 500)
	if len(groups) < len(cleaned) {
		t.Fatalf("windows (%d) should not be fewer than stories (%d)", len(groups), len(cleaned))
	}
	for _, g := range groups {
		if len(g.Entities) < MinConcepts {
			t.Fatal("window with too few entities kept")
		}
		for _, e := range g.Entities {
			if e.Position < 0 || e.Position >= len(g.Text) {
				t.Fatalf("window-relative position %d out of range (len %d)", e.Position, len(g.Text))
			}
		}
	}
}

func TestWindowOverlapDuplicatesEntities(t *testing.T) {
	_, reports := testReports(t)
	cleaned := Clean(reports)
	groups := Windows(cleaned, 2500, 500)
	// Count entity appearances per story; overlap should occasionally
	// duplicate an entity across two windows of the same story.
	type key struct{ story, pos int }
	perStory := make(map[int]int)
	for _, g := range groups {
		perStory[g.StoryID]++
	}
	multi := 0
	for _, n := range perStory {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no story produced multiple windows")
	}
	_ = key{}
}

func TestCTRHelper(t *testing.T) {
	e := EntityStat{Clicks: 5}
	if got := e.CTR(100); got != 0.05 {
		t.Fatalf("CTR = %v", got)
	}
	if got := e.CTR(0); got != 0 {
		t.Fatalf("CTR with zero views = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	_, reports := testReports(t)
	s := Summarize(reports)
	if s.Stories != len(reports) || s.Concepts == 0 || s.Clicks == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// The signal-to-noise sanity check underlying every experiment: within a
// story, the entity with the highest TrueCTR should usually also have the
// highest observed CTR (not always, because sampling is Binomial).
func TestObservedCTRTracksLatent(t *testing.T) {
	_, reports := testReports(t)
	cleaned := Clean(reports)
	agree, total := 0, 0
	for _, r := range cleaned {
		bestTrue, bestObs := 0, 0
		for i, e := range r.Entities {
			if e.TrueCTR > r.Entities[bestTrue].TrueCTR {
				bestTrue = i
			}
			if e.Clicks > r.Entities[bestObs].Clicks {
				bestObs = i
			}
		}
		total++
		if bestTrue == bestObs {
			agree++
		}
	}
	if total == 0 {
		t.Fatal("no cleaned reports")
	}
	if ratio := float64(agree) / float64(total); ratio < 0.5 {
		t.Fatalf("top-entity agreement = %.2f; click signal too noisy", ratio)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	w := world.New(world.Config{Seed: 101, VocabSize: 800, NumTopics: 6, NumConcepts: 100})
	stories := newsgen.Generate(w, newsgen.Config{Seed: 1, NumStories: 20})
	r1 := Simulate(stories, Config{Seed: 2})
	r2 := Simulate(stories, Config{Seed: 2})
	for i := range r1 {
		if r1[i].Views != r2[i].Views {
			t.Fatal("views not deterministic")
		}
		for j := range r1[i].Entities {
			if r1[i].Entities[j].Clicks != r2[i].Entities[j].Clicks {
				t.Fatal("clicks not deterministic")
			}
		}
	}
}
