// Package features implements the paper's interestingness feature space
// (Table I, after feature selection):
//
//	1 freq_exact              queries exactly equal to the concept
//	2 freq_phrase_contained   queries containing the concept as a phrase
//	3 unit_score              mutual information of the concept's terms
//	4 searchengine_phrase     result count of the concept as a phrase query
//	5 concept_size            number of terms
//	6 number_of_chars         number of characters
//	7 subconcepts             multi-term sub-units with score > 0.25
//	8 high_level_type         taxonomy type, if editorially listed
//	9 wiki_word_count         Wikipedia article length (0 if absent)
//
// Count-valued features are log-transformed (they are heavy-tailed in any
// real query log); the categorical high_level_type is one-hot expanded for
// the SVM, and feature groups can be masked for the Table III ablations.
package features

import (
	"math"
	"strings"
	"sync"
	"unicode/utf8"

	"contextrank/internal/par"
	"contextrank/internal/querylog"
	"contextrank/internal/searchsim"
	"contextrank/internal/taxonomy"
	"contextrank/internal/units"
	"contextrank/internal/wiki"
	"contextrank/internal/world"
)

// Group identifies the feature groups of Table III's ablation study.
type Group int

const (
	// GroupQueryLogs covers features 1-3 (search engine query logs).
	GroupQueryLogs Group = iota
	// GroupSearchResults covers feature 4 (search engine result pages).
	GroupSearchResults
	// GroupTextBased covers features 5-7 (simple text analysis).
	GroupTextBased
	// GroupTaxonomy covers feature 8.
	GroupTaxonomy
	// GroupOther covers feature 9 (Wikipedia).
	GroupOther
	// NumGroups is the number of feature groups.
	NumGroups
)

// String names the group as in Table III.
func (g Group) String() string {
	switch g {
	case GroupQueryLogs:
		return "Query Logs"
	case GroupSearchResults:
		return "Search Results"
	case GroupTextBased:
		return "Text Based"
	case GroupTaxonomy:
		return "Taxonomy Based"
	case GroupOther:
		return "Other"
	}
	return "?"
}

// AllGroups returns the full group set.
func AllGroups() map[Group]bool {
	m := make(map[Group]bool, NumGroups)
	for g := Group(0); g < NumGroups; g++ {
		m[g] = true
	}
	return m
}

// Without returns AllGroups minus g (for leave-one-group-out ablations).
func Without(g Group) map[Group]bool {
	m := AllGroups()
	delete(m, g)
	return m
}

// SubconceptMinScore is the unit-score threshold of feature 7 ("have a unit
// score of larger than 0.25").
const SubconceptMinScore = 0.25

// Fields holds the nine logical feature values for one concept — the
// pre-computed static record the production framework quantizes (§VI).
type Fields struct {
	FreqExact           float64 // log1p(freq)
	FreqPhraseContained float64 // log1p(freq)
	UnitScore           float64
	SearchEnginePhrase  float64 // log1p(result count)
	ConceptSize         float64
	NumberOfChars       float64
	Subconcepts         float64
	HighLevelType       world.EntityType
	WikiWordCount       float64 // log1p(words)
}

// NumEntityTypes is the one-hot width of HighLevelType (TypeNone..TypeAnimal).
const NumEntityTypes = 7

// Dim returns the expanded vector length for a group mask.
func Dim(include map[Group]bool) int {
	d := 0
	if include[GroupQueryLogs] {
		d += 3
	}
	if include[GroupSearchResults] {
		d++
	}
	if include[GroupTextBased] {
		d += 3
	}
	if include[GroupTaxonomy] {
		d += NumEntityTypes
	}
	if include[GroupOther] {
		d++
	}
	return d
}

// Expand produces the numeric feature vector for the masked groups, with
// HighLevelType one-hot encoded. The layout is stable for a given mask.
func (f Fields) Expand(include map[Group]bool) []float64 {
	return f.AppendExpand(make([]float64, 0, Dim(include)), include)
}

// AppendExpand is Expand appending into dst (pass a pooled dst[:0] to make
// the per-detection feature expansion allocation-free on the serving path).
func (f Fields) AppendExpand(dst []float64, include map[Group]bool) []float64 {
	out := dst
	if include[GroupQueryLogs] {
		out = append(out, f.FreqExact, f.FreqPhraseContained, f.UnitScore)
	}
	if include[GroupSearchResults] {
		out = append(out, f.SearchEnginePhrase)
	}
	if include[GroupTextBased] {
		out = append(out, f.ConceptSize, f.NumberOfChars, f.Subconcepts)
	}
	if include[GroupTaxonomy] {
		hot := len(out)
		for i := 0; i < NumEntityTypes; i++ {
			out = append(out, 0)
		}
		if int(f.HighLevelType) >= 0 && int(f.HighLevelType) < NumEntityTypes {
			out[hot+int(f.HighLevelType)] = 1
		}
	}
	if include[GroupOther] {
		out = append(out, f.WikiWordCount)
	}
	return out
}

// Extractor computes Fields from the mined resources. It holds no mutable
// state — every resource is read-only after its build — so one Extractor is
// safe for any number of concurrent callers.
type Extractor struct {
	log    *querylog.Log
	units  *units.Set
	engine *searchsim.Engine
	wiki   *wiki.Encyclopedia
	dict   *taxonomy.Dictionary
}

// NewExtractor wires the resources together. Any of them may be nil, zeroing
// the corresponding fields (useful for partial deployments and tests).
func NewExtractor(log *querylog.Log, us *units.Set, engine *searchsim.Engine, enc *wiki.Encyclopedia, dict *taxonomy.Dictionary) *Extractor {
	return &Extractor{log: log, units: us, engine: engine, wiki: enc, dict: dict}
}

// extractScratch is one worker's pooled term-split buffer: the concept is
// split on whitespace once per Fields call and the terms — substrings of the
// concept, no per-term copies — feed every term-shaped feature.
type extractScratch struct {
	terms []string
}

var extractPool = sync.Pool{New: func() any { return new(extractScratch) }}

// appendFields splits s into whitespace-separated fields appended to dst,
// with strings.Fields semantics. Fields alias s, so the split allocates
// nothing once dst has capacity. Inputs containing non-ASCII bytes fall back
// to strings.Fields (a multi-byte rune may be Unicode whitespace).
func appendFields(dst []string, s string) []string {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return append(dst, strings.Fields(s)...)
		}
	}
	start := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\v', '\f', '\r':
			if start >= 0 {
				dst = append(dst, s[start:i])
				start = -1
			}
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		dst = append(dst, s[start:])
	}
	return dst
}

// Fields computes the nine features for a concept phrase (normalized,
// lower-case form).
func (e *Extractor) Fields(concept string) Fields {
	sc := extractPool.Get().(*extractScratch)
	terms := appendFields(sc.terms[:0], concept)
	var f Fields
	if e.log != nil {
		f.FreqExact = math.Log1p(float64(e.log.FreqExact(concept)))
		f.FreqPhraseContained = math.Log1p(float64(e.log.FreqPhraseContainedTerms(terms)))
	}
	if e.units != nil {
		f.UnitScore = e.units.Score(concept)
		f.Subconcepts = float64(e.units.SubconceptCountTerms(terms, SubconceptMinScore))
	}
	if e.engine != nil {
		f.SearchEnginePhrase = math.Log1p(float64(e.engine.ResultCount(concept)))
	}
	f.ConceptSize = float64(countTerms(concept))
	f.NumberOfChars = float64(len(concept))
	if e.dict != nil {
		f.HighLevelType = e.dict.HighLevelType(concept)
	}
	if e.wiki != nil {
		f.WikiWordCount = math.Log1p(float64(e.wiki.WordCount(concept)))
	}
	sc.terms = terms[:0]
	extractPool.Put(sc)
	return f
}

// BatchFields extracts the feature records for a concept list, fanning the
// per-concept extraction across workers (see par.Workers for the knob's
// semantics). Results are in input order and bit-identical to a serial
// loop: each concept's record depends only on the read-only resources.
func (e *Extractor) BatchFields(concepts []string, workers int) []Fields {
	return par.Map(workers, len(concepts), func(i int) Fields {
		return e.Fields(concepts[i])
	})
}

// BatchExtended is BatchFields for the eliminated candidate features.
func (e *Extractor) BatchExtended(concepts []string, workers int) []ExtendedFields {
	return par.Map(workers, len(concepts), func(i int) ExtendedFields {
		return e.Extended(concepts[i])
	})
}

func countTerms(s string) int {
	n, in := 0, false
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			in = false
		} else if !in {
			in = true
			n++
		}
	}
	return n
}
