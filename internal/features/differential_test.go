package features

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// refFields is the pre-pooling reference extraction: string-keyed resource
// calls, fresh strings.Fields splits per feature. The pooled Fields must
// reproduce it exactly.
func refFields(e *Extractor, concept string) Fields {
	var f Fields
	if e.log != nil {
		f.FreqExact = math.Log1p(float64(e.log.FreqExact(concept)))
		f.FreqPhraseContained = math.Log1p(float64(e.log.FreqPhraseContained(concept)))
	}
	if e.units != nil {
		f.UnitScore = e.units.Score(concept)
		f.Subconcepts = float64(e.units.SubconceptCount(concept, SubconceptMinScore))
	}
	if e.engine != nil {
		f.SearchEnginePhrase = math.Log1p(float64(e.engine.ResultCount(concept)))
	}
	f.ConceptSize = float64(countTerms(concept))
	f.NumberOfChars = float64(len(concept))
	if e.dict != nil {
		f.HighLevelType = e.dict.HighLevelType(concept)
	}
	if e.wiki != nil {
		f.WikiWordCount = math.Log1p(float64(e.wiki.WordCount(concept)))
	}
	return f
}

// TestDifferentialFields pins the pooled extraction to the reference for
// every world concept and for edge-case inputs, serially and at several
// BatchFields worker counts (pooled scratch must not leak between workers).
func TestDifferentialFields(t *testing.T) {
	f := newFixture(t)
	concepts := make([]string, 0, len(f.w.Concepts)+4)
	for i := range f.w.Concepts {
		concepts = append(concepts, f.w.Concepts[i].Name)
	}
	concepts = append(concepts, "", "   ", "one", "unknown phrase of many many terms")
	want := make([]Fields, len(concepts))
	for i, c := range concepts {
		want[i] = refFields(f.ext, c)
	}
	for i, c := range concepts {
		if got := f.ext.Fields(c); got != want[i] {
			t.Fatalf("Fields(%q) = %+v, want %+v", c, got, want[i])
		}
	}
	for _, workers := range []int{1, 4, 0} {
		if got := f.ext.BatchFields(concepts, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("BatchFields(workers=%d) diverged from reference", workers)
		}
	}
}

// TestAppendFields pins the allocation-free splitter to strings.Fields.
func TestAppendFields(t *testing.T) {
	cases := []string{
		"", " ", "a", "a b", "  a  b  ", "a\tb\nc", "tab\t", "\vx\f",
		"café au lait", "non breaking", "ends ",
	}
	for _, s := range cases {
		want := strings.Fields(s)
		got := appendFields(nil, s)
		if len(got) != len(want) {
			t.Fatalf("appendFields(%q) = %q, want %q", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("appendFields(%q)[%d] = %q, want %q", s, i, got[i], want[i])
			}
		}
	}
	// Reuses dst capacity.
	buf := make([]string, 0, 8)
	out := appendFields(buf, "x y z")
	if &out[0] != &buf[:1][0] {
		t.Fatal("appendFields did not reuse dst backing array")
	}
}
