package features

import (
	"math"
	"testing"

	"contextrank/internal/querylog"
	"contextrank/internal/searchsim"
	"contextrank/internal/taxonomy"
	"contextrank/internal/units"
	"contextrank/internal/wiki"
	"contextrank/internal/world"
)

type fixture struct {
	w   *world.World
	ext *Extractor
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	w := world.New(world.Config{Seed: 81, VocabSize: 1200, NumTopics: 8, NumConcepts: 150})
	log := querylog.Generate(w, querylog.Config{Seed: 82})
	us := units.Extract(log, units.Config{})
	eng := searchsim.BuildCorpus(w, searchsim.CorpusConfig{Seed: 83, MaxDocsPerConcept: 15})
	enc := wiki.Build(w, wiki.Config{Seed: 84})
	dict := taxonomy.Build(w, 85)
	return &fixture{w: w, ext: NewExtractor(log, us, eng, enc, dict)}
}

func TestFieldsBasic(t *testing.T) {
	f := newFixture(t)
	c := &f.w.Concepts[len(f.w.Concepts)/2]
	fields := f.ext.Fields(c.Name)
	if fields.ConceptSize != float64(len(c.Terms)) { //kwlint:ignore floatcompare — exact integer-valued count stored in a float field
		t.Fatalf("ConceptSize = %v, want %d", fields.ConceptSize, len(c.Terms))
	}
	if fields.NumberOfChars != float64(len(c.Name)) { //kwlint:ignore floatcompare — exact integer-valued count stored in a float field
		t.Fatalf("NumberOfChars = %v", fields.NumberOfChars)
	}
	if fields.SearchEnginePhrase <= 0 {
		t.Fatal("every world concept has search results")
	}
	if fields.HighLevelType != c.Type && !c.Ambiguous() {
		t.Fatalf("HighLevelType = %v, want %v", fields.HighLevelType, c.Type)
	}
}

func TestFreqFeaturesMonotoneWithLog(t *testing.T) {
	f := newFixture(t)
	for i := range f.w.Concepts[:30] {
		c := &f.w.Concepts[i]
		fields := f.ext.Fields(c.Name)
		if fields.FreqPhraseContained < fields.FreqExact {
			t.Fatalf("phrase-contained < exact for %q", c.Name)
		}
	}
}

func TestExpandAllGroupsDim(t *testing.T) {
	f := newFixture(t)
	fields := f.ext.Fields(f.w.Concepts[0].Name)
	all := AllGroups()
	v := fields.Expand(all)
	if len(v) != Dim(all) {
		t.Fatalf("Expand len %d != Dim %d", len(v), Dim(all))
	}
	if Dim(all) != 3+1+3+NumEntityTypes+1 {
		t.Fatalf("unexpected full dim %d", Dim(all))
	}
}

func TestExpandMaskedGroups(t *testing.T) {
	f := newFixture(t)
	fields := f.ext.Fields(f.w.Concepts[0].Name)
	for g := Group(0); g < NumGroups; g++ {
		mask := Without(g)
		v := fields.Expand(mask)
		if len(v) != Dim(mask) {
			t.Fatalf("group %v: Expand len %d != Dim %d", g, len(v), Dim(mask))
		}
		if len(v) >= len(fields.Expand(AllGroups())) {
			t.Fatalf("removing group %v did not shrink the vector", g)
		}
	}
}

func TestOneHotType(t *testing.T) {
	fields := Fields{HighLevelType: world.TypePerson}
	v := fields.Expand(map[Group]bool{GroupTaxonomy: true})
	if len(v) != NumEntityTypes {
		t.Fatalf("one-hot len = %d", len(v))
	}
	hot := 0
	for i, x := range v {
		if x == 1 {
			hot++
			if i != int(world.TypePerson) {
				t.Fatalf("wrong hot index %d", i)
			}
		} else if x != 0 {
			t.Fatalf("non-binary one-hot value %v", x)
		}
	}
	if hot != 1 {
		t.Fatalf("hot count = %d", hot)
	}
}

func TestNilResources(t *testing.T) {
	ext := NewExtractor(nil, nil, nil, nil, nil)
	f := ext.Fields("global warming")
	if f.FreqExact != 0 || f.SearchEnginePhrase != 0 || f.WikiWordCount != 0 {
		t.Fatal("nil resources should zero features")
	}
	if f.ConceptSize != 2 {
		t.Fatalf("ConceptSize = %v", f.ConceptSize)
	}
	if f.NumberOfChars != float64(len("global warming")) {
		t.Fatalf("NumberOfChars = %v", f.NumberOfChars)
	}
}

func TestCountTerms(t *testing.T) {
	cases := map[string]int{
		"":                 0,
		"one":              1,
		"two words":        2,
		" padded  spaces ": 2,
		"a b c":            3,
	}
	for in, want := range cases {
		if got := countTerms(in); got != want {
			t.Errorf("countTerms(%q) = %d, want %d", in, got, want)
		}
	}
}

// The load-bearing statistical property: interesting concepts must have
// larger query-log features (that is how the model learns interestingness).
func TestFeatureInterestCorrelation(t *testing.T) {
	f := newFixture(t)
	var hot, cold []float64
	for i := range f.w.Concepts {
		c := &f.w.Concepts[i]
		if c.LowQuality() {
			continue
		}
		fields := f.ext.Fields(c.Name)
		if c.Interest > 0.6 {
			hot = append(hot, fields.FreqExact)
		} else if c.Interest < 0.1 {
			cold = append(cold, fields.FreqExact)
		}
	}
	if len(hot) == 0 || len(cold) == 0 {
		t.Skip("world lacks extremes")
	}
	if mean(hot) <= mean(cold) {
		t.Fatalf("hot freq_exact mean %.2f <= cold %.2f", mean(hot), mean(cold))
	}
}

func TestGroupString(t *testing.T) {
	for g := Group(0); g < NumGroups; g++ {
		if g.String() == "?" {
			t.Fatalf("group %d has no name", g)
		}
	}
	if Group(99).String() != "?" {
		t.Fatal("unknown group should be ?")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / math.Max(1, float64(len(xs)))
}

func BenchmarkFields(b *testing.B) {
	f := newFixture(b)
	name := f.w.Concepts[40].Name
	f.ext.Fields(name) // warm the memoized result-count cache and pooled scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ext.Fields(name)
	}
}
