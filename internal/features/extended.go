package features

import (
	"math"

	"contextrank/internal/textproc"
)

// ExtendedFields are the candidate features the paper *tried and
// eliminated* during feature selection (§IV-A):
//
//   - "considering queries and concepts as bags of words ... and define a
//     cosine similarity threshold to identify similar queries to the
//     concept" — FreqCosineSimilar;
//   - "a variation which submits the concept as a regular query is
//     eliminated" — SearchEngineAnyOrder;
//   - "features that utilize idf (inverse document frequency) value of the
//     individual terms that appear in the concept, however, these features
//     were not useful" — MeanTermIDF.
//
// They are kept in the library so the feature-selection experiment can
// reproduce the paper's negative result: adding them does not reduce the
// error (see core.FeatureSelection).
type ExtendedFields struct {
	// FreqCosineSimilar is log1p of the summed frequency of queries whose
	// bag-of-words cosine similarity with the concept is ≥ CosineThreshold
	// (excluding the exact query).
	FreqCosineSimilar float64
	// SearchEngineAnyOrder is log1p of the result count of the concept as
	// a regular (any-order) query.
	SearchEngineAnyOrder float64
	// MeanTermIDF is the mean idf of the concept's terms against the web
	// corpus.
	MeanTermIDF float64
}

// CosineThreshold is the similarity cutoff for FreqCosineSimilar.
const CosineThreshold = 0.5

// Expand appends the extended fields as a numeric vector.
func (x ExtendedFields) Expand() []float64 {
	return []float64{x.FreqCosineSimilar, x.SearchEngineAnyOrder, x.MeanTermIDF}
}

// NumExtended is the expanded width of ExtendedFields.
const NumExtended = 3

// Extended computes the eliminated candidate features for a concept.
func (e *Extractor) Extended(concept string) ExtendedFields {
	var x ExtendedFields
	terms := textproc.Words(concept)
	if len(terms) == 0 {
		return x
	}
	termSet := make(map[string]bool, len(terms))
	for _, t := range terms {
		termSet[t] = true
	}

	if e.log != nil {
		total := 0
		seen := make(map[int32]bool)
		for t := range termSet {
			for _, qi := range e.log.QueriesContaining(t) {
				if seen[qi] {
					continue
				}
				seen[qi] = true
				q := e.log.Query(int(qi))
				if q.Text == concept {
					continue
				}
				if bagCosine(termSet, q.Terms) >= CosineThreshold {
					total += q.Freq
				}
			}
		}
		x.FreqCosineSimilar = math.Log1p(float64(total))
	}
	if e.engine != nil {
		x.SearchEngineAnyOrder = math.Log1p(float64(e.engine.ResultCountAnyOrder(concept)))
		dict := e.engine.Dictionary()
		sum := 0.0
		for t := range termSet {
			sum += dict.IDF(t)
		}
		x.MeanTermIDF = sum / float64(len(termSet))
	}
	return x
}

// bagCosine computes the binary bag-of-words cosine between a term set and
// a query's terms.
func bagCosine(concept map[string]bool, query []string) float64 {
	if len(concept) == 0 || len(query) == 0 {
		return 0
	}
	qset := make(map[string]bool, len(query))
	for _, t := range query {
		qset[t] = true
	}
	inter := 0
	for t := range qset {
		if concept[t] {
			inter++
		}
	}
	if inter == 0 {
		return 0
	}
	return float64(inter) / math.Sqrt(float64(len(concept))*float64(len(qset)))
}
