package features

import (
	"testing"

	"contextrank/internal/querylog"
	"contextrank/internal/searchsim"
)

func extendedFixture() *Extractor {
	log := querylog.FromCounts(map[string]int{
		"global warming":        300,
		"global warming facts":  60, // cosine("global warming", ...) = 2/sqrt(2*3) ≈ 0.82
		"warming global trend":  40, // same terms, different order: still similar as bags
		"climate change":        200,
		"unrelated things here": 50,
	})
	eng := searchsim.NewEngine()
	eng.Add("global warming threatens climate patterns worldwide", 0)
	eng.Add("warming of the global economy continued", 0)
	eng.Add("climate change and warming trends", 0)
	eng.Add("sports scores from the weekend", 1)
	return NewExtractor(log, nil, eng, nil, nil)
}

func TestExtendedCosineSimilarQueries(t *testing.T) {
	ext := extendedFixture()
	x := ext.Extended("global warming")
	if x.FreqCosineSimilar <= 0 {
		t.Fatalf("similar queries exist, feature = %v", x.FreqCosineSimilar)
	}
	// A concept with no similar queries scores 0.
	if y := ext.Extended("zzz qqq"); y.FreqCosineSimilar != 0 {
		t.Fatalf("no similar queries expected, got %v", y.FreqCosineSimilar)
	}
}

func TestExtendedExcludesExactQuery(t *testing.T) {
	// Only the exact query exists: similarity feature must be 0 since the
	// exact match is excluded.
	log := querylog.FromCounts(map[string]int{"solo concept": 100})
	ext := NewExtractor(log, nil, nil, nil, nil)
	if x := ext.Extended("solo concept"); x.FreqCosineSimilar != 0 {
		t.Fatalf("exact query must be excluded, got %v", x.FreqCosineSimilar)
	}
}

func TestExtendedAnyOrderAtLeastPhrase(t *testing.T) {
	ext := extendedFixture()
	x := ext.Extended("global warming")
	f := ext.Fields("global warming")
	if x.SearchEngineAnyOrder < f.SearchEnginePhrase {
		t.Fatalf("any-order count (%v) must be >= phrase count (%v)",
			x.SearchEngineAnyOrder, f.SearchEnginePhrase)
	}
}

func TestExtendedMeanTermIDF(t *testing.T) {
	ext := extendedFixture()
	// "warming" appears in 3/4 docs, "weekend" in 1/4: rarer term = higher idf.
	common := ext.Extended("warming")
	rare := ext.Extended("weekend")
	if rare.MeanTermIDF <= common.MeanTermIDF {
		t.Fatalf("rare term idf (%v) must exceed common (%v)", rare.MeanTermIDF, common.MeanTermIDF)
	}
}

func TestExtendedNilResources(t *testing.T) {
	ext := NewExtractor(nil, nil, nil, nil, nil)
	x := ext.Extended("anything here")
	if x.FreqCosineSimilar != 0 || x.SearchEngineAnyOrder != 0 || x.MeanTermIDF != 0 {
		t.Fatalf("nil resources should zero extended fields: %+v", x)
	}
	if y := ext.Extended(""); y != (ExtendedFields{}) {
		t.Fatalf("empty concept: %+v", y)
	}
}

func TestExtendedExpand(t *testing.T) {
	x := ExtendedFields{FreqCosineSimilar: 1, SearchEngineAnyOrder: 2, MeanTermIDF: 3}
	v := x.Expand()
	if len(v) != NumExtended {
		t.Fatalf("Expand len = %d", len(v))
	}
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Expand = %v", v)
	}
}

func TestBagCosine(t *testing.T) {
	concept := map[string]bool{"global": true, "warming": true}
	cases := []struct {
		query []string
		min   float64
		max   float64
	}{
		{[]string{"global", "warming"}, 0.99, 1.01},
		{[]string{"warming", "global"}, 0.99, 1.01}, // order-free
		{[]string{"global", "warming", "facts"}, 0.8, 0.83},
		{[]string{"nothing", "shared"}, 0, 0},
		{nil, 0, 0},
	}
	for _, c := range cases {
		got := bagCosine(concept, c.query)
		if got < c.min || got > c.max {
			t.Errorf("bagCosine(%v) = %v, want [%v,%v]", c.query, got, c.min, c.max)
		}
	}
	if got := bagCosine(nil, []string{"x"}); got != 0 {
		t.Errorf("empty concept cosine = %v", got)
	}
}
