package stem

import (
	"testing"
	"testing/quick"
)

// Classic vectors from Porter's paper and the reference implementation's
// test vocabulary.
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		// Step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c
		"happy": "happi",
		"sky":   "sky",
		// Step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// General
		"running":        "run",
		"presidents":     "presid",
		"insurance":      "insur",
		"international":  "intern",
		"advertisements": "advertis",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlpha(t *testing.T) {
	for _, w := range []string{"3.5", "u.s", "o'brien", "razr-v3m", "HELLO"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged (non-lowercase-alpha input)", w, got)
		}
	}
}

func TestPhrase(t *testing.T) {
	if got := Phrase("science fiction movies"); got != "scienc fiction movi" {
		t.Errorf("Phrase = %q", got)
	}
	if got := Phrase("  global   warming "); got != "global warm" {
		t.Errorf("Phrase with spaces = %q", got)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for in, want := range cases {
		if got := measure([]byte(in)); got != want {
			t.Errorf("measure(%q) = %d, want %d", in, got, want)
		}
	}
}

// Property: stemming is idempotent for the overwhelming majority of English
// words; for safety we assert the weaker property that a second application
// never panics and always returns a non-empty stem for non-empty alpha input.
func TestStemProperties(t *testing.T) {
	f := func(s string) bool {
		out := Stem(s)
		_ = Stem(out)
		return len(s) == 0 || out != "" || s == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the stem is never longer than the input.
func TestStemNeverGrows(t *testing.T) {
	words := []string{"hopping", "agreed", "conflated", "troubled", "running",
		"filing", "controlling", "electricity", "happily", "nationalization"}
	for _, w := range words {
		if got := Stem(w); len(got) > len(w) {
			t.Errorf("Stem(%q) = %q grew", w, got)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"international", "presidents", "advertisements", "running", "troubled", "electricity"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
