// Package stem implements the Porter stemming algorithm (M.F. Porter, "An
// algorithm for suffix stripping", Program 14(3), 1980), the stemmer the
// paper cites ([17]) for normalizing relevant keywords and ranker input.
//
// The implementation follows the original five-step description, including
// the measure function m(), and matches the reference implementation's
// behaviour on the classic test vocabulary for common English words.
package stem

import "strings"

// Stem returns the Porter stem of word. The input is expected to be
// lower-case; non-alphabetic input is returned unchanged. Words of length
// <= 2 are returned unchanged, per the reference implementation.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return word
		}
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// Phrase stems every whitespace-separated word in s, preserving single
// spaces between words. It is a convenience for stemming multi-term
// concepts and context keywords.
func Phrase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		fields[i] = Stem(f)
	}
	return strings.Join(fields, " ")
}

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// a letter other than a,e,i,o,u, and 'y' when preceded by a vowel
// position is a vowel (i.e. y is a consonant when preceded by a vowel? —
// Porter: y is a consonant when it is preceded by a vowel... precisely,
// Y is a consonant if preceded by a consonant is false; the rule is:
// y counts as a vowel when the previous letter is a consonant).
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	}
	return true
}

// measure computes m, the number of VC sequences in w[:len(w)], per Porter:
// [C](VC)^m[V].
func measure(w []byte) int {
	n := 0
	i := 0
	// Skip initial consonants.
	for i < len(w) && isConsonant(w, i) {
		i++
	}
	for {
		// Skip vowels.
		for i < len(w) && !isConsonant(w, i) {
			i++
		}
		if i >= len(w) {
			return n
		}
		// Skip consonants — completes one VC.
		for i < len(w) && isConsonant(w, i) {
			i++
		}
		n++
	}
}

// containsVowel reports whether w contains a vowel.
func containsVowel(w []byte) bool {
	for i := range w {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w ends with a double consonant (e.g. -tt).
func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y (the *o condition).
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isConsonant(w, n-3) || isConsonant(w, n-2) || !isConsonant(w, n-1) {
		return false
	}
	c := w[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r if the stem before s has measure
// greater than minM. Returns the (possibly new) word and whether the suffix
// matched (regardless of whether the replacement fired).
func replaceSuffix(w []byte, s, r string, minM int) ([]byte, bool) {
	if !hasSuffix(w, s) {
		return w, false
	}
	stem := w[:len(w)-len(s)]
	if measure(stem) > minM {
		out := make([]byte, 0, len(stem)+len(r))
		out = append(out, stem...)
		out = append(out, r...)
		return out, true
	}
	return w, true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	fired := false
	if hasSuffix(w, "ed") && containsVowel(w[:len(w)-2]) {
		w = w[:len(w)-2]
		fired = true
	} else if hasSuffix(w, "ing") && containsVowel(w[:len(w)-3]) {
		w = w[:len(w)-3]
		fired = true
	}
	if !fired {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleConsonant(w):
		c := w[len(w)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return w[:len(w)-1]
		}
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && containsVowel(w[:len(w)-1]) {
		w = append(w[:len(w)-1], 'i')
	}
	return w
}

var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
	{"logi", "log"},
}

func step2(w []byte) []byte {
	for _, rule := range step2Rules {
		if hasSuffix(w, rule.suffix) {
			w, _ = replaceSuffix(w, rule.suffix, rule.repl, 0)
			return w
		}
	}
	return w
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, rule := range step3Rules {
		if hasSuffix(w, rule.suffix) {
			w, _ = replaceSuffix(w, rule.suffix, rule.repl, 0)
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" {
			// -ion requires the stem to end in s or t.
			if len(stem) == 0 || (stem[len(stem)-1] != 's' && stem[len(stem)-1] != 't') {
				return w
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleConsonant(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
