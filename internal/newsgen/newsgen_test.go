package newsgen

import (
	"strings"
	"testing"

	"contextrank/internal/world"
)

func testStories(t testing.TB) (*world.World, []Story) {
	t.Helper()
	w := world.New(world.Config{Seed: 91, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	return w, Generate(w, Config{Seed: 92, NumStories: 60})
}

func TestGenerateCount(t *testing.T) {
	_, stories := testStories(t)
	if len(stories) != 60 {
		t.Fatalf("stories = %d", len(stories))
	}
}

func TestStoriesContainMentions(t *testing.T) {
	_, stories := testStories(t)
	for _, s := range stories {
		if len(s.Mentions) < 3 || len(s.Mentions) > 9 {
			t.Fatalf("story %d has %d mentions", s.ID, len(s.Mentions))
		}
		lower := strings.ToLower(s.Text)
		for _, m := range s.Mentions {
			if !strings.Contains(lower, m.Concept.Name) {
				t.Fatalf("story %d text missing mention %q", s.ID, m.Concept.Name)
			}
			if m.Position < 0 || m.Position >= len(s.Text) {
				t.Fatalf("story %d mention %q position %d out of range", s.ID, m.Concept.Name, m.Position)
			}
			at := lower[m.Position:]
			if !strings.HasPrefix(at, m.Concept.Name) {
				t.Fatalf("position %d does not point at %q", m.Position, m.Concept.Name)
			}
		}
	}
}

func TestMentionsSortedByPosition(t *testing.T) {
	_, stories := testStories(t)
	for _, s := range stories {
		for i := 1; i < len(s.Mentions); i++ {
			if s.Mentions[i-1].Position > s.Mentions[i].Position {
				t.Fatalf("story %d mentions unsorted", s.ID)
			}
		}
	}
}

func TestMentionMixIncludesIrrelevantAndLowQuality(t *testing.T) {
	_, stories := testStories(t)
	var relevant, irrelevant, lowq int
	for _, s := range stories {
		for _, m := range s.Mentions {
			switch {
			case m.Concept.LowQuality():
				lowq++
			case m.Relevant:
				relevant++
			default:
				irrelevant++
			}
		}
	}
	if relevant == 0 || irrelevant == 0 || lowq == 0 {
		t.Fatalf("mention mix lacks variety: rel=%d irr=%d lowq=%d", relevant, irrelevant, lowq)
	}
	if relevant <= irrelevant {
		t.Fatalf("relevant (%d) should dominate irrelevant (%d)", relevant, irrelevant)
	}
}

func TestRelevantMentionsMatchStoryTopic(t *testing.T) {
	_, stories := testStories(t)
	for _, s := range stories {
		for _, m := range s.Mentions {
			if m.Relevant && m.Concept.Topic != s.Topic {
				t.Fatalf("story %d topic %d has 'relevant' mention of topic %d",
					s.ID, s.Topic, m.Concept.Topic)
			}
		}
	}
}

func TestNoDuplicateConceptsInStory(t *testing.T) {
	_, stories := testStories(t)
	for _, s := range stories {
		seen := make(map[int]bool)
		for _, m := range s.Mentions {
			if seen[m.Concept.ID] {
				t.Fatalf("story %d mentions concept %q twice", s.ID, m.Concept.Name)
			}
			seen[m.Concept.ID] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := world.New(world.Config{Seed: 91, VocabSize: 800, NumTopics: 6, NumConcepts: 100})
	s1 := Generate(w, Config{Seed: 9, NumStories: 10})
	s2 := Generate(w, Config{Seed: 9, NumStories: 10})
	for i := range s1 {
		if s1[i].Text != s2[i].Text {
			t.Fatal("not deterministic")
		}
	}
}

func TestSomeStoriesAreLong(t *testing.T) {
	_, stories := testStories(t)
	long := 0
	for _, s := range stories {
		if len(s.Text) > 2500 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no story exceeds one window; windowing untestable")
	}
}
