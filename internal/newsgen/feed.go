package newsgen

import (
	"contextrank/internal/par"
	"contextrank/internal/world"
)

// Feed is an endless deterministic story stream: the batched tail that
// cmd/ingest drains into the live search index. Each batch is generated
// independently under a seed derived from (Seed, batch index) via par.Seed,
// so the stream is a pure function of the feed seed and batch size — two
// feeds with the same parameters emit identical stories no matter how many
// batches either has drawn, which is what lets the ingest differential
// rebuild the exact doc stream from scratch.
type Feed struct {
	w     *world.World
	cfg   Config
	batch int
	next  int // next batch index
	base  int // global id of the next emitted story
}

// NewFeed creates a feed emitting batchSize stories per NextBatch call
// (default 64 when <= 0). cfg.NumStories is ignored; every other Config
// knob shapes the stream as it does Generate.
func NewFeed(w *world.World, cfg Config, batchSize int) *Feed {
	if batchSize <= 0 {
		batchSize = 64
	}
	return &Feed{w: w, cfg: cfg, batch: batchSize}
}

// BatchSize returns the number of stories per batch.
func (f *Feed) BatchSize() int { return f.batch }

// Emitted returns the number of stories the feed has produced so far.
func (f *Feed) Emitted() int { return f.base }

// NextBatch generates and returns the next batch of stories. Story IDs are
// globally sequential across batches. The feed never ends.
func (f *Feed) NextBatch() []Story {
	cfg := f.cfg
	cfg.Seed = par.Seed(f.cfg.Seed, f.next)
	cfg.NumStories = f.batch
	stories := Generate(f.w, cfg)
	for i := range stories {
		stories[i].ID = f.base + i
	}
	f.next++
	f.base += len(stories)
	return stories
}
