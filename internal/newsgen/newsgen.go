// Package newsgen generates the synthetic news traffic that stands in for
// the paper's Yahoo! News stories (§III, §V-A.1): stories composed from the
// world's topic model, embedding a mix of relevant concepts, irrelevant but
// potentially interesting off-topic entities (the paper's "Texas in a story
// about Cuba policy" case), and the occasional low-quality phrase that the
// naive candidate generation lets through.
package newsgen

import (
	"math/rand"
	"sort"

	"contextrank/internal/world"
)

// Mention is one annotated concept occurrence in a story.
type Mention struct {
	// Concept is the annotated concept.
	Concept *world.Concept
	// Relevant is the ground-truth contextual relevance of this mention
	// (true when the story is about the concept's topic).
	Relevant bool
	// Degree grades the relevance in [0,1]: how strongly the story
	// contextualizes the concept. Relevant mentions range from lightly
	// glossed (~0.35) to central (1.0); irrelevant asides sit near 0.
	Degree float64
	// Position is the byte offset of the first occurrence in Story.Text
	// (the paper's per-entity "position in text" metadata).
	Position int
}

// Story is one news story with its annotated entities.
type Story struct {
	// ID is the story index.
	ID int
	// Topic is the story's primary topic.
	Topic int
	// Text is the story body (plain text).
	Text string
	// Mentions are the annotated concepts, sorted by position.
	Mentions []Mention
}

// Config parameterizes story generation.
type Config struct {
	Seed       int64
	NumStories int // default 300

	// MinConcepts/MaxConcepts bound the annotated concepts per story.
	// Defaults 3 and 9 (the paper's cleaned set averages 6420/870 ≈ 7.4).
	MinConcepts, MaxConcepts int
	// IrrelevantFraction is the chance each non-low-quality slot is filled
	// with an off-topic concept. Default 0.3.
	IrrelevantFraction float64
	// LowQualityFraction is the chance a slot is filled with a low-quality
	// phrase. Default 0.12.
	LowQualityFraction float64
	// MinSentences/MaxSentences bound story length. Defaults 10 and 60
	// (long stories span multiple 2500-char windows, as in the paper).
	MinSentences, MaxSentences int
}

func (c Config) withDefaults() Config {
	if c.NumStories == 0 {
		c.NumStories = 300
	}
	if c.MinConcepts == 0 {
		c.MinConcepts = 3
	}
	if c.MaxConcepts == 0 {
		c.MaxConcepts = 9
	}
	if c.IrrelevantFraction == 0 {
		c.IrrelevantFraction = 0.3
	}
	if c.LowQualityFraction == 0 {
		c.LowQualityFraction = 0.12
	}
	if c.MinSentences == 0 {
		c.MinSentences = 10
	}
	if c.MaxSentences == 0 {
		c.MaxSentences = 60
	}
	return c
}

// Generate produces stories from the world, deterministic in cfg.Seed.
func Generate(w *world.World, cfg Config) []Story {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Index concepts by topic, plus pools for irrelevant/low-quality picks.
	byTopic := make(map[int][]*world.Concept)
	var lowQuality, all []*world.Concept
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.LowQuality() {
			lowQuality = append(lowQuality, c)
			continue
		}
		all = append(all, c)
		if c.Topic >= 0 {
			byTopic[c.Topic] = append(byTopic[c.Topic], c)
		}
	}

	stories := make([]Story, 0, cfg.NumStories)
	for id := 0; id < cfg.NumStories; id++ {
		// Editorial prose contextualizes entities unevenly across stories:
		// some stories surround their subjects with dense distinctive
		// vocabulary, others barely gloss them. The factor folds into each
		// mention's relevance degree, so the degree measures the actual
		// contextualization a reader (and the click model) sees.
		storyDensity := 0.55 + 0.45*rng.Float64()
		topic := rng.Intn(len(w.Topics))
		if len(byTopic[topic]) < cfg.MinConcepts {
			// Resample a topic with enough concepts.
			for len(byTopic[topic]) < cfg.MinConcepts {
				topic = rng.Intn(len(w.Topics))
			}
		}
		n := cfg.MinConcepts + rng.Intn(cfg.MaxConcepts-cfg.MinConcepts+1)
		picked := make(map[int]bool)
		var mentions []world.Mention
		var meta []Mention
		for len(meta) < n {
			var c *world.Concept
			relevant := false
			switch r := rng.Float64(); {
			case r < cfg.LowQualityFraction && len(lowQuality) > 0:
				c = lowQuality[rng.Intn(len(lowQuality))]
			case r < cfg.LowQualityFraction+cfg.IrrelevantFraction:
				// Off-topic mention, biased toward interesting concepts:
				// "even though it may be interesting to some users" —
				// irrelevant entities are often celebrity-grade.
				c = all[rng.Intn(len(all))]
				if c.Interest < 0.3 && rng.Float64() < 0.5 {
					c = all[rng.Intn(len(all))]
				}
				relevant = c.Topic == topic
			default:
				pool := byTopic[topic]
				c = pool[rng.Intn(len(pool))]
				relevant = true
			}
			if picked[c.ID] {
				continue
			}
			picked[c.ID] = true
			// Graded relevance: central subjects are both repeated and
			// surrounded by dense distinctive vocabulary; peripheral
			// on-topic mentions are lightly glossed; off-topic asides get
			// almost no contextual support. The repetition also gives the
			// tf-based concept-vector baseline its production-grade signal.
			degree := 0.02 + 0.1*rng.Float64()
			repeat := 1
			if relevant {
				degree = (0.3 + 0.7*rng.Float64()) * storyDensity
				repeat = 1 + rng.Intn(1+int(3*degree))
			}
			mentions = append(mentions, world.Mention{Concept: c, Relevant: relevant, DensityScale: degree, Repeat: repeat})
			meta = append(meta, Mention{Concept: c, Relevant: relevant, Degree: degree})
		}

		sentences := cfg.MinSentences + rng.Intn(cfg.MaxSentences-cfg.MinSentences+1)
		// ContextDensity 1.0: each mention's own DensityScale (= degree)
		// fully controls how much distinctive vocabulary surrounds it.
		text, placements := w.ComposeDoc(world.ComposeOptions{
			Topic:          topic,
			Sentences:      sentences,
			ContextDensity: 1.0,
		}, mentions, rng)

		// Anchor each mention to its first deliberate placement — concept
		// names are ordinary vocabulary and can also occur incidentally, so
		// substring search would mislocate the annotation.
		for i := range meta {
			meta[i].Position = -1
		}
		for _, pl := range placements {
			if meta[pl.MentionIndex].Position < 0 || pl.Offset < meta[pl.MentionIndex].Position {
				meta[pl.MentionIndex].Position = pl.Offset
			}
		}
		for i := range meta {
			if meta[i].Position < 0 {
				meta[i].Position = 0
			}
		}
		sort.Slice(meta, func(a, b int) bool { return meta[a].Position < meta[b].Position })
		stories = append(stories, Story{ID: id, Topic: topic, Text: text, Mentions: meta})
	}
	return stories
}
