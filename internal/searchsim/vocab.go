package searchsim

// Vocab is the engine's term vocabulary: term string ↔ dense uint32 id, like
// internal/match.Vocab, but safe for concurrent lookups while one writer
// interns. The live two-tier engine needs exactly that shape: query
// goroutines resolve ids (ID/Token/Len) lock-free off a published snapshot
// while the single ingest writer — always under the engine's writer mutex —
// keeps interning new terms.
//
// Design (single-writer RCU):
//
//   - The hash table is open-addressing over atomic *vocabEntry slots. The
//     writer publishes a new entry with a release store; readers probe with
//     acquire loads, so an entry is either fully visible (tok and id set
//     before publish) or absent. Entries are never deleted or moved in
//     place, and growth swaps in a whole rebuilt table via the atomic table
//     pointer — a reader holds one consistent table for its whole probe.
//   - Tokens live in fixed-size chunks reachable from an atomic chunk-list
//     pointer. Chunks are append-only: Token(id) for any published id reads
//     storage that no longer changes.
//   - Len is an atomic counter stored after the entry publish, so a reader
//     that observes Len > id can always resolve Token(id).
//
// A reader racing the writer may miss the very newest terms (ID returns
// NoID); that is benign by construction — a term unknown to a query-time
// snapshot can only occur in documents beyond that snapshot's visibility
// horizon.

import "sync/atomic"

// tokChunkBits sizes the token-store chunks (2^tokChunkBits tokens each).
const tokChunkBits = 11

const tokChunkSize = 1 << tokChunkBits

// vocabEntry is one published (token, id) binding. Immutable after publish.
type vocabEntry struct {
	tok string
	id  uint32
}

// vocabTable is one immutable-capacity open-addressing table generation.
type vocabTable struct {
	mask  uint32
	slots []atomic.Pointer[vocabEntry]
}

// Vocab is the concurrent term vocabulary. The zero value is not usable;
// call NewVocab.
type Vocab struct {
	table  atomic.Pointer[vocabTable]
	chunks atomic.Pointer[[]*[tokChunkSize]string]
	n      atomic.Int32

	// len is the writer's private count; n trails it by at most the entry
	// being published. All mutation happens on one goroutine at a time
	// (build phase, or the engine writer lock).
	len int
}

// NewVocab creates an empty vocabulary.
func NewVocab() *Vocab {
	v := &Vocab{}
	t := &vocabTable{mask: 255, slots: make([]atomic.Pointer[vocabEntry], 256)}
	v.table.Store(t)
	chunks := make([]*[tokChunkSize]string, 0, 4)
	v.chunks.Store(&chunks)
	return v
}

// Intern returns the id of tok, assigning the next dense id on first sight.
// Single writer only: callers serialize Intern (the engine's build phase is
// single-goroutine; the live path holds the engine writer mutex).
func (v *Vocab) Intern(tok string) uint32 {
	t := v.table.Load()
	i := uint32(fnv64a(tok)) & t.mask
	for {
		e := t.slots[i].Load()
		if e == nil {
			break
		}
		if e.tok == tok {
			return e.id
		}
		i = (i + 1) & t.mask
	}
	id := uint32(v.len)
	v.setToken(id, tok)
	// Release-store after the token is reachable, so a reader that finds
	// the entry can always resolve Token(id).
	t.slots[i].Store(&vocabEntry{tok: tok, id: id})
	v.len++
	v.n.Store(int32(v.len))
	if uint32(v.len) >= t.mask-(t.mask>>2) { // keep load factor under ~3/4
		v.grow(t)
	}
	return id
}

// grow rebuilds the table at twice the capacity and publishes it whole.
// Readers mid-probe keep their old table — every published entry is in both.
func (v *Vocab) grow(old *vocabTable) {
	size := (old.mask + 1) * 2
	nt := &vocabTable{mask: size - 1, slots: make([]atomic.Pointer[vocabEntry], size)}
	for si := range old.slots {
		e := old.slots[si].Load()
		if e == nil {
			continue
		}
		j := uint32(fnv64a(e.tok)) & nt.mask
		for nt.slots[j].Load() != nil {
			j = (j + 1) & nt.mask
		}
		nt.slots[j].Store(e)
	}
	v.table.Store(nt)
}

// setToken stores tok at id in the chunked token store, growing the chunk
// list copy-on-write when id opens a new chunk.
func (v *Vocab) setToken(id uint32, tok string) {
	ci, off := int(id>>tokChunkBits), id&(tokChunkSize-1)
	chunks := *v.chunks.Load()
	if ci == len(chunks) {
		grown := make([]*[tokChunkSize]string, ci+1)
		copy(grown, chunks)
		grown[ci] = new([tokChunkSize]string)
		v.chunks.Store(&grown)
		chunks = grown
	}
	chunks[ci][off] = tok
}

// ID returns the id of tok, or match.NoID when tok was never interned.
// Safe for concurrent use with one writer.
func (v *Vocab) ID(tok string) uint32 {
	t := v.table.Load()
	i := uint32(fnv64a(tok)) & t.mask
	for {
		e := t.slots[i].Load()
		if e == nil {
			return noTermID
		}
		if e.tok == tok {
			return e.id
		}
		i = (i + 1) & t.mask
	}
}

// Len returns the number of interned terms. Safe for concurrent use.
func (v *Vocab) Len() int { return int(v.n.Load()) }

// Token returns the token for a published id. Safe for concurrent use for
// any id < Len().
func (v *Vocab) Token(id uint32) string {
	chunks := *v.chunks.Load()
	return chunks[id>>tokChunkBits][id&(tokChunkSize-1)]
}
