package searchsim

// The LSM two-tier engine's unit of immutability. Post-freeze writes land in
// a writer-private memtable (plain postingLists, segment-local doc ids); when
// the memtable seals — at the flush threshold or an explicit Commit — its
// lists transfer wholesale into a raw *segment and become visible. Background
// compaction folds runs of small segments into one Golomb/bitmap-compressed
// frozen segment. Readers only ever see segments through a *view published
// with an atomic pointer swap, so a query holds one consistent segment stack
// for its whole evaluation and never takes a lock.
//
// Doc ids are segment-local; base maps them into the engine's global doc-id
// space ([base, base+nDocs)). Merging K segments is per-term pure — decode
// each input's postings in segment order with the doc ids rebased, then
// re-encode with the exact freezeList coder — so a merged segment is
// bit-identical at any worker count, and a full merge reproduces the
// from-scratch frozen image byte for byte (the ingest differential suite
// pins both).

import (
	"math"
	"math/bits"
	"runtime"
	"slices"

	"contextrank/internal/golomb"
	"contextrank/internal/par"
)

// segment is one immutable tier of postings: either raw (sealed memtable) or
// frozen (Golomb/bitmap compressed). Exactly one of raw/frozen is non-nil.
// seal finalizes the size accounting at construction; after that the segment
// never changes — that is what makes lock-free sharing across views sound.
//
//kw:frozen-after(seal)
type segment struct {
	base  int32 // global doc id of the segment's first document
	nDocs int32 // docs covered: global ids [base, base+nDocs)

	// terms, when non-nil, makes raw sparse: raw[i] is the posting list of
	// term id terms[i] (ascending). A sealed memtable touches only a small
	// slice of the vocabulary, so storing just the touched terms keeps each
	// seal O(touched) instead of O(vocabulary) — the dense form would
	// allocate and zero a vocabulary-sized list table per commit, which
	// dominated the ingest profile.
	terms  []uint32
	raw    []postingList // sealed memtable postings, segment-local doc ids
	frozen []frozenList  // compressed postings, segment-local doc ids

	postings  int // (term, doc) pairs
	positions int // token occurrences
	bytes     int // resident payload footprint
}

// seal captures the segment's size accounting. It is the finisher of the
// frozen-after contract: no field is written after seal returns.
func (s *segment) seal() {
	for i := range s.raw {
		s.postings += len(s.raw[i].docs)
		s.positions += len(s.raw[i].positions)
		s.bytes += s.raw[i].rawBytes()
	}
	for i := range s.frozen {
		s.postings += int(s.frozen[i].nDocs)
		s.positions += int(s.frozen[i].nPos)
		s.bytes += s.frozen[i].frozenBytes()
	}
}

// newRawSegment wraps dense (term-id-indexed) raw lists. Ownership of lists
// transfers to the segment: the caller must not append to them again.
func newRawSegment(base, nDocs int32, lists []postingList) *segment {
	s := &segment{base: base, nDocs: nDocs, raw: lists}
	s.seal()
	return s
}

// newSparseRawSegment wraps a sealed memtable as a sparse raw segment:
// lists[i] holds the postings of term terms[i], with terms sorted ascending.
// Ownership of both slices transfers to the segment.
func newSparseRawSegment(base, nDocs int32, terms []uint32, lists []postingList) *segment {
	s := &segment{base: base, nDocs: nDocs, terms: terms, raw: lists}
	s.seal()
	return s
}

// rawList returns the segment's raw posting list for id, or nil when the
// term has no postings here. Sparse segments binary-search their term table.
func (s *segment) rawList(id uint32) *postingList {
	if s.terms == nil {
		if int(id) < len(s.raw) {
			return &s.raw[id]
		}
		return nil
	}
	lo, hi := 0, len(s.terms)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.terms[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.terms) && s.terms[lo] == id {
		return &s.raw[lo]
	}
	return nil
}

// newFrozenSegment wraps compressed lists (from Freeze or a merge).
func newFrozenSegment(base, nDocs int32, lists []frozenList) *segment {
	s := &segment{base: base, nDocs: nDocs, frozen: lists}
	s.seal()
	return s
}

// numTerms returns one past the largest term id the segment can hold
// postings for (the width a merge output table must cover).
func (s *segment) numTerms() int {
	if s.frozen != nil {
		return len(s.frozen)
	}
	if s.terms != nil {
		if len(s.terms) == 0 {
			return 0
		}
		return int(s.terms[len(s.terms)-1]) + 1
	}
	return len(s.raw)
}

// df returns the term's document frequency within this segment.
func (s *segment) df(id uint32) int {
	if s.frozen != nil {
		if int(id) >= len(s.frozen) {
			return 0
		}
		return int(s.frozen[id].nDocs)
	}
	if pl := s.rawList(id); pl != nil {
		return len(pl.docs)
	}
	return 0
}

// appendList appends the term's postings to out with doc ids shifted by
// rebase, decompressing frozen lists through the sequential decoder. This is
// the merge kernel: appending every input segment in stack order yields the
// exact raw list a from-scratch build would have produced.
func (s *segment) appendList(id uint32, rebase int32, out *postingList) {
	if s.frozen != nil {
		if int(id) < len(s.frozen) {
			s.frozen[id].decodeInto(out, rebase)
		}
		return
	}
	pl := s.rawList(id)
	if pl == nil {
		return
	}
	for i, d := range pl.docs {
		out.docs = append(out.docs, d+rebase)
		out.starts = append(out.starts, int32(len(out.positions)))
		out.positions = append(out.positions, pl.positions[pl.starts[i]:pl.end(i)]...)
	}
}

// decodeInto appends the full decompressed postings to out with doc ids
// shifted by rebase. Unlike the cursor's skip-block partial decode this is a
// straight sequential pass: doc gaps block by block (or bitmap bits), then
// one freq+positions sweep — the compaction path touches every posting
// anyway.
func (fl *frozenList) decodeInto(out *postingList, rebase int32) {
	n := int(fl.nDocs)
	if n == 0 {
		return
	}
	if fl.docBits != nil {
		left := n
		for w, word := range fl.docBits {
			for word != 0 && left > 0 {
				out.docs = append(out.docs, int32(w<<6|bits.TrailingZeros64(word))+rebase)
				word &= word - 1
				left--
			}
		}
	} else {
		for k := 0; k < fl.nblocks(); k++ {
			count := n - k*skipInterval
			if count > skipInterval {
				count = skipInterval
			}
			v := fl.skipFirstDoc[k]
			out.docs = append(out.docs, v+rebase)
			if count == 1 {
				continue
			}
			dec := golomb.NewDecoderAt(fl.docData, fl.docM, int(fl.skipDocBits[k]))
			for j := 1; j < count; j++ {
				g, err := dec.Next()
				if err != nil {
					panic("searchsim: frozen doc stream corrupt: " + err.Error())
				}
				v += int32(g) + 1
				out.docs = append(out.docs, v+rebase)
			}
		}
	}
	fdec := golomb.NewDecoderAt(fl.freqData, fl.freqM, int(fl.skipFreqBits[0]))
	pdec := golomb.NewDecoderAt(fl.posData, fl.posM, int(fl.skipPosBits[0]))
	for i := 0; i < n; i++ {
		out.starts = append(out.starts, int32(len(out.positions)))
		fv, err := fdec.Next()
		if err != nil {
			panic("searchsim: frozen freq stream corrupt: " + err.Error())
		}
		p := int32(-1)
		for f := int32(0); f <= int32(fv); f++ {
			g, err := pdec.Next()
			if err != nil {
				panic("searchsim: frozen position stream corrupt: " + err.Error())
			}
			p += int32(g) + 1
			out.positions = append(out.positions, p)
		}
	}
}

// mergeSegments compacts a contiguous run of segments into one frozen
// segment. Per-term work (decode inputs in stack order, re-encode with
// freezeList) is a pure function of the inputs, so the fan-out over terms is
// bit-identical at any worker count (internal/par semantics: 0 = NumCPU).
func mergeSegments(segs []*segment, workers int) *segment {
	first, last := segs[0], segs[len(segs)-1]
	base := first.base
	width := last.base + last.nDocs - base
	nTerms := 0
	for _, s := range segs {
		if n := s.numTerms(); n > nTerms {
			nTerms = n
		}
	}
	fr := make([]frozenList, nTerms)
	par.For(workers, nTerms, func(t int) {
		// Yield the scheduler periodically so a woken query goroutine gets
		// the CPU within a bounded slice of merge work — without this, a
		// deployment with fewer cores than goroutines sees read latency
		// double whenever a major merge is in flight. Index-based so it is
		// identical at any worker count.
		if t%16 == 0 {
			runtime.Gosched()
		}
		// Terms absent from the whole run keep the zero frozenList (df 0,
		// never bound by a cursor): partial merges of sparse segments touch
		// only a slice of the vocabulary, and a full merge never hits this
		// (every interned term has postings somewhere).
		df := 0
		for _, s := range segs {
			df += s.df(uint32(t))
		}
		if df == 0 {
			return
		}
		var pl postingList
		for _, s := range segs {
			s.appendList(uint32(t), s.base-base, &pl)
		}
		fr[t] = freezeList(&pl)
	})
	return newFrozenSegment(base, width, fr)
}

// mergeRawSegments concatenates a run of raw segments into one sparse raw
// segment — the minor compaction. No compression work happens: per term the
// input lists are appended with doc ids rebased, so the cost is a copy of
// the postings. Minor merges keep the stack short between the (much more
// expensive) Golomb-encoding major merges; a doc's postings are re-encoded
// once per major tier instead of once per size-tier level.
func mergeRawSegments(segs []*segment, workers int) *segment {
	first, last := segs[0], segs[len(segs)-1]
	base := first.base
	width := last.base + last.nDocs - base
	// Union of touched terms across the run (inputs are sparse raw).
	var union []uint32
	for _, s := range segs {
		union = append(union, s.terms...)
	}
	slices.Sort(union)
	union = slices.Compact(union)
	lists := make([]postingList, len(union))
	par.For(workers, len(union), func(i int) {
		if i%256 == 0 {
			runtime.Gosched() // bounded read-latency slice; see mergeSegments
		}
		for _, s := range segs {
			s.appendList(union[i], s.base-base, &lists[i])
		}
	})
	return newSparseRawSegment(base, width, union, lists)
}

// allRaw reports whether every segment in the run is raw (minor-mergeable).
func allRaw(segs []*segment) bool {
	for _, s := range segs {
		if s.frozen != nil || s.terms == nil {
			return false
		}
	}
	return true
}

// compactRatio and compactMinRun define the size-tiered trigger: starting
// from the newest segment, a candidate run extends to older segments while
// each is at most compactRatio× the docs accumulated so far, and the run
// merges only once it spans compactMinRun segments — small fresh segments
// batch up instead of rewriting the big base segment on every flush.
// majorMergeDocs is the raw-tier ceiling: a mergeable run of raw segments
// below it takes the cheap minor (raw concatenation) merge; at or above it
// — or whenever a frozen segment is in the run — the major merge
// Golomb-encodes the result.
const (
	compactRatio   = 2
	compactMinRun  = 4
	majorMergeDocs = 2048
)

// compactRange returns the [lo, hi) suffix of segs the size-tiered policy
// would merge, or (0, 0) when no merge is due.
func compactRange(segs []*segment) (int, int) {
	k := len(segs)
	if k < compactMinRun {
		return 0, 0
	}
	total := int(segs[k-1].nDocs)
	lo := k - 1
	for i := k - 2; i >= 0; i-- {
		if int(segs[i].nDocs) > compactRatio*total {
			break
		}
		total += int(segs[i].nDocs)
		lo = i
	}
	if k-lo < compactMinRun {
		return 0, 0
	}
	return lo, k
}

// view is one published, immutable snapshot of the engine: the segment
// stack, the visible doc prefix, the id-keyed stopword table, and the
// ResultCount memo bound to this visibility horizon. Readers load the
// current view with a single atomic pointer read and never observe a torn
// segment set.
type view struct {
	segs   []*segment
	docs   []Doc  // visible docs: global ids [0, len(docs))
	stopID []bool // term id -> stopword, covers every visible term
	vocab  *Vocab
	epoch  uint64      // bumped exactly when the visibility horizon moves
	cache  *countCache // nil on transient build-phase views
}

// df returns the term's document frequency across the whole view.
func (v *view) df(id uint32) int {
	n := 0
	for _, s := range v.segs {
		n += s.df(id)
	}
	return n
}

// idf is the dictionary's IDF formula computed from the view's own posting
// lists: per-segment document frequencies sum to exactly the dictionary df
// (both count each doc once per distinct term), so the result is
// bit-identical to corpus.Dictionary.IDF while staying lock-free against a
// concurrently-updated dictionary.
func (v *view) idf(term string) float64 {
	df := 0
	if id := v.vocab.ID(term); id != noTermID {
		df = v.df(id)
	}
	return math.Log(float64(len(v.docs)+1)/float64(df+1)) + 1
}
