package searchsim

import (
	"strings"
	"testing"

	"contextrank/internal/querylog"
	"contextrank/internal/world"
)

func smallEngine() *Engine {
	e := NewEngine()
	e.Add("The Iraq war continued as troops advanced on the capital.", 0)
	e.Add("Iraq war veterans returned home after the long war.", 0)
	e.Add("The election debate covered policy and the economy.", 1)
	e.Add("War movies about the Iraq war were released.", 0)
	e.Add("Cuba policy under the embargo remained unchanged.", 1)
	return e
}

func TestResultCountPhrase(t *testing.T) {
	e := smallEngine()
	if got := e.ResultCount("iraq war"); got != 3 {
		t.Fatalf("ResultCount(iraq war) = %d, want 3", got)
	}
	if got := e.ResultCount("war iraq"); got != 0 {
		t.Fatalf("reversed phrase should not match, got %d", got)
	}
	if got := e.ResultCount("missing phrase"); got != 0 {
		t.Fatalf("missing phrase count = %d", got)
	}
	if got := e.ResultCount(""); got != 0 {
		t.Fatalf("empty phrase count = %d", got)
	}
}

func TestResultCountAnyOrder(t *testing.T) {
	e := smallEngine()
	// "war iraq" out of order still matches docs containing both.
	if got := e.ResultCountAnyOrder("war iraq"); got != 3 {
		t.Fatalf("any-order count = %d, want 3", got)
	}
	if phrase, free := e.ResultCount("war iraq"), e.ResultCountAnyOrder("war iraq"); phrase > free {
		t.Fatal("phrase count can never exceed any-order count")
	}
}

func TestSearchRanking(t *testing.T) {
	e := smallEngine()
	results := e.Search("iraq war", 10)
	if len(results) != 3 {
		t.Fatalf("Search returned %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Score < results[i].Score {
			t.Fatal("results not sorted by score")
		}
	}
	if got := e.Search("iraq war", 2); len(got) != 2 {
		t.Fatalf("k limit not applied: %d", len(got))
	}
}

func TestSnippetContainsPhrase(t *testing.T) {
	e := smallEngine()
	results := e.Search("iraq war", 1)
	snip := e.Snippet(results[0].DocID, "iraq war")
	if !strings.Contains(snip, "iraq war") {
		t.Fatalf("snippet %q missing phrase", snip)
	}
}

func TestSnippetsCount(t *testing.T) {
	e := smallEngine()
	snips := e.Snippets("iraq war", 100)
	if len(snips) != 3 {
		t.Fatalf("Snippets = %d, want 3", len(snips))
	}
	for _, s := range snips {
		if s == "" {
			t.Fatal("empty snippet")
		}
	}
}

func TestSnippetBadDoc(t *testing.T) {
	e := smallEngine()
	if got := e.Snippet(-1, "x"); got != "" {
		t.Fatalf("bad doc snippet = %q", got)
	}
	if got := e.Snippet(999, "x"); got != "" {
		t.Fatalf("bad doc snippet = %q", got)
	}
}

func TestDictionaryBuilt(t *testing.T) {
	e := smallEngine()
	if e.Dictionary().NumDocs() != 5 {
		t.Fatalf("dictionary docs = %d", e.Dictionary().NumDocs())
	}
	if e.Dictionary().DocFreq("war") != 3 {
		t.Fatalf("df(war) = %d", e.Dictionary().DocFreq("war"))
	}
}

func testWorldCorpus(t testing.TB) (*world.World, *Engine) {
	w := world.New(world.Config{Seed: 31, VocabSize: 1500, NumTopics: 8, NumConcepts: 150})
	e := BuildCorpus(w, CorpusConfig{Seed: 32, MaxDocsPerConcept: 20})
	return w, e
}

// Structural property for feature (4): more general concepts (low
// specificity) must on average return more results.
func TestGeneralConceptsReturnMoreResults(t *testing.T) {
	w, e := testWorldCorpus(t)
	var generalSum, generalN, specificSum, specificN float64
	for i := range w.Concepts {
		c := &w.Concepts[i]
		n := float64(e.ResultCount(c.Name))
		if c.Specificity < 0.3 {
			generalSum += n
			generalN++
		} else if c.Specificity > 0.7 {
			specificSum += n
			specificN++
		}
	}
	if generalN == 0 || specificN == 0 {
		t.Skip("world lacks extremes")
	}
	if generalSum/generalN <= specificSum/specificN {
		t.Fatalf("general avg %.1f should exceed specific avg %.1f",
			generalSum/generalN, specificSum/specificN)
	}
}

// Every concept must be findable: the corpus generator guarantees at least
// one document per concept.
func TestEveryConceptHasResults(t *testing.T) {
	w, e := testWorldCorpus(t)
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if e.ResultCount(c.Name) == 0 {
			t.Errorf("concept %q has no results", c.Name)
		}
	}
}

func TestPrismaFeedback(t *testing.T) {
	w, e := testWorldCorpus(t)
	p := NewPrisma(e)
	var c *world.Concept
	for i := range w.Concepts {
		if w.Concepts[i].Specificity > 0.7 && w.Concepts[i].Quality > 0.6 {
			c = &w.Concepts[i]
			break
		}
	}
	if c == nil {
		t.Skip("no specific concept")
	}
	fb := p.Feedback(c.Name)
	if len(fb) == 0 {
		t.Fatal("no feedback terms")
	}
	if len(fb) > PrismaFeedbackLimit {
		t.Fatalf("feedback exceeds Prisma cap: %d", len(fb))
	}
	for i := 1; i < len(fb); i++ {
		if fb[i-1].Weight < fb[i].Weight {
			t.Fatal("feedback not sorted")
		}
	}
	// Query terms themselves must not be suggested back.
	for _, entry := range fb {
		for _, qt := range strings.Fields(c.Name) {
			if entry.Term == qt {
				t.Fatalf("feedback contains query term %q", qt)
			}
		}
	}
}

func TestSuggestor(t *testing.T) {
	w, _ := testWorldCorpus(t)
	log := querylog.Generate(w, querylog.Config{Seed: 33})
	s := NewSuggestor(log)
	// Pick a popular multi-term concept: its name appears in many variants.
	var c *world.Concept
	for i := range w.Concepts {
		cc := &w.Concepts[i]
		if cc.Interest > 0.5 && len(cc.Terms) >= 2 {
			c = cc
			break
		}
	}
	if c == nil {
		t.Skip("no hot concept")
	}
	suggestions := s.Suggest(c.Name, 0)
	if len(suggestions) == 0 {
		t.Fatalf("no suggestions for %q", c.Name)
	}
	if len(suggestions) > SuggestionLimit {
		t.Fatalf("more than %d suggestions", SuggestionLimit)
	}
	for _, sg := range suggestions {
		if sg.Text == c.Name {
			t.Fatal("suggestion equals the query itself")
		}
		if sg.Freq <= 0 {
			t.Fatalf("non-positive frequency: %+v", sg)
		}
	}
	// Phrase-containing suggestions must come first.
	if !strings.Contains(suggestions[0].Text, c.Terms[0]) {
		t.Logf("first suggestion %q does not share first term (allowed but unusual)", suggestions[0].Text)
	}
}

func TestSuggestLimits(t *testing.T) {
	log := querylog.FromCounts(map[string]int{
		"alpha beta": 10, "alpha beta gamma": 5, "alpha": 3, "delta": 2,
	})
	s := NewSuggestor(log)
	if got := s.Suggest("alpha beta", 1); len(got) != 1 {
		t.Fatalf("max=1 returned %d", len(got))
	}
	if got := s.Suggest("", 0); got != nil {
		t.Fatalf("empty query suggestions = %v", got)
	}
}

func BenchmarkPhraseSearch(b *testing.B) {
	w, e := testWorldCorpus(b)
	name := w.Concepts[len(w.Concepts)/2].Name
	e.ResultCount(name) // warm the memoized count so steady-state is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ResultCount(name)
	}
}
