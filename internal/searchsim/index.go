package searchsim

// The positional index behind the engine, in two representations:
//
//   - postingList: the raw build-time form. One flat triple of slices per
//     interned term — ascending doc ids, per-doc start offsets, and the
//     concatenated ascending token positions. Appending during indexing is
//     O(1) amortized and the layout is cache-friendly for intersection.
//
//   - frozenList: the compressed read-only form produced by Engine.Freeze.
//     Three Golomb-coded gap streams (doc gaps, frequency-minus-one,
//     within-doc position gaps) plus skip blocks every skipInterval docs.
//     Each skip block records the block's first doc id uncompressed and the
//     bit offsets of the three streams, so a cursor can gallop to an
//     arbitrary doc by binary-searching the skip table and decoding at most
//     skipInterval-1 gaps — positions are only ever decoded for blocks the
//     intersection actually visits.
//
// High-document-frequency terms additionally get a roaring-style doc-id
// bitmap instead of the Golomb doc stream (DESIGN.md §10): when a term
// appears in a large fraction of the corpus its doc gaps are tiny and the
// unary-heavy Golomb stream approaches one-plus bits per doc, so a plain
// bitmap is both smaller and decodes with bit tricks instead of a per-gap
// decoder loop. freezeList picks the representation per term by exact
// byte count; the skip table (block-first docs) is kept either way, so the
// cursor's galloping seek is unchanged and only block decoding dispatches.
//
// Both representations are evaluated by the same termCursor/leapfrog code
// below; differential tests pin them to each other and to the reference
// string-scanning engine bit for bit.

import (
	"math/bits"
	"sort"
	"sync"

	"contextrank/internal/golomb"
)

// skipInterval is the number of docs per skip block in the frozen index.
// Part of the frozen layout: a cursor probe decodes at most skipInterval-1
// doc gaps and one block of positions.
const skipInterval = 32

// postingList is the raw postings of one term.
type postingList struct {
	docs      []int32 // ascending doc ids
	starts    []int32 // starts[i] indexes positions; doc i owns positions[starts[i]:starts[i+1]] (end = len(positions) for the last doc)
	positions []int32 // ascending within each doc
}

// add appends one occurrence. Docs arrive in ascending order and positions
// ascend within a doc, because indexing walks documents front to back.
func (pl *postingList) add(doc, pos int32) {
	if n := len(pl.docs); n == 0 || pl.docs[n-1] != doc {
		pl.docs = append(pl.docs, doc)
		pl.starts = append(pl.starts, int32(len(pl.positions)))
	}
	pl.positions = append(pl.positions, pos)
}

// end returns the exclusive position offset of doc index i.
func (pl *postingList) end(i int) int32 {
	if i+1 < len(pl.starts) {
		return pl.starts[i+1]
	}
	return int32(len(pl.positions))
}

// rawBytes is the resident footprint of the raw list (int32 payload only;
// slice headers excluded on both sides of the raw/frozen comparison).
func (pl *postingList) rawBytes() int {
	return 4 * (len(pl.docs) + len(pl.starts) + len(pl.positions))
}

// frozenList is the compressed postings of one term.
type frozenList struct {
	nDocs int32
	nPos  int32

	docM, freqM, posM uint32
	docData           []byte // gap-1 coded doc deltas; block-first docs are elided (stored raw in skipFirstDoc)
	freqData          []byte // freq-1 per doc
	posData           []byte // per doc: first position, then gap-1 deltas; restarts every doc

	// docBits, when non-nil, replaces docData/skipDocBits for dense terms:
	// bit d set means doc d contains the term. skipFirstDoc is retained so
	// seekFrozen's binary search and the block-ordinal bookkeeping work
	// identically in both representations.
	docBits []uint64

	skipFirstDoc []int32 // first doc id of block k, uncompressed
	skipDocBits  []int32 // bit offset in docData of block k's second doc
	skipFreqBits []int32 // bit offset in freqData of block k's first freq
	skipPosBits  []int32 // bit offset in posData of block k's first position
}

// frozenBytes is the resident footprint of the compressed list.
func (fl *frozenList) frozenBytes() int {
	return len(fl.docData) + len(fl.freqData) + len(fl.posData) + 8*len(fl.docBits) +
		4*(len(fl.skipFirstDoc)+len(fl.skipDocBits)+len(fl.skipFreqBits)+len(fl.skipPosBits))
}

// Representation override for freezeListAs, used by the equivalence property
// tests; production code always passes freezeAuto.
const (
	freezeAuto = iota
	freezeGolombDocs
	freezeBitmapDocs
)

// freezeList compresses one raw posting list, choosing the smaller doc-id
// representation (Golomb gap stream vs bitmap) per term.
func freezeList(pl *postingList) frozenList { return freezeListAs(pl, freezeAuto) }

// freezeListAs is freezeList with a forced doc-id representation.
func freezeListAs(pl *postingList, mode int) frozenList {
	n := len(pl.docs)
	fl := frozenList{nDocs: int32(n), nPos: int32(len(pl.positions))}
	if n == 0 {
		fl.docM, fl.freqM, fl.posM = 1, 1, 1
		return fl
	}
	nblk := (n + skipInterval - 1) / skipInterval
	fl.skipFirstDoc = make([]int32, nblk)
	fl.skipDocBits = make([]int32, nblk)
	fl.skipFreqBits = make([]int32, nblk)
	fl.skipPosBits = make([]int32, nblk)

	// Per-stream Golomb parameters from the mean coded value (the classic
	// M ≈ 0.69·mean rule; see golomb.OptimalM).
	fl.docM = golomb.OptimalM(float64(pl.docs[n-1]+1) / float64(n))
	fl.freqM = golomb.OptimalM(float64(len(pl.positions)-n) / float64(n))
	var posSum int64
	for i := 0; i < n; i++ {
		lo, hi := pl.starts[i], pl.end(i)
		prev := int32(-1)
		for _, p := range pl.positions[lo:hi] {
			posSum += int64(p - prev - 1)
			prev = p
		}
	}
	fl.posM = golomb.OptimalM(float64(posSum) / float64(len(pl.positions)))

	var docW, freqW, posW golomb.BitWriter
	for i := 0; i < n; i++ {
		if i%skipInterval == 0 {
			k := i / skipInterval
			fl.skipFirstDoc[k] = pl.docs[i]
			fl.skipDocBits[k] = int32(docW.BitLen())
			fl.skipFreqBits[k] = int32(freqW.BitLen())
			fl.skipPosBits[k] = int32(posW.BitLen())
		} else {
			golomb.EncodeValueTo(&docW, uint32(pl.docs[i]-pl.docs[i-1]-1), fl.docM)
		}
		lo, hi := pl.starts[i], pl.end(i)
		golomb.EncodeValueTo(&freqW, uint32(hi-lo-1), fl.freqM)
		prev := int32(-1)
		for _, p := range pl.positions[lo:hi] {
			golomb.EncodeValueTo(&posW, uint32(p-prev-1), fl.posM)
			prev = p
		}
	}
	fl.docData = docW.Bytes()
	fl.freqData = freqW.Bytes()
	fl.posData = posW.Bytes()

	// Dense terms: switch the doc stream to a bitmap when it is strictly
	// smaller than the Golomb bytes plus the per-block bit offsets it
	// replaces, so FrozenBytes can only shrink. Freq/pos streams and the
	// uncompressed block-first docs are unaffected.
	words := int(pl.docs[n-1])/64 + 1
	bitmapSmaller := 8*words < len(fl.docData)+4*len(fl.skipDocBits)
	if mode == freezeBitmapDocs || (mode == freezeAuto && bitmapSmaller) {
		bitsArr := make([]uint64, words)
		for _, d := range pl.docs {
			bitsArr[d>>6] |= 1 << (uint(d) & 63)
		}
		fl.docBits = bitsArr
		fl.docData = nil
		fl.skipDocBits = nil
	}
	return fl
}

// nblocks returns the number of skip blocks.
func (fl *frozenList) nblocks() int { return len(fl.skipFirstDoc) }

// termCursor iterates one term's postings in ascending global doc order
// across the view's whole segment stack, with galloping forward seeks over
// either representation within a segment. The cursor binds one segment at a
// time (the per-list state below); when a seek target passes the bound
// segment's doc range — or the segment's list is exhausted — nextSeg
// advances to the next segment holding postings and local doc ids are
// remapped through the segment base. Cursors live in pooled evalScratch;
// init rebinds a cursor without dropping its grown position buffer.
type termCursor struct {
	n int // total doc count across all segments

	v  *view
	id uint32
	si int // index in v.segs of the bound segment

	base   int32 // bound segment's base: global doc = base + local doc
	segEnd int32 // bound segment's exclusive global doc bound

	// raw mode
	pl *postingList
	ri int

	// frozen mode
	fl         *frozenList
	blk        int // current skip block (-1 before first load)
	blockLen   int
	bi         int // index of the current doc within the block
	docs       [skipInterval]int32
	freqs      [skipInterval]int32
	posOff     [skipInterval + 1]int32
	posBuf     []int32
	posDec     golomb.Decoder // sequential position decoder within the block
	posDocs    int            // docs of this block whose positions are in posBuf
	freqLoaded bool
	posLoaded  bool // posDec initialized for this block

	// ppi is the per-doc position-probe cursor used by probePosition; reset
	// whenever the cursor lands on a doc.
	ppi int
}

// init binds the cursor to term id within view v. Reports false when the
// term has no postings in any visible segment (including NoID terms absent
// from the corpus vocabulary).
func (c *termCursor) init(v *view, id uint32) bool {
	c.v, c.id = v, id
	c.pl, c.fl = nil, nil
	c.si = -1
	c.ppi = 0
	c.n = 0
	if id == noTermID {
		return false
	}
	for _, s := range v.segs {
		c.n += s.df(id)
	}
	if c.n == 0 {
		return false
	}
	return c.nextSeg()
}

// nextSeg binds the next segment (after si) in which the term has postings,
// resetting the per-list state. Reports false when the stack is exhausted.
func (c *termCursor) nextSeg() bool {
	for c.si++; c.si < len(c.v.segs); c.si++ {
		s := c.v.segs[c.si]
		if s.df(c.id) == 0 {
			continue
		}
		c.base, c.segEnd = s.base, s.base+s.nDocs
		c.ri, c.blk, c.bi, c.blockLen = 0, -1, 0, 0
		c.freqLoaded, c.posLoaded = false, false
		c.ppi = 0
		if s.frozen != nil {
			c.fl, c.pl = &s.frozen[c.id], nil
		} else {
			c.pl, c.fl = s.rawList(c.id), nil
		}
		return true
	}
	c.pl, c.fl = nil, nil
	return false
}

// seekGEQ advances to the first global doc >= d (forward-only) and returns
// it. ok is false when every segment's list is exhausted. Within the bound
// segment the per-representation seeks gallop exactly as in the single-
// segment engine; segments whose range ends before d are skipped whole.
func (c *termCursor) seekGEQ(d int32) (doc int32, ok bool) {
	for c.pl != nil || c.fl != nil {
		if d >= c.segEnd {
			if !c.nextSeg() {
				return 0, false
			}
			continue
		}
		local := d - c.base
		if local < 0 {
			local = 0
		}
		var ld int32
		var lok bool
		if c.pl != nil {
			ld, lok = c.seekRaw(local)
		} else {
			ld, lok = c.seekFrozen(local)
		}
		if lok {
			return c.base + ld, true
		}
		if !c.nextSeg() {
			return 0, false
		}
	}
	return 0, false
}

// seekRaw gallops in the uncompressed doc slice from the current offset.
func (c *termCursor) seekRaw(d int32) (int32, bool) {
	docs := c.pl.docs
	i := c.ri
	if i >= len(docs) {
		return 0, false
	}
	if docs[i] < d {
		// Exponential probe, then binary search the bracketed range.
		step := 1
		lo, hi := i+1, len(docs)
		for lo < hi && docs[lo] < d {
			i = lo
			lo += step
			step <<= 1
		}
		if lo > hi {
			lo = hi
		}
		i = i + 1 + sort.Search(lo-(i+1), func(k int) bool { return docs[i+1+k] >= d })
		if i >= len(docs) {
			c.ri = i
			return 0, false
		}
	}
	c.ri = i
	c.ppi = 0
	return docs[i], true
}

// seekFrozen gallops via the skip table, decoding at most one block of doc
// gaps per landing block.
func (c *termCursor) seekFrozen(d int32) (int32, bool) {
	fl := c.fl
	// Fast path: the target is inside the currently-loaded block.
	if c.blk >= 0 && c.blockLen > 0 && c.docs[c.blockLen-1] >= d {
		for j := c.bi; j < c.blockLen; j++ {
			if c.docs[j] >= d {
				c.bi = j
				c.ppi = 0
				return c.docs[j], true
			}
		}
	}
	// Locate the first candidate block at or after the current one.
	nblk := fl.nblocks()
	k := 0
	if c.blk >= 0 {
		k = c.blk + 1
	}
	// Binary search: last block whose first doc is <= d.
	lo := sort.Search(nblk-k, func(i int) bool { return fl.skipFirstDoc[k+i] > d })
	blk := k + lo - 1
	if blk < k {
		blk = k
	}
	for ; blk < nblk; blk++ {
		if blk != c.blk {
			c.loadBlock(blk)
		}
		for j := 0; j < c.blockLen; j++ {
			if c.docs[j] >= d {
				c.bi = j
				c.ppi = 0
				return c.docs[j], true
			}
		}
	}
	c.blockLen = 0
	return 0, false
}

// loadBlock decodes the doc ids of skip block k, dispatching per-term on the
// frozen doc representation (Golomb gap stream vs dense bitmap).
func (c *termCursor) loadBlock(k int) {
	fl := c.fl
	count := int(fl.nDocs) - k*skipInterval
	if count > skipInterval {
		count = skipInterval
	}
	c.blk, c.blockLen, c.bi = k, count, 0
	c.freqLoaded, c.posLoaded = false, false
	v := fl.skipFirstDoc[k]
	c.docs[0] = v
	if fl.docBits != nil {
		c.loadBlockBitmap(v, count)
		return
	}
	dec := golomb.NewDecoderAt(fl.docData, fl.docM, int(fl.skipDocBits[k]))
	for j := 1; j < count; j++ {
		g, err := dec.Next()
		if err != nil {
			panic("searchsim: frozen doc stream corrupt: " + err.Error())
		}
		v += int32(g) + 1
		c.docs[j] = v
	}
}

// loadBlockBitmap fills the block's remaining doc ids from the doc bitmap:
// after the block-first doc v (from the skip table), the next count-1 set
// bits are extracted word by word with trailing-zero counts — no per-gap
// decoder state, which is what makes the bitmap path fast for dense terms.
//
//kw:hotpath
func (c *termCursor) loadBlockBitmap(v int32, count int) {
	bm := c.fl.docBits
	w := int(v) >> 6
	// Mask away bit v and everything below it; a shift of 64 (v at bit 63)
	// yields 0 in Go, emptying the word as required.
	word := bm[w] & (^uint64(0) << (uint(v)&63 + 1))
	for j := 1; j < count; j++ {
		for word == 0 {
			w++
			word = bm[w]
		}
		c.docs[j] = int32(w<<6 | bits.TrailingZeros64(word))
		word &= word - 1
	}
}

// loadFreqs decodes the per-doc frequencies of the current block.
func (c *termCursor) loadFreqs() {
	fl := c.fl
	dec := golomb.NewDecoderAt(fl.freqData, fl.freqM, int(fl.skipFreqBits[c.blk]))
	for j := 0; j < c.blockLen; j++ {
		f, err := dec.Next()
		if err != nil {
			panic("searchsim: frozen freq stream corrupt: " + err.Error())
		}
		c.freqs[j] = int32(f) + 1
	}
	c.freqLoaded = true
}

// loadPositionsThrough decodes positions lazily: the block's position
// stream is sequential, so reaching doc index bi means decoding docs
// [posDocs, bi] — but never the rest of the block. Candidates the
// intersection skips past cost nothing beyond their doc gaps.
func (c *termCursor) loadPositionsThrough(bi int) {
	if !c.posLoaded {
		if !c.freqLoaded {
			c.loadFreqs()
		}
		fl := c.fl
		c.posDec = golomb.NewDecoderAt(fl.posData, fl.posM, int(fl.skipPosBits[c.blk]))
		c.posBuf = c.posBuf[:0]
		c.posDocs = 0
		c.posOff[0] = 0
		c.posLoaded = true
	}
	for c.posDocs <= bi {
		p := int32(-1)
		for f := int32(0); f < c.freqs[c.posDocs]; f++ {
			g, err := c.posDec.Next()
			if err != nil {
				panic("searchsim: frozen position stream corrupt: " + err.Error())
			}
			p += int32(g) + 1
			c.posBuf = append(c.posBuf, p)
		}
		c.posDocs++
		c.posOff[c.posDocs] = int32(len(c.posBuf))
	}
}

// freq returns the occurrence count in the current doc.
func (c *termCursor) freq() int32 {
	if c.pl != nil {
		return c.pl.end(c.ri) - c.pl.starts[c.ri]
	}
	if !c.freqLoaded {
		c.loadFreqs()
	}
	return c.freqs[c.bi]
}

// positions returns the ascending token positions of the current doc. The
// slice aliases cursor-owned storage and is valid until the cursor moves.
func (c *termCursor) positions() []int32 {
	if c.pl != nil {
		return c.pl.positions[c.pl.starts[c.ri]:c.pl.end(c.ri)]
	}
	if c.posDocs <= c.bi || !c.posLoaded {
		c.loadPositionsThrough(c.bi)
	}
	return c.posBuf[c.posOff[c.bi]:c.posOff[c.bi+1]]
}

// probePosition reports whether the current doc contains token position
// target. Probes within one doc must ascend; the merge cursor ppi resets on
// every doc landing, making a full per-doc check O(freq) amortized.
func (c *termCursor) probePosition(target int32) bool {
	ps := c.positions()
	for c.ppi < len(ps) && ps[c.ppi] < target {
		c.ppi++
	}
	return c.ppi < len(ps) && ps[c.ppi] == target
}

// phraseHit is one document matching a phrase query.
type phraseHit struct {
	doc   int
	count int   // number of phrase occurrences
	first int32 // position of first occurrence
}

// evalScratch is the pooled per-query working set: interned ids, one cursor
// per phrase term, and the hit accumulator. Frozen evaluation decodes into
// the cursors' reusable buffers, keeping queries allocation-light.
type evalScratch struct {
	ids     []uint32
	cursors []termCursor
	hits    []phraseHit
}

// phraseHits evaluates an exact-phrase query over interned term ids and
// returns the matching docs in ascending order with occurrence counts and
// first-occurrence positions — the replacement for the seed engine's
// string-rescanning matchAt loop. The rarest term drives a leapfrog
// intersection; every other term is galloped to the driver's doc, and
// per-doc occurrence checks probe offset-shifted position lists.
//
// The returned slice aliases sc.hits.
//
//kw:hotpath
func (v *view) phraseHits(ids []uint32, sc *evalScratch) []phraseHit {
	k := len(ids)
	if k == 0 {
		return nil
	}
	if cap(sc.cursors) < k {
		sc.cursors = append(sc.cursors[:cap(sc.cursors)], make([]termCursor, k-cap(sc.cursors))...)
	}
	cs := sc.cursors[:k]
	for i, id := range ids {
		if !cs[i].init(v, id) {
			return nil
		}
	}
	drv := 0
	for i := 1; i < k; i++ {
		if cs[i].n < cs[drv].n {
			drv = i
		}
	}
	hits := sc.hits[:0]
	doc, ok := cs[drv].seekGEQ(0)
outer:
	for ok {
		for i := 0; i < k; i++ {
			if i == drv {
				continue
			}
			d2, ok2 := cs[i].seekGEQ(doc)
			if !ok2 {
				break outer
			}
			if d2 > doc {
				doc, ok = cs[drv].seekGEQ(d2)
				if !ok {
					break outer
				}
				continue outer
			}
		}
		count := 0
		first := int32(-1)
		p0s := cs[0].positions()
		if k == 1 {
			count, first = len(p0s), p0s[0]
		} else {
			for i := 0; i < k; i++ {
				cs[i].ppi = 0
			}
			for _, p := range p0s {
				match := true
				for j := 1; j < k; j++ {
					if !cs[j].probePosition(p + int32(j)) {
						match = false
						break
					}
				}
				if match {
					count++
					if first < 0 {
						first = p
					}
				}
			}
		}
		if count > 0 {
			hits = append(hits, phraseHit{doc: int(doc), count: count, first: first})
		}
		doc, ok = cs[drv].seekGEQ(doc + 1)
	}
	sc.hits = hits
	return hits
}

// countPhraseDocs returns the number of docs containing the phrase at least
// once — the ResultCount kernel. Unlike phraseHits it never materializes
// hits: a single term is answered from the document frequency alone (no
// position decode), and multi-term candidates stop probing at the first
// full occurrence.
//
//kw:hotpath
func (v *view) countPhraseDocs(ids []uint32, sc *evalScratch) int {
	k := len(ids)
	if k == 0 {
		return 0
	}
	if cap(sc.cursors) < k {
		sc.cursors = append(sc.cursors[:cap(sc.cursors)], make([]termCursor, k-cap(sc.cursors))...)
	}
	cs := sc.cursors[:k]
	for i, id := range ids {
		if !cs[i].init(v, id) {
			return 0
		}
	}
	if k == 1 {
		// Every posting is an occurrence: the answer is the doc frequency.
		return cs[0].n
	}
	drv := 0
	for i := 1; i < k; i++ {
		if cs[i].n < cs[drv].n {
			drv = i
		}
	}
	n := 0
	doc, ok := cs[drv].seekGEQ(0)
outer:
	for ok {
		for i := 0; i < k; i++ {
			if i == drv {
				continue
			}
			d2, ok2 := cs[i].seekGEQ(doc)
			if !ok2 {
				break outer
			}
			if d2 > doc {
				doc, ok = cs[drv].seekGEQ(d2)
				if !ok {
					break outer
				}
				continue outer
			}
		}
		for i := 0; i < k; i++ {
			cs[i].ppi = 0
		}
		for _, p := range cs[0].positions() {
			matched := true
			for j := 1; j < k; j++ {
				if !cs[j].probePosition(p + int32(j)) {
					matched = false
					break
				}
			}
			if matched {
				n++ // one occurrence is enough for the count
				break
			}
		}
		doc, ok = cs[drv].seekGEQ(doc + 1)
	}
	return n
}

// intersectCount returns the number of docs containing every listed term
// (any order, no position constraint) — the any-order query path. It runs
// the same leapfrog as phraseHits but never touches position streams.
//
//kw:hotpath
func (v *view) intersectCount(ids []uint32, sc *evalScratch) int {
	k := len(ids)
	if cap(sc.cursors) < k {
		sc.cursors = append(sc.cursors[:cap(sc.cursors)], make([]termCursor, k-cap(sc.cursors))...)
	}
	cs := sc.cursors[:k]
	for i, id := range ids {
		if !cs[i].init(v, id) {
			return 0
		}
	}
	drv := 0
	for i := 1; i < k; i++ {
		if cs[i].n < cs[drv].n {
			drv = i
		}
	}
	n := 0
	doc, ok := cs[drv].seekGEQ(0)
outer:
	for ok {
		for i := 0; i < k; i++ {
			if i == drv {
				continue
			}
			d2, ok2 := cs[i].seekGEQ(doc)
			if !ok2 {
				break outer
			}
			if d2 > doc {
				doc, ok = cs[drv].seekGEQ(d2)
				if !ok {
					break outer
				}
				continue outer
			}
		}
		n++
		doc, ok = cs[drv].seekGEQ(doc + 1)
	}
	return n
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

func getScratch() *evalScratch  { return scratchPool.Get().(*evalScratch) }
func putScratch(s *evalScratch) { scratchPool.Put(s) }
