package searchsim

import (
	"reflect"
	"strings"
	"testing"

	"contextrank/internal/querylog"
)

// Differential tests pinning the string-free visitor APIs — the interned
// relevance miner's inputs — to their string counterparts: identical
// selection, order, and (for Prisma) bit-identical float weights.

// TestVisitSnippetTokensMatchesSnippets: the token windows streamed by
// VisitSnippetTokens, rendered through the vocabulary, must equal the
// Snippets strings exactly — same docs, same order, same window bounds.
func TestVisitSnippetTokensMatchesSnippets(t *testing.T) {
	w, e := testWorldCorpus(t)
	for i := 0; i < len(w.Concepts); i += 9 {
		phrase := w.Concepts[i].Name
		want := e.Snippets(phrase, 100)
		got := make([]string, 0, len(want))
		e.VisitSnippetTokens(phrase, 100, func(tokens []uint32, lo, hi int) {
			var b strings.Builder
			for j := lo; j < hi; j++ {
				if j > lo {
					b.WriteByte(' ')
				}
				b.WriteString(e.vocab.Token(tokens[j]))
			}
			got = append(got, b.String())
		})
		if len(got) != len(want) {
			t.Fatalf("VisitSnippetTokens(%q): %d windows, Snippets returned %d", phrase, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("VisitSnippetTokens(%q)[%d] = %q, want %q", phrase, j, got[j], want[j])
			}
		}
	}
}

// TestVisitFeedbackMatchesFeedback: streamed (id, weight) pairs must equal
// the Feedback entries bit for bit, in the same order.
func TestVisitFeedbackMatchesFeedback(t *testing.T) {
	w, e := testWorldCorpus(t)
	p := NewPrisma(e)
	for i := 0; i < len(w.Concepts); i += 9 {
		query := w.Concepts[i].Name
		want := p.Feedback(query)
		j := 0
		p.VisitFeedback(query, func(term uint32, weight float64) {
			if j >= len(want) {
				t.Fatalf("VisitFeedback(%q): more entries than Feedback's %d", query, len(want))
			}
			if tok := e.vocab.Token(term); tok != want[j].Term || weight != want[j].Weight {
				t.Fatalf("VisitFeedback(%q)[%d] = (%s, %v), want (%s, %v)",
					query, j, tok, weight, want[j].Term, want[j].Weight)
			}
			j++
		})
		if j != len(want) {
			t.Fatalf("VisitFeedback(%q): %d entries, Feedback returned %d", query, j, len(want))
		}
	}
}

// TestVisitSuggestionsMatchesSuggest: streamed query indexes must render to
// exactly the Suggest list, and the scratch-free term ids of each suggested
// query must round-trip to its text.
func TestVisitSuggestionsMatchesSuggest(t *testing.T) {
	w, e := testWorldCorpus(t)
	log := querylog.Generate(w, querylog.Config{Seed: 33})
	s := NewSuggestor(log)
	_ = e
	for i := 0; i < len(w.Concepts); i += 9 {
		query := w.Concepts[i].Name
		want := s.Suggest(query, SuggestionLimit)
		got := make([]Suggestion, 0, len(want))
		s.VisitSuggestions(query, SuggestionLimit, func(qi int32, freq int) {
			q := log.Query(int(qi))
			got = append(got, Suggestion{Text: q.Text, Freq: freq})
			ids := log.TermIDs(int(qi))
			terms := strings.Fields(q.Text)
			if len(ids) != len(terms) {
				t.Fatalf("TermIDs(%d): %d ids for %d terms", qi, len(ids), len(terms))
			}
			for k, id := range ids {
				if log.Vocab().Token(id) != terms[k] {
					t.Fatalf("TermIDs(%d)[%d] renders %q, want %q", qi, k, log.Vocab().Token(id), terms[k])
				}
			}
		})
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("VisitSuggestions(%q): %d entries, Suggest returned none", query, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("VisitSuggestions(%q) diverged:\n got %v\nwant %v", query, got, want)
		}
	}
}
