package searchsim

import (
	"math"
	"math/rand"

	"contextrank/internal/par"
	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

// CorpusConfig parameterizes synthetic web-corpus generation.
type CorpusConfig struct {
	Seed int64
	// MaxDocsPerConcept bounds how many documents mention the most general
	// concept. Default 30.
	MaxDocsPerConcept int
	// BackgroundDocs is the number of documents mentioning no concept at
	// all (they give the dictionary realistic document frequencies).
	// Default 2 per concept.
	BackgroundDocs int
	// DocSentences is the approximate length of corpus documents. Default 10.
	DocSentences int
	// Workers bounds the generation fan-out: 1 forces serial generation,
	// 0 selects all cores. Output is bit-identical for every value (each
	// shard owns a seed derived from Seed and the shard index).
	Workers int
}

func (c CorpusConfig) withDefaults(w *world.World) CorpusConfig {
	if c.MaxDocsPerConcept == 0 {
		c.MaxDocsPerConcept = 30
	}
	if c.BackgroundDocs == 0 {
		c.BackgroundDocs = 2 * len(w.Concepts)
	}
	if c.DocSentences == 0 {
		c.DocSentences = 10
	}
	return c
}

// rawDoc is one generated-but-not-yet-indexed document: text composed and
// tokenized in a worker, merged into the engine serially.
type rawDoc struct {
	text   string
	tokens []string
	topic  int
}

// backgroundShardSize bounds how many background documents one shard
// generates, so the background tail spreads across workers. Part of the
// seed-derivation layout: changing it changes the generated corpus.
const backgroundShardSize = 64

// BuildCorpus generates the synthetic web corpus and indexes it, yielding
// the engine every feature miner queries. Two properties of the paper's web
// are reproduced structurally:
//
//   - result counts grow with generality: the number of documents mentioning
//     a concept scales with (1 − Specificity);
//   - contexts cluster with specificity and quality: documents about
//     specific, good concepts are topical and dense in the concept's context
//     terms, whereas mentions of general/low-quality phrases are scattered
//     across random topics, so their mined keywords stay diffuse (the
//     Table II effect).
//
// The whole build fans out across cfg.Workers: generation shard i covers
// concept i (the last shards cover background documents), each shard draws
// from rand.NewSource(par.Seed(cfg.Seed, i)); the generated documents are
// then indexed by the bulk parallel pipeline (bulkindex.go) and frozen with
// per-term parallel compression. Every stage is deterministic in content, so
// the corpus and index are bit-identical regardless of worker count or
// scheduling.
func BuildCorpus(w *world.World, cfg CorpusConfig) *Engine {
	cfg = cfg.withDefaults(w)

	nConcepts := len(w.Concepts)
	nBackground := (cfg.BackgroundDocs + backgroundShardSize - 1) / backgroundShardSize
	shards := par.Map(cfg.Workers, nConcepts+nBackground, func(i int) []rawDoc {
		rng := rand.New(rand.NewSource(par.Seed(cfg.Seed, i)))
		if i < nConcepts {
			return conceptDocs(w, &w.Concepts[i], cfg, rng)
		}
		lo := (i - nConcepts) * backgroundShardSize
		hi := lo + backgroundShardSize
		if hi > cfg.BackgroundDocs {
			hi = cfg.BackgroundDocs
		}
		return backgroundDocs(w, cfg, hi-lo, rng)
	})

	total := 0
	for _, shard := range shards {
		total += len(shard)
	}
	docs := make([]rawDoc, 0, total)
	for _, shard := range shards {
		docs = append(docs, shard...)
	}

	e := NewEngine()
	e.indexTokenized(docs, cfg.Workers)
	// Generated corpora are never mutated after construction: freeze into the
	// compressed immutable index so every downstream miner queries compressed
	// posting lists and the memoized ResultCount.
	e.FreezeWorkers(cfg.Workers)
	return e
}

// conceptDocs generates every corpus document mentioning one concept.
func conceptDocs(w *world.World, c *world.Concept, cfg CorpusConfig, rng *rand.Rand) []rawDoc {
	// Document count: monotone in generality (feature 4 needs general
	// concepts to return more results) but with a floor, so specific
	// concepts still have a deep snippet pool — the Table II contrast
	// comes from *clustering*, not from result starvation.
	frac := 0.5 + 0.35*math.Pow(1-c.Specificity, 1.3) + 0.15*c.Interest
	n := 1 + int(float64(cfg.MaxDocsPerConcept)*frac)
	// Fraction of mentions that are on-topic, coherent documents.
	relevantFrac := 0.1 + 0.85*math.Sqrt(c.Quality*c.Specificity)
	docs := make([]rawDoc, 0, n)
	for d := 0; d < n; d++ {
		relevant := c.Topic >= 0 && rng.Float64() < relevantFrac
		topic := c.Topic
		if !relevant || topic < 0 {
			topic = rng.Intn(len(w.Topics))
		}
		// Ambiguous concepts split their coherent documents between
		// senses, which dilutes global clustering (paper §IV-C).
		if relevant && c.Ambiguous() && rng.Intn(2) == 0 {
			topic = c.SecondaryTopic
		}
		onTopic := relevant && topic == c.Topic
		repeat := 1 + rng.Intn(2)
		if onTopic {
			// Coherent documents are *about* the concept: several
			// mentions, each sentence dense in its context terms.
			repeat = 2 + rng.Intn(3)
		}
		text, _ := w.ComposeDoc(world.ComposeOptions{
			Topic:          topic,
			Sentences:      cfg.DocSentences/2 + rng.Intn(cfg.DocSentences),
			ContextDensity: 0.9,
		}, []world.Mention{{
			Concept:  c,
			Relevant: onTopic,
			Repeat:   repeat,
		}}, rng)
		docs = append(docs, rawDoc{text: text, tokens: textproc.Words(text), topic: topic})
	}
	return docs
}

// backgroundDocs generates n concept-free documents.
func backgroundDocs(w *world.World, cfg CorpusConfig, n int, rng *rand.Rand) []rawDoc {
	docs := make([]rawDoc, 0, n)
	for d := 0; d < n; d++ {
		topic := rng.Intn(len(w.Topics))
		text, _ := w.ComposeDoc(world.ComposeOptions{
			Topic:     topic,
			Sentences: cfg.DocSentences/2 + rng.Intn(cfg.DocSentences),
		}, nil, rng)
		docs = append(docs, rawDoc{text: text, tokens: textproc.Words(text), topic: topic})
	}
	return docs
}
