package searchsim

import (
	"sync"
	"sync/atomic"
)

// countCacheShards is the number of independently-locked shards in the
// ResultCount memo cache. Same sharding idiom as the serve annotation cache:
// FNV-64a over the key picks the shard, so contention is spread without any
// cross-shard coordination.
const countCacheShards = 16

// countCache memoizes ResultCount by phrase. It is only attached to
// published views: a view's visible index never changes, which is what makes
// the memo sound — the engine installs a fresh cache exactly when the
// visibility horizon moves (and carries the cache across pure compaction
// republishes, which change no answer). Values are plain ints computed
// deterministically from the index, so concurrent fills of the same key are
// idempotent. Hit/miss counters are engine-owned atomics so /statz
// accounting survives cache rollover.
type countCache struct {
	shards [countCacheShards]countShard
	hits   *atomic.Int64
	misses *atomic.Int64
}

type countShard struct {
	mu sync.RWMutex
	//kw:guardedby(mu)
	m map[string]int
}

func newCountCache(hits, misses *atomic.Int64) *countCache {
	c := &countCache{hits: hits, misses: misses}
	for i := range c.shards {
		c.shards[i].m = make(map[string]int)
	}
	return c
}

// fnv64a is the 64-bit FNV-1a hash of s.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// get looks up phrase, recording a hit or miss.
func (c *countCache) get(phrase string) (int, bool) {
	s := &c.shards[fnv64a(phrase)%countCacheShards]
	s.mu.RLock()
	v, ok := s.m[phrase]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// put stores phrase→n.
func (c *countCache) put(phrase string, n int) {
	s := &c.shards[fnv64a(phrase)%countCacheShards]
	s.mu.Lock()
	s.m[phrase] = n
	s.mu.Unlock()
}
