package searchsim

// Bulk parallel indexing (DESIGN.md §10). BuildCorpus used to funnel every
// generated document through addTokenized on one goroutine — a serial
// intern-and-append pass that dominated the build wall-clock and flattened
// the internal/par speedup curve. indexTokenized replaces it with a
// five-phase pipeline whose only serial work is O(distinct terms + docs):
//
//  1. (parallel) chunk-local interning: each worker interns its contiguous
//     chunk of documents against a private vocabulary, recording the chunk's
//     distinct tokens in first-occurrence order;
//  2. (serial) vocabulary merge: every chunk's distinct tokens are interned
//     into the engine vocabulary in chunk order. Because chunks are
//     contiguous document ranges and each chunk's token list is in
//     first-occurrence order, the assigned ids equal the ids the serial
//     addTokenized loop would have produced, bit for bit;
//  3. (parallel) id rewrite: per-doc local ids become engine ids in place;
//  4. (parallel) posting build: each worker builds chunk-local posting lists
//     over engine ids, then a second fan-out concatenates every term's
//     chunk lists in chunk (= ascending doc) order with exact-capacity
//     allocation, fixing up the per-doc position-offset bases;
//  5. (serial) document append plus dictionary fill — a term's document
//     frequency is simply the length of its merged posting list.
//
// Every phase is deterministic in content (worker scheduling only changes
// who computes what, never the result), so the engine is bit-identical to
// the serial Add path at any worker count. The differential test
// TestBulkIndexMatchesSerial pins that.

import (
	"contextrank/internal/par"
)

// indexChunk is the contiguous doc range [lo, hi) owned by one worker during
// a bulk index pass, plus its intermediate per-chunk state.
type indexChunk struct {
	lo, hi int
	toks   []string      // chunk-distinct tokens in first-occurrence order
	remap  []uint32      // chunk-local id -> engine vocab id
	lists  []postingList // engine id -> chunk-local postings
}

// indexTokenized bulk-indexes pre-tokenized documents with the given worker
// fan-out (internal/par semantics: 0 means NumCPU). On an unfrozen engine
// documents are appended after the existing ones, visible immediately. On a
// live (frozen) engine the bulk path degenerates to serial memtable appends
// — the parallel phases below assume exclusive ownership of e.raw, which
// only the build phase has.
func (e *Engine) indexTokenized(docs []rawDoc, workers int) {
	if e.cur.Load() != nil {
		for i := range docs {
			e.addLive(docs[i].text, docs[i].tokens, docs[i].topic)
		}
		return
	}
	nd := len(docs)
	if nd == 0 {
		return
	}
	w := par.Workers(workers)
	if w > nd {
		w = nd
	}
	base := len(e.Docs)

	chunks := make([]indexChunk, w)
	for i := range chunks {
		chunks[i].lo = i * nd / w
		chunks[i].hi = (i + 1) * nd / w
	}

	// Phase 1: chunk-local interning.
	tokenIDs := make([][]uint32, nd)
	par.For(w, w, func(ci int) {
		ck := &chunks[ci]
		local := make(map[string]uint32)
		for di := ck.lo; di < ck.hi; di++ {
			toks := docs[di].tokens
			ids := make([]uint32, len(toks))
			for p, t := range toks {
				id, ok := local[t]
				if !ok {
					id = uint32(len(ck.toks))
					local[t] = id
					ck.toks = append(ck.toks, t)
				}
				ids[p] = id
			}
			tokenIDs[di] = ids
		}
	})

	// Phase 2: serial vocabulary merge in chunk order (see the file comment
	// for why this reproduces the serial id assignment exactly).
	for ci := range chunks {
		ck := &chunks[ci]
		ck.remap = make([]uint32, len(ck.toks))
		for j, t := range ck.toks {
			ck.remap[j] = e.vocab.Intern(t)
		}
	}
	nTerms := e.vocab.Len()

	// Phase 3: rewrite local ids to engine ids.
	par.For(w, w, func(ci int) {
		ck := &chunks[ci]
		for di := ck.lo; di < ck.hi; di++ {
			ids := tokenIDs[di]
			for p := range ids {
				ids[p] = ck.remap[ids[p]]
			}
		}
	})

	// Phase 4a: chunk-local posting lists keyed by engine id.
	par.For(w, w, func(ci int) {
		ck := &chunks[ci]
		ck.lists = make([]postingList, nTerms)
		for di := ck.lo; di < ck.hi; di++ {
			for pos, tid := range tokenIDs[di] {
				ck.lists[tid].add(int32(base+di), int32(pos))
			}
		}
	})

	// Phase 4b: per-term concatenation in chunk order. Chunks hold ascending
	// disjoint doc ranges, so appending chunk lists in chunk order keeps doc
	// ids ascending; starts are rebased onto the merged position stream.
	merged := make([]postingList, nTerms)
	copy(merged, e.raw)
	df := make([]int32, nTerms) // docs added per term, for the dictionary fill
	par.For(workers, nTerms, func(t int) {
		addDocs, addPos := 0, 0
		for ci := range chunks {
			l := &chunks[ci].lists[t]
			addDocs += len(l.docs)
			addPos += len(l.positions)
		}
		if addDocs == 0 {
			return
		}
		df[t] = int32(addDocs)
		old := merged[t]
		out := postingList{
			docs:      make([]int32, 0, len(old.docs)+addDocs),
			starts:    make([]int32, 0, len(old.starts)+addDocs),
			positions: make([]int32, 0, len(old.positions)+addPos),
		}
		out.docs = append(out.docs, old.docs...)
		out.starts = append(out.starts, old.starts...)
		out.positions = append(out.positions, old.positions...)
		for ci := range chunks {
			l := &chunks[ci].lists[t]
			off := int32(len(out.positions))
			out.docs = append(out.docs, l.docs...)
			for _, s := range l.starts {
				out.starts = append(out.starts, s+off)
			}
			out.positions = append(out.positions, l.positions...)
		}
		merged[t] = out
	})
	e.raw = merged

	// Phase 5: documents and dictionary.
	newDocs := make([]Doc, base+nd)
	copy(newDocs, e.Docs)
	for di := range docs {
		newDocs[base+di] = Doc{ID: base + di, Text: docs[di].text, Tokens: tokenIDs[di], Topic: docs[di].topic}
	}
	e.Docs = newDocs
	for t := 0; t < nTerms; t++ {
		if df[t] > 0 {
			e.dict.AddTermDocs(e.vocab.Token(uint32(t)), int(df[t]))
		}
	}
	e.dict.AddDocs(nd)
}
