package searchsim

// Property tests: Golomb-frozen posting lists must round-trip exactly —
// every doc id, frequency, and position recovered bit for bit through the
// skip-block cursor — for adversarial gap distributions: dense consecutive
// runs, singleton lists, sparse extremes, and documents with maximal
// positions.

import (
	"math/rand"
	"testing"
)

// listView wraps a single posting list (raw or frozen) in a one-segment
// view, the shape every cursor now reads through. The segment width is a
// huge sentinel: these property tests exercise within-segment decoding, and
// a single segment never hands off to a successor.
func listView(raw []postingList, frozen []frozenList) *view {
	const width = 1 << 30
	if frozen != nil {
		return &view{segs: []*segment{newFrozenSegment(0, width, frozen)}}
	}
	return &view{segs: []*segment{newRawSegment(0, width, raw)}}
}

// cursorDump decodes an entire frozen list through the termCursor, the only
// read path production code uses.
func cursorDump(t *testing.T, v *view, id uint32) (docs []int32, poss [][]int32) {
	t.Helper()
	var c termCursor
	if !c.init(v, id) {
		return nil, nil
	}
	for doc, ok := c.seekGEQ(0); ok; doc, ok = c.seekGEQ(doc + 1) {
		docs = append(docs, doc)
		ps := append([]int32(nil), c.positions()...)
		if int32(len(ps)) != c.freq() {
			t.Fatalf("freq %d disagrees with %d positions (doc %d)", c.freq(), len(ps), doc)
		}
		poss = append(poss, ps)
	}
	return docs, poss
}

// checkRoundTrip freezes pl and verifies the frozen cursor reproduces it,
// both via sequential iteration and via random-order galloping seeks.
func checkRoundTrip(t *testing.T, pl postingList, label string) {
	t.Helper()
	vRaw := listView([]postingList{pl}, nil)
	vFroz := listView(nil, []frozenList{freezeList(&pl)})

	wantDocs, wantPoss := cursorDump(t, vRaw, 0)
	gotDocs, gotPoss := cursorDump(t, vFroz, 0)
	if len(gotDocs) != len(wantDocs) {
		t.Fatalf("%s: %d docs decoded, want %d", label, len(gotDocs), len(wantDocs))
	}
	for i := range wantDocs {
		if gotDocs[i] != wantDocs[i] {
			t.Fatalf("%s: doc[%d] = %d, want %d", label, i, gotDocs[i], wantDocs[i])
		}
		if len(gotPoss[i]) != len(wantPoss[i]) {
			t.Fatalf("%s: doc %d decoded %d positions, want %d", label, wantDocs[i], len(gotPoss[i]), len(wantPoss[i]))
		}
		for j := range wantPoss[i] {
			if gotPoss[i][j] != wantPoss[i][j] {
				t.Fatalf("%s: doc %d pos[%d] = %d, want %d", label, wantDocs[i], j, gotPoss[i][j], wantPoss[i][j])
			}
		}
	}

	// Galloping seeks landing on, between, before, and past every doc.
	var c termCursor
	if !c.init(vFroz, 0) {
		if len(wantDocs) != 0 {
			t.Fatalf("%s: frozen cursor refused non-empty list", label)
		}
		return
	}
	prev := int32(-1)
	for i, d := range wantDocs {
		target := d
		if i%3 == 1 && d > prev+1 {
			target = prev + 1 // land from the gap before d
		}
		got, ok := c.seekGEQ(target)
		if !ok || got != d {
			t.Fatalf("%s: seekGEQ(%d) = (%d, %v), want (%d, true)", label, target, got, ok, d)
		}
		if got2, ok2 := c.seekGEQ(d); !ok2 || got2 != d {
			t.Fatalf("%s: repeated seekGEQ(%d) moved to (%d, %v)", label, d, got2, ok2)
		}
		prev = d
	}
	if _, ok := c.seekGEQ(wantDocs[len(wantDocs)-1] + 1); ok {
		t.Fatalf("%s: seek past the last doc should exhaust the cursor", label)
	}
}

func TestFrozenRoundTripAdversarial(t *testing.T) {
	build := func(docs []int32, posFn func(doc int32) []int32) postingList {
		var pl postingList
		for _, d := range docs {
			for _, p := range posFn(d) {
				pl.add(d, p)
			}
		}
		return pl
	}

	// Dense run: every doc 0..999, consecutive positions (gap-1 streams of
	// all zeros — the best case for Golomb, worst case for off-by-ones).
	dense := make([]int32, 1000)
	for i := range dense {
		dense[i] = int32(i)
	}
	checkRoundTrip(t, build(dense, func(d int32) []int32 {
		return []int32{0, 1, 2, int32(3 + d%5)}
	}), "dense-run")

	// Singleton list: one doc, one position.
	checkRoundTrip(t, build([]int32{17}, func(int32) []int32 { return []int32{42} }), "singleton")

	// Singleton at extremes: doc 0 position 0, and a huge doc id with a
	// max-position occurrence (gap coder must survive 2^21-scale gaps).
	checkRoundTrip(t, build([]int32{0}, func(int32) []int32 { return []int32{0} }), "zero-singleton")
	checkRoundTrip(t, build([]int32{1 << 21}, func(int32) []int32 { return []int32{1 << 20} }), "huge-singleton")

	// Sparse extremes: first and last doc far apart, positions at both ends
	// of a long document.
	checkRoundTrip(t, build([]int32{3, 5000, 1 << 20}, func(d int32) []int32 {
		return []int32{0, 1, 262143}
	}), "sparse-extremes")

	// Block-boundary shapes: lengths straddling the skip interval.
	for _, n := range []int{skipInterval - 1, skipInterval, skipInterval + 1, 3*skipInterval + 1} {
		docs := make([]int32, n)
		for i := range docs {
			docs[i] = int32(i * 7)
		}
		checkRoundTrip(t, build(docs, func(d int32) []int32 {
			return []int32{d % 3, d%3 + 9}
		}), "block-boundary")
	}

	// Randomized lists with mixed gap regimes (seeded: reproducible).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		var pl postingList
		doc := int32(0)
		n := 1 + rng.Intn(400)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				doc += int32(1 + rng.Intn(100000)) // sparse jump
			} else {
				doc += int32(1 + rng.Intn(3)) // dense run
			}
			pos := int32(rng.Intn(4))
			for f := 0; f < 1+rng.Intn(6); f++ {
				pl.add(doc, pos)
				pos += int32(1 + rng.Intn(50))
			}
		}
		checkRoundTrip(t, pl, "randomized")
	}
}
