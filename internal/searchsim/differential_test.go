package searchsim

// Differential suite pinning the interned+frozen engine to the seed
// engine's observable behavior byte for byte: result counts (exact and
// any-order), ranked top-k ordering including score ties, and snippet text.
// refEngine below is a faithful transcription of the pre-interning
// implementation (map[string][]posting, string-rescanning matchAt) kept as
// the executable specification.

import (
	"reflect"
	"strings"
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/textproc"
)

type refPosting struct {
	doc       int
	positions []int32
}

// refEngine is the seed implementation of the search substrate.
type refEngine struct {
	docs     [][]string // tokens per doc
	postings map[string][]refPosting
	dict     *corpus.Dictionary
}

func newRefEngine() *refEngine {
	return &refEngine{postings: make(map[string][]refPosting), dict: corpus.NewDictionary()}
}

func (e *refEngine) add(text string) {
	tokens := textproc.Words(text)
	id := len(e.docs)
	e.docs = append(e.docs, tokens)
	for pos, term := range tokens {
		ps := e.postings[term]
		if len(ps) > 0 && ps[len(ps)-1].doc == id {
			ps[len(ps)-1].positions = append(ps[len(ps)-1].positions, int32(pos))
		} else {
			ps = append(ps, refPosting{doc: id, positions: []int32{int32(pos)}})
		}
		e.postings[term] = ps
	}
	e.dict.AddDocument(tokens)
}

func (e *refEngine) matchAt(doc int, terms []string, pos int32) bool {
	tokens := e.docs[doc]
	if int(pos)+len(terms) > len(tokens) {
		return false
	}
	for j, t := range terms {
		if tokens[int(pos)+j] != t {
			return false
		}
	}
	return true
}

func (e *refEngine) phraseSearch(terms []string) []phraseHit {
	if len(terms) == 0 {
		return nil
	}
	var hits []phraseHit
	for _, p := range e.postings[terms[0]] {
		count := 0
		first := int32(-1)
		for _, pos := range p.positions {
			if e.matchAt(p.doc, terms, pos) {
				count++
				if first < 0 {
					first = pos
				}
			}
		}
		if count > 0 {
			hits = append(hits, phraseHit{doc: p.doc, count: count, first: first})
		}
	}
	return hits
}

func (e *refEngine) resultCount(phrase string) int {
	return len(e.phraseSearch(textproc.Words(phrase)))
}

func (e *refEngine) resultCountAnyOrder(phrase string) int {
	terms := textproc.Words(phrase)
	if len(terms) == 0 {
		return 0
	}
	counts := make(map[int]int)
	seen := make(map[string]bool)
	distinct := 0
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		distinct++
		for _, p := range e.postings[t] {
			counts[p.doc]++
		}
	}
	n := 0
	for _, c := range counts {
		if c == distinct {
			n++
		}
	}
	return n
}

func (e *refEngine) search(phrase string, k int) []Result {
	terms := textproc.Words(phrase)
	hits := e.phraseSearch(terms)
	if len(hits) == 0 {
		return nil
	}
	idf := 0.0
	for _, t := range terms {
		idf += e.dict.IDF(t)
	}
	results := make([]Result, 0, len(hits))
	for _, h := range hits {
		docLen := len(e.docs[h.doc])
		if docLen == 0 {
			continue
		}
		score := float64(h.count) * idf / (1 + float64(docLen)/200)
		results = append(results, Result{DocID: h.doc, Score: score})
	}
	sortResultsRef(results)
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

func (e *refEngine) snippet(docID int, phrase string) string {
	terms := textproc.Words(phrase)
	if docID < 0 || docID >= len(e.docs) || len(e.docs[docID]) == 0 {
		return ""
	}
	tokens := e.docs[docID]
	at := -1
	for i := 0; i+len(terms) <= len(tokens) && at < 0; i++ {
		match := len(terms) > 0
		for j := range terms {
			if tokens[i+j] != terms[j] {
				match = false
				break
			}
		}
		if match {
			at = i
		}
	}
	if at < 0 {
		at = 0
	}
	lo := at - SnippetWidth
	if lo < 0 {
		lo = 0
	}
	hi := at + len(terms) + SnippetWidth
	if hi > len(tokens) {
		hi = len(tokens)
	}
	return strings.Join(tokens[lo:hi], " ")
}

func (e *refEngine) snippets(phrase string, k int) []string {
	results := e.search(phrase, k)
	out := make([]string, 0, len(results))
	for _, r := range results {
		out = append(out, e.snippet(r.DocID, phrase))
	}
	return out
}

func sortResultsRef(results []Result) {
	// Same comparator as the engine: score desc, doc asc (total order —
	// doc ids are unique, so the sort is deterministic despite ties).
	for i := 1; i < len(results); i++ {
		for j := i; j > 0; j-- {
			a, b := results[j-1], results[j]
			if a.Score > b.Score || (a.Score == b.Score && a.DocID < b.DocID) {
				break
			}
			results[j-1], results[j] = b, a
		}
	}
}

// differentialPhrases assembles the query workload: every concept name plus
// adversarial variants — reversed term order (forces positional mismatches),
// sub- and super-phrases, single terms, duplicated terms, vocabulary misses,
// and the empty phrase.
func differentialPhrases(names []string) []string {
	phrases := make([]string, 0, 6*len(names)+4)
	for _, n := range names {
		phrases = append(phrases, n)
		terms := textproc.Words(n)
		if len(terms) >= 2 {
			// Reversed and partial phrases.
			rev := make([]string, len(terms))
			for i, t := range terms {
				rev[len(terms)-1-i] = t
			}
			phrases = append(phrases, strings.Join(rev, " "))
			phrases = append(phrases, strings.Join(terms[:len(terms)-1], " "))
			phrases = append(phrases, terms[len(terms)-1])
		}
		if len(terms) >= 1 {
			phrases = append(phrases, terms[0]+" "+terms[0]) // duplicate term
			phrases = append(phrases, n+" qqqunseen")        // vocabulary miss
		}
	}
	return append(phrases, "", "qqqunseen", "qqqunseen zzzunseen", "the")
}

// buildDifferentialEngines returns the seed-reference engine, an unfrozen
// interned engine, and a frozen interned engine over the same corpus.
func buildDifferentialEngines(t testing.TB) (*refEngine, *Engine, *Engine, []string) {
	t.Helper()
	w, built := testWorldCorpus(t) // frozen by BuildCorpus
	ref := newRefEngine()
	unfrozen := NewEngine()
	for i := range built.Docs {
		ref.add(built.Docs[i].Text)
		unfrozen.Add(built.Docs[i].Text, built.Docs[i].Topic)
	}
	names := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		names[i] = w.Concepts[i].Name
	}
	return ref, unfrozen, built, names
}

func TestDifferentialResultCounts(t *testing.T) {
	ref, unfrozen, frozen, names := buildDifferentialEngines(t)
	if !frozen.Frozen() || unfrozen.Frozen() {
		t.Fatal("engine freeze states wrong")
	}
	for _, phrase := range differentialPhrases(names) {
		want := ref.resultCount(phrase)
		if got := unfrozen.ResultCount(phrase); got != want {
			t.Fatalf("unfrozen ResultCount(%q) = %d, want %d", phrase, got, want)
		}
		if got := frozen.ResultCount(phrase); got != want {
			t.Fatalf("frozen ResultCount(%q) = %d, want %d", phrase, got, want)
		}
		// Memoized second read must agree.
		if got := frozen.ResultCount(phrase); got != want {
			t.Fatalf("frozen memoized ResultCount(%q) = %d, want %d", phrase, got, want)
		}
		wantAny := ref.resultCountAnyOrder(phrase)
		if got := unfrozen.ResultCountAnyOrder(phrase); got != wantAny {
			t.Fatalf("unfrozen ResultCountAnyOrder(%q) = %d, want %d", phrase, got, wantAny)
		}
		if got := frozen.ResultCountAnyOrder(phrase); got != wantAny {
			t.Fatalf("frozen ResultCountAnyOrder(%q) = %d, want %d", phrase, got, wantAny)
		}
	}
	if st := frozen.Stats(); st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("memo cache not exercised: hits=%d misses=%d", st.CacheHits, st.CacheMisses)
	}
}

func TestDifferentialSearchOrdering(t *testing.T) {
	ref, unfrozen, frozen, names := buildDifferentialEngines(t)
	for _, phrase := range differentialPhrases(names) {
		for _, k := range []int{3, 100} {
			want := ref.search(phrase, k)
			if got := unfrozen.Search(phrase, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("unfrozen Search(%q, %d) diverged:\n got %v\nwant %v", phrase, k, got, want)
			}
			if got := frozen.Search(phrase, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("frozen Search(%q, %d) diverged:\n got %v\nwant %v", phrase, k, got, want)
			}
		}
	}
}

func TestDifferentialSnippets(t *testing.T) {
	ref, unfrozen, frozen, names := buildDifferentialEngines(t)
	for _, phrase := range differentialPhrases(names) {
		want := ref.snippets(phrase, 100)
		if got := unfrozen.Snippets(phrase, 100); !reflect.DeepEqual(got, want) {
			t.Fatalf("unfrozen Snippets(%q) diverged", phrase)
		}
		if got := frozen.Snippets(phrase, 100); !reflect.DeepEqual(got, want) {
			t.Fatalf("frozen Snippets(%q) diverged", phrase)
		}
	}
	// Per-doc Snippet over arbitrary doc ids, including docs that do not
	// contain the phrase (head-window contract).
	for d := 0; d < len(frozen.Docs); d += 7 {
		for _, phrase := range names[:10] {
			want := ref.snippet(d, phrase)
			if got := frozen.Snippet(d, phrase); got != want {
				t.Fatalf("frozen Snippet(%d, %q) = %q, want %q", d, phrase, got, want)
			}
		}
	}
}

func TestDifferentialSearchAnyTerm(t *testing.T) {
	_, unfrozen, frozen, names := buildDifferentialEngines(t)
	// SearchAnyTerm's seed implementation is retained in the engine modulo
	// the postings representation; pin frozen to unfrozen (raw slices are
	// the seed layout under interning).
	for _, phrase := range names {
		want := unfrozen.SearchAnyTerm(phrase, PrismaDocDepth)
		if got := frozen.SearchAnyTerm(phrase, PrismaDocDepth); !reflect.DeepEqual(got, want) {
			t.Fatalf("SearchAnyTerm(%q) diverged between raw and frozen", phrase)
		}
	}
}

func TestFrozenStatsAndCompression(t *testing.T) {
	_, _, frozen, _ := buildDifferentialEngines(t)
	st := frozen.Stats()
	if !st.Frozen {
		t.Fatal("stats say unfrozen")
	}
	if st.FrozenBytes <= 0 || st.RawBytes <= 0 {
		t.Fatalf("size accounting missing: %+v", st)
	}
	if st.FrozenBytes >= st.RawBytes {
		t.Fatalf("frozen index (%d B) must be smaller than raw postings (%d B)", st.FrozenBytes, st.RawBytes)
	}
	if st.Postings == 0 || st.Positions < st.Postings || st.Terms == 0 || st.Docs == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	t.Logf("index: %d docs, %d terms, %d postings, %d positions, raw %d B -> frozen %d B (%.1f%%)",
		st.Docs, st.Terms, st.Postings, st.Positions, st.RawBytes, st.FrozenBytes,
		100*float64(st.FrozenBytes)/float64(st.RawBytes))
}

// Add after Freeze appends to the live memtable (the pre-LSM panic contract
// is deliberately retired): invisible until Commit, then queryable, with the
// epoch advancing exactly once per visibility change.
func TestAddAfterFreezeAppends(t *testing.T) {
	e := NewEngine()
	e.Add("one two three", 0)
	e.Freeze()
	e.Freeze() // idempotent
	ep0 := e.Epoch()
	if ep0 == 0 {
		t.Fatal("frozen engine must publish a nonzero epoch")
	}
	id := e.Add("four five", 0)
	if id != 1 {
		t.Fatalf("live Add assigned id %d, want 1", id)
	}
	if got := e.ResultCount("four five"); got != 0 {
		t.Fatalf("uncommitted doc visible: ResultCount = %d, want 0", got)
	}
	if e.Epoch() != ep0 {
		t.Fatalf("epoch moved without a visibility change: %d -> %d", ep0, e.Epoch())
	}
	ep1 := e.Commit()
	if ep1 != ep0+1 {
		t.Fatalf("Commit epoch = %d, want %d", ep1, ep0+1)
	}
	if got := e.ResultCount("four five"); got != 1 {
		t.Fatalf("committed doc not visible: ResultCount = %d, want 1", got)
	}
	if got := e.ResultCount("one two three"); got != 1 {
		t.Fatalf("base doc lost: ResultCount = %d, want 1", got)
	}
	if ep := e.Commit(); ep != ep1 {
		t.Fatalf("empty Commit moved the epoch: %d -> %d", ep1, ep)
	}
}
