package searchsim

import (
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"contextrank/internal/newsgen"
	"contextrank/internal/textproc"
)

// BenchmarkIngest measures the live tier end to end at paper scale: b.N
// pre-generated stories streamed through Add/Commit while a background
// compactor folds segments and a paced probe serves reads — the cmd/ingest
// pipeline with the feed generation cost hoisted out of the timer. Two
// custom metrics are guarded in CI (DESIGN.md §10):
//
//   - docs-per-sec: streaming ingest throughput, floored at the 2,000
//     docs/sec acceptance bar (BENCH.baseline.json).
//   - read-p99-ratio: p99 cold-read latency while a major compaction is
//     running, divided by p99 on the quiet frozen-only index. If compaction
//     ever blocked readers — a lock shared with the query path, a stalled
//     snapshot swap — every read in the window would stall and the ratio
//     would explode; the guard pins it near 1.
//
// Latency is measured on the memo-bypassing evaluation path (like
// BenchmarkPhraseEval) so per-view count caching can't mask a regression.
func BenchmarkIngest(b *testing.B) {
	w, _ := paperScaleEngine(b)
	e := BuildCorpus(w, CorpusConfig{Seed: 72})
	names := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		names[i] = w.Concepts[i].Name
	}
	readOnce := func(name string, sc *evalScratch) time.Duration {
		t0 := time.Now() //kwlint:ignore determinism — latency benchmark measures real elapsed time on purpose
		v := e.queryView()
		v.phraseHits(e.internIDs(textproc.Words(name), sc), sc)
		return time.Since(t0) //kwlint:ignore determinism — latency benchmark measures real elapsed time on purpose
	}

	// Pre-generate the story stream so the timer sees engine cost only
	// (+256 extra for the phase-3 live tail).
	feed := newsgen.NewFeed(w, newsgen.Config{Seed: 73}, 64)
	stories := make([]newsgen.Story, 0, b.N+256)
	for len(stories) < b.N+256 {
		stories = append(stories, feed.NextBatch()...)
	}
	tail := stories[b.N : b.N+256]
	stories = stories[:b.N]

	// Between samples, both latency phases walk a few MB of scratch memory:
	// the cache traffic of everything else a busy serving process does
	// between two requests. Without it the frozen-only baseline is
	// artificially warm (the quiet loop's postings stay resident across
	// samples) while during-merge samples always start cold — and the ratio
	// would conflate cache residency with compaction interference, which is
	// the thing it exists to isolate.
	dirt := make([]byte, 4<<20)
	scrub := func() {
		for i := 0; i < len(dirt); i += 64 {
			dirt[i]++
		}
	}

	sc := getScratch()
	defer putScratch(sc)

	// Phase 1 (timed): stream the docs with a background compactor and one
	// paced read probe, mirroring cmd/ingest.
	var stop, compDone atomic.Bool
	done := make(chan struct{}, 2)
	go func() {
		for !stop.Load() {
			if !e.Compact(0) {
				time.Sleep(500 * time.Microsecond)
			}
		}
		done <- struct{}{}
	}()
	go func() {
		probeSc := getScratch()
		defer putScratch(probeSc)
		for i := 0; !stop.Load(); i++ {
			readOnce(names[i%len(names)], probeSc)
			time.Sleep(time.Millisecond)
		}
		done <- struct{}{}
	}()
	b.ResetTimer()
	start := time.Now() //kwlint:ignore determinism — throughput benchmark reads the wall clock on purpose
	for i := 0; i < b.N; i++ {
		e.Add(stories[i].Text, stories[i].Topic)
		if i%64 == 63 {
			e.Commit()
		}
	}
	e.Commit()
	ingestSec := time.Since(start).Seconds() //kwlint:ignore determinism — throughput benchmark reads the wall clock on purpose
	b.StopTimer()
	stop.Store(true)
	<-done
	<-done

	// Phase 2: frozen-only read baseline. Fold everything first so the
	// baseline sees the same corpus the during-merge probe will — a
	// baseline taken on the pre-ingest index would make the ratio mostly
	// measure that queries cost more on a bigger index, not compaction.
	e.CompactAll(0)
	frozen := make([]time.Duration, 4096)
	for i := range frozen {
		scrub()
		frozen[i] = readOnce(names[i%len(names)], sc)
	}

	// Phase 3: p99 cold-read latency while a full major merge runs.
	// Re-open a small live tail — the canonical shape that precedes a
	// major merge (fully-folded index plus fresh segments). Measuring on
	// that view isolates merge *interference* from multi-segment read
	// amplification: reads over a deep unfolded stack are legitimately
	// slower, but that is a property of the view, not of the merge running
	// beside it. The probe is paced like request traffic (not a spin
	// loop): each sample times one query from dispatch, the shape a
	// serving tier sees. The merge's cooperative yields are what keep this
	// bounded on boxes with fewer cores than goroutines.
	for _, story := range tail {
		e.Add(story.Text, story.Topic)
	}
	e.Commit()
	go func() {
		e.CompactAll(0)
		compDone.Store(true)
	}()
	var during []time.Duration
	for i := 0; !compDone.Load(); i++ {
		scrub()
		during = append(during, readOnce(names[i%len(names)], sc))
		time.Sleep(200 * time.Microsecond)
	}

	if ingestSec > 0 {
		b.ReportMetric(float64(b.N)/ingestSec, "docs-per-sec")
	}
	// Too few overlapping reads means compaction had nothing left to fold;
	// report a neutral ratio rather than a noise-driven one.
	ratio := 1.0
	if len(during) >= 64 {
		ratio = float64(p99(during)) / float64(p99(frozen))
	}
	b.ReportMetric(ratio, "read-p99-ratio")
	b.ReportMetric(float64(len(during)), "compaction-reads")
}

// p99 returns the 99th-percentile sample; sorts a copy.
func p99(samples []time.Duration) time.Duration {
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*99/100]
}
