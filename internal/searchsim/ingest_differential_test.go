package searchsim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestIngestDifferential is the end-to-end equivalence pin for the live
// two-tier engine (wired into the CI parallel-equivalence matrix): after N
// live appends, K commits, interleaved size-tiered compactions and a final
// full merge — all at several worker counts — every observable answer and the
// frozen image itself must be byte-identical to a from-scratch build+Freeze
// over the concatenated doc stream.
func TestIngestDifferential(t *testing.T) {
	docs := randomRawDocs(37, 300)
	want := fromScratch(docs)
	wantDict := want.Dictionary()

	for _, workers := range []int{1, 4, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e := NewEngine()
			e.indexTokenized(docs[:80], workers)
			e.FreezeWorkers(workers)

			// Live phase: uneven batches, compaction interleaved with appends.
			next := 80
			for _, batch := range []int{3, 17, 1, 29, 8, 40, 2, 60, 25, 35} {
				hi := next + batch
				if hi > len(docs) {
					hi = len(docs)
				}
				for ; next < hi; next++ {
					e.addTokenized(docs[next].text, docs[next].tokens, docs[next].topic)
				}
				e.Commit()
				e.Compact(workers)
			}
			for ; next < len(docs); next++ {
				e.addTokenized(docs[next].text, docs[next].tokens, docs[next].topic)
			}
			e.Commit()

			if n := e.NumDocs(); n != len(docs) {
				t.Fatalf("visible docs = %d, want %d", n, len(docs))
			}

			// Answers over the still-segmented stack.
			checkAnswers(t, "segmented", e, want)

			// Dictionary document frequencies track the live appends.
			dict := e.Dictionary()
			if g, w := dict.NumDocs(), wantDict.NumDocs(); g != w {
				t.Fatalf("dict docs = %d, want %d", g, w)
			}
			for id := uint32(0); int(id) < want.Vocab().Len(); id++ {
				term := want.Vocab().Token(id)
				if g, w := dict.DocFreq(term), wantDict.DocFreq(term); g != w {
					t.Fatalf("dict df(%q) = %d, want %d", term, g, w)
				}
			}

			// Full merge: the compacted image equals the from-scratch freeze.
			e.CompactAll(workers)
			st := e.Stats()
			if st.Segments != 1 {
				t.Fatalf("CompactAll left %d segments", st.Segments)
			}
			if !reflect.DeepEqual(e.segs[0].frozen, want.segs[0].frozen) {
				t.Fatal("compacted frozen image differs from from-scratch freeze")
			}
			checkAnswers(t, "compacted", e, want)
		})
	}
}

// checkAnswers sweeps the boundary query mix and demands byte-identical
// results — counts, ranked lists with scores and tie order, snippets, OR
// retrieval — between the live engine and the from-scratch reference.
func checkAnswers(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	for _, q := range boundaryQueries() {
		if g, w := got.ResultCount(q), want.ResultCount(q); g != w {
			t.Fatalf("%s: ResultCount(%q) = %d, want %d", label, q, g, w)
		}
		if g, w := got.ResultCountAnyOrder(q), want.ResultCountAnyOrder(q); g != w {
			t.Fatalf("%s: ResultCountAnyOrder(%q) = %d, want %d", label, q, g, w)
		}
		if g, w := got.Search(q, 100), want.Search(q, 100); !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: Search(%q) diverged", label, q)
		}
		if g, w := got.Snippets(q, 25), want.Snippets(q, 25); !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: Snippets(%q) diverged", label, q)
		}
		if g, w := got.SearchAnyTerm(q, 50), want.SearchAnyTerm(q, 50); !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: SearchAnyTerm(%q) diverged", label, q)
		}
	}
}
