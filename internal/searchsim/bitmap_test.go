package searchsim

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPostingList builds a posting list over maxDoc documents where each
// doc is included with probability density, carrying 1..4 positions.
func randomPostingList(rng *rand.Rand, maxDoc int, density float64) *postingList {
	pl := &postingList{}
	for d := 0; d < maxDoc; d++ {
		if rng.Float64() >= density {
			continue
		}
		pos := int32(rng.Intn(5))
		for k := 0; k < 1+rng.Intn(4); k++ {
			pl.add(int32(d), pos)
			pos += 1 + int32(rng.Intn(40))
		}
	}
	return pl
}

// frozenCursor binds a cursor directly to one frozen list (the engine-level
// init path is exercised by the differential suite; here we compare the two
// doc-stream representations in isolation).
func frozenCursor(fl *frozenList) *termCursor {
	c := &termCursor{}
	c.init(listView(nil, []frozenList{*fl}), 0)
	return c
}

// walkAll decodes the complete list: every doc with its freq and positions.
func walkAll(t *testing.T, fl *frozenList) (docs []int32, freqs []int32, positions [][]int32) {
	t.Helper()
	c := frozenCursor(fl)
	for doc, ok := c.seekGEQ(0); ok; doc, ok = c.seekGEQ(doc + 1) {
		docs = append(docs, doc)
		freqs = append(freqs, c.freq())
		positions = append(positions, append([]int32(nil), c.positions()...))
	}
	return
}

// Property test for the bitmap doc representation: for random lists at
// sparse through dense densities, a bitmap-forced freeze and a Golomb-forced
// freeze must decode identically — full walks and random galloping seeks.
func TestBitmapGolombEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		maxDoc := 40 + rng.Intn(900)
		density := []float64{0.02, 0.1, 0.35, 0.7, 0.97}[trial%5]
		pl := randomPostingList(rng, maxDoc, density)
		if len(pl.docs) == 0 {
			continue
		}
		fg := freezeListAs(pl, freezeGolombDocs)
		fb := freezeListAs(pl, freezeBitmapDocs)
		if fg.docBits != nil || fb.docBits == nil {
			t.Fatal("forced representations not honored")
		}

		gd, gf, gp := walkAll(t, &fg)
		bd, bf, bp := walkAll(t, &fb)
		if !reflect.DeepEqual(gd, pl.docs) {
			t.Fatalf("trial %d: golomb walk lost docs", trial)
		}
		if !reflect.DeepEqual(bd, gd) || !reflect.DeepEqual(bf, gf) || !reflect.DeepEqual(bp, gp) {
			t.Fatalf("trial %d: bitmap walk diverged from golomb", trial)
		}

		// Random forward-only seek patterns, including overshoots.
		cg, cb := frozenCursor(&fg), frozenCursor(&fb)
		target := int32(0)
		for {
			dg, okg := cg.seekGEQ(target)
			db, okb := cb.seekGEQ(target)
			if okg != okb || (okg && dg != db) {
				t.Fatalf("trial %d: seekGEQ(%d) diverged: (%d,%v) vs (%d,%v)", trial, target, dg, okg, db, okb)
			}
			if !okg {
				break
			}
			if cg.freq() != cb.freq() || !reflect.DeepEqual(cg.positions(), cb.positions()) {
				t.Fatalf("trial %d: freq/positions diverged at doc %d", trial, dg)
			}
			target = dg + 1 + int32(rng.Intn(64))
		}
	}
}

// The auto mode must pick the bitmap only when it shrinks the list, so
// FrozenBytes can never regress versus all-Golomb.
func TestBitmapAutoNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sawBitmap := false
	for trial := 0; trial < 40; trial++ {
		pl := randomPostingList(rng, 80+rng.Intn(600), []float64{0.03, 0.4, 0.95}[trial%3])
		if len(pl.docs) == 0 {
			continue
		}
		auto := freezeList(pl)
		gol := freezeListAs(pl, freezeGolombDocs)
		if auto.frozenBytes() > gol.frozenBytes() {
			t.Fatalf("trial %d: auto representation larger than golomb: %d > %d",
				trial, auto.frozenBytes(), gol.frozenBytes())
		}
		if auto.docBits != nil {
			sawBitmap = true
			if auto.frozenBytes() >= gol.frozenBytes() {
				t.Fatalf("trial %d: bitmap chosen without strict shrink", trial)
			}
		}
	}
	if !sawBitmap {
		t.Fatal("no dense list selected the bitmap representation; selection rule broken")
	}
}
