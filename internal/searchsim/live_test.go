package searchsim

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// buildLiveSegmented freezes the first base docs and appends the rest through
// the live path in commits of batch docs, so the published stack holds many
// small raw segments and every multi-doc query crosses segment boundaries.
func buildLiveSegmented(docs []rawDoc, base, batch int) *Engine {
	e := NewEngine()
	for _, d := range docs[:base] {
		e.addTokenized(d.text, d.tokens, d.topic)
	}
	e.Freeze()
	for i := base; i < len(docs); i++ {
		e.addTokenized(docs[i].text, docs[i].tokens, docs[i].topic)
		if (i-base+1)%batch == 0 {
			e.Commit()
		}
	}
	e.Commit()
	return e
}

// fromScratch builds and freezes an engine over the full doc set in one pass —
// the reference every live-segmented answer must match byte for byte.
func fromScratch(docs []rawDoc) *Engine {
	e := NewEngine()
	for _, d := range docs {
		e.addTokenized(d.text, d.tokens, d.topic)
	}
	e.Freeze()
	return e
}

// boundaryQueries is the query mix the live/from-scratch comparisons sweep:
// every single term, plus phrases of increasing length so the leapfrog
// intersection has to seek across segment boundaries in both directions.
func boundaryQueries() []string {
	qs := make([]string, 0, 80)
	for i := 0; i < 60; i++ {
		qs = append(qs, fmt.Sprintf("w%02d", i))
	}
	qs = append(qs,
		"w00 w01", "w07 w08 w09", "w10 w11 w12 w13",
		"w30 w31", "w45 w46 w47", "w58 w59",
		"w03 w03", "w20 w40", "missing w01", "w59 missing",
	)
	return qs
}

// The multi-segment cursor must answer every query identically to a single
// frozen segment over the same docs: counts, any-order counts, ranked results
// with their scores and tie order, snippets, and OR retrieval.
func TestLiveSegmentBoundarySeeks(t *testing.T) {
	docs := randomRawDocs(17, 200)
	live := buildLiveSegmented(docs, 40, 7) // ~23 raw segments above the base
	want := fromScratch(docs)
	if st := live.Stats(); st.Segments < 10 {
		t.Fatalf("test needs many segments to cross, got %d", st.Segments)
	}
	for _, q := range boundaryQueries() {
		if g, w := live.ResultCount(q), want.ResultCount(q); g != w {
			t.Fatalf("ResultCount(%q) = %d, want %d", q, g, w)
		}
		if g, w := live.ResultCountAnyOrder(q), want.ResultCountAnyOrder(q); g != w {
			t.Fatalf("ResultCountAnyOrder(%q) = %d, want %d", q, g, w)
		}
		if g, w := live.Search(q, 50), want.Search(q, 50); !reflect.DeepEqual(g, w) {
			t.Fatalf("Search(%q) diverged:\n  got  %v\n  want %v", q, g, w)
		}
		if g, w := live.Snippets(q, 20), want.Snippets(q, 20); !reflect.DeepEqual(g, w) {
			t.Fatalf("Snippets(%q) diverged", q)
		}
		if g, w := live.SearchAnyTerm(q, 30), want.SearchAnyTerm(q, 30); !reflect.DeepEqual(g, w) {
			t.Fatalf("SearchAnyTerm(%q) diverged", q)
		}
	}
}

// An empty Commit — no pending memtable docs — must not move the epoch, grow
// the segment stack, or invalidate the ResultCount memo.
func TestLiveEmptyCommitNoOp(t *testing.T) {
	docs := randomRawDocs(19, 30)
	e := fromScratch(docs)
	e.ResultCount("w01") // populate the memo
	before := e.Stats()
	if ep := e.Commit(); ep != before.Epoch {
		t.Fatalf("empty Commit moved epoch %d -> %d", before.Epoch, ep)
	}
	after := e.Stats()
	if after.Segments != before.Segments || after.Epoch != before.Epoch {
		t.Fatalf("empty Commit changed the stack: %+v -> %+v", before, after)
	}
	e.ResultCount("w01")
	if st := e.Stats(); st.CacheHits == 0 {
		t.Fatal("empty Commit discarded the ResultCount memo")
	}
}

// The memtable must auto-seal at memFlushDocs without an explicit Commit,
// making exactly the sealed docs visible and advancing the epoch once.
func TestLiveAutoFlush(t *testing.T) {
	e := NewEngine()
	e.Add("base doc", 0)
	e.Freeze()
	ep0 := e.Epoch()
	for i := 0; i < memFlushDocs-1; i++ {
		e.Add(fmt.Sprintf("filler f%03d", i), 0)
	}
	if n := e.NumDocs(); n != 1 {
		t.Fatalf("memtable leaked before the flush threshold: NumDocs = %d, want 1", n)
	}
	e.Add("final straw", 0)
	if n := e.NumDocs(); n != 1+memFlushDocs {
		t.Fatalf("auto-flush did not publish: NumDocs = %d, want %d", n, 1+memFlushDocs)
	}
	if ep := e.Epoch(); ep != ep0+1 {
		t.Fatalf("auto-flush epoch = %d, want %d", ep, ep0+1)
	}
	if st := e.Stats(); st.MemDocs != 0 {
		t.Fatalf("memtable not drained by auto-flush: %d pending", st.MemDocs)
	}
	if got := e.ResultCount("final straw"); got != 1 {
		t.Fatalf("flushed doc not queryable: ResultCount = %d, want 1", got)
	}
}

// Compaction is deterministic: CompactAll at every worker count produces a
// frozen segment bit-identical to a from-scratch freeze over the same docs,
// and answers are unchanged across the merge.
func TestCompactionWorkerEquivalence(t *testing.T) {
	docs := randomRawDocs(23, 180)
	want := fromScratch(docs)
	for _, w := range []int{1, 4, 0} {
		live := buildLiveSegmented(docs, 60, 9)
		countBefore := live.ResultCount("w05 w06")
		epBefore := live.Epoch()
		if !live.CompactAll(w) {
			t.Fatalf("workers=%d: CompactAll did not merge a multi-segment stack", w)
		}
		st := live.Stats()
		if st.Segments != 1 || st.Compactions != 1 {
			t.Fatalf("workers=%d: post-compaction stats %+v", w, st)
		}
		if live.Epoch() != epBefore {
			t.Fatalf("workers=%d: compaction moved the epoch (no visibility change)", w)
		}
		if !reflect.DeepEqual(live.segs[0].frozen, want.segs[0].frozen) {
			t.Fatalf("workers=%d: merged frozen image differs from from-scratch freeze", w)
		}
		if got := live.ResultCount("w05 w06"); got != countBefore {
			t.Fatalf("workers=%d: compaction changed an answer: %d -> %d", w, countBefore, got)
		}
	}
}

// Size-tiered Compact must merge only eligible runs, preserve every answer,
// and report false once no run qualifies.
func TestCompactSizeTiered(t *testing.T) {
	docs := randomRawDocs(29, 160)
	live := buildLiveSegmented(docs, 40, 6)
	want := fromScratch(docs)
	rounds := 0
	for live.Compact(2) {
		rounds++
		if rounds > 100 {
			t.Fatal("Compact never converged")
		}
	}
	if rounds == 0 {
		t.Fatal("no compaction ran over a tall raw-segment stack")
	}
	st := live.Stats()
	if st.Segments >= 20 {
		t.Fatalf("size-tiered compaction left %d segments", st.Segments)
	}
	for _, q := range []string{"w00", "w10 w11", "w30 w31 w32", "w59"} {
		if g, w := live.ResultCount(q), want.ResultCount(q); g != w {
			t.Fatalf("ResultCount(%q) = %d after compaction, want %d", q, g, w)
		}
	}
}

// Queries racing the snapshot swap: one writer appends and commits, one
// compactor folds segments, many readers query. Run under -race this pins the
// no-torn-view contract; the monotonicity asserts catch a reader observing a
// rolled-back horizon.
func TestLiveQueryDuringSwapRace(t *testing.T) {
	docs := randomRawDocs(31, 400)
	e := NewEngine()
	for _, d := range docs[:50] {
		e.addTokenized(d.text, d.tokens, d.topic)
	}
	e.Freeze()

	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for i := 50; i < len(docs); i++ {
			e.addTokenized(docs[i].text, docs[i].tokens, docs[i].topic)
			if i%11 == 0 {
				e.Commit()
			}
		}
		e.Commit()
		stop.Store(true)
	}()

	wg.Add(1)
	go func() { // compactor
		defer wg.Done()
		for !stop.Load() {
			e.Compact(2)
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			queries := []string{"w01", "w02 w03", "w10 w11 w12", "w40"}
			lastCount := make([]int, len(queries))
			lastDocs, lastEpoch := 0, uint64(0)
			for !stop.Load() {
				q := queries[r%len(queries)]
				if n := e.ResultCount(q); n < lastCount[r%len(queries)] {
					panic(fmt.Sprintf("ResultCount(%q) went backwards: %d -> %d", q, lastCount[r%len(queries)], n))
				} else {
					lastCount[r%len(queries)] = n
				}
				for _, res := range e.Search(q, 10) {
					if res.DocID < 0 || res.DocID >= len(docs) {
						panic(fmt.Sprintf("Search(%q) returned doc %d out of range", q, res.DocID))
					}
				}
				e.Snippets(q, 5)
				st := e.Stats()
				if st.Docs < lastDocs || st.Epoch < lastEpoch {
					panic(fmt.Sprintf("visibility went backwards: docs %d->%d epoch %d->%d",
						lastDocs, st.Docs, lastEpoch, st.Epoch))
				}
				lastDocs, lastEpoch = st.Docs, st.Epoch
				r++
			}
		}(r)
	}
	wg.Wait()

	want := fromScratch(docs)
	for _, q := range []string{"w01", "w02 w03", "w10 w11 w12", "w40"} {
		if g, w := e.ResultCount(q), want.ResultCount(q); g != w {
			t.Fatalf("post-race ResultCount(%q) = %d, want %d", q, g, w)
		}
	}
}
