package searchsim

// Pins the documented Snippet contract: a window around the first phrase
// occurrence when present, the explicit head window when the phrase is
// absent or empty, and correct clamping when the phrase sits at a document
// boundary.

import (
	"strings"
	"testing"
)

// snippetEngine builds a corpus with one long document whose tokens are
// w0..w99 plus boundary-phrase docs, in both raw and frozen form.
func snippetEngines(t *testing.T) []*Engine {
	t.Helper()
	long := make([]string, 100)
	for i := range long {
		long[i] = "w" + string(rune('a'+i/10)) + string(rune('a'+i%10))
	}
	build := func() *Engine {
		e := NewEngine()
		e.Add(strings.Join(long, " "), 0)                   // doc 0: long neutral doc
		e.Add("edge start "+strings.Join(long[:40], " "), 0) // doc 1: phrase at position 0
		e.Add(strings.Join(long[:40], " ")+" edge finish", 0) // doc 2: phrase at the last positions
		e.Add("tiny doc", 0)                                 // doc 3: shorter than the window
		return e
	}
	raw := build()
	frozen := build()
	frozen.Freeze()
	return []*Engine{raw, frozen}
}

func TestSnippetAbsentPhraseHeadWindow(t *testing.T) {
	for _, e := range snippetEngines(t) {
		long := e.Snippet(0, "edge start") // phrase exists elsewhere, not in doc 0
		head := e.Snippet(0, "")
		d := e.Doc(0)
		join := func(hi int) string {
			var b strings.Builder
			for i := 0; i < hi; i++ {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(e.Vocab().Token(d.Tokens[i]))
			}
			return b.String()
		}
		// Absent 2-term phrase: head window of 2+SnippetWidth tokens.
		if want := join(2 + SnippetWidth); long != want {
			t.Fatalf("absent-phrase snippet = %q, want head window %q", long, want)
		}
		// Empty phrase: head window of SnippetWidth tokens.
		if want := join(SnippetWidth); head != want {
			t.Fatalf("empty-phrase snippet = %q, want %q", head, want)
		}
		// Unknown-vocabulary phrase behaves like any absent phrase.
		if got, want := e.Snippet(0, "zz yy"), join(2+SnippetWidth); got != want {
			t.Fatalf("unknown-term snippet = %q, want %q", got, want)
		}
	}
}

func TestSnippetPhraseAtBoundary(t *testing.T) {
	for _, e := range snippetEngines(t) {
		// Phrase at position 0: window starts at the document head.
		got := e.Snippet(1, "edge start")
		if !strings.HasPrefix(got, "edge start") {
			t.Fatalf("boundary-start snippet should begin with phrase: %q", got)
		}
		wantLen := 2 + SnippetWidth // no left context available
		if n := len(strings.Fields(got)); n != wantLen {
			t.Fatalf("boundary-start snippet has %d tokens, want %d", n, wantLen)
		}
		// Phrase ending at the last token: window clamps on the right.
		got = e.Snippet(2, "edge finish")
		if !strings.HasSuffix(got, "edge finish") {
			t.Fatalf("boundary-end snippet should end with phrase: %q", got)
		}
		if n := len(strings.Fields(got)); n != 2+SnippetWidth {
			t.Fatalf("boundary-end snippet has %d tokens, want %d", n, 2+SnippetWidth)
		}
	}
}

func TestSnippetShortDocument(t *testing.T) {
	for _, e := range snippetEngines(t) {
		// A doc shorter than the window returns the whole doc whether the
		// phrase matches or not.
		if got := e.Snippet(3, "tiny doc"); got != "tiny doc" {
			t.Fatalf("short-doc snippet = %q", got)
		}
		if got := e.Snippet(3, "absent words"); got != "tiny doc" {
			t.Fatalf("short-doc absent snippet = %q", got)
		}
	}
}
