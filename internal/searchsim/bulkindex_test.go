package searchsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomRawDocs builds a deterministic random document set over a small
// vocabulary, dense enough that many terms repeat across chunks.
func randomRawDocs(seed int64, n int) []rawDoc {
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 60)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%02d", i)
	}
	docs := make([]rawDoc, n)
	for i := range docs {
		toks := make([]string, 5+rng.Intn(36))
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = rawDoc{text: strings.Join(toks, " "), tokens: toks, topic: rng.Intn(4)}
	}
	return docs
}

func engineEqual(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	if got.vocab.Len() != want.vocab.Len() {
		t.Fatalf("%s: vocab %d terms, want %d", label, got.vocab.Len(), want.vocab.Len())
	}
	for id := uint32(0); int(id) < want.vocab.Len(); id++ {
		if g, w := got.vocab.Token(id), want.vocab.Token(id); g != w {
			t.Fatalf("%s: term id %d = %q, want %q (intern order diverged)", label, id, g, w)
		}
	}
	if !reflect.DeepEqual(got.Docs, want.Docs) {
		t.Fatalf("%s: documents diverged", label)
	}
	if !reflect.DeepEqual(got.raw, want.raw) {
		t.Fatalf("%s: raw postings diverged", label)
	}
	if g, w := got.dict.NumDocs(), want.dict.NumDocs(); g != w {
		t.Fatalf("%s: dict docs %d, want %d", label, g, w)
	}
	if g, w := got.dict.NumTerms(), want.dict.NumTerms(); g != w {
		t.Fatalf("%s: dict terms %d, want %d", label, g, w)
	}
	for id := uint32(0); int(id) < want.vocab.Len(); id++ {
		term := want.vocab.Token(id)
		if g, w := got.dict.DocFreq(term), want.dict.DocFreq(term); g != w {
			t.Fatalf("%s: df(%q) = %d, want %d", label, term, g, w)
		}
	}
}

// The bulk parallel indexer must reproduce the serial addTokenized loop bit
// for bit — vocabulary intern order, documents, postings, dictionary — at
// every worker count.
func TestBulkIndexMatchesSerial(t *testing.T) {
	docs := randomRawDocs(7, 120)
	serial := NewEngine()
	for _, d := range docs {
		serial.addTokenized(d.text, d.tokens, d.topic)
	}
	for _, w := range []int{1, 2, 3, 5, 16, 0} {
		bulk := NewEngine()
		bulk.indexTokenized(docs, w)
		engineEqual(t, fmt.Sprintf("workers=%d", w), bulk, serial)
	}
}

// Bulk indexing into a non-empty engine must equal one serial pass over the
// concatenated stream (the incremental path used when batches arrive).
func TestBulkIndexIncremental(t *testing.T) {
	docs := randomRawDocs(11, 90)
	serial := NewEngine()
	for _, d := range docs {
		serial.addTokenized(d.text, d.tokens, d.topic)
	}
	bulk := NewEngine()
	bulk.indexTokenized(docs[:31], 3)
	bulk.indexTokenized(docs[31:], 4)
	engineEqual(t, "incremental", bulk, serial)
}

// Bulk indexing after Freeze no longer panics: it lands in the live
// memtable (the old panic contract retired with the two-tier rework) and a
// Commit makes the docs visible with answers equal to a from-scratch build
// over the concatenated stream.
func TestBulkIndexAfterFreezeAppends(t *testing.T) {
	docs := randomRawDocs(3, 40)
	e := NewEngine()
	e.indexTokenized(docs[:25], 2)
	e.Freeze()
	e.indexTokenized(docs[25:], 3)
	if n := e.NumDocs(); n != 25 {
		t.Fatalf("pre-commit visible docs = %d, want 25 (memtable must stay private)", n)
	}
	e.Commit()
	if n := e.NumDocs(); n != len(docs) {
		t.Fatalf("post-commit visible docs = %d, want %d", n, len(docs))
	}
	want := NewEngine()
	for _, d := range docs {
		want.addTokenized(d.text, d.tokens, d.topic)
	}
	want.Freeze()
	for _, q := range []string{"w00", "w01 w02", "w10 w11 w12", "w59"} {
		if g, w := e.ResultCount(q), want.ResultCount(q); g != w {
			t.Fatalf("ResultCount(%q) = %d, want %d", q, g, w)
		}
	}
}

// FreezeWorkers must produce the identical frozen index at every worker
// count (freezeList is pure per term).
func TestFreezeWorkersDeterministic(t *testing.T) {
	docs := randomRawDocs(13, 150)
	want := NewEngine()
	want.indexTokenized(docs, 1)
	want.Freeze()
	for _, w := range []int{2, 5, 0} {
		e := NewEngine()
		e.indexTokenized(docs, 1)
		e.FreezeWorkers(w)
		if !reflect.DeepEqual(e.segs[0].frozen, want.segs[0].frozen) {
			t.Fatalf("FreezeWorkers(%d) frozen lists diverged", w)
		}
		if e.stats != want.stats {
			t.Fatalf("FreezeWorkers(%d) stats = %+v, want %+v", w, e.stats, want.stats)
		}
	}
}
