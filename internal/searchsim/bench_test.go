package searchsim

import (
	"testing"

	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

// benchWorld/benchEngine cache the paper-scale corpus across benchmarks:
// building it costs seconds and every benchmark reads it read-only.
var (
	benchW *world.World
	benchE *Engine
)

// paperScaleEngine builds (once) a corpus with the approximate data volume
// of contextrank.PaperConfig: ~1200 concepts over a 6000-term vocabulary.
func paperScaleEngine(b *testing.B) (*world.World, *Engine) {
	b.Helper()
	if benchE == nil {
		benchW = world.New(world.Config{Seed: 71, VocabSize: 6000, NumTopics: 24, NumConcepts: 1200})
		benchE = BuildCorpus(benchW, CorpusConfig{Seed: 72})
	}
	return benchW, benchE
}

// BenchmarkResultCount measures the searchengine_phrase feature query on the
// paper-scale corpus, cycling over every concept name — the access pattern
// of the batch feature extractor. Guarded in CI against
// BENCH.baseline.json (DESIGN.md §10).
func BenchmarkResultCount(b *testing.B) {
	w, e := paperScaleEngine(b)
	names := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		names[i] = w.Concepts[i].Name
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ResultCount(names[i%len(names)])
	}
}

// BenchmarkPhraseEval measures the galloping positional intersection itself
// — tokenize, intern, leapfrog — bypassing the ResultCount memo cache, so
// regressions in the cold evaluation path can't hide behind cache hits.
func BenchmarkPhraseEval(b *testing.B) {
	w, e := paperScaleEngine(b)
	names := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		names[i] = w.Concepts[i].Name
	}
	v := e.queryView()
	sc := getScratch()
	defer putScratch(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.phraseHits(e.internIDs(textproc.Words(names[i%len(names)]), sc), sc)
	}
}

// BenchmarkIndexSize publishes the deterministic index-size accounting as
// custom metrics (frozen-bytes, raw-bytes, compression-ratio). The corpus is
// seeded, so the sizes are byte-exact across machines — BENCH.baseline.json
// guards frozen-bytes against growth.
func BenchmarkIndexSize(b *testing.B) {
	_, e := paperScaleEngine(b)
	st := e.Stats()
	if !st.Frozen || st.FrozenBytes >= st.RawBytes {
		b.Fatalf("frozen index must be smaller than raw postings: %+v", st)
	}
	b.ReportMetric(float64(st.FrozenBytes), "frozen-bytes")
	b.ReportMetric(float64(st.RawBytes), "raw-bytes")
	b.ReportMetric(float64(st.FrozenBytes)/float64(st.RawBytes), "compression-ratio")
	for i := 0; i < b.N; i++ {
		_ = e.Stats()
	}
}

// BenchmarkSearchTopK measures ranked phrase retrieval at snippet-mining
// depth (the per-concept cost of the relevance miner's Snippets pass).
func BenchmarkSearchTopK(b *testing.B) {
	w, e := paperScaleEngine(b)
	names := make([]string, len(w.Concepts))
	for i := range w.Concepts {
		names[i] = w.Concepts[i].Name
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(names[i%len(names)], 100)
	}
}
