package searchsim

import (
	"sort"
	"strings"

	"contextrank/internal/querylog"
	"contextrank/internal/textproc"
)

// Suggestion is one related-query suggestion with its weekly query
// frequency ("We also obtain the query frequencies of the suggestions").
type Suggestion struct {
	Text string
	Freq int
}

// SuggestionLimit is the maximum number of suggestions returned per query
// ("we submit the concept ci to this service and obtain up to 300
// suggestions").
const SuggestionLimit = 300

// Suggestor is the related-query-suggestion service, the paper's third
// relevance-mining resource (obtained in production from the Yahoo!
// Developer Network). Suggestions are log queries that contain the submitted
// concept as a phrase, or failing enough of those, queries sharing a
// non-stop term with it, ranked by frequency.
type Suggestor struct {
	log *querylog.Log
}

// NewSuggestor builds a suggestion service over the query log.
func NewSuggestor(l *querylog.Log) *Suggestor { return &Suggestor{log: l} }

// Suggest returns up to max (or SuggestionLimit if max <= 0) suggestions for
// query, most frequent first, ties broken by text. The query itself is not
// included.
func (s *Suggestor) Suggest(query string, max int) []Suggestion {
	if max <= 0 || max > SuggestionLimit {
		max = SuggestionLimit
	}
	qTerms := textproc.Words(query)
	if len(qTerms) == 0 {
		return nil
	}
	qText := strings.Join(qTerms, " ")

	seen := make(map[int32]bool)
	var phraseMatches, termMatches []int32
	for _, idx := range s.log.QueriesContaining(qTerms[0]) {
		q := s.log.Query(int(idx))
		if q.Text == qText {
			continue
		}
		if containsPhrase(q.Terms, qTerms) {
			phraseMatches = append(phraseMatches, idx)
			seen[idx] = true
		}
	}
	// Fall back to shared-term matches to fill the budget.
	for _, t := range qTerms {
		if textproc.IsStopword(t) {
			continue
		}
		for _, idx := range s.log.QueriesContaining(t) {
			if seen[idx] {
				continue
			}
			q := s.log.Query(int(idx))
			if q.Text == qText {
				continue
			}
			seen[idx] = true
			termMatches = append(termMatches, idx)
		}
	}

	build := func(idxs []int32) []Suggestion {
		out := make([]Suggestion, 0, len(idxs))
		for _, idx := range idxs {
			q := s.log.Query(int(idx))
			out = append(out, Suggestion{Text: q.Text, Freq: q.Freq})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Freq != out[j].Freq {
				return out[i].Freq > out[j].Freq
			}
			return out[i].Text < out[j].Text
		})
		return out
	}
	suggestions := build(phraseMatches)
	if len(suggestions) < max {
		rest := build(termMatches)
		need := max - len(suggestions)
		if len(rest) > need {
			rest = rest[:need]
		}
		suggestions = append(suggestions, rest...)
	}
	if len(suggestions) > max {
		suggestions = suggestions[:max]
	}
	return suggestions
}

// containsPhrase reports whether hay contains needle contiguously (shared
// with the query log's phrase matcher semantics).
func containsPhrase(hay, needle []string) bool {
	if len(needle) > len(hay) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
