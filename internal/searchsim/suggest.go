package searchsim

import (
	"sort"
	"strings"

	"contextrank/internal/querylog"
	"contextrank/internal/textproc"
)

// Suggestion is one related-query suggestion with its weekly query
// frequency ("We also obtain the query frequencies of the suggestions").
type Suggestion struct {
	Text string
	Freq int
}

// SuggestionLimit is the maximum number of suggestions returned per query
// ("we submit the concept ci to this service and obtain up to 300
// suggestions").
const SuggestionLimit = 300

// Suggestor is the related-query-suggestion service, the paper's third
// relevance-mining resource (obtained in production from the Yahoo!
// Developer Network). Suggestions are log queries that contain the submitted
// concept as a phrase, or failing enough of those, queries sharing a
// non-stop term with it, ranked by frequency.
type Suggestor struct {
	log *querylog.Log
}

// NewSuggestor builds a suggestion service over the query log.
func NewSuggestor(l *querylog.Log) *Suggestor { return &Suggestor{log: l} }

// Log returns the query log backing the suggestion service (the interned
// relevance miner keys its scratch by the log's term ids).
func (s *Suggestor) Log() *querylog.Log { return s.log }

// suggestIndexes is the Suggest kernel: the ranked suggestion list as
// query-log indexes. Phrase-containing queries come first, then shared-term
// matches fill the budget, each group sorted by (frequency desc, text asc).
// Returns nil only for an empty query.
func (s *Suggestor) suggestIndexes(query string, max int) []int32 {
	if max <= 0 || max > SuggestionLimit {
		max = SuggestionLimit
	}
	qTerms := textproc.Words(query)
	if len(qTerms) == 0 {
		return nil
	}
	qText := strings.Join(qTerms, " ")

	seen := make(map[int32]bool)
	var phraseMatches, termMatches []int32
	for _, idx := range s.log.QueriesContaining(qTerms[0]) {
		q := s.log.Query(int(idx))
		if q.Text == qText {
			continue
		}
		if containsPhrase(q.Terms, qTerms) {
			phraseMatches = append(phraseMatches, idx)
			seen[idx] = true
		}
	}
	// Fall back to shared-term matches to fill the budget.
	for _, t := range qTerms {
		if textproc.IsStopword(t) {
			continue
		}
		for _, idx := range s.log.QueriesContaining(t) {
			if seen[idx] {
				continue
			}
			q := s.log.Query(int(idx))
			if q.Text == qText {
				continue
			}
			seen[idx] = true
			termMatches = append(termMatches, idx)
		}
	}

	rank := func(idxs []int32) {
		sort.Slice(idxs, func(i, j int) bool {
			qi, qj := s.log.Query(int(idxs[i])), s.log.Query(int(idxs[j]))
			if qi.Freq != qj.Freq {
				return qi.Freq > qj.Freq
			}
			return qi.Text < qj.Text
		})
	}
	rank(phraseMatches)
	out := phraseMatches
	if len(out) < max {
		rank(termMatches)
		need := max - len(out)
		if len(termMatches) > need {
			termMatches = termMatches[:need]
		}
		out = append(out, termMatches...)
	}
	if len(out) > max {
		out = out[:max]
	}
	if out == nil {
		out = []int32{} // valid query, no matches: non-nil like the pre-kernel API
	}
	return out
}

// Suggest returns up to max (or SuggestionLimit if max <= 0) suggestions for
// query, most frequent first, ties broken by text. The query itself is not
// included.
func (s *Suggestor) Suggest(query string, max int) []Suggestion {
	idxs := s.suggestIndexes(query, max)
	if idxs == nil {
		return nil
	}
	out := make([]Suggestion, len(idxs))
	for i, idx := range idxs {
		q := s.log.Query(int(idx))
		out[i] = Suggestion{Text: q.Text, Freq: q.Freq}
	}
	return out
}

// VisitSuggestions streams the Suggest results as query-log indexes with
// their frequencies, in Suggest order — the string-free path the interned
// relevance miner consumes (suggestion terms arrive as Log.TermIDs ids, so
// no suggestion text is materialized or re-tokenized).
func (s *Suggestor) VisitSuggestions(query string, max int, visit func(queryIndex int32, freq int)) {
	for _, idx := range s.suggestIndexes(query, max) {
		visit(idx, s.log.Query(int(idx)).Freq)
	}
}

// containsPhrase reports whether hay contains needle contiguously (shared
// with the query log's phrase matcher semantics).
func containsPhrase(hay, needle []string) bool {
	if len(needle) > len(hay) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		match := true
		for j := range needle {
			if hay[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
