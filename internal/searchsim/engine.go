// Package searchsim implements the search-engine substrate the paper mines:
// a positional inverted index over a (synthetic) web corpus, phrase queries
// with result counts (the searchengine_phrase feature), result snippets (the
// paper's best relevance-mining resource), Prisma-style pseudo-relevance
// feedback, and related-query suggestions.
//
// The index interns every corpus term to a dense uint32 id (the
// internal/match.Vocab idiom), evaluates phrase queries by positional
// intersection — rarest term drives, the others gallop — and, once frozen,
// serves queries from Golomb-compressed posting lists with skip blocks
// (index.go). Results are bit-identical to the straightforward
// string-scanning engine; the differential tests pin that.
package searchsim

import (
	"sort"
	"strings"

	"contextrank/internal/corpus"
	"contextrank/internal/match"
	"contextrank/internal/par"
	"contextrank/internal/textproc"
)

// noTermID marks a query term absent from the corpus vocabulary.
const noTermID = match.NoID

// Doc is one indexed document.
type Doc struct {
	// ID is the document's index in Engine.Docs.
	ID int
	// Text is the original text.
	Text string
	// Tokens are the normalized word tokens (punctuation removed), interned
	// to vocabulary ids. Engine.Vocab().Token recovers the strings.
	Tokens []uint32
	// Topic is the generating topic (metadata for tests; -1 if unknown).
	Topic int
}

// Engine is the simulated search engine. It has two phases:
//
//   - Building: Add/addTokenized append to raw (uncompressed) posting lists.
//   - Frozen: after Freeze, postings live only in Golomb-compressed form,
//     the engine is immutable and safe for concurrent queries, and
//     ResultCount is memoized. Add after Freeze panics.
//
//kw:frozen-after(Freeze)
type Engine struct {
	Docs []Doc

	vocab  *match.Vocab
	raw    []postingList // indexed by term id; nil once frozen
	frozen []frozenList  // nil until Freeze
	dict   *corpus.Dictionary
	cache  *countCache // ResultCount memo; created by Freeze
	stats  IndexStats  // size accounting captured by Freeze
	stopID []bool      // term id -> is a stopword; built by Freeze for the id-keyed miners
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{
		vocab: match.NewVocab(),
		dict:  corpus.NewDictionary(),
	}
}

// Add indexes a document and returns its ID.
func (e *Engine) Add(text string, topic int) int {
	return e.addTokenized(text, textproc.Words(text), topic)
}

// addTokenized indexes a document whose tokens were computed by the caller
// (the parallel corpus builder tokenizes in its workers and merges here, in
// input order, on one goroutine).
//
//kw:builder
func (e *Engine) addTokenized(text string, tokens []string, topic int) int {
	if e.frozen != nil {
		panic("searchsim: Add after Freeze — the frozen index is immutable")
	}
	id := len(e.Docs)
	ids := make([]uint32, len(tokens))
	for pos, term := range tokens {
		tid := e.vocab.Intern(term)
		ids[pos] = tid
		if int(tid) >= len(e.raw) {
			e.raw = append(e.raw, postingList{})
		}
		e.raw[tid].add(int32(id), int32(pos))
	}
	e.Docs = append(e.Docs, Doc{ID: id, Text: text, Tokens: ids, Topic: topic})
	e.dict.AddDocument(tokens)
	return id
}

// Freeze compresses every posting list with the Golomb delta coder (or a doc
// bitmap for dense terms) and drops the raw lists, making the engine
// immutable. Queries keep working — served from the compressed lists via
// skip-block partial decoding — and ResultCount becomes memoized
// (memoization is sound precisely because the index can no longer change).
// Freeze is idempotent.
func (e *Engine) Freeze() { e.FreezeWorkers(1) }

// FreezeWorkers is Freeze with the per-term compression fanned out across
// workers (internal/par semantics: 0 means NumCPU). freezeList is a pure
// function of one raw list, so the frozen index is bit-identical at every
// worker count; the stats pass stays serial.
//
//kw:builder
func (e *Engine) FreezeWorkers(workers int) {
	if e.frozen != nil {
		return
	}
	raw := e.raw
	fr := make([]frozenList, len(raw))
	par.For(workers, len(raw), func(i int) {
		fr[i] = freezeList(&raw[i])
	})
	st := IndexStats{Frozen: true}
	for i := range raw {
		st.Postings += len(raw[i].docs)
		st.Positions += len(raw[i].positions)
		st.RawBytes += raw[i].rawBytes()
		st.FrozenBytes += fr[i].frozenBytes()
		if fr[i].docBits != nil {
			st.BitmapTerms++
		}
	}
	stop := make([]bool, e.vocab.Len())
	for id := range stop {
		stop[id] = textproc.IsStopword(e.vocab.Token(uint32(id)))
	}
	e.frozen = fr
	e.raw = nil // release the raw postings; the compressed lists answer everything
	e.stats = st
	e.cache = newCountCache()
	e.stopID = stop
}

// Frozen reports whether Freeze has run.
func (e *Engine) Frozen() bool { return e.frozen != nil }

// numTerms returns the number of terms with posting lists.
func (e *Engine) numTerms() int {
	if e.frozen != nil {
		return len(e.frozen)
	}
	return len(e.raw)
}

// docCount returns the document frequency of term id.
func (e *Engine) docCount(id uint32) int {
	if id == noTermID || int(id) >= e.numTerms() {
		return 0
	}
	if e.frozen != nil {
		return int(e.frozen[id].nDocs)
	}
	return len(e.raw[id].docs)
}

// NumDocs returns the number of indexed documents.
func (e *Engine) NumDocs() int { return len(e.Docs) }

// Vocab returns the corpus term vocabulary (term string ↔ dense id).
func (e *Engine) Vocab() *match.Vocab { return e.vocab }

// Dictionary returns the term-document-frequency dictionary over the indexed
// corpus — the stand-in for "all the web documents that are indexed by
// Yahoo! Search" used by the concept-vector generator.
func (e *Engine) Dictionary() *corpus.Dictionary { return e.dict }

// Doc returns the document with the given ID, or nil.
func (e *Engine) Doc(id int) *Doc {
	if id < 0 || id >= len(e.Docs) {
		return nil
	}
	return &e.Docs[id]
}

// IndexStats reports index size and cache accounting (surfaced in /statz).
type IndexStats struct {
	Docs      int `json:"docs"`
	Terms     int `json:"terms"`
	Postings  int `json:"postings"`  // (term, doc) pairs
	Positions int `json:"positions"` // token occurrences

	// RawBytes is the int32 payload of the uncompressed posting lists;
	// FrozenBytes is the resident footprint of the Golomb streams plus skip
	// tables. Captured at Freeze time. BitmapTerms counts the dense terms
	// whose frozen doc stream is a bitmap rather than a Golomb gap list.
	RawBytes    int  `json:"raw_bytes"`
	FrozenBytes int  `json:"frozen_bytes"`
	BitmapTerms int  `json:"bitmap_terms"`
	Frozen      bool `json:"frozen"`

	CacheHits   int64 `json:"result_count_cache_hits"`
	CacheMisses int64 `json:"result_count_cache_misses"`
}

// Stats returns current index statistics. Size accounting is captured by
// Freeze; on an unfrozen engine it is computed on the fly.
func (e *Engine) Stats() IndexStats {
	st := e.stats
	if e.frozen == nil {
		st = IndexStats{}
		for i := range e.raw {
			st.Postings += len(e.raw[i].docs)
			st.Positions += len(e.raw[i].positions)
			st.RawBytes += e.raw[i].rawBytes()
		}
	}
	st.Docs = len(e.Docs)
	st.Terms = e.vocab.Len()
	if e.cache != nil {
		st.CacheHits, st.CacheMisses = e.cache.stats()
	}
	return st
}

// internIDs maps query terms to vocabulary ids in sc.ids (absent terms map
// to noTermID; phrase evaluation treats them as empty posting lists).
func (e *Engine) internIDs(terms []string, sc *evalScratch) []uint32 {
	ids := sc.ids[:0]
	for _, t := range terms {
		ids = append(ids, e.vocab.ID(t))
	}
	sc.ids = ids
	return ids
}

// ResultCount returns the number of documents matching phrase as an exact
// phrase query — the paper's interestingness feature (4)
// searchengine_phrase ("very specific concepts would return fewer results
// than the more general concepts"). On a frozen engine the count is memoized
// in a sharded cache: the batch feature extractor queries many repeated
// sub-phrases.
func (e *Engine) ResultCount(phrase string) int {
	if e.cache != nil {
		if n, ok := e.cache.get(phrase); ok {
			return n
		}
	}
	sc := getScratch()
	n := e.countPhraseDocs(e.internIDs(textproc.Words(phrase), sc), sc)
	putScratch(sc)
	if e.cache != nil {
		e.cache.put(phrase, n)
	}
	return n
}

// ResultCountAnyOrder returns the number of documents containing all the
// phrase's terms in any order (a "regular query"). The paper tried this
// variant and eliminated it during feature selection; it is kept for the
// ablation benches.
func (e *Engine) ResultCountAnyOrder(phrase string) int {
	terms := textproc.Words(phrase)
	if len(terms) == 0 {
		return 0
	}
	sc := getScratch()
	defer putScratch(sc)
	// Dedup while interning; one absent term empties the conjunction.
	ids := sc.ids[:0]
	for _, t := range terms {
		id := e.vocab.ID(t)
		if id == noTermID {
			return 0
		}
		dup := false
		for _, x := range ids {
			if x == id {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, id)
		}
	}
	sc.ids = ids
	if len(ids) == 1 {
		// Single distinct term: the answer is its document frequency — no
		// intersection machinery needed.
		return e.docCount(ids[0])
	}
	return e.intersectCount(ids, sc)
}

// Result is one ranked search result.
type Result struct {
	DocID int
	Score float64
}

// rankHits scores phrase hits with the tf·idf-flavoured formula (phrase
// occurrences weighted by the rarity of the phrase's terms, normalized by
// document length) and returns up to k results sorted by (score desc, doc
// asc). The idf sum runs over terms in query order so float accumulation is
// reproducible. The result slice is always freshly allocated.
//
//kw:fresh
func (e *Engine) rankHits(terms []string, hits []phraseHit, k int) []Result {
	if len(hits) == 0 {
		return nil
	}
	idf := 0.0
	for _, t := range terms {
		idf += e.dict.IDF(t)
	}
	results := make([]Result, 0, len(hits))
	for _, h := range hits {
		docLen := len(e.Docs[h.doc].Tokens)
		if docLen == 0 {
			continue
		}
		score := float64(h.count) * idf / (1 + float64(docLen)/200)
		results = append(results, Result{DocID: h.doc, Score: score})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// Search runs a phrase query and returns up to k results ranked by the
// tf·idf-flavoured score.
func (e *Engine) Search(phrase string, k int) []Result {
	terms := textproc.Words(phrase)
	sc := getScratch()
	defer putScratch(sc)
	hits := e.phraseHits(e.internIDs(terms, sc), sc)
	return e.rankHits(terms, hits, k)
}

// SearchAnyTerm runs a bag-of-words (OR) query: documents containing any of
// the query terms, ranked by summed tf·idf with length normalization. This
// is the broad retrieval classic pseudo-relevance feedback runs on — and the
// source of the topic drift that makes feedback terms noisier than
// phrase-result snippets.
func (e *Engine) SearchAnyTerm(query string, k int) []Result {
	terms := textproc.Words(query)
	if len(terms) == 0 {
		return nil
	}
	sc := getScratch()
	defer putScratch(sc)
	scores := make(map[int]float64)
	seen := make(map[string]bool, len(terms))
	var c termCursor
	for _, t := range terms {
		if seen[t] || textproc.IsStopword(t) {
			continue
		}
		seen[t] = true
		idf := e.dict.IDF(t)
		if !c.init(e, e.vocab.ID(t)) {
			continue
		}
		// Sequential walk: only doc and frequency streams are decoded —
		// position data stays untouched on the OR path.
		for doc, ok := c.seekGEQ(0); ok; doc, ok = c.seekGEQ(doc + 1) {
			docLen := len(e.Docs[doc].Tokens)
			if docLen == 0 {
				continue
			}
			scores[int(doc)] += float64(c.freq()) * idf / (1 + float64(docLen)/200)
		}
	}
	results := make([]Result, 0, len(scores))
	for doc, s := range scores {
		results = append(results, Result{DocID: doc, Score: s})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// SnippetWidth is the number of tokens of context on each side of the first
// phrase occurrence included in a snippet.
const SnippetWidth = 20

// firstOccurrence returns the token position of the first occurrence of the
// phrase (as interned ids) in docID, or -1 when the doc does not contain the
// phrase. Cursor-based: never rescans document text.
//
//kw:hotpath
func (e *Engine) firstOccurrence(docID int32, ids []uint32, sc *evalScratch) int32 {
	k := len(ids)
	if k == 0 {
		return -1
	}
	if cap(sc.cursors) < k {
		sc.cursors = append(sc.cursors[:cap(sc.cursors)], make([]termCursor, k-cap(sc.cursors))...)
	}
	cs := sc.cursors[:k]
	for i, id := range ids {
		if !cs[i].init(e, id) {
			return -1
		}
		d, ok := cs[i].seekGEQ(docID)
		if !ok || d != docID {
			return -1
		}
	}
	p0s := cs[0].positions()
	if k == 1 {
		return p0s[0]
	}
	for i := range cs {
		cs[i].ppi = 0
	}
	for _, p := range p0s {
		matchAll := true
		for j := 1; j < k; j++ {
			if !cs[j].probePosition(p + int32(j)) {
				matchAll = false
				break
			}
		}
		if matchAll {
			return p
		}
	}
	return -1
}

// snippetAt renders the snippet window of doc around a phrase occurrence at
// token position `at` spanning termLen tokens.
func (e *Engine) snippetAt(docID, at, termLen int) string {
	d := &e.Docs[docID]
	lo := at - SnippetWidth
	if lo < 0 {
		lo = 0
	}
	hi := at + termLen + SnippetWidth
	if hi > len(d.Tokens) {
		hi = len(d.Tokens)
	}
	var b strings.Builder
	for i := lo; i < hi; i++ {
		if i > lo {
			b.WriteByte(' ')
		}
		b.WriteString(e.vocab.Token(d.Tokens[i]))
	}
	return b.String()
}

// Snippet builds the result snippet for doc: a window of tokens around the
// first occurrence of the phrase ("short text strings ... constructed from
// the result pages by the engine").
//
// Absent-phrase contract: when the document does not contain the phrase —
// including an empty phrase, or phrase terms outside the corpus vocabulary —
// the snippet is the document's head window: tokens [0, len(terms) +
// SnippetWidth). A nonexistent doc id or an empty document yields "".
func (e *Engine) Snippet(docID int, phrase string) string {
	terms := textproc.Words(phrase)
	d := e.Doc(docID)
	if d == nil || len(d.Tokens) == 0 {
		return ""
	}
	sc := getScratch()
	at := e.firstOccurrence(int32(docID), e.internIDs(terms, sc), sc)
	putScratch(sc)
	if at < 0 {
		at = 0 // head window (see contract above)
	}
	return e.snippetAt(docID, int(at), len(terms))
}

// visitHits evaluates phrase once, ranks the top-k results, and calls fn for
// each result in rank order with its doc id and the position of the first
// phrase occurrence (recovered from the phrase hit — the document is never
// rescanned). Shared kernel of Snippets and VisitSnippetTokens.
func (e *Engine) visitHits(terms []string, k int, fn func(docID, at int)) {
	sc := getScratch()
	defer putScratch(sc)
	hits := e.phraseHits(e.internIDs(terms, sc), sc)
	results := e.rankHits(terms, hits, k)
	for _, r := range results {
		// hits are in ascending doc order; recover this result's hit to
		// reuse its first-occurrence position.
		i := sort.Search(len(hits), func(i int) bool { return hits[i].doc >= r.DocID })
		fn(r.DocID, int(hits[i].first))
	}
}

// Snippets returns the snippets of the top-k results for phrase. The paper
// uses the snippets of the first hundred results as the best resource for
// relevant-keyword mining.
func (e *Engine) Snippets(phrase string, k int) []string {
	terms := textproc.Words(phrase)
	out := make([]string, 0, k)
	e.visitHits(terms, k, func(docID, at int) {
		out = append(out, e.snippetAt(docID, at, len(terms)))
	})
	return out
}

// VisitSnippetTokens is the string-free twin of Snippets for the interned
// relevance miner: visit is called once per top-k result in rank order with
// the document's interned token slice and the snippet window bounds [lo, hi)
// — the same window snippetAt renders. The token slice aliases engine-owned
// storage and must not be modified or retained.
func (e *Engine) VisitSnippetTokens(phrase string, k int, visit func(tokens []uint32, lo, hi int)) {
	terms := textproc.Words(phrase)
	e.visitHits(terms, k, func(docID, at int) {
		d := &e.Docs[docID]
		lo := at - SnippetWidth
		if lo < 0 {
			lo = 0
		}
		hi := at + len(terms) + SnippetWidth
		if hi > len(d.Tokens) {
			hi = len(d.Tokens)
		}
		visit(d.Tokens, lo, hi)
	})
}
