// Package searchsim implements the search-engine substrate the paper mines:
// a positional inverted index over a (synthetic) web corpus, phrase queries
// with result counts (the searchengine_phrase feature), result snippets (the
// paper's best relevance-mining resource), Prisma-style pseudo-relevance
// feedback, and related-query suggestions.
package searchsim

import (
	"sort"
	"strings"

	"contextrank/internal/corpus"
	"contextrank/internal/textproc"
)

// Doc is one indexed document.
type Doc struct {
	// ID is the document's index in Engine.Docs.
	ID int
	// Text is the original text.
	Text string
	// Tokens are the normalized word tokens (punctuation removed).
	Tokens []string
	// Topic is the generating topic (metadata for tests; -1 if unknown).
	Topic int
}

type posting struct {
	doc       int
	positions []int32
}

// Engine is the simulated search engine.
type Engine struct {
	Docs []Doc

	postings map[string][]posting
	dict     *corpus.Dictionary
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{
		postings: make(map[string][]posting),
		dict:     corpus.NewDictionary(),
	}
}

// Add indexes a document and returns its ID.
func (e *Engine) Add(text string, topic int) int {
	return e.addTokenized(text, textproc.Words(text), topic)
}

// addTokenized indexes a document whose tokens were computed by the caller
// (the parallel corpus builder tokenizes in its workers and merges here, in
// input order, on one goroutine).
func (e *Engine) addTokenized(text string, tokens []string, topic int) int {
	id := len(e.Docs)
	e.Docs = append(e.Docs, Doc{ID: id, Text: text, Tokens: tokens, Topic: topic})
	for pos, term := range tokens {
		ps := e.postings[term]
		if len(ps) > 0 && ps[len(ps)-1].doc == id {
			ps[len(ps)-1].positions = append(ps[len(ps)-1].positions, int32(pos))
		} else {
			ps = append(ps, posting{doc: id, positions: []int32{int32(pos)}})
		}
		e.postings[term] = ps
	}
	e.dict.AddDocument(tokens)
	return id
}

// NumDocs returns the number of indexed documents.
func (e *Engine) NumDocs() int { return len(e.Docs) }

// Dictionary returns the term-document-frequency dictionary over the indexed
// corpus — the stand-in for "all the web documents that are indexed by
// Yahoo! Search" used by the concept-vector generator.
func (e *Engine) Dictionary() *corpus.Dictionary { return e.dict }

// Doc returns the document with the given ID, or nil.
func (e *Engine) Doc(id int) *Doc {
	if id < 0 || id >= len(e.Docs) {
		return nil
	}
	return &e.Docs[id]
}

// phraseHit is one document matching a phrase query.
type phraseHit struct {
	doc   int
	count int   // number of phrase occurrences
	first int32 // position of first occurrence
}

// phraseSearch returns every document containing the normalized phrase terms
// contiguously, with occurrence counts, in ascending doc order.
func (e *Engine) phraseSearch(terms []string) []phraseHit {
	if len(terms) == 0 {
		return nil
	}
	base := e.postings[terms[0]]
	if len(base) == 0 {
		return nil
	}
	var hits []phraseHit
	for _, p := range base {
		count := 0
		first := int32(-1)
		for _, pos := range p.positions {
			if e.matchAt(p.doc, terms, pos) {
				count++
				if first < 0 {
					first = pos
				}
			}
		}
		if count > 0 {
			hits = append(hits, phraseHit{doc: p.doc, count: count, first: first})
		}
	}
	return hits
}

// matchAt reports whether doc has terms starting at token position pos.
func (e *Engine) matchAt(doc int, terms []string, pos int32) bool {
	tokens := e.Docs[doc].Tokens
	if int(pos)+len(terms) > len(tokens) {
		return false
	}
	for j, t := range terms {
		if tokens[int(pos)+j] != t {
			return false
		}
	}
	return true
}

// ResultCount returns the number of documents matching phrase as an exact
// phrase query — the paper's interestingness feature (4)
// searchengine_phrase ("very specific concepts would return fewer results
// than the more general concepts").
func (e *Engine) ResultCount(phrase string) int {
	return len(e.phraseSearch(textproc.Words(phrase)))
}

// ResultCountAnyOrder returns the number of documents containing all the
// phrase's terms in any order (a "regular query"). The paper tried this
// variant and eliminated it during feature selection; it is kept for the
// ablation benches.
func (e *Engine) ResultCountAnyOrder(phrase string) int {
	terms := textproc.Words(phrase)
	if len(terms) == 0 {
		return 0
	}
	counts := make(map[int]int)
	seen := make(map[string]bool)
	distinct := 0
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		distinct++
		for _, p := range e.postings[t] {
			counts[p.doc]++
		}
	}
	n := 0
	for _, c := range counts {
		if c == distinct {
			n++
		}
	}
	return n
}

// Result is one ranked search result.
type Result struct {
	DocID int
	Score float64
}

// Search runs a phrase query and returns up to k results ranked by a
// tf·idf-flavoured score (phrase occurrences weighted by the rarity of the
// phrase's terms, normalized by document length).
func (e *Engine) Search(phrase string, k int) []Result {
	terms := textproc.Words(phrase)
	hits := e.phraseSearch(terms)
	if len(hits) == 0 {
		return nil
	}
	idf := 0.0
	for _, t := range terms {
		idf += e.dict.IDF(t)
	}
	results := make([]Result, 0, len(hits))
	for _, h := range hits {
		docLen := len(e.Docs[h.doc].Tokens)
		if docLen == 0 {
			continue
		}
		score := float64(h.count) * idf / (1 + float64(docLen)/200)
		results = append(results, Result{DocID: h.doc, Score: score})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// SearchAnyTerm runs a bag-of-words (OR) query: documents containing any of
// the query terms, ranked by summed tf·idf with length normalization. This
// is the broad retrieval classic pseudo-relevance feedback runs on — and the
// source of the topic drift that makes feedback terms noisier than
// phrase-result snippets.
func (e *Engine) SearchAnyTerm(query string, k int) []Result {
	terms := textproc.Words(query)
	if len(terms) == 0 {
		return nil
	}
	scores := make(map[int]float64)
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] || textproc.IsStopword(t) {
			continue
		}
		seen[t] = true
		idf := e.dict.IDF(t)
		for _, p := range e.postings[t] {
			docLen := len(e.Docs[p.doc].Tokens)
			if docLen == 0 {
				continue
			}
			scores[p.doc] += float64(len(p.positions)) * idf / (1 + float64(docLen)/200)
		}
	}
	results := make([]Result, 0, len(scores))
	for doc, s := range scores {
		results = append(results, Result{DocID: doc, Score: s})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// SnippetWidth is the number of tokens of context on each side of the first
// phrase occurrence included in a snippet.
const SnippetWidth = 20

// Snippet builds the result snippet for doc: a window of tokens around the
// first occurrence of the phrase ("short text strings ... constructed from
// the result pages by the engine").
func (e *Engine) Snippet(docID int, phrase string) string {
	terms := textproc.Words(phrase)
	d := e.Doc(docID)
	if d == nil || len(d.Tokens) == 0 {
		return ""
	}
	at := -1
	for i := 0; i+len(terms) <= len(d.Tokens) && at < 0; i++ {
		match := len(terms) > 0
		for j := range terms {
			if d.Tokens[i+j] != terms[j] {
				match = false
				break
			}
		}
		if match {
			at = i
		}
	}
	if at < 0 {
		at = 0
	}
	lo := at - SnippetWidth
	if lo < 0 {
		lo = 0
	}
	hi := at + len(terms) + SnippetWidth
	if hi > len(d.Tokens) {
		hi = len(d.Tokens)
	}
	return strings.Join(d.Tokens[lo:hi], " ")
}

// Snippets returns the snippets of the top-k results for phrase. The paper
// uses the snippets of the first hundred results as the best resource for
// relevant-keyword mining.
func (e *Engine) Snippets(phrase string, k int) []string {
	results := e.Search(phrase, k)
	out := make([]string, 0, len(results))
	for _, r := range results {
		out = append(out, e.Snippet(r.DocID, phrase))
	}
	return out
}
