// Package searchsim implements the search-engine substrate the paper mines:
// a positional inverted index over a (synthetic) web corpus, phrase queries
// with result counts (the searchengine_phrase feature), result snippets (the
// paper's best relevance-mining resource), Prisma-style pseudo-relevance
// feedback, and related-query suggestions.
//
// The index interns every corpus term to a dense uint32 id, evaluates phrase
// queries by positional intersection — rarest term drives, the others gallop
// — and serves frozen postings from Golomb-compressed lists with skip blocks
// (index.go). Since the live-segmented rework the engine is an LSM-style
// two-tier store (segment.go): Freeze seals the bulk corpus into the base
// frozen segment, later Adds append to a mutable memtable that seals into
// raw segments, and background compaction folds segment runs back into
// compressed form. Readers always query an atomically-published immutable
// view — no lock on the query path — and results are bit-identical to a
// from-scratch build over the same docs; the differential tests pin that.
package searchsim

import (
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"contextrank/internal/corpus"
	"contextrank/internal/match"
	"contextrank/internal/par"
	"contextrank/internal/textproc"
)

// noTermID marks a query term absent from the corpus vocabulary.
const noTermID = match.NoID

// memFlushDocs is the mutable memtable's auto-seal threshold: once this many
// docs accumulate the memtable seals into a raw segment and becomes visible.
// Commit seals and publishes earlier on demand.
const memFlushDocs = 256

// Doc is one indexed document.
type Doc struct {
	// ID is the document's index in Engine.Docs.
	ID int
	// Text is the original text.
	Text string
	// Tokens are the normalized word tokens (punctuation removed), interned
	// to vocabulary ids. Engine.Vocab().Token recovers the strings.
	Tokens []uint32
	// Topic is the generating topic (metadata for tests; -1 if unknown).
	Topic int
}

// Engine is the simulated search engine. It has two phases:
//
//   - Building: Add/addTokenized append to raw (uncompressed) posting lists,
//     visible immediately; single-goroutine.
//   - Live (after Freeze): the bulk corpus is sealed into the base frozen
//     segment and queries run lock-free against published views. Add keeps
//     working — it appends to a writer-private memtable that seals into
//     immutable raw segments (at memFlushDocs, or on Commit), and Compact
//     folds segment runs into compressed form in the background. One writer
//     at a time; any number of concurrent readers.
//
// ResultCount is memoized per view once frozen — the memo is sound because
// a view's visible index never changes; a new memo is installed exactly when
// the visibility horizon moves (Epoch tracks that for external caches).
type Engine struct {
	// Docs is the writer's document store. It is append-only; published
	// views expose the visible prefix. With live ingest running, read
	// through Doc/NumDocs (or a view) rather than this field.
	Docs []Doc

	vocab *Vocab
	dict  *corpus.Dictionary
	raw   []postingList // build-phase postings; nil once frozen

	// cur is the published snapshot readers query. nil until Freeze; after
	// that, swapped atomically and never mutated in place.
	cur atomic.Pointer[view]

	// mu serializes writers (Add/Commit/compaction install) in the live
	// phase. Never taken on the query path.
	mu   sync.Mutex
	segs []*segment // published segment stack (writer's master copy)
	// mem is the memtable's dense term-id-indexed scratch, reused across
	// seals: sealing copies out only the touched lists (memTouched) and
	// zeroes those entries, so per-commit cost is O(touched terms), never
	// O(vocabulary).
	mem        []postingList
	memTouched []uint32
	memBase    int32 // global doc id of the memtable's first doc
	memDocs    int
	epoch      uint64

	stopID []bool     // term id -> is a stopword; built by Freeze, grown by Add
	stats  IndexStats // size accounting captured by Freeze

	// Live counters (atomics: read by Stats concurrently with the writer).
	memDocsLive atomic.Int32
	ingested    atomic.Int64
	compactions atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// compactMu admits one compactor at a time so concurrent Compact calls
	// never merge overlapping runs. Writers and readers never take it.
	compactMu sync.Mutex
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{
		vocab: NewVocab(),
		dict:  corpus.NewDictionary(),
	}
}

// Add indexes a document and returns its ID. Before Freeze the doc is
// visible immediately; after Freeze it lands in the mutable memtable and
// becomes visible at the next seal (memFlushDocs) or Commit.
func (e *Engine) Add(text string, topic int) int {
	return e.addTokenized(text, textproc.Words(text), topic)
}

// addTokenized indexes a document whose tokens were computed by the caller
// (the parallel corpus builder tokenizes in its workers and merges here, in
// input order, on one goroutine).
func (e *Engine) addTokenized(text string, tokens []string, topic int) int {
	if e.cur.Load() != nil {
		return e.addLive(text, tokens, topic)
	}
	id := len(e.Docs)
	ids := make([]uint32, len(tokens))
	for pos, term := range tokens {
		tid := e.vocab.Intern(term)
		ids[pos] = tid
		if int(tid) >= len(e.raw) {
			e.raw = append(e.raw, postingList{})
		}
		e.raw[tid].add(int32(id), int32(pos))
	}
	e.Docs = append(e.Docs, Doc{ID: id, Text: text, Tokens: ids, Topic: topic})
	e.dict.AddDocument(tokens)
	return id
}

// addLive appends one document to the mutable memtable under the writer
// lock. The doc id is assigned immediately; visibility waits for the seal.
func (e *Engine) addLive(text string, tokens []string, topic int) int {
	e.mu.Lock()
	id := len(e.Docs)
	local := int32(id) - e.memBase
	ids := make([]uint32, len(tokens))
	for pos, term := range tokens {
		tid := e.vocab.Intern(term)
		ids[pos] = tid
		if int(tid) >= len(e.mem) {
			e.mem = append(e.mem, make([]postingList, e.vocab.Len()-len(e.mem))...)
		}
		pl := &e.mem[tid]
		if len(pl.docs) == 0 {
			e.memTouched = append(e.memTouched, tid)
		}
		pl.add(local, int32(pos))
	}
	for len(e.stopID) < e.vocab.Len() {
		e.stopID = append(e.stopID, textproc.IsStopword(e.vocab.Token(uint32(len(e.stopID)))))
	}
	e.Docs = append(e.Docs, Doc{ID: id, Text: text, Tokens: ids, Topic: topic})
	e.dict.AddDocument(tokens)
	e.memDocs++
	e.memDocsLive.Store(int32(e.memDocs))
	e.ingested.Add(1)
	if e.memDocs >= memFlushDocs {
		e.sealLocked()
		e.publishLocked()
	}
	e.mu.Unlock()
	return id
}

// sealLocked transfers the memtable's touched posting lists into an
// immutable sparse raw segment. Caller holds mu. The transferred lists are
// never appended to again — their dense scratch slots are zeroed so the next
// Add builds fresh lists — which is what lets views share them without
// synchronization. Cost is O(touched terms), independent of vocabulary size.
func (e *Engine) sealLocked() {
	if e.memDocs == 0 {
		return
	}
	slices.Sort(e.memTouched)
	terms := make([]uint32, len(e.memTouched))
	lists := make([]postingList, len(e.memTouched))
	for i, tid := range e.memTouched {
		terms[i] = tid
		lists[i] = e.mem[tid]
		e.mem[tid] = postingList{}
	}
	seg := newSparseRawSegment(e.memBase, int32(e.memDocs), terms, lists)
	e.segs = append(e.segs, seg)
	e.memBase += int32(e.memDocs)
	e.memTouched = e.memTouched[:0]
	e.memDocs = 0
	e.memDocsLive.Store(0)
}

// publishLocked swaps in a new view over the current segment stack. Caller
// holds mu. The epoch — and with it the ResultCount memo — rolls over
// exactly when the visibility horizon moves; a pure compaction republish
// keeps both, because compaction never changes any query answer.
func (e *Engine) publishLocked() {
	old := e.cur.Load()
	horizon := int(e.memBase)
	epoch := e.epoch
	var cache *countCache
	if old != nil {
		cache = old.cache
	}
	if old == nil || len(old.docs) != horizon {
		e.epoch++
		epoch = e.epoch
		cache = newCountCache(&e.cacheHits, &e.cacheMisses)
	}
	v := &view{
		segs:   append([]*segment(nil), e.segs...),
		docs:   e.Docs[:horizon:horizon],
		stopID: e.stopID[:len(e.stopID):len(e.stopID)],
		vocab:  e.vocab,
		epoch:  epoch,
		cache:  cache,
	}
	e.cur.Store(v)
}

// Commit seals any pending memtable docs and publishes them, returning the
// resulting epoch. On an unfrozen engine it is a no-op (the build phase is
// always visible).
func (e *Engine) Commit() uint64 {
	if e.cur.Load() == nil {
		return 0
	}
	e.mu.Lock()
	e.sealLocked()
	e.publishLocked()
	ep := e.epoch
	e.mu.Unlock()
	return ep
}

// Epoch returns the published visibility epoch: 0 until Freeze, then a
// counter that increments exactly when new documents become visible.
// External caches keyed by (query, epoch) are invalidated precisely when
// answers can change.
func (e *Engine) Epoch() uint64 {
	if v := e.cur.Load(); v != nil {
		return v.epoch
	}
	return 0
}

// Freeze compresses every posting list with the Golomb delta coder (or a doc
// bitmap for dense terms) into the base frozen segment and switches the
// engine to the live two-tier mode: queries run against published snapshots
// and ResultCount becomes memoized per visibility epoch. Freeze is
// idempotent.
func (e *Engine) Freeze() { e.FreezeWorkers(1) }

// FreezeWorkers is Freeze with the per-term compression fanned out across
// workers (internal/par semantics: 0 means NumCPU). freezeList is a pure
// function of one raw list, so the frozen segment is bit-identical at every
// worker count; the stats pass stays serial.
func (e *Engine) FreezeWorkers(workers int) {
	if e.cur.Load() != nil {
		return
	}
	raw := e.raw
	fr := make([]frozenList, len(raw))
	par.For(workers, len(raw), func(i int) {
		fr[i] = freezeList(&raw[i])
	})
	st := IndexStats{Frozen: true}
	for i := range raw {
		st.Postings += len(raw[i].docs)
		st.Positions += len(raw[i].positions)
		st.RawBytes += raw[i].rawBytes()
		st.FrozenBytes += fr[i].frozenBytes()
		if fr[i].docBits != nil {
			st.BitmapTerms++
		}
	}
	stop := make([]bool, e.vocab.Len())
	for id := range stop {
		stop[id] = textproc.IsStopword(e.vocab.Token(uint32(id)))
	}
	seg := newFrozenSegment(0, int32(len(e.Docs)), fr)
	e.mu.Lock()
	e.raw = nil // release the raw postings; the frozen segment answers everything
	e.stats = st
	e.stopID = stop
	e.segs = []*segment{seg}
	e.memBase = int32(len(e.Docs))
	e.publishLocked()
	e.mu.Unlock()
}

// Compact runs one size-tiered compaction round: if the newest segments form
// a mergeable run (compactRange), they are merged off-lock into one frozen
// segment and the result is spliced in. Returns whether a merge ran.
// Concurrent with readers (always) and with the writer (the merge itself
// runs without mu; only the splice takes it). One compactor at a time.
func (e *Engine) Compact(workers int) bool {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.mu.Lock()
	segs := append([]*segment(nil), e.segs...)
	e.mu.Unlock()
	lo, hi := compactRange(segs)
	if hi-lo < 2 {
		return false
	}
	run := segs[lo:hi]
	var merged *segment
	if width := run[len(run)-1].base + run[len(run)-1].nDocs - run[0].base; allRaw(run) && int(width) < majorMergeDocs {
		merged = mergeRawSegments(run, workers)
	} else {
		merged = mergeSegments(run, workers)
	}
	e.installMerged(segs, lo, hi, merged)
	return true
}

// CompactAll merges the whole published segment stack into one frozen
// segment — the full-merge used by the differential suite to compare the
// live engine's frozen image against a from-scratch build. Pending memtable
// docs are not included; Commit first to publish them. Returns whether a
// merge ran (false when the stack is already a single frozen segment).
func (e *Engine) CompactAll(workers int) bool {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	e.mu.Lock()
	segs := append([]*segment(nil), e.segs...)
	e.mu.Unlock()
	if len(segs) == 0 || (len(segs) == 1 && segs[0].frozen != nil) {
		return false
	}
	merged := mergeSegments(segs, workers)
	e.installMerged(segs, 0, len(segs), merged)
	return true
}

// installMerged splices merged over snapshot[lo:hi] in the live stack. The
// writer may have sealed new segments since the snapshot was taken, but
// seals only append — the spliced region is position-stable, and the
// pointer check turns any violation of that invariant into a loud failure
// instead of silent index corruption.
func (e *Engine) installMerged(snapshot []*segment, lo, hi int, merged *segment) {
	e.mu.Lock()
	if e.segs[lo] != snapshot[lo] || e.segs[hi-1] != snapshot[hi-1] {
		e.mu.Unlock()
		panic("searchsim: segment stack mutated under compaction")
	}
	ns := make([]*segment, 0, len(e.segs)-(hi-lo)+1)
	ns = append(ns, e.segs[:lo]...)
	ns = append(ns, merged)
	ns = append(ns, e.segs[hi:]...)
	e.segs = ns
	e.publishLocked()
	e.mu.Unlock()
	e.compactions.Add(1)
}

// Frozen reports whether Freeze has run (the engine is in live mode).
func (e *Engine) Frozen() bool { return e.cur.Load() != nil }

// queryView returns the snapshot a query evaluates against: the published
// view in live mode (one atomic load, no locks), or a transient view over
// the build-phase raw lists before Freeze.
func (e *Engine) queryView() *view {
	if v := e.cur.Load(); v != nil {
		return v
	}
	return &view{
		segs:   []*segment{newRawSegment(0, int32(len(e.Docs)), e.raw)},
		docs:   e.Docs,
		stopID: e.stopID,
		vocab:  e.vocab,
	}
}

// NumDocs returns the number of visible documents.
func (e *Engine) NumDocs() int {
	if v := e.cur.Load(); v != nil {
		return len(v.docs)
	}
	return len(e.Docs)
}

// Vocab returns the corpus term vocabulary (term string ↔ dense id). Safe
// for concurrent lookups while ingest runs.
func (e *Engine) Vocab() *Vocab { return e.vocab }

// Dictionary returns the term-document-frequency dictionary over the indexed
// corpus — the stand-in for "all the web documents that are indexed by
// Yahoo! Search" used by the concept-vector generator. The dictionary is the
// writer's master copy: with live ingest running it is not safe for
// concurrent use (quiesce the writer first); the query path itself never
// touches it.
func (e *Engine) Dictionary() *corpus.Dictionary { return e.dict }

// Doc returns the visible document with the given ID, or nil.
func (e *Engine) Doc(id int) *Doc {
	docs := e.Docs
	if v := e.cur.Load(); v != nil {
		docs = v.docs
	}
	if id < 0 || id >= len(docs) {
		return nil
	}
	return &docs[id]
}

// IndexStats reports index size and cache accounting (surfaced in /statz).
type IndexStats struct {
	Docs      int `json:"docs"`
	Terms     int `json:"terms"`
	Postings  int `json:"postings"`  // (term, doc) pairs
	Positions int `json:"positions"` // token occurrences

	// RawBytes is the int32 payload of the uncompressed posting lists;
	// FrozenBytes is the resident footprint of the Golomb streams plus skip
	// tables. Captured at Freeze time over the base segment (live segments
	// are excluded so the compression accounting stays comparable across
	// runs). BitmapTerms counts the dense terms whose frozen doc stream is a
	// bitmap rather than a Golomb gap list.
	RawBytes    int  `json:"raw_bytes"`
	FrozenBytes int  `json:"frozen_bytes"`
	BitmapTerms int  `json:"bitmap_terms"`
	Frozen      bool `json:"frozen"`

	// Live two-tier accounting: the published segment stack, pending
	// (not yet visible) memtable docs, the visibility epoch, and the
	// cumulative ingest/compaction counters.
	Segments    int    `json:"segments"`
	MemDocs     int    `json:"mem_docs"`
	Epoch       uint64 `json:"epoch"`
	Ingested    int64  `json:"ingested_docs"`
	Compactions int64  `json:"compactions"`

	CacheHits   int64 `json:"result_count_cache_hits"`
	CacheMisses int64 `json:"result_count_cache_misses"`
}

// Stats returns current index statistics. Size accounting is captured by
// Freeze; on an unfrozen engine it is computed on the fly. Safe to call
// concurrently with ingest and queries.
func (e *Engine) Stats() IndexStats {
	v := e.cur.Load()
	st := e.stats
	if v == nil {
		st = IndexStats{}
		for i := range e.raw {
			st.Postings += len(e.raw[i].docs)
			st.Positions += len(e.raw[i].positions)
			st.RawBytes += e.raw[i].rawBytes()
		}
		st.Docs = len(e.Docs)
	} else {
		st.Docs = len(v.docs)
		st.Segments = len(v.segs)
		st.Epoch = v.epoch
		st.MemDocs = int(e.memDocsLive.Load())
		st.Ingested = e.ingested.Load()
		st.Compactions = e.compactions.Load()
	}
	st.Terms = e.vocab.Len()
	st.CacheHits = e.cacheHits.Load()
	st.CacheMisses = e.cacheMisses.Load()
	return st
}

// internIDs maps query terms to vocabulary ids in sc.ids (absent terms map
// to noTermID; phrase evaluation treats them as empty posting lists).
func (e *Engine) internIDs(terms []string, sc *evalScratch) []uint32 {
	ids := sc.ids[:0]
	for _, t := range terms {
		ids = append(ids, e.vocab.ID(t))
	}
	sc.ids = ids
	return ids
}

// ResultCount returns the number of documents matching phrase as an exact
// phrase query — the paper's interestingness feature (4)
// searchengine_phrase ("very specific concepts would return fewer results
// than the more general concepts"). In live mode the count is memoized in
// the view's sharded cache: the batch feature extractor queries many
// repeated sub-phrases, and the memo is sound because a view never changes.
func (e *Engine) ResultCount(phrase string) int {
	v := e.queryView()
	if v.cache != nil {
		if n, ok := v.cache.get(phrase); ok {
			return n
		}
	}
	sc := getScratch()
	n := v.countPhraseDocs(e.internIDs(textproc.Words(phrase), sc), sc)
	putScratch(sc)
	if v.cache != nil {
		v.cache.put(phrase, n)
	}
	return n
}

// ResultCountAnyOrder returns the number of documents containing all the
// phrase's terms in any order (a "regular query"). The paper tried this
// variant and eliminated it during feature selection; it is kept for the
// ablation benches.
func (e *Engine) ResultCountAnyOrder(phrase string) int {
	terms := textproc.Words(phrase)
	if len(terms) == 0 {
		return 0
	}
	v := e.queryView()
	sc := getScratch()
	defer putScratch(sc)
	// Dedup while interning; one absent term empties the conjunction.
	ids := sc.ids[:0]
	for _, t := range terms {
		id := e.vocab.ID(t)
		if id == noTermID {
			return 0
		}
		dup := false
		for _, x := range ids {
			if x == id {
				dup = true
				break
			}
		}
		if !dup {
			ids = append(ids, id)
		}
	}
	sc.ids = ids
	if len(ids) == 1 {
		// Single distinct term: the answer is its document frequency — no
		// intersection machinery needed.
		return v.df(ids[0])
	}
	return v.intersectCount(ids, sc)
}

// Result is one ranked search result.
type Result struct {
	DocID int
	Score float64
}

// rankHits scores phrase hits with the tf·idf-flavoured formula (phrase
// occurrences weighted by the rarity of the phrase's terms, normalized by
// document length) and returns up to k results sorted by (score desc, doc
// asc). The idf sum runs over terms in query order so float accumulation is
// reproducible. The result slice is always freshly allocated.
//
//kw:fresh
func (v *view) rankHits(terms []string, hits []phraseHit, k int) []Result {
	if len(hits) == 0 {
		return nil
	}
	idf := 0.0
	for _, t := range terms {
		idf += v.idf(t)
	}
	results := make([]Result, 0, len(hits))
	for _, h := range hits {
		docLen := len(v.docs[h.doc].Tokens)
		if docLen == 0 {
			continue
		}
		score := float64(h.count) * idf / (1 + float64(docLen)/200)
		results = append(results, Result{DocID: h.doc, Score: score})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// Search runs a phrase query and returns up to k results ranked by the
// tf·idf-flavoured score.
func (e *Engine) Search(phrase string, k int) []Result {
	terms := textproc.Words(phrase)
	v := e.queryView()
	sc := getScratch()
	defer putScratch(sc)
	hits := v.phraseHits(e.internIDs(terms, sc), sc)
	return v.rankHits(terms, hits, k)
}

// SearchAnyTerm runs a bag-of-words (OR) query: documents containing any of
// the query terms, ranked by summed tf·idf with length normalization. This
// is the broad retrieval classic pseudo-relevance feedback runs on — and the
// source of the topic drift that makes feedback terms noisier than
// phrase-result snippets.
func (e *Engine) SearchAnyTerm(query string, k int) []Result {
	terms := textproc.Words(query)
	if len(terms) == 0 {
		return nil
	}
	v := e.queryView()
	sc := getScratch()
	defer putScratch(sc)
	scores := make(map[int]float64)
	seen := make(map[string]bool, len(terms))
	var c termCursor
	for _, t := range terms {
		if seen[t] || textproc.IsStopword(t) {
			continue
		}
		seen[t] = true
		idf := v.idf(t)
		if !c.init(v, e.vocab.ID(t)) {
			continue
		}
		// Sequential walk: only doc and frequency streams are decoded —
		// position data stays untouched on the OR path.
		for doc, ok := c.seekGEQ(0); ok; doc, ok = c.seekGEQ(doc + 1) {
			docLen := len(v.docs[doc].Tokens)
			if docLen == 0 {
				continue
			}
			scores[int(doc)] += float64(c.freq()) * idf / (1 + float64(docLen)/200)
		}
	}
	results := make([]Result, 0, len(scores))
	for doc, s := range scores {
		results = append(results, Result{DocID: doc, Score: s})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].DocID < results[j].DocID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// SnippetWidth is the number of tokens of context on each side of the first
// phrase occurrence included in a snippet.
const SnippetWidth = 20

// firstOccurrence returns the token position of the first occurrence of the
// phrase (as interned ids) in docID, or -1 when the doc does not contain the
// phrase. Cursor-based: never rescans document text.
//
//kw:hotpath
func (v *view) firstOccurrence(docID int32, ids []uint32, sc *evalScratch) int32 {
	k := len(ids)
	if k == 0 {
		return -1
	}
	if cap(sc.cursors) < k {
		sc.cursors = append(sc.cursors[:cap(sc.cursors)], make([]termCursor, k-cap(sc.cursors))...)
	}
	cs := sc.cursors[:k]
	for i, id := range ids {
		if !cs[i].init(v, id) {
			return -1
		}
		d, ok := cs[i].seekGEQ(docID)
		if !ok || d != docID {
			return -1
		}
	}
	p0s := cs[0].positions()
	if k == 1 {
		return p0s[0]
	}
	for i := range cs {
		cs[i].ppi = 0
	}
	for _, p := range p0s {
		matchAll := true
		for j := 1; j < k; j++ {
			if !cs[j].probePosition(p + int32(j)) {
				matchAll = false
				break
			}
		}
		if matchAll {
			return p
		}
	}
	return -1
}

// snippetAt renders the snippet window of doc around a phrase occurrence at
// token position `at` spanning termLen tokens.
func (v *view) snippetAt(docID, at, termLen int) string {
	d := &v.docs[docID]
	lo := at - SnippetWidth
	if lo < 0 {
		lo = 0
	}
	hi := at + termLen + SnippetWidth
	if hi > len(d.Tokens) {
		hi = len(d.Tokens)
	}
	var b strings.Builder
	for i := lo; i < hi; i++ {
		if i > lo {
			b.WriteByte(' ')
		}
		b.WriteString(v.vocab.Token(d.Tokens[i]))
	}
	return b.String()
}

// Snippet builds the result snippet for doc: a window of tokens around the
// first occurrence of the phrase ("short text strings ... constructed from
// the result pages by the engine").
//
// Absent-phrase contract: when the document does not contain the phrase —
// including an empty phrase, or phrase terms outside the corpus vocabulary —
// the snippet is the document's head window: tokens [0, len(terms) +
// SnippetWidth). A nonexistent doc id or an empty document yields "".
func (e *Engine) Snippet(docID int, phrase string) string {
	terms := textproc.Words(phrase)
	v := e.queryView()
	if docID < 0 || docID >= len(v.docs) || len(v.docs[docID].Tokens) == 0 {
		return ""
	}
	sc := getScratch()
	at := v.firstOccurrence(int32(docID), e.internIDs(terms, sc), sc)
	putScratch(sc)
	if at < 0 {
		at = 0 // head window (see contract above)
	}
	return v.snippetAt(docID, int(at), len(terms))
}

// visitHits evaluates phrase once against one view, ranks the top-k results,
// and calls fn for each result in rank order with its doc id and the
// position of the first phrase occurrence (recovered from the phrase hit —
// the document is never rescanned). Shared kernel of Snippets and
// VisitSnippetTokens; evaluating and rendering against the same view is what
// keeps a mid-swap query internally consistent.
func (v *view) visitHits(e *Engine, terms []string, k int, fn func(docID, at int)) {
	sc := getScratch()
	defer putScratch(sc)
	hits := v.phraseHits(e.internIDs(terms, sc), sc)
	results := v.rankHits(terms, hits, k)
	for _, r := range results {
		// hits are in ascending doc order; recover this result's hit to
		// reuse its first-occurrence position.
		i := sort.Search(len(hits), func(i int) bool { return hits[i].doc >= r.DocID })
		fn(r.DocID, int(hits[i].first))
	}
}

// Snippets returns the snippets of the top-k results for phrase. The paper
// uses the snippets of the first hundred results as the best resource for
// relevant-keyword mining.
func (e *Engine) Snippets(phrase string, k int) []string {
	terms := textproc.Words(phrase)
	v := e.queryView()
	out := make([]string, 0, k)
	v.visitHits(e, terms, k, func(docID, at int) {
		out = append(out, v.snippetAt(docID, at, len(terms)))
	})
	return out
}

// VisitSnippetTokens is the string-free twin of Snippets for the interned
// relevance miner: visit is called once per top-k result in rank order with
// the document's interned token slice and the snippet window bounds [lo, hi)
// — the same window snippetAt renders. The token slice aliases engine-owned
// storage and must not be modified or retained.
func (e *Engine) VisitSnippetTokens(phrase string, k int, visit func(tokens []uint32, lo, hi int)) {
	terms := textproc.Words(phrase)
	v := e.queryView()
	v.visitHits(e, terms, k, func(docID, at int) {
		d := &v.docs[docID]
		lo := at - SnippetWidth
		if lo < 0 {
			lo = 0
		}
		hi := at + len(terms) + SnippetWidth
		if hi > len(d.Tokens) {
			hi = len(d.Tokens)
		}
		visit(d.Tokens, lo, hi)
	})
}
