package framework

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"contextrank/internal/corpus"
	"contextrank/internal/features"
	"contextrank/internal/relevance"
)

// Property: for any randomly generated keyword store, the packed
// representation round-trips every term exactly, quantized scores never
// exceed the original, and the compressed pack decodes to identical
// entries.
func TestKeywordPacksRoundtripProperty(t *testing.T) {
	f := func(seed int64, nConcepts, nTerms uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := int(nConcepts)%8 + 1
		vecs := make(map[string]corpus.Vector, nc)
		for c := 0; c < nc; c++ {
			nt := int(nTerms)%30 + 1
			seen := map[string]bool{}
			v := make(corpus.Vector, 0, nt)
			for len(v) < nt {
				term := fmt.Sprintf("t%d", rng.Intn(200))
				if seen[term] {
					continue
				}
				seen[term] = true
				v = append(v, corpus.Entry{Term: term, Weight: rng.Float64() * 100})
			}
			corpus.SortVector(v)
			vecs[fmt.Sprintf("concept%d", c)] = v
		}
		kp := BuildKeywordPacks(relevance.NewStore(relevance.Snippets, vecs))
		for name, orig := range vecs {
			got := kp.Keywords(name)
			if len(got) != len(orig) {
				return false
			}
			gm := got.Map()
			for _, e := range orig {
				q, ok := gm[e.Term]
				if !ok {
					return false
				}
				// Quantization error bounded by one score step.
				if q > e.Weight+1e-9 {
					return false
				}
			}
			// Compressed form decodes byte-identically.
			cp := kp.Compress(name)
			entries, err := cp.Decompress()
			if err != nil {
				return false
			}
			raw := kp.packs[name]
			if len(entries) != len(raw) {
				return false
			}
			for i := range raw {
				if entries[i] != raw[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantized interestingness fields never exceed their originals
// by more than one quantization step, and lookups are total over the built
// inventory.
func TestInterestTableQuantizationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nc := int(n)%20 + 1
		names := make([]string, nc)
		fields := make(map[string][9]float64, nc)
		for i := range names {
			names[i] = fmt.Sprintf("c%d", i)
			var raw [9]float64
			for d := range raw {
				raw[d] = rng.Float64() * 1000
			}
			fields[names[i]] = raw
		}
		table := BuildInterestTable(names, func(name string) features.Fields {
			raw := fields[name]
			return features.Fields{
				FreqExact: raw[0], FreqPhraseContained: raw[1], UnitScore: raw[2],
				SearchEnginePhrase: raw[3], ConceptSize: raw[4], NumberOfChars: raw[5],
				Subconcepts: raw[6], WikiWordCount: raw[8],
			}
		})
		for _, name := range names {
			got, ok := table.Fields(name)
			if !ok {
				return false
			}
			raw := fields[name]
			maxima := table.calib.Max
			checks := []struct{ got, want, max float64 }{
				{got.FreqExact, raw[0], maxima[0]},
				{got.SearchEnginePhrase, raw[3], maxima[3]},
				{got.WikiWordCount, raw[8], maxima[8]},
			}
			for _, c := range checks {
				step := c.max / 65535
				if diff := c.got - c.want; diff > step+1e-9 || diff < -step-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
