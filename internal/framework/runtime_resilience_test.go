package framework

import (
	"context"
	"reflect"
	"testing"

	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/querylog"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/units"

	"contextrank/internal/corpus"
)

// resilienceRuntime builds a runtime whose unit detector knows two
// concepts with very different dictionary priors, so both the full and
// the degraded ranking have a determinate winner.
func resilienceRuntime(t *testing.T) *Runtime {
	t.Helper()
	store := relevance.NewStore(relevance.Snippets, map[string]corpus.Vector{
		"alphaword": {{Term: "ctx", Weight: 5}},
		"betaword":  {{Term: "ctx", Weight: 4}},
	})
	packs := BuildKeywordPacks(store)
	hot := features.Fields{FreqExact: 9, FreqPhraseContained: 10, NumberOfChars: 9, ConceptSize: 1}
	cold := features.Fields{FreqExact: 1, FreqPhraseContained: 1, NumberOfChars: 8, ConceptSize: 1}
	table := BuildInterestTable([]string{"alphaword", "betaword"}, func(n string) features.Fields {
		if n == "alphaword" {
			return hot
		}
		return cold
	})
	var instances []ranksvm.Instance
	for g := 0; g < 6; g++ {
		instances = append(instances,
			ranksvm.Instance{Features: append(hot.Expand(features.AllGroups()), 1), Label: 0.1, Group: g},
			ranksvm.Instance{Features: append(cold.Expand(features.AllGroups()), 0), Label: 0.01, Group: g},
		)
	}
	model, err := ranksvm.Train(instances, ranksvm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	log := querylog.FromCounts(map[string]int{"alphaword": 5000, "betaword": 4000, "ctx": 100})
	us := units.Extract(log, units.Config{})
	return NewRuntime(detect.New(nil, us), table, packs, model)
}

const resilienceDoc = "the alphaword met the betaword near ctx; email a@b.com"

// TestAnnotateCtxBackgroundEqualsAnnotate: the context-aware entry point
// is the same pipeline; an uncancellable context must change nothing.
func TestAnnotateCtxBackgroundEqualsAnnotate(t *testing.T) {
	rt := resilienceRuntime(t)
	want := rt.Annotate(resilienceDoc, 0)
	got, err := rt.AnnotateCtx(context.Background(), resilienceDoc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AnnotateCtx diverged from Annotate:\n%+v\nvs\n%+v", got, want)
	}
}

func TestAnnotateCtxCanceledBeforeStart(t *testing.T) {
	rt := resilienceRuntime(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := rt.BytesProcessed()
	anns, err := rt.AnnotateCtx(ctx, resilienceDoc, 0)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if anns != nil {
		t.Fatalf("canceled annotate returned annotations: %+v", anns)
	}
	if rt.BytesProcessed() != before {
		t.Fatal("abandoned request was recorded in the throughput accumulators")
	}
}

func TestAnnotateDegradedRanksByDictionaryPrior(t *testing.T) {
	rt := resilienceRuntime(t)
	anns := rt.AnnotateDegraded(resilienceDoc, 0)
	if len(anns) == 0 {
		t.Fatal("no degraded annotations")
	}
	// Patterns first, as in the full pipeline.
	if anns[0].Detection.Kind != detect.KindPattern {
		t.Fatalf("pattern entity not first: %+v", anns[0])
	}
	var concepts []string
	for _, a := range anns {
		if a.Detection.Kind != detect.KindPattern {
			concepts = append(concepts, a.Detection.Norm)
			if a.Relevance != 0 {
				t.Fatalf("degraded path computed relevance: %+v", a)
			}
		}
	}
	if len(concepts) < 2 || concepts[0] != "alphaword" {
		t.Fatalf("dictionary prior should rank alphaword first: %v", concepts)
	}
	// Top-1 keeps only the highest-prior concept (plus patterns).
	for _, a := range rt.AnnotateDegraded(resilienceDoc, 1) {
		if a.Detection.Kind != detect.KindPattern && a.Detection.Norm != "alphaword" {
			t.Fatalf("top-1 degraded kept %q", a.Detection.Norm)
		}
	}
}

// TestAnnotateDegradedDeterministic: the degraded comparator has no float
// relevance to tie-break on, so byte-identical reruns are the contract.
func TestAnnotateDegradedDeterministic(t *testing.T) {
	rt := resilienceRuntime(t)
	a := rt.AnnotateDegraded(resilienceDoc, 0)
	for i := 0; i < 5; i++ {
		if b := rt.AnnotateDegraded(resilienceDoc, 0); !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d diverged", i)
		}
	}
}
