package framework

import (
	"fmt"
	"sort"

	"contextrank/internal/golomb"
)

// This file implements the first memory optimization §VI sketches for the
// relevant-keyword store: "exploiting the fact that many TIDs are shared by
// related concepts". Concepts are clustered greedily by keyword (TID)
// overlap; each cluster factors the TIDs that several members share into a
// sorted pool stored once, and every member pack then references pool
// members by their *pool index* (≈10 bits Golomb-coded) instead of a 22-bit
// TID, keeping only its unique TIDs at full width. Scores stay at 10 bits.

// SharedPacks is the pooled, compressed keyword store.
type SharedPacks struct {
	TIDs  *TIDTable
	pools [][]uint32 // per-cluster sorted shared TIDs
	packs map[string]sharedPack

	maxScore float64
}

type sharedPack struct {
	cluster int

	// Pool references: Golomb-coded sorted pool indexes + 10-bit scores.
	nPool     int
	poolM     uint32
	poolIdx   []byte
	poolScore []byte

	// Residual entries: Golomb-coded sorted TIDs + 10-bit scores.
	nOwn     int
	ownM     uint32
	ownTID   []byte
	ownScore []byte
}

// MinShare is how many member packs must contain a TID for it to enter the
// cluster pool.
const MinShare = 2

// BuildSharedPacks converts a raw KeywordPacks store into the pooled form.
// clusterSize bounds the greedy clusters (default 32 concepts).
func BuildSharedPacks(kp *KeywordPacks, clusterSize int) *SharedPacks {
	if clusterSize <= 1 {
		clusterSize = 32
	}
	names := make([]string, 0, len(kp.packs))
	for n := range kp.packs {
		names = append(names, n)
	}
	sort.Strings(names)

	// Greedy clustering by TID overlap: seed with the first unassigned
	// concept, then add the concepts sharing the most TIDs with the seed.
	tidsOf := make(map[string]map[uint32]bool, len(names))
	for _, n := range names {
		set := make(map[uint32]bool, len(kp.packs[n]))
		for _, e := range kp.packs[n] {
			set[e>>ScoreBits] = true
		}
		tidsOf[n] = set
	}
	assigned := make(map[string]int, len(names))
	var clusters [][]string
	for _, seed := range names {
		if _, ok := assigned[seed]; ok {
			continue
		}
		cid := len(clusters)
		members := []string{seed}
		assigned[seed] = cid
		type cand struct {
			name    string
			overlap int
		}
		var cands []cand
		for _, other := range names {
			if _, ok := assigned[other]; ok {
				continue
			}
			ov := overlap(tidsOf[seed], tidsOf[other])
			if ov > 0 {
				cands = append(cands, cand{other, ov})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].overlap != cands[j].overlap {
				return cands[i].overlap > cands[j].overlap
			}
			return cands[i].name < cands[j].name
		})
		for _, c := range cands {
			if len(members) >= clusterSize {
				break
			}
			assigned[c.name] = cid
			members = append(members, c.name)
		}
		clusters = append(clusters, members)
	}

	sp := &SharedPacks{
		TIDs:     kp.TIDs,
		packs:    make(map[string]sharedPack, len(names)),
		maxScore: kp.maxScore,
	}

	for cid, members := range clusters {
		// Pool: TIDs present in ≥ MinShare member packs.
		count := make(map[uint32]int)
		for _, m := range members {
			for tid := range tidsOf[m] {
				count[tid]++
			}
		}
		var pool []uint32
		for tid, c := range count {
			if c >= MinShare {
				pool = append(pool, tid)
			}
		}
		sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
		poolIndex := make(map[uint32]int, len(pool))
		for i, tid := range pool {
			poolIndex[tid] = i
		}
		sp.pools = append(sp.pools, pool)

		for _, m := range members {
			sp.packs[m] = encodeShared(kp.packs[m], cid, poolIndex)
		}
	}
	return sp
}

func overlap(a, b map[uint32]bool) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for tid := range a {
		if b[tid] {
			n++
		}
	}
	return n
}

// encodeShared splits a pack into pool references and residuals and
// Golomb-codes both parts.
func encodeShared(pack []uint32, cluster int, poolIndex map[uint32]int) sharedPack {
	var poolRefs []uint32 // pool indexes
	var poolScores, ownScores golomb.BitWriter
	var ownTIDs []uint32
	// pack is sorted by TID; pool indexes follow TID order, so both ref
	// sequences stay sorted.
	for _, e := range pack {
		tid, q := unpackEntry(e)
		if pi, ok := poolIndex[tid]; ok {
			poolRefs = append(poolRefs, uint32(pi))
			poolScores.WriteBits(uint64(q), ScoreBits)
		} else {
			ownTIDs = append(ownTIDs, tid)
			ownScores.WriteBits(uint64(q), ScoreBits)
		}
	}
	sort.Slice(poolRefs, func(i, j int) bool { return poolRefs[i] < poolRefs[j] })
	// Note: sorting refs separates them from their scores only if pool
	// indexes were out of order — they are not, because poolIndex is
	// assigned over a TID-sorted pool, so index order == TID order.
	poolData, poolM := golomb.EncodeSorted(poolRefs)
	ownData, ownM := golomb.EncodeSorted(ownTIDs)
	return sharedPack{
		cluster: cluster,
		nPool:   len(poolRefs), poolM: poolM, poolIdx: poolData, poolScore: poolScores.Bytes(),
		nOwn: len(ownTIDs), ownM: ownM, ownTID: ownData, ownScore: ownScores.Bytes(),
	}
}

// Len returns the number of stored concepts.
func (sp *SharedPacks) Len() int { return len(sp.packs) }

// BytesFor returns the encoded size of one concept's pack (excluding its
// share of the pools).
func (sp *SharedPacks) BytesFor(concept string) int {
	p, ok := sp.packs[concept]
	if !ok {
		return 0
	}
	return len(p.poolIdx) + len(p.poolScore) + len(p.ownTID) + len(p.ownScore)
}

// TotalBytes returns the aggregate store size: all packs plus the pools
// (4 bytes per pool TID).
func (sp *SharedPacks) TotalBytes() int {
	n := 0
	for concept := range sp.packs {
		n += sp.BytesFor(concept)
	}
	for _, pool := range sp.pools {
		n += 4 * len(pool)
	}
	return n
}

// Entries decodes a concept's packed (TID, score) entries, sorted by TID —
// the inverse of the encoding, byte-for-byte equal to the raw
// KeywordPacks representation.
func (sp *SharedPacks) Entries(concept string) ([]uint32, error) {
	p, ok := sp.packs[concept]
	if !ok {
		return nil, nil
	}
	pool := sp.pools[p.cluster]

	refs, err := golomb.DecodeSorted(p.poolIdx, p.nPool, p.poolM)
	if err != nil {
		return nil, fmt.Errorf("framework: shared pack pool refs: %w", err)
	}
	poolScores := golomb.NewBitReader(p.poolScore)
	out := make([]uint32, 0, p.nPool+p.nOwn)
	for _, ref := range refs {
		q, err := poolScores.ReadBits(ScoreBits)
		if err != nil {
			return nil, fmt.Errorf("framework: shared pack pool scores: %w", err)
		}
		if int(ref) >= len(pool) {
			return nil, fmt.Errorf("framework: shared pack ref %d out of pool (len %d)", ref, len(pool))
		}
		out = append(out, packEntry(pool[ref], uint32(q)))
	}

	own, err := golomb.DecodeSorted(p.ownTID, p.nOwn, p.ownM)
	if err != nil {
		return nil, fmt.Errorf("framework: shared pack own tids: %w", err)
	}
	ownScores := golomb.NewBitReader(p.ownScore)
	for _, tid := range own {
		q, err := ownScores.ReadBits(ScoreBits)
		if err != nil {
			return nil, fmt.Errorf("framework: shared pack own scores: %w", err)
		}
		out = append(out, packEntry(tid, uint32(q)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i]>>ScoreBits < out[j]>>ScoreBits })
	return out, nil
}

// Score computes the relevance of concept against a document TID set,
// decoding on the fly (the memory/CPU trade §VI alludes to).
func (sp *SharedPacks) Score(concept string, docTIDs map[uint32]bool) (float64, error) {
	entries, err := sp.Entries(concept)
	if err != nil {
		return 0, err
	}
	score := 0.0
	for _, e := range entries {
		tid, q := unpackEntry(e)
		if docTIDs[tid] {
			score += float64(q) / MaxQScore * sp.maxScore
		}
	}
	return score, nil
}
