package framework

import (
	"reflect"
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/relevance"
)

// sharedFixture builds packs where concepts in the same "topic" share most
// keywords (the situation §VI's optimization exploits).
func sharedFixture() *KeywordPacks {
	shared := corpus.Vector{}
	for i := 0; i < 60; i++ {
		shared = append(shared, corpus.Entry{
			Term:   "shared" + string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Weight: float64(60 - i),
		})
	}
	packs := map[string]corpus.Vector{}
	for c := 0; c < 10; c++ {
		v := make(corpus.Vector, 0, 80)
		v = append(v, shared...) // common across the cluster
		for j := 0; j < 20; j++ {
			v = append(v, corpus.Entry{
				Term:   "own" + string(rune('a'+c)) + string(rune('a'+j)),
				Weight: float64(20 - j),
			})
		}
		packs["m-concept"+string(rune('a'+c))] = v
	}
	packs["m-loner"] = corpus.Vector{{Term: "isolated", Weight: 3}}
	// Unrelated concepts whose keywords scatter the TID space, as a real
	// million-concept inventory does: interleaved names intern between the
	// cluster's terms, so the cluster packs' TIDs have large gaps and plain
	// per-pack delta coding pays full width for them.
	for n := 0; n < 200; n++ {
		name := string(rune('a'+n%26)) + "-noise" + string(rune('a'+n/26))
		v := make(corpus.Vector, 0, 30)
		for j := 0; j < 30; j++ {
			v = append(v, corpus.Entry{
				Term:   "nz" + string(rune('a'+n%26)) + string(rune('a'+n/26%26)) + string(rune('a'+j)),
				Weight: float64(30 - j),
			})
		}
		packs[name] = v
	}
	return BuildKeywordPacks(relevance.NewStore(relevance.Snippets, packs))
}

func TestSharedPacksRoundtrip(t *testing.T) {
	kp := sharedFixture()
	sp := BuildSharedPacks(kp, 16)
	if sp.Len() != kp.Len() {
		t.Fatalf("Len %d != %d", sp.Len(), kp.Len())
	}
	for concept, raw := range kp.packs {
		got, err := sp.Entries(concept)
		if err != nil {
			t.Fatalf("%s: %v", concept, err)
		}
		if !reflect.DeepEqual(got, raw) && !(len(got) == 0 && len(raw) == 0) {
			t.Fatalf("%s: roundtrip mismatch:\n got %v\nwant %v", concept, got, raw)
		}
	}
}

func TestSharedPacksCompress(t *testing.T) {
	kp := sharedFixture()
	sp := BuildSharedPacks(kp, 16)
	if sp.TotalBytes() >= kp.TotalBytes() {
		t.Fatalf("shared store (%d B) not smaller than raw (%d B)", sp.TotalBytes(), kp.TotalBytes())
	}
	// For the clustered concepts specifically (where TIDs are shared and
	// scattered), the pooled encoding must beat plain per-pack Golomb.
	plainCluster, sharedCluster := 0, 0
	for c := 0; c < 10; c++ {
		concept := "m-concept" + string(rune('a'+c))
		plainCluster += kp.Compress(concept).Bytes()
		sharedCluster += sp.BytesFor(concept)
	}
	t.Logf("cluster members: raw=%d B plain golomb=%d B pooled=%d B (pool overhead amortized separately)",
		10*kp.BytesFor("m-concepta"), plainCluster, sharedCluster)
	if sharedCluster >= plainCluster {
		t.Fatalf("pooled packs (%d B) not smaller than plain golomb (%d B)", sharedCluster, plainCluster)
	}
}

func TestSharedPacksScoreMatchesRaw(t *testing.T) {
	kp := sharedFixture()
	sp := BuildSharedPacks(kp, 16)
	doc := kp.DocTIDs(map[string]bool{
		"sharedaa": true, "sharedba": true, "ownaa": true, "ownab": true,
	})
	for _, concept := range []string{"m-concepta", "m-conceptb", "m-loner"} {
		want := kp.Score(concept, doc)
		got, err := sp.Score(concept, doc)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: shared score %v != raw %v", concept, got, want)
		}
	}
}

func TestSharedPacksUnknownConcept(t *testing.T) {
	sp := BuildSharedPacks(sharedFixture(), 16)
	entries, err := sp.Entries("missing")
	if err != nil || entries != nil {
		t.Fatalf("unknown concept: %v, %v", entries, err)
	}
	if got := sp.BytesFor("missing"); got != 0 {
		t.Fatalf("unknown BytesFor = %d", got)
	}
	score, err := sp.Score("missing", map[uint32]bool{1: true})
	if err != nil || score != 0 {
		t.Fatalf("unknown Score = %v, %v", score, err)
	}
}
