// Package framework implements the paper's production runtime (§VI): the
// offline-mined artifacts packed into memory-efficient tables — 2-byte
// quantized interestingness fields (18 B per concept), a Global TID Table
// mapping terms to 22-bit ids, relevant-keyword packs of 32-bit (TID,score)
// entries (400 B per concept at m=100), an optional Golomb-compressed pack
// variant — plus the online Stemmer+Ranker pipeline whose throughput the
// paper reports (7.9 MB/s and 2.4 MB/s on their 2007 hardware).
package framework

import (
	"fmt"
	"math"
	"sort"

	"contextrank/internal/corpus"
	"contextrank/internal/features"
	"contextrank/internal/golomb"
	"contextrank/internal/relevance"
	"contextrank/internal/world"
)

// NumFields is the number of interestingness fields (Table I).
const NumFields = 9

// BytesPerConcept is the quantized interestingness footprint: "we first
// compute the values for these features in the offline process, and employ
// a normalization that would fit each field to two bytes ... the
// interestingness vectors for 1 million concepts would cost 18MB".
const BytesPerConcept = NumFields * 2

// Calibration holds the per-field maxima used for 16-bit fixed-point
// quantization ("this causes a minor decrease in granularity").
type Calibration struct {
	Max [NumFields]float64
}

// fieldsToRaw flattens Fields in Table I order.
func fieldsToRaw(f features.Fields) [NumFields]float64 {
	return [NumFields]float64{
		f.FreqExact, f.FreqPhraseContained, f.UnitScore, f.SearchEnginePhrase,
		f.ConceptSize, f.NumberOfChars, f.Subconcepts,
		float64(f.HighLevelType), f.WikiWordCount,
	}
}

func rawToFields(raw [NumFields]float64) features.Fields {
	return features.Fields{
		FreqExact:           raw[0],
		FreqPhraseContained: raw[1],
		UnitScore:           raw[2],
		SearchEnginePhrase:  raw[3],
		ConceptSize:         raw[4],
		NumberOfChars:       raw[5],
		Subconcepts:         raw[6],
		HighLevelType:       world.EntityType(int(raw[7] + 0.5)),
		WikiWordCount:       raw[8],
	}
}

// Calibrate computes field maxima over a concept inventory.
func Calibrate(all []features.Fields) Calibration {
	var c Calibration
	for _, f := range all {
		raw := fieldsToRaw(f)
		for i, v := range raw {
			if v > c.Max[i] {
				c.Max[i] = v
			}
		}
	}
	for i := range c.Max {
		if c.Max[i] <= 0 {
			c.Max[i] = 1
		}
	}
	return c
}

// quantize maps v in [0,max] to a uint16.
func quantize(v, max float64) uint16 {
	if v <= 0 {
		return 0
	}
	if v >= max {
		return math.MaxUint16
	}
	return uint16(v / max * math.MaxUint16)
}

func dequantize(q uint16, max float64) float64 {
	return float64(q) / math.MaxUint16 * max
}

// InterestTable is the packed interestingness store: a hash index plus a
// flat []uint16 blob at exactly BytesPerConcept per entry, so "the vectors
// for the detected concepts can be retrieved in constant time".
type InterestTable struct {
	calib Calibration
	index map[string]int
	data  []uint16
}

// BuildInterestTable quantizes the fields of every named concept.
func BuildInterestTable(names []string, fieldsOf func(string) features.Fields) *InterestTable {
	all := make([]features.Fields, len(names))
	for i, n := range names {
		all[i] = fieldsOf(n)
	}
	t := &InterestTable{
		calib: Calibrate(all),
		index: make(map[string]int, len(names)),
		data:  make([]uint16, 0, len(names)*NumFields),
	}
	for i, n := range names {
		t.index[n] = len(t.data)
		raw := fieldsToRaw(all[i])
		for fi, v := range raw {
			if fi == 7 {
				// HighLevelType is categorical: stored verbatim.
				t.data = append(t.data, uint16(v))
				continue
			}
			t.data = append(t.data, quantize(v, t.calib.Max[fi]))
		}
	}
	return t
}

// Len returns the number of stored concepts.
func (t *InterestTable) Len() int { return len(t.index) }

// MemoryBytes returns the blob size (the paper's 18 MB for 1M concepts).
func (t *InterestTable) MemoryBytes() int { return len(t.data) * 2 }

// Fields reconstructs the (dequantized) field record for a concept.
func (t *InterestTable) Fields(name string) (features.Fields, bool) {
	off, ok := t.index[name]
	if !ok {
		return features.Fields{}, false
	}
	var raw [NumFields]float64
	for fi := 0; fi < NumFields; fi++ {
		q := t.data[off+fi]
		if fi == 7 {
			raw[fi] = float64(q)
			continue
		}
		raw[fi] = dequantize(q, t.calib.Max[fi])
	}
	return rawToFields(raw), true
}

// TID packing constants: "the largest TID value we need to support in the
// system ... can easily fit into 22 bits. We normalize the scores of the
// relevant terms to be in the range of 0 and 1023, so that they can fit in
// 10 bits. So for each concept, we need 400 bytes to store its top 100
// (TID, score) pairs, since each pair can be stored in 32 bits, combined."
const (
	TIDBits   = 22
	ScoreBits = 10
	MaxTID    = 1<<TIDBits - 1
	MaxQScore = 1<<ScoreBits - 1
)

// TIDTable is the Global TID Table: a perfect-hash-style map from each term
// used by at least one concept's keywords to a dense id.
type TIDTable struct {
	ids   map[string]uint32
	terms []string
}

// NewTIDTable returns an empty table.
func NewTIDTable() *TIDTable {
	return &TIDTable{ids: make(map[string]uint32)}
}

// Intern returns the TID for term, assigning the next id if new. It panics
// if the 22-bit space overflows (1M concepts × shared keywords stay far
// below it, as the paper observes).
func (t *TIDTable) Intern(term string) uint32 {
	if id, ok := t.ids[term]; ok {
		return id
	}
	id := uint32(len(t.terms))
	if id > MaxTID {
		panic("framework: TID space exhausted")
	}
	t.ids[term] = id
	t.terms = append(t.terms, term)
	return id
}

// ID returns the TID for term if present.
func (t *TIDTable) ID(term string) (uint32, bool) {
	id, ok := t.ids[term]
	return id, ok
}

// Term returns the term for a TID.
func (t *TIDTable) Term(id uint32) string { return t.terms[id] }

// Len returns the number of interned terms.
func (t *TIDTable) Len() int { return len(t.terms) }

// KeywordPacks stores each concept's relevant keywords as packed 32-bit
// (TID, score) entries sorted by TID.
type KeywordPacks struct {
	TIDs     *TIDTable
	packs    map[string][]uint32
	maxScore float64 // dequantization scale
}

// packEntry packs a TID and a quantized score into 32 bits.
func packEntry(tid uint32, qscore uint32) uint32 {
	return tid<<ScoreBits | qscore&MaxQScore
}

func unpackEntry(e uint32) (tid, qscore uint32) {
	return e >> ScoreBits, e & MaxQScore
}

// BuildKeywordPacks packs a mined relevance store. Scores are normalized to
// 0..1023 against the global maximum keyword score.
func BuildKeywordPacks(store *relevance.Store) *KeywordPacks {
	names := store.Concepts()
	maxScore := 0.0
	for _, n := range names {
		for _, e := range store.RelevantTerms(n) {
			if e.Weight > maxScore {
				maxScore = e.Weight
			}
		}
	}
	if maxScore <= 0 {
		maxScore = 1
	}
	kp := &KeywordPacks{TIDs: NewTIDTable(), packs: make(map[string][]uint32, len(names)), maxScore: maxScore}
	for _, n := range names {
		terms := store.RelevantTerms(n)
		entries := make([]uint32, 0, len(terms))
		for _, e := range terms {
			tid := kp.TIDs.Intern(e.Term)
			q := uint32(e.Weight / maxScore * MaxQScore)
			if q > MaxQScore {
				q = MaxQScore
			}
			entries = append(entries, packEntry(tid, q))
		}
		// Sort by TID so the pack is Golomb-compressible and mergeable.
		sort.Slice(entries, func(i, j int) bool { return entries[i]>>ScoreBits < entries[j]>>ScoreBits })
		kp.packs[n] = entries
	}
	return kp
}

// Len returns the number of packed concepts.
func (k *KeywordPacks) Len() int { return len(k.packs) }

// BytesFor returns the packed size of one concept's keywords (≤ 400 bytes
// at the paper's m=100).
func (k *KeywordPacks) BytesFor(concept string) int { return 4 * len(k.packs[concept]) }

// TotalBytes returns the aggregate pack size across concepts.
func (k *KeywordPacks) TotalBytes() int {
	n := 0
	for _, p := range k.packs {
		n += 4 * len(p)
	}
	return n
}

// Keywords reconstructs the dequantized keyword vector of a concept.
func (k *KeywordPacks) Keywords(concept string) corpus.Vector {
	pack := k.packs[concept]
	out := make(corpus.Vector, 0, len(pack))
	for _, e := range pack {
		tid, q := unpackEntry(e)
		out = append(out, corpus.Entry{
			Term:   k.TIDs.Term(tid),
			Weight: float64(q) / MaxQScore * k.maxScore,
		})
	}
	corpus.SortVector(out)
	return out
}

// Score computes the relevance of concept against a document's TID set —
// the online counterpart of relevance.Store.Score, "achieved quite
// efficiently" because both sides are integer ids.
func (k *KeywordPacks) Score(concept string, docTIDs map[uint32]bool) float64 {
	score := 0.0
	for _, e := range k.packs[concept] {
		tid, q := unpackEntry(e)
		if docTIDs[tid] {
			score += float64(q) / MaxQScore * k.maxScore
		}
	}
	return score
}

// DocTIDs maps a document's stemmed content terms to the TID set used by
// Score. Terms outside the Global TID Table are ignored (they cannot match
// any concept's keywords).
func (k *KeywordPacks) DocTIDs(stems map[string]bool) map[uint32]bool {
	out := make(map[uint32]bool, len(stems))
	for s := range stems {
		if id, ok := k.TIDs.ID(s); ok {
			out[id] = true
		}
	}
	return out
}

// CompressedPack is the Golomb-coded form of one concept's keywords: TIDs
// delta-Golomb coded, scores stored raw at 10 bits each.
type CompressedPack struct {
	N        int
	M        uint32
	TIDData  []byte
	ScoreBit []byte
}

// Compress Golomb-codes a pack.
func (k *KeywordPacks) Compress(concept string) CompressedPack {
	pack := k.packs[concept]
	tids := make([]uint32, len(pack))
	var scores golomb.BitWriter
	for i, e := range pack {
		tid, q := unpackEntry(e)
		tids[i] = tid
		scores.WriteBits(uint64(q), ScoreBits)
	}
	data, m := golomb.EncodeSorted(tids)
	return CompressedPack{N: len(pack), M: m, TIDData: data, ScoreBit: scores.Bytes()}
}

// Bytes returns the compressed size.
func (p CompressedPack) Bytes() int { return len(p.TIDData) + len(p.ScoreBit) }

// Decompress reverses Compress.
func (p CompressedPack) Decompress() ([]uint32, error) {
	tids, err := golomb.DecodeSorted(p.TIDData, p.N, p.M)
	if err != nil {
		return nil, fmt.Errorf("framework: decompress pack: %w", err)
	}
	r := golomb.NewBitReader(p.ScoreBit)
	out := make([]uint32, p.N)
	for i := 0; i < p.N; i++ {
		q, err := r.ReadBits(ScoreBits)
		if err != nil {
			return nil, fmt.Errorf("framework: decompress scores: %w", err)
		}
		out[i] = packEntry(tids[i], uint32(q))
	}
	return out, nil
}
