package framework

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/ranksvm"
	"contextrank/internal/stem"
	"contextrank/internal/textproc"
)

// Annotation is one ranked shortcut emitted by the runtime.
type Annotation struct {
	// Detection is the underlying entity occurrence.
	Detection detect.Detection
	// Score is the model's ranking score.
	Score float64
	// Relevance is the packed-keyword relevance score in this document.
	Relevance float64
}

// Runtime is the online system of Figure 4: Stemmer → hash-table lookups
// (interestingness vectors, Global TID Table, keyword packs) → Ranker. All
// tables live in memory; per-document work is detection, one stemming pass,
// and constant-time lookups per detected concept.
type Runtime struct {
	Pipeline *detect.Pipeline
	Interest *InterestTable
	Packs    *KeywordPacks
	Model    *ranksvm.Model

	// Timing accumulators for the §VI throughput experiment (atomic: the
	// runtime serves concurrent requests in production).
	stemNanos, rankNanos atomic.Int64
	bytesProcessed       atomic.Int64
}

// NewRuntime wires the components.
func NewRuntime(p *detect.Pipeline, it *InterestTable, kp *KeywordPacks, model *ranksvm.Model) *Runtime {
	return &Runtime{Pipeline: p, Interest: it, Packs: kp, Model: model}
}

// StemDoc runs the stemmer component: the stemmed version of the document
// "is created first and stored for later usage". The pass runs on a pooled
// scratch — tokenizer buffer reused, Porter stems memoized across documents
// — and only the returned set is allocated, since the caller owns it. The
// token filter here is ContentWords' filter exactly (non-punct, non-empty
// norm, non-stopword), so the returned contents are unchanged.
func (rt *Runtime) StemDoc(text string) map[string]bool {
	sc := annPool.Get().(*annScratch)
	defer annPool.Put(sc)
	rt.stemPass(sc, text)
	stems := make(map[string]bool, len(sc.stems))
	for s := range sc.stems {
		stems[s] = true
	}
	return stems
}

// annScratch is the pooled per-request working set of AnnotateCtx: a token
// buffer for window tokenization, the stem/TID sets (cleared, not
// reallocated, between uses), a reusable feature vector, and a memo of
// word → Porter stem. The memo survives across pooled requests — document
// windows overlap and vocabularies repeat heavily, so most Stem calls become
// map hits — and is dropped wholesale past stemCacheMax entries to bound its
// footprint.
type annScratch struct {
	tokens    []textproc.Token
	stems     map[string]bool
	tids      map[uint32]bool
	kept      map[string]bool
	fv        []float64
	std       []float64
	stemCache map[string]string
}

const stemCacheMax = 1 << 14

var annPool = sync.Pool{New: func() any {
	return &annScratch{
		stems:     make(map[string]bool),
		tids:      make(map[uint32]bool),
		kept:      make(map[string]bool),
		stemCache: make(map[string]string),
	}
}}

func (sc *annScratch) stemOf(w string) string {
	if s, ok := sc.stemCache[w]; ok {
		return s
	}
	s := stem.Stem(w)
	if len(sc.stemCache) >= stemCacheMax {
		clear(sc.stemCache)
	}
	sc.stemCache[w] = s
	return s
}

// stemPass is the timed stemmer stage of AnnotateCtx: identical work to
// StemDoc (the stemmed document is only a timing stage in Figure 4 — the
// ranker consumes per-detection windows), but tokenizing into the pooled
// buffer and writing into the cleared pooled set.
func (rt *Runtime) stemPass(sc *annScratch, text string) {
	start := time.Now()
	sc.tokens = textproc.TokenizeInto(text, sc.tokens[:0])
	clear(sc.stems)
	for i := range sc.tokens {
		t := &sc.tokens[i]
		if t.Kind == textproc.Punct || t.Norm == "" || textproc.IsStopword(t.Norm) {
			continue
		}
		sc.stems[sc.stemOf(t.Norm)] = true
	}
	rt.stemNanos.Add(time.Since(start).Nanoseconds())
}

// LocalRadius is the byte radius of the context used to score each
// detection's relevance (mirrors relevance.LocalRadius: the paper estimates
// relevance from keyword co-occurrence "in the context" of the occurrence).
const LocalRadius = 300

// Annotate detects, scores and ranks the concepts of a document, returning
// annotations in decreasing score order. topN ≤ 0 returns all; otherwise the
// top-N distinct concepts are kept (all their occurrences). Pattern entities
// bypass ranking and are always included first (paper §II-A: "pattern based
// entities are not subject to any relevance calculations [and] are always
// annotated").
func (rt *Runtime) Annotate(text string, topN int) []Annotation {
	// context.Background never cancels, so the error is impossible.
	anns, _ := rt.AnnotateCtx(context.Background(), text, topN)
	return anns
}

// allGroups is the full feature-group mask, hoisted so the ranking loop does
// not rebuild the map per detection. Read-only after init.
var allGroups = features.AllGroups()

// cancelCheckEvery is how many ranking iterations run between cooperative
// ctx checks: frequent enough that a deadline interrupts a pathological
// document in well under a millisecond, rare enough that the atomic load
// never shows up in the §VI throughput numbers.
const cancelCheckEvery = 64

// AnnotateCtx is Annotate with cooperative cancellation: the per-request
// deadline set by the serving layer is checked between pipeline stages and
// every cancelCheckEvery detections inside the ranking loop. On expiry it
// returns ctx.Err() and a nil slice — the caller (internal/serve) decides
// whether to degrade to the cheap ranking or fail the request. Timing
// accumulators only record completed documents, so an abandoned request
// cannot skew the throughput experiment.
//
//kw:hotpath
func (rt *Runtime) AnnotateCtx(ctx context.Context, text string, topN int) ([]Annotation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := annPool.Get().(*annScratch)
	defer annPool.Put(sc)
	rt.stemPass(sc, text) //kwlint:ignore hotpath — stemmer stage: token normalization and memoized Porter stems are the documented per-document budget
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	detections := rt.Pipeline.Detect(text)

	patterns := make([]Annotation, 0, 4)
	ranked := make([]Annotation, 0, len(detections))
	for i, d := range detections {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if d.Kind == detect.KindPattern {
			patterns = append(patterns, Annotation{Detection: d})
			continue
		}
		fields, ok := rt.Interest.Fields(d.Norm)
		if !ok {
			// Outside the supported concept inventory: the production
			// system only annotates entities whose features were
			// precomputed offline ("we initially focus our efforts on a
			// large, but finite set of entities").
			continue
		}
		rel := rt.Packs.Score(d.Norm, rt.localTIDsInto(sc, text, d.Start, d.End)) //kwlint:ignore hotpath — window re-tokenization shares the tokenizer's documented normalization budget
		sc.fv = fields.AppendExpand(sc.fv[:0], allGroups)
		sc.fv = append(sc.fv, log1p(rel))
		if cap(sc.std) < len(sc.fv) {
			sc.std = make([]float64, 0, cap(sc.fv))
		}
		ranked = append(ranked, Annotation{
			Detection: d,
			Score:     rt.Model.ScoreBuf(sc.fv, sc.std),
			Relevance: rel,
		})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		// The paper's tie-break: favor the higher relevance score.
		return ranked[i].Relevance > ranked[j].Relevance
	})
	clear(sc.kept)
	ranked = keepTopConcepts(sc.kept, ranked, topN)
	rt.rankNanos.Add(time.Since(start).Nanoseconds())
	rt.bytesProcessed.Add(int64(len(text)))
	return append(patterns, ranked...), nil
}

// keepTopConcepts keeps the top-N *distinct* concepts of a ranked slice;
// every occurrence of a kept concept stays annotated ("an application can
// then choose the top N entities from this ranked list"). topN ≤ 0 keeps
// everything. kept is the caller's (cleared) dedup set — the hot path
// hands in pooled scratch so the dedup costs no per-request allocation.
func keepTopConcepts(kept map[string]bool, ranked []Annotation, topN int) []Annotation {
	if topN <= 0 {
		return ranked
	}
	out := ranked[:0]
	for _, a := range ranked {
		if !kept[a.Detection.Norm] {
			if len(kept) == topN {
				continue
			}
			kept[a.Detection.Norm] = true
		}
		out = append(out, a)
	}
	return out
}

// AnnotateDegraded is the graceful-degradation path: a dictionary-score
// ranking that skips the expensive stages — no stemming pass, no keyword
// pack scoring, no model evaluation — and orders concepts by their static
// FreqExact interestingness field (the click-dictionary prior quantized
// into the interest table). It exists so that, under shedding pressure or
// deadline exhaustion, the serving layer can still answer with plausible
// annotations instead of an error. Output contract: same shape as
// Annotate (patterns first, then ranked concepts, top-N dedup), Relevance
// always 0, deterministic order (score desc, concept name asc, position
// asc on ties). Not recorded in the throughput accumulators — it is not
// the Figure 4 pipeline.
func (rt *Runtime) AnnotateDegraded(text string, topN int) []Annotation {
	detections := rt.Pipeline.Detect(text)
	var patterns, ranked []Annotation
	for _, d := range detections {
		if d.Kind == detect.KindPattern {
			patterns = append(patterns, Annotation{Detection: d})
			continue
		}
		fields, ok := rt.Interest.Fields(d.Norm)
		if !ok {
			continue
		}
		ranked = append(ranked, Annotation{Detection: d, Score: fields.FreqExact})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		if ranked[i].Detection.Norm != ranked[j].Detection.Norm {
			return ranked[i].Detection.Norm < ranked[j].Detection.Norm
		}
		return ranked[i].Detection.Start < ranked[j].Detection.Start
	})
	return append(patterns, keepTopConcepts(make(map[string]bool), ranked, topN)...)
}

// localTIDs maps the stemmed content words near [start,end) to the Global
// TID Table.
func (rt *Runtime) localTIDs(text string, start, end int) map[uint32]bool {
	stems := make(map[string]bool)
	for _, w := range textproc.ContentWords(localWindow(text, start, end)) {
		stems[stem.Stem(w)] = true
	}
	return rt.Packs.DocTIDs(stems)
}

// localTIDsInto is localTIDs writing into the pooled scratch: the window is
// tokenized into sc.tokens and the TID set accumulates in sc.tids (cleared
// first). The set is identical to localTIDs' — interning a stem twice is
// idempotent — and valid until the next localTIDsInto call on sc.
func (rt *Runtime) localTIDsInto(sc *annScratch, text string, start, end int) map[uint32]bool {
	sc.tokens = textproc.TokenizeInto(localWindow(text, start, end), sc.tokens[:0])
	clear(sc.tids)
	for i := range sc.tokens {
		t := &sc.tokens[i]
		if t.Kind == textproc.Punct || t.Norm == "" || textproc.IsStopword(t.Norm) {
			continue
		}
		if id, ok := rt.Packs.TIDs.ID(sc.stemOf(t.Norm)); ok {
			sc.tids[id] = true
		}
	}
	return sc.tids
}

// localWindow widens [start,end) by LocalRadius bytes on each side, then
// extends to whitespace so no word is cut in half.
func localWindow(text string, start, end int) string {
	lo := start - LocalRadius
	if lo < 0 {
		lo = 0
	}
	hi := end + LocalRadius
	if hi > len(text) {
		hi = len(text)
	}
	for lo > 0 && text[lo-1] != ' ' && text[lo-1] != '\n' {
		lo--
	}
	for hi < len(text) && text[hi] != ' ' && text[hi] != '\n' {
		hi++
	}
	return text[lo:hi]
}

func log1p(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log1p(x)
}

// Throughput reports the stemmer and ranker processing rates in MB/s since
// the runtime was created — the paper's §VI experiment ("processing rates
// of 7.9MB/sec and 2.4MB/sec").
func (rt *Runtime) Throughput() (stemMBps, rankMBps float64) {
	mb := float64(rt.bytesProcessed.Load()) / (1 << 20)
	if n := rt.stemNanos.Load(); n > 0 {
		stemMBps = mb / (float64(n) / 1e9)
	}
	if n := rt.rankNanos.Load(); n > 0 {
		rankMBps = mb / (float64(n) / 1e9)
	}
	return
}

// ResetTimers clears the throughput accumulators.
func (rt *Runtime) ResetTimers() {
	rt.stemNanos.Store(0)
	rt.rankNanos.Store(0)
	rt.bytesProcessed.Store(0)
}

// BytesProcessed returns the total document bytes annotated so far.
func (rt *Runtime) BytesProcessed() int64 { return rt.bytesProcessed.Load() }
