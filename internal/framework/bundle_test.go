package framework

import (
	"bytes"
	"errors"
	"testing"

	"contextrank/internal/features"
	"contextrank/internal/ranksvm"
	"contextrank/internal/world"
)

func sampleBundle(t *testing.T) *Bundle {
	t.Helper()
	names := []string{"alpha beta", "gamma", "delta epsilon zeta"}
	table := BuildInterestTable(names, func(n string) features.Fields {
		return features.Fields{
			FreqExact:     float64(len(n)),
			ConceptSize:   float64(1 + len(n)%3),
			NumberOfChars: float64(len(n)),
			HighLevelType: world.EntityType(len(n) % 7),
			WikiWordCount: float64(3 * len(n)),
		}
	})
	kp := BuildKeywordPacks(buildStore())
	model, err := ranksvm.Train([]ranksvm.Instance{
		{Features: []float64{1, 0}, Label: 1, Group: 0},
		{Features: []float64{0, 1}, Label: 0, Group: 0},
	}, ranksvm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &Bundle{Interest: table, Packs: kp, Model: model}
}

func TestBundleRoundtrip(t *testing.T) {
	b := sampleBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Interest table equality.
	if got.Interest.Len() != b.Interest.Len() {
		t.Fatalf("interest len %d != %d", got.Interest.Len(), b.Interest.Len())
	}
	for name := range b.Interest.index {
		want, _ := b.Interest.Fields(name)
		f, ok := got.Interest.Fields(name)
		if !ok || f != want {
			t.Fatalf("interest fields mismatch for %q: %+v vs %+v", name, f, want)
		}
	}
	// Keyword packs equality.
	if got.Packs.Len() != b.Packs.Len() || got.Packs.TIDs.Len() != b.Packs.TIDs.Len() {
		t.Fatal("pack shape mismatch")
	}
	for name, pack := range b.Packs.packs {
		g := got.Packs.packs[name]
		if len(g) != len(pack) {
			t.Fatalf("pack %q length mismatch", name)
		}
		for i := range pack {
			if g[i] != pack[i] {
				t.Fatalf("pack %q entry %d mismatch", name, i)
			}
		}
	}
	// Model equality via scoring.
	for _, x := range [][]float64{{1, 0}, {0, 1}, {0.3, 0.7}} {
		if got.Model.Score(x) != b.Model.Score(x) {
			t.Fatal("model scores differ after roundtrip")
		}
	}
}

func TestBundleDetectsCorruption(t *testing.T) {
	b := sampleBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a byte in the middle: checksum must catch it.
	corrupt := make([]byte, len(data))
	copy(corrupt, data)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := LoadBundle(bytes.NewReader(corrupt)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte not detected: %v", err)
	}

	// Truncate: must fail, not hang or panic.
	if _, err := LoadBundle(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncated bundle loaded")
	}

	// Wrong magic.
	bad := make([]byte, len(data))
	copy(bad, data)
	bad[0] = 'X'
	if _, err := LoadBundle(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic not detected: %v", err)
	}

	// Empty input.
	if _, err := LoadBundle(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty bundle loaded")
	}
}

func TestBundleDeterministicBytes(t *testing.T) {
	b := sampleBundle(t)
	var b1, b2 bytes.Buffer
	if err := b.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Save is not byte-deterministic")
	}
}

func TestBundleRuntimeEquivalence(t *testing.T) {
	// A runtime built from a loaded bundle must annotate identically.
	b := sampleBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	doc := "the alpha beta phenomenon with troop reports from baghdad today"
	// Both runtimes share a nil pipeline-resources detector (pattern only),
	// so scoring paths are exercised through Packs/Interest directly.
	dt := kpDocTIDs(b.Packs, doc)
	lt := kpDocTIDs(loaded.Packs, doc)
	for name := range b.Packs.packs {
		if b.Packs.Score(name, dt) != loaded.Packs.Score(name, lt) {
			t.Fatalf("pack score differs for %q", name)
		}
	}
}

func kpDocTIDs(kp *KeywordPacks, doc string) map[uint32]bool {
	stems := map[string]bool{}
	for _, w := range []string{"troop", "baghdad", "soldier", "market"} {
		_ = w
		stems[w] = true
	}
	_ = doc
	return kp.DocTIDs(stems)
}
