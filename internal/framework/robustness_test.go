package framework

import (
	"bytes"
	"math/rand"
	"testing"

	"contextrank/internal/golomb"
)

// Robustness (failure-injection) tests: the production loaders must reject
// — never panic on or hang over — arbitrary corruption of their inputs.

func TestBundleLoadNeverPanicsOnRandomFlips(t *testing.T) {
	b := sampleBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, len(clean))
		copy(data, clean)
		// 1-4 random byte flips anywhere in the file.
		for f := 0; f < 1+rng.Intn(4); f++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: LoadBundle panicked: %v", trial, r)
				}
			}()
			loaded, err := LoadBundle(bytes.NewReader(data))
			// Either the checksum/structure catches it, or (when the flips
			// cancel — astronomically unlikely) the load succeeds; both are
			// acceptable, but success with err==nil must return a usable
			// bundle.
			if err == nil && loaded.Interest == nil {
				t.Fatalf("trial %d: nil bundle without error", trial)
			}
		}()
	}
}

func TestBundleLoadNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, rng.Intn(4096))
		rng.Read(data)
		// Prefixing the magic exercises the deeper decode paths.
		if trial%2 == 0 && len(data) >= 8 {
			copy(data, bundleMagic[:])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panicked: %v", trial, r)
				}
			}()
			_, _ = LoadBundle(bytes.NewReader(data))
		}()
	}
}

func TestGolombDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, rng.Intn(256))
		rng.Read(data)
		n := rng.Intn(50)
		m := uint32(1 + rng.Intn(64))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: golomb.Decode panicked: %v", trial, r)
				}
			}()
			_, _ = golomb.Decode(data, n, m)
			_, _ = golomb.DecodeSorted(data, n, m)
		}()
	}
}

func TestCompressedPackDecompressCorrupt(t *testing.T) {
	kp := BuildKeywordPacks(buildStore())
	cp := kp.Compress("iraq war")
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		bad := cp
		bad.TIDData = append([]byte(nil), cp.TIDData...)
		if len(bad.TIDData) > 0 {
			bad.TIDData[rng.Intn(len(bad.TIDData))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Decompress panicked: %v", trial, r)
				}
			}()
			_, _ = bad.Decompress()
		}()
	}
}

func TestSharedPacksDecodeCorrupt(t *testing.T) {
	kp := sharedFixture()
	sp := BuildSharedPacks(kp, 16)
	// Corrupt one member's pool-reference bytes in place.
	for concept, pack := range sp.packs {
		if len(pack.poolIdx) == 0 {
			continue
		}
		bad := pack
		bad.poolIdx = append([]byte(nil), pack.poolIdx...)
		for i := range bad.poolIdx {
			bad.poolIdx[i] = 0xFF
		}
		sp.packs[concept] = bad
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Entries panicked on corrupt pack: %v", r)
				}
			}()
			if _, err := sp.Entries(concept); err == nil {
				// All-ones unary may still decode to in-range refs for tiny
				// pools; score path must stay panic-free regardless.
				_, _ = sp.Score(concept, map[uint32]bool{0: true})
			}
		}()
		break
	}
}
