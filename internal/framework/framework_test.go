package framework

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"contextrank/internal/corpus"
	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/world"
)

func sampleFields(i int) features.Fields {
	return features.Fields{
		FreqExact:           float64(i) * 0.7,
		FreqPhraseContained: float64(i) * 0.9,
		UnitScore:           float64(i%10) / 10,
		SearchEnginePhrase:  float64(i) * 0.3,
		ConceptSize:         float64(1 + i%3),
		NumberOfChars:       float64(5 + i%20),
		Subconcepts:         float64(i % 4),
		HighLevelType:       world.EntityType(i % 7),
		WikiWordCount:       float64(i) * 1.7,
	}
}

func TestInterestTableRoundtrip(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta"}
	fieldsOf := func(n string) features.Fields {
		for i, name := range names {
			if name == n {
				return sampleFields(i*7 + 1)
			}
		}
		return features.Fields{}
	}
	table := BuildInterestTable(names, fieldsOf)
	if table.Len() != len(names) {
		t.Fatalf("Len = %d", table.Len())
	}
	for i, n := range names {
		want := sampleFields(i*7 + 1)
		got, ok := table.Fields(n)
		if !ok {
			t.Fatalf("missing %q", n)
		}
		// Quantization error is bounded by max/65535 per field.
		if got.HighLevelType != want.HighLevelType {
			t.Fatalf("type changed: %v vs %v", got.HighLevelType, want.HighLevelType)
		}
		if math.Abs(got.FreqExact-want.FreqExact) > 0.001*math.Max(1, want.FreqExact) {
			t.Fatalf("FreqExact %v vs %v", got.FreqExact, want.FreqExact)
		}
		if math.Abs(got.ConceptSize-want.ConceptSize) > 0.01 {
			t.Fatalf("ConceptSize %v vs %v", got.ConceptSize, want.ConceptSize)
		}
	}
	if _, ok := table.Fields("missing"); ok {
		t.Fatal("found missing concept")
	}
}

func TestInterestTableMemoryBudget(t *testing.T) {
	names := make([]string, 1000)
	for i := range names {
		names[i] = "concept" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
	}
	table := BuildInterestTable(names, func(string) features.Fields { return sampleFields(3) })
	// The paper's claim scaled down: 18 bytes per concept.
	if got := table.MemoryBytes(); got != len(names)*BytesPerConcept {
		t.Fatalf("memory = %d, want %d", got, len(names)*BytesPerConcept)
	}
}

func TestTIDTable(t *testing.T) {
	tt := NewTIDTable()
	a := tt.Intern("troop")
	b := tt.Intern("baghdad")
	if a2 := tt.Intern("troop"); a2 != a {
		t.Fatal("re-intern changed id")
	}
	if a == b {
		t.Fatal("distinct terms share id")
	}
	if got, ok := tt.ID("baghdad"); !ok || got != b {
		t.Fatal("ID lookup failed")
	}
	if _, ok := tt.ID("missing"); ok {
		t.Fatal("missing term found")
	}
	if tt.Term(a) != "troop" || tt.Len() != 2 {
		t.Fatal("reverse lookup broken")
	}
}

func buildStore() *relevance.Store {
	return relevance.NewStore(relevance.Snippets, map[string]corpus.Vector{
		"iraq war": {{Term: "troop", Weight: 8}, {Term: "baghdad", Weight: 5}, {Term: "soldier", Weight: 2}},
		"economy":  {{Term: "market", Weight: 6}, {Term: "trade", Weight: 3}},
		"empty":    nil,
	})
}

func TestKeywordPacksRoundtrip(t *testing.T) {
	kp := BuildKeywordPacks(buildStore())
	if kp.Len() != 3 {
		t.Fatalf("Len = %d", kp.Len())
	}
	kws := kp.Keywords("iraq war")
	if len(kws) != 3 {
		t.Fatalf("keywords = %v", kws)
	}
	if kws[0].Term != "troop" {
		t.Fatalf("top keyword = %v", kws[0])
	}
	// Quantized weights within 1/1023 of original scale.
	if math.Abs(kws[0].Weight-8) > 8.0/MaxQScore*2 {
		t.Fatalf("weight %v too far from 8", kws[0].Weight)
	}
	if got := kp.BytesFor("iraq war"); got != 12 {
		t.Fatalf("BytesFor = %d, want 12 (3 × 4B)", got)
	}
	if got := kp.BytesFor("empty"); got != 0 {
		t.Fatalf("empty pack bytes = %d", got)
	}
}

func TestKeywordPacks400ByteBudget(t *testing.T) {
	// A full m=100 pack must cost exactly 400 bytes, the paper's figure.
	terms := make(corpus.Vector, 100)
	for i := range terms {
		terms[i] = corpus.Entry{Term: "term" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Weight: float64(100 - i)}
	}
	store := relevance.NewStore(relevance.Snippets, map[string]corpus.Vector{"full": terms})
	kp := BuildKeywordPacks(store)
	if got := kp.BytesFor("full"); got != 400 {
		t.Fatalf("full pack = %d bytes, want 400", got)
	}
}

func TestKeywordPackScore(t *testing.T) {
	kp := BuildKeywordPacks(buildStore())
	stems := map[string]bool{"troop": true, "soldier": true, "banana": true}
	docTIDs := kp.DocTIDs(stems)
	got := kp.Score("iraq war", docTIDs)
	// Expect ≈ 8 + 2 (quantization rounds down slightly).
	if got < 9.5 || got > 10.01 {
		t.Fatalf("Score = %v, want ~10", got)
	}
	if kp.Score("economy", docTIDs) != 0 {
		t.Fatal("unrelated concept should score 0")
	}
	if kp.Score("missing", docTIDs) != 0 {
		t.Fatal("missing concept should score 0")
	}
}

func TestCompressedPackRoundtrip(t *testing.T) {
	kp := BuildKeywordPacks(buildStore())
	for _, concept := range []string{"iraq war", "economy", "empty"} {
		cp := kp.Compress(concept)
		entries, err := cp.Decompress()
		if err != nil {
			t.Fatalf("%s: %v", concept, err)
		}
		if !reflect.DeepEqual(entries, kp.packs[concept]) && !(len(entries) == 0 && len(kp.packs[concept]) == 0) {
			t.Fatalf("%s: roundtrip mismatch", concept)
		}
	}
}

func TestCompressionSavesSpace(t *testing.T) {
	terms := make(corpus.Vector, 100)
	for i := range terms {
		terms[i] = corpus.Entry{Term: "kw" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)), Weight: float64(100 - i)}
	}
	store := relevance.NewStore(relevance.Snippets, map[string]corpus.Vector{"full": terms})
	kp := BuildKeywordPacks(store)
	cp := kp.Compress("full")
	if cp.Bytes() >= kp.BytesFor("full") {
		t.Fatalf("compression grew the pack: %d vs %d", cp.Bytes(), kp.BytesFor("full"))
	}
}

func TestRuntimeAnnotate(t *testing.T) {
	// Minimal self-contained runtime: no dictionaries/units, pattern +
	// interest-table driven.
	store := buildStore()
	kp := BuildKeywordPacks(store)
	names := []string{"iraq war", "economy"}
	table := BuildInterestTable(names, func(n string) features.Fields {
		if n == "iraq war" {
			return sampleFields(50)
		}
		return sampleFields(3)
	})
	// Train a tiny model preferring higher FreqExact.
	var instances []ranksvm.Instance
	for g := 0; g < 10; g++ {
		hot := sampleFields(50).Expand(features.AllGroups())
		cold := sampleFields(3).Expand(features.AllGroups())
		instances = append(instances,
			ranksvm.Instance{Features: append(hot, 1), Label: 0.1, Group: g},
			ranksvm.Instance{Features: append(cold, 0), Label: 0.01, Group: g},
		)
	}
	model, err := ranksvm.Train(instances, ranksvm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(detect.New(nil, nil), table, kp, model)
	anns := rt.Annotate("The troops advanced. Email hq@army.mil now.", 5)
	// Pattern entity must be present and first.
	if len(anns) == 0 || anns[0].Detection.Kind != detect.KindPattern {
		t.Fatalf("pattern entity missing or not first: %+v", anns)
	}
	stemMBps, rankMBps := rt.Throughput()
	if stemMBps <= 0 || rankMBps <= 0 {
		t.Fatalf("throughput not measured: %v %v", stemMBps, rankMBps)
	}
	rt.ResetTimers()
	if s, r := rt.Throughput(); s != 0 || r != 0 {
		t.Fatal("ResetTimers did not clear")
	}
}

func TestRuntimeTopN(t *testing.T) {
	kp := BuildKeywordPacks(buildStore())
	table := BuildInterestTable([]string{"a"}, func(string) features.Fields { return sampleFields(1) })
	model, err := ranksvm.Train([]ranksvm.Instance{
		{Features: make([]float64, features.Dim(features.AllGroups())+1), Label: 1, Group: 0},
		{Features: onesVector(features.Dim(features.AllGroups()) + 1), Label: 0, Group: 0},
	}, ranksvm.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(detect.New(nil, nil), table, kp, model)
	long := strings.Repeat("Visit http://a.example.com and http://b.example.com today. ", 2)
	anns := rt.Annotate(long, 1)
	// Patterns bypass topN; ensure no panic and deterministic output.
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
}

func onesVector(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
