package framework

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"contextrank/internal/ranksvm"
)

// This file implements bundle persistence: the paper's offline pipeline
// produces "data-packs that are pre-loaded into memory to allow for
// high-performance entity detection" — the production runtime must start
// from a serialized artifact, not by re-mining the web. A Bundle is the
// interestingness table + keyword packs + trained model, written in a
// length-prefixed little-endian binary format with a magic header, version
// byte and trailing CRC32 so corrupt or truncated files fail loudly.

// Bundle is the complete offline artifact behind one runtime.
type Bundle struct {
	Interest *InterestTable
	Packs    *KeywordPacks
	Model    *ranksvm.Model
}

var bundleMagic = [8]byte{'C', 'T', 'X', 'R', 'A', 'N', 'K', 1}

// ErrCorrupt is returned when a bundle fails validation.
var ErrCorrupt = errors.New("framework: corrupt bundle")

// crcWriter hashes everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func writeU32(w io.Writer, v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
func writeU64(w io.Writer, v uint64) error { return binary.Write(w, binary.LittleEndian, v) }
func writeF64(w io.Writer, v float64) error {
	return writeU64(w, math.Float64bits(v))
}
func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
func readU64(r io.Reader) (uint64, error) {
	var v uint64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
func readF64(r io.Reader) (float64, error) {
	v, err := readU64(r)
	return math.Float64frombits(v), err
}

// maxStringLen bounds decoded strings so corrupt length prefixes cannot
// trigger huge allocations.
const maxStringLen = 1 << 20

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Save writes the bundle.
func (b *Bundle) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write(bundleMagic[:]); err != nil {
		return err
	}
	if err := b.saveInterest(cw); err != nil {
		return err
	}
	if err := b.savePacks(cw); err != nil {
		return err
	}
	// The model is stored as a length-prefixed JSON blob: a streaming JSON
	// decoder reads past the value it decodes, which would corrupt the
	// framing of anything following it.
	var modelBuf bytes.Buffer
	if err := b.Model.Save(&modelBuf); err != nil {
		return err
	}
	if err := writeU32(cw, uint32(modelBuf.Len())); err != nil {
		return err
	}
	if _, err := cw.Write(modelBuf.Bytes()); err != nil {
		return err
	}
	// Trailing CRC of everything before it (written raw, not hashed).
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

func (b *Bundle) saveInterest(w io.Writer) error {
	t := b.Interest
	for _, m := range t.calib.Max {
		if err := writeF64(w, m); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(t.index))); err != nil {
		return err
	}
	// Names in offset order for deterministic output.
	names := make([]string, len(t.index))
	for name, off := range t.index {
		names[off/NumFields] = name
	}
	for _, name := range names {
		if err := writeString(w, name); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(t.data))); err != nil {
		return err
	}
	buf := make([]byte, 2*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint16(buf[2*i:], v)
	}
	_, err := w.Write(buf)
	return err
}

func (b *Bundle) savePacks(w io.Writer) error {
	kp := b.Packs
	if err := writeF64(w, kp.maxScore); err != nil {
		return err
	}
	if err := writeU32(w, uint32(kp.TIDs.Len())); err != nil {
		return err
	}
	for i := 0; i < kp.TIDs.Len(); i++ {
		if err := writeString(w, kp.TIDs.Term(uint32(i))); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(kp.packs))
	for n := range kp.packs {
		names = append(names, n)
	}
	sort.Strings(names)
	if err := writeU32(w, uint32(len(names))); err != nil {
		return err
	}
	for _, n := range names {
		if err := writeString(w, n); err != nil {
			return err
		}
		pack := kp.packs[n]
		if err := writeU32(w, uint32(len(pack))); err != nil {
			return err
		}
		buf := make([]byte, 4*len(pack))
		for i, e := range pack {
			binary.LittleEndian.PutUint32(buf[4*i:], e)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadBundle reads and validates a bundle written by Save.
func LoadBundle(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if magic != bundleMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	b := &Bundle{}
	var err error
	if b.Interest, err = loadInterest(cr); err != nil {
		return nil, err
	}
	if b.Packs, err = loadPacks(cr); err != nil {
		return nil, err
	}
	modelLen, err := readU32(cr)
	if err != nil || modelLen > 1<<28 {
		return nil, fmt.Errorf("%w: model length", ErrCorrupt)
	}
	modelBytes := make([]byte, modelLen)
	if _, err := io.ReadFull(cr, modelBytes); err != nil {
		return nil, fmt.Errorf("%w: model data: %v", ErrCorrupt, err)
	}
	if b.Model, err = ranksvm.Load(bytes.NewReader(modelBytes)); err != nil {
		return nil, fmt.Errorf("%w: model: %v", ErrCorrupt, err)
	}
	want := cr.crc
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return b, nil
}

func loadInterest(r io.Reader) (*InterestTable, error) {
	t := &InterestTable{index: make(map[string]int)}
	for i := range t.calib.Max {
		v, err := readF64(r)
		if err != nil {
			return nil, fmt.Errorf("%w: calibration", ErrCorrupt)
		}
		t.calib.Max[i] = v
	}
	n, err := readU32(r)
	if err != nil || n > 1<<26 {
		return nil, fmt.Errorf("%w: interest count", ErrCorrupt)
	}
	for i := uint32(0); i < n; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: interest name: %v", ErrCorrupt, err)
		}
		t.index[name] = int(i) * NumFields
	}
	dlen, err := readU32(r)
	if err != nil || dlen != n*NumFields {
		return nil, fmt.Errorf("%w: interest data length", ErrCorrupt)
	}
	buf := make([]byte, 2*dlen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: interest data: %v", ErrCorrupt, err)
	}
	t.data = make([]uint16, dlen)
	for i := range t.data {
		t.data[i] = binary.LittleEndian.Uint16(buf[2*i:])
	}
	return t, nil
}

func loadPacks(r io.Reader) (*KeywordPacks, error) {
	kp := &KeywordPacks{TIDs: NewTIDTable(), packs: make(map[string][]uint32)}
	var err error
	if kp.maxScore, err = readF64(r); err != nil {
		return nil, fmt.Errorf("%w: pack scale", ErrCorrupt)
	}
	nTerms, err := readU32(r)
	if err != nil || nTerms > MaxTID {
		return nil, fmt.Errorf("%w: TID count", ErrCorrupt)
	}
	for i := uint32(0); i < nTerms; i++ {
		term, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: TID term: %v", ErrCorrupt, err)
		}
		if got := kp.TIDs.Intern(term); got != i {
			return nil, fmt.Errorf("%w: duplicate TID term %q", ErrCorrupt, term)
		}
	}
	nPacks, err := readU32(r)
	if err != nil || nPacks > 1<<26 {
		return nil, fmt.Errorf("%w: pack count", ErrCorrupt)
	}
	for i := uint32(0); i < nPacks; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("%w: pack name: %v", ErrCorrupt, err)
		}
		plen, err := readU32(r)
		if err != nil || plen > 1<<20 {
			return nil, fmt.Errorf("%w: pack length", ErrCorrupt)
		}
		buf := make([]byte, 4*plen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: pack data: %v", ErrCorrupt, err)
		}
		pack := make([]uint32, plen)
		for j := range pack {
			pack[j] = binary.LittleEndian.Uint32(buf[4*j:])
			if pack[j]>>ScoreBits >= nTerms {
				return nil, fmt.Errorf("%w: pack %q references TID beyond table", ErrCorrupt, name)
			}
		}
		kp.packs[name] = pack
	}
	return kp, nil
}
