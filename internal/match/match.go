// Package match implements the shared multi-pattern phrase matcher behind
// the detection hot path: a vocabulary table interning every normalized
// token that occurs in any pattern to a dense uint32 id, and a token-level
// trie over those ids. A document is matched in a single pass — tokens are
// interned once, then each position performs a longest-match trie walk with
// zero per-probe allocations.
//
// The matcher preserves the greedy-longest semantics of the scanners it
// replaced (taxonomy.Dictionary.FindInTokens, units.Set.FindInTokens): at
// each token position the longest pattern starting there is reported, and
// positions advance by one token regardless of matches, so nested phrases
// at later positions are still found. DESIGN.md §10 records the
// performance contract.
package match

// NoID marks a token that is not part of any pattern's vocabulary. No trie
// edge carries it, so a walk stops at the first unknown token.
const NoID = ^uint32(0)

// Vocab interns normalized tokens to dense ids. Build-time only: Intern
// assigns ids while patterns load; the serving path uses the read-only ID.
type Vocab struct {
	ids  map[string]uint32
	toks []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]uint32)}
}

// Intern returns the id of tok, assigning the next dense id if new.
func (v *Vocab) Intern(tok string) uint32 {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	id := uint32(len(v.toks))
	v.ids[tok] = id
	v.toks = append(v.toks, tok)
	return id
}

// ID returns the id of tok, or NoID if the token occurs in no pattern.
func (v *Vocab) ID(tok string) uint32 {
	if id, ok := v.ids[tok]; ok {
		return id
	}
	return NoID
}

// Len returns the number of interned tokens.
func (v *Vocab) Len() int { return len(v.toks) }

// Token returns the token interned as id.
func (v *Vocab) Token(id uint32) string { return v.toks[id] }

// AppendIDs appends the ids of tokens to dst and returns it. Unknown tokens
// map to NoID. The usual call site passes a pooled dst[:0], making the
// interning pass allocation-free in steady state.
//
//kw:hotpath
func (v *Vocab) AppendIDs(dst []uint32, tokens []string) []uint32 {
	for _, t := range tokens {
		id, ok := v.ids[t]
		if !ok {
			id = NoID
		}
		dst = append(dst, id)
	}
	return dst
}

// noPattern marks a trie node that terminates no pattern.
const noPattern = int32(-1)

// Builder accumulates patterns and compiles the trie.
type Builder struct {
	vocab    *Vocab
	pattern  []int32          // node -> pattern id (noPattern if interior)
	edges    map[uint64]int32 // (node, token id) -> child node
	patterns int
	maxLen   int
}

// NewBuilder returns a builder interning into vocab (a fresh vocabulary if
// nil). Sharing one vocabulary across builders lets callers intern a
// document once for several matchers.
func NewBuilder(vocab *Vocab) *Builder {
	if vocab == nil {
		vocab = NewVocab()
	}
	return &Builder{
		vocab:   vocab,
		pattern: []int32{noPattern}, // root
		edges:   make(map[uint64]int32),
	}
}

// Vocab returns the builder's vocabulary.
func (b *Builder) Vocab() *Vocab { return b.vocab }

func edgeKey(node int32, tok uint32) uint64 {
	return uint64(node)<<32 | uint64(tok)
}

// Add registers a pattern given as its token sequence and returns its
// pattern id (dense, in Add order). Adding the same token sequence twice
// returns the first id. Empty patterns are rejected with id -1.
func (b *Builder) Add(terms []string) int {
	if len(terms) == 0 {
		return -1
	}
	node := int32(0)
	for _, t := range terms {
		id := b.vocab.Intern(t)
		key := edgeKey(node, id)
		child, ok := b.edges[key]
		if !ok {
			child = int32(len(b.pattern))
			b.pattern = append(b.pattern, noPattern)
			b.edges[key] = child
		}
		node = child
	}
	if p := b.pattern[node]; p != noPattern {
		return int(p)
	}
	p := int32(b.patterns)
	b.pattern[node] = p
	b.patterns++
	if len(terms) > b.maxLen {
		b.maxLen = len(terms)
	}
	return int(p)
}

// Build freezes the trie. The builder must not be reused afterwards.
func (b *Builder) Build() *Matcher {
	return &Matcher{vocab: b.vocab, pattern: b.pattern, edges: b.edges, patterns: b.patterns, maxLen: b.maxLen}
}

// Matcher is the compiled token-trie. It is immutable and safe for
// concurrent use.
type Matcher struct {
	vocab    *Vocab
	pattern  []int32
	edges    map[uint64]int32
	patterns int
	maxLen   int
}

// Vocab returns the matcher's vocabulary.
func (m *Matcher) Vocab() *Vocab { return m.vocab }

// NumPatterns returns the number of distinct patterns compiled in.
func (m *Matcher) NumPatterns() int { return m.patterns }

// MaxLen returns the longest pattern length in tokens.
func (m *Matcher) MaxLen() int { return m.maxLen }

// LongestAt walks the trie from position i of ids and returns the pattern
// id and end position (exclusive) of the longest pattern starting at i.
// ok is false when no pattern starts there. The walk performs one map
// probe per consumed token and allocates nothing.
//
//kw:hotpath
func (m *Matcher) LongestAt(ids []uint32, i int) (pattern, end int, ok bool) {
	node := int32(0)
	best := noPattern
	for j := i; j < len(ids); j++ {
		id := ids[j]
		if id == NoID {
			break
		}
		child, found := m.edges[edgeKey(node, id)]
		if !found {
			break
		}
		node = child
		if p := m.pattern[node]; p != noPattern {
			best, end = p, j+1
		}
	}
	if best == noPattern {
		return 0, 0, false
	}
	return int(best), end, true
}

// Match is one pattern occurrence in an id sequence.
type Match struct {
	// Pattern is the pattern id returned by Builder.Add.
	Pattern int
	// Start and End are token positions ([Start,End)).
	Start, End int
}

// AppendMatches scans ids greedy-longest at every position and appends the
// matches to dst, returning it. With a pre-sized dst the scan is
// allocation-free.
//
//kw:hotpath
func (m *Matcher) AppendMatches(dst []Match, ids []uint32) []Match {
	for i := 0; i < len(ids); i++ {
		if p, end, ok := m.LongestAt(ids, i); ok {
			dst = append(dst, Match{Pattern: p, Start: i, End: end})
		}
	}
	return dst
}

// FindTokens interns tokens against the matcher's vocabulary and returns
// all greedy-longest matches. Convenience path for tests and cold callers;
// the hot path pre-interns and calls AppendMatches/LongestAt.
func (m *Matcher) FindTokens(tokens []string) []Match {
	ids := m.vocab.AppendIDs(make([]uint32, 0, len(tokens)), tokens)
	return m.AppendMatches(nil, ids)
}
