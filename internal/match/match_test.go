package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func buildFrom(phrases ...string) *Matcher {
	b := NewBuilder(nil)
	for _, p := range phrases {
		b.Add(strings.Fields(p))
	}
	return b.Build()
}

// reference is the pre-trie scanner semantics: phrases grouped by first
// token, longest first, probe each candidate at every position.
func reference(phrases []string, tokens []string) []Match {
	ids := map[string]int{}
	for i, p := range phrases {
		ids[p] = i
	}
	var out []Match
	for i := 0; i < len(tokens); i++ {
		bestLen := 0
		best := -1
		for _, p := range phrases {
			terms := strings.Fields(p)
			if len(terms) <= bestLen || i+len(terms) > len(tokens) {
				continue
			}
			ok := true
			for j, t := range terms {
				if tokens[i+j] != t {
					ok = false
					break
				}
			}
			if ok {
				best, bestLen = ids[p], len(terms)
			}
		}
		if best >= 0 {
			out = append(out, Match{Pattern: best, Start: i, End: i + bestLen})
		}
	}
	return out
}

func TestLongestMatchWins(t *testing.T) {
	m := buildFrom("new york", "new york city", "york")
	got := m.FindTokens(strings.Fields("in new york city today"))
	// "new york city" wins at position 1; "york" still matches at position 2
	// (positions advance one token at a time, matching the legacy scanners —
	// the downstream collision pass drops the nested span).
	want := []Match{{Pattern: 1, Start: 1, End: 4}, {Pattern: 2, Start: 2, End: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestNestedPhraseAtLaterPositionStillFound(t *testing.T) {
	m := buildFrom("new york city", "york")
	got := m.FindTokens(strings.Fields("new york city"))
	// Greedy-longest at position 0, plus "york" at position 1: the scanner
	// advances one token at a time, exactly like the byFirst loops did.
	want := []Match{{Pattern: 0, Start: 0, End: 3}, {Pattern: 1, Start: 1, End: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestUnknownTokenBreaksWalk(t *testing.T) {
	m := buildFrom("alpha beta gamma")
	if got := m.FindTokens(strings.Fields("alpha beta delta")); len(got) != 0 {
		t.Fatalf("unexpected match through unknown token: %+v", got)
	}
	if got := m.FindTokens(strings.Fields("alpha beta gamma")); len(got) != 1 {
		t.Fatalf("full phrase should match: %+v", got)
	}
}

func TestDuplicateAddReturnsSameID(t *testing.T) {
	b := NewBuilder(nil)
	a := b.Add([]string{"x", "y"})
	if b.Add([]string{"x", "y"}) != a {
		t.Fatal("duplicate pattern got a new id")
	}
	if b.Add(nil) != -1 {
		t.Fatal("empty pattern should be rejected")
	}
	m := b.Build()
	if m.NumPatterns() != 1 || m.MaxLen() != 2 {
		t.Fatalf("patterns=%d maxLen=%d", m.NumPatterns(), m.MaxLen())
	}
}

func TestSharedVocabAcrossBuilders(t *testing.T) {
	v := NewVocab()
	b1 := NewBuilder(v)
	b1.Add([]string{"jaguar"})
	b2 := NewBuilder(v)
	b2.Add([]string{"jaguar", "cars"})
	m1, m2 := b1.Build(), b2.Build()
	toks := []string{"jaguar", "cars"}
	ids := v.AppendIDs(nil, toks)
	if got := m1.AppendMatches(nil, ids); len(got) != 1 || got[0].End != 1 {
		t.Fatalf("m1 matches = %+v", got)
	}
	if got := m2.AppendMatches(nil, ids); len(got) != 1 || got[0].End != 2 {
		t.Fatalf("m2 matches = %+v", got)
	}
}

func TestVocabUnknownIsNoID(t *testing.T) {
	v := NewVocab()
	v.Intern("known")
	if v.ID("unknown") != NoID {
		t.Fatal("unknown token must map to NoID")
	}
	if v.ID("known") != 0 || v.Token(0) != "known" || v.Len() != 1 {
		t.Fatal("interning bookkeeping broken")
	}
}

func TestEmptyAndShortInputs(t *testing.T) {
	m := buildFrom("a b c")
	if got := m.FindTokens(nil); len(got) != 0 {
		t.Fatalf("empty input matched: %+v", got)
	}
	if got := m.FindTokens([]string{"a", "b"}); len(got) != 0 {
		t.Fatalf("phrase longer than input matched: %+v", got)
	}
}

// TestDifferentialRandom cross-checks the trie against the reference
// quadratic scanner on random phrase inventories and documents.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vocabulary := make([]string, 30)
	for i := range vocabulary {
		vocabulary[i] = fmt.Sprintf("w%d", i)
	}
	for trial := 0; trial < 200; trial++ {
		nPhrases := 1 + rng.Intn(12)
		seen := map[string]bool{}
		var phrases []string
		for len(phrases) < nPhrases {
			l := 1 + rng.Intn(4)
			terms := make([]string, l)
			for i := range terms {
				terms[i] = vocabulary[rng.Intn(len(vocabulary))]
			}
			p := strings.Join(terms, " ")
			if !seen[p] {
				seen[p] = true
				phrases = append(phrases, p)
			}
		}
		doc := make([]string, rng.Intn(60))
		for i := range doc {
			doc[i] = vocabulary[rng.Intn(len(vocabulary))]
		}
		m := buildFrom(phrases...)
		got := m.FindTokens(doc)
		want := reference(phrases, doc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: phrases=%v doc=%v\ngot  %+v\nwant %+v", trial, phrases, doc, got, want)
		}
	}
}

func TestAppendMatchesZeroAlloc(t *testing.T) {
	m := buildFrom("alpha beta", "gamma")
	ids := m.Vocab().AppendIDs(nil, []string{"alpha", "beta", "gamma", "alpha", "beta"})
	dst := make([]Match, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		dst = m.AppendMatches(dst[:0], ids)
	})
	if allocs != 0 {
		t.Fatalf("AppendMatches allocated %.1f objects per run", allocs)
	}
	idBuf := make([]uint32, 0, 8)
	toks := []string{"alpha", "beta", "zzz"}
	allocs = testing.AllocsPerRun(100, func() {
		idBuf = m.Vocab().AppendIDs(idBuf[:0], toks)
	})
	if allocs != 0 {
		t.Fatalf("AppendIDs allocated %.1f objects per run", allocs)
	}
}
