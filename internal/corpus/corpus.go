// Package corpus provides document-corpus statistics: the term dictionary
// with term-document frequencies and tf·idf weighting (Salton & Buckley,
// paper reference [6]) used by the concept-vector generator and the
// relevant-keyword miners.
package corpus

import (
	"math"
	"sort"

	"contextrank/internal/textproc"
)

// Dictionary holds term→document-frequency counts over a corpus. It stands
// in for the paper's "term dictionary which contains the term-document
// frequencies (i.e. the number of documents of a large web corpus containing
// the dictionary term)".
type Dictionary struct {
	docFreq map[string]int
	numDocs int
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{docFreq: make(map[string]int)}
}

// AddDocument updates document frequencies with the distinct terms of one
// document. Terms are expected to be normalized already.
func (d *Dictionary) AddDocument(terms []string) {
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		d.docFreq[t]++
	}
	d.numDocs++
}

// AddDocumentText tokenizes text and updates document frequencies.
func (d *Dictionary) AddDocumentText(text string) {
	d.AddDocument(textproc.Words(text))
}

// AddTermDocs adds df to term's document frequency without touching the
// document count. Bulk indexers that already know each term's exact document
// frequency (the length of its merged posting list) record it directly
// instead of replaying per-document distinct-term scans; pairing it with one
// AddDocs call yields counts identical to AddDocument per document.
func (d *Dictionary) AddTermDocs(term string, df int) {
	if term == "" || df == 0 {
		return
	}
	d.docFreq[term] += df
}

// AddDocs records n additional documents — the document-count companion of
// AddTermDocs.
func (d *Dictionary) AddDocs(n int) { d.numDocs += n }

// NumDocs returns the number of documents the dictionary has seen.
func (d *Dictionary) NumDocs() int { return d.numDocs }

// DocFreq returns the number of documents containing term.
func (d *Dictionary) DocFreq(term string) int { return d.docFreq[term] }

// NumTerms returns the number of distinct terms in the dictionary.
func (d *Dictionary) NumTerms() int { return len(d.docFreq) }

// IDF returns the smoothed inverse document frequency of term:
// ln((N+1)/(df+1)) + 1, which is strictly positive and defined for unseen
// terms.
func (d *Dictionary) IDF(term string) float64 {
	df := d.docFreq[term]
	return math.Log(float64(d.numDocs+1)/float64(df+1)) + 1
}

// Entry is a term with a weight, the unit of all vectors in this package.
type Entry struct {
	Term   string
	Weight float64
}

// Vector is a sparse term-weight vector sorted by decreasing weight (ties
// broken lexicographically for determinism).
type Vector []Entry

// Get returns the weight of term in v, or 0.
func (v Vector) Get(term string) float64 {
	for _, e := range v {
		if e.Term == term {
			return e.Weight
		}
	}
	return 0
}

// Map converts v to a map for random access.
func (v Vector) Map() map[string]float64 {
	m := make(map[string]float64, len(v))
	for _, e := range v {
		m[e.Term] = e.Weight
	}
	return m
}

// Top returns the first k entries of v (or all if k exceeds the length).
func (v Vector) Top(k int) Vector {
	if k > len(v) {
		k = len(v)
	}
	return v[:k]
}

// Sum returns the sum of weights in v. The paper uses this quantity (over a
// concept's top-100 relevant keywords) to separate specific from low-quality
// concepts (Table II).
func (v Vector) Sum() float64 {
	s := 0.0
	for _, e := range v {
		s += e.Weight
	}
	return s
}

// SortVector sorts entries by decreasing weight, breaking ties by term so
// results are deterministic.
func SortVector(v Vector) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Weight != v[j].Weight {
			return v[i].Weight > v[j].Weight
		}
		return v[i].Term < v[j].Term
	})
}

// TFIDF computes the tf·idf vector of the given terms against the
// dictionary: tf(t) * idf(t), where tf is the raw count in terms. Stop-words
// are removed. The result is sorted by decreasing weight.
func TFIDF(d *Dictionary, terms []string) Vector {
	counts := make(map[string]int)
	for _, t := range terms {
		if t == "" || textproc.IsStopword(t) {
			continue
		}
		counts[t]++
	}
	v := make(Vector, 0, len(counts))
	for t, c := range counts {
		v = append(v, Entry{Term: t, Weight: float64(c) * d.IDF(t)})
	}
	SortVector(v)
	return v
}

// NormalizeMax scales v so the maximum weight is 1 (weights end up in
// [0,1]), matching the paper's "the remaining terms' weights are normalized
// so that they are between 0 and 1". A nil or empty vector is returned
// unchanged.
func NormalizeMax(v Vector) Vector {
	if len(v) == 0 {
		return v
	}
	max := v[0].Weight
	for _, e := range v {
		if e.Weight > max {
			max = e.Weight
		}
	}
	if max <= 0 {
		return v
	}
	out := make(Vector, len(v))
	for i, e := range v {
		out[i] = Entry{Term: e.Term, Weight: e.Weight / max}
	}
	return out
}

// PunishBelow multiplies by factor the weight of every entry whose weight is
// below threshold, then drops entries whose resulting weight falls below
// removeBelow. This mirrors the paper's two-threshold scheme: "The weights
// of terms that fall under a certain threshold are punished ... and the
// resulting tf*idf scores below another threshold are removed".
func PunishBelow(v Vector, threshold, factor, removeBelow float64) Vector {
	out := make(Vector, 0, len(v))
	for _, e := range v {
		w := e.Weight
		if w < threshold {
			w *= factor
		}
		if w >= removeBelow {
			out = append(out, Entry{Term: e.Term, Weight: w})
		}
	}
	SortVector(out)
	return out
}

// CosineSimilarity computes the cosine of the angle between two sparse
// vectors; 0 if either is empty or zero.
func CosineSimilarity(a, b Vector) float64 {
	am := a.Map()
	dot, na, nb := 0.0, 0.0, 0.0
	for _, e := range a {
		na += e.Weight * e.Weight
	}
	for _, e := range b {
		nb += e.Weight * e.Weight
		if w, ok := am[e.Term]; ok {
			dot += w * e.Weight
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
