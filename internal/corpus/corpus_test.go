package corpus

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func buildDict() *Dictionary {
	d := NewDictionary()
	d.AddDocument([]string{"iraq", "war", "troops"})
	d.AddDocument([]string{"iraq", "election", "vote"})
	d.AddDocument([]string{"cuba", "embargo", "policy"})
	d.AddDocument([]string{"war", "policy", "debate"})
	return d
}

func TestDictionaryCounts(t *testing.T) {
	d := buildDict()
	if d.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", d.NumDocs())
	}
	if d.DocFreq("iraq") != 2 || d.DocFreq("cuba") != 1 || d.DocFreq("missing") != 0 {
		t.Fatalf("doc freqs wrong: iraq=%d cuba=%d", d.DocFreq("iraq"), d.DocFreq("cuba"))
	}
}

func TestDictionaryDistinctTermsPerDoc(t *testing.T) {
	d := NewDictionary()
	d.AddDocument([]string{"war", "war", "war"})
	if d.DocFreq("war") != 1 {
		t.Fatalf("repeated term in one doc should count once, got %d", d.DocFreq("war"))
	}
}

func TestIDFMonotone(t *testing.T) {
	d := buildDict()
	if d.IDF("cuba") <= d.IDF("iraq") {
		t.Fatal("rarer terms must have higher idf")
	}
	if d.IDF("unseen") <= d.IDF("cuba") {
		t.Fatal("unseen terms must have the highest idf")
	}
	if d.IDF("unseen") <= 0 {
		t.Fatal("idf must be positive")
	}
}

func TestTFIDFOrdering(t *testing.T) {
	d := buildDict()
	// "cuba" is rarer than "war", and appears twice here.
	v := TFIDF(d, []string{"cuba", "cuba", "war", "the", "of"})
	if len(v) != 2 {
		t.Fatalf("stopwords should be removed: %v", v)
	}
	if v[0].Term != "cuba" {
		t.Fatalf("expected cuba first, got %v", v)
	}
	if v.Get("the") != 0 {
		t.Fatal("stopword leaked into vector")
	}
}

func TestNormalizeMax(t *testing.T) {
	v := Vector{{"a", 4}, {"b", 2}, {"c", 1}}
	n := NormalizeMax(v)
	if n[0].Weight != 1.0 || n[1].Weight != 0.5 || n[2].Weight != 0.25 {
		t.Fatalf("NormalizeMax = %v", n)
	}
	// Original untouched.
	if v[0].Weight != 4 {
		t.Fatal("NormalizeMax must not mutate input")
	}
	if got := NormalizeMax(nil); got != nil {
		t.Fatal("nil should pass through")
	}
}

func TestPunishBelow(t *testing.T) {
	v := Vector{{"big", 0.9}, {"mid", 0.4}, {"small", 0.1}}
	out := PunishBelow(v, 0.5, 0.5, 0.15)
	m := out.Map()
	if m["big"] != 0.9 {
		t.Errorf("big should be untouched: %v", out)
	}
	if math.Abs(m["mid"]-0.2) > 1e-12 {
		t.Errorf("mid should be punished to 0.2: %v", out)
	}
	if _, ok := m["small"]; ok {
		t.Errorf("small should be removed: %v", out)
	}
}

func TestVectorTopAndSum(t *testing.T) {
	v := Vector{{"a", 3}, {"b", 2}, {"c", 1}}
	if got := v.Top(2); len(got) != 2 || got[0].Term != "a" {
		t.Fatalf("Top(2) = %v", got)
	}
	if got := v.Top(10); len(got) != 3 {
		t.Fatalf("Top(10) = %v", got)
	}
	if v.Sum() != 6 {
		t.Fatalf("Sum = %v", v.Sum())
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := Vector{{"x", 1}, {"y", 1}}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-similarity = %v", got)
	}
	b := Vector{{"z", 1}}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Fatalf("orthogonal similarity = %v", got)
	}
	if got := CosineSimilarity(a, nil); got != 0 {
		t.Fatalf("nil similarity = %v", got)
	}
}

func TestSortVectorDeterministic(t *testing.T) {
	v := Vector{{"b", 1}, {"a", 1}, {"c", 2}}
	SortVector(v)
	if v[0].Term != "c" || v[1].Term != "a" || v[2].Term != "b" {
		t.Fatalf("SortVector = %v", v)
	}
}

// Property: NormalizeMax output weights are always within [0,1] and ordering
// is preserved.
func TestNormalizeMaxProperty(t *testing.T) {
	f := func(ws []float64) bool {
		v := make(Vector, 0, len(ws))
		for i, w := range ws {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			v = append(v, Entry{Term: string(rune('a' + i%26)), Weight: math.Abs(w)})
		}
		SortVector(v)
		n := NormalizeMax(v)
		for i, e := range n {
			if e.Weight < 0 || e.Weight > 1+1e-9 {
				return false
			}
			if i > 0 && n[i-1].Weight < e.Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: tf·idf vector is sorted decreasing.
func TestTFIDFSortedProperty(t *testing.T) {
	d := buildDict()
	f := func(idx []uint8) bool {
		pool := []string{"iraq", "war", "cuba", "policy", "debate", "vote", "new", "term"}
		terms := make([]string, len(idx))
		for i, x := range idx {
			terms[i] = pool[int(x)%len(pool)]
		}
		v := TFIDF(d, terms)
		return sort.SliceIsSorted(v, func(i, j int) bool {
			if v[i].Weight != v[j].Weight {
				return v[i].Weight > v[j].Weight
			}
			return v[i].Term < v[j].Term
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
