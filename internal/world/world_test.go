package world

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func testWorld(t testing.TB) *World {
	t.Helper()
	return New(Config{Seed: 42, VocabSize: 1200, NumTopics: 8, NumConcepts: 200})
}

func TestWorldDeterministic(t *testing.T) {
	w1 := New(Config{Seed: 7, VocabSize: 500, NumTopics: 4, NumConcepts: 60})
	w2 := New(Config{Seed: 7, VocabSize: 500, NumTopics: 4, NumConcepts: 60})
	if !reflect.DeepEqual(w1.Vocab, w2.Vocab) {
		t.Fatal("vocab not deterministic")
	}
	if !reflect.DeepEqual(w1.Concepts, w2.Concepts) {
		t.Fatal("concepts not deterministic")
	}
	w3 := New(Config{Seed: 8, VocabSize: 500, NumTopics: 4, NumConcepts: 60})
	if reflect.DeepEqual(w1.Vocab, w3.Vocab) {
		t.Fatal("different seeds produced identical vocab")
	}
}

func TestWorldValidate(t *testing.T) {
	if err := testWorld(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorldHasVariety(t *testing.T) {
	w := testWorld(t)
	var multi, named, lowq, ambiguous int
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if len(c.Terms) > 1 {
			multi++
		}
		if c.Type != TypeNone {
			named++
		}
		if c.LowQuality() {
			lowq++
		}
		if c.Ambiguous() {
			ambiguous++
		}
	}
	if multi == 0 || named == 0 || lowq == 0 {
		t.Fatalf("missing variety: multi=%d named=%d lowq=%d", multi, named, lowq)
	}
	if named >= len(w.Concepts) {
		t.Fatal("all concepts are named entities; abstract concepts missing")
	}
}

func TestConceptByName(t *testing.T) {
	w := testWorld(t)
	c := &w.Concepts[len(w.Concepts)/2]
	if got := w.ConceptByName(c.Name); got != c {
		t.Fatalf("ConceptByName(%q) = %v", c.Name, got)
	}
	if got := w.ConceptByName("no such concept"); got != nil {
		t.Fatalf("expected nil for unknown, got %v", got)
	}
}

func TestLowQualityPhrasesPresent(t *testing.T) {
	w := testWorld(t)
	c := w.ConceptByName("my favorite")
	if c == nil {
		t.Fatal("'my favorite' missing")
	}
	if !c.LowQuality() || c.Topic != -1 {
		t.Fatalf("'my favorite' should be low quality and topicless: %+v", c)
	}
}

func TestSampleTermFromTopic(t *testing.T) {
	w := testWorld(t)
	rng := rand.New(rand.NewSource(1))
	topic := &w.Topics[0]
	valid := make(map[string]bool)
	for _, id := range topic.TermIDs {
		valid[w.Vocab[id]] = true
	}
	for i := 0; i < 500; i++ {
		term := w.SampleTerm(topic, rng)
		if !valid[term] {
			t.Fatalf("sampled term %q not in topic", term)
		}
	}
}

func TestEntityTypeString(t *testing.T) {
	if TypePerson.String() != "person" || TypeNone.String() != "none" {
		t.Fatal("EntityType.String broken")
	}
}

func TestTitleCase(t *testing.T) {
	if got := TitleCase("global warming"); got != "Global Warming" {
		t.Fatalf("TitleCase = %q", got)
	}
	if got := TitleCase(""); got != "" {
		t.Fatalf("TitleCase empty = %q", got)
	}
}

func TestComposeDocEmbedsMentions(t *testing.T) {
	w := testWorld(t)
	rng := rand.New(rand.NewSource(3))
	var c *Concept
	for i := range w.Concepts {
		if w.Concepts[i].Topic >= 0 && len(w.Concepts[i].Terms) == 2 {
			c = &w.Concepts[i]
			break
		}
	}
	if c == nil {
		t.Skip("no two-term topical concept")
	}
	doc, _ := w.ComposeDoc(ComposeOptions{Topic: c.Topic}, []Mention{{Concept: c, Relevant: true, Repeat: 2}}, rng)
	lower := strings.ToLower(doc)
	if strings.Count(lower, c.Name) < 2 {
		t.Fatalf("document should mention %q twice:\n%s", c.Name, doc)
	}
	if !strings.Contains(doc, ".") {
		t.Fatal("document should contain sentences")
	}
}

func TestComposeDocRelevantMentionsCarryContextTerms(t *testing.T) {
	w := testWorld(t)
	rng := rand.New(rand.NewSource(4))
	var c *Concept
	for i := range w.Concepts {
		cc := &w.Concepts[i]
		if cc.Topic >= 0 && cc.Specificity > 0.7 {
			c = cc
			break
		}
	}
	if c == nil {
		t.Skip("no specific concept found")
	}
	ctx := make(map[string]bool)
	for _, term := range c.ContextTerms {
		ctx[term] = true
	}
	// Compose many relevant docs in a *different* topic so context terms can
	// only come from the mention machinery, then check they show up.
	otherTopic := (c.Topic + 1) % len(w.Topics)
	hits := 0
	for i := 0; i < 10; i++ {
		doc, _ := w.ComposeDoc(ComposeOptions{Topic: otherTopic}, []Mention{{Concept: c, Relevant: true}}, rng)
		for _, word := range strings.Fields(strings.ToLower(doc)) {
			word = strings.Trim(word, ".")
			if ctx[word] {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("relevant mentions never pulled in context terms")
	}
}

func TestComposeDocDeterministic(t *testing.T) {
	w := testWorld(t)
	c := &w.Concepts[20]
	d1, _ := w.ComposeDoc(ComposeOptions{Topic: 1}, []Mention{{Concept: c}}, rand.New(rand.NewSource(9)))
	d2, _ := w.ComposeDoc(ComposeOptions{Topic: 1}, []Mention{{Concept: c}}, rand.New(rand.NewSource(9)))
	if d1 != d2 {
		t.Fatal("ComposeDoc not deterministic for same rng seed")
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-1) != 0 || Clamp01(2) != 1 || Clamp01(0.5) != 0.5 {
		t.Fatal("Clamp01 broken")
	}
}

func BenchmarkComposeDoc(b *testing.B) {
	w := New(Config{Seed: 42, VocabSize: 1200, NumTopics: 8, NumConcepts: 200})
	rng := rand.New(rand.NewSource(1))
	c := &w.Concepts[50]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ComposeDoc(ComposeOptions{Topic: 2}, []Mention{{Concept: c, Relevant: true}}, rng)
	}
}
