// Package world implements the synthetic world model that stands in for the
// paper's proprietary resources (Yahoo! query logs, web corpus, news
// traffic, click instrumentation).
//
// The world is a generative model with explicit latent variables per
// concept — interestingness, specificity, quality and topic affinity — from
// which every other resource is derived:
//
//   - the query log (internal/querylog) emits queries whose frequencies are
//     driven by concept interestingness;
//   - the web corpus (internal/searchsim) contains documents whose count and
//     topical coherence are driven by specificity and quality;
//   - news stories (internal/newsgen) embed concepts relevantly or
//     irrelevantly, driven by topic affinity;
//   - clicks (internal/clicksim) are sampled from a latent CTR that combines
//     interestingness and contextual relevance.
//
// Because the features the paper mines (query frequencies, result counts,
// Wikipedia lengths, ...) are *partial, noisy observations* of these latent
// variables, the learning problem the ranker faces has the same structure as
// the production problem, even though every byte of data is synthetic.
package world

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// EntityType is the high-level taxonomy type of a named entity. Abstract
// concepts carry TypeNone.
type EntityType int

const (
	// TypeNone marks abstract concepts that are not in the editorial
	// dictionaries (they are detected via query-log units instead).
	TypeNone EntityType = iota
	TypePerson
	TypePlace
	TypeOrganization
	TypeProduct
	TypeEvent
	TypeAnimal
	numEntityTypes
)

// String returns the lower-case name of the type.
func (t EntityType) String() string {
	switch t {
	case TypePerson:
		return "person"
	case TypePlace:
		return "place"
	case TypeOrganization:
		return "organization"
	case TypeProduct:
		return "product"
	case TypeEvent:
		return "event"
	case TypeAnimal:
		return "animal"
	default:
		return "none"
	}
}

// Subtypes per major type, mirroring the paper's "each of these major types
// contains a large number of subtypes, e.g. actor, musician, scientist".
var subtypes = map[EntityType][]string{
	TypePerson:       {"actor", "musician", "scientist", "politician", "athlete", "author"},
	TypePlace:        {"city", "country", "state", "landmark", "region"},
	TypeOrganization: {"company", "agency", "team", "university", "party"},
	TypeProduct:      {"gadget", "vehicle", "software", "medicine", "game"},
	TypeEvent:        {"election", "war", "festival", "disaster", "summit"},
	TypeAnimal:       {"mammal", "bird", "reptile", "fish", "insect"},
}

// Concept is a keyword phrase with its latent ground-truth attributes.
type Concept struct {
	// ID indexes the concept in World.Concepts.
	ID int
	// Name is the space-separated lower-case phrase ("global warming").
	Name string
	// Terms are the individual terms of Name.
	Terms []string
	// Type is the taxonomy type; TypeNone for abstract concepts.
	Type EntityType
	// Subtype refines Type ("actor", "city", ...); empty for TypeNone.
	Subtype string
	// Interest is the latent interestingness in [0,1]: how appealing the
	// concept is to the general user base, independent of context.
	Interest float64
	// Specificity in [0,1]: 1 = very specific (few documents mention it,
	// strongly clustered contexts), 0 = very general.
	Specificity float64
	// Quality in [0,1]: low-quality phrases ("my favorite") score near 0.
	Quality float64
	// Topic is the primary topic index; -1 for topicless low-quality phrases.
	Topic int
	// SecondaryTopic is a second sense for ambiguous concepts; -1 otherwise.
	SecondaryTopic int
	// ContextTerms are the distinctive terms of contexts in which the
	// concept is relevant; relevance miners should rediscover (a superset
	// of) these. Sorted for determinism.
	ContextTerms []string
	// QueryRefiners are the extra terms users type alongside the concept in
	// queries. They overlap ContextTerms only partially (RefinerOverlap),
	// modelling the gap between query and document vocabulary.
	QueryRefiners []string
}

// LowQuality reports whether the concept is one of the injected low-quality
// general phrases.
func (c *Concept) LowQuality() bool { return c.Quality < 0.25 }

// Ambiguous reports whether the concept has two senses.
func (c *Concept) Ambiguous() bool { return c.SecondaryTopic >= 0 }

// Topic is a distribution over vocabulary term indexes.
type Topic struct {
	// ID indexes the topic in World.Topics.
	ID int
	// TermIDs are the vocabulary indexes this topic can emit.
	TermIDs []int
	// cum is the cumulative weight array aligned with TermIDs.
	cum []float64
}

// Config parameterizes world generation. Zero values select defaults that
// produce a world roughly matching the paper's data volume (hundreds of
// stories, thousands of concepts) at laptop scale.
type Config struct {
	Seed        int64
	VocabSize   int // distinct terms; default 6000
	NumTopics   int // default 24
	NumConcepts int // default 1200

	// MultiTermFraction is the fraction of concepts with 2-3 terms.
	MultiTermFraction float64 // default 0.55
	// NamedEntityFraction is the fraction of concepts placed in the
	// editorial dictionaries with a taxonomy type.
	NamedEntityFraction float64 // default 0.45
	// LowQualityFraction is the fraction of injected low-quality phrases.
	LowQualityFraction float64 // default 0.08
	// AmbiguousFraction is the fraction of concepts with two senses.
	AmbiguousFraction float64 // default 0.05
	// ContextTermCount is how many distinctive context terms each concept
	// has. Default 80: documents about a concept draw on a broad
	// vocabulary, which is exactly why Prisma's 20-feedback-term cap costs
	// it coverage (paper Table IV).
	ContextTermCount int
	// RefinerOverlap is the fraction of a concept's query refiners drawn
	// from its document context terms; the rest are other topical terms.
	// Query vocabulary only partially overlaps document vocabulary, which
	// is why suggestion-mined keywords cover contexts worse than snippets.
	// Default 0.3.
	RefinerOverlap float64
	// NicheFraction is the fraction of a concept's context terms that are
	// signature vocabulary unique to the concept (think "methicillin" for a
	// medical entity): words that appear essentially nowhere else, so a
	// keyword pack that captures them tracks the concept's contextual
	// presence precisely. Default 0.6.
	NicheFraction float64
}

func (c Config) withDefaults() Config {
	if c.VocabSize == 0 {
		c.VocabSize = 6000
	}
	if c.NumTopics == 0 {
		c.NumTopics = 24
	}
	if c.NumConcepts == 0 {
		c.NumConcepts = 1200
	}
	if c.MultiTermFraction == 0 {
		c.MultiTermFraction = 0.55
	}
	if c.NamedEntityFraction == 0 {
		c.NamedEntityFraction = 0.45
	}
	if c.LowQualityFraction == 0 {
		c.LowQualityFraction = 0.08
	}
	if c.AmbiguousFraction == 0 {
		c.AmbiguousFraction = 0.05
	}
	if c.ContextTermCount == 0 {
		c.ContextTermCount = 80
	}
	if c.RefinerOverlap == 0 {
		c.RefinerOverlap = 0.3
	}
	if c.NicheFraction == 0 {
		c.NicheFraction = 0.6
	}
	return c
}

// World is the fully-generated synthetic world.
type World struct {
	Config   Config
	Vocab    []string
	Topics   []Topic
	Concepts []Concept
	// IntentVocab are query-only refinement words ("review", "buy",
	// "lyrics" analogues): they appear in search queries but essentially
	// never in edited prose, which is why suggestion-mined keywords match
	// documents worse than snippet-mined ones.
	IntentVocab []string

	byName map[string]*Concept
}

// lowQualityPhrases mirror the paper's examples of "very general or low
// quality concepts (such as 'my favorite', 'the other', 'what is
// happening')" that sneak into the candidate set via high unit scores.
var lowQualityPhrases = []string{
	"my favorite", "the other", "what is happening", "last week",
	"first time", "a lot", "more than", "the best", "every day",
	"this year", "next step", "other side", "long time", "good news",
	"real thing", "big deal", "right now", "old one",
}

// New generates a world from cfg. Generation is deterministic in cfg.Seed.
func New(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg}
	w.generateVocab(rng)
	w.generateIntentVocab(rng)
	w.generateTopics(rng)
	w.generateConcepts(rng)
	w.byName = make(map[string]*Concept, len(w.Concepts))
	for i := range w.Concepts {
		w.byName[w.Concepts[i].Name] = &w.Concepts[i]
	}
	return w
}

// ConceptByName returns the concept with the given name, or nil.
func (w *World) ConceptByName(name string) *Concept { return w.byName[name] }

// syllable inventories for synthetic word generation.
var (
	onsets = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "dr", "fl", "gr", "kr", "pl", "pr", "sh", "sk", "sl", "st", "th", "tr"}
	nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "io", "oa", "ou"}
	codas  = []string{"", "", "", "n", "r", "s", "t", "l", "m", "k", "nd", "st", "rn"}
)

func makeWord(rng *rand.Rand, syllables int) string {
	var b strings.Builder
	for s := 0; s < syllables; s++ {
		b.WriteString(onsets[rng.Intn(len(onsets))])
		b.WriteString(nuclei[rng.Intn(len(nuclei))])
		if s == syllables-1 {
			b.WriteString(codas[rng.Intn(len(codas))])
		}
	}
	return b.String()
}

// commonFillerWords are the non-stop-word constituents of the low-quality
// phrases. They are planted in the shared (cross-topic) vocabulary region
// so that — as in real English — they are frequent, low-idf words that the
// tf·idf machinery correctly treats as undistinctive.
var commonFillerWords = []string{
	"favorite", "happening", "week", "time", "lot", "best", "day",
	"year", "step", "side", "long", "news", "real", "thing", "big",
	"deal", "old", "good",
}

func (w *World) generateVocab(rng *rand.Rand) {
	seen := make(map[string]bool, w.Config.VocabSize)
	w.Vocab = make([]string, 0, w.Config.VocabSize)
	for len(w.Vocab) < w.Config.VocabSize {
		syl := 2 + rng.Intn(3)
		word := makeWord(rng, syl)
		if len(word) < 3 || seen[word] {
			continue
		}
		seen[word] = true
		w.Vocab = append(w.Vocab, word)
	}
	// Plant the filler words in the shared region (the tail of the
	// vocabulary, which every topic emits).
	for i, word := range commonFillerWords {
		if seen[word] {
			continue
		}
		idx := len(w.Vocab) - 1 - i
		if idx < 0 {
			break
		}
		seen[word] = true
		w.Vocab[idx] = word
	}
}

// generateIntentVocab creates the query-only refinement vocabulary.
func (w *World) generateIntentVocab(rng *rand.Rand) {
	seen := make(map[string]bool, len(w.Vocab))
	for _, v := range w.Vocab {
		seen[v] = true
	}
	for len(w.IntentVocab) < 60 {
		word := makeWord(rng, 2)
		if len(word) < 3 || seen[word] {
			continue
		}
		seen[word] = true
		w.IntentVocab = append(w.IntentVocab, word)
	}
}

func (w *World) generateTopics(rng *rand.Rand) {
	w.Topics = make([]Topic, w.Config.NumTopics)
	// Partition most of the vocabulary into topic cores; reserve a shared
	// tail of common terms every topic can emit.
	shared := w.Config.VocabSize / 6
	coreSize := (w.Config.VocabSize - shared) / w.Config.NumTopics
	perm := rng.Perm(w.Config.VocabSize - shared)
	for t := 0; t < w.Config.NumTopics; t++ {
		topic := Topic{ID: t}
		core := perm[t*coreSize : (t+1)*coreSize]
		topic.TermIDs = append(topic.TermIDs, core...)
		// Shared common terms (high frequency across topics).
		for s := 0; s < shared; s++ {
			topic.TermIDs = append(topic.TermIDs, w.Config.VocabSize-shared+s)
		}
		// Zipf-ish weights within the topic: core terms get a per-topic
		// random permutation of Zipf ranks; shared terms get boosted weight
		// so they behave like frequent function-ish words.
		weights := make([]float64, len(topic.TermIDs))
		order := rng.Perm(len(core))
		coreSum := 0.0
		for i := range core {
			// A flat-ish Zipf exponent: real topical vocabularies have no
			// dominant 20-term head, which is why narrow keyword packs
			// (Prisma's 20 feedback terms) cover contexts hit-or-miss while
			// 100-term snippet packs almost always connect (paper Table IV).
			weights[i] = 1.0 / math.Pow(float64(order[i]+2), 0.45)
			coreSum += weights[i]
		}
		// Shared common terms carry ~30% of the topic's probability mass so
		// documents stay topically distinctive.
		rawShared := make([]float64, len(topic.TermIDs)-len(core))
		rawSum := 0.0
		for i := range rawShared {
			rawShared[i] = 1.0 / float64(3+rng.Intn(12))
			rawSum += rawShared[i]
		}
		sharedScale := 0.0
		if rawSum > 0 {
			sharedScale = 0.43 * coreSum / rawSum // 0.43/1.43 ≈ 30% of total
		}
		for i := range rawShared {
			weights[len(core)+i] = rawShared[i] * sharedScale
		}
		topic.cum = make([]float64, len(weights))
		sum := 0.0
		for i, wt := range weights {
			sum += wt
			topic.cum[i] = sum
		}
		w.Topics[t] = topic
	}
}

// SampleTerm draws one term from the topic's distribution.
func (w *World) SampleTerm(t *Topic, rng *rand.Rand) string {
	total := t.cum[len(t.cum)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(t.cum, x)
	if i >= len(t.TermIDs) {
		i = len(t.TermIDs) - 1
	}
	return w.Vocab[t.TermIDs[i]]
}

func (w *World) generateConcepts(rng *rand.Rand) {
	n := w.Config.NumConcepts
	w.Concepts = make([]Concept, 0, n)
	usedNames := make(map[string]bool)
	// Niche signature words must not collide with each other or with the
	// topical vocabulary.
	usedNiche := make(map[string]bool, len(w.Vocab))
	for _, v := range w.Vocab {
		usedNiche[v] = true
	}

	numLowQ := int(float64(n) * w.Config.LowQualityFraction)
	if numLowQ > len(lowQualityPhrases) {
		numLowQ = len(lowQualityPhrases)
	}

	// Low-quality general phrases: high unit frequency, no topic, tiny quality.
	for i := 0; i < numLowQ; i++ {
		name := lowQualityPhrases[i]
		usedNames[name] = true
		w.Concepts = append(w.Concepts, Concept{
			ID:             len(w.Concepts),
			Name:           name,
			Terms:          strings.Fields(name),
			Type:           TypeNone,
			Interest:       0.05 + 0.25*rng.Float64(),
			Specificity:    0.02 + 0.1*rng.Float64(),
			Quality:        0.02 + 0.15*rng.Float64(),
			Topic:          -1,
			SecondaryTopic: -1,
		})
	}

	for len(w.Concepts) < n {
		topic := rng.Intn(w.Config.NumTopics)
		t := &w.Topics[topic]
		numTerms := 1
		if rng.Float64() < w.Config.MultiTermFraction {
			numTerms = 2
			if rng.Float64() < 0.3 {
				numTerms = 3
			}
		}
		terms := make([]string, 0, numTerms)
		if numTerms == 1 {
			// Single-term concepts get a dedicated name word ("Obama",
			// "Cuba"): entity names are distinctive vocabulary, not common
			// topical words, so occurrences in text are deliberate mentions
			// rather than incidental prose.
			word := makeWord(rng, 2+rng.Intn(2))
			for len(word) < 4 || usedNiche[word] {
				word = makeWord(rng, 2+rng.Intn(2))
			}
			usedNiche[word] = true
			w.Vocab = append(w.Vocab, word)
			terms = append(terms, word)
		}
		for len(terms) < numTerms {
			term := w.SampleTerm(t, rng)
			dup := false
			for _, prev := range terms {
				if prev == term {
					dup = true
					break
				}
			}
			if !dup {
				terms = append(terms, term)
			}
		}
		name := strings.Join(terms, " ")
		if usedNames[name] {
			continue
		}
		usedNames[name] = true

		c := Concept{
			ID:             len(w.Concepts),
			Name:           name,
			Terms:          terms,
			Topic:          topic,
			SecondaryTopic: -1,
			// Interest: power-law so a few concepts are very hot.
			Interest: math.Pow(rng.Float64(), 2.2),
			// Multi-term concepts skew specific; single-term ones vary.
			Specificity: clamp01(0.25 + 0.5*rng.Float64() + 0.15*float64(numTerms-1) + 0.1*rng.NormFloat64()),
			Quality:     clamp01(0.5 + 0.4*rng.Float64() + 0.1*rng.NormFloat64()),
		}
		if rng.Float64() < w.Config.NamedEntityFraction {
			typ := EntityType(1 + rng.Intn(int(numEntityTypes)-1))
			c.Type = typ
			subs := subtypes[typ]
			c.Subtype = subs[rng.Intn(len(subs))]
			// Persons and products tend to be clicked more (the taxonomy
			// feature carries signal because type correlates with interest).
			switch typ {
			case TypePerson, TypeProduct:
				c.Interest = clamp01(c.Interest + 0.15)
			case TypePlace:
				c.Interest = clamp01(c.Interest - 0.05)
			}
		}
		if rng.Float64() < w.Config.AmbiguousFraction {
			c.SecondaryTopic = rng.Intn(w.Config.NumTopics)
			if c.SecondaryTopic == topic {
				c.SecondaryTopic = (topic + 1) % w.Config.NumTopics
			}
		}
		// Context terms: the distinctive vocabulary that co-occurs with the
		// concept in relevant contexts — a mix of topical terms (shared
		// with everything else in the topic) and signature niche terms
		// unique to this concept. The niche share is what lets keyword
		// packs distinguish *this* concept's contextual presence from mere
		// topical overlap.
		nicheCount := int(w.Config.NicheFraction * float64(w.Config.ContextTermCount))
		ct := make(map[string]bool)
		for len(ct) < nicheCount {
			word := makeWord(rng, 3+rng.Intn(2))
			if len(word) < 5 || usedNiche[word] {
				continue
			}
			usedNiche[word] = true
			ct[word] = true
			w.Vocab = append(w.Vocab, word)
		}
		for len(ct) < w.Config.ContextTermCount {
			term := w.SampleTerm(t, rng)
			inName := false
			for _, nt := range terms {
				if nt == term {
					inName = true
					break
				}
			}
			if !inName {
				ct[term] = true
			}
		}
		c.ContextTerms = make([]string, 0, len(ct))
		for term := range ct {
			c.ContextTerms = append(c.ContextTerms, term)
		}
		sort.Strings(c.ContextTerms)
		// Query refiners: a slice of the context terms plus query-intent
		// words ("review", "buy") that edited prose never uses.
		nOverlap := int(w.Config.RefinerOverlap * float64(len(c.ContextTerms)))
		perm := rng.Perm(len(c.ContextTerms))
		refiners := make(map[string]bool, len(c.ContextTerms))
		for _, pi := range perm[:nOverlap] {
			refiners[c.ContextTerms[pi]] = true
		}
		for len(refiners) < len(c.ContextTerms)/2 {
			refiners[w.IntentVocab[rng.Intn(len(w.IntentVocab))]] = true
		}
		c.QueryRefiners = make([]string, 0, len(refiners))
		for term := range refiners {
			c.QueryRefiners = append(c.QueryRefiners, term)
		}
		sort.Strings(c.QueryRefiners)
		w.Concepts = append(w.Concepts, c)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Clamp01 exposes clamp01 for sibling packages working with latent values.
func Clamp01(x float64) float64 { return clamp01(x) }

// TitleCase renders a concept name with initial capitals, used when
// embedding named entities in generated prose.
func TitleCase(name string) string {
	fields := strings.Fields(name)
	for i, f := range fields {
		if len(f) > 0 {
			fields[i] = strings.ToUpper(f[:1]) + f[1:]
		}
	}
	return strings.Join(fields, " ")
}

// Validate performs internal consistency checks, returning an error
// describing the first violation. It is used by tests and by cmd tools in
// --selfcheck mode.
func (w *World) Validate() error {
	if len(w.Vocab) < w.Config.VocabSize {
		return fmt.Errorf("vocab size %d < config %d", len(w.Vocab), w.Config.VocabSize)
	}
	seen := make(map[string]bool, len(w.Vocab))
	for _, v := range w.Vocab {
		if seen[v] {
			return fmt.Errorf("duplicate vocab word %q", v)
		}
		seen[v] = true
	}
	names := make(map[string]bool, len(w.Concepts))
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.ID != i {
			return fmt.Errorf("concept %q has ID %d at index %d", c.Name, c.ID, i)
		}
		if names[c.Name] {
			return fmt.Errorf("duplicate concept name %q", c.Name)
		}
		names[c.Name] = true
		if c.Interest < 0 || c.Interest > 1 || c.Quality < 0 || c.Quality > 1 || c.Specificity < 0 || c.Specificity > 1 {
			return fmt.Errorf("concept %q has out-of-range latents", c.Name)
		}
		if c.Topic >= w.Config.NumTopics {
			return fmt.Errorf("concept %q has bad topic %d", c.Name, c.Topic)
		}
		if c.Topic >= 0 && len(c.ContextTerms) == 0 {
			return fmt.Errorf("topical concept %q has no context terms", c.Name)
		}
	}
	return nil
}
