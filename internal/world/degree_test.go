package world

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDegreeControlsLocalContextDensity verifies the graded-relevance primitive:
// a mention's DensityScale controls how many of its context terms appear
// near its placement — the signal the relevance score must recover.
func TestDegreeControlsLocalContextDensity(t *testing.T) {
	w := New(Config{Seed: 42, VocabSize: 4500, NumTopics: 8, NumConcepts: 300})
	var c *Concept
	for i := range w.Concepts {
		if w.Concepts[i].Topic >= 0 && w.Concepts[i].Specificity > 0.7 {
			c = &w.Concepts[i]
			break
		}
	}
	ctx := map[string]bool{}
	for _, term := range c.ContextTerms {
		ctx[term] = true
	}
	rng := rand.New(rand.NewSource(5))
	for _, degree := range []float64{0.1, 0.5, 1.0} {
		total := 0
		for rep := 0; rep < 50; rep++ {
			text, placements := w.ComposeDoc(ComposeOptions{Topic: c.Topic, Sentences: 20, ContextDensity: 1.0},
				[]Mention{{Concept: c, Relevant: true, DensityScale: degree, Repeat: 1}}, rng)
			if len(placements) == 0 {
				t.Fatal("no placement")
			}
			pos := placements[0].Offset
			lo, hi := pos-300, pos+300
			if lo < 0 {
				lo = 0
			}
			if hi > len(text) {
				hi = len(text)
			}
			for _, word := range strings.Fields(strings.ToLower(text[lo:hi])) {
				word = strings.Trim(word, ".")
				if ctx[word] {
					total++
				}
			}
		}
		t.Logf("degree=%.1f avg ctx terms near mention = %.2f (spec=%.2f)", degree, float64(total)/50, c.Specificity)
	}
}
