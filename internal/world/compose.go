package world

import (
	"math/rand"
	"sync"
)

// Mention describes one concept occurrence to embed in a composed document.
type Mention struct {
	// Concept is the concept to mention.
	Concept *Concept
	// Relevant controls whether the mention is surrounded by the concept's
	// own context terms (a relevant, on-topic mention) or dropped into
	// unrelated prose (the "Texas in a Cuba-policy story" case).
	Relevant bool
	// DensityScale grades how strongly a relevant mention is
	// contextualized: it multiplies the effective context density for this
	// mention's sentences. 0 means 1 (full). Lightly-contextualized
	// mentions model the paper's "Somewhat Relevant" middle ground.
	DensityScale float64
	// Repeat is how many times to mention the concept (min 1).
	Repeat int
}

// ComposeOptions controls document composition.
type ComposeOptions struct {
	// Topic is the primary topic index of the document.
	Topic int
	// Sentences is the approximate number of sentences. Default 12.
	Sentences int
	// WordsPerSentence is the approximate sentence length. Default 12.
	WordsPerSentence int
	// ContextDensity in [0,1] is the probability that a word in a sentence
	// carrying a relevant mention is drawn from the mentioned concept's
	// ContextTerms rather than from the topic at large. Specific concepts
	// are composed with higher density by callers. Default 0.45.
	ContextDensity float64
}

func (o ComposeOptions) withDefaults() ComposeOptions {
	if o.Sentences == 0 {
		o.Sentences = 12
	}
	if o.WordsPerSentence == 0 {
		o.WordsPerSentence = 12
	}
	if o.ContextDensity == 0 {
		o.ContextDensity = 0.45
	}
	return o
}

// connectives glue generated sentences into prose-like text so boundary
// detection, stop-word removal and tf·idf see realistic structure.
var connectives = []string{"the", "a", "of", "in", "and", "to", "with", "for", "on", "as"}

// Placement records where a mention's name was written in the composed
// text. Concept names can also occur incidentally elsewhere in the prose
// (they are ordinary vocabulary); Placement identifies the deliberate
// mention, which is what click instrumentation anchors to.
type Placement struct {
	// MentionIndex indexes the mentions slice passed to ComposeDoc.
	MentionIndex int
	// Offset is the byte offset of the written name.
	Offset int
}

// mentionSlot is one planned mention occurrence: which mention goes into
// which sentence.
type mentionSlot struct {
	m        *Mention
	idx      int
	sentence int
}

// composeScratch is the pooled per-call state of ComposeDoc: the byte
// builder, the sentence-occupancy table, and the slot plan. clicksim
// composes a document per story, so this state is rented and returned per
// call rather than reallocated; only the returned text and placements are
// fresh allocations.
type composeScratch struct {
	buf    []byte
	used   []bool
	slots  []mentionSlot
	bySent []int32 // sentence -> slot index, -1 when none
}

var composePool = sync.Pool{New: func() any { return new(composeScratch) }}

// ComposeDoc generates a document about the given topic that embeds the
// given mentions, returning the text and the placement of each deliberate
// mention occurrence. Mentions with Relevant=true are placed in sentences
// that also carry the concept's context terms; irrelevant mentions are
// placed in ordinary topical sentences. The text is plain prose with
// sentences and paragraphs; concept names appear verbatim (title-cased for
// named entities) so detectors can find them.
//
//kw:fresh
func (w *World) ComposeDoc(opts ComposeOptions, mentions []Mention, rng *rand.Rand) (string, []Placement) {
	opts = opts.withDefaults()
	topic := &w.Topics[opts.Topic%len(w.Topics)]
	c := composePool.Get().(*composeScratch)

	// Plan which sentences carry which mention.
	total := 0
	for i := range mentions {
		r := mentions[i].Repeat
		if r < 1 {
			r = 1
		}
		total += r
	}
	numSentences := opts.Sentences
	if numSentences < total {
		numSentences = total + 2
	}
	if cap(c.used) < numSentences {
		c.used = make([]bool, numSentences)
		c.bySent = make([]int32, numSentences)
	}
	used := c.used[:numSentences]
	bySent := c.bySent[:numSentences]
	for i := range used {
		used[i] = false
		bySent[i] = -1
	}
	slots := c.slots[:0]
	for i := range mentions {
		r := mentions[i].Repeat
		if r < 1 {
			r = 1
		}
		for k := 0; k < r; k++ {
			s := rng.Intn(numSentences)
			for used[s] {
				s = (s + 1) % numSentences
			}
			used[s] = true
			bySent[s] = int32(len(slots))
			slots = append(slots, mentionSlot{m: &mentions[i], idx: i, sentence: s})
		}
	}

	buf := c.buf[:0]
	var placements []Placement
	if len(slots) > 0 {
		placements = make([]Placement, 0, len(slots))
	}
	for s := 0; s < numSentences; s++ {
		if s > 0 {
			if s%4 == 0 {
				buf = append(buf, "\n\n"...)
			} else {
				buf = append(buf, ' ')
			}
		}
		var m *Mention
		idx := -1
		if si := bySent[s]; si >= 0 {
			m, idx = slots[si].m, slots[si].idx
		}
		var offset int
		buf, offset = w.composeSentence(buf, topic, m, opts, rng)
		if m != nil && offset >= 0 {
			placements = append(placements, Placement{MentionIndex: idx, Offset: offset})
		}
	}
	text := string(buf)
	c.buf = buf
	c.slots = slots
	composePool.Put(c)
	return text, placements
}

// composeSentence appends one sentence to buf, returning the grown buffer
// and the byte offset where the mention name was written (-1 if no
// mention).
func (w *World) composeSentence(buf []byte, topic *Topic, m *Mention, opts ComposeOptions, rng *rand.Rand) ([]byte, int) {
	length := opts.WordsPerSentence/2 + rng.Intn(opts.WordsPerSentence)
	if length < 4 {
		length = 4
	}
	mentionAt := -1
	if m != nil {
		mentionAt = rng.Intn(length)
	}
	mentionOffset := -1
	first := true
	for i := 0; i < length; i++ {
		if !first {
			buf = append(buf, ' ')
		}
		switch {
		case i == mentionAt:
			name := m.Concept.Name
			if m.Concept.Type != TypeNone {
				name = TitleCase(name)
			}
			if first {
				name = TitleCase(name)
			}
			mentionOffset = len(buf)
			buf = append(buf, name...)
		case m != nil && m.Relevant && m.Concept.Topic >= 0 && rng.Float64() < opts.ContextDensity*densityScale(m)*(0.3+0.7*m.Concept.Specificity):
			// Relevant mentions pull in the concept's own context terms;
			// how strongly depends on specificity, which is what makes
			// snippet mining cluster for specific concepts.
			ct := m.Concept.ContextTerms
			buf = appendWord(buf, ct[rng.Intn(len(ct))], first)
		case rng.Float64() < 0.22:
			buf = appendWord(buf, connectives[rng.Intn(len(connectives))], first)
		default:
			buf = appendWord(buf, w.SampleTerm(topic, rng), first)
		}
		first = false
	}
	buf = append(buf, '.')
	return buf, mentionOffset
}

// appendWord appends word, capitalizing the leading ASCII letter in place
// when cap is set — the allocation-free equivalent of the old
// ToUpper(word[:1]) + word[1:] (the generated vocabulary is ASCII).
func appendWord(buf []byte, word string, cap bool) []byte {
	at := len(buf)
	buf = append(buf, word...)
	if cap && len(word) > 0 && word[0] >= 'a' && word[0] <= 'z' {
		buf[at] = word[0] - 'a' + 'A'
	}
	return buf
}

func densityScale(m *Mention) float64 {
	if m.DensityScale == 0 {
		return 1
	}
	return m.DensityScale
}
