package core

import (
	"testing"

	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

// The whole-system reproducibility guarantee: two builds from the same
// configuration must be indistinguishable — same click data, same mined
// keywords, same trained model, same experiment results.
func TestSystemDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := Config{
		Seed:   777,
		World:  world.Config{VocabSize: 1200, NumTopics: 6, NumConcepts: 120},
		Corpus: searchsim.CorpusConfig{MaxDocsPerConcept: 12},
		News:   newsgen.Config{NumStories: 80},
	}
	a, b := Build(cfg), Build(cfg)

	if sa, sb := a.DataStats(), b.DataStats(); sa != sb {
		t.Fatalf("data stats differ: %+v vs %+v", sa, sb)
	}
	// Click labels identical.
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.Text != gb.Text || len(ga.Entities) != len(gb.Entities) {
			t.Fatalf("group %d differs", i)
		}
		for j := range ga.Entities {
			if ga.Entities[j].Clicks != gb.Entities[j].Clicks {
				t.Fatalf("group %d entity %d clicks differ", i, j)
			}
		}
	}
	// Mined keywords identical.
	sa := a.RelevanceStore(relevance.Snippets)
	sb := b.RelevanceStore(relevance.Snippets)
	for _, name := range sa.Concepts()[:30] {
		ta, tb := sa.RelevantTerms(name), sb.RelevantTerms(name)
		if len(ta) != len(tb) {
			t.Fatalf("%q keyword counts differ", name)
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("%q keyword %d differs", name, j)
			}
		}
	}
	// Trained models identical (same weights).
	ma := &LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 1}}
	mb := &LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 1}}
	if err := ma.Fit(a.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		t.Fatal(err)
	}
	if err := mb.Fit(b.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		t.Fatal(err)
	}
	wa, wb := ma.Model().Weights, mb.Model().Weights
	if len(wa) != len(wb) {
		t.Fatalf("model dims differ: %d vs %d", len(wa), len(wb))
	}
	for d := range wa {
		if wa[d] != wb[d] { //kwlint:ignore floatcompare — determinism test asserts bit-exact weights across runs
			t.Fatalf("model weight %d differs: %v vs %v", d, wa[d], wb[d])
		}
	}
}
