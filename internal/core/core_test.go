package core

import (
	"testing"

	"contextrank/internal/features"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/searchsim"
	"contextrank/internal/world"
)

// testSystem builds a small but statistically meaningful system (shared
// across tests in this package via sync-free lazy init under `go test`'s
// sequential default).
var cachedSystem *System

func testSystem(t testing.TB) *System {
	t.Helper()
	if cachedSystem == nil {
		cachedSystem = Build(Config{
			Seed:   1000,
			World:  world.Config{VocabSize: 2000, NumTopics: 10, NumConcepts: 300},
			Corpus: searchsim.CorpusConfig{MaxDocsPerConcept: 18},
			News:   newsgen.Config{NumStories: 250},
		})
	}
	return cachedSystem
}

func TestBuildSystemShape(t *testing.T) {
	s := testSystem(t)
	if err := s.World.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Cleaned) == 0 || len(s.Groups) == 0 {
		t.Fatalf("no cleaned reports (%d) or groups (%d)", len(s.Cleaned), len(s.Groups))
	}
	if len(s.Cleaned) >= len(s.Reports) {
		t.Fatal("cleaning removed nothing")
	}
	if len(s.Groups) < len(s.Cleaned) {
		t.Fatal("windowing lost stories")
	}
}

func TestDatasetConstruction(t *testing.T) {
	s := testSystem(t)
	groups := s.Dataset([]relevance.Resource{relevance.Snippets})
	if len(groups) != len(s.Groups) {
		t.Fatalf("dataset groups %d != window groups %d", len(groups), len(s.Groups))
	}
	for _, g := range groups {
		if len(g.Examples) < 2 {
			t.Fatal("group with < 2 examples")
		}
		for _, ex := range g.Examples {
			if ex.CTR < 0 || ex.CTR > 1 {
				t.Fatalf("CTR out of range: %v", ex.CTR)
			}
			if ex.RelScore == nil {
				t.Fatal("missing relevance scores")
			}
			if ex.Fields.NumberOfChars == 0 {
				t.Fatal("missing fields")
			}
		}
	}
}

func TestFieldsCached(t *testing.T) {
	s := testSystem(t)
	name := s.World.Concepts[0].Name
	f1 := s.Fields(name)
	f2 := s.Fields(name)
	if f1 != f2 {
		t.Fatal("cache returned different values")
	}
}

// The headline reproduction property (Tables III-V shape): random ≈ 50%,
// baseline well below random, learned interestingness below baseline, and
// interestingness+relevance best of all.
func TestMethodOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	groups := s.Dataset([]relevance.Resource{relevance.Snippets})

	random, err := CrossValidate(groups, &RandomMethod{Seed: 1}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := CrossValidate(groups, &ConceptVectorMethod{Scorer: s.Baseline}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	interest, err := CrossValidate(groups, &LearnedMethod{Options: ranksvm.Options{Seed: 3}}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := CrossValidate(groups, &LearnedMethod{
		UseRelevance: true,
		Resource:     relevance.Snippets,
		Options:      ranksvm.Options{Seed: 3},
	}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("random:   %v", random)
	t.Logf("baseline: %v", baseline)
	t.Logf("interest: %v", interest)
	t.Logf("combined: %v", combined)

	if random.WeightedErrorRate < 0.45 || random.WeightedErrorRate > 0.55 {
		t.Errorf("random weighted error = %.3f, want ~0.5", random.WeightedErrorRate)
	}
	if baseline.WeightedErrorRate >= random.WeightedErrorRate {
		t.Errorf("baseline (%.3f) should beat random (%.3f)", baseline.WeightedErrorRate, random.WeightedErrorRate)
	}
	if interest.WeightedErrorRate >= baseline.WeightedErrorRate {
		t.Errorf("interestingness model (%.3f) should beat baseline (%.3f)", interest.WeightedErrorRate, baseline.WeightedErrorRate)
	}
	if combined.WeightedErrorRate >= interest.WeightedErrorRate {
		t.Errorf("combined (%.3f) should beat interestingness-only (%.3f)", combined.WeightedErrorRate, interest.WeightedErrorRate)
	}
	// NDCG trends the same way.
	if combined.NDCG[1] <= random.NDCG[1] {
		t.Errorf("combined ndcg@1 (%.3f) should beat random (%.3f)", combined.NDCG[1], random.NDCG[1])
	}
}

func TestRelevanceMethodBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	groups := s.Dataset([]relevance.Resource{relevance.Snippets})
	random, _ := CrossValidate(groups, &RandomMethod{Seed: 1}, 5, 2)
	rel, err := CrossValidate(groups, &RelevanceMethod{Resource: relevance.Snippets}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("relevance-only: %v", rel)
	if rel.WeightedErrorRate >= random.WeightedErrorRate {
		t.Errorf("relevance-only (%.3f) should beat random (%.3f)", rel.WeightedErrorRate, random.WeightedErrorRate)
	}
}

func TestAblationChangesDim(t *testing.T) {
	s := testSystem(t)
	groups := s.Dataset(nil)
	m := &LearnedMethod{FeatureGroups: features.Without(features.GroupQueryLogs), Options: ranksvm.Options{Seed: 5, MaxIter: 20}}
	// Fit on a small slice just to exercise the path.
	if err := m.Fit(groups[:10]); err != nil {
		t.Fatal(err)
	}
	scores := m.Score(&groups[0])
	if len(scores) != len(groups[0].Examples) {
		t.Fatal("score length mismatch")
	}
}

func TestRandomMethodDeterministic(t *testing.T) {
	s := testSystem(t)
	groups := s.Dataset(nil)
	r1, _ := CrossValidate(groups[:20], &RandomMethod{Seed: 9}, 5, 1)
	r2, _ := CrossValidate(groups[:20], &RandomMethod{Seed: 9}, 5, 1)
	if r1.WeightedErrorRate != r2.WeightedErrorRate { //kwlint:ignore floatcompare — determinism test asserts bit-exact replay under a fixed seed
		t.Fatal("random method not deterministic under fixed seed")
	}
}

func TestAllCTRs(t *testing.T) {
	s := testSystem(t)
	groups := s.Dataset(nil)
	ctrs := AllCTRs(groups)
	n := 0
	for _, g := range groups {
		n += len(g.Examples)
	}
	if len(ctrs) != n {
		t.Fatalf("AllCTRs = %d, want %d", len(ctrs), n)
	}
}
