package core

import (
	"testing"

	"contextrank/internal/features"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

func TestTable2Shape(t *testing.T) {
	s := testSystem(t)
	top, bottom := s.Table2(3)
	if len(top) != 3 || len(bottom) != 3 {
		t.Fatalf("Table2 sizes: %d/%d", len(top), len(bottom))
	}
	if top[0].Summation < bottom[len(bottom)-1].Summation {
		t.Fatal("top summation below bottom")
	}
	// The paper's qualitative claim: low-quality phrases cluster at the
	// bottom of the summation ranking. Check the average rank position.
	store := s.RelevanceStore(relevance.Snippets)
	var lowqSum, lowqN, otherSum, otherN float64
	for i := range s.World.Concepts {
		c := &s.World.Concepts[i]
		sum := store.Summation(c.Name)
		if c.LowQuality() {
			lowqSum += sum
			lowqN++
		} else if c.Specificity > 0.7 && c.Quality > 0.6 {
			otherSum += sum
			otherN++
		}
	}
	if lowqN > 0 && otherN > 0 && otherSum/otherN <= lowqSum/lowqN {
		t.Fatalf("specific concepts (%.0f) should out-sum low-quality (%.0f)",
			otherSum/otherN, lowqSum/lowqN)
	}
}

func TestTable3AblationsComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	t3, err := s.Table3(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Ablations) != int(features.NumGroups) {
		t.Fatalf("ablations = %d, want %d", len(t3.Ablations), features.NumGroups)
	}
	// Removing the query-log group must hurt the most (the paper's largest
	// single-group effect, Table III).
	base := t3.AllFeatures.WeightedErrorRate
	worst := features.Group(0)
	for g, r := range t3.Ablations {
		if r.WeightedErrorRate > t3.Ablations[worst].WeightedErrorRate {
			worst = g
		}
	}
	if worst != features.GroupQueryLogs {
		t.Logf("warning: worst ablation was %v, paper's was Query Logs", worst)
	}
	if t3.Ablations[features.GroupQueryLogs].WeightedErrorRate <= base {
		t.Errorf("removing query logs should hurt: %.3f vs full %.3f",
			t3.Ablations[features.GroupQueryLogs].WeightedErrorRate, base)
	}
}

func TestTable4AllResourcesBeatRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	t4, err := s.Table4(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for r, res := range t4.ByResource {
		if res.WeightedErrorRate >= t4.Random.WeightedErrorRate {
			t.Errorf("%v (%.3f) does not beat random (%.3f)", r, res.WeightedErrorRate, t4.Random.WeightedErrorRate)
		}
	}
}

func TestTable5CombinedBest(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	t5, err := s.Table5(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if t5.Combined.WeightedErrorRate >= t5.ConceptVector.WeightedErrorRate {
		t.Errorf("combined (%.3f) must beat baseline (%.3f)",
			t5.Combined.WeightedErrorRate, t5.ConceptVector.WeightedErrorRate)
	}
	if t5.Combined.WeightedErrorRate >= t5.BestInterest.WeightedErrorRate {
		t.Errorf("combined (%.3f) must beat interestingness-only (%.3f)",
			t5.Combined.WeightedErrorRate, t5.BestInterest.WeightedErrorRate)
	}
	if t5.CombinedRBF.WeightedErrorRate >= t5.Random.WeightedErrorRate {
		t.Errorf("RBF kernel model failed to learn: %.3f", t5.CombinedRBF.WeightedErrorRate)
	}
}

func TestTable6RankedBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	t6, err := s.Table6(EditorialConfig{Seed: 7, NewsDocs: 80, AnswersDocs: 120})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table VI claims: the ranking algorithm raises
	// Very-Interesting and Very-Relevant shares and lowers the bad share on
	// both content types.
	if t6.NewsRanked.InterestPct(0) <= t6.NewsCV.InterestPct(0) {
		t.Errorf("news very-interesting: ranked %.1f <= baseline %.1f",
			t6.NewsRanked.InterestPct(0), t6.NewsCV.InterestPct(0))
	}
	if t6.AnswersRanked.InterestPct(0) <= t6.AnswersCV.InterestPct(0) {
		t.Errorf("answers very-interesting: ranked %.1f <= baseline %.1f",
			t6.AnswersRanked.InterestPct(0), t6.AnswersCV.InterestPct(0))
	}
	badCV := (t6.NewsCV.BadPct() + t6.AnswersCV.BadPct()) / 2
	badRanked := (t6.NewsRanked.BadPct() + t6.AnswersRanked.BadPct()) / 2
	if badRanked >= badCV {
		t.Errorf("bad-term share: ranked %.1f%% >= baseline %.1f%%", badRanked, badCV)
	}
}

func TestProductionExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	p, err := s.ProductionExperiment(3, 150, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.BaselineViews == 0 || p.BaselineClicks == 0 {
		t.Fatalf("baseline period empty: %+v", p)
	}
	// §V-C shape: views drop sharply, clicks drop far less, CTR rises.
	if p.ViewsChangePct() > -30 {
		t.Errorf("views change %.1f%%, expected a large drop", p.ViewsChangePct())
	}
	if p.ClicksChangePct() <= p.ViewsChangePct() {
		t.Errorf("clicks (%.1f%%) should drop less than views (%.1f%%)",
			p.ClicksChangePct(), p.ViewsChangePct())
	}
	if p.CTRChangePct() <= 0 {
		t.Errorf("CTR change %.1f%%, expected improvement", p.CTRChangePct())
	}
}

func TestGroupFromStory(t *testing.T) {
	s := testSystem(t)
	story := &s.Stories[0]
	g := s.GroupFromStory(story, []relevance.Resource{relevance.Snippets})
	if len(g.Examples) != len(story.Mentions) {
		t.Fatalf("examples %d != mentions %d", len(g.Examples), len(story.Mentions))
	}
	for _, ex := range g.Examples {
		if ex.RelScore == nil || ex.RelNorm == nil {
			t.Fatal("relevance scores missing")
		}
		if ex.RelNorm[relevance.Snippets] < 0 || ex.RelNorm[relevance.Snippets] > 1 {
			t.Fatalf("normalized relevance out of [0,1]: %v", ex.RelNorm[relevance.Snippets])
		}
	}
}

func TestDataStats(t *testing.T) {
	s := testSystem(t)
	st := s.DataStats()
	if st.CleanStories == 0 || st.CleanStories > st.RawStories {
		t.Fatalf("story counts: %+v", st)
	}
	if st.Windows < st.CleanStories {
		t.Fatalf("windows %d < stories %d", st.Windows, st.CleanStories)
	}
	if st.Concepts == 0 || st.Clicks == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCompareMethodsSignificance(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	groups := s.Dataset([]relevance.Resource{relevance.Snippets})
	// A real difference: learned combined model vs random ordering.
	sig, err := CompareMethods(groups,
		&LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 3}},
		&RandomMethod{Seed: 3},
		3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sig.DeltaObserved >= 0 {
		t.Fatalf("learned model should have lower error than random: %+v", sig)
	}
	if !sig.Significant() {
		t.Fatalf("huge difference not significant: %+v", sig)
	}
	// A null difference: the same method against itself.
	null, err := CompareMethods(groups,
		&RandomMethod{Seed: 5}, &RandomMethod{Seed: 5}, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if null.DeltaObserved != 0 {
		t.Fatalf("identical methods differ: %+v", null)
	}
	if null.Significant() {
		t.Fatalf("null difference reported significant: %+v", null)
	}
}
