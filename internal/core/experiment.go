package core

import (
	"fmt"

	"contextrank/internal/eval"
	"contextrank/internal/par"
)

// Result is the outcome of evaluating one method: the paper's two metrics.
type Result struct {
	// Method is the evaluated method's name.
	Method string
	// WeightedErrorRate is Eq. 5 over all test preference pairs.
	WeightedErrorRate float64
	// ErrorRate is the unweighted pairwise error rate.
	ErrorRate float64
	// NDCG maps k -> mean NDCG@k over test groups (k = 1, 2, 3 as in the
	// figures).
	NDCG map[int]float64
}

// String formats the result like a row of the paper's tables.
func (r Result) String() string {
	return fmt.Sprintf("%-32s weighted=%6.2f%%  plain=%6.2f%%  ndcg@1=%.3f ndcg@2=%.3f ndcg@3=%.3f",
		r.Method, 100*r.WeightedErrorRate, 100*r.ErrorRate, r.NDCG[1], r.NDCG[2], r.NDCG[3])
}

// NDCGKs are the cutoffs reported in Figures 1-3.
var NDCGKs = []int{1, 2, 3}

// CrossValidate evaluates a method with k-fold cross-validation over
// groups, the paper's protocol ("we randomly partitioned our document set
// into five subsets, used four subsets for training and the remaining
// subset for testing ... repeated five times"). Static methods are fitted
// once per fold too (a no-op) so the same code path measures everything.
// The NDCG bucketizer is built from all CTRs in the dataset.
//
// Folds run serially; CrossValidateWorkers fans them out.
func CrossValidate(groups []Group, m Method, folds int, seed int64) (Result, error) {
	return CrossValidateWorkers(groups, m, folds, seed, 1)
}

// foldEval is one fold's evaluation partials, merged in fold order.
type foldEval struct {
	acc     eval.Accumulator
	ndcgSum map[int]float64
	ndcgN   int
}

// CrossValidateWorkers is CrossValidate with the folds fanned out across
// workers (par.Workers semantics: 1 = serial, 0 = all cores). Each fold
// fits its own clone of the method (see Cloneable) and evaluates its test
// groups in index order; the per-fold partials are merged in fold order,
// so the result is bit-identical for every worker count. Methods that do
// not implement Cloneable fall back to serial folds.
func CrossValidateWorkers(groups []Group, m Method, folds int, seed int64, workers int) (Result, error) {
	if folds <= 0 {
		folds = 5
	}
	bucketizer := eval.NewBucketizer(AllCTRs(groups))
	judge := bucketizer.Judgement
	foldIdx := eval.KFold(len(groups), folds, seed)

	cloner, cloneable := m.(Cloneable)
	if !cloneable {
		workers = 1
	}

	evalFold := func(f int) (foldEval, error) {
		method := m
		if cloneable {
			method = cloner.CloneMethod()
		}
		test := foldIdx[f]
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var train []Group
		for i := range groups {
			if !inTest[i] {
				train = append(train, groups[i])
			}
		}
		fe := foldEval{ndcgSum: make(map[int]float64, len(NDCGKs))}
		if err := method.Fit(train); err != nil {
			return fe, fmt.Errorf("fold %d: %w", f, err)
		}
		for _, i := range test {
			g := &groups[i]
			pred := method.Score(g)
			truth := g.CTRs()
			fe.acc.Add(pred, truth)
			for _, k := range NDCGKs {
				fe.ndcgSum[k] += eval.NDCG(pred, truth, k, judge)
			}
			fe.ndcgN++
		}
		return fe, nil
	}

	partials, err := par.MapErr(workers, len(foldIdx), evalFold)
	if err != nil {
		return Result{}, err
	}

	var acc eval.Accumulator
	ndcgSum := make(map[int]float64, len(NDCGKs))
	ndcgN := 0
	for _, fe := range partials {
		acc.Merge(fe.acc)
		for _, k := range NDCGKs {
			ndcgSum[k] += fe.ndcgSum[k]
		}
		ndcgN += fe.ndcgN
	}

	res := Result{
		Method:            m.Name(),
		WeightedErrorRate: acc.WeightedErrorRate(),
		ErrorRate:         acc.ErrorRate(),
		NDCG:              make(map[int]float64, len(NDCGKs)),
	}
	for _, k := range NDCGKs {
		res.NDCG[k] = ndcgSum[k] / float64(ndcgN)
	}
	return res, nil
}

// CompareMethods cross-validates two methods on identical folds and runs a
// paired bootstrap over the test documents to decide whether the weighted
// error difference is statistically significant. Negative DeltaObserved
// means method a is better.
func CompareMethods(groups []Group, a, b Method, folds int, seed int64) (eval.BootstrapResult, error) {
	if folds <= 0 {
		folds = 5
	}
	var docs []eval.DocPair
	foldIdx := eval.KFold(len(groups), folds, seed)
	for f := 0; f < len(foldIdx); f++ {
		test := foldIdx[f]
		inTest := make(map[int]bool, len(test))
		for _, i := range test {
			inTest[i] = true
		}
		var train []Group
		for i := range groups {
			if !inTest[i] {
				train = append(train, groups[i])
			}
		}
		if err := a.Fit(train); err != nil {
			return eval.BootstrapResult{}, fmt.Errorf("fold %d (%s): %w", f, a.Name(), err)
		}
		if err := b.Fit(train); err != nil {
			return eval.BootstrapResult{}, fmt.Errorf("fold %d (%s): %w", f, b.Name(), err)
		}
		for _, i := range test {
			g := &groups[i]
			docs = append(docs, eval.DocPair{
				PredA: a.Score(g),
				PredB: b.Score(g),
				Truth: g.CTRs(),
			})
		}
	}
	return eval.PairedBootstrap(docs, 1000, seed+1), nil
}
