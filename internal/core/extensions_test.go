package core

import (
	"math"
	"math/rand"
	"testing"

	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/newsgen"
	"contextrank/internal/online"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/world"
)

// The paper's feature-selection negative result: the eliminated candidates
// must not improve the model materially (we allow a small tolerance in
// either direction — the paper dropped them because they did not help).
func TestFeatureSelectionEliminatedCandidates(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	selected, withEliminated, err := s.FeatureSelection(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("selected:        %v", selected)
	t.Logf("with eliminated: %v", withEliminated)
	improvement := selected.WeightedErrorRate - withEliminated.WeightedErrorRate
	if improvement > 0.03 {
		t.Errorf("eliminated features improved error by %.3f — the paper's selection would have kept them", improvement)
	}
}

func TestSenseExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)
	global, sense, n := s.SenseExperiment(2)
	if n == 0 {
		t.Skip("no ambiguous mentions in click corpus")
	}
	t.Logf("ambiguous mentions=%d global coverage=%.3f sense coverage=%.3f", n, global, sense)
	if sense <= 0 {
		t.Fatal("sense coverage must be positive when mentions exist")
	}
	if math.IsNaN(global) || math.IsNaN(sense) {
		t.Fatal("NaN coverage")
	}
}

func TestRunBreakingNews(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSystem(t)

	learned := &LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 3}}
	if err := learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.Fields(n) })
	packs := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	rt := framework.NewRuntime(s.Pipeline, table, packs, learned.Model())

	// Pick a cold, detectable concept and compose a document mentioning it
	// alongside hot concepts.
	var cold, hot *world.Concept
	for i := range s.World.Concepts {
		c := &s.World.Concepts[i]
		if c.LowQuality() || c.Topic < 0 {
			continue
		}
		if s.Units.Lookup(c.Name) == nil || s.Units.Score(c.Name) < 0.35 {
			continue
		}
		if cold == nil || c.Interest < cold.Interest {
			if c != hot {
				cold = c
			}
		}
		if hot == nil || c.Interest > hot.Interest {
			hot = c
		}
	}
	if cold == nil || hot == nil || cold == hot {
		t.Skip("no suitable concept pair")
	}
	stories := newsgen.Generate(s.World, newsgen.Config{Seed: 987, NumStories: 1})
	rng := rand.New(rand.NewSource(5))
	doc, _ := s.World.ComposeDoc(world.ComposeOptions{Topic: cold.Topic, Sentences: 12},
		[]world.Mention{
			{Concept: cold, Relevant: true, Repeat: 2},
			{Concept: hot, Relevant: hot.Topic == cold.Topic},
		}, rng)
	_ = stories

	tracker := online.NewTracker(online.Config{HalfLifeTicks: 4, MinViews: 50, MaxBoost: 6})
	tracker.SetBaseline(cold.Name, 0.005)
	adj := online.NewAdjuster(rt, tracker, 3)

	result := RunBreakingNews(adj, tracker, cold.Name, doc, 11)
	t.Logf("breaking news: static=%d boosted=%d decayed=%d", result.StaticRank, result.BoostedRank, result.DecayedRank)
	if result.BoostedRank > result.StaticRank {
		t.Errorf("spike did not improve rank: %d -> %d", result.StaticRank, result.BoostedRank)
	}
	if result.BoostedRank != 1 {
		t.Errorf("viral concept should reach rank 1 during the spike, got %d", result.BoostedRank)
	}
	if result.DecayedRank < result.BoostedRank {
		t.Errorf("rank should sink after the spike: boosted=%d decayed=%d", result.BoostedRank, result.DecayedRank)
	}
}
