package core

import (
	"contextrank/internal/features"
	"contextrank/internal/relevance"
	"contextrank/internal/world"
)

// Example is one annotated entity in one window: the ranking unit. The
// label is the observed CTR; features come from the offline stores.
type Example struct {
	// Concept is the annotated concept.
	Concept *world.Concept
	// CTR is the observed click-through rate (clicks / window views).
	CTR float64
	// Clicks and Views are the raw counts behind CTR.
	Clicks, Views int
	// Position is the byte offset within the window.
	Position int
	// Relevant is the hidden ground-truth relevance (never exposed to
	// rankers; used by the editorial simulator).
	Relevant bool
	// Degree is the hidden graded relevance in [0,1].
	Degree float64
	// Fields is the interestingness feature record.
	Fields features.Fields
	// Extended carries the paper's eliminated candidate features, used only
	// by the feature-selection experiment.
	Extended features.ExtendedFields
	// RelScore holds the context relevance score per mining resource.
	RelScore map[relevance.Resource]float64
	// RelNorm holds the coverage-normalized relevance score per resource.
	RelNorm map[relevance.Resource]float64
}

// Group is one ranking problem: the entities of one window plus the window
// text (needed by the concept-vector baseline).
type Group struct {
	// ID is a dense group identifier.
	ID int
	// StoryID and WindowIndex locate the group.
	StoryID, WindowIndex int
	// Text is the window content.
	Text string
	// Views is the window's (story's) view count.
	Views int
	// Examples are the entities to rank.
	Examples []Example
}

// CTRs returns the observed CTR labels of the group's examples.
func (g *Group) CTRs() []float64 {
	out := make([]float64, len(g.Examples))
	for i := range g.Examples {
		out[i] = g.Examples[i].CTR
	}
	return out
}

// boundStore is a relevance store paired with a pooled id-keyed context,
// the unit the feature joins iterate over (always in the caller's resource
// order, never map order). Release returns the contexts to their pools.
type boundStore struct {
	r   relevance.Resource
	st  *relevance.Store
	ctx *relevance.Ctx
}

// bindStores resolves (and lazily mines) the requested stores, deduplicated
// in first-seen order, each with a pooled context scorer.
func (s *System) bindStores(resources []relevance.Resource) []boundStore {
	out := make([]boundStore, 0, len(resources))
	for _, r := range resources {
		dup := false
		for _, b := range out {
			if b.r == r {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		st := s.RelevanceStore(r)
		out = append(out, boundStore{r: r, st: st, ctx: st.AcquireCtx()})
	}
	return out
}

func releaseStores(stores []boundStore) {
	for _, b := range stores {
		b.st.ReleaseCtx(b.ctx)
	}
}

// Dataset materializes the ranking dataset from the system's window groups,
// attaching interestingness features and the relevance scores for the given
// resources (pass nil for interestingness-only experiments). This is the
// offline feature join the paper performs before training.
func (s *System) Dataset(resources []relevance.Resource) []Group {
	stores := s.bindStores(resources)
	defer releaseStores(stores)
	// Batch-extract the features of every concept in the click data across
	// workers before the serial join below — extraction dominates the join.
	var names []string
	for _, wg := range s.Groups {
		for _, e := range wg.Entities {
			names = append(names, e.Concept.Name)
		}
	}
	s.WarmFields(names)
	s.WarmExtendedFields(names)
	groups := make([]Group, 0, len(s.Groups))
	for gi, wg := range s.Groups {
		g := Group{
			ID:          gi,
			StoryID:     wg.StoryID,
			WindowIndex: wg.WindowIndex,
			Text:        wg.Text,
			Views:       wg.Views,
		}
		for _, e := range wg.Entities {
			ex := Example{
				Concept:  e.Concept,
				CTR:      e.CTR(wg.Views),
				Clicks:   e.Clicks,
				Views:    wg.Views,
				Position: e.Position,
				Relevant: e.Relevant,
				Degree:   e.Degree,
				Fields:   s.Fields(e.Concept.Name),
				Extended: s.ExtendedFields(e.Concept.Name),
			}
			if len(stores) > 0 {
				// Relevance is scored against the mention's surrounding
				// context ("co-occurrences of the pre-mined keywords and
				// the given concept in the context"), not the whole window.
				ex.RelScore = make(map[relevance.Resource]float64, len(stores))
				ex.RelNorm = make(map[relevance.Resource]float64, len(stores))
				for _, b := range stores {
					b.ctx.SetAround(wg.Text, e.Position, 0)
					ex.RelScore[b.r] = b.st.ScoreCtx(e.Concept.Name, b.ctx)
					ex.RelNorm[b.r] = b.st.NormalizedScoreCtx(e.Concept.Name, b.ctx)
				}
			}
			g.Examples = append(g.Examples, ex)
		}
		groups = append(groups, g)
	}
	return groups
}

// AllCTRs collects every CTR label across groups (for the NDCG bucketizer,
// which the paper builds from "all the CTR values observed in the system").
func AllCTRs(groups []Group) []float64 {
	var out []float64
	for i := range groups {
		for j := range groups[i].Examples {
			out = append(out, groups[i].Examples[j].CTR)
		}
	}
	return out
}
