// Package core assembles the full Contextual Shortcuts reproduction: it
// builds the synthetic world and every mined resource on top of it, turns
// the simulated click reports into labeled ranking datasets, implements the
// ranking methods the paper compares (random, concept-vector baseline,
// relevance-only, learned interestingness, learned combined), and drives the
// cross-validated evaluation that regenerates the paper's tables and
// figures.
package core

import (
	"sync"

	"contextrank/internal/clicksim"
	"contextrank/internal/conceptvec"
	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/newsgen"
	"contextrank/internal/querylog"
	"contextrank/internal/relevance"
	"contextrank/internal/searchsim"
	"contextrank/internal/taxonomy"
	"contextrank/internal/units"
	"contextrank/internal/wiki"
	"contextrank/internal/world"
)

// Config parameterizes a full system build. The zero value produces a
// laptop-scale world with the paper's approximate data volume. Sub-config
// seeds left at zero are derived from Seed.
type Config struct {
	Seed     int64
	World    world.Config
	QueryLog querylog.Config
	Units    units.Config
	Corpus   searchsim.CorpusConfig
	Wiki     wiki.Config
	News     newsgen.Config
	Click    clicksim.Config

	// Workers bounds the fan-out of every parallel stage (corpus build,
	// feature extraction, relevance mining, cross-validation folds,
	// per-story judging): 1 forces fully serial execution, 0 selects all
	// cores (runtime.NumCPU). Every stage collects results in input order
	// from per-index derived seeds, so all values produce bit-identical
	// output — the knob trades wall-clock for cores, never results.
	Workers int
}

func (c Config) withDerivedSeeds() Config {
	if c.World.Seed == 0 {
		c.World.Seed = c.Seed + 1
	}
	if c.QueryLog.Seed == 0 {
		c.QueryLog.Seed = c.Seed + 2
	}
	if c.Corpus.Seed == 0 {
		c.Corpus.Seed = c.Seed + 3
	}
	if c.Corpus.Workers == 0 {
		c.Corpus.Workers = c.Workers
	}
	if c.Wiki.Seed == 0 {
		c.Wiki.Seed = c.Seed + 4
	}
	if c.News.Seed == 0 {
		c.News.Seed = c.Seed + 5
	}
	if c.Click.Seed == 0 {
		c.Click.Seed = c.Seed + 6
	}
	// Normalize the click model so code that evaluates TrueCTR directly
	// (the production experiment) sees the same parameters the simulation
	// used.
	c.Click = c.Click.WithDefaults()
	return c
}

// System is the fully-built reproduction: all substrates plus the simulated
// click traffic.
type System struct {
	Config Config

	World     *world.World
	Log       *querylog.Log
	Units     *units.Set
	Engine    *searchsim.Engine
	Wiki      *wiki.Encyclopedia
	Dict      *taxonomy.Dictionary
	Extractor *features.Extractor
	Miner     *relevance.Miner
	Baseline  *conceptvec.Scorer
	Pipeline  *detect.Pipeline

	Stories []newsgen.Story
	Reports []clicksim.Report // raw, before cleaning
	Cleaned []clicksim.Report
	Groups  []clicksim.WindowGroup

	// cacheMu guards the lazily-filled feature caches, which are hit by
	// concurrent experiment workers, so every access goes through the
	// accessors below.
	cacheMu sync.RWMutex
	//kw:guardedby(cacheMu)
	fieldsCache map[string]features.Fields
	//kw:guardedby(cacheMu)
	extendedCache map[string]features.ExtendedFields

	// relStores are the lazily-mined relevance stores, one slot per
	// Resource with its own once-guard: concurrent requests for the same
	// resource build once, while different resources mine concurrently —
	// under the previous single mutex a Prisma build serialized behind an
	// in-flight Snippets build.
	relOnce   [relevance.NumResources]sync.Once
	relStores [relevance.NumResources]*relevance.Store
}

// Build generates the world and every resource, mirroring the paper's
// offline pipeline: query log → units → web corpus/index → Wikipedia →
// dictionaries → news stories → click sampling → cleaning → windowing.
func Build(cfg Config) *System {
	cfg = cfg.withDerivedSeeds()
	s := &System{Config: cfg}
	s.World = world.New(cfg.World)
	s.Log = querylog.Generate(s.World, cfg.QueryLog)
	s.Units = units.Extract(s.Log, cfg.Units)
	s.Engine = searchsim.BuildCorpus(s.World, cfg.Corpus)
	s.Wiki = wiki.Build(s.World, cfg.Wiki)
	s.Dict = taxonomy.Build(s.World, cfg.Seed+7)
	s.Extractor = features.NewExtractor(s.Log, s.Units, s.Engine, s.Wiki, s.Dict)
	s.Miner = relevance.NewMiner(s.Engine, searchsim.NewPrisma(s.Engine), searchsim.NewSuggestor(s.Log))
	s.Baseline = conceptvec.New(s.Engine.Dictionary(), s.Units, conceptvec.Options{})
	s.Pipeline = detect.New(s.Dict, s.Units)

	s.Stories = newsgen.Generate(s.World, cfg.News)
	s.Reports = clicksim.Simulate(s.Stories, cfg.Click)
	s.Cleaned = clicksim.Clean(s.Reports)
	s.Groups = clicksim.Windows(s.Cleaned, 0, 0) // paper defaults 2500/500

	s.fieldsCache = make(map[string]features.Fields)
	s.extendedCache = make(map[string]features.ExtendedFields)
	return s
}

// Fields returns the (cached) interestingness feature record for a concept.
// Safe for concurrent callers; a cache miss recomputes outside the lock
// (the record is a pure function of read-only resources, so a racing
// double-compute stores the same value).
func (s *System) Fields(concept string) features.Fields {
	s.cacheMu.RLock()
	f, ok := s.fieldsCache[concept]
	s.cacheMu.RUnlock()
	if ok {
		return f
	}
	f = s.Extractor.Fields(concept)
	s.cacheMu.Lock()
	s.fieldsCache[concept] = f
	s.cacheMu.Unlock()
	return f
}

// ExtendedFields returns the (cached) eliminated candidate features for a
// concept (see features.ExtendedFields). Safe for concurrent callers.
func (s *System) ExtendedFields(concept string) features.ExtendedFields {
	s.cacheMu.RLock()
	x, ok := s.extendedCache[concept]
	s.cacheMu.RUnlock()
	if ok {
		return x
	}
	x = s.Extractor.Extended(concept)
	s.cacheMu.Lock()
	s.extendedCache[concept] = x
	s.cacheMu.Unlock()
	return x
}

// WarmFields batch-extracts the feature records of every listed concept
// not already cached, fanning the extraction across Config.Workers. The
// cache ends up in the same state as serial lazy filling — warming is a
// pure wall-clock optimization.
func (s *System) WarmFields(concepts []string) {
	missing := s.missingFrom(concepts, func(c string) bool {
		_, ok := s.fieldsCache[c]
		return ok
	})
	if len(missing) == 0 {
		return
	}
	fields := s.Extractor.BatchFields(missing, s.Config.Workers)
	s.cacheMu.Lock()
	for i, c := range missing {
		s.fieldsCache[c] = fields[i]
	}
	s.cacheMu.Unlock()
}

// WarmExtendedFields is WarmFields for the eliminated candidate features.
func (s *System) WarmExtendedFields(concepts []string) {
	missing := s.missingFrom(concepts, func(c string) bool {
		_, ok := s.extendedCache[c]
		return ok
	})
	if len(missing) == 0 {
		return
	}
	ext := s.Extractor.BatchExtended(missing, s.Config.Workers)
	s.cacheMu.Lock()
	for i, c := range missing {
		s.extendedCache[c] = ext[i]
	}
	s.cacheMu.Unlock()
}

// missingFrom returns the deduplicated concepts not yet cached, in
// first-seen order.
func (s *System) missingFrom(concepts []string, cached func(string) bool) []string {
	s.cacheMu.RLock()
	defer s.cacheMu.RUnlock()
	seen := make(map[string]bool, len(concepts))
	var missing []string
	for _, c := range concepts {
		if seen[c] || cached(c) {
			continue
		}
		seen[c] = true
		missing = append(missing, c)
	}
	return missing
}

// RelevanceStore returns the (lazily-built) relevant-keyword store for a
// resource, mined over every concept that appears in the click data plus
// every world concept (so unseen test concepts are covered too). Safe for
// concurrent callers: the first one builds (itself fanning out across
// Config.Workers) while the rest wait; builds for different resources do
// not block each other.
func (s *System) RelevanceStore(r relevance.Resource) *relevance.Store {
	s.relOnce[r].Do(func() {
		names := make([]string, len(s.World.Concepts))
		for i := range s.World.Concepts {
			names[i] = s.World.Concepts[i].Name
		}
		s.relStores[r] = relevance.BuildStoreWorkers(s.Miner, names, r, s.Config.Workers)
	})
	return s.relStores[r]
}
