// Package core assembles the full Contextual Shortcuts reproduction: it
// builds the synthetic world and every mined resource on top of it, turns
// the simulated click reports into labeled ranking datasets, implements the
// ranking methods the paper compares (random, concept-vector baseline,
// relevance-only, learned interestingness, learned combined), and drives the
// cross-validated evaluation that regenerates the paper's tables and
// figures.
package core

import (
	"contextrank/internal/clicksim"
	"contextrank/internal/conceptvec"
	"contextrank/internal/detect"
	"contextrank/internal/features"
	"contextrank/internal/newsgen"
	"contextrank/internal/querylog"
	"contextrank/internal/relevance"
	"contextrank/internal/searchsim"
	"contextrank/internal/taxonomy"
	"contextrank/internal/units"
	"contextrank/internal/wiki"
	"contextrank/internal/world"
)

// Config parameterizes a full system build. The zero value produces a
// laptop-scale world with the paper's approximate data volume. Sub-config
// seeds left at zero are derived from Seed.
type Config struct {
	Seed     int64
	World    world.Config
	QueryLog querylog.Config
	Units    units.Config
	Corpus   searchsim.CorpusConfig
	Wiki     wiki.Config
	News     newsgen.Config
	Click    clicksim.Config
}

func (c Config) withDerivedSeeds() Config {
	if c.World.Seed == 0 {
		c.World.Seed = c.Seed + 1
	}
	if c.QueryLog.Seed == 0 {
		c.QueryLog.Seed = c.Seed + 2
	}
	if c.Corpus.Seed == 0 {
		c.Corpus.Seed = c.Seed + 3
	}
	if c.Wiki.Seed == 0 {
		c.Wiki.Seed = c.Seed + 4
	}
	if c.News.Seed == 0 {
		c.News.Seed = c.Seed + 5
	}
	if c.Click.Seed == 0 {
		c.Click.Seed = c.Seed + 6
	}
	// Normalize the click model so code that evaluates TrueCTR directly
	// (the production experiment) sees the same parameters the simulation
	// used.
	c.Click = c.Click.WithDefaults()
	return c
}

// System is the fully-built reproduction: all substrates plus the simulated
// click traffic.
type System struct {
	Config Config

	World     *world.World
	Log       *querylog.Log
	Units     *units.Set
	Engine    *searchsim.Engine
	Wiki      *wiki.Encyclopedia
	Dict      *taxonomy.Dictionary
	Extractor *features.Extractor
	Miner     *relevance.Miner
	Baseline  *conceptvec.Scorer
	Pipeline  *detect.Pipeline

	Stories []newsgen.Story
	Reports []clicksim.Report // raw, before cleaning
	Cleaned []clicksim.Report
	Groups  []clicksim.WindowGroup

	fieldsCache   map[string]features.Fields
	extendedCache map[string]features.ExtendedFields
	relStores     map[relevance.Resource]*relevance.Store
}

// Build generates the world and every resource, mirroring the paper's
// offline pipeline: query log → units → web corpus/index → Wikipedia →
// dictionaries → news stories → click sampling → cleaning → windowing.
func Build(cfg Config) *System {
	cfg = cfg.withDerivedSeeds()
	s := &System{Config: cfg}
	s.World = world.New(cfg.World)
	s.Log = querylog.Generate(s.World, cfg.QueryLog)
	s.Units = units.Extract(s.Log, cfg.Units)
	s.Engine = searchsim.BuildCorpus(s.World, cfg.Corpus)
	s.Wiki = wiki.Build(s.World, cfg.Wiki)
	s.Dict = taxonomy.Build(s.World, cfg.Seed+7)
	s.Extractor = features.NewExtractor(s.Log, s.Units, s.Engine, s.Wiki, s.Dict)
	s.Miner = relevance.NewMiner(s.Engine, searchsim.NewPrisma(s.Engine), searchsim.NewSuggestor(s.Log))
	s.Baseline = conceptvec.New(s.Engine.Dictionary(), s.Units, conceptvec.Options{})
	s.Pipeline = detect.New(s.Dict, s.Units)

	s.Stories = newsgen.Generate(s.World, cfg.News)
	s.Reports = clicksim.Simulate(s.Stories, cfg.Click)
	s.Cleaned = clicksim.Clean(s.Reports)
	s.Groups = clicksim.Windows(s.Cleaned, 0, 0) // paper defaults 2500/500

	s.fieldsCache = make(map[string]features.Fields)
	s.extendedCache = make(map[string]features.ExtendedFields)
	s.relStores = make(map[relevance.Resource]*relevance.Store)
	return s
}

// Fields returns the (cached) interestingness feature record for a concept.
func (s *System) Fields(concept string) features.Fields {
	if f, ok := s.fieldsCache[concept]; ok {
		return f
	}
	f := s.Extractor.Fields(concept)
	s.fieldsCache[concept] = f
	return f
}

// ExtendedFields returns the (cached) eliminated candidate features for a
// concept (see features.ExtendedFields).
func (s *System) ExtendedFields(concept string) features.ExtendedFields {
	if x, ok := s.extendedCache[concept]; ok {
		return x
	}
	x := s.Extractor.Extended(concept)
	s.extendedCache[concept] = x
	return x
}

// RelevanceStore returns the (lazily-built) relevant-keyword store for a
// resource, mined over every concept that appears in the click data plus
// every world concept (so unseen test concepts are covered too).
func (s *System) RelevanceStore(r relevance.Resource) *relevance.Store {
	if st, ok := s.relStores[r]; ok {
		return st
	}
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	st := relevance.BuildStore(s.Miner, names, r)
	s.relStores[r] = st
	return st
}
