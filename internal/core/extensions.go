package core

import (
	"math/rand"

	"contextrank/internal/online"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

// This file drives the experiments around the paper's discussion sections:
// the feature-selection negative result (§IV-A), the sense-clustering boost
// for ambiguous concepts (§IV-C), and the online CTR-adaptation scenario
// (§VIII future work).

// FeatureSelection reproduces the paper's feature-selection outcome: the
// candidate features it evaluated and eliminated (cosine-similar query
// frequency, any-order result count, per-term idf) "prove not to improve
// upon the features mentioned above". Returns the cross-validated results
// with and without the eliminated candidates.
func (s *System) FeatureSelection(folds int, seed int64) (selected, withEliminated Result, err error) {
	groups := s.Dataset(nil)
	if selected, err = CrossValidate(groups, &LearnedMethod{
		Options: ranksvm.Options{Seed: seed},
	}, folds, seed); err != nil {
		return
	}
	withEliminated, err = CrossValidate(groups, &LearnedMethod{
		Label:         "All Features + Eliminated Candidates",
		UseEliminated: true,
		Options:       ranksvm.Options{Seed: seed},
	}, folds, seed)
	return
}

// SenseExperiment measures the §IV-C ambiguity extension: relevance scoring
// with per-sense keyword packs versus the global pack, restricted to
// ambiguous concepts' mentions. Returns the mean coverage-normalized
// relevance of ambiguous relevant mentions under each scorer — the sense
// packs should recover contexts the diluted global pack misses.
func (s *System) SenseExperiment(maxSenses int) (globalCoverage, senseCoverage float64, mentions int) {
	store := s.RelevanceStore(relevance.Snippets)

	// Collect ambiguous concepts that appear in the click corpus.
	ambiguous := make(map[string]bool)
	for i := range s.World.Concepts {
		c := &s.World.Concepts[i]
		if c.Ambiguous() && !c.LowQuality() {
			ambiguous[c.Name] = true
		}
	}
	if len(ambiguous) == 0 {
		return 0, 0, 0
	}
	names := make([]string, 0, len(ambiguous))
	for n := range ambiguous {
		names = append(names, n)
	}
	senses := relevance.BuildSenseStore(s.Miner, names, maxSenses)

	var globalSum, senseSum float64
	for _, wg := range s.Groups {
		for _, e := range wg.Entities {
			if !ambiguous[e.Concept.Name] || !e.Relevant {
				continue
			}
			stems := relevance.ContextStemsAround(wg.Text, e.Position, 0)
			if total := store.RelevantTerms(e.Concept.Name).Sum(); total > 0 {
				globalSum += store.Score(e.Concept.Name, stems) / total
			}
			bestTotal := 0.0
			for _, sense := range senses.Senses(e.Concept.Name) {
				if t := sense.Keywords.Sum(); t > bestTotal {
					bestTotal = t
				}
			}
			if bestTotal > 0 {
				senseSum += senses.Score(e.Concept.Name, stems) / bestTotal
			}
			mentions++
		}
	}
	if mentions == 0 {
		return 0, 0, 0
	}
	return globalSum / float64(mentions), senseSum / float64(mentions), mentions
}

// BreakingNews is the outcome of the §VIII online-adaptation experiment.
type BreakingNews struct {
	// Concept is the spiking concept.
	Concept string
	// StaticRank and BoostedRank are the concept's 1-based rank in its
	// document under the static model and with the online adjuster during
	// the spike.
	StaticRank, BoostedRank int
	// DecayedRank is the boosted rank after the spike subsides.
	DecayedRank int
}

// RunBreakingNews reproduces the §VIII scenario end to end against a
// trained runtime wrapped in an online adjuster: a cold concept suddenly
// "goes viral" (its live CTR far exceeds its baseline); the online tracker
// must float it to the top of its documents while the spike lasts and let
// it sink afterwards. The static model, having been trained on historical
// data, would keep ranking it low throughout. docText must mention the
// concept.
func RunBreakingNews(adj *online.Adjuster, tracker *online.Tracker, concept, docText string, seed int64) BreakingNews {
	rng := rand.New(rand.NewSource(seed))
	out := BreakingNews{Concept: concept}

	rankOf := func() int {
		anns := adj.Annotate(docText, 0)
		rank := 0
		for _, a := range anns {
			if a.Detection.PatternType != "" {
				continue
			}
			rank++
			if a.Detection.Norm == concept {
				return rank
			}
		}
		return rank + 1
	}

	out.StaticRank = rankOf()

	// The spike: live CTR 20x the baseline for a stretch of ticks.
	for i := 0; i < 15; i++ {
		tracker.Tick([]online.Event{{
			Concept: concept,
			Views:   400 + rng.Intn(200),
			Clicks:  60 + rng.Intn(30),
		}})
	}
	out.BoostedRank = rankOf()

	// The spike ends: traffic returns to the baseline rate.
	for i := 0; i < 60; i++ {
		tracker.Tick([]online.Event{{
			Concept: concept,
			Views:   400,
			Clicks:  2,
		}})
	}
	out.DecayedRank = rankOf()
	return out
}
