package core

import (
	"fmt"
	"math/rand"
	"sort"

	"contextrank/internal/clicksim"
	"contextrank/internal/editorial"
	"contextrank/internal/features"
	"contextrank/internal/newsgen"
	"contextrank/internal/par"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/world"
)

// This file drives the paper's experiments (§V). Each TableN/FigureN
// function regenerates the corresponding result; cmd/experiments and
// bench_test.go print them side by side with the paper's numbers.

// Table2Row is one line of Table II: a concept and the summation of its
// top-100 relevant-keyword scores.
type Table2Row struct {
	Concept   string
	Summation float64
}

// Table2 reproduces Table II: the concepts with the largest and smallest
// keyword summations, which separate specific concepts from low-quality
// phrases. Returns the top and bottom k rows over all concepts (excluding
// concepts with no keywords at all).
func (s *System) Table2(k int) (top, bottom []Table2Row) {
	store := s.RelevanceStore(relevance.Snippets)
	rows := make([]Table2Row, 0, len(s.World.Concepts))
	for i := range s.World.Concepts {
		name := s.World.Concepts[i].Name
		rows = append(rows, Table2Row{Concept: name, Summation: store.Summation(name)})
	}
	sort.Slice(rows, func(i, j int) bool {
		switch {
		case rows[i].Summation > rows[j].Summation:
			return true
		case rows[i].Summation < rows[j].Summation:
			return false
		}
		return rows[i].Concept < rows[j].Concept
	})
	if k > len(rows) {
		k = len(rows)
	}
	top = rows[:k]
	bottom = rows[len(rows)-k:]
	return top, bottom
}

// Table3 holds the weighted error rates of Table III: the baselines, the
// full interestingness model, and the leave-one-group-out ablations.
type Table3 struct {
	Random        Result
	ConceptVector Result
	AllFeatures   Result
	Ablations     map[features.Group]Result
}

// Table3 reproduces Table III (and Figure 1, via the NDCG fields of the
// results): 5-fold CV of the ranking SVM over interestingness features.
func (s *System) Table3(folds int, seed int64) (Table3, error) {
	groups := s.Dataset(nil)
	var out Table3
	var err error
	if out.Random, err = CrossValidateWorkers(groups, &RandomMethod{Seed: seed}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.ConceptVector, err = CrossValidateWorkers(groups, &ConceptVectorMethod{Scorer: s.Baseline}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.AllFeatures, err = CrossValidateWorkers(groups, &LearnedMethod{Options: ranksvm.Options{Seed: seed}}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	out.Ablations = make(map[features.Group]Result, features.NumGroups)
	for g := features.Group(0); g < features.NumGroups; g++ {
		m := &LearnedMethod{
			Label:         fmt.Sprintf("All Features - %s", g),
			FeatureGroups: features.Without(g),
			Options:       ranksvm.Options{Seed: seed},
		}
		r, err := CrossValidateWorkers(groups, m, folds, seed, s.Config.Workers)
		if err != nil {
			return out, err
		}
		out.Ablations[g] = r
	}
	return out, nil
}

// Table4 holds the relevance-score-only results of Table IV (and Figure 2).
type Table4 struct {
	Random        Result
	ConceptVector Result
	ByResource    map[relevance.Resource]Result
}

// Table4 reproduces Table IV: ranking purely by the pre-mined relevance
// score, one run per mining resource; no model is trained.
func (s *System) Table4(folds int, seed int64) (Table4, error) {
	resources := []relevance.Resource{relevance.Snippets, relevance.Prisma, relevance.Suggestions}
	groups := s.Dataset(resources)
	var out Table4
	var err error
	if out.Random, err = CrossValidateWorkers(groups, &RandomMethod{Seed: seed}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.ConceptVector, err = CrossValidateWorkers(groups, &ConceptVectorMethod{Scorer: s.Baseline}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	out.ByResource = make(map[relevance.Resource]Result, len(resources))
	for _, r := range resources {
		res, err := CrossValidateWorkers(groups, &RelevanceMethod{Resource: r}, folds, seed, s.Config.Workers)
		if err != nil {
			return out, err
		}
		out.ByResource[r] = res
	}
	return out, nil
}

// Table5 holds the combined-model results of Table V (and Figure 3).
type Table5 struct {
	Random           Result
	ConceptVector    Result
	BestInterest     Result
	BestRelevance    Result
	Combined         Result
	CombinedRBF      Result // kernel ablation (§V-A.3 tests both kernels)
	CombinedNoTiebrk Result // design-choice ablation
}

// Table5 reproduces Table V: all interestingness features plus the
// snippet-based relevance score, with relevance tie-breaking.
func (s *System) Table5(folds int, seed int64) (Table5, error) {
	groups := s.Dataset([]relevance.Resource{relevance.Snippets})
	var out Table5
	var err error
	if out.Random, err = CrossValidateWorkers(groups, &RandomMethod{Seed: seed}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.ConceptVector, err = CrossValidateWorkers(groups, &ConceptVectorMethod{Scorer: s.Baseline}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.BestInterest, err = CrossValidateWorkers(groups, &LearnedMethod{Options: ranksvm.Options{Seed: seed}}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.BestRelevance, err = CrossValidateWorkers(groups, &RelevanceMethod{Resource: relevance.Snippets}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.Combined, err = CrossValidateWorkers(groups, &LearnedMethod{
		UseRelevance: true, Resource: relevance.Snippets,
		Options: ranksvm.Options{Seed: seed},
	}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	if out.CombinedRBF, err = CrossValidateWorkers(groups, &LearnedMethod{
		Label: "Interestingness + Relevance (RBF)", UseRelevance: true, Resource: relevance.Snippets,
		Options: ranksvm.Options{Seed: seed, Kernel: ranksvm.RBF, MaxPairsPerGroup: 10},
	}, folds, seed, s.Config.Workers); err != nil {
		return out, err
	}
	return out, nil
}

// EditorialConfig parameterizes the Table VI study.
type EditorialConfig struct {
	Seed        int64
	NewsDocs    int // default 400, top-3 judged
	AnswersDocs int // default 800, top-2 judged
	Folds       int // training folds for the ranking model (default: train on all click data)
}

// Table6 holds the editorial study outcome per content type and method.
type Table6 struct {
	// NewsCV / NewsRanked: concept-vector vs. learned ranking on news.
	NewsCV, NewsRanked editorial.Tally
	// AnswersCV / AnswersRanked: same on answers snippets.
	AnswersCV, AnswersRanked editorial.Tally
	// InterestKappa and RelevanceKappa are the panel's mean pairwise
	// Cohen's-kappa agreement, the sanity check any multi-judge study
	// reports before pooling ratings.
	InterestKappa, RelevanceKappa float64
}

// Table6 reproduces the §V-B editorial study: fresh documents (400 news
// stories + 800 answers snippets), top-3/top-2 entities identified with the
// learned ranking and with the concept-vector score, each judged for
// interestingness and relevance.
func (s *System) Table6(cfg EditorialConfig) (Table6, error) {
	if cfg.NewsDocs == 0 {
		cfg.NewsDocs = 400
	}
	if cfg.AnswersDocs == 0 {
		cfg.AnswersDocs = 800
	}

	// Train the full model on the click data.
	learned := &LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: cfg.Seed}}
	trainGroups := s.Dataset([]relevance.Resource{relevance.Snippets})
	if err := learned.Fit(trainGroups); err != nil {
		return Table6{}, err
	}
	baseline := &ConceptVectorMethod{Scorer: s.Baseline}

	news := newsgen.Generate(s.World, newsgen.Config{
		Seed: cfg.Seed + 101, NumStories: cfg.NewsDocs,
	})
	answers := newsgen.Generate(s.World, newsgen.Config{
		Seed: cfg.Seed + 102, NumStories: cfg.AnswersDocs,
		MinConcepts: 3, MaxConcepts: 5, MinSentences: 3, MaxSentences: 8,
	})

	// "A team of expert judges": every story gets its own three-judge panel
	// (seeds derived per story inside judgeTopK), so stories are judged
	// concurrently without the rating streams depending on judging order.
	var out Table6
	out.NewsRanked = s.judgeTopK(news, learned, 3, cfg.Seed+110)
	out.NewsCV = s.judgeTopK(news, baseline, 3, cfg.Seed+111)
	out.AnswersRanked = s.judgeTopK(answers, learned, 2, cfg.Seed+112)
	out.AnswersCV = s.judgeTopK(answers, baseline, 2, cfg.Seed+113)

	// Inter-judge agreement over a shared sample of mentions.
	var concepts []*world.Concept
	var degrees []float64
	for i := range news {
		for _, m := range news[i].Mentions {
			concepts = append(concepts, m.Concept)
			degrees = append(degrees, m.Degree)
		}
		if len(concepts) >= 300 {
			break
		}
	}
	agreementPanel := editorial.NewPanel(3, cfg.Seed+200)
	out.InterestKappa, out.RelevanceKappa = editorial.PanelKappa(agreementPanel, concepts, degrees)
	return out, nil
}

// GroupFromStory builds an unlabeled ranking group from any document, so
// trained methods can rank entities outside the click corpus.
func (s *System) GroupFromStory(story *newsgen.Story, resources []relevance.Resource) Group {
	g := Group{StoryID: story.ID, Text: story.Text}
	stores := s.bindStores(resources)
	defer releaseStores(stores)
	for _, m := range story.Mentions {
		ex := Example{
			Concept:  m.Concept,
			Position: m.Position,
			Relevant: m.Relevant,
			Degree:   m.Degree,
			Fields:   s.Fields(m.Concept.Name),
		}
		if len(stores) > 0 {
			ex.RelScore = make(map[relevance.Resource]float64, len(stores))
			ex.RelNorm = make(map[relevance.Resource]float64, len(stores))
			for _, b := range stores {
				b.ctx.SetAround(story.Text, m.Position, 0)
				ex.RelScore[b.r] = b.st.ScoreCtx(m.Concept.Name, b.ctx)
				ex.RelNorm[b.r] = b.st.NormalizedScoreCtx(m.Concept.Name, b.ctx)
			}
		}
		g.Examples = append(g.Examples, ex)
	}
	return g
}

// judgeTopK ranks each story's entities with the method and has a
// three-judge panel rate the top k (majority-pooled). Stories fan out
// across Config.Workers; each story's panel draws its seed from
// (panelSeed, story index), so the tally is bit-identical at any worker
// count. The method is only read (Score), never fitted, inside the loop.
func (s *System) judgeTopK(stories []newsgen.Story, m Method, k int, panelSeed int64) editorial.Tally {
	tallies := par.Map(s.Config.Workers, len(stories), func(i int) editorial.Tally {
		panel := editorial.NewPanel(3, par.Seed(panelSeed, i))
		var t editorial.Tally
		g := s.GroupFromStory(&stories[i], []relevance.Resource{relevance.Snippets})
		scores := m.Score(&g)
		order := argsortDesc(scores)
		for j := 0; j < k && j < len(order); j++ {
			ex := &g.Examples[order[j]]
			t.Add(panel.MajorityRate(ex.Concept, ex.Degree))
		}
		return t
	})
	var tally editorial.Tally
	for _, t := range tallies {
		tally.Merge(t)
	}
	return tally
}

func argsortDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}

// Production holds the §V-C real-world experiment outcome: annotating fewer,
// better-ranked entities should slash views while barely moving clicks.
type Production struct {
	BaselineViews, BaselineClicks int
	RankedViews, RankedClicks     int
}

// ViewsChangePct returns the percent change in weekly annotation views.
func (p Production) ViewsChangePct() float64 {
	return 100 * (float64(p.RankedViews) - float64(p.BaselineViews)) / float64(p.BaselineViews)
}

// ClicksChangePct returns the percent change in weekly clicks.
func (p Production) ClicksChangePct() float64 {
	return 100 * (float64(p.RankedClicks) - float64(p.BaselineClicks)) / float64(p.BaselineClicks)
}

// CTRChangePct returns the percent change in CTR.
func (p Production) CTRChangePct() float64 {
	base := float64(p.BaselineClicks) / float64(p.BaselineViews)
	ranked := float64(p.RankedClicks) / float64(p.RankedViews)
	return 100 * (ranked - base) / base
}

// ProductionExperiment reproduces §V-C: the baseline period annotates every
// detected entity; the treatment period annotates only the top-N ranked by
// the learned model. Fresh traffic is simulated for both periods with the
// same stories and view counts; clicks are drawn from the latent CTR model.
func (s *System) ProductionExperiment(topN int, numStories int, seed int64) (Production, error) {
	if topN == 0 {
		topN = 3
	}
	if numStories == 0 {
		numStories = 300
	}
	learned := &LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: seed}}
	if err := learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		return Production{}, err
	}

	stories := newsgen.Generate(s.World, newsgen.Config{Seed: seed + 1, NumStories: numStories})
	clickCfg := s.Config.Click

	// Each story simulates its traffic from a stream derived from (seed+2,
	// story index), so stories fan out across Config.Workers and the counts
	// below are bit-identical at any worker count.
	partials := par.Map(s.Config.Workers, len(stories), func(i int) Production {
		story := &stories[i]
		rng := rand.New(rand.NewSource(par.Seed(seed+2, i)))
		views := 30 + rng.Intn(2000)
		g := s.GroupFromStory(story, []relevance.Resource{relevance.Snippets})

		var p Production
		// Baseline period: every entity annotated.
		for _, m := range story.Mentions {
			ctr := clickCfg.TrueCTR(m.Concept, m.Degree, m.Position)
			p.BaselineViews += views
			p.BaselineClicks += sampleBinomial(rng, views, ctr)
		}
		// Treatment period: only the model's top-N annotated.
		scores := learned.Score(&g)
		order := argsortDesc(scores)
		for j := 0; j < topN && j < len(order); j++ {
			m := story.Mentions[order[j]]
			ctr := clickCfg.TrueCTR(m.Concept, m.Degree, m.Position)
			p.RankedViews += views
			p.RankedClicks += sampleBinomial(rng, views, ctr)
		}
		return p
	})

	var p Production
	for _, q := range partials {
		p.BaselineViews += q.BaselineViews
		p.BaselineClicks += q.BaselineClicks
		p.RankedViews += q.RankedViews
		p.RankedClicks += q.RankedClicks
	}
	return p, nil
}

func sampleBinomial(rng *rand.Rand, n int, pr float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < pr {
			k++
		}
	}
	return k
}

// DataStats reproduces the §V-A.1 data description: stories, concepts,
// clicks after cleaning, and window count.
type DataStats struct {
	RawStories   int
	CleanStories int
	Concepts     int
	Clicks       int
	Windows      int
}

// DataStats summarizes the system's click corpus.
func (s *System) DataStats() DataStats {
	sum := clicksim.Summarize(s.Cleaned)
	return DataStats{
		RawStories:   len(s.Reports),
		CleanStories: sum.Stories,
		Concepts:     sum.Concepts,
		Clicks:       sum.Clicks,
		Windows:      len(s.Groups),
	}
}
