package core

import (
	"fmt"
	"math"
	"math/rand"

	"contextrank/internal/conceptvec"
	"contextrank/internal/features"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

// Method is one ranking approach under evaluation. Fit is called with the
// training fold (static baselines ignore it); Score returns one predicted
// score per example in the group, higher = ranked earlier.
type Method interface {
	Name() string
	Fit(train []Group) error
	Score(g *Group) []float64
}

// Cloneable is implemented by methods that can hand out independent copies
// of themselves for concurrent cross-validation folds: the clone shares the
// method's read-only configuration and resources but none of its fitted or
// stream state. Every method in this package implements it; a method that
// does not is evaluated with serial folds.
type Cloneable interface {
	// CloneMethod returns a fresh, unfitted copy whose Fit/Score sequence
	// produces exactly what the receiver's would.
	CloneMethod() Method
}

// RandomMethod is the random-ordering baseline (paper: 50.01% weighted
// error). Scores are drawn fresh per group from a deterministic stream.
type RandomMethod struct {
	Seed int64
	rng  *rand.Rand
}

// Name implements Method.
func (m *RandomMethod) Name() string { return "Random" }

// CloneMethod implements Cloneable: the clone re-derives its stream from
// the seed, exactly as Fit resets the receiver's.
func (m *RandomMethod) CloneMethod() Method { return &RandomMethod{Seed: m.Seed} }

// Fit implements Method (resets the stream so evaluation is reproducible).
func (m *RandomMethod) Fit([]Group) error {
	m.rng = rand.New(rand.NewSource(m.Seed))
	return nil
}

// Score implements Method.
func (m *RandomMethod) Score(g *Group) []float64 {
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(m.Seed))
	}
	out := make([]float64, len(g.Examples))
	for i := range out {
		out[i] = m.rng.Float64()
	}
	return out
}

// ConceptVectorMethod is the production baseline: entities ranked by their
// concept-vector score in the window (paper §II-B, 30.22% weighted error).
type ConceptVectorMethod struct {
	Scorer *conceptvec.Scorer
}

// Name implements Method.
func (m *ConceptVectorMethod) Name() string { return "Concept Vector Score" }

// CloneMethod implements Cloneable (the scorer is stateless and shared).
func (m *ConceptVectorMethod) CloneMethod() Method { return &ConceptVectorMethod{Scorer: m.Scorer} }

// Fit implements Method (the baseline is static).
func (m *ConceptVectorMethod) Fit([]Group) error { return nil }

// Score implements Method.
func (m *ConceptVectorMethod) Score(g *Group) []float64 {
	vec := m.Scorer.ConceptVector(g.Text).Map()
	out := make([]float64, len(g.Examples))
	for i := range g.Examples {
		out[i] = vec[g.Examples[i].Concept.Name]
	}
	return out
}

// RelevanceMethod ranks purely by the pre-mined relevance score (paper
// §V-A.5, Table IV: no model is trained). The rank key blends the raw
// matched-confidence score with its coverage-normalized form, so both the
// pack-scale (quality) signal and the contextual-coverage signal
// contribute.
type RelevanceMethod struct {
	Resource relevance.Resource
}

// Name implements Method.
func (m *RelevanceMethod) Name() string { return "Relevance (" + m.Resource.String() + ")" }

// CloneMethod implements Cloneable (the method is static configuration).
func (m *RelevanceMethod) CloneMethod() Method { c := *m; return &c }

// Fit implements Method (static).
func (m *RelevanceMethod) Fit([]Group) error { return nil }

// Score implements Method.
func (m *RelevanceMethod) Score(g *Group) []float64 {
	out := make([]float64, len(g.Examples))
	for i := range g.Examples {
		out[i] = math.Log1p(g.Examples[i].RelScore[m.Resource]) * (0.2 + g.Examples[i].RelNorm[m.Resource])
	}
	return out
}

// LearnedMethod is the paper's contribution: a ranking SVM over the
// interestingness features, optionally joined with the context relevance
// score (§V-A.6). With UseRelevance, relevance also breaks near-ties the
// way the paper does ("in case of ties, we decided to favor concepts that
// have higher relevance scores").
type LearnedMethod struct {
	// Label overrides the display name.
	Label string
	// FeatureGroups masks the interestingness groups (Table III ablation).
	// Nil means all groups.
	FeatureGroups map[features.Group]bool
	// UseRelevance appends the relevance score (log-scaled) as a feature.
	UseRelevance bool
	// UseEliminated appends the paper's eliminated candidate features
	// (cosine-similar queries, any-order result count, mean term idf) for
	// the feature-selection experiment.
	UseEliminated bool
	// Resource selects which mined store feeds the relevance feature.
	Resource relevance.Resource
	// Options configures the underlying ranking SVM.
	Options ranksvm.Options

	model *ranksvm.Model
}

// Name implements Method.
func (m *LearnedMethod) Name() string {
	if m.Label != "" {
		return m.Label
	}
	if m.UseRelevance {
		return "Interestingness + Relevance"
	}
	return "Interestingness Model"
}

// CloneMethod implements Cloneable: the clone shares the read-only
// configuration (the FeatureGroups mask is never mutated) but not the
// fitted model.
func (m *LearnedMethod) CloneMethod() Method {
	c := *m
	c.model = nil
	return &c
}

func (m *LearnedMethod) groups() map[features.Group]bool {
	if m.FeatureGroups == nil {
		return features.AllGroups()
	}
	return m.FeatureGroups
}

func (m *LearnedMethod) featuresOf(ex *Example) []float64 {
	v := ex.Fields.Expand(m.groups())
	if m.UseEliminated {
		v = append(v, ex.Extended.Expand()...)
	}
	if m.UseRelevance {
		v = append(v, math.Log1p(ex.RelScore[m.Resource]), ex.RelNorm[m.Resource])
	}
	return v
}

// Fit implements Method: builds pairwise instances from the training groups
// and trains the ranking SVM.
func (m *LearnedMethod) Fit(train []Group) error {
	var instances []ranksvm.Instance
	for gi := range train {
		g := &train[gi]
		for ei := range g.Examples {
			instances = append(instances, ranksvm.Instance{
				Features: m.featuresOf(&g.Examples[ei]),
				Label:    g.Examples[ei].CTR,
				Group:    g.ID,
			})
		}
	}
	model, err := ranksvm.Train(instances, m.Options)
	if err != nil {
		return fmt.Errorf("core: train %s: %w", m.Name(), err)
	}
	m.model = model
	return nil
}

// Model returns the trained ranking SVM (nil before Fit). The production
// framework loads this model into its runtime.
func (m *LearnedMethod) Model() *ranksvm.Model { return m.model }

// Score implements Method.
func (m *LearnedMethod) Score(g *Group) []float64 {
	out := make([]float64, len(g.Examples))
	for i := range g.Examples {
		out[i] = m.model.Score(m.featuresOf(&g.Examples[i]))
		if m.UseRelevance {
			// Deterministic micro tie-break by relevance: scaled far below
			// the score resolution that matters.
			out[i] += 1e-9 * math.Log1p(g.Examples[i].RelScore[m.Resource])
		}
	}
	return out
}
