// Package units implements concept-unit extraction from search query logs,
// following the paper's §II-B and its references [7,8] (Parikh & Kapur's
// "units"): in the first iteration every single term appearing in queries is
// a unit; in following iterations units that frequently co-occur in queries
// are combined into larger candidate units, validated by mutual information
//
//	I(x,y) = log( p(x,y) / (p(x) p(y)) )            (paper Eq. 1)
//
// where the probabilities are relative frequencies over query submissions.
package units

import (
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"contextrank/internal/match"
	"contextrank/internal/querylog"
	"contextrank/internal/textproc"
)

// Unit is a validated concept unit.
type Unit struct {
	// Text is the space-separated unit phrase.
	Text string
	// Terms are the individual terms.
	Terms []string
	// Freq is the frequency-weighted number of query submissions containing
	// the unit as a contiguous phrase.
	Freq int64
	// MI is the raw mutual information of the unit's terms (0 for
	// single-term units, for which MI is undefined).
	MI float64
	// Score is the normalized unit score in [0,1] used by the concept
	// vector and by the unit_score interestingness feature.
	Score float64
	// StopOnly marks units whose terms are all stop-words. Precomputed at
	// extraction time so the detection filter never re-tokenizes the unit
	// text on the hot path.
	StopOnly bool
}

// Config parameterizes extraction.
type Config struct {
	// MaxLen is the maximum unit length in terms. Default 3.
	MaxLen int
	// MinFreq is the minimum frequency-weighted support for a candidate.
	// Default 5.
	MinFreq int64
	// MinMI is the validation threshold on mutual information. Default 2.0.
	MinMI float64
}

func (c Config) withDefaults() Config {
	if c.MaxLen == 0 {
		c.MaxLen = 3
	}
	if c.MinFreq == 0 {
		c.MinFreq = 5
	}
	if c.MinMI == 0 {
		c.MinMI = 2.0
	}
	return c
}

// Set is the extracted unit inventory with phrase lookup and in-document
// scanning support. Scanning runs on a token-trie matcher over an interned
// vocabulary, built once at extraction time (DESIGN.md §10).
type Set struct {
	units   map[string]*Unit
	maxLen  int
	vocab   *match.Vocab
	matcher *match.Matcher
	pats    []*Unit // pattern id -> unit
}

// Extract runs the iterative unit-extraction algorithm over the log.
//
// Internally every query term is interned to a dense id and an n-gram is a
// fixed-width packed key (4 big-endian bytes per id), so the frequency pass
// allocates once per *distinct* n-gram instead of once per occurrence, and
// the split validation of iterations 2..MaxLen probes sub-keys by slicing
// the packed key — no Join/Fields string round-trips. Unit text is only
// materialized for grams that validate. TestDifferentialExtractVsReference
// pins the output against the direct string-keyed implementation.
func Extract(l *querylog.Log, cfg Config) *Set {
	cfg = cfg.withDefaults()
	total := float64(l.TotalFreq())
	if total == 0 {
		s := &Set{units: map[string]*Unit{}, maxLen: cfg.MaxLen}
		s.buildIndex()
		return s
	}

	// Pass 1: frequency of every contiguous n-gram, n ≤ MaxLen, weighted by
	// query frequency. A query contributes each distinct n-gram once.
	termID := make(map[string]uint32)
	var termText []string
	gramIdx := make(map[string]int32) // packed key -> index into gramFreq
	var gramFreq []int64
	var qids []uint32 // reused per-query interned terms
	var key []byte    // reused packed-key buffer
	pack := func(ids []uint32) []byte {
		key = key[:0]
		for _, id := range ids {
			key = append(key, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
		}
		return key
	}
	for _, q := range l.Queries {
		qids = qids[:0]
		for _, t := range q.Terms {
			id, ok := termID[t]
			if !ok {
				id = uint32(len(termText))
				termID[t] = id
				termText = append(termText, t)
			}
			qids = append(qids, id)
		}
		f := int64(q.Freq)
		for n := 1; n <= cfg.MaxLen; n++ {
			for i := 0; i+n <= len(qids); i++ {
				if dupGram(qids, i, n) {
					continue
				}
				k := pack(qids[i : i+n])
				if idx, ok := gramIdx[string(k)]; ok {
					gramFreq[idx] += f
				} else {
					gramIdx[string(k)] = int32(len(gramFreq))
					gramFreq = append(gramFreq, f)
				}
			}
		}
	}

	// Group the distinct grams by length. Sorted packed keys follow the
	// deterministic first-appearance id order, so every run processes
	// candidates identically.
	byLen := make([][]string, cfg.MaxLen+1)
	for k := range gramIdx {
		byLen[len(k)/4] = append(byLen[len(k)/4], k)
	}
	for n := range byLen {
		sort.Strings(byLen[n])
	}
	p := func(k string) float64 { return float64(gramFreq[gramIdx[k]]) / total }

	// validated tracks accepted packed keys only; Unit values are
	// materialized afterwards from arenas. Inserting the byLen key strings
	// into the set allocates nothing new, so the whole validation phase is
	// probe-only.
	validated := make(map[string]bool, len(gramIdx))

	// Iteration 1: all single terms are units.
	var maxTermFreq int64
	for _, k := range byLen[1] {
		validated[k] = true
		if f := gramFreq[gramIdx[k]]; f > maxTermFreq {
			maxTermFreq = f
		}
	}

	// Iterations 2..MaxLen: grow candidates, validate with MI. A candidate
	// of length n is valid only if every split into two previously-validated
	// units has MI ≥ MinMI; the unit's MI is the minimum over splits
	// (conservative, mirrors the iterative combination of validated units).
	type accepted struct {
		key string
		mi  float64
	}
	var accept []accepted
	var maxMI float64
	for n := 2; n <= cfg.MaxLen; n++ {
		for _, g := range byLen[n] {
			if gramFreq[gramIdx[g]] < cfg.MinFreq {
				continue
			}
			mi := math.Inf(1)
			valid := true
			for split := 1; split < n; split++ {
				left, right := g[:4*split], g[4*split:]
				if !validated[left] || !validated[right] {
					valid = false
					break
				}
				pl, pr := p(left), p(right)
				if pl == 0 || pr == 0 {
					valid = false
					break
				}
				m := math.Log(p(g) / (pl * pr))
				if m < mi {
					mi = m
				}
			}
			if !valid || mi < cfg.MinMI {
				continue
			}
			validated[g] = true
			accept = append(accept, accepted{g, mi})
			if mi > maxMI {
				maxMI = mi
			}
		}
	}

	// Materialize the inventory: one []Unit arena, one shared Terms backing
	// array, and one byte arena for the multi-term texts (single-term units
	// reuse the interned term string) — a handful of allocations instead of
	// three per unit. Capacities are exact, so the appends below never
	// reallocate and &units[i] pointers stay valid. Multi-term scores are
	// the paper's normalization MI/maxMI in [0,1].
	nTerms := len(byLen[1])
	textBytes := 0
	for _, a := range accept {
		n := len(a.key) / 4
		nTerms += n
		textBytes += n - 1
		for i := 0; i < n; i++ {
			textBytes += len(termText[unpackID(a.key, i)])
		}
	}
	units := make([]Unit, 0, len(byLen[1])+len(accept))
	termsArena := make([]string, 0, nTerms)
	var sb strings.Builder
	sb.Grow(textBytes)
	type span struct{ off, end int }
	spans := make([]span, len(accept))
	for i, a := range accept {
		off := sb.Len()
		for j := 0; j < len(a.key)/4; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(termText[unpackID(a.key, j)])
		}
		spans[i] = span{off, sb.Len()}
	}
	texts := sb.String()

	s := &Set{units: make(map[string]*Unit, cap(units)), maxLen: cfg.MaxLen}
	for _, k := range byLen[1] {
		text := termText[unpackID(k, 0)]
		base := len(termsArena)
		termsArena = append(termsArena, text)
		units = append(units, Unit{
			Text:  text,
			Terms: termsArena[base:len(termsArena):len(termsArena)],
			Freq:  gramFreq[gramIdx[k]],
			Score: math.Log1p(float64(gramFreq[gramIdx[k]])) / math.Log1p(float64(maxTermFreq)),
		})
		s.units[text] = &units[len(units)-1]
	}
	for i, a := range accept {
		base := len(termsArena)
		for j := 0; j < len(a.key)/4; j++ {
			termsArena = append(termsArena, termText[unpackID(a.key, j)])
		}
		score := 0.0
		if maxMI > 0 {
			score = a.mi / maxMI
		}
		text := texts[spans[i].off:spans[i].end]
		units = append(units, Unit{
			Text:  text,
			Terms: termsArena[base:len(termsArena):len(termsArena)],
			Freq:  gramFreq[gramIdx[a.key]],
			MI:    a.mi,
			Score: score,
		})
		s.units[text] = &units[len(units)-1]
	}

	s.buildIndex()
	return s
}

// dupGram reports whether the n-gram at i repeats an earlier occurrence in
// the same query — the allocation-free form of pass 1's per-query dedup
// (queries are a handful of terms, so the quadratic scan is cheap).
func dupGram(qids []uint32, i, n int) bool {
	for j := 0; j < i; j++ {
		if slices.Equal(qids[j:j+n], qids[i:i+n]) {
			return true
		}
	}
	return false
}

// unpackID reads the i-th id out of a packed n-gram key.
func unpackID(k string, i int) uint32 {
	b := i * 4
	return uint32(k[b])<<24 | uint32(k[b+1])<<16 | uint32(k[b+2])<<8 | uint32(k[b+3])
}

// buildIndex compiles the unit inventory into the trie matcher and fills
// the precomputed per-unit flags. Pattern ids are assigned in sorted text
// order for determinism across map iteration orders.
func (s *Set) buildIndex() {
	texts := make([]string, 0, len(s.units))
	for text := range s.units {
		texts = append(texts, text)
	}
	sort.Strings(texts)
	b := match.NewBuilder(nil)
	s.pats = make([]*Unit, 0, len(texts))
	for _, text := range texts {
		u := s.units[text]
		u.StopOnly = allStop(u.Terms)
		if id := b.Add(u.Terms); id != len(s.pats) {
			panic("units: non-dense pattern id")
		}
		s.pats = append(s.pats, u)
	}
	s.matcher = b.Build()
	s.vocab = b.Vocab()
}

func allStop(terms []string) bool {
	for _, t := range terms {
		if !textproc.IsStopword(t) {
			return false
		}
	}
	return len(terms) > 0
}

// Vocab exposes the interned unit vocabulary so the detection pipeline can
// map a document's tokens to ids once per document.
func (s *Set) Vocab() *match.Vocab { return s.vocab }

// Len returns the number of units in the set.
func (s *Set) Len() int { return len(s.units) }

// Lookup returns the unit for the exact phrase, or nil.
func (s *Set) Lookup(phrase string) *Unit { return s.units[phrase] }

// Score returns the normalized unit score of phrase, or 0 if the phrase is
// not a unit.
func (s *Set) Score(phrase string) float64 {
	if u := s.units[phrase]; u != nil {
		return u.Score
	}
	return 0
}

// MI returns the raw mutual information of phrase, or 0.
func (s *Set) MI(phrase string) float64 {
	if u := s.units[phrase]; u != nil {
		return u.MI
	}
	return 0
}

// All returns all units sorted by decreasing score (ties by text).
func (s *Set) All() []Unit {
	out := make([]Unit, 0, len(s.units))
	for _, u := range s.units {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Text < out[j].Text
	})
	return out
}

// Match is one unit occurrence in a token sequence.
type Match struct {
	Unit *Unit
	// Start and End are token indexes ([Start,End)).
	Start, End int
}

// FindInTokens scans normalized tokens for unit occurrences, greedy-longest
// at each position (a longer unit suppresses its prefixes at that position).
// Compatibility wrapper around the id path: it interns the tokens per call,
// so hot callers should intern once with Vocab().AppendIDs and use
// FindInIDs instead.
func (s *Set) FindInTokens(tokens []string) []Match {
	if len(tokens) == 0 {
		return nil
	}
	ids := s.vocab.AppendIDs(make([]uint32, 0, len(tokens)), tokens)
	return s.FindInIDs(ids, nil)
}

// FindInIDs scans interned token ids (from Vocab().AppendIDs) and appends
// the matches to dst, returning it. With a pre-sized dst the scan performs
// zero allocations.
//
//kw:hotpath
func (s *Set) FindInIDs(ids []uint32, dst []Match) []Match {
	for i := 0; i < len(ids); i++ {
		if p, end, ok := s.matcher.LongestAt(ids, i); ok {
			dst = append(dst, Match{Unit: s.pats[p], Start: i, End: end})
		}
	}
	return dst
}

// SubconceptCount returns the number of multi-term sub-phrases of phrase
// (contiguous, length ≥ 2, shorter than the phrase itself) that are
// validated units with score above minScore. This powers the paper's
// interestingness feature (7) "subconcepts".
func (s *Set) SubconceptCount(phrase string, minScore float64) int {
	return s.SubconceptCountTerms(strings.Fields(phrase), minScore)
}

// subKeyPool pools the sub-phrase key buffer of SubconceptCountTerms.
var subKeyPool = sync.Pool{New: func() any { return new([]byte) }}

// SubconceptCountTerms is SubconceptCount over a pre-split phrase — the
// feature extractor splits each concept once and reuses the terms across
// every per-term feature. Sub-phrase keys are assembled in a pooled buffer
// and probed with the map's string-conversion elision, so counting performs
// zero allocations.
func (s *Set) SubconceptCountTerms(terms []string, minScore float64) int {
	if len(terms) <= 2 {
		return 0
	}
	kp := subKeyPool.Get().(*[]byte)
	key := (*kp)[:0]
	count := 0
	for n := 2; n < len(terms); n++ {
		for i := 0; i+n <= len(terms); i++ {
			key = key[:0]
			for j := i; j < i+n; j++ {
				if j > i {
					key = append(key, ' ')
				}
				key = append(key, terms[j]...)
			}
			if u := s.units[string(key)]; u != nil && u.Score > minScore {
				count++
			}
		}
	}
	*kp = key
	subKeyPool.Put(kp)
	return count
}
