// Package units implements concept-unit extraction from search query logs,
// following the paper's §II-B and its references [7,8] (Parikh & Kapur's
// "units"): in the first iteration every single term appearing in queries is
// a unit; in following iterations units that frequently co-occur in queries
// are combined into larger candidate units, validated by mutual information
//
//	I(x,y) = log( p(x,y) / (p(x) p(y)) )            (paper Eq. 1)
//
// where the probabilities are relative frequencies over query submissions.
package units

import (
	"math"
	"sort"
	"strings"
	"sync"

	"contextrank/internal/match"
	"contextrank/internal/querylog"
	"contextrank/internal/textproc"
)

// Unit is a validated concept unit.
type Unit struct {
	// Text is the space-separated unit phrase.
	Text string
	// Terms are the individual terms.
	Terms []string
	// Freq is the frequency-weighted number of query submissions containing
	// the unit as a contiguous phrase.
	Freq int64
	// MI is the raw mutual information of the unit's terms (0 for
	// single-term units, for which MI is undefined).
	MI float64
	// Score is the normalized unit score in [0,1] used by the concept
	// vector and by the unit_score interestingness feature.
	Score float64
	// StopOnly marks units whose terms are all stop-words. Precomputed at
	// extraction time so the detection filter never re-tokenizes the unit
	// text on the hot path.
	StopOnly bool
}

// Config parameterizes extraction.
type Config struct {
	// MaxLen is the maximum unit length in terms. Default 3.
	MaxLen int
	// MinFreq is the minimum frequency-weighted support for a candidate.
	// Default 5.
	MinFreq int64
	// MinMI is the validation threshold on mutual information. Default 2.0.
	MinMI float64
}

func (c Config) withDefaults() Config {
	if c.MaxLen == 0 {
		c.MaxLen = 3
	}
	if c.MinFreq == 0 {
		c.MinFreq = 5
	}
	if c.MinMI == 0 {
		c.MinMI = 2.0
	}
	return c
}

// Set is the extracted unit inventory with phrase lookup and in-document
// scanning support. Scanning runs on a token-trie matcher over an interned
// vocabulary, built once at extraction time (DESIGN.md §10).
type Set struct {
	units   map[string]*Unit
	maxLen  int
	vocab   *match.Vocab
	matcher *match.Matcher
	pats    []*Unit // pattern id -> unit
}

// Extract runs the iterative unit-extraction algorithm over the log.
func Extract(l *querylog.Log, cfg Config) *Set {
	cfg = cfg.withDefaults()
	total := float64(l.TotalFreq())
	if total == 0 {
		s := &Set{units: map[string]*Unit{}, maxLen: cfg.MaxLen}
		s.buildIndex()
		return s
	}

	// Pass 1: frequency of every contiguous n-gram, n ≤ MaxLen, weighted by
	// query frequency. A query contributes each distinct n-gram once.
	ngramFreq := make(map[string]int64)
	for _, q := range l.Queries {
		seen := make(map[string]bool)
		for n := 1; n <= cfg.MaxLen; n++ {
			for i := 0; i+n <= len(q.Terms); i++ {
				g := strings.Join(q.Terms[i:i+n], " ")
				if !seen[g] {
					seen[g] = true
					ngramFreq[g] += int64(q.Freq)
				}
			}
		}
	}

	p := func(g string) float64 { return float64(ngramFreq[g]) / total }

	s := &Set{units: make(map[string]*Unit), maxLen: cfg.MaxLen}

	// Iteration 1: all single terms are units.
	var maxTermFreq int64
	for g, f := range ngramFreq {
		if strings.IndexByte(g, ' ') < 0 && f > maxTermFreq {
			maxTermFreq = f
		}
	}
	for g, f := range ngramFreq {
		if strings.IndexByte(g, ' ') >= 0 {
			continue
		}
		s.units[g] = &Unit{
			Text:  g,
			Terms: []string{g},
			Freq:  f,
			Score: math.Log1p(float64(f)) / math.Log1p(float64(maxTermFreq)),
		}
	}

	// Iterations 2..MaxLen: grow candidates, validate with MI. A candidate
	// of length n is valid only if every split into two previously-validated
	// units has MI ≥ MinMI; the unit's MI is the minimum over splits
	// (conservative, mirrors the iterative combination of validated units).
	var maxMI float64
	for n := 2; n <= cfg.MaxLen; n++ {
		grams := make([]string, 0)
		for g := range ngramFreq {
			if strings.Count(g, " ") == n-1 && ngramFreq[g] >= cfg.MinFreq {
				grams = append(grams, g)
			}
		}
		sort.Strings(grams) // determinism
		for _, g := range grams {
			terms := strings.Fields(g)
			mi := math.Inf(1)
			valid := true
			for split := 1; split < len(terms); split++ {
				left := strings.Join(terms[:split], " ")
				right := strings.Join(terms[split:], " ")
				if _, ok := s.units[left]; !ok {
					valid = false
					break
				}
				if _, ok := s.units[right]; !ok {
					valid = false
					break
				}
				pl, pr := p(left), p(right)
				if pl == 0 || pr == 0 {
					valid = false
					break
				}
				m := math.Log(p(g) / (pl * pr))
				if m < mi {
					mi = m
				}
			}
			if !valid || mi < cfg.MinMI {
				continue
			}
			s.units[g] = &Unit{Text: g, Terms: terms, Freq: ngramFreq[g], MI: mi}
			if mi > maxMI {
				maxMI = mi
			}
		}
	}

	// Normalize multi-term scores to [0,1] (paper: "unit scores are also
	// normalized to be between 0 and 1").
	for _, u := range s.units {
		if len(u.Terms) > 1 && maxMI > 0 {
			u.Score = u.MI / maxMI
		}
	}

	s.buildIndex()
	return s
}

// buildIndex compiles the unit inventory into the trie matcher and fills
// the precomputed per-unit flags. Pattern ids are assigned in sorted text
// order for determinism across map iteration orders.
func (s *Set) buildIndex() {
	texts := make([]string, 0, len(s.units))
	for text := range s.units {
		texts = append(texts, text)
	}
	sort.Strings(texts)
	b := match.NewBuilder(nil)
	s.pats = make([]*Unit, 0, len(texts))
	for _, text := range texts {
		u := s.units[text]
		u.StopOnly = allStop(u.Terms)
		if id := b.Add(u.Terms); id != len(s.pats) {
			panic("units: non-dense pattern id")
		}
		s.pats = append(s.pats, u)
	}
	s.matcher = b.Build()
	s.vocab = b.Vocab()
}

func allStop(terms []string) bool {
	for _, t := range terms {
		if !textproc.IsStopword(t) {
			return false
		}
	}
	return len(terms) > 0
}

// Vocab exposes the interned unit vocabulary so the detection pipeline can
// map a document's tokens to ids once per document.
func (s *Set) Vocab() *match.Vocab { return s.vocab }

// Len returns the number of units in the set.
func (s *Set) Len() int { return len(s.units) }

// Lookup returns the unit for the exact phrase, or nil.
func (s *Set) Lookup(phrase string) *Unit { return s.units[phrase] }

// Score returns the normalized unit score of phrase, or 0 if the phrase is
// not a unit.
func (s *Set) Score(phrase string) float64 {
	if u := s.units[phrase]; u != nil {
		return u.Score
	}
	return 0
}

// MI returns the raw mutual information of phrase, or 0.
func (s *Set) MI(phrase string) float64 {
	if u := s.units[phrase]; u != nil {
		return u.MI
	}
	return 0
}

// All returns all units sorted by decreasing score (ties by text).
func (s *Set) All() []Unit {
	out := make([]Unit, 0, len(s.units))
	for _, u := range s.units {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Text < out[j].Text
	})
	return out
}

// Match is one unit occurrence in a token sequence.
type Match struct {
	Unit *Unit
	// Start and End are token indexes ([Start,End)).
	Start, End int
}

// FindInTokens scans normalized tokens for unit occurrences, greedy-longest
// at each position (a longer unit suppresses its prefixes at that position).
// Compatibility wrapper around the id path: it interns the tokens per call,
// so hot callers should intern once with Vocab().AppendIDs and use
// FindInIDs instead.
func (s *Set) FindInTokens(tokens []string) []Match {
	if len(tokens) == 0 {
		return nil
	}
	ids := s.vocab.AppendIDs(make([]uint32, 0, len(tokens)), tokens)
	return s.FindInIDs(ids, nil)
}

// FindInIDs scans interned token ids (from Vocab().AppendIDs) and appends
// the matches to dst, returning it. With a pre-sized dst the scan performs
// zero allocations.
//
//kw:hotpath
func (s *Set) FindInIDs(ids []uint32, dst []Match) []Match {
	for i := 0; i < len(ids); i++ {
		if p, end, ok := s.matcher.LongestAt(ids, i); ok {
			dst = append(dst, Match{Unit: s.pats[p], Start: i, End: end})
		}
	}
	return dst
}

// SubconceptCount returns the number of multi-term sub-phrases of phrase
// (contiguous, length ≥ 2, shorter than the phrase itself) that are
// validated units with score above minScore. This powers the paper's
// interestingness feature (7) "subconcepts".
func (s *Set) SubconceptCount(phrase string, minScore float64) int {
	return s.SubconceptCountTerms(strings.Fields(phrase), minScore)
}

// subKeyPool pools the sub-phrase key buffer of SubconceptCountTerms.
var subKeyPool = sync.Pool{New: func() any { return new([]byte) }}

// SubconceptCountTerms is SubconceptCount over a pre-split phrase — the
// feature extractor splits each concept once and reuses the terms across
// every per-term feature. Sub-phrase keys are assembled in a pooled buffer
// and probed with the map's string-conversion elision, so counting performs
// zero allocations.
func (s *Set) SubconceptCountTerms(terms []string, minScore float64) int {
	if len(terms) <= 2 {
		return 0
	}
	kp := subKeyPool.Get().(*[]byte)
	key := (*kp)[:0]
	count := 0
	for n := 2; n < len(terms); n++ {
		for i := 0; i+n <= len(terms); i++ {
			key = key[:0]
			for j := i; j < i+n; j++ {
				if j > i {
					key = append(key, ' ')
				}
				key = append(key, terms[j]...)
			}
			if u := s.units[string(key)]; u != nil && u.Score > minScore {
				count++
			}
		}
	}
	*kp = key
	subKeyPool.Put(kp)
	return count
}
