package units

import (
	"reflect"
	"testing"

	"contextrank/internal/querylog"
	"contextrank/internal/world"
)

// addFiller adds unrelated single-term traffic so that phrase probabilities
// are small enough for mutual information to be meaningful, as in a real
// query log.
func addFiller(counts map[string]int) map[string]int {
	for i := 0; i < 50; i++ {
		counts["filler"+string(rune('a'+i%26))+string(rune('a'+i/26))] = 100
	}
	return counts
}

// handConfig relaxes the MI threshold to match the small scale of
// hand-crafted logs (the default 2.0 is calibrated for generated logs with
// hundreds of thousands of submissions).
var handConfig = Config{MinMI: 0.5}

// handLog builds a log where "global warming" is a strong unit and
// "warming random" is an incidental co-occurrence.
func handLog() *querylog.Log {
	counts := addFiller(map[string]int{
		"global warming":         500,
		"global warming effects": 120,
		"stop global warming":    80,
		"global economy":         300,
		"warming":                50,
		"global":                 200,
		"random warming stuff":   2,
		"effects":                90,
		"stop":                   60,
		"economy news":           40,
		"news":                   150,
		"economy":                70,
	})
	return querylog.FromCounts(counts)
}

func TestSingleTermsAreUnits(t *testing.T) {
	s := Extract(handLog(), handConfig)
	for _, term := range []string{"global", "warming", "economy", "news"} {
		u := s.Lookup(term)
		if u == nil {
			t.Fatalf("single term %q should be a unit", term)
		}
		if u.Score <= 0 || u.Score > 1 {
			t.Fatalf("single-term score out of range: %v", u.Score)
		}
	}
}

func TestStrongPairBecomesUnit(t *testing.T) {
	s := Extract(handLog(), handConfig)
	u := s.Lookup("global warming")
	if u == nil {
		t.Fatal("'global warming' should be validated as a unit")
	}
	if u.MI <= 0 {
		t.Fatalf("MI should be positive, got %v", u.MI)
	}
	if u.Score <= 0 || u.Score > 1 {
		t.Fatalf("normalized score out of range: %v", u.Score)
	}
}

func TestRareCooccurrenceRejected(t *testing.T) {
	s := Extract(handLog(), Config{MinMI: 0.5, MinFreq: 5})
	if s.Lookup("random warming") != nil {
		t.Fatal("freq-2 candidate should fail MinFreq")
	}
}

func TestScoreOfNonUnit(t *testing.T) {
	s := Extract(handLog(), handConfig)
	if got := s.Score("definitely not present"); got != 0 {
		t.Fatalf("Score of non-unit = %v", got)
	}
	if got := s.MI("nope"); got != 0 {
		t.Fatalf("MI of non-unit = %v", got)
	}
}

func TestThreeTermUnits(t *testing.T) {
	counts := addFiller(map[string]int{
		"new york city":    400,
		"new york":         600,
		"york city":        350,
		"new":              100,
		"york":             50,
		"city":             120,
		"new york weather": 90,
		"weather":          80,
	})
	s := Extract(querylog.FromCounts(counts), handConfig)
	if s.Lookup("new york") == nil {
		t.Fatal("'new york' should be a unit")
	}
	u := s.Lookup("new york city")
	if u == nil {
		t.Fatal("'new york city' should be a unit (both splits validated)")
	}
	if len(u.Terms) != 3 {
		t.Fatalf("Terms = %v", u.Terms)
	}
}

func TestFindInTokensGreedyLongest(t *testing.T) {
	counts := addFiller(map[string]int{
		"new york city": 400, "new york": 600, "york city": 350,
		"new": 100, "york": 50, "city": 120,
	})
	s := Extract(querylog.FromCounts(counts), handConfig)
	tokens := []string{"visit", "new", "york", "city", "today"}
	matches := s.FindInTokens(tokens)
	var texts []string
	for _, m := range matches {
		texts = append(texts, m.Unit.Text)
	}
	// Greedy-longest: position 1 matches "new york city"; positions 2 and 3
	// still match their own longest units ("york city", "city").
	found := false
	for _, m := range matches {
		if m.Unit.Text == "new york city" && m.Start == 1 && m.End == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected greedy-longest match of 'new york city', got %v", texts)
	}
}

func TestFindInTokensOffsets(t *testing.T) {
	s := Extract(handLog(), handConfig)
	tokens := []string{"the", "global", "warming", "debate"}
	for _, m := range s.FindInTokens(tokens) {
		if m.Start < 0 || m.End > len(tokens) || m.End <= m.Start {
			t.Fatalf("bad match offsets %+v", m)
		}
		if got := len(m.Unit.Terms); got != m.End-m.Start {
			t.Fatalf("span length mismatch: %+v", m)
		}
	}
}

func TestSubconceptCount(t *testing.T) {
	counts := addFiller(map[string]int{
		"new york city": 400, "new york": 600, "york city": 350,
		"new": 100, "york": 50, "city": 120,
	})
	s := Extract(querylog.FromCounts(counts), handConfig)
	// Subconcepts of "new york city" of length 2: "new york", "york city".
	got := s.SubconceptCount("new york city", 0.0)
	if got != 2 {
		t.Fatalf("SubconceptCount = %d, want 2", got)
	}
	if got := s.SubconceptCount("new york", 0.0); got != 0 {
		t.Fatalf("two-term phrase has no proper multi-term subconcepts, got %d", got)
	}
}

func TestAllSorted(t *testing.T) {
	s := Extract(handLog(), handConfig)
	all := s.All()
	if len(all) != s.Len() {
		t.Fatalf("All length %d != Len %d", len(all), s.Len())
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Score < all[i].Score {
			t.Fatal("All not sorted by decreasing score")
		}
	}
}

func TestEmptyLog(t *testing.T) {
	s := Extract(querylog.FromCounts(nil), Config{})
	if s.Len() != 0 {
		t.Fatalf("empty log produced %d units", s.Len())
	}
	if got := s.FindInTokens([]string{"a", "b"}); got != nil {
		t.Fatalf("FindInTokens on empty set = %v", got)
	}
}

// Against the generated world: most multi-term concept names should be
// recovered as units, because the log contains their exact queries with
// high frequency.
func TestExtractRecoversWorldConcepts(t *testing.T) {
	w := world.New(world.Config{Seed: 21, VocabSize: 1200, NumTopics: 8, NumConcepts: 200})
	l := querylog.Generate(w, querylog.Config{Seed: 22})
	s := Extract(l, Config{})
	var total, recovered int
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if len(c.Terms) < 2 || c.Interest < 0.3 {
			continue // tail concepts may legitimately be below support
		}
		total++
		if s.Lookup(c.Name) != nil {
			recovered++
		}
	}
	if total == 0 {
		t.Skip("no popular multi-term concepts in test world")
	}
	if ratio := float64(recovered) / float64(total); ratio < 0.7 {
		t.Fatalf("only %d/%d (%.0f%%) popular multi-term concepts recovered as units", recovered, total, 100*ratio)
	}
}

func TestDeterministicExtraction(t *testing.T) {
	l := handLog()
	s1 := Extract(l, handConfig)
	s2 := Extract(l, handConfig)
	if !reflect.DeepEqual(s1.All(), s2.All()) {
		t.Fatal("extraction not deterministic")
	}
}

func BenchmarkExtract(b *testing.B) {
	w := world.New(world.Config{Seed: 21, VocabSize: 1200, NumTopics: 8, NumConcepts: 200})
	l := querylog.Generate(w, querylog.Config{Seed: 22})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(l, Config{})
	}
}

func TestFourTermUnits(t *testing.T) {
	counts := addFiller(map[string]int{
		"a b c d": 300, "a b c": 350, "b c d": 320, "a b": 400, "b c": 380,
		"c d": 360, "a": 80, "b": 70, "c": 60, "d": 50,
	})
	s := Extract(querylog.FromCounts(counts), Config{MinMI: 0.5, MaxLen: 4})
	u := s.Lookup("a b c d")
	if u == nil {
		t.Fatal("4-term unit not validated with MaxLen 4")
	}
	if len(u.Terms) != 4 {
		t.Fatalf("Terms = %v", u.Terms)
	}
	// Default MaxLen 3 must not produce it.
	s3 := Extract(querylog.FromCounts(counts), Config{MinMI: 0.5})
	if s3.Lookup("a b c d") != nil {
		t.Fatal("4-term unit appeared with MaxLen 3")
	}
}

// TestFindInIDsZeroAlloc guards the DESIGN.md §10 contract for the unit
// scanner: interning plus the trie walk allocate nothing per document.
func TestFindInIDsZeroAlloc(t *testing.T) {
	s := Extract(querylog.FromCounts(addFiller(map[string]int{
		"global warming": 500, "global": 200, "warming": 50,
	})), handConfig)
	tokens := []string{"the", "global", "warming", "debate", "unknownword"}
	ids := make([]uint32, 0, len(tokens))
	dst := make([]Match, 0, 4)
	allocs := testing.AllocsPerRun(100, func() {
		ids = s.Vocab().AppendIDs(ids[:0], tokens)
		dst = s.FindInIDs(ids, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("unit id match path allocated %.1f objects per run", allocs)
	}
	if len(dst) == 0 {
		t.Fatal("expected a unit match")
	}
}
