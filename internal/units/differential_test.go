package units

import (
	"reflect"
	"strings"
	"testing"

	"contextrank/internal/newsgen"
	"contextrank/internal/querylog"
	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

// referenceFind is the pre-trie scanner kept as executable specification:
// greedy-longest lookup of re-joined token windows against the unit map,
// advancing one token per position. FindInIDs must stay bit-identical.
func referenceFind(s *Set, tokens []string) []Match {
	var out []Match
	for i := 0; i < len(tokens); i++ {
		for n := s.maxLen; n >= 1; n-- {
			if i+n > len(tokens) {
				continue
			}
			if u := s.units[strings.Join(tokens[i:i+n], " ")]; u != nil {
				out = append(out, Match{Unit: u, Start: i, End: i + n})
				break
			}
		}
	}
	return out
}

// TestDifferentialTrieVsReference scans a generated news corpus against a
// query-log-mined unit set with both scanners and requires bit-identical
// match streams.
func TestDifferentialTrieVsReference(t *testing.T) {
	w := world.New(world.Config{Seed: 81, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	l := querylog.Generate(w, querylog.Config{Seed: 82})
	s := Extract(l, Config{})
	docs := newsgen.Generate(w, newsgen.Config{Seed: 83, NumStories: 30, MinSentences: 5, MaxSentences: 15})
	matched := 0
	for _, doc := range docs {
		tokens := textproc.Words(doc.Text)
		ids := s.Vocab().AppendIDs(nil, tokens)
		got := s.FindInIDs(ids, nil)
		want := referenceFind(s, tokens)
		if len(got) == 0 {
			got = nil // FindInIDs with an empty dst returns a non-nil empty slice
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trie and reference scanner disagree on story %d:\n got %+v\nwant %+v", doc.ID, got, want)
		}
		matched += len(got)
	}
	if matched == 0 {
		t.Fatal("differential corpus produced no matches — test is vacuous")
	}
}
