package units

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"contextrank/internal/newsgen"
	"contextrank/internal/querylog"
	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

// referenceFind is the pre-trie scanner kept as executable specification:
// greedy-longest lookup of re-joined token windows against the unit map,
// advancing one token per position. FindInIDs must stay bit-identical.
func referenceFind(s *Set, tokens []string) []Match {
	var out []Match
	for i := 0; i < len(tokens); i++ {
		for n := s.maxLen; n >= 1; n-- {
			if i+n > len(tokens) {
				continue
			}
			if u := s.units[strings.Join(tokens[i:i+n], " ")]; u != nil {
				out = append(out, Match{Unit: u, Start: i, End: i + n})
				break
			}
		}
	}
	return out
}

// referenceExtract is the direct string-keyed extraction kept as executable
// specification: n-grams keyed by joined text, per-query dedup through a
// fresh seen map, splits re-joined per probe. Extract's interned packed-key
// path must produce an identical unit inventory.
func referenceExtract(l *querylog.Log, cfg Config) *Set {
	cfg = cfg.withDefaults()
	total := float64(l.TotalFreq())
	if total == 0 {
		s := &Set{units: map[string]*Unit{}, maxLen: cfg.MaxLen}
		s.buildIndex()
		return s
	}
	ngramFreq := make(map[string]int64)
	for _, q := range l.Queries {
		seen := make(map[string]bool)
		for n := 1; n <= cfg.MaxLen; n++ {
			for i := 0; i+n <= len(q.Terms); i++ {
				g := strings.Join(q.Terms[i:i+n], " ")
				if !seen[g] {
					seen[g] = true
					ngramFreq[g] += int64(q.Freq)
				}
			}
		}
	}
	p := func(g string) float64 { return float64(ngramFreq[g]) / total }
	s := &Set{units: make(map[string]*Unit), maxLen: cfg.MaxLen}
	var maxTermFreq int64
	for g, f := range ngramFreq {
		if strings.IndexByte(g, ' ') < 0 && f > maxTermFreq {
			maxTermFreq = f
		}
	}
	for g, f := range ngramFreq {
		if strings.IndexByte(g, ' ') >= 0 {
			continue
		}
		s.units[g] = &Unit{
			Text:  g,
			Terms: []string{g},
			Freq:  f,
			Score: math.Log1p(float64(f)) / math.Log1p(float64(maxTermFreq)),
		}
	}
	var maxMI float64
	for n := 2; n <= cfg.MaxLen; n++ {
		grams := make([]string, 0)
		for g := range ngramFreq {
			if strings.Count(g, " ") == n-1 && ngramFreq[g] >= cfg.MinFreq {
				grams = append(grams, g)
			}
		}
		sort.Strings(grams)
		for _, g := range grams {
			terms := strings.Fields(g)
			mi := math.Inf(1)
			valid := true
			for split := 1; split < len(terms); split++ {
				left := strings.Join(terms[:split], " ")
				right := strings.Join(terms[split:], " ")
				if _, ok := s.units[left]; !ok {
					valid = false
					break
				}
				if _, ok := s.units[right]; !ok {
					valid = false
					break
				}
				pl, pr := p(left), p(right)
				if pl == 0 || pr == 0 {
					valid = false
					break
				}
				if m := math.Log(p(g) / (pl * pr)); m < mi {
					mi = m
				}
			}
			if !valid || mi < cfg.MinMI {
				continue
			}
			s.units[g] = &Unit{Text: g, Terms: terms, Freq: ngramFreq[g], MI: mi}
			if mi > maxMI {
				maxMI = mi
			}
		}
	}
	for _, u := range s.units {
		if len(u.Terms) > 1 && maxMI > 0 {
			u.Score = u.MI / maxMI
		}
	}
	s.buildIndex()
	return s
}

// TestDifferentialExtractVsReference mines the same generated query log with
// the interned packed-key Extract and the string-keyed reference and
// requires identical unit inventories, field for field.
func TestDifferentialExtractVsReference(t *testing.T) {
	w := world.New(world.Config{Seed: 91, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	l := querylog.Generate(w, querylog.Config{Seed: 92})
	for _, cfg := range []Config{{}, {MaxLen: 4, MinMI: 1.0}, {MinFreq: 2}} {
		got, want := Extract(l, cfg), referenceExtract(l, cfg)
		if got.Len() != want.Len() {
			t.Fatalf("cfg %+v: %d units, reference has %d", cfg, got.Len(), want.Len())
		}
		if got.Len() == 0 {
			t.Fatalf("cfg %+v: no units — test is vacuous", cfg)
		}
		for text, wu := range want.units {
			gu := got.units[text]
			if gu == nil {
				t.Fatalf("cfg %+v: unit %q missing", cfg, text)
			}
			if !reflect.DeepEqual(*gu, *wu) {
				t.Fatalf("cfg %+v: unit %q differs:\n got %+v\nwant %+v", cfg, text, *gu, *wu)
			}
		}
	}
}

// TestDifferentialTrieVsReference scans a generated news corpus against a
// query-log-mined unit set with both scanners and requires bit-identical
// match streams.
func TestDifferentialTrieVsReference(t *testing.T) {
	w := world.New(world.Config{Seed: 81, VocabSize: 1500, NumTopics: 8, NumConcepts: 250})
	l := querylog.Generate(w, querylog.Config{Seed: 82})
	s := Extract(l, Config{})
	docs := newsgen.Generate(w, newsgen.Config{Seed: 83, NumStories: 30, MinSentences: 5, MaxSentences: 15})
	matched := 0
	for _, doc := range docs {
		tokens := textproc.Words(doc.Text)
		ids := s.Vocab().AppendIDs(nil, tokens)
		got := s.FindInIDs(ids, nil)
		want := referenceFind(s, tokens)
		if len(got) == 0 {
			got = nil // FindInIDs with an empty dst returns a non-nil empty slice
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trie and reference scanner disagree on story %d:\n got %+v\nwant %+v", doc.ID, got, want)
		}
		matched += len(got)
	}
	if matched == 0 {
		t.Fatal("differential corpus produced no matches — test is vacuous")
	}
}
